// churn_test.cpp -- organic node arrivals (join_node) interleaved with
// adversarial deletions and healing: the reconfigurable-network setting
// the paper motivates (overlays grow and shrink).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "analysis/invariants.h"
#include "api/api.h"
#include "attack/basic.h"
#include "core/dash.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

TEST(Churn, JoinExtendsGraphAndState) {
  Rng rng(1);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  const NodeId v = st.join_node(g, {0, 2});
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_EQ(st.initial_degree(v), 2u);
  EXPECT_EQ(st.delta(v), 0);
  EXPECT_EQ(st.weight(v), 1u);
}

TEST(Churn, JoinEdgesShiftBaselineNotDelta) {
  Rng rng(2);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  st.join_node(g, {1});
  // Node 1's degree grew organically: baseline moved, delta untouched.
  EXPECT_EQ(st.delta(1), 0);
  EXPECT_EQ(st.initial_degree(1), 3u);
  EXPECT_TRUE(analysis::check_delta_consistency(g, st).ok);
}

TEST(Churn, FreshIdsAreUnique) {
  Rng rng(3);
  Graph g(4);
  HealingState st(g, rng);
  const NodeId a = st.join_node(g, {});
  const NodeId b = st.join_node(g, {});
  EXPECT_NE(st.initial_id(a), st.initial_id(b));
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_NE(st.initial_id(v), st.initial_id(a));
    EXPECT_NE(st.initial_id(v), st.initial_id(b));
  }
}

TEST(Churn, JoinedNodesParticipateInHealing) {
  Rng rng(4);
  Graph g = graph::star_graph(4);
  HealingState st(g, rng);
  const NodeId newcomer = st.join_node(g, {0});  // joins at the hub

  DashStrategy dash;
  const DeletionContext ctx = st.begin_deletion(g, 0);
  g.delete_node(0);
  dash.heal(g, st, ctx);
  // The newcomer was a hub neighbor: it must be reconnected.
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_GE(g.degree(newcomer), 1u);
}

TEST(Churn, MixedJoinAttackHealScheduleKeepsInvariants) {
  Rng rng(5);
  Graph g = graph::barabasi_albert(48, 2, rng);
  HealingState st(g, rng);
  DashStrategy dash;
  attack::NeighborOfMaxAttack atk(7);
  Rng churn(11);

  for (int round = 0; round < 120; ++round) {
    if (churn.chance(0.3) || g.num_alive() < 8) {
      // A newcomer attaches to up to 2 random alive nodes.
      auto alive = g.alive_nodes();
      churn.shuffle(alive);
      std::vector<NodeId> targets(
          alive.begin(),
          alive.begin() + std::min<std::size_t>(2, alive.size()));
      st.join_node(g, targets);
    } else {
      const NodeId v = atk.select(g, st);
      const DeletionContext ctx = st.begin_deletion(g, v);
      g.delete_node(v);
      dash.heal(g, st, ctx);
    }
    // Note: joins may attach to a single component only; with 2 random
    // targets the graph stays connected because targets are alive and
    // the pre-join graph is connected.
    ASSERT_TRUE(graph::is_connected(g)) << "round " << round;
    ASSERT_TRUE(st.healing_graph_is_forest(g));
    ASSERT_TRUE(analysis::check_delta_consistency(g, st).ok);
    ASSERT_TRUE(analysis::check_component_ids(g, st).ok);
    ASSERT_TRUE(analysis::check_healing_subgraph(g, st).ok);
  }
}

TEST(Churn, DuplicateAttachTargetAborts) {
  Rng rng(6);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  std::vector<NodeId> bad{1, 1};
  EXPECT_DEATH(st.join_node(g, bad), "duplicate attach");
}

TEST(Churn, StateGraphMismatchAborts) {
  Rng rng(7);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  g.add_node();  // graph grew behind the state's back
  EXPECT_DEATH(st.join_node(g, {}), "out of sync");
}

// ---- churn through the engine + observer pipeline --------------------

TEST(Churn, NetworkJoinInterleavedKeepsInvariants) {
  // The same mixed join/attack/heal workload as above, driven through
  // api::Network with the invariant battery plugged in as an observer:
  // connectivity, delta accounting, and the forest invariant must hold
  // after every event (the battery re-runs on joins too).
  Rng rng(5);
  graph::Graph g = graph::barabasi_albert(48, 2, rng);
  api::Network net(std::move(g), make_strategy("dash"), rng);
  api::InvariantObserver inv;
  net.add_observer(&inv);

  attack::NeighborOfMaxAttack atk(7);
  Rng churn(11);
  std::size_t joins = 0;
  for (int round = 0; round < 120; ++round) {
    if (churn.chance(0.3) || net.graph().num_alive() < 8) {
      auto alive = net.graph().alive_nodes();
      churn.shuffle(alive);
      std::vector<NodeId> targets(
          alive.begin(),
          alive.begin() + std::min<std::size_t>(2, alive.size()));
      net.join(targets);
      ++joins;
    } else {
      const NodeId v = atk.select(net.graph(), net.state());
      net.remove(v);
    }
    ASSERT_TRUE(inv.ok()) << "round " << round << ": " << inv.violation();
    ASSERT_TRUE(net.stayed_connected()) << "round " << round;
    ASSERT_TRUE(net.state().healing_graph_is_forest(net.graph()));
  }

  const api::Metrics m = net.finish();
  EXPECT_TRUE(m.violation.empty()) << m.violation;
  EXPECT_EQ(m.joins, joins);
  EXPECT_EQ(m.joins + m.deletions, 120u);
  EXPECT_TRUE(m.stayed_connected);
}

TEST(Churn, NetworkJoinedNodesParticipateInHealing) {
  Rng rng(6);
  api::Network net(graph::star_graph(4), make_strategy("dash"), rng);
  const NodeId newcomer = net.join({0});  // joins at the hub
  net.remove(0);                          // hub deleted, DASH heals
  EXPECT_TRUE(graph::is_connected(net.graph()));
  EXPECT_GE(net.graph().degree(newcomer), 1u);
  EXPECT_EQ(net.metrics().joins, 1u);
}

TEST(Churn, NetworkJoinThenBatchDeletionKeepsInvariants) {
  Rng rng(7);
  graph::Graph g = graph::barabasi_albert(32, 2, rng);
  api::Network net(std::move(g), make_strategy("dash"), rng);
  api::InvariantObserver inv;
  net.add_observer(&inv);

  const NodeId a = net.join({0, 1});
  const NodeId b = net.join({a, 2});
  net.remove_batch({0, 1});  // adjacent core nodes, deleted together
  EXPECT_TRUE(inv.ok()) << inv.violation();
  EXPECT_TRUE(graph::is_connected(net.graph()));
  EXPECT_TRUE(net.graph().alive(a));
  EXPECT_TRUE(net.graph().alive(b));
  const api::Metrics m = net.finish();
  EXPECT_EQ(m.joins, 2u);
  EXPECT_EQ(m.deletions, 2u);
}

TEST(Churn, CheckpointPreservesJoinState) {
  Rng rng(8);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  st.join_node(g, {0});
  st.join_node(g, {1, 2});

  std::stringstream buf;
  st.save(buf);
  const HealingState back = HealingState::load(buf);
  EXPECT_TRUE(st == back);
  // Fresh-id source restored: next joins get distinct ids.
  // (operator== covers next_fresh_id_.)
}

}  // namespace
}  // namespace dash::core
