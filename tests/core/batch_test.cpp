#include "core/batch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/invariants.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

TEST(Batch, SingletonBatchMatchesSingleDeletionSemantics) {
  Rng rng(1);
  Graph g = graph::star_graph(6);
  HealingState st(g, rng);
  const auto actions = dash_delete_and_heal_batch(g, st, {0});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].reconnection_set_size, 5u);
  EXPECT_EQ(actions[0].new_graph_edges.size(), 4u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(st.healing_graph_is_forest(g));
  EXPECT_EQ(st.total_alive_weight(g), 6u);
}

TEST(Batch, AdjacentPairIsOneCluster) {
  // Path 0-1-2-3-4; delete {1,2} simultaneously: one cluster, and the
  // survivors {0, 3} must be reconnected even though no single deleted
  // node neighbors them both.
  Rng rng(2);
  Graph g = graph::path_graph(5);
  HealingState st(g, rng);
  const auto actions = dash_delete_and_heal_batch(g, st, {1, 2});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_EQ(st.total_alive_weight(g), 5u);
}

TEST(Batch, DisjointDeletionsFormTwoClusters) {
  // Cycle of 8; delete nodes 1 and 5 (not adjacent): two clusters,
  // each healed locally.
  Rng rng(3);
  Graph g = graph::cycle_graph(8);
  HealingState st(g, rng);
  const auto actions = dash_delete_and_heal_batch(g, st, {1, 5});
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(st.healing_graph_is_forest(g));
}

TEST(Batch, WholeNeighborhoodCluster) {
  // Star: delete the hub plus two leaves in one step.
  Rng rng(4);
  Graph g = graph::star_graph(6);
  HealingState st(g, rng);
  const auto actions = dash_delete_and_heal_batch(g, st, {0, 1, 2});
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(g.num_alive(), 3u);
  EXPECT_EQ(st.total_alive_weight(g), 6u);  // weights moved, not lost
}

TEST(Batch, ComponentIdsConsistentAfterBatch) {
  Rng rng(5);
  Graph g = graph::barabasi_albert(48, 2, rng);
  HealingState st(g, rng);
  dash_delete_and_heal_batch(g, st, {3, 7, 11});
  const auto check = analysis::check_component_ids(g, st);
  EXPECT_TRUE(check.ok) << check.violation;
}

TEST(Batch, DeltaStaysNetDegreeChange) {
  Rng rng(6);
  Graph g = graph::barabasi_albert(48, 2, rng);
  HealingState st(g, rng);
  dash_delete_and_heal_batch(g, st, {1, 2, 3, 4});
  for (NodeId v : g.alive_nodes()) {
    EXPECT_EQ(st.delta(v), st.raw_degree_increase(g, v)) << "node " << v;
  }
}

TEST(Batch, RepeatedBatchesKeepInvariants) {
  Rng rng(7);
  Graph g = graph::barabasi_albert(96, 2, rng);
  HealingState st(g, rng);
  Rng pick(13);
  while (g.num_alive() > 8) {
    // Random batch of up to 4 alive nodes.
    auto alive = g.alive_nodes();
    pick.shuffle(alive);
    const std::size_t k = 1 + pick.below(4);
    std::vector<NodeId> batch(alive.begin(),
                              alive.begin() + std::min(k, alive.size()));
    dash_delete_and_heal_batch(g, st, batch);
    ASSERT_TRUE(graph::is_connected(g));
    ASSERT_TRUE(st.healing_graph_is_forest(g));
    const auto check = analysis::check_component_ids(g, st);
    ASSERT_TRUE(check.ok) << check.violation;
    for (NodeId v : g.alive_nodes()) {
      ASSERT_EQ(st.delta(v), st.raw_degree_increase(g, v));
    }
  }
}

TEST(Batch, DegreeBoundStaysLogarithmicUnderBatches) {
  // The footnote promises DASH extends to batches; the degree increase
  // should stay in the same regime (allow the deterministic bound).
  Rng rng(8);
  const std::size_t n = 128;
  Graph g = graph::barabasi_albert(n, 2, rng);
  HealingState st(g, rng);
  Rng pick(17);
  while (g.num_alive() > 4) {
    auto alive = g.alive_nodes();
    pick.shuffle(alive);
    const std::size_t k = 1 + pick.below(3);
    std::vector<NodeId> batch(alive.begin(),
                              alive.begin() + std::min(k, alive.size()));
    dash_delete_and_heal_batch(g, st, batch);
  }
  EXPECT_LE(static_cast<double>(st.max_delta_ever()),
            2.0 * std::log2(static_cast<double>(n)) + 1e-9);
}

TEST(Batch, WeightConservedAcrossManyBatches) {
  Rng rng(9);
  Graph g = graph::barabasi_albert(64, 2, rng);
  HealingState st(g, rng);
  Rng pick(19);
  while (g.num_alive() > 6) {
    auto alive = g.alive_nodes();
    pick.shuffle(alive);
    std::vector<NodeId> batch(alive.begin(), alive.begin() + 2);
    dash_delete_and_heal_batch(g, st, batch);
    ASSERT_EQ(st.total_alive_weight(g), 64u);
  }
}

TEST(Batch, EmptyBatchAborts) {
  Rng rng(10);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  EXPECT_DEATH(begin_batch_deletion(st, g, {}), "");
}

TEST(Batch, DuplicateInBatchAborts) {
  Rng rng(11);
  Graph g = graph::path_graph(4);
  HealingState st(g, rng);
  std::vector<NodeId> bad{1, 1};
  EXPECT_DEATH(begin_batch_deletion(st, g, bad), "duplicate");
}

TEST(Batch, HealingEdgeCountStaysConsistent) {
  Rng rng(12);
  Graph g = graph::barabasi_albert(64, 2, rng);
  HealingState st(g, rng);
  Rng pick(23);
  while (g.num_alive() > 10) {
    auto alive = g.alive_nodes();
    pick.shuffle(alive);
    std::vector<NodeId> batch(alive.begin(), alive.begin() + 3);
    dash_delete_and_heal_batch(g, st, batch);
    // Recount E' from adjacency and compare with the running counter.
    std::size_t pairs = 0;
    for (NodeId v : g.alive_nodes()) pairs += st.forest_neighbors(v).size();
    ASSERT_EQ(st.num_healing_edges(), pairs / 2);
  }
}

}  // namespace
}  // namespace dash::core
