#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dash::core::bounds {
namespace {

TEST(Bounds, DashDeltaBound) {
  EXPECT_DOUBLE_EQ(dash_delta_bound(1024), 20.0);
  EXPECT_DOUBLE_EQ(dash_delta_bound(2), 2.0);
  EXPECT_DOUBLE_EQ(dash_delta_bound(1), 0.0);
}

TEST(Bounds, MessageBoundFormula) {
  // 2 * (d + 2 log2 n) * ln n at d=0: 4 log2(n) ln(n).
  const double expect = 4.0 * std::log2(256.0) * std::log(256.0);
  EXPECT_NEAR(message_bound(0, 256), expect, 1e-9);
  // Monotone in d and n.
  EXPECT_GT(message_bound(10, 256), message_bound(0, 256));
  EXPECT_GT(message_bound(0, 512), message_bound(0, 256));
}

TEST(Bounds, IdChangeBound) {
  EXPECT_NEAR(id_change_bound(256), 2.0 * std::log(256.0), 1e-12);
}

TEST(Bounds, LowerBoundDeltaIsTreeDepth) {
  // (M+2)-ary complete tree of depth D has > (M+2)^D nodes, so the
  // bound evaluated at the exact node count is >= D - 1 and <= D.
  // For M=2 (4-ary), depth 4 => n = 341: log_4(341) ~ 4.2 -> floor 4.
  EXPECT_DOUBLE_EQ(lower_bound_delta(341, 2), 4.0);
  EXPECT_DOUBLE_EQ(lower_bound_delta(21, 2), 2.0);
  // 5-ary tree of depth 5: n = (5^6 - 1)/4 = 3906; log_5(3906) ~ 5.14.
  EXPECT_DOUBLE_EQ(lower_bound_delta(3906, 3), 5.0);
}

TEST(Bounds, TreeDegreeSumIncrease) {
  EXPECT_EQ(tree_degree_sum_increase(1), -1);
  EXPECT_EQ(tree_degree_sum_increase(2), 0);
  EXPECT_EQ(tree_degree_sum_increase(3), 1);
  EXPECT_EQ(tree_degree_sum_increase(10), 8);
}

}  // namespace
}  // namespace dash::core::bounds
