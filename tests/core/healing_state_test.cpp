#include "core/healing_state.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::util::Rng;
using graph::path_graph;
using graph::star_graph;

TEST(HealingState, InitialIdsAreAPermutation) {
  Rng rng(1);
  const Graph g(10);
  const HealingState st(g, rng);
  std::set<std::uint64_t> ids;
  for (NodeId v = 0; v < 10; ++v) {
    ids.insert(st.initial_id(v));
    EXPECT_LT(st.initial_id(v), 10u);
    EXPECT_EQ(st.component_id(v), st.initial_id(v));
    EXPECT_EQ(st.delta(v), 0);
    EXPECT_EQ(st.weight(v), 1u);
  }
  EXPECT_EQ(ids.size(), 10u);
}

TEST(HealingState, InitialDegreesSnapshot) {
  Rng rng(2);
  const Graph g = star_graph(5);
  const HealingState st(g, rng);
  EXPECT_EQ(st.initial_degree(0), 4u);
  EXPECT_EQ(st.initial_degree(1), 1u);
}

TEST(HealingState, AddHealingEdgeUpdatesDelta) {
  Rng rng(3);
  Graph g(4);
  HealingState st(g, rng);
  EXPECT_TRUE(st.add_healing_edge(g, 0, 1));
  EXPECT_EQ(st.delta(0), 1);
  EXPECT_EQ(st.delta(1), 1);
  EXPECT_EQ(st.num_healing_edges(), 1u);
  EXPECT_EQ(st.max_delta_ever(), 1u);
  // Re-adding the same edge changes nothing.
  EXPECT_FALSE(st.add_healing_edge(g, 1, 0));
  EXPECT_EQ(st.delta(0), 1);
  EXPECT_EQ(st.num_healing_edges(), 1u);
}

TEST(HealingState, HealingEdgeOverExistingGraphEdge) {
  // An RT edge whose endpoints are already G-adjacent joins E' but must
  // not bump delta (the degree did not change).
  Rng rng(4);
  Graph g(3);
  g.add_edge(0, 1);
  HealingState st(g, rng);
  EXPECT_FALSE(st.add_healing_edge(g, 0, 1));
  EXPECT_EQ(st.delta(0), 0);
  EXPECT_EQ(st.num_healing_edges(), 1u);
  EXPECT_EQ(st.forest_neighbors(0), std::vector<NodeId>{1});
}

TEST(HealingState, DeltaIsNetDegreeChange) {
  Rng rng(5);
  Graph g = path_graph(3);
  HealingState st(g, rng);
  st.begin_deletion(g, 0);
  g.delete_node(0);
  // Node 1 lost its edge to node 0 and nothing healed it back.
  EXPECT_EQ(st.raw_degree_increase(g, 1), -1);
  EXPECT_EQ(st.delta(1), -1);  // delta tracks the net change
  EXPECT_EQ(st.delta(2), 0);
  EXPECT_EQ(st.max_delta_ever(), 0u);  // never went positive
}

TEST(HealingState, BeginDeletionCapturesContext) {
  Rng rng(6);
  Graph g = star_graph(4);
  HealingState st(g, rng);
  st.add_healing_edge(g, 1, 2);  // pretend a past heal linked 1-2
  // Give node 0 a forest edge too.
  st.add_healing_edge(g, 0, 3);

  const DeletionContext ctx = st.begin_deletion(g, 0);
  EXPECT_EQ(ctx.deleted, 0u);
  EXPECT_EQ(ctx.neighbors_g, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(ctx.forest_neighbors, std::vector<NodeId>{3});
  EXPECT_EQ(ctx.weight, 1u);
  // v detached from G'.
  EXPECT_TRUE(st.forest_neighbors(3).empty());
}

TEST(HealingState, WeightTransfersToForestNeighbor) {
  Rng rng(7);
  Graph g = path_graph(3);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 2);  // forest edge 0-2 (also new G edge)

  st.begin_deletion(g, 0);
  g.delete_node(0);
  // Weight went to the forest neighbor (node 2), not the G-neighbor 1.
  EXPECT_EQ(st.weight(2), 2u);
  EXPECT_EQ(st.weight(1), 1u);
  EXPECT_EQ(st.weight(0), 0u);
  EXPECT_EQ(st.total_alive_weight(g), 3u);
}

TEST(HealingState, WeightFallsBackToGraphNeighbor) {
  Rng rng(8);
  Graph g = path_graph(2);
  HealingState st(g, rng);
  st.begin_deletion(g, 0);
  g.delete_node(0);
  EXPECT_EQ(st.weight(1), 2u);
  EXPECT_EQ(st.total_alive_weight(g), 2u);
}

TEST(HealingState, UniqueNeighborsPartitionsById) {
  Rng rng(9);
  Graph g = star_graph(5);  // hub 0, leaves 1..4
  HealingState st(g, rng);
  // All leaves start in singleton components => all are unique reps.
  const DeletionContext ctx = st.begin_deletion(g, 0);
  const auto un = st.unique_neighbors(ctx);
  EXPECT_EQ(un.size(), 4u);
}

TEST(HealingState, UniqueNeighborsPicksLowestInitialId) {
  Rng rng(10);
  Graph g = star_graph(4);  // hub 0, leaves 1,2,3
  HealingState st(g, rng);
  // Put leaves 1 and 2 in the same G'-component.
  st.add_healing_edge(g, 1, 2);
  st.propagate_min_id(g, {1, 2});
  const DeletionContext ctx = st.begin_deletion(g, 0);
  const auto un = st.unique_neighbors(ctx);
  ASSERT_EQ(un.size(), 2u);  // {1 or 2} plus {3}
  const NodeId rep =
      st.initial_id(1) < st.initial_id(2) ? NodeId{1} : NodeId{2};
  EXPECT_TRUE(std::find(un.begin(), un.end(), rep) != un.end());
  EXPECT_TRUE(std::find(un.begin(), un.end(), NodeId{3}) != un.end());
}

TEST(HealingState, UniqueNeighborsExcludesDeletedNodesComponent) {
  Rng rng(11);
  Graph g = star_graph(4);
  HealingState st(g, rng);
  // Link hub 0 and leaf 1 in G' -> same component id after propagation.
  st.add_healing_edge(g, 0, 1);
  st.propagate_min_id(g, {0, 1});
  const DeletionContext ctx = st.begin_deletion(g, 0);
  const auto un = st.unique_neighbors(ctx);
  // Leaf 1 shares the deleted hub's id, so it is excluded from UN...
  EXPECT_TRUE(std::find(un.begin(), un.end(), NodeId{1}) == un.end());
  // ...but arrives through N(v,G') in the reconnection set.
  const auto rs = st.reconnection_set(ctx);
  EXPECT_TRUE(std::find(rs.begin(), rs.end(), NodeId{1}) != rs.end());
  EXPECT_EQ(rs.size(), 3u);  // leaves 1, 2, 3
}

TEST(HealingState, ReconnectionSetSortedByDelta) {
  Rng rng(12);
  Graph g = star_graph(5);
  HealingState st(g, rng);
  // Manufacture unequal deltas: 3 gets two healing edges, 2 gets one.
  st.add_healing_edge(g, 3, 2);
  st.add_healing_edge(g, 3, 4);
  st.propagate_min_id(g, {2, 3, 4});
  const DeletionContext ctx = st.begin_deletion(g, 0);
  const auto rs = st.reconnection_set(ctx);
  for (std::size_t i = 1; i < rs.size(); ++i) {
    EXPECT_LE(st.delta(rs[i - 1]), st.delta(rs[i]));
  }
}

TEST(HealingState, PropagateMinIdRelabelsComponent) {
  Rng rng(13);
  Graph g = path_graph(4);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 1);
  st.add_healing_edge(g, 1, 2);
  const std::uint64_t expect =
      std::min({st.component_id(0), st.component_id(1), st.component_id(2)});
  const std::size_t changed = st.propagate_min_id(g, {0, 1, 2});
  EXPECT_EQ(changed, 2u);  // all but the minimum holder
  EXPECT_EQ(st.component_id(0), expect);
  EXPECT_EQ(st.component_id(1), expect);
  EXPECT_EQ(st.component_id(2), expect);
  EXPECT_NE(st.component_id(3), expect);
}

TEST(HealingState, PropagationCountsMessages) {
  Rng rng(14);
  Graph g = path_graph(3);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 2);  // also adds G edge 0-2
  const std::size_t changed = st.propagate_min_id(g, {0, 2});
  ASSERT_EQ(changed, 1u);
  const NodeId loser =
      st.initial_id(0) < st.initial_id(2) ? NodeId{2} : NodeId{0};
  EXPECT_EQ(st.id_changes(loser), 1u);
  // The loser broadcast to its G-neighbors (degree 2 now).
  EXPECT_EQ(st.messages_sent(loser), 2u);
  EXPECT_GE(st.messages_received(1), 1u);
}

TEST(HealingState, RemOfFreshNodeIsWeight) {
  Rng rng(15);
  Graph g(3);
  HealingState st(g, rng);
  EXPECT_EQ(st.rem(g, 0), 1u);
}

TEST(HealingState, RemMatchesHandComputation) {
  Rng rng(16);
  Graph g(5);
  HealingState st(g, rng);
  // Forest: 0-1, 1-2, 1-3, 3-4. Weights all 1.
  st.add_healing_edge(g, 0, 1);
  st.add_healing_edge(g, 1, 2);
  st.add_healing_edge(g, 1, 3);
  st.add_healing_edge(g, 3, 4);
  // For node 1: subtrees {0} (w=1), {2} (w=1), {3,4} (w=2).
  // rem = (1+1+2) - 2 + 1 = 3.
  EXPECT_EQ(st.rem(g, 1), 3u);
  // For node 0: single subtree {1,2,3,4} (w=4): rem = 4 - 4 + 1 = 1.
  EXPECT_EQ(st.rem(g, 0), 1u);
}

TEST(HealingState, ForestDetection) {
  Rng rng(17);
  Graph g(4);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 1);
  st.add_healing_edge(g, 1, 2);
  EXPECT_TRUE(st.healing_graph_is_forest(g));
  st.add_healing_edge(g, 2, 0);  // closes a cycle
  EXPECT_FALSE(st.healing_graph_is_forest(g));
}

TEST(HealingState, HealingComponentCollectsTree) {
  Rng rng(18);
  Graph g(5);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 1);
  st.add_healing_edge(g, 1, 2);
  auto comp = st.healing_component(g, 2);
  std::sort(comp.begin(), comp.end());
  EXPECT_EQ(comp, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(st.healing_component(g, 4), std::vector<NodeId>{4});
}

}  // namespace
}  // namespace dash::core
