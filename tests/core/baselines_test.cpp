#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.h"
#include "core/binary_tree_heal.h"
#include "core/degree_capped.h"
#include "core/graph_heal.h"
#include "core/line_heal.h"
#include "core/no_heal.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::testing::RunSpec;
using dash::testing::run_checked;
using dash::util::Rng;

HealAction delete_and_heal(Graph& g, HealingState& st,
                           HealingStrategy& strat, NodeId v) {
  const DeletionContext ctx = st.begin_deletion(g, v);
  g.delete_node(v);
  return strat.heal(g, st, ctx);
}

// ---- GraphHeal ------------------------------------------------------

TEST(GraphHeal, ReconnectsAllNeighbors) {
  Rng rng(1);
  Graph g = graph::star_graph(6);
  HealingState st(g, rng);
  GraphHealStrategy heal;
  const HealAction a = delete_and_heal(g, st, heal, 0);
  EXPECT_EQ(a.reconnection_set_size, 5u);
  EXPECT_EQ(a.new_graph_edges.size(), 4u);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(GraphHeal, DoesNotTrackComponentsAndMayCycle) {
  // Two deletions that force redundant edges: cycle in E' allowed.
  Rng rng(2);
  Graph g = graph::cycle_graph(6);
  HealingState st(g, rng);
  GraphHealStrategy heal;
  delete_and_heal(g, st, heal, 0);
  delete_and_heal(g, st, heal, 3);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_FALSE(heal.maintains_forest());
}

TEST(GraphHeal, FullScheduleStaysConnected) {
  Rng rng(3);
  Graph g = graph::barabasi_albert(96, 2, rng);
  // No invariant observer: the forest check is not applicable here.
  api::Network net(std::move(g), make_strategy("graph"), rng);
  auto attacker = attack::make_attack("neighborofmax", 4);
  const auto result = net.run(*attacker);
  EXPECT_TRUE(result.stayed_connected);
  EXPECT_EQ(result.deletions, 95u);
}

// ---- BinaryTreeHeal -------------------------------------------------

TEST(BinaryTreeHeal, FullScheduleInvariants) {
  Rng rng(4);
  run_checked(graph::barabasi_albert(96, 2, rng),
              {.attack = "neighborofmax", .healer = "binarytree",
               .seed = 5});
}

TEST(BinaryTreeHeal, UsesComponentTracking) {
  // Deleting the center of a path after its ends were already healed
  // into one component must not use more than |S|-1 edges.
  Rng rng(5);
  Graph g = graph::star_graph(5);
  HealingState st(g, rng);
  BinaryTreeHealStrategy heal;
  const HealAction a = delete_and_heal(g, st, heal, 0);
  EXPECT_EQ(a.new_graph_edges.size(), 3u);  // 4 singletons -> 3 edges
  EXPECT_TRUE(st.healing_graph_is_forest(g));
}

// ---- LineHeal -------------------------------------------------------

TEST(LineHeal, ReconnectsAsPath) {
  Rng rng(6);
  Graph g = graph::star_graph(6);
  HealingState st(g, rng);
  LineHealStrategy heal;
  const HealAction a = delete_and_heal(g, st, heal, 0);
  EXPECT_EQ(a.new_graph_edges.size(), 4u);
  EXPECT_TRUE(graph::is_connected(g));
  // Net deltas: 2 path endpoints gain one edge and lost the hub (0);
  // 3 interior nodes gain two and lost the hub (+1).
  std::size_t endpoints = 0, interior = 0;
  for (NodeId v = 1; v <= 5; ++v) {
    if (st.delta(v) == 0) ++endpoints;
    if (st.delta(v) == 1) ++interior;
  }
  EXPECT_EQ(endpoints, 2u);
  EXPECT_EQ(interior, 3u);
}

TEST(LineHeal, FullScheduleInvariants) {
  Rng rng(7);
  run_checked(graph::barabasi_albert(96, 2, rng),
              {.attack = "neighborofmax", .healer = "line", .seed = 8});
}

// ---- NoHeal ---------------------------------------------------------

TEST(NoHeal, NeverAddsEdges) {
  Rng rng(8);
  Graph g = graph::star_graph(5);
  HealingState st(g, rng);
  NoHealStrategy heal;
  const HealAction a = delete_and_heal(g, st, heal, 0);
  EXPECT_TRUE(a.new_graph_edges.empty());
  EXPECT_FALSE(graph::is_connected(g));
  EXPECT_EQ(st.max_delta_ever(), 0u);
}

TEST(NoHeal, ScheduleReportsDisconnection) {
  Rng rng(9);
  api::Network net(graph::star_graph(20), make_strategy("none"), rng);
  auto attacker = attack::make_attack("maxnode", 10);
  api::RunOptions opts;
  opts.stop_when_disconnected = true;
  const auto result = net.run(*attacker, opts);
  EXPECT_FALSE(result.stayed_connected);
  EXPECT_EQ(result.deletions, 1u);  // hub deletion shatters the star
}

// ---- DegreeCapped ---------------------------------------------------

TEST(DegreeCapped, RejectsTooSmallCap) {
  EXPECT_DEATH(DegreeCappedStrategy bad(1), "degree cap");
}

TEST(DegreeCapped, PerRoundIncreaseWithinCap) {
  Rng rng(10);
  Graph g = graph::star_graph(10);
  HealingState st(g, rng);
  DegreeCappedStrategy heal(2);
  delete_and_heal(g, st, heal, 0);
  EXPECT_LE(heal.max_round_increase(), 2u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(st.healing_graph_is_forest(g));
}

TEST(DegreeCapped, FullScheduleRespectsCapEachRound) {
  Rng rng(11);
  const auto result = run_checked(
      graph::barabasi_albert(96, 2, rng),
      {.attack = "neighborofmax", .healer = "capped:2", .seed = 12});
  EXPECT_TRUE(result.stayed_connected);
}

TEST(DegreeCapped, NameIncludesCap) {
  DegreeCappedStrategy heal(3);
  EXPECT_EQ(heal.name(), "DegreeCapped(M=3)");
  EXPECT_EQ(heal.cap(), 3u);
}

}  // namespace
}  // namespace dash::core
