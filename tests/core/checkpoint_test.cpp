// checkpoint_test.cpp -- experiment checkpoint/resume: graph +
// healing-state serialization round-trips, and a resumed schedule is
// bit-identical to an uninterrupted one.
#include <gtest/gtest.h>

#include <sstream>

#include "attack/factory.h"
#include "core/dash.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

void step_max_degree(Graph& g, HealingState& st, DashStrategy& dash) {
  NodeId best = graph::kInvalidNode;
  std::size_t best_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (best == graph::kInvalidNode || g.degree(v) > best_deg) {
      best = v;
      best_deg = g.degree(v);
    }
  }
  const DeletionContext ctx = st.begin_deletion(g, best);
  g.delete_node(best);
  dash.heal(g, st, ctx);
}

TEST(Checkpoint, FreshStateRoundTrips) {
  Rng rng(1);
  Graph g = graph::barabasi_albert(32, 2, rng);
  HealingState st(g, rng);
  std::stringstream buf;
  st.save(buf);
  const HealingState back = HealingState::load(buf);
  EXPECT_TRUE(st == back);
}

TEST(Checkpoint, MidScheduleStateRoundTrips) {
  Rng rng(2);
  Graph g = graph::barabasi_albert(64, 2, rng);
  HealingState st(g, rng);
  DashStrategy dash;
  for (int i = 0; i < 20; ++i) step_max_degree(g, st, dash);

  std::stringstream buf;
  st.save(buf);
  const HealingState back = HealingState::load(buf);
  EXPECT_TRUE(st == back);
  EXPECT_EQ(back.max_delta_ever(), st.max_delta_ever());
  EXPECT_EQ(back.num_healing_edges(), st.num_healing_edges());
}

TEST(Checkpoint, ResumedScheduleMatchesUninterrupted) {
  Rng rng(3);
  const Graph g0 = graph::barabasi_albert(64, 2, rng);

  // Uninterrupted run.
  Rng rng_a(77);
  Graph g_full = g0;
  HealingState st_full(g_full, rng_a);
  DashStrategy dash_a;
  for (int i = 0; i < 40; ++i) step_max_degree(g_full, st_full, dash_a);

  // Interrupted at 20: checkpoint graph + state, reload, continue.
  Rng rng_b(77);
  Graph g_half = g0;
  HealingState st_half(g_half, rng_b);
  DashStrategy dash_b;
  for (int i = 0; i < 20; ++i) step_max_degree(g_half, st_half, dash_b);

  std::stringstream gbuf, sbuf;
  graph::write_edge_list(gbuf, g_half);
  st_half.save(sbuf);
  Graph g_resumed = graph::read_edge_list(gbuf);
  HealingState st_resumed = HealingState::load(sbuf);
  DashStrategy dash_c;
  for (int i = 0; i < 20; ++i) {
    step_max_degree(g_resumed, st_resumed, dash_c);
  }

  EXPECT_TRUE(g_resumed.same_topology(g_full));
  EXPECT_TRUE(st_resumed == st_full);
}

TEST(Checkpoint, MalformedInputThrows) {
  {
    std::istringstream in("not-a-state\n");
    EXPECT_THROW(HealingState::load(in), std::runtime_error);
  }
  {
    std::istringstream in("dashheal-state-v1\n3 0 0\n2 1 1\n");  // short
    EXPECT_THROW(HealingState::load(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(HealingState::load(in), std::runtime_error);
  }
}

TEST(Checkpoint, EqualityDetectsDifferences) {
  Rng rng(5);
  Graph g = graph::barabasi_albert(16, 2, rng);
  Rng rng2(5);
  Graph g2 = graph::barabasi_albert(16, 2, rng2);
  Rng sa(9), sb(9), sc(10);
  const HealingState a(g, sa);
  const HealingState b(g2, sb);
  const HealingState c(g, sc);
  EXPECT_TRUE(a == b);   // same seed stream -> identical ids
  EXPECT_FALSE(a == c);  // different id permutation
}

}  // namespace
}  // namespace dash::core
