#include "core/dash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.h"
#include "analysis/invariants.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::testing::RunSpec;
using dash::testing::run_checked;
using dash::util::Rng;

/// Delete one node and heal, driving the state protocol correctly.
HealAction delete_and_heal(Graph& g, HealingState& st,
                           HealingStrategy& strat, NodeId v) {
  const DeletionContext ctx = st.begin_deletion(g, v);
  g.delete_node(v);
  return strat.heal(g, st, ctx);
}

TEST(Dash, HealsStarDeletionIntoBinaryTree) {
  Rng rng(1);
  Graph g = graph::star_graph(8);  // hub 0, leaves 1..7
  HealingState st(g, rng);
  DashStrategy dash;
  const HealAction a = delete_and_heal(g, st, dash, 0);
  // 7 singleton components reconnect with exactly 6 edges.
  EXPECT_EQ(a.reconnection_set_size, 7u);
  EXPECT_EQ(a.new_graph_edges.size(), 6u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(st.healing_graph_is_forest(g));
  // Complete binary tree on 7 nodes: max RT degree 3, and every member
  // also lost its edge to the hub => max net delta 3 - 1 = 2.
  EXPECT_LE(st.max_delta_ever(), 2u);
}

TEST(Dash, DeletionOfLeafNeedsNoEdges) {
  Rng rng(2);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  DashStrategy dash;
  const HealAction a = delete_and_heal(g, st, dash, 2);  // endpoint
  EXPECT_EQ(a.reconnection_set_size, 1u);
  EXPECT_TRUE(a.new_graph_edges.empty());
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Dash, DeletionOfIsolatedNodeIsNoop) {
  Rng rng(3);
  Graph g(2);
  HealingState st(g, rng);
  DashStrategy dash;
  const HealAction a = delete_and_heal(g, st, dash, 0);
  EXPECT_EQ(a.reconnection_set_size, 0u);
  EXPECT_TRUE(a.new_graph_edges.empty());
}

TEST(Dash, HighDeltaNodesBecomeLeaves) {
  Rng rng(4);
  Graph g = graph::star_graph(8);
  HealingState st(g, rng);
  // Manually burden node 7 so it must be placed as an RT leaf.
  st.add_healing_edge(g, 7, 1);
  st.add_healing_edge(g, 7, 2);
  st.add_healing_edge(g, 7, 3);
  st.propagate_min_id(g, {1, 2, 3, 7});
  const std::int32_t before = st.delta(7);

  DashStrategy dash;
  delete_and_heal(g, st, dash, 0);
  // Node 7 had the strictly largest delta; DASH puts it at a leaf (one
  // new parent edge at most, one hub edge lost), so its delta must not
  // grow.
  EXPECT_LE(st.delta(7), before);
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(Dash, ComponentIdsStayConsistent) {
  Rng rng(5);
  Graph g = graph::barabasi_albert(64, 2, rng);
  HealingState st(g, rng);
  DashStrategy dash;
  dash::util::Rng pick(99);
  for (int round = 0; round < 30; ++round) {
    const auto alive = g.alive_nodes();
    const NodeId v =
        alive[static_cast<std::size_t>(pick.below(alive.size()))];
    delete_and_heal(g, st, dash, v);
    const auto check = analysis::check_component_ids(g, st);
    ASSERT_TRUE(check.ok) << check.violation;
  }
}

TEST(Dash, FullDeletionKeepsConnectivityOnBaGraph) {
  Rng rng(6);
  run_checked(graph::barabasi_albert(128, 2, rng),
              {.attack = "neighborofmax", .healer = "dash", .seed = 7,
               .check_rem = true});
}

TEST(Dash, FullDeletionOnTree) {
  Rng rng(7);
  run_checked(graph::random_tree(100, rng),
              {.attack = "maxnode", .healer = "dash", .seed = 8,
               .check_rem = true});
}

TEST(Dash, FullDeletionOnErdosRenyi) {
  Rng rng(8);
  run_checked(graph::connected_gnp(80, 0.1, rng),
              {.attack = "random", .healer = "dash", .seed = 9,
               .check_rem = true});
}

TEST(Dash, DegreeBoundHoldsToTheEnd) {
  // Theorem 1: delta <= 2 log2 n even when every node is deleted.
  Rng rng(9);
  const std::size_t n = 256;
  const auto result = run_checked(
      graph::barabasi_albert(n, 2, rng),
      {.attack = "neighborofmax", .healer = "dash", .seed = 10});
  EXPECT_LE(result.max_delta,
            static_cast<std::uint32_t>(2.0 * std::log2(n)));
  EXPECT_EQ(result.deletions, n - 1);
}

TEST(Dash, AdaptiveMaxDeltaAttackStillBounded) {
  Rng rng(10);
  const std::size_t n = 128;
  const auto result =
      run_checked(graph::barabasi_albert(n, 2, rng),
                  {.attack = "maxdelta", .healer = "dash", .seed = 11});
  EXPECT_LE(result.max_delta,
            static_cast<std::uint32_t>(2.0 * std::log2(n)));
}

TEST(Dash, CloneIsIndependent) {
  DashStrategy proto;
  auto copy = proto.clone();
  EXPECT_EQ(copy->name(), "DASH");
  EXPECT_TRUE(copy->maintains_forest());
}

}  // namespace
}  // namespace dash::core
