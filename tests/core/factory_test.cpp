#include "core/factory.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dash::core {
namespace {

TEST(Factory, AllCanonicalNames) {
  EXPECT_EQ(make_strategy("dash")->name(), "DASH");
  EXPECT_EQ(make_strategy("sdash")->name(), "SDASH");
  EXPECT_EQ(make_strategy("graph")->name(), "GraphHeal");
  EXPECT_EQ(make_strategy("binarytree")->name(), "BinaryTreeHeal");
  EXPECT_EQ(make_strategy("line")->name(), "LineHeal");
  EXPECT_EQ(make_strategy("none")->name(), "NoHeal");
  EXPECT_EQ(make_strategy("capped:3")->name(), "DegreeCapped(M=3)");
}

TEST(Factory, SdashSlackVariant) {
  EXPECT_EQ(make_strategy("sdash:0")->name(), "SDASH");
  EXPECT_EQ(make_strategy("sdash:4")->name(), "SDASH(slack=4)");
}

TEST(Factory, AliasesAndCase) {
  EXPECT_EQ(make_strategy("DASH")->name(), "DASH");
  EXPECT_EQ(make_strategy("GraphHeal")->name(), "GraphHeal");
  EXPECT_EQ(make_strategy("btree")->name(), "BinaryTreeHeal");
  EXPECT_EQ(make_strategy("NoHeal")->name(), "NoHeal");
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_strategy("bogus"), std::invalid_argument);
  EXPECT_THROW(make_strategy(""), std::invalid_argument);
}

TEST(Factory, PaperStrategySetIsComplete) {
  const auto strategies = paper_strategies();
  ASSERT_EQ(strategies.size(), 5u);
  EXPECT_EQ(strategies[0]->name(), "GraphHeal");
  EXPECT_EQ(strategies[1]->name(), "LineHeal");
  EXPECT_EQ(strategies[2]->name(), "BinaryTreeHeal");
  EXPECT_EQ(strategies[3]->name(), "DASH");
  EXPECT_EQ(strategies[4]->name(), "SDASH");
}

TEST(Factory, ClonePreservesBehavior) {
  for (const auto& name : {"dash", "sdash", "graph", "line"}) {
    const auto proto = make_strategy(name);
    const auto copy = proto->clone();
    EXPECT_EQ(proto->name(), copy->name());
    EXPECT_EQ(proto->maintains_forest(), copy->maintains_forest());
  }
}

TEST(Factory, NamesListNonEmpty) {
  EXPECT_FALSE(strategy_names().empty());
}

}  // namespace
}  // namespace dash::core
