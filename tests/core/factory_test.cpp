#include "core/factory.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dash::core {
namespace {

TEST(Factory, AllCanonicalNames) {
  EXPECT_EQ(make_strategy("dash")->name(), "DASH");
  EXPECT_EQ(make_strategy("sdash")->name(), "SDASH");
  EXPECT_EQ(make_strategy("graph")->name(), "GraphHeal");
  EXPECT_EQ(make_strategy("binarytree")->name(), "BinaryTreeHeal");
  EXPECT_EQ(make_strategy("line")->name(), "LineHeal");
  EXPECT_EQ(make_strategy("none")->name(), "NoHeal");
  EXPECT_EQ(make_strategy("capped:3")->name(), "DegreeCapped(M=3)");
}

TEST(Factory, SdashSlackVariant) {
  EXPECT_EQ(make_strategy("sdash:0")->name(), "SDASH");
  EXPECT_EQ(make_strategy("sdash:4")->name(), "SDASH(slack=4)");
}

TEST(Factory, AliasesAndCase) {
  EXPECT_EQ(make_strategy("DASH")->name(), "DASH");
  EXPECT_EQ(make_strategy("GraphHeal")->name(), "GraphHeal");
  EXPECT_EQ(make_strategy("btree")->name(), "BinaryTreeHeal");
  EXPECT_EQ(make_strategy("NoHeal")->name(), "NoHeal");
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_strategy("bogus"), std::invalid_argument);
  EXPECT_THROW(make_strategy(""), std::invalid_argument);
}

TEST(Factory, UnknownNameErrorListsRegisteredStrategies) {
  try {
    make_strategy("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'bogus'"), std::string::npos) << msg;
    for (const char* expected : {"dash", "sdash", "graph", "binarytree",
                                 "line", "none", "capped:<M>", "btree",
                                 "graphheal", "noheal"}) {
      EXPECT_NE(msg.find(expected), std::string::npos)
          << "missing '" << expected << "' in: " << msg;
    }
  }
}

TEST(Factory, BadParameterThrows) {
  EXPECT_THROW(make_strategy("capped:"), std::invalid_argument);
  EXPECT_THROW(make_strategy("capped:abc"), std::invalid_argument);
  EXPECT_THROW(make_strategy("sdash:x"), std::invalid_argument);
  EXPECT_THROW(make_strategy("dash:3"), std::invalid_argument);
  // A trailing colon is a malformed spec, not an implicit default
  // (a dropped slack value must not silently run slack 0).
  EXPECT_THROW(make_strategy("sdash:"), std::invalid_argument);
  EXPECT_THROW(make_strategy("dash:"), std::invalid_argument);
  // Out-of-range values must not wrap at the uint32 cast: -1 and
  // 2^32+2 would otherwise both silently become small caps.
  EXPECT_THROW(make_strategy("capped:-1"), std::invalid_argument);
  EXPECT_THROW(make_strategy("capped:4294967298"), std::invalid_argument);
  EXPECT_THROW(make_strategy("sdash:4294967296"), std::invalid_argument);
}

TEST(Factory, RegistryServesLookupsAndAcceptsNewEntries) {
  // make_strategy is a forwarder over the single registry instance.
  EXPECT_TRUE(healer_registry().contains("dash"));
  EXPECT_TRUE(healer_registry().contains("capped:2"));
  EXPECT_FALSE(healer_registry().contains("custom-test-healer"));

  healer_registry().add(
      "custom-test-healer",
      [](const std::string&) { return make_strategy("dash"); });
  EXPECT_EQ(make_strategy("custom-test-healer")->name(), "DASH");
  // Re-registering the same name is a programming error.
  EXPECT_THROW(healer_registry().add("custom-test-healer",
                                     [](const std::string&) {
                                       return make_strategy("dash");
                                     }),
               std::logic_error);
}

TEST(Factory, PaperStrategySetIsComplete) {
  const auto strategies = paper_strategies();
  ASSERT_EQ(strategies.size(), 5u);
  EXPECT_EQ(strategies[0]->name(), "GraphHeal");
  EXPECT_EQ(strategies[1]->name(), "LineHeal");
  EXPECT_EQ(strategies[2]->name(), "BinaryTreeHeal");
  EXPECT_EQ(strategies[3]->name(), "DASH");
  EXPECT_EQ(strategies[4]->name(), "SDASH");
}

TEST(Factory, ClonePreservesBehavior) {
  for (const auto& name : {"dash", "sdash", "graph", "line"}) {
    const auto proto = make_strategy(name);
    const auto copy = proto->clone();
    EXPECT_EQ(proto->name(), copy->name());
    EXPECT_EQ(proto->maintains_forest(), copy->maintains_forest());
  }
}

TEST(Factory, NamesListNonEmpty) {
  EXPECT_FALSE(strategy_names().empty());
}

}  // namespace
}  // namespace dash::core
