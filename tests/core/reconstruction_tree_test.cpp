#include "core/reconstruction_tree.h"

#include <gtest/gtest.h>

#include <vector>

namespace dash::core {
namespace {

TEST(BinaryTree, SmallSizes) {
  EXPECT_TRUE(complete_binary_tree_edges(0).empty());
  EXPECT_TRUE(complete_binary_tree_edges(1).empty());
  using E = std::vector<std::pair<std::size_t, std::size_t>>;
  EXPECT_EQ(complete_binary_tree_edges(2), (E{{0, 1}}));
  EXPECT_EQ(complete_binary_tree_edges(4), (E{{0, 1}, {0, 2}, {1, 3}}));
}

TEST(BinaryTree, EdgeCountIsKMinusOne) {
  for (std::size_t k : {2u, 3u, 7u, 16u, 33u}) {
    EXPECT_EQ(complete_binary_tree_edges(k).size(), k - 1);
  }
}

TEST(BinaryTree, MaxDegreeIsThree) {
  // Every slot appears in at most 3 edges (parent + two children).
  constexpr std::size_t k = 25;
  std::vector<int> deg(k, 0);
  for (auto [a, b] : complete_binary_tree_edges(k)) {
    ++deg[a];
    ++deg[b];
  }
  for (auto d : deg) EXPECT_LE(d, 3);
  EXPECT_LE(deg[0], 2);  // root has no parent
}

TEST(BinaryTree, AtLeastHalfAreLeaves) {
  for (std::size_t k = 1; k <= 40; ++k) {
    std::size_t leaves = 0;
    for (std::size_t i = 0; i < k; ++i) {
      if (binary_tree_is_leaf(i, k)) ++leaves;
    }
    EXPECT_GE(2 * leaves, k) << "k=" << k;
  }
}

TEST(BinaryTree, LeafPredicateMatchesEdges) {
  constexpr std::size_t k = 13;
  std::vector<int> children(k, 0);
  for (auto [a, b] : complete_binary_tree_edges(k)) {
    (void)b;
    ++children[a];
  }
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(binary_tree_is_leaf(i, k), children[i] == 0) << "i=" << i;
  }
}

TEST(BinaryTree, DepthOfSlots) {
  EXPECT_EQ(binary_tree_depth_of(0), 0u);
  EXPECT_EQ(binary_tree_depth_of(1), 1u);
  EXPECT_EQ(binary_tree_depth_of(2), 1u);
  EXPECT_EQ(binary_tree_depth_of(3), 2u);
  EXPECT_EQ(binary_tree_depth_of(6), 2u);
  EXPECT_EQ(binary_tree_depth_of(7), 3u);
}

TEST(BinaryTree, DepthIsLogarithmic) {
  // Depth of the last slot of a k-slot complete tree is floor(log2(k)).
  for (std::size_t k : {2u, 3u, 4u, 8u, 15u, 16u, 100u}) {
    const std::size_t depth = binary_tree_depth_of(k - 1);
    EXPECT_LE(1u << depth, k);
    EXPECT_GT(1u << (depth + 1), k / 2);
  }
}

TEST(Line, EdgesFormAPath) {
  using E = std::vector<std::pair<std::size_t, std::size_t>>;
  EXPECT_TRUE(line_edges(1).empty());
  EXPECT_EQ(line_edges(4), (E{{0, 1}, {1, 2}, {2, 3}}));
}

TEST(Star, EdgesCenterEverywhere) {
  const auto edges = star_edges(5, 2);
  EXPECT_EQ(edges.size(), 4u);
  for (auto [c, x] : edges) {
    EXPECT_EQ(c, 2u);
    EXPECT_NE(x, 2u);
  }
}

TEST(Star, TrivialSizes) {
  EXPECT_TRUE(star_edges(0, 0).empty());
  EXPECT_TRUE(star_edges(1, 0).empty());
}

}  // namespace
}  // namespace dash::core
