#include "core/sdash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::core {
namespace {

using dash::testing::RunSpec;
using dash::testing::run_checked;
using dash::util::Rng;

HealAction delete_and_heal(Graph& g, HealingState& st,
                           HealingStrategy& strat, NodeId v) {
  const DeletionContext ctx = st.begin_deletion(g, v);
  g.delete_node(v);
  return strat.heal(g, st, ctx);
}

TEST(Sdash, SurrogateKeepsForestAndConnectivity) {
  Rng rng(1);
  Graph g = graph::star_graph(4);  // hub 0, leaves 1,2,3
  HealingState st(g, rng);
  st.add_healing_edge(g, 3, 1);
  st.add_healing_edge(g, 3, 2);
  st.propagate_min_id(g, {1, 2, 3});

  SdashStrategy sdash;
  delete_and_heal(g, st, sdash, 0);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_TRUE(st.healing_graph_is_forest(g));
}

TEST(Sdash, SurrogateConditionExactlyAlgorithm3) {
  // Target: |S| = 2 with delta(w)=0 and delta(m)=1, so the Algorithm 3
  // test  delta(w) + |S| - 1 <= delta(m)  reads 0 + 1 <= 1 and fires.
  Rng rng(3);
  Graph h = graph::star_graph(4);  // hub 0, leaves 1,2,3
  HealingState st(h, rng);
  st.add_healing_edge(h, 1, 2);  // delta(1)=delta(2)=1
  st.propagate_min_id(h, {1, 2});
  // Deleting the hub: UN = { rep{1,2}, 3 }, so S = {3 (delta 0), rep
  // (delta 1)}.
  SdashStrategy sdash;
  const HealAction a = delete_and_heal(h, st, sdash, 0);
  EXPECT_TRUE(graph::is_connected(h));
  EXPECT_TRUE(a.used_surrogate);
  // w = node 3 gained one star edge and lost its hub edge: net 0.
  EXPECT_EQ(st.delta(3), 0);
}

TEST(Sdash, FallsBackToBinaryTree) {
  Rng rng(4);
  Graph g = graph::star_graph(8);  // all deltas equal (0)
  HealingState st(g, rng);
  SdashStrategy sdash;
  const HealAction a = delete_and_heal(g, st, sdash, 0);
  // Condition: 0 + 7 - 1 = 6 <= 0 fails => DASH-style tree.
  EXPECT_FALSE(a.used_surrogate);
  EXPECT_EQ(a.new_graph_edges.size(), 6u);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_LE(st.max_delta_ever(), 3u);
}

TEST(Sdash, FullScheduleInvariantsOnBaGraph) {
  Rng rng(5);
  run_checked(graph::barabasi_albert(128, 2, rng),
              {.attack = "neighborofmax", .healer = "sdash", .seed = 6});
}

TEST(Sdash, FullScheduleOnMaxNodeAttack) {
  Rng rng(6);
  run_checked(graph::barabasi_albert(96, 2, rng),
              {.attack = "maxnode", .healer = "sdash", .seed = 7});
}

TEST(Sdash, EmpiricalDegreeStaysLogarithmic) {
  // The paper observes (not proves) delta <= ~2 log2 n for SDASH; give
  // a small safety factor.
  Rng rng(7);
  const std::size_t n = 256;
  const auto result = run_checked(
      graph::barabasi_albert(n, 2, rng),
      {.attack = "neighborofmax", .healer = "sdash", .seed = 8});
  EXPECT_LE(result.max_delta,
            static_cast<std::uint32_t>(3.0 * std::log2(n)));
}

TEST(Sdash, StretchStaysModestUnderMaxNodeAttack) {
  Rng rng(8);
  const std::size_t n = 64;
  const auto result = run_checked(
      graph::barabasi_albert(n, 2, rng),
      {.attack = "maxnode", .healer = "sdash", .seed = 9,
       .track_stretch = true, .max_deletions = n / 2});
  // Sec 4.6: SDASH keeps stretch around O(log n); generous cap.
  EXPECT_LE(result.max_stretch, 2.0 * std::log2(n));
}

TEST(SdashSlack, SlackLoosensTrigger) {
  // Star of equals: paper rule (slack 0) never surrogates, generous
  // slack always does.
  Rng rng(20);
  Graph g0 = graph::star_graph(6);
  HealingState st0(g0, rng);
  SdashStrategy strict(0);
  const HealAction a0 = delete_and_heal(g0, st0, strict, 0);
  EXPECT_FALSE(a0.used_surrogate);

  Rng rng2(20);
  Graph g1 = graph::star_graph(6);
  HealingState st1(g1, rng2);
  SdashStrategy loose(10);
  const HealAction a1 = delete_and_heal(g1, st1, loose, 0);
  EXPECT_TRUE(a1.used_surrogate);
  EXPECT_TRUE(graph::is_connected(g1));
  EXPECT_TRUE(st1.healing_graph_is_forest(g1));
}

TEST(SdashSlack, NameAndFactory) {
  EXPECT_EQ(SdashStrategy(0).name(), "SDASH");
  EXPECT_EQ(SdashStrategy(3).name(), "SDASH(slack=3)");
  EXPECT_EQ(SdashStrategy(3).surrogate_slack(), 3u);
}

TEST(SdashSlack, FullScheduleStaysConnectedAndBounded) {
  // Generous slack costs at most ~slack above the set's max delta per
  // heal; over a schedule the degree stays modest.
  Rng rng(21);
  Graph g = graph::barabasi_albert(128, 2, rng);
  api::Network net(std::move(g), make_strategy("sdash:4"), rng);
  auto atk = attack::make_attack("maxnode", 22);
  const auto r = net.run(*atk);
  EXPECT_TRUE(r.stayed_connected);
  EXPECT_LE(r.max_delta, static_cast<std::uint32_t>(
                             2.0 * std::log2(128.0)) + 4);
}

TEST(Sdash, SurrogateCountReported) {
  Rng rng(9);
  Graph g = graph::barabasi_albert(128, 2, rng);
  const auto result = run_checked(
      std::move(g),
      {.attack = "neighborofmax", .healer = "sdash", .seed = 10});
  // On a long schedule SDASH should fire the surrogate rule at least
  // once (deltas diverge quickly under NMS).
  EXPECT_GT(result.surrogate_heals, 0u);
}

}  // namespace
}  // namespace dash::core
