// Tests for exp::ExperimentSpec: parsing (one-line + file forms),
// validation, canonicalization/hashing, and the deterministic cell
// enumeration the sharded runner builds on.
#include "exp/spec.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace dash::exp {
namespace {

TEST(ExperimentSpec, ParsesOneLineForm) {
  const auto spec = ExperimentSpec::parse_line(
      "n=64|128 healer=dash|sdash scenario=paper-churn instances=5 seed=7");
  EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{64, 128}));
  EXPECT_EQ(spec.healers, (std::vector<std::string>{"dash", "sdash"}));
  EXPECT_EQ(spec.scenarios, (std::vector<std::string>{"paper-churn"}));
  EXPECT_EQ(spec.instances, 5u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.families, (std::vector<std::string>{"ba"}));  // default
}

TEST(ExperimentSpec, ParsesFileFormWithCommentsAndSpaces) {
  std::istringstream in(
      "# demo sweep\n"
      "name      = demo\n"
      "family    = ba | tree\n"
      "n         = 16 | 32\n"
      "healer    = dash\n"
      "scenario  = batch:4x3   # trailing comment\n"
      "\n"
      "instances = 2\n");
  const auto spec = ExperimentSpec::parse(in);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.families, (std::vector<std::string>{"ba", "tree"}));
  EXPECT_EQ(spec.sizes, (std::vector<std::size_t>{16, 32}));
  EXPECT_EQ(spec.scenarios, (std::vector<std::string>{"batch:4x3"}));
  EXPECT_EQ(spec.instances, 2u);
}

TEST(ExperimentSpec, LineAndFileFormsAgree) {
  const auto line = ExperimentSpec::parse_line(
      "n=16|32 healer=dash|graph scenario=until-quarter instances=3");
  std::istringstream in(
      "n = 16|32\nhealer = dash|graph\nscenario = until-quarter\n"
      "instances = 3\n");
  const auto file = ExperimentSpec::parse(in);
  EXPECT_EQ(line.canonical(), file.canonical());
  EXPECT_EQ(line.hash(), file.hash());
}

TEST(ExperimentSpec, CanonicalRoundTripsAndScenariosAreCanonicalized) {
  const auto spec = ExperimentSpec::parse_line(
      "n=16 scenario=CHURN:0.3,0.1x50 healer=dash instances=2");
  const auto again = ExperimentSpec::parse_line(spec.canonical());
  EXPECT_EQ(spec.canonical(), again.canonical());
  // The canonical form spells the scenario the way Scenario::spec does.
  EXPECT_NE(spec.canonical().find("churn:0.3,0.1x50"), std::string::npos);
}

TEST(ExperimentSpec, HashChangesWithAnyGridAxis) {
  const auto base = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn instances=2 seed=1");
  for (const char* variant :
       {"n=32 healer=dash scenario=paper-churn instances=2 seed=1",
        "n=16 healer=sdash scenario=paper-churn instances=2 seed=1",
        "n=16 healer=dash scenario=until-quarter instances=2 seed=1",
        "n=16 healer=dash scenario=paper-churn instances=3 seed=1",
        "n=16 healer=dash scenario=paper-churn instances=2 seed=2"}) {
    EXPECT_NE(base.hash(), ExperimentSpec::parse_line(variant).hash())
        << variant;
  }
}

TEST(ExperimentSpec, RejectsMalformedInput) {
  // Unknown key, duplicate key, empty list item, zero counts, bad
  // token shape, empty spec.
  EXPECT_THROW(ExperimentSpec::parse_line("n=16 scenario=x bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(
      ExperimentSpec::parse_line("n=16 n=32 healer=dash scenario=x"),
      std::invalid_argument);
  EXPECT_THROW(
      ExperimentSpec::parse_line("n=16| healer=dash scenario=paper-churn"),
      std::invalid_argument);
  EXPECT_THROW(
      ExperimentSpec::parse_line("n=0 healer=dash scenario=paper-churn"),
      std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::parse_line(
                   "n=16 healer=dash scenario=paper-churn instances=0"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::parse_line("n16 healer=dash scenario=x"),
               std::invalid_argument);
  EXPECT_THROW(ExperimentSpec::parse_line("   "), std::invalid_argument);
}

TEST(ExperimentSpec, ValidateResolvesNamesThroughRegistries) {
  auto parse = [](const std::string& line) {
    return ExperimentSpec::parse_line(line);
  };
  // Unknown healer: the error lists registered spellings.
  try {
    parse("n=16 healer=nosuchhealer scenario=paper-churn");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("dash"), std::string::npos);
  }
  // Unknown scenario phase / preset: ditto, presets included.
  try {
    parse("n=16 healer=dash scenario=nosuchpreset");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("paper-churn"), std::string::npos);
  }
  // Unknown family and connectivity/labels modes.
  EXPECT_THROW(parse("n=16 healer=dash scenario=paper-churn family=blob"),
               std::invalid_argument);
  EXPECT_THROW(
      parse("n=16 healer=dash scenario=paper-churn connectivity=psychic"),
      std::invalid_argument);
  EXPECT_THROW(parse("n=16 healer=dash scenario=paper-churn labels=emoji"),
               std::invalid_argument);
}

TEST(ExperimentSpec, EnumerationIsStableAndContiguous) {
  const auto spec = ExperimentSpec::parse_line(
      "family=ba|tree n=16|32 healer=dash|graph "
      "scenario=paper-churn|until-quarter instances=2 seed=3");
  const auto cells = spec.enumerate();
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * 2u);
  // Family outermost, then n, healer, scenario; indices contiguous.
  EXPECT_EQ(cells[0].family, "ba");
  EXPECT_EQ(cells[0].n, 16u);
  EXPECT_EQ(cells[0].healer, "dash");
  EXPECT_EQ(cells[0].scenario, "paper-churn");
  EXPECT_EQ(cells[1].scenario, "until-quarter");
  EXPECT_EQ(cells[2].healer, "graph");
  EXPECT_EQ(cells[4].n, 32u);
  EXPECT_EQ(cells[8].family, "tree");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, i);
    EXPECT_EQ(cells[i].instances, 2u);
  }
  // Re-enumeration is identical (no hidden state).
  const auto again = spec.enumerate();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].seed, again[i].seed);
    EXPECT_EQ(cells[i].scenario, again[i].scenario);
  }
}

TEST(ExperimentSpec, CellSeedsArePairedAcrossHealersAndScenarios) {
  const auto spec = ExperimentSpec::parse_line(
      "n=16|32 healer=dash|graph scenario=paper-churn|until-quarter "
      "instances=2 seed=3");
  const auto cells = spec.enumerate();
  for (const Cell& cell : cells) {
    for (const Cell& other : cells) {
      if (cell.n == other.n) {
        EXPECT_EQ(cell.seed, other.seed)
            << "cells at the same size must draw identical instance "
               "streams (paired comparison)";
      }
    }
  }
  EXPECT_NE(cells.front().seed, cells.back().seed);
}

TEST(ExperimentSpec, LabelsModeControlsStrategyLabel) {
  const auto display = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn");
  EXPECT_EQ(display.enumerate()[0].strategy_label, "DASH");
  const auto raw = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn labels=spec");
  EXPECT_EQ(raw.enumerate()[0].strategy_label, "dash");
}

TEST(ExperimentSpec, CellLabelsElideDefaultFamily) {
  const auto spec = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn");
  EXPECT_FALSE(spec.label_family());
  const auto labels = spec.enumerate()[0].labels(spec.label_family());
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0].first, "n");
  EXPECT_EQ(labels[1].first, "strategy");
  EXPECT_EQ(labels[2].first, "scenario");

  const auto tree = ExperimentSpec::parse_line(
      "n=16 family=tree healer=dash scenario=paper-churn");
  EXPECT_TRUE(tree.label_family());
  EXPECT_EQ(tree.enumerate()[0].labels(true)[0].first, "family");
}

TEST(MakeFamily, KnownFamiliesProduceGraphsOfRequestedSize) {
  util::Rng rng(99);
  for (const auto& family : family_names()) {
    auto make = make_family(family, 24, 2);
    const auto g = make(rng);
    EXPECT_EQ(g.num_alive(), 24u) << family;
  }
}

TEST(MakeFamily, UnknownFamilyErrorListsNames) {
  try {
    make_family("hypercube", 16, 2);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ba"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos);
  }
}

}  // namespace
}  // namespace dash::exp
