// Chaos-plan tests: spec parsing, env arming, the no-op paths of
// chaos_strike, and worker-status formatting. The lethal paths (a
// strike actually delivering SIGKILL, torn half-line writes recovered
// by --resume) are exercised end-to-end by the replay_chaos smoke.
#include "exp/chaos.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "exp/orchestrator.h"

namespace dash::exp {
namespace {

TEST(Chaos, ParsesKillAndTorn) {
  const ChaosPlan kill = parse_chaos("kill:7");
  EXPECT_EQ(kill.kind, ChaosPlan::Kind::kKill);
  EXPECT_EQ(kill.cell, 7u);
  EXPECT_TRUE(kill.armed());

  const ChaosPlan torn = parse_chaos("torn:0");
  EXPECT_EQ(torn.kind, ChaosPlan::Kind::kTorn);
  EXPECT_EQ(torn.cell, 0u);
  EXPECT_TRUE(torn.armed());

  EXPECT_FALSE(parse_chaos("").armed());
}

TEST(Chaos, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_chaos("kill"), std::invalid_argument);
  EXPECT_THROW(parse_chaos("kill:"), std::invalid_argument);
  EXPECT_THROW(parse_chaos("kill:x"), std::invalid_argument);
  EXPECT_THROW(parse_chaos("kill:1x"), std::invalid_argument);
  EXPECT_THROW(parse_chaos("kill:-1"), std::invalid_argument);
  EXPECT_THROW(parse_chaos("maim:3"), std::invalid_argument);
  EXPECT_THROW(parse_chaos(":3"), std::invalid_argument);
}

TEST(Chaos, EnvUnsetIsUnarmed) {
  ::unsetenv(kChaosEnv);
  EXPECT_FALSE(chaos_from_env().armed());
  ::setenv(kChaosEnv, "torn:4", 1);
  const ChaosPlan plan = chaos_from_env();
  ::unsetenv(kChaosEnv);
  EXPECT_EQ(plan.kind, ChaosPlan::Kind::kTorn);
  EXPECT_EQ(plan.cell, 4u);
}

TEST(Chaos, StrikeIsNoOpWhenUnarmedOrOffTarget) {
  std::ostringstream out;
  chaos_strike(ChaosPlan{}, 0, out, "record");
  ChaosPlan plan;
  plan.kind = ChaosPlan::Kind::kKill;
  plan.cell = 3;
  chaos_strike(plan, 2, out, "record");  // wrong cell: survives
  plan.kind = ChaosPlan::Kind::kTorn;
  chaos_strike(plan, 4, out, "record");
  EXPECT_EQ(out.str(), "");  // nothing written on any no-op path
}

using ChaosDeathTest = ::testing::Test;

TEST(ChaosDeathTest, KillStrikeDiesBeforeWriting) {
  ChaosPlan plan;
  plan.kind = ChaosPlan::Kind::kKill;
  plan.cell = 1;
  EXPECT_EXIT(
      {
        std::ostringstream out;
        chaos_strike(plan, 1, out, "{\"cell\":1}");
      },
      ::testing::KilledBySignal(SIGKILL), "");
}

TEST(ChaosDeathTest, TornStrikeWritesHalfThenDies) {
  ChaosPlan plan;
  plan.kind = ChaosPlan::Kind::kTorn;
  plan.cell = 0;
  EXPECT_EXIT(
      {
        // Route the torn half-line to stderr so the death-test matcher
        // can see the bytes that made it out before SIGKILL.
        chaos_strike(plan, 0, std::cerr, "ABCDEFGH");
      },
      ::testing::KilledBySignal(SIGKILL), "ABCD");
}

TEST(Chaos, WorkerStatusDescribes) {
  WorkerStatus ok;
  ok.shard = 0;
  ok.count = 2;
  ok.exited = true;
  ok.exit_code = 0;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.describe(), "shard 0/2: ok");

  WorkerStatus bad = ok;
  bad.shard = 1;
  bad.exit_code = 2;
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.describe(), "shard 1/2: exit 2");

  WorkerStatus killed;
  killed.shard = 1;
  killed.count = 4;
  killed.signaled = true;
  killed.signal_no = SIGKILL;
  EXPECT_FALSE(killed.ok());
  EXPECT_EQ(killed.describe(), "shard 1/4: killed by signal 9 (Killed)");

  WorkerStatus lost;
  lost.shard = 3;
  lost.count = 4;
  EXPECT_FALSE(lost.ok());
  EXPECT_EQ(lost.describe(), "shard 3/4: wait failed");
}

}  // namespace
}  // namespace dash::exp
