// Per-shard rows I/O tests: the rows-file grammar, crash-tolerant
// loading, canonical merging (sorting, duplicate collapse, conflict
// rejection), and the runner's on_rows hook staying bit-for-bit in
// sync with the in-process CsvStreamSink column formatter.
#include "exp/runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/sink.h"
#include "exp/spec.h"

namespace dash::exp {
namespace {

api::RoundRow sample_row() {
  api::RoundRow row;
  row.instance = 2;
  row.seq = 5;
  row.round = 7;
  row.deletions_in_round = 1;
  row.event_node = 13;
  row.alive = 30;
  row.edges = 61;
  row.edges_added = 4;
  row.max_delta = 3;
  row.largest_component = 30;
  row.stretch = 1.5;
  row.stretch_sampled = true;
  return row;
}

std::string write_temp(const std::string& content) {
  static int counter = 0;
  const std::string path = ::testing::TempDir() + "dash_rows_test_" +
                           std::to_string(counter++) + ".csv";
  std::ofstream out(path, std::ios::trunc);
  out << content;
  return path;
}

TEST(Rows, LineRoundTripsThroughParse) {
  const api::RoundRow row = sample_row();
  const std::string line = rows_line(9, row);
  RowsRecord record;
  ASSERT_TRUE(parse_rows_line(line, &record));
  EXPECT_EQ(record.cell, 9u);
  EXPECT_EQ(record.seq, 5u);
  EXPECT_EQ(record.instance, 2u);
  EXPECT_EQ(record.line, line);
  EXPECT_EQ(rows_header().rfind("cell,seq,instance,", 0), 0u);
}

TEST(Rows, LineEmbedsCsvStreamSinkBytes) {
  // The fields after the (cell, seq) prefix must be exactly what
  // CsvStreamSink writes for the same row -- the byte-identity bridge
  // between sharded rows files and in-process CSV streams.
  const api::RoundRow row = sample_row();
  std::ostringstream os;
  api::CsvStreamSink sink(os);
  sink.on_row(row);
  sink.flush();
  const std::string csv = os.str();
  const std::size_t header_end = csv.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  const std::string csv_row =
      csv.substr(header_end + 1, csv.size() - header_end - 2);
  EXPECT_EQ(rows_line(3, row), "3,5," + csv_row);
  const std::string csv_header = csv.substr(0, header_end);
  EXPECT_EQ(rows_header(), "cell,seq," + csv_header);
}

TEST(Rows, ParseRejectsTruncatedLines) {
  const std::string line = rows_line(1, sample_row());
  RowsRecord record;
  for (std::size_t cut = 1; cut + 1 < line.size(); cut += 7) {
    EXPECT_FALSE(parse_rows_line(line.substr(0, cut), &record))
        << "accepted truncation at " << cut;
  }
  EXPECT_FALSE(parse_rows_line("", &record));
  EXPECT_FALSE(parse_rows_line("a,b,c", &record));
}

TEST(Rows, MergedRowsSortsAndCollapsesDuplicates) {
  api::RoundRow a = sample_row();
  a.instance = 0;
  a.seq = 0;
  api::RoundRow b = sample_row();
  b.instance = 0;
  b.seq = 1;
  api::RoundRow c = sample_row();
  c.instance = 1;
  c.seq = 0;

  std::vector<RowsRecord> records;
  auto push = [&](std::size_t cell, const api::RoundRow& row) {
    RowsRecord rec;
    rec.cell = cell;
    rec.instance = row.instance;
    rec.seq = row.seq;
    rec.line = rows_line(cell, row);
    records.push_back(rec);
  };
  // Out of order, with one identical duplicate (a crash-resumed worker
  // re-emitting rows it already persisted).
  push(1, c);
  push(0, b);
  push(1, c);
  push(0, a);

  const std::string doc = merged_rows(records);
  std::string want = rows_header() + "\n" + rows_line(0, a) + "\n" +
                     rows_line(0, b) + "\n" + rows_line(1, c) + "\n";
  EXPECT_EQ(doc, want);
}

TEST(Rows, MergedRowsRejectsConflicts) {
  api::RoundRow a = sample_row();
  api::RoundRow b = sample_row();
  b.alive -= 1;  // same key, different content
  RowsRecord ra{3, a.instance, a.seq, rows_line(3, a)};
  RowsRecord rb{3, b.instance, b.seq, rows_line(3, b)};
  EXPECT_THROW(merged_rows({ra, rb}), std::invalid_argument);
}

TEST(Rows, LoadToleratesTruncatedFinalLine) {
  const api::RoundRow row = sample_row();
  const std::string good = rows_line(0, row);
  const std::string path = write_temp(rows_header() + "\n" + good + "\n" +
                                      good.substr(0, good.size() / 2));
  const auto records = load_rows_file(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].line, good);
  std::remove(path.c_str());
}

TEST(Rows, LoadRejectsInteriorCorruptionAndBadHeader) {
  const std::string good = rows_line(0, sample_row());
  const std::string bad_interior = write_temp(
      rows_header() + "\nnot,a,row\n" + good + "\n");
  EXPECT_THROW(load_rows_file(bad_interior), std::invalid_argument);
  std::remove(bad_interior.c_str());

  const std::string bad_header = write_temp("wrong,header\n" + good + "\n");
  EXPECT_THROW(load_rows_file(bad_header), std::invalid_argument);
  std::remove(bad_header.c_str());

  EXPECT_THROW(load_rows_file(::testing::TempDir() + "does_not_exist.csv"),
               std::invalid_argument);
}

TEST(Rows, RunnerStreamsRowsPerCell) {
  const ExperimentSpec spec = ExperimentSpec::parse_line(
      "name=rows n=16 healer=dash scenario=until-quarter instances=2 "
      "seed=3");
  RunnerOptions opt;
  opt.threads = 1;
  std::vector<std::string> lines;
  std::size_t cells = 0;
  opt.on_rows = [&](const Cell& cell,
                    const std::vector<api::RoundRow>& rows) {
    ++cells;
    ASSERT_FALSE(rows.empty());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) {
        // Buffered suite order: instance-major, seq ascending.
        const bool ordered =
            rows[i - 1].instance < rows[i].instance ||
            (rows[i - 1].instance == rows[i].instance &&
             rows[i - 1].seq < rows[i].seq);
        EXPECT_TRUE(ordered) << "row " << i << " out of order";
      }
      lines.push_back(rows_line(cell.index, rows[i]));
    }
  };
  const auto results = run(spec, opt);
  EXPECT_EQ(cells, 1u);
  ASSERT_EQ(results.size(), 1u);

  // on_rows must not perturb the run: metrics match a row-less run.
  RunnerOptions bare;
  bare.threads = 1;
  const auto baseline = run(spec, bare);
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_EQ(results[0].group_json, baseline[0].group_json);

  // And the collected lines round-trip through the merge formatter.
  std::vector<RowsRecord> records;
  for (const std::string& line : lines) {
    RowsRecord rec;
    ASSERT_TRUE(parse_rows_line(line, &rec));
    records.push_back(rec);
  }
  const std::string doc = merged_rows(records);
  EXPECT_EQ(doc, rows_header() + "\n" +
                     [&] {
                       std::string body;
                       for (const auto& line : lines) {
                         body += line;
                         body += '\n';
                       }
                       return body;
                     }());
}

}  // namespace
}  // namespace dash::exp
