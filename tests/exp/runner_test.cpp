// Tests for the sharded runner and merge semantics: any partition of a
// grid's cells, run in any order, must reassemble into the byte-exact
// BENCH_*.json document a single-process sequential run produces -- and
// merge must reject records that could not have come from this spec.
#include "exp/runner.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/api.h"
#include "exp/spec.h"

namespace dash::exp {
namespace {

ExperimentSpec tiny_spec() {
  return ExperimentSpec::parse_line(
      "name=tiny n=16|24 healer=dash|graph "
      "scenario=paper-churn|until-quarter instances=2 seed=21");
}

/// All records of one shard, via the streaming hook.
std::vector<ShardRecord> run_shard(const ExperimentSpec& spec,
                                   std::size_t index, std::size_t count,
                                   std::size_t threads = 1) {
  RunnerOptions opt;
  opt.shard = {index, count};
  opt.threads = threads;
  std::vector<ShardRecord> records;
  opt.on_cell = [&](const CellResult& result) {
    records.push_back(to_record(spec, result));
  };
  run(spec, opt);
  return records;
}

/// The ground truth a sequential whole-document run produces: every
/// cell fed through one JsonSummarySink, exactly as the pre-exp figure
/// benches wrote their --json files.
std::string sequential_document(const ExperimentSpec& spec) {
  std::ostringstream os;
  api::JsonSummarySink sink(os);
  for (const Cell& cell : spec.enumerate()) {
    api::SuiteConfig cfg;
    cfg.make_graph = make_family(cell.family, cell.n, spec.ba_edges);
    cfg.make_healer = api::healer_factory(cell.healer);
    cfg.scenario = api::Scenario::parse(cell.scenario);
    cfg.instances = cell.instances;
    cfg.base_seed = cell.seed;
    sink.begin_group(cell.labels(spec.label_family()));
    cfg.sinks.push_back(&sink);
    api::run_suite(cfg);
  }
  sink.flush();
  return os.str();
}

TEST(Runner, ShardZeroOfOneRunsEveryCell) {
  const auto spec = tiny_spec();
  const auto records = run_shard(spec, 0, 1);
  EXPECT_EQ(records.size(), spec.enumerate().size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].cell, i);
    EXPECT_EQ(records[i].spec_hash, spec.hash());
  }
}

TEST(Runner, ShardsPartitionTheCellList) {
  const auto spec = tiny_spec();
  const auto s0 = run_shard(spec, 0, 3);
  const auto s1 = run_shard(spec, 1, 3);
  const auto s2 = run_shard(spec, 2, 3);
  std::set<std::size_t> seen;
  for (const auto* shard : {&s0, &s1, &s2}) {
    for (const auto& record : *shard) {
      EXPECT_TRUE(seen.insert(record.cell).second)
          << "cell " << record.cell << " ran in two shards";
    }
  }
  EXPECT_EQ(seen.size(), spec.enumerate().size());
}

TEST(Runner, MergedShardsAreByteIdenticalToSequentialDocument) {
  const auto spec = tiny_spec();
  const std::string expected = sequential_document(spec);

  // 1 shard, 2 shards, 3 shards -- all reassemble to the same bytes,
  // regardless of record order and of suite-pool parallelism.
  for (const std::size_t count : {1u, 2u, 3u}) {
    std::vector<ShardRecord> records;
    for (std::size_t index = count; index-- > 0;) {  // reversed order
      const auto shard =
          run_shard(spec, index, count, index % 2 == 0 ? 1 : 4);
      records.insert(records.end(), shard.begin(), shard.end());
    }
    EXPECT_EQ(merged_document(spec, records), expected)
        << count << " shards";
  }
}

TEST(Runner, MergedDocumentCarriesConnectivityAggregates) {
  const auto spec = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn instances=2 seed=4");
  const auto doc = merged_document(spec, run_shard(spec, 0, 1));
  // Metrics::components / largest_component must survive the shard
  // round trip into the runs and summary sections.
  EXPECT_NE(doc.find("\"components\""), std::string::npos);
  EXPECT_NE(doc.find("\"largest_component\""), std::string::npos);
  EXPECT_NE(doc.find("\"summary\""), std::string::npos);
}

TEST(Runner, SkipSetSuppressesCells) {
  const auto spec = tiny_spec();
  RunnerOptions opt;
  opt.threads = 1;
  const std::set<std::size_t> skip{0, 3, 5};
  opt.skip = &skip;
  const auto results = run(spec, opt);
  EXPECT_EQ(results.size(), spec.enumerate().size() - skip.size());
  for (const auto& result : results) {
    EXPECT_EQ(skip.count(result.cell.index), 0u);
  }
}

TEST(Runner, SkippedCellsMergeWithPriorRecords) {
  const auto spec = tiny_spec();
  const auto all = run_shard(spec, 0, 1);

  // Resume contract: cells 'already on disk' are skipped, the fresh
  // records for the rest plus the prior records merge byte-identically.
  RunnerOptions opt;
  opt.threads = 1;
  std::set<std::size_t> skip{1, 2, 6};
  opt.skip = &skip;
  std::vector<ShardRecord> records;
  opt.on_cell = [&](const CellResult& result) {
    records.push_back(to_record(spec, result));
  };
  run(spec, opt);
  for (const std::size_t i : skip) records.push_back(all[i]);
  EXPECT_EQ(merged_document(spec, records), merged_document(spec, all));
}

TEST(Runner, RejectsBadShardOptions) {
  const auto spec = tiny_spec();
  RunnerOptions opt;
  opt.shard = {0, 0};
  EXPECT_THROW(run(spec, opt), std::invalid_argument);
  opt.shard = {2, 2};
  EXPECT_THROW(run(spec, opt), std::invalid_argument);
}

TEST(Runner, RunCellReproducesEveryRunnerCellIncludingRows) {
  // run_cell is the fleet layer's work-stealing quantum: one cell,
  // computed in isolation, must yield the exact group bytes and row
  // series the same cell gets inside a full run().
  const auto spec = tiny_spec();
  RunnerOptions opt;
  opt.threads = 1;
  std::map<std::size_t, std::vector<std::string>> run_rows;
  opt.on_rows = [&](const Cell& cell,
                    const std::vector<api::RoundRow>& rows) {
    for (const api::RoundRow& row : rows) {
      run_rows[cell.index].push_back(rows_line(cell.index, row));
    }
  };
  const auto results = run(spec, opt);
  ASSERT_EQ(results.size(), spec.enumerate().size());

  for (const CellResult& expected : results) {
    std::vector<std::string> cell_rows;
    const CellResult single = run_cell(
        spec, expected.cell, nullptr,
        [&](const Cell& cell, const std::vector<api::RoundRow>& rows) {
          for (const api::RoundRow& row : rows) {
            cell_rows.push_back(rows_line(cell.index, row));
          }
        });
    EXPECT_EQ(single.cell.index, expected.cell.index);
    EXPECT_EQ(single.group_json, expected.group_json);
    EXPECT_EQ(single.runs.size(), expected.runs.size());
    EXPECT_EQ(cell_rows, run_rows[expected.cell.index]);
  }
}

// ---- record serialization --------------------------------------------------

TEST(ShardRecords, LineRoundTrips) {
  const ShardRecord record{
      7, "0123456789abcdef",
      "{\"labels\":{\"n\":\"16\"},\"instances\":1,\"runs\":[{}]}"};
  ShardRecord parsed;
  ASSERT_TRUE(parse_shard_line(shard_line(record), &parsed));
  EXPECT_EQ(parsed.cell, record.cell);
  EXPECT_EQ(parsed.spec_hash, record.spec_hash);
  EXPECT_EQ(parsed.group_json, record.group_json);
}

TEST(ShardRecords, ParseRejectsMalformedLines) {
  ShardRecord out;
  EXPECT_FALSE(parse_shard_line("", &out));
  EXPECT_FALSE(parse_shard_line("{\"cell\":7", &out));
  EXPECT_FALSE(parse_shard_line("{\"cell\":x,\"spec_hash\":\"a\"}", &out));
  EXPECT_FALSE(parse_shard_line(
      "{\"cell\":7,\"spec_hash\":\"abc\",\"group\":{\"trunc", &out));
  // Truncated mid-group: no closing brace pair.
  const ShardRecord record{1, "ff00ff00ff00ff00", "{\"a\":1}"};
  std::string line = shard_line(record);
  EXPECT_TRUE(parse_shard_line(line, &out));
  EXPECT_FALSE(parse_shard_line(line.substr(0, line.size() - 3), &out));
}

TEST(ShardRecords, LoadShardFileDropsOnlyTruncatedFinalLine) {
  const ShardRecord a{0, "00000000000000aa", "{\"a\":1}"};
  const ShardRecord b{1, "00000000000000aa", "{\"b\":2}"};
  const std::string path = ::testing::TempDir() + "/shard_tail.jsonl";

  {
    std::ofstream out(path);
    out << shard_line(a) << "\n" << shard_line(b).substr(0, 10);
  }
  const auto records = load_shard_file(path);
  ASSERT_EQ(records.size(), 1u);  // interrupted tail dropped
  EXPECT_EQ(records[0].cell, 0u);

  {
    std::ofstream out(path);
    out << shard_line(a).substr(0, 10) << "\n" << shard_line(b) << "\n";
  }
  EXPECT_THROW(load_shard_file(path), std::invalid_argument);

  EXPECT_THROW(load_shard_file(path + ".does-not-exist"),
               std::invalid_argument);
  std::remove(path.c_str());
}

// ---- merge rejection semantics ---------------------------------------------

TEST(Merge, RejectsMismatchedSpecHash) {
  const auto spec = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn instances=2 seed=4");
  auto records = run_shard(spec, 0, 1);
  records[0].spec_hash = "00000000deadbeef";
  try {
    merged_document(spec, records);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("00000000deadbeef"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find(spec.hash()), std::string::npos);
  }

  // The same records against a *different* spec fail the same way.
  const auto other = ExperimentSpec::parse_line(
      "n=16 healer=dash scenario=paper-churn instances=2 seed=5");
  EXPECT_THROW(merged_document(other, run_shard(spec, 0, 1)),
               std::invalid_argument);
}

TEST(Merge, RejectsMissingAndOutOfRangeAndConflictingCells) {
  const auto spec = ExperimentSpec::parse_line(
      "n=16 healer=dash|graph scenario=paper-churn instances=2 seed=4");
  auto records = run_shard(spec, 0, 1);
  ASSERT_EQ(records.size(), 2u);

  // Missing cell: the error names it.
  try {
    merged_document(spec, {records[0]});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("1 of 2 cells missing"),
              std::string::npos);
  }

  // Out-of-range index.
  auto oor = records;
  oor[1].cell = 99;
  EXPECT_THROW(merged_document(spec, oor), std::invalid_argument);

  // Two records for one cell with different payloads.
  auto conflict = records;
  conflict.push_back(records[1]);
  conflict.back().group_json = "{\"tampered\":true}";
  EXPECT_THROW(merged_document(spec, conflict), std::invalid_argument);

  // Duplicate *identical* records are fine (shard overlap on resume).
  auto dup = records;
  dup.push_back(records[1]);
  EXPECT_EQ(merged_document(spec, dup), merged_document(spec, records));
}

}  // namespace
}  // namespace dash::exp
