// Tests for `trace:<file>` as a first-class scenario phase: a recorded
// trace loads at parse time, rides scenario specs (round trip, grids,
// floor semantics) and replays leniently against networks it was never
// recorded on.
#include "replay/trace_phase.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/api.h"
#include "api/scenario.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "replay/recorder.h"
#include "replay/trace.h"
#include "util/rng.h"

namespace dash::replay {
namespace {

/// Record `scenario` on a ba-32 under `healer` and persist the trace.
std::string record_to_file(const std::string& tag,
                           const std::string& scenario,
                           const std::string& healer = "dash") {
  RecordConfig cfg;
  cfg.make_graph = exp::make_family("ba", 32, 2);
  cfg.scenario = api::Scenario::parse(scenario);
  cfg.healer = healer;
  cfg.seed = 7;
  const std::string path =
      ::testing::TempDir() + "trace_phase_" + tag + ".jsonl";
  std::ofstream out(path);
  record_scenario(cfg, out);
  return path;
}

graph::Graph fresh_graph(std::size_t n, std::uint64_t seed) {
  dash::util::Rng rng(seed);
  return exp::make_family("ba", n, 2)(rng);
}

TEST(TracePhase, SpecRoundTripsAndLoadsAtParseTime) {
  const std::string path = record_to_file("roundtrip", "paper-churn");
  const std::string spec = "trace:" + path;
  const auto sc = api::Scenario::parse(spec);
  EXPECT_EQ(sc.spec(), spec);
  EXPECT_EQ(api::Scenario::parse(sc.spec()).spec(), spec);

  const TracePhase phase(path);
  EXPECT_EQ(phase.spec(), spec);
  EXPECT_FALSE(phase.trace().events.empty());
}

TEST(TracePhase, BadFilesFailAtParseTimeNotMidRun) {
  EXPECT_THROW(api::Scenario::parse("trace:/nope/missing.jsonl"),
               std::invalid_argument);
  EXPECT_THROW(api::Scenario::parse("trace:"), std::invalid_argument);

  const std::string garbage = ::testing::TempDir() + "trace_garbage.jsonl";
  {
    std::ofstream out(garbage);
    out << "this is not a trace\n";
  }
  EXPECT_THROW(api::Scenario::parse("trace:" + garbage),
               std::invalid_argument);
}

TEST(TracePhase, UnknownPhaseErrorAdvertisesTheTraceSpelling) {
  try {
    api::Scenario::parse("shake:3");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trace"), std::string::npos);
  }
}

TEST(TracePhase, ReplaysLenientlyOnAForeignNetwork) {
  // Recorded on ba-32, replayed on ba-48: out-of-range and dead ids
  // are filtered per event, everything else drives the healer.
  const std::string path = record_to_file("foreign", "paper-churn");
  api::Network net(fresh_graph(48, 99), "dash", 99);
  const api::Metrics m = net.play(api::Scenario::parse("trace:" + path), 99);
  EXPECT_GT(m.deletions, 0u);
  EXPECT_GT(m.joins, 0u);
  EXPECT_TRUE(m.violation.empty());
}

TEST(TracePhase, HonoursTheDeletionFloor) {
  // A deletion-only trace (targeted strikes down to 8 alive). Replayed
  // behind floor:20, its removals must stop exactly at the floor.
  const std::string path =
      record_to_file("floored", "floor:8;targeted:maxnode");
  api::Network net(fresh_graph(32, 5), "dash", 5);
  net.play(api::Scenario::parse("floor:20;trace:" + path), 5);
  EXPECT_EQ(net.graph().num_alive(), 20u);
}

TEST(TracePhase, RidesAnExperimentGridCell) {
  // The point of the feature: a captured workload swept across a grid.
  const std::string path = record_to_file("grid", "paper-churn");
  const auto spec = exp::ExperimentSpec::parse_line(
      "name=riding n=16|24 healer=dash scenario=trace:" + path +
      " instances=1 seed=3");
  exp::RunnerOptions opt;
  opt.threads = 1;
  const auto results = exp::run(spec, opt);
  ASSERT_EQ(results.size(), 2u);
  std::vector<exp::ShardRecord> records;
  for (const auto& r : results) records.push_back(exp::to_record(spec, r));
  EXPECT_NE(exp::merged_document(spec, records).find("\"runs\""),
            std::string::npos);
}

}  // namespace
}  // namespace dash::replay
