// Record/replay round-trip tests: a recorded run re-executes
// bit-identically (metrics and sink bytes, sequential and parallel
// suites), divergence and drift are detected, lenient mode makes
// mutated traces executable, and failing traces shrink to minimal
// repros persisted via DASH_REPRO_DIR.
#include "replay/play.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/scenario.h"
#include "api/sink.h"
#include "api/suite.h"
#include "exp/spec.h"
#include "replay/recorder.h"
#include "replay/shrink.h"
#include "util/thread_pool.h"

namespace dash::replay {
namespace {

RecordConfig small_config(std::uint64_t seed = 7) {
  RecordConfig cfg;
  cfg.make_graph = exp::make_family("ba", 32, 2);
  cfg.scenario = api::Scenario::parse("paper-churn");
  cfg.seed = seed;
  return cfg;
}

Trace record_and_load(const RecordConfig& cfg, api::Metrics* out = nullptr) {
  std::ostringstream os;
  const api::Metrics m = record_scenario(cfg, os);
  if (out != nullptr) *out = m;
  std::istringstream in(os.str());
  return load_trace(in);
}

/// Byte-render of a Metrics snapshot through the BENCH serializer --
/// equality of these strings is the bit-identity oracle for metrics.
std::string render(const api::Metrics& m) {
  std::ostringstream os;
  api::JsonSummarySink sink(os);
  sink.on_run(0, m);
  sink.flush();
  return os.str();
}

/// Byte-render of rows exactly as CsvStreamSink would write them.
std::string render_rows(const std::vector<api::RoundRow>& rows) {
  std::string out;
  for (const api::RoundRow& row : rows) {
    for (std::size_t i = 0; i < api::round_row_fields(row).size(); ++i) {
      if (i) out += ',';
      out += api::round_row_fields(row)[i];
    }
    out += '\n';
  }
  return out;
}

std::size_t find_event(const Trace& t, EventKind kind,
                       std::size_t from = 0) {
  for (std::size_t i = from; i < t.events.size(); ++i) {
    if (t.events[i].kind == kind) return i;
  }
  return static_cast<std::size_t>(-1);
}

TEST(Replay, RecordedRunReplaysBitIdentically) {
  api::Metrics recorded;
  const Trace t = record_and_load(small_config(), &recorded);
  ASSERT_TRUE(t.complete());
  const ReplayResult r = play_trace(t);
  EXPECT_TRUE(r.ok()) << r.failure();
  EXPECT_EQ(r.diverged_at, -1);
  EXPECT_TRUE(r.metrics_match);
  EXPECT_EQ(r.applied, t.applied_events());
  EXPECT_EQ(r.skipped, 0u);
  EXPECT_EQ(r.engine, t.footer->metrics);
  EXPECT_EQ(render(r.metrics), render(recorded));
}

// The acceptance core: one suite instance, run inside a sequential and
// a parallel suite, re-recorded standalone from its reproduced RNG
// stream, then replayed -- metrics and sink bytes all byte-identical.
TEST(Replay, SuiteInstanceRoundTripsThroughTrace) {
  constexpr std::size_t kInstance = 1;
  constexpr std::uint64_t kBaseSeed = 21;

  api::SuiteConfig cfg;
  cfg.make_graph = exp::make_family("ba", 32, 2);
  cfg.make_healer = api::healer_factory("dash");
  cfg.scenario = api::Scenario::parse("paper-churn");
  cfg.instances = 3;
  cfg.base_seed = kBaseSeed;
  cfg.record_rows = true;

  api::MemorySink seq_sink;
  cfg.sinks = {&seq_sink};
  const std::vector<api::Metrics> seq = api::run_suite(cfg);

  api::MemorySink par_sink;
  cfg.sinks = {&par_sink};
  util::ThreadPool pool(3);
  const std::vector<api::Metrics> par = api::run_suite(cfg, pool);

  ASSERT_EQ(render_rows(seq_sink.rows()), render_rows(par_sink.rows()));
  ASSERT_EQ(render(seq[kInstance]), render(par[kInstance]));

  // Re-record instance kInstance standalone by reproducing its stream
  // exactly as run_suite derives it.
  util::Rng seeder(kBaseSeed);
  util::Rng rng = seeder.fork(kInstance + 1);
  RecordConfig rcfg = small_config(kBaseSeed);
  std::ostringstream os;
  const api::Metrics recorded = record_scenario(rcfg, rng, os);
  EXPECT_EQ(render(recorded), render(seq[kInstance]));

  std::istringstream in(os.str());
  const Trace t = load_trace(in);

  // Replay with a SinkObserver wired like the suite's: the replayed
  // run must reproduce the instance's rows byte-for-byte.
  api::MemorySink replay_sink;
  ReplayOptions opt;
  opt.configure = [&](api::Network& net) {
    net.add_observer(std::make_unique<api::SinkObserver>(
        replay_sink, nullptr, kInstance));
  };
  const ReplayResult r = play_trace(t, opt);
  EXPECT_TRUE(r.ok()) << r.failure();
  EXPECT_EQ(render(r.metrics), render(seq[kInstance]));

  std::vector<api::RoundRow> instance_rows;
  for (const api::RoundRow& row : seq_sink.rows()) {
    if (row.instance == kInstance) instance_rows.push_back(row);
  }
  ASSERT_FALSE(instance_rows.empty());
  EXPECT_EQ(render_rows(replay_sink.rows()), render_rows(instance_rows));
}

TEST(Replay, HealerOverrideReplaysWithoutVerification) {
  const Trace t = record_and_load(small_config());
  ReplayOptions opt;
  opt.healer_override = "graph";
  const ReplayResult r = play_trace(t, opt);
  // A different healer heals differently but every recorded event is
  // still structurally applicable; verification is forced off.
  EXPECT_TRUE(r.ok()) << r.failure();
  EXPECT_EQ(r.applied, t.applied_events());
}

TEST(Replay, NoHealerViolatesInvariants) {
  const Trace t = record_and_load(small_config());
  ReplayOptions opt;
  opt.healer_override = "none";
  opt.check_invariants = true;
  const ReplayResult r = play_trace(t, opt);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.violation.find("disconnected"), std::string::npos)
      << r.violation;
}

TEST(Replay, DuplicatedRemoveThrowsStrictSkipsLenient) {
  Trace t = record_and_load(small_config());
  const std::size_t i = find_event(t, EventKind::kRemove);
  ASSERT_NE(i, static_cast<std::size_t>(-1));
  t.events.insert(t.events.begin() + static_cast<std::ptrdiff_t>(i),
                  t.events[i]);
  t.footer.reset();  // the counts no longer match
  EXPECT_THROW(play_trace(t), TraceError);

  ReplayOptions opt;
  opt.lenient = true;
  const ReplayResult r = play_trace(t, opt);
  EXPECT_TRUE(r.ok()) << r.failure();
  EXPECT_GE(r.skipped, 1u);
}

TEST(Replay, TamperedDigestPinsDivergence) {
  Trace t = record_and_load(small_config());
  const std::size_t i =
      find_event(t, EventKind::kRemove, t.events.size() / 2);
  ASSERT_NE(i, static_cast<std::size_t>(-1));
  t.events[i].row_hash ^= 1;
  const ReplayResult r = play_trace(t);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.diverged_at, static_cast<std::ptrdiff_t>(i));
  EXPECT_NE(r.failure().find("diverged"), std::string::npos)
      << r.failure();
}

TEST(Replay, JoinIdDriftThrowsStrict) {
  Trace t = record_and_load(small_config());
  const std::size_t i = find_event(t, EventKind::kJoin);
  ASSERT_NE(i, static_cast<std::size_t>(-1));
  t.events[i].joined += 1;
  EXPECT_THROW(play_trace(t), TraceError);
  ReplayOptions opt;
  opt.lenient = true;
  const ReplayResult r = play_trace(t, opt);
  EXPECT_TRUE(r.ok()) << r.failure();  // drift tolerated leniently
}

TEST(Replay, IncompleteTraceReplaysStrict) {
  Trace t = record_and_load(small_config());
  t.footer.reset();
  const ReplayResult r = play_trace(t);
  EXPECT_TRUE(r.ok()) << r.failure();
  EXPECT_EQ(r.applied, t.applied_events());
}

// The ISSUE acceptance bar: a deliberately broken invariant (replaying
// a healed run with healing off) shrinks to <= 10% of the original
// trace's events while still reproducing.
TEST(Replay, ShrinkFindsMinimalFailingTrace) {
  const Trace t = record_and_load(small_config());
  const TraceOracle still_fails = [](const Trace& candidate) {
    ReplayOptions opt;
    opt.healer_override = "none";
    opt.lenient = true;
    opt.check_invariants = true;
    return !play_trace(candidate, opt).violation.empty();
  };
  ASSERT_TRUE(still_fails(t));
  ShrinkStats stats;
  const Trace shrunk = shrink_trace(t, still_fails, &stats);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_EQ(stats.original_events, t.events.size());
  EXPECT_EQ(stats.shrunk_events, shrunk.events.size());
  EXPECT_GT(stats.oracle_calls, 0u);
  EXPECT_LE(shrunk.events.size() * 10, t.events.size())
      << "shrunk to " << shrunk.events.size() << " of "
      << t.events.size() << " events";
  EXPECT_FALSE(shrunk.complete());
}

TEST(Replay, ShrinkRejectsPassingTrace) {
  const Trace t = record_and_load(small_config());
  EXPECT_THROW(
      shrink_trace(t, [](const Trace&) { return false; }),
      TraceError);
}

TEST(Replay, WriteReproHonorsEnvDirAndReproduces) {
  const std::string dir = ::testing::TempDir() + "dash_repro_env_test";
  ::setenv("DASH_REPRO_DIR", dir.c_str(), 1);
  EXPECT_EQ(repro_dir(), dir);
  EXPECT_EQ(repro_dir("explicit"), "explicit");  // explicit wins

  Trace t = record_and_load(small_config());
  t.healer = "none";  // repro replays standalone under the failing healer
  t.footer.reset();
  const std::string path = write_repro(t, "deliberate test failure");
  ::unsetenv("DASH_REPRO_DIR");
  EXPECT_EQ(path.rfind(dir, 0), 0u) << path;

  const Trace back = load_trace_file(path);
  EXPECT_EQ(back.healer, "none");
  ReplayOptions opt;
  opt.lenient = true;
  opt.check_invariants = true;
  EXPECT_FALSE(play_trace(back, opt).ok());

  std::ifstream why(path + ".reason.txt");
  ASSERT_TRUE(why.good());
  std::string reason;
  std::getline(why, reason);
  EXPECT_EQ(reason, "deliberate test failure");
}

}  // namespace
}  // namespace dash::replay
