// Trace format tests: writer/loader inversion, crash tolerance
// (truncated final lines), version gating, and interior-corruption
// detection -- the robustness contract of replay/trace.h.
#include "replay/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/scenario.h"
#include "exp/spec.h"
#include "replay/recorder.h"

namespace dash::replay {
namespace {

/// A small real recording (BA graph, paper churn) as text.
std::string record_small(std::uint64_t seed = 7) {
  RecordConfig cfg;
  cfg.make_graph = exp::make_family("ba", 32, 2);
  cfg.scenario = api::Scenario::parse("paper-churn");
  cfg.seed = seed;
  std::ostringstream os;
  record_scenario(cfg, os);
  return os.str();
}

Trace load_text(const std::string& text) {
  std::istringstream in(text);
  return load_trace(in);
}

std::string dump(const Trace& t) {
  std::ostringstream os;
  write_trace(os, t);
  return os.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

TEST(TraceFormat, WriterLoaderRoundTripIsByteIdentical) {
  const std::string text = record_small();
  const Trace t = load_text(text);
  EXPECT_TRUE(t.complete());
  EXPECT_EQ(t.version, kTraceVersion);
  EXPECT_EQ(t.healer, "dash");
  EXPECT_EQ(t.seed, 7u);
  EXPECT_EQ(t.footer->events, t.applied_events());
  EXPECT_EQ(dump(t), text);
}

TEST(TraceFormat, SnapshotsReconstruct) {
  const Trace t = load_text(record_small());
  const graph::Graph g = t.build_graph();
  EXPECT_EQ(g.num_nodes(), 32u);
  const core::HealingState state = t.build_state();
  EXPECT_EQ(state.num_nodes(), 32u);
}

TEST(TraceFormat, TruncatedFooterLoadsIncomplete) {
  const std::string text = record_small();
  const Trace full = load_text(text);
  // Chop the footer line in half: the loader must drop it and report
  // the trace as incomplete, keeping every event.
  const std::size_t cut = text.rfind("{\"e\":\"end\"");
  ASSERT_NE(cut, std::string::npos);
  const Trace t = load_text(text.substr(0, cut + 12));
  EXPECT_FALSE(t.complete());
  EXPECT_EQ(t.events.size(), full.events.size());
}

TEST(TraceFormat, TruncatedFinalEventIsDropped) {
  const std::string text = record_small();
  const Trace full = load_text(text);
  auto lines = lines_of(text);
  lines.pop_back();  // footer
  ASSERT_GE(lines.size(), 3u);
  lines.back() = lines.back().substr(0, lines.back().size() / 2);
  const Trace t = load_text(join_lines(lines));
  EXPECT_FALSE(t.complete());
  EXPECT_EQ(t.events.size(), full.events.size() - 1);
}

TEST(TraceFormat, VersionMismatchIsANamedError) {
  std::string text = record_small();
  const std::string magic = "{\"trace\":\"dash-replay\",\"v\":1,";
  ASSERT_EQ(text.compare(0, magic.size(), magic), 0);
  text.replace(magic.size() - 2, 1, "9");
  try {
    load_text(text);
    FAIL() << "expected VersionMismatchError";
  } catch (const VersionMismatchError& e) {
    EXPECT_EQ(e.recorded_version(), 9);
  }
}

TEST(TraceFormat, CorruptInteriorLineThrows) {
  auto lines = lines_of(record_small());
  ASSERT_GE(lines.size(), 4u);
  lines[2] = "{\"e\":\"garbage\"}";
  EXPECT_THROW(load_text(join_lines(lines)), TraceError);
}

TEST(TraceFormat, FooterBeforeLastLineThrows) {
  auto lines = lines_of(record_small());
  ASSERT_GE(lines.size(), 4u);
  std::swap(lines[lines.size() - 1], lines[lines.size() - 2]);
  EXPECT_THROW(load_text(join_lines(lines)), TraceError);
}

TEST(TraceFormat, FooterEventCountMismatchThrows) {
  Trace t = load_text(record_small());
  t.footer->events += 1;
  EXPECT_THROW(load_text(dump(t)), TraceError);
}

TEST(TraceFormat, MissingHeaderThrows) {
  EXPECT_THROW(load_text("{\"e\":\"rm\",\"n\":[3],\"h\":\"0000000000000000\"}\n"),
               TraceError);
  std::istringstream empty("");
  EXPECT_THROW(load_trace(empty), TraceError);
}

TEST(TraceFormat, HeaderStringsEscapeRoundTrip) {
  Trace t;
  t.healer = "weird\"healer\\with\nescapes\tand\x01control";
  t.scenario = "spec\r\nwith newlines";
  t.seed = 42;
  t.graph_text = "line one\nline \"two\"\n";
  t.state_text = "a\tb\\c\n";
  const Trace back = load_text(dump(t));
  EXPECT_EQ(back.healer, t.healer);
  EXPECT_EQ(back.scenario, t.scenario);
  EXPECT_EQ(back.seed, t.seed);
  EXPECT_EQ(back.graph_text, t.graph_text);
  EXPECT_EQ(back.state_text, t.state_text);
  EXPECT_FALSE(back.complete());
  EXPECT_TRUE(back.events.empty());
}

TEST(TraceFormat, EventLinesRoundTripEveryKind) {
  Trace t;
  t.healer = "dash";
  TraceEvent rm;
  rm.kind = EventKind::kRemove;
  rm.nodes = {5};
  rm.row_hash = 0xdeadbeefcafef00dULL;
  TraceEvent rmb;
  rmb.kind = EventKind::kBatch;
  rmb.nodes = {1, 2, 3};
  rmb.row_hash = 1;
  TraceEvent join;
  join.kind = EventKind::kJoin;
  join.nodes = {4, 9};
  join.joined = 32;
  join.row_hash = 2;
  TraceEvent phase;
  phase.kind = EventKind::kPhase;
  phase.phase = "targeted:maxdeg";
  t.events = {rm, rmb, join, phase};
  const Trace back = load_text(dump(t));
  ASSERT_EQ(back.events.size(), 4u);
  EXPECT_EQ(back.events[0].kind, EventKind::kRemove);
  EXPECT_EQ(back.events[0].nodes, std::vector<graph::NodeId>{5});
  EXPECT_EQ(back.events[0].row_hash, rm.row_hash);
  EXPECT_EQ(back.events[1].kind, EventKind::kBatch);
  EXPECT_EQ(back.events[1].nodes, (std::vector<graph::NodeId>{1, 2, 3}));
  EXPECT_EQ(back.events[2].kind, EventKind::kJoin);
  EXPECT_EQ(back.events[2].joined, 32u);
  EXPECT_EQ(back.events[3].kind, EventKind::kPhase);
  EXPECT_EQ(back.events[3].phase, "targeted:maxdeg");
  EXPECT_EQ(back.applied_events(), 3u);
}

TEST(TraceFormat, DigestHexIsStable) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xdeadbeefULL), "00000000deadbeef");
  // FNV-1a of a single zero u64 from the seed, fixed forever by the
  // format version.
  EXPECT_EQ(digest_mix(kDigestSeed, 0), digest_mix(kDigestSeed, 0));
  EXPECT_NE(digest_mix(kDigestSeed, 0), digest_mix(kDigestSeed, 1));
}

}  // namespace
}  // namespace dash::replay
