// Tests for the recorder's auto-repro path: recording with the
// invariant battery on must, when a violation fires, shrink the live
// trace and drop a standalone repro -- without perturbing the recorded
// trace bytes on the happy path.
#include "replay/recorder.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "api/scenario.h"
#include "exp/spec.h"
#include "replay/play.h"
#include "replay/trace.h"

namespace dash::replay {
namespace {

RecordConfig base_config(const std::string& healer,
                         const std::string& scenario) {
  RecordConfig cfg;
  cfg.make_graph = exp::make_family("ba", 32, 2);
  cfg.scenario = api::Scenario::parse(scenario);
  cfg.healer = healer;
  cfg.seed = 7;
  return cfg;
}

TEST(AutoRepro, ViolationShrinksAndPersistsAStandaloneRepro) {
  // Healing off under the paper's churn workload: the connectivity
  // invariant must fire mid-recording.
  RecordConfig cfg = base_config("none", "paper-churn");
  cfg.invariants = true;
  const std::string dir = ::testing::TempDir() + "dash_auto_repro";
  std::filesystem::remove_all(dir);
  cfg.repro = dir;
  std::string repro_path;
  cfg.repro_path = &repro_path;

  std::ostringstream os;
  const api::Metrics m = record_scenario(cfg, os);
  ASSERT_FALSE(m.violation.empty());
  ASSERT_FALSE(repro_path.empty());
  EXPECT_TRUE(std::filesystem::exists(repro_path));

  // The full recording still reached the caller's stream, intact.
  std::istringstream in(os.str());
  const Trace recorded = load_trace(in);
  EXPECT_TRUE(recorded.complete());

  // The repro is standalone and no larger than the recording: loading
  // it and replaying under the documented options (lenient, battery
  // on) reproduces a violation.
  const Trace repro = load_trace_file(repro_path);
  EXPECT_EQ(repro.healer, "none");
  EXPECT_LE(repro.events.size(), recorded.events.size());
  ReplayOptions ropt;
  ropt.lenient = true;
  ropt.check_invariants = true;
  EXPECT_FALSE(play_trace(repro, ropt).ok());
}

TEST(AutoRepro, CleanRunLeavesNoReproAndIdenticalTraceBytes) {
  const std::string dir = ::testing::TempDir() + "dash_auto_repro_clean";
  std::filesystem::remove_all(dir);

  // Same run recorded twice: once plain, once through the battery tee.
  std::ostringstream plain;
  record_scenario(base_config("dash", "paper-churn"), plain);

  RecordConfig cfg = base_config("dash", "paper-churn");
  cfg.invariants = true;
  cfg.repro = dir;
  std::string repro_path = "poisoned";  // must be cleared by the call
  cfg.repro_path = &repro_path;
  std::ostringstream teed;
  const api::Metrics m = record_scenario(cfg, teed);

  EXPECT_TRUE(m.violation.empty());
  EXPECT_TRUE(repro_path.empty());
  EXPECT_FALSE(std::filesystem::exists(dir));
  EXPECT_EQ(teed.str(), plain.str());
}

}  // namespace
}  // namespace dash::replay
