// Differential-fuzzing tests: mutation is deterministic in its seed,
// mutants replay cleanly across every paper healer (any violation
// would be a real engine/healer bug), and an injected failure mode
// (healing off) is found, shrunk, and persisted as a standalone repro.
#include "replay/fuzz.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "api/scenario.h"
#include "exp/spec.h"
#include "replay/play.h"
#include "replay/recorder.h"
#include "replay/trace.h"
#include "util/rng.h"

namespace dash::replay {
namespace {

Trace golden_trace(std::uint64_t seed = 7) {
  RecordConfig cfg;
  cfg.make_graph = exp::make_family("ba", 32, 2);
  cfg.scenario = api::Scenario::parse("paper-churn");
  cfg.seed = seed;
  std::ostringstream os;
  record_scenario(cfg, os);
  std::istringstream in(os.str());
  return load_trace(in);
}

std::string dump(const Trace& t) {
  std::ostringstream os;
  write_trace(os, t);
  return os.str();
}

TEST(Fuzz, MutationIsDeterministicInSeed) {
  const Trace golden = golden_trace();
  util::Rng a(99), b(99);
  const Trace ma = mutate_trace(golden, a);
  const Trace mb = mutate_trace(golden, b);
  EXPECT_EQ(dump(ma), dump(mb));
  EXPECT_FALSE(ma.complete()) << "mutants must drop the footer";
  for (const TraceEvent& e : ma.events) {
    EXPECT_EQ(e.row_hash, 0u) << "stale digests must be zeroed";
  }
}

TEST(Fuzz, MutationActuallyPerturbs) {
  const Trace golden = golden_trace();
  Trace unfooted = golden;
  unfooted.footer.reset();
  for (TraceEvent& e : unfooted.events) e.row_hash = 0;
  const std::string baseline = dump(unfooted);
  util::Rng rng(1);
  std::size_t changed = 0;
  for (int i = 0; i < 8; ++i) {
    if (dump(mutate_trace(golden, rng)) != baseline) ++changed;
  }
  EXPECT_GT(changed, 0u);
}

TEST(Fuzz, PaperHealersSurviveMutants) {
  const Trace golden = golden_trace();
  FuzzOptions opt;
  opt.mutants = 4;
  opt.seed = 5;
  const FuzzReport report = fuzz_trace(golden, opt);
  EXPECT_EQ(report.mutants, 4u);
  // Default healer set is the paper's five strategies.
  EXPECT_EQ(report.replays, 4u * 5u);
  for (const FuzzFailure& f : report.failures) {
    ADD_FAILURE() << "mutant " << f.mutant << " under " << f.healer
                  << ": " << f.violation;
  }
  EXPECT_TRUE(report.ok());
}

TEST(Fuzz, InjectedFailureIsFoundShrunkAndPersisted) {
  const Trace golden = golden_trace();
  const std::string dir =
      ::testing::TempDir() + "dash_fuzz_repro_test";
  std::filesystem::remove_all(dir);
  FuzzOptions opt;
  opt.mutants = 6;
  opt.seed = 3;
  opt.healers = {"none"};  // healing off: mutants keep disconnecting
  opt.repro_dir = dir;
  const FuzzReport report = fuzz_trace(golden, opt);
  EXPECT_EQ(report.replays, 6u);
  ASSERT_FALSE(report.failures.empty());
  for (const FuzzFailure& f : report.failures) {
    EXPECT_EQ(f.healer, "none");
    EXPECT_FALSE(f.violation.empty());
    EXPECT_LE(f.shrunk_events, f.original_events);
    ASSERT_FALSE(f.repro_path.empty());
    // The repro replays standalone: its recorded healer is the failing
    // one, so no override is needed.
    const Trace repro = load_trace_file(f.repro_path);
    EXPECT_EQ(repro.healer, "none");
    ReplayOptions ropt;
    ropt.lenient = true;
    ropt.check_invariants = true;
    EXPECT_FALSE(play_trace(repro, ropt).ok());
  }
}

TEST(Fuzz, NoShrinkSkipsReproFiles) {
  const Trace golden = golden_trace();
  FuzzOptions opt;
  opt.mutants = 3;
  opt.seed = 3;
  opt.healers = {"none"};
  opt.shrink = false;
  const FuzzReport report = fuzz_trace(golden, opt);
  ASSERT_FALSE(report.failures.empty());
  for (const FuzzFailure& f : report.failures) {
    EXPECT_TRUE(f.repro_path.empty());
    EXPECT_EQ(f.shrunk_events, f.original_events);
  }
}

}  // namespace
}  // namespace dash::replay
