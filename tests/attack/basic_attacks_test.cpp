#include <gtest/gtest.h>

#include <set>

#include "attack/basic.h"
#include "attack/factory.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::attack {
namespace {

using core::HealingState;
using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

HealingState make_state(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  return HealingState(g, rng);
}

TEST(MaxNode, PicksHub) {
  const Graph g = graph::star_graph(6);
  const auto st = make_state(g, 1);
  MaxNodeAttack atk;
  EXPECT_EQ(atk.select(g, st), 0u);
}

TEST(MaxNode, TieGoesToLowestId) {
  const Graph g = graph::cycle_graph(5);
  const auto st = make_state(g, 2);
  MaxNodeAttack atk;
  EXPECT_EQ(atk.select(g, st), 0u);
}

TEST(NeighborOfMax, PicksANeighborOfHub) {
  const Graph g = graph::star_graph(8);
  const auto st = make_state(g, 3);
  NeighborOfMaxAttack atk(7);
  for (int i = 0; i < 50; ++i) {
    const NodeId v = atk.select(g, st);
    EXPECT_NE(v, 0u);  // never the hub itself
    EXPECT_TRUE(g.has_edge(0, v));
  }
}

TEST(NeighborOfMax, CoversManyNeighbors) {
  const Graph g = graph::star_graph(8);
  const auto st = make_state(g, 4);
  NeighborOfMaxAttack atk(11);
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(atk.select(g, st));
  EXPECT_GE(seen.size(), 5u);  // random choice spreads out
}

TEST(NeighborOfMax, IsolatedHubIsTakenDirectly) {
  Graph g(3);  // all isolated; max-degree node is 0
  const auto st = make_state(g, 5);
  NeighborOfMaxAttack atk(13);
  EXPECT_EQ(atk.select(g, st), 0u);
}

TEST(RandomAttack, OnlyAliveVictims) {
  Graph g = graph::path_graph(6);
  g.delete_node(2);
  const auto st = make_state(graph::path_graph(6), 6);
  RandomAttack atk(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(g.alive(atk.select(g, st)));
  }
}

TEST(RandomAttack, DeterministicPerSeed) {
  const Graph g = graph::path_graph(50);
  const auto st = make_state(g, 7);
  RandomAttack a(19), b(19);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.select(g, st), b.select(g, st));
  }
}

TEST(MinNode, PicksLeaf) {
  const Graph g = graph::star_graph(5);
  const auto st = make_state(g, 8);
  MinNodeAttack atk;
  EXPECT_EQ(atk.select(g, st), 1u);  // lowest-id degree-1 node
}

TEST(MaxDelta, FollowsBurden) {
  Graph g = graph::star_graph(5);
  Rng rng(9);
  HealingState st(g, rng);
  st.add_healing_edge(g, 2, 3);
  st.add_healing_edge(g, 2, 4);  // delta(2) = 2, the max
  MaxDeltaAttack atk;
  EXPECT_EQ(atk.select(g, st), 2u);
}

TEST(Factory, BuildsEveryListedAttack) {
  for (const auto& name : attack_names()) {
    const auto atk = make_attack(name, 42);
    EXPECT_FALSE(atk->name().empty()) << name;
  }
}

TEST(Factory, AliasesAndUnknown) {
  EXPECT_EQ(make_attack("nms", 1)->name(), "NeighborOfMax");
  EXPECT_EQ(make_attack("MAXNODE", 1)->name(), "MaxNode");
  EXPECT_THROW(make_attack("nope", 1), std::invalid_argument);
}

TEST(Factory, UnknownNameErrorListsRegisteredAttacks) {
  try {
    make_attack("nope", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'nope'"), std::string::npos) << msg;
    for (const char* expected : {"maxnode", "neighborofmax", "random",
                                 "minnode", "maxdelta"}) {
      EXPECT_NE(msg.find(expected), std::string::npos)
          << "missing '" << expected << "' in: " << msg;
    }
  }
}

TEST(Factory, RegistryServesLookups) {
  EXPECT_TRUE(attack_registry().contains("maxnode"));
  EXPECT_TRUE(attack_registry().contains("nms"));
  EXPECT_FALSE(attack_registry().contains("levelattack"));
}

TEST(Clone, PreservesName) {
  NeighborOfMaxAttack atk(3);
  EXPECT_EQ(atk.clone()->name(), atk.name());
}

}  // namespace
}  // namespace dash::attack
