#include "attack/level_attack.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dash.h"
#include "core/degree_capped.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::attack {
namespace {

using core::DeletionContext;
using core::HealingState;
using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

/// Drive a LEVELATTACK schedule against a healer on an (M+2)-ary tree.
/// Returns the max delta ever observed.
std::uint32_t run_level_attack(std::size_t m, std::size_t depth,
                               core::HealingStrategy& healer,
                               std::uint64_t seed,
                               std::size_t* deletions_out = nullptr) {
  const auto tree = graph::complete_kary_tree(m + 2, depth);
  Graph g = tree.g;
  Rng rng(seed);
  HealingState st(g, rng);
  LevelAttack atk(tree, static_cast<std::uint32_t>(m));

  std::size_t deletions = 0;
  while (g.num_alive() > 1) {
    const NodeId v = atk.select(g, st);
    if (v == graph::kInvalidNode) break;
    const DeletionContext ctx = st.begin_deletion(g, v);
    g.delete_node(v);
    healer.heal(g, st, ctx);
    ++deletions;
    EXPECT_TRUE(graph::is_connected(g));
    // The healed graph must remain a tree for the attack's subtree
    // bookkeeping (and the paper's Lemma 10) to apply.
    EXPECT_EQ(g.num_edges(), g.num_alive() - 1);
  }
  if (deletions_out != nullptr) *deletions_out = deletions;
  return st.max_delta_ever();
}

TEST(LevelAttack, RequiresMatchingArity) {
  const auto tree = graph::complete_kary_tree(3, 2);
  EXPECT_DEATH(LevelAttack(tree, 2), "\\(M\\+2\\)-ary");
}

TEST(LevelAttack, DepthOneDeletesRootOnly) {
  const auto tree = graph::complete_kary_tree(4, 1);
  Graph g = tree.g;
  Rng rng(1);
  HealingState st(g, rng);
  LevelAttack atk(tree, 2);
  EXPECT_EQ(atk.select(g, st), 0u);  // root is the only planned node
}

TEST(LevelAttack, StopsAfterRoot) {
  const auto tree = graph::complete_kary_tree(4, 1);
  Graph g = tree.g;
  Rng rng(2);
  HealingState st(g, rng);
  core::DegreeCappedStrategy healer(2);
  LevelAttack atk(tree, 2);

  const NodeId root = atk.select(g, st);
  const DeletionContext ctx = st.begin_deletion(g, root);
  g.delete_node(root);
  healer.heal(g, st, ctx);
  EXPECT_EQ(atk.select(g, st), graph::kInvalidNode);
}

TEST(LevelAttack, ForcesDegreeIncreaseEachLevel) {
  // Lemma 13: deleting through level i leaves some node with delta
  // >= D - i; after the whole attack, some node has delta >= D.
  core::DegreeCappedStrategy healer(2);
  for (std::size_t depth : {2u, 3u, 4u}) {
    const std::uint32_t max_delta =
        run_level_attack(2, depth, healer, 77 + depth);
    EXPECT_GE(max_delta, depth)
        << "LEVELATTACK should force delta >= depth " << depth;
  }
}

TEST(LevelAttack, LowerBoundScalesWithLogN) {
  // depth = log_{M+2}(n); forced delta grows linearly in depth.
  core::DegreeCappedStrategy healer(2);
  std::uint32_t prev = 0;
  for (std::size_t depth : {2u, 3u, 4u, 5u}) {
    const std::uint32_t d = run_level_attack(2, depth, healer, 101);
    EXPECT_GE(d, prev);
    prev = d;
  }
  EXPECT_GE(prev, 5u);
}

TEST(LevelAttack, AlsoHurtsDash) {
  // DASH is not M-bounded per round but its total is Theta(log n);
  // LEVELATTACK must stay within DASH's 2 log2 n guarantee.
  core::DashStrategy dash;
  const std::size_t depth = 4;
  const auto tree = graph::complete_kary_tree(4, depth);
  const std::uint32_t max_delta = run_level_attack(2, depth, dash, 55);
  const double bound = 2.0 * std::log2(
      static_cast<double>(tree.g.num_nodes()));
  EXPECT_LE(static_cast<double>(max_delta), bound + 1e-9);
}

TEST(LevelAttack, PruneCounterAdvances) {
  const std::size_t depth = 3;
  const auto tree = graph::complete_kary_tree(4, depth);
  Graph g = tree.g;
  Rng rng(5);
  HealingState st(g, rng);
  core::DegreeCappedStrategy healer(2);
  LevelAttack atk(tree, 2);
  while (g.num_alive() > 1) {
    const NodeId v = atk.select(g, st);
    if (v == graph::kInvalidNode) break;
    const DeletionContext ctx = st.begin_deletion(g, v);
    g.delete_node(v);
    healer.heal(g, st, ctx);
  }
  // With depth 3 the level-2 deletions hand each level-1 node up to
  // 4*4 = 16 children; pruning must have fired.
  EXPECT_GT(atk.prune_deletions(), 0u);
}

}  // namespace
}  // namespace dash::attack
