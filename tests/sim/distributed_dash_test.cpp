#include "sim/distributed_dash.h"

#include <gtest/gtest.h>

#include <cmath>

#include "attack/factory.h"
#include "core/dash.h"
#include "core/healing_state.h"
#include "core/sdash.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::sim {
namespace {

using core::DeletionContext;
using core::HealingState;
using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

TEST(DistributedDash, HealsStarDeletion) {
  Rng rng(1);
  DistributedDashSim sim(graph::star_graph(8), rng);
  const auto rounds = sim.delete_and_heal(0);
  EXPECT_TRUE(graph::is_connected(sim.network()));
  EXPECT_GE(rounds, 1u);
  EXPECT_EQ(sim.metrics().reconnect_rounds.back(), 1u);
}

TEST(DistributedDash, MatchesSequentialEngineTopology) {
  // Same seed stream => same initial ids => identical healing decisions.
  for (std::uint64_t seed : {3ULL, 7ULL, 21ULL}) {
    Rng rng_graph(seed);
    const Graph g0 = graph::barabasi_albert(48, 2, rng_graph);

    Rng rng_seq(seed + 1000);
    Graph g_seq = g0;
    HealingState st(g_seq, rng_seq);
    core::DashStrategy dash;

    Rng rng_sim(seed + 1000);
    DistributedDashSim sim(g0, rng_sim);

    // Identical deterministic deletion sequence (max-degree victim).
    while (g_seq.num_alive() > 1) {
      const NodeId victim = [&] {
        NodeId best = graph::kInvalidNode;
        std::size_t best_deg = 0;
        for (NodeId v = 0; v < g_seq.num_nodes(); ++v) {
          if (!g_seq.alive(v)) continue;
          if (best == graph::kInvalidNode || g_seq.degree(v) > best_deg) {
            best = v;
            best_deg = g_seq.degree(v);
          }
        }
        return best;
      }();
      const DeletionContext ctx = st.begin_deletion(g_seq, victim);
      g_seq.delete_node(victim);
      dash.heal(g_seq, st, ctx);
      sim.delete_and_heal(victim);
      ASSERT_TRUE(g_seq.same_topology(sim.network()));
    }
  }
}

TEST(DistributedDash, ComponentIdsConvergeToSequentialFixedPoint) {
  Rng rng_a(5), rng_b(5);
  const Graph g0 = graph::star_graph(16);
  Graph g_seq = g0;
  HealingState st(g_seq, rng_a);
  core::DashStrategy dash;
  DistributedDashSim sim(g0, rng_b);

  const DeletionContext ctx = st.begin_deletion(g_seq, 0);
  g_seq.delete_node(0);
  dash.heal(g_seq, st, ctx);
  sim.delete_and_heal(0);

  for (NodeId v = 1; v < 16; ++v) {
    EXPECT_EQ(sim.component_id(v), st.component_id(v)) << "node " << v;
  }
  EXPECT_EQ(sim.max_delta(), st.max_delta_ever());
}

TEST(DistributedDash, ReconnectLatencyAlwaysConstant) {
  Rng rng(6);
  DistributedDashSim sim(graph::barabasi_albert(64, 2, rng), rng);
  while (sim.network().num_alive() > 1) {
    // Reuse attack logic manually: pick neighbor of max-degree node.
    const auto& g = sim.network();
    NodeId hub = graph::kInvalidNode;
    std::size_t best = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.alive(v) && (hub == graph::kInvalidNode || g.degree(v) > best)) {
        hub = v;
        best = g.degree(v);
      }
    }
    sim.delete_and_heal(hub);
  }
  for (auto r : sim.metrics().reconnect_rounds) EXPECT_EQ(r, 1u);
}

TEST(DistributedDash, PropagationLatencyAmortizedLogarithmic) {
  // Lemma 9: over Theta(n) deletions the amortized id-propagation
  // latency is O(log n) whp; allow a generous constant.
  Rng rng(8);
  const std::size_t n = 256;
  DistributedDashSim sim(graph::barabasi_albert(n, 2, rng), rng);
  while (sim.network().num_alive() > 1) {
    const auto& g = sim.network();
    NodeId hub = graph::kInvalidNode;
    std::size_t best = 0;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.alive(v) && (hub == graph::kInvalidNode || g.degree(v) > best)) {
        hub = v;
        best = g.degree(v);
      }
    }
    sim.delete_and_heal(hub);
  }
  EXPECT_LE(sim.metrics().mean_propagation_rounds(),
            4.0 * std::log2(static_cast<double>(n)));
}

TEST(DistributedDash, MessageAccountingMonotone) {
  Rng rng(9);
  DistributedDashSim sim(graph::star_graph(10), rng);
  const auto before = sim.metrics().total_messages;
  sim.delete_and_heal(0);
  EXPECT_GT(sim.metrics().total_messages, before);
  EXPECT_GE(sim.metrics().max_messages_per_node(), 1u);
}

TEST(DistributedDash, ForestAdjacencyMirrorsHealing) {
  Rng rng(10);
  DistributedDashSim sim(graph::star_graph(5), rng);
  sim.delete_and_heal(0);
  // 4 leaves reconnected by 3 forest edges.
  std::size_t forest_degree_sum = 0;
  for (NodeId v = 1; v < 5; ++v) {
    forest_degree_sum += sim.forest_neighbors(v).size();
  }
  EXPECT_EQ(forest_degree_sum, 6u);
}

TEST(DistributedSdash, MatchesSequentialSdashTopology) {
  core::SdashStrategy sdash;
  for (std::uint64_t seed : {11ULL, 23ULL}) {
    Rng rng_graph(seed);
    const Graph g0 = graph::barabasi_albert(48, 2, rng_graph);

    Rng rng_seq(seed + 500);
    Graph g_seq = g0;
    HealingState st(g_seq, rng_seq);

    Rng rng_sim(seed + 500);
    DistributedDashSim sim(g0, rng_sim, 1, SimHealPolicy::kSdash);

    while (g_seq.num_alive() > 1) {
      NodeId best = graph::kInvalidNode;
      std::size_t best_deg = 0;
      for (NodeId v = 0; v < g_seq.num_nodes(); ++v) {
        if (!g_seq.alive(v)) continue;
        if (best == graph::kInvalidNode || g_seq.degree(v) > best_deg) {
          best = v;
          best_deg = g_seq.degree(v);
        }
      }
      const DeletionContext ctx = st.begin_deletion(g_seq, best);
      g_seq.delete_node(best);
      sdash.heal(g_seq, st, ctx);
      sim.delete_and_heal(best);
      ASSERT_TRUE(g_seq.same_topology(sim.network()));
    }
    EXPECT_EQ(sim.max_delta(), st.max_delta_ever());
  }
}

TEST(DistributedDashAsync, FixedPointIndependentOfDelay) {
  // Monotone min-id gossip converges to the same component labels no
  // matter how messages are delayed.
  for (std::uint32_t delay : {1u, 2u, 5u}) {
    Rng rng_sync(42), rng_async(42);
    const Graph g0 = [] {
      Rng r(7);
      return graph::barabasi_albert(48, 2, r);
    }();
    DistributedDashSim sync_sim(g0, rng_sync, 1);
    DistributedDashSim async_sim(g0, rng_async, delay);
    while (sync_sim.network().num_alive() > 1) {
      NodeId hub = graph::kInvalidNode;
      std::size_t best = 0;
      const auto& g = sync_sim.network();
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        if (g.alive(v) && (hub == graph::kInvalidNode ||
                           g.degree(v) > best)) {
          hub = v;
          best = g.degree(v);
        }
      }
      sync_sim.delete_and_heal(hub);
      async_sim.delete_and_heal(hub);
      ASSERT_TRUE(sync_sim.network().same_topology(async_sim.network()));
      for (NodeId v : sync_sim.network().alive_nodes()) {
        ASSERT_EQ(sync_sim.component_id(v), async_sim.component_id(v));
      }
    }
  }
}

TEST(DistributedDashAsync, DelayStretchesLatencyOnly) {
  Rng rng_a(9), rng_b(9);
  const Graph g0 = graph::star_graph(64);
  DistributedDashSim fast(g0, rng_a, 1);
  DistributedDashSim slow(g0, rng_b, 4);
  fast.delete_and_heal(0);
  slow.delete_and_heal(0);
  EXPECT_EQ(fast.max_delta(), slow.max_delta());
  EXPECT_GE(slow.metrics().max_propagation_rounds(),
            fast.metrics().max_propagation_rounds());
  // Reconnection itself stays one round in both models.
  EXPECT_EQ(fast.metrics().reconnect_rounds.back(), 1u);
  EXPECT_EQ(slow.metrics().reconnect_rounds.back(), 1u);
}

TEST(SimMetrics, Accessors) {
  SimMetrics m;
  EXPECT_EQ(m.max_messages_per_node(), 0u);
  EXPECT_EQ(m.max_id_changes(), 0u);
  EXPECT_EQ(m.mean_propagation_rounds(), 0.0);
  m.propagation_rounds = {1, 3, 2};
  EXPECT_EQ(m.max_propagation_rounds(), 3u);
  EXPECT_DOUBLE_EQ(m.mean_propagation_rounds(), 2.0);
}

}  // namespace
}  // namespace dash::sim
