// sink_test.cpp -- the MetricSink output layer: SinkObserver row
// production (single rounds, batch rounds, joins, stretch samples),
// the in-memory / CSV-streaming / JSON-summary sinks, and sink feeding
// through run_suite.
#include "api/sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <tuple>
#include <vector>

#include "api/api.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dash::api {
namespace {

using dash::util::Rng;
using graph::Graph;

Network make_net(std::size_t n, std::uint64_t seed,
                 const std::string& healer = "dash") {
  Rng rng(seed);
  Graph g = graph::barabasi_albert(n, 2, rng);
  return Network(std::move(g), core::make_strategy(healer), rng);
}

TEST(SinkObserver, CapturesEveryRoundAndTheRunSummary) {
  auto net = make_net(64, 10);
  MemorySink sink;
  SinkObserver observer(sink);
  net.add_observer(&observer);
  const Metrics m = net.play(Scenario::parse("strike:15"), 10);

  ASSERT_EQ(sink.rows().size(), m.deletions);
  // Rounds are 1-based and alive counts strictly decrease.
  for (std::size_t i = 0; i < sink.rows().size(); ++i) {
    EXPECT_EQ(sink.rows()[i].round, i + 1);
    EXPECT_EQ(sink.rows()[i].alive, 64 - (i + 1));
    EXPECT_EQ(sink.rows()[i].largest_component, 64 - (i + 1));
    EXPECT_FALSE(sink.rows()[i].is_join);
  }
  ASSERT_EQ(sink.runs().size(), 1u);
  EXPECT_EQ(sink.runs()[0].first, 0u);
  EXPECT_EQ(sink.runs()[0].second.deletions, 15u);
}

TEST(SinkObserver, BatchRoundRowReportsBatchEdges) {
  Rng rng(13);
  Graph g = graph::barabasi_albert(32, 2, rng);
  Network net(std::move(g), core::make_strategy("dash"), rng);
  MemorySink sink;
  net.add_observer(std::make_unique<SinkObserver>(sink));

  const auto actions = net.remove_batch({0, 1, 2});
  std::size_t batch_edges = 0;
  for (const auto& a : actions) batch_edges += a.new_graph_edges.size();
  ASSERT_GT(batch_edges, 0u);  // deleting the BA core forces healing

  ASSERT_EQ(sink.rows().size(), 1u);
  EXPECT_EQ(sink.rows()[0].round, 3u);  // one row covering 3 deletions
  EXPECT_EQ(sink.rows()[0].deletions_in_round, 3u);
  EXPECT_EQ(sink.rows()[0].event_node, 0u);
  EXPECT_EQ(sink.rows()[0].edges_added, batch_edges);
  EXPECT_EQ(sink.rows()[0].alive, 29u);
}

TEST(SinkObserver, JoinsProduceJoinRows) {
  auto net = make_net(16, 14);
  MemorySink sink;
  net.add_observer(std::make_unique<SinkObserver>(sink));
  net.play(Scenario::parse("churn:1,0x2"), 14);

  ASSERT_EQ(sink.rows().size(), 2u);
  for (const auto& row : sink.rows()) {
    EXPECT_TRUE(row.is_join);
    EXPECT_EQ(row.deletions_in_round, 0u);
    EXPECT_GE(row.event_node, 16u);  // joined ids extend the id space
  }
}

TEST(SinkObserver, LogsStretchSamplesFromUpstreamObserver) {
  auto net = make_net(32, 11);
  // Producer before consumer: stretch samples land in the time series.
  auto& stretch = static_cast<StretchObserver&>(
      net.add_observer(std::make_unique<StretchObserver>(2)));
  MemorySink sink;
  net.add_observer(std::make_unique<SinkObserver>(sink, &stretch));
  net.play(Scenario::parse("strike:6"), 11);

  ASSERT_EQ(sink.rows().size(), 6u);
  for (const auto& row : sink.rows()) {
    if (row.round % 2 == 0) {
      EXPECT_TRUE(row.stretch_sampled) << "round " << row.round;
      EXPECT_GE(row.stretch, 1.0);
    } else {
      EXPECT_FALSE(row.stretch_sampled) << "round " << row.round;
    }
  }
}

TEST(CsvStreamSink, StreamsHeaderAndOneLinePerRow) {
  std::ostringstream out;
  auto net = make_net(24, 12);
  CsvStreamSink csv(out);
  net.add_observer(std::make_unique<SinkObserver>(csv));
  net.play(Scenario::parse("strike:4;churn:1,0x1"), 12);
  csv.flush();

  const std::string text = out.str();
  EXPECT_NE(text.find("instance,round,deletions_in_round,event_node,kind"),
            std::string::npos);
  EXPECT_NE(text.find("delete"), std::string::npos);
  EXPECT_NE(text.find("join"), std::string::npos);
  // Header + 4 delete rows + 1 join row.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 6u);
  EXPECT_EQ(csv.rows_written(), 5u);
}

TEST(JsonSummarySink, WritesGroupsRunsAndAggregates) {
  std::ostringstream out;
  JsonSummarySink json(out);
  json.begin_group({{"n", "24"}, {"strategy", "DASH"}});

  auto net = make_net(24, 13);
  net.add_observer(std::make_unique<SinkObserver>(json));
  net.play(Scenario::parse("strike:5"), 13);
  json.flush();

  const std::string text = out.str();
  EXPECT_NE(text.find("\"groups\":["), std::string::npos);
  EXPECT_NE(text.find("\"labels\":{\"n\":\"24\",\"strategy\":\"DASH\"}"),
            std::string::npos);
  EXPECT_NE(text.find("\"deletions\":5"), std::string::npos);
  EXPECT_NE(text.find("\"summary\":{"), std::string::npos);
  EXPECT_NE(text.find("\"max_delta\":{\"mean\":"), std::string::npos);
  EXPECT_NE(text.find("\"stayed_connected\":true"), std::string::npos);
  // Braces and brackets balance (cheap well-formedness check).
  int braces = 0, brackets = 0;
  for (char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // The document is written exactly once.
  json.flush();
  EXPECT_EQ(out.str(), text);
}

TEST(RunSuite, SuiteRowsCarryStretchFromConfiguredObserver) {
  // A StretchObserver registered by configure() is a producer the
  // suite's own SinkObserver must find and log samples from.
  MemorySink memory;
  SuiteConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(24, 2, rng);
  };
  cfg.make_healer = healer_factory("dash");
  cfg.scenario = Scenario::parse("strike:4");
  cfg.instances = 2;
  cfg.configure = [](Network& net) {
    net.add_observer(std::make_unique<StretchObserver>(2));
  };
  cfg.sinks = {&memory};
  cfg.record_rows = true;
  run_suite(cfg);

  ASSERT_EQ(memory.rows().size(), 8u);
  bool any_sampled = false;
  for (const auto& row : memory.rows()) {
    if (row.round % 2 == 0) {
      EXPECT_TRUE(row.stretch_sampled) << "round " << row.round;
      any_sampled |= row.stretch_sampled;
    }
  }
  EXPECT_TRUE(any_sampled);
}

TEST(RunSuite, SinksReceiveRowsGroupedByInstanceInOrder) {
  std::ostringstream out;
  CsvStreamSink csv(out);
  MemorySink memory;

  SuiteConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(20, 2, rng);
  };
  cfg.make_healer = healer_factory("dash");
  cfg.scenario = Scenario::parse("strike:3");
  cfg.instances = 4;
  cfg.sinks = {&csv, &memory};
  cfg.record_rows = true;

  dash::util::ThreadPool pool(4);
  run_suite(cfg, pool);
  csv.flush();

  // 4 instances x 3 rows, instance ids ascending.
  ASSERT_EQ(memory.rows().size(), 12u);
  for (std::size_t i = 0; i < memory.rows().size(); ++i) {
    EXPECT_EQ(memory.rows()[i].instance, i / 3);
    EXPECT_EQ(memory.rows()[i].round, i % 3 + 1);
  }
  ASSERT_EQ(memory.runs().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(memory.runs()[i].first, i);
    EXPECT_EQ(memory.runs()[i].second.deletions, 3u);
  }
  EXPECT_EQ(csv.rows_written(), 12u);
}

// ---- interleaved (bounded-memory) row mode ----------------------------

SuiteConfig interleavable_suite() {
  SuiteConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(28, 2, rng);
  };
  cfg.make_healer = healer_factory("dash");
  cfg.scenario = Scenario::parse("churn:0.4,0.3x12;strike:3");
  cfg.instances = 6;
  cfg.base_seed = 0xFACE;
  cfg.record_rows = true;
  return cfg;
}

void expect_rows_equal(const std::vector<RoundRow>& a,
                       const std::vector<RoundRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].instance, b[i].instance) << "row " << i;
    EXPECT_EQ(a[i].seq, b[i].seq) << "row " << i;
    EXPECT_EQ(a[i].round, b[i].round) << "row " << i;
    EXPECT_EQ(a[i].deletions_in_round, b[i].deletions_in_round);
    EXPECT_EQ(a[i].event_node, b[i].event_node) << "row " << i;
    EXPECT_EQ(a[i].is_join, b[i].is_join) << "row " << i;
    EXPECT_EQ(a[i].alive, b[i].alive) << "row " << i;
    EXPECT_EQ(a[i].edges, b[i].edges) << "row " << i;
    EXPECT_EQ(a[i].edges_added, b[i].edges_added) << "row " << i;
    EXPECT_EQ(a[i].max_delta, b[i].max_delta) << "row " << i;
    EXPECT_EQ(a[i].largest_component, b[i].largest_component);
    EXPECT_EQ(a[i].stretch, b[i].stretch) << "row " << i;
    EXPECT_EQ(a[i].stretch_sampled, b[i].stretch_sampled) << "row " << i;
  }
}

TEST(RunSuite, InterleavedRowsSortBackToBufferedOrder) {
  // Buffered reference: deterministic (instance, seq) order.
  MemorySink buffered;
  auto cfg = interleavable_suite();
  cfg.sinks = {&buffered};
  dash::util::ThreadPool pool(4);
  run_suite(cfg, pool);

  // Interleaved mode: rows stream during execution in scheduler order,
  // but each carries (instance, seq); a stable sort restores the
  // deterministic ordering field-for-field.
  MemorySink interleaved;
  cfg.sinks = {&interleaved};
  cfg.interleaved_rows = true;
  run_suite(cfg, pool);

  std::vector<RoundRow> sorted = interleaved.rows();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RoundRow& a, const RoundRow& b) {
                     return std::tie(a.instance, a.seq) <
                            std::tie(b.instance, b.seq);
                   });
  expect_rows_equal(sorted, buffered.rows());

  // Run snapshots still arrive post-barrier in instance order.
  ASSERT_EQ(interleaved.runs().size(), buffered.runs().size());
  for (std::size_t i = 0; i < interleaved.runs().size(); ++i) {
    EXPECT_EQ(interleaved.runs()[i].first, i);
    EXPECT_EQ(interleaved.runs()[i].second.deletions,
              buffered.runs()[i].second.deletions);
    EXPECT_EQ(interleaved.runs()[i].second.edges_added,
              buffered.runs()[i].second.edges_added);
  }
}

TEST(RunSuite, InterleavedSequentialMatchesBufferedExactly) {
  // Without a pool, instances run in order, so even the arrival order
  // of interleaved rows is the deterministic one.
  MemorySink buffered, interleaved;
  auto cfg = interleavable_suite();
  cfg.sinks = {&buffered};
  run_suite(cfg);
  cfg.sinks = {&interleaved};
  cfg.interleaved_rows = true;
  run_suite(cfg);
  expect_rows_equal(interleaved.rows(), buffered.rows());
}

TEST(RunSuite, SeqNumbersArePerInstanceAndContiguous) {
  MemorySink memory;
  auto cfg = interleavable_suite();
  cfg.sinks = {&memory};
  run_suite(cfg);
  std::vector<std::size_t> next(cfg.instances, 0);
  for (const auto& row : memory.rows()) {
    ASSERT_LT(row.instance, cfg.instances);
    EXPECT_EQ(row.seq, next[row.instance]++) << "instance " << row.instance;
  }
  for (std::size_t i = 0; i < cfg.instances; ++i) {
    EXPECT_GT(next[i], 0u) << "instance " << i << " produced no rows";
  }
}

}  // namespace
}  // namespace dash::api
