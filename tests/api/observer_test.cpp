// observer_test.cpp -- the Observer pipeline: event delivery, the
// built-in measurement observers (invariants / stretch), lazy
// per-round connectivity, and their Metrics contributions at finish.
// Sink-fed output lives in sink_test.cpp.
#include "api/observers.h"

#include <gtest/gtest.h>

#include <memory>

#include "api/api.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::api {
namespace {

using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

Network make_net(std::size_t n, std::uint64_t seed,
                 const std::string& healer = "dash") {
  Rng rng(seed);
  Graph g = graph::barabasi_albert(n, 2, rng);
  return Network(std::move(g), core::make_strategy(healer), rng);
}

/// Counts every pipeline callback.
class CountingObserver final : public Observer {
 public:
  std::string name() const override { return "counting"; }
  void on_attach(const Network&) override { ++attached; }
  void on_round_begin(const Network&, std::size_t round) override {
    ++begins;
    last_begin_round = round;
  }
  void on_heal(const Network&, const RoundEvent& ev) override {
    ++heals;
    EXPECT_NE(ev.ctx, nullptr);
    EXPECT_NE(ev.action, nullptr);
  }
  void on_round_end(const Network&, const RoundEvent& ev) override {
    ++ends;
    last_end_round = ev.round;
  }
  void on_join(const Network&, const JoinEvent&) override { ++joins; }
  void on_finish(const Network&, Metrics&) override { ++finishes; }

  int attached = 0, begins = 0, heals = 0, ends = 0, joins = 0,
      finishes = 0;
  std::size_t last_begin_round = 0, last_end_round = 0;
};

TEST(ObserverPipeline, EventsFireOncePerRound) {
  auto net = make_net(32, 1);
  CountingObserver counter;
  net.add_observer(&counter);
  EXPECT_EQ(counter.attached, 1);

  auto atk = attack::make_attack("neighborofmax", 1);
  RunOptions opts;
  opts.max_deletions = 10;
  net.run(*atk, opts);

  EXPECT_EQ(counter.begins, 10);
  EXPECT_EQ(counter.heals, 10);
  EXPECT_EQ(counter.ends, 10);
  EXPECT_EQ(counter.finishes, 1);
  EXPECT_EQ(counter.last_begin_round, 10u);
  EXPECT_EQ(counter.last_end_round, 10u);
}

TEST(ObserverPipeline, JoinAndBatchEventsFire) {
  Rng rng(2);
  Graph g = graph::barabasi_albert(32, 2, rng);
  Network net(std::move(g), core::make_strategy("dash"), rng);
  CountingObserver counter;
  net.add_observer(&counter);

  net.join({0, 5});
  EXPECT_EQ(counter.joins, 1);

  net.remove_batch({1, 2});
  // A batch round fires begin/end but no single-heal event, and both
  // callbacks carry the same round id (two deletions in the round).
  EXPECT_EQ(counter.begins, 1);
  EXPECT_EQ(counter.ends, 1);
  EXPECT_EQ(counter.heals, 0);
  EXPECT_EQ(counter.last_begin_round, 2u);
  EXPECT_EQ(counter.last_end_round, 2u);
}

TEST(ObserverPipeline, OwnedObserverSurvivesAndIsReachable) {
  auto net = make_net(24, 3);
  auto& inv = static_cast<InvariantObserver&>(
      net.add_observer(std::make_unique<InvariantObserver>()));
  auto atk = attack::make_attack("maxnode", 3);
  net.run(*atk);
  EXPECT_TRUE(inv.ok()) << inv.violation();
}

TEST(InvariantObserver, CleanRunReportsNoViolation) {
  auto net = make_net(48, 4);
  InvariantObserver inv;
  net.add_observer(&inv);
  auto atk = attack::make_attack("neighborofmax", 4);
  const Metrics m = net.run(*atk);
  EXPECT_TRUE(m.violation.empty()) << m.violation;
  EXPECT_TRUE(inv.ok());
}

TEST(InvariantObserver, SurfacesViolationForBadBound) {
  // GraphHeal with the DASH-only delta bound enabled blows past
  // 2 log2 n on a long NMS schedule at this size/seed; the observer
  // must surface the violation rather than crash (same workload the
  // old run_schedule flag test used).
  auto net = make_net(512, 5, "graph");
  InvariantOptions opts;
  opts.check_delta_bound = true;
  InvariantObserver inv(opts);
  net.add_observer(&inv);
  auto atk = attack::make_attack("neighborofmax", 5);
  const Metrics m = net.run(*atk);
  EXPECT_FALSE(m.violation.empty());
  EXPECT_FALSE(inv.ok());
  EXPECT_EQ(m.violation, inv.violation());
}

TEST(InvariantObserver, RemBoundHoldsForDash) {
  auto net = make_net(64, 6);
  InvariantOptions opts;
  opts.check_rem_bound = true;
  opts.check_delta_bound = true;
  InvariantObserver inv(opts);
  net.add_observer(&inv);
  auto atk = attack::make_attack("neighborofmax", 6);
  const Metrics m = net.run(*atk);
  EXPECT_TRUE(m.violation.empty()) << m.violation;
}

TEST(StretchObserver, TracksStretchDuringRun) {
  auto net = make_net(32, 7);
  StretchObserver stretch;
  net.add_observer(&stretch);
  auto atk = attack::make_attack("neighborofmax", 7);
  RunOptions opts;
  opts.max_deletions = 8;
  const Metrics m = net.run(*atk, opts);
  EXPECT_GE(m.max_stretch, 1.0);
  EXPECT_EQ(m.max_stretch, stretch.max_stretch());
}

TEST(StretchObserver, ZeroSampleEveryIsClampedToOne) {
  // Regression: the old schedule runner computed
  // `deletions % stretch_sample_every` and crashed with SIGFPE when the
  // interval was 0; the observer clamps it to "sample every round".
  auto net = make_net(16, 8);
  StretchObserver stretch(0);
  net.add_observer(&stretch);
  auto atk = attack::make_attack("maxnode", 8);
  RunOptions opts;
  opts.max_deletions = 4;
  const Metrics m = net.run(*atk, opts);
  EXPECT_GE(m.max_stretch, 1.0);
  EXPECT_TRUE(stretch.sampled_last_round());
}

TEST(StretchObserver, JoinFreezesSamplingInsteadOfAborting) {
  // Regression: stretch is measured against the frozen time-0 distance
  // matrix; a join grows the node-id space, and sampling afterwards
  // used to trip StretchTracker's size check and abort the process.
  Rng rng(12);
  Graph g = graph::barabasi_albert(16, 2, rng);
  Network net(std::move(g), core::make_strategy("dash"), rng);
  StretchObserver stretch;
  net.add_observer(&stretch);

  net.remove(net.graph().alive_nodes().back());
  const double before = stretch.max_stretch();
  EXPECT_GE(before, 1.0);
  EXPECT_TRUE(stretch.active());

  net.join({0, 1});
  EXPECT_FALSE(stretch.active());
  net.remove(net.graph().alive_nodes().back());  // must not abort
  EXPECT_FALSE(stretch.sampled_last_round());
  EXPECT_EQ(stretch.max_stretch(), before);  // pre-join maximum kept
}

TEST(StretchObserver, SamplesOnlyOnSchedule) {
  auto net = make_net(24, 9);
  StretchObserver stretch(1000);  // never due at these round counts
  net.add_observer(&stretch);
  auto atk = attack::make_attack("maxnode", 9);
  RunOptions opts;
  opts.max_deletions = 5;
  net.run(*atk, opts);
  EXPECT_EQ(stretch.max_stretch(), 0.0);
  EXPECT_FALSE(stretch.sampled_last_round());
}

TEST(SuiteConfigure, PerInstanceObserversContributeMetrics) {
  SuiteConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(24, 2, rng);
  };
  cfg.make_healer = healer_factory("dash");
  cfg.scenario = Scenario().targeted("maxnode", 8);
  cfg.instances = 3;
  cfg.configure = [](Network& net) {
    net.add_observer(std::make_unique<StretchObserver>());
  };
  const auto results = run_suite(cfg);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_GE(r.max_stretch, 1.0);
}

TEST(LazyConnectivity, UncheckedRoundsSkipTheScan) {
  // With no observer asking, rounds leave the event's connectivity
  // cache empty; the engine still settles stayed_connected at finish.
  class Peek final : public Observer {
   public:
    std::string name() const override { return "peek"; }
    void on_round_end(const Network&, const RoundEvent& ev) override {
      checked_before = ev.connectivity_checked();
      (void)ev.connected();
      checked_after = ev.connectivity_checked();
    }
    bool checked_before = true, checked_after = false;
  };
  auto net = make_net(24, 14);
  Peek peek;
  net.add_observer(&peek);
  net.remove(net.graph().alive_nodes().front());
  EXPECT_FALSE(peek.checked_before);  // nothing asked before us
  EXPECT_TRUE(peek.checked_after);    // our ask computed + cached it
  const Metrics m = net.finish();
  EXPECT_TRUE(m.stayed_connected);
}

}  // namespace
}  // namespace dash::api
