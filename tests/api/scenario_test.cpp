// scenario_test.cpp -- the declarative scenario layer: spec parsing
// (round-trip, malformed inputs, registry errors), phase execution
// semantics under Network::play, and sequential-vs-parallel
// determinism of the scenario-driven run_suite.
#include "api/scenario.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "api/api.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dash::api {
namespace {

using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

Network make_net(std::size_t n, std::uint64_t seed,
                 const std::string& healer = "dash") {
  Rng rng(seed);
  Graph g = graph::barabasi_albert(n, 2, rng);
  return Network(std::move(g), core::make_strategy(healer), rng);
}

std::string what_of(const std::string& spec) {
  try {
    Scenario::parse(spec);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "spec '" << spec << "' unexpectedly parsed";
  return "";
}

// ---- parsing: canonical forms and round trips ------------------------

TEST(ScenarioParse, IssueExampleRoundTrips) {
  const auto sc = Scenario::parse("churn:0.3,0.1x500;batch:8x50");
  EXPECT_EQ(sc.size(), 2u);
  EXPECT_EQ(sc.spec(), "churn:0.3,0.1x500;batch:8,hubsx50");
  // The canonical form is a fixed point of parse().
  EXPECT_EQ(Scenario::parse(sc.spec()).spec(), sc.spec());
}

TEST(ScenarioParse, EveryPhaseKindRoundTrips) {
  const std::string canon =
      "strike:maxnodex5;batch:4,randomx3;churn:0.5,0.25,3x10;"
      "targeted:neighborofmaxx7;until:16,maxnode;"
      "repeat:2{strike:randomx1;floor:4};floor:2";
  const auto sc = Scenario::parse(canon);
  EXPECT_EQ(sc.spec(), canon);
  EXPECT_EQ(Scenario::parse(sc.spec()).spec(), canon);
}

TEST(ScenarioParse, ShorthandsNormalize) {
  EXPECT_EQ(Scenario::parse("strike").spec(), "strike:maxnodex1");
  EXPECT_EQ(Scenario::parse("strike:40").spec(), "strike:maxnodex40");
  EXPECT_EQ(Scenario::parse("strike:randomx3").spec(), "strike:randomx3");
  EXPECT_EQ(Scenario::parse("targeted").spec(), "targeted:maxnode");
  EXPECT_EQ(Scenario::parse("batch:8").spec(), "batch:8,hubs");
  EXPECT_EQ(Scenario::parse("until:10").spec(), "until:10,maxnode");
  // Aliases and case-insensitive names resolve to the same phases.
  EXPECT_EQ(Scenario::parse("DELETE:3").spec(), "strike:maxnodex3");
  EXPECT_EQ(Scenario::parse("batch_strike:2x1").spec(), "batch:2,hubsx1");
  EXPECT_EQ(Scenario::parse("run:maxnode").spec(), "targeted:maxnode");
}

TEST(ScenarioParse, BuilderMatchesParsedSpec) {
  const auto built = Scenario()
                         .churn(0.3, 0.1, 500)
                         .batch_strike(8, 50)
                         .targeted("neighborofmax", 7)
                         .floor(2)
                         .spec();
  EXPECT_EQ(built, Scenario::parse(built).spec());
  EXPECT_EQ(built,
            "churn:0.3,0.1x500;batch:8,hubsx50;targeted:neighborofmaxx7;"
            "floor:2");
}

TEST(ScenarioParse, ScenarioIsACopyableValue) {
  const auto a = Scenario::parse("strike:3;churn:1,0x2");
  Scenario b = a;  // deep copy
  b.strike(1, "random");
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(a.spec(), "strike:maxnodex3;churn:1,0x2");
}

// ---- parsing: malformed specs ---------------------------------------

TEST(ScenarioParse, EmptyPhasesAreRejected) {
  EXPECT_THROW(Scenario::parse(""), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("strike;;strike"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse(";strike"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("strike:"), std::invalid_argument);
}

TEST(ScenarioParse, ZeroCountsAreRejected) {
  EXPECT_THROW(Scenario::parse("strike:0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("strike:maxnodex0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("batch:0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("batch:4x0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("churn:0.5,0.5x0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("repeat:0{strike}"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("until:0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("floor:0"), std::invalid_argument);
}

TEST(ScenarioParse, UnknownPhaseListsRegisteredSpellings) {
  const std::string msg = what_of("shake:3");
  for (const char* expected :
       {"strike", "batch", "churn", "targeted", "until", "repeat",
        "floor"}) {
    EXPECT_NE(msg.find(expected), std::string::npos)
        << "error should list '" << expected << "': " << msg;
  }
}

TEST(ScenarioParse, ChurnValidatesRatesAndCount) {
  EXPECT_THROW(Scenario::parse("churn:0.5,0.5"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("churn:1.5,0x3"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("churn:-0.1,0x3"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("churn:abc,0x3"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("churn:0.5x3"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("churn:0.5,0.5,0x3"),
               std::invalid_argument);
}

TEST(ScenarioParse, UnknownAttackNamesFailAtParseTime) {
  // Attack specs resolve through attack_registry() when a phase runs,
  // but the spelling is validated when the scenario is built so the
  // error surfaces where the spec was written.
  EXPECT_THROW(Scenario::parse("targeted:nosuchattack"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse("strike:nosuchattackx3"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse("strike:40x5"),  // "40" is not an attack
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse("until:5,nosuchattack"),
               std::invalid_argument);
  EXPECT_THROW(Scenario().targeted("nosuchattack"),
               std::invalid_argument);
  const std::string msg = what_of("targeted:nosuchattack");
  EXPECT_NE(msg.find("maxnode"), std::string::npos) << msg;
}

TEST(ScenarioParse, MalformedStructuresAreRejected) {
  EXPECT_THROW(Scenario::parse("batch:4,sideways"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("repeat:2{strike"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("repeat:2strike}"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("until:many"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("floor:two"), std::invalid_argument);
}

// ---- join / ramp / mix (the hunt alphabet) ---------------------------

TEST(ScenarioParse, JoinRampMixRoundTrip) {
  // join: attach defaults to 2, count to 1.
  EXPECT_EQ(Scenario::parse("join").spec(), "join:2x1");
  EXPECT_EQ(Scenario::parse("join:4x15").spec(), "join:4x15");
  // ramp: attach elided from the canonical form when it is the default.
  EXPECT_EQ(Scenario::parse("ramp:0,0.5,1,0x10").spec(),
            "ramp:0,0.5,1,0x10");
  EXPECT_EQ(Scenario::parse("ramp:0.3,0.1,0.3,0.1,3x5").spec(),
            "ramp:0.3,0.1,0.3,0.1,3x5");
  EXPECT_EQ(Scenario::parse("ramp:0,0,1,1,2x8").spec(), "ramp:0,0,1,1x8");
  // mix: weighted arms round-trip with their arm bodies canonicalized.
  const std::string mix = "mix:2{strike:maxnodex1},1{churn:0.5,0.5x3}x4";
  EXPECT_EQ(Scenario::parse(mix).spec(), mix);
  EXPECT_EQ(Scenario::parse(Scenario::parse(mix).spec()).spec(), mix);
}

TEST(ScenarioParse, JoinRampMixRejectMalformed) {
  EXPECT_THROW(Scenario::parse("join:0x3"), std::invalid_argument);
  // ramp and mix both require an explicit xN event/draw count.
  EXPECT_THROW(Scenario::parse("ramp:0,0.5,1,0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("mix:1{strike:maxnodex1}"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse("ramp:0,0.5x10"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("ramp:0,2,1,0x10"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("mix:0{strike:maxnodex1}x2"),
               std::invalid_argument);
  EXPECT_THROW(Scenario::parse("mix:1{}x2"), std::invalid_argument);
}

TEST(ScenarioPlay, JoinGrowsTheNetwork) {
  auto net = make_net(16, 9);
  const auto m = net.play(Scenario::parse("join:3x10"), 9);
  EXPECT_EQ(m.joins, 10u);
  EXPECT_EQ(net.graph().num_alive(), 26u);
}

TEST(ScenarioPlay, RampWithFlatRatesMatchesChurn) {
  // Equal start/end rates consume the same coin stream as the
  // equivalent churn phase, event for event.
  auto a = make_net(16, 10);
  const auto ma = a.play(Scenario::parse("ramp:1,1,1,1x10"), 10);
  auto b = make_net(16, 10);
  const auto mb = b.play(Scenario::parse("churn:1,1x10"), 10);
  EXPECT_EQ(ma.joins, mb.joins);
  EXPECT_EQ(ma.deletions, mb.deletions);
  EXPECT_EQ(ma.edges_added, mb.edges_added);
}

TEST(ScenarioPlay, RampInterpolatesRates) {
  auto net = make_net(32, 11);
  const auto m = net.play(Scenario::parse("ramp:0,0,1,1x21"), 11);
  // Rates climb 0 -> 1: the first tick never fires, the last always
  // does.
  EXPECT_GT(m.joins, 0u);
  EXPECT_GT(m.deletions, 0u);
  EXPECT_LT(m.joins, 21u);
}

TEST(ScenarioPlay, MixSingleArmRunsEveryDraw) {
  auto net = make_net(16, 12);
  const auto m = net.play(Scenario::parse("mix:1{join:2x1}x6"), 12);
  EXPECT_EQ(m.joins, 6u);
}

TEST(ScenarioPlay, MixDrawsAreSeedDeterministic) {
  const auto spec =
      Scenario::parse("mix:3{strike:maxnodex1},1{join:2x1}x8");
  auto a = make_net(32, 13);
  auto b = make_net(32, 13);
  const auto ma = a.play(spec, 13);
  const auto mb = b.play(spec, 13);
  EXPECT_EQ(ma.deletions, mb.deletions);
  EXPECT_EQ(ma.joins, mb.joins);
  // Every draw runs exactly one single-event arm.
  EXPECT_EQ(ma.deletions + ma.joins, 8u);
}

// ---- play semantics ---------------------------------------------------

TEST(ScenarioPlay, StrikeDeletesExactlyCount) {
  auto net = make_net(32, 1);
  const auto m = net.play(Scenario::parse("strike:5"), 1);
  EXPECT_EQ(m.deletions, 5u);
  EXPECT_EQ(net.graph().num_alive(), 27u);
}

TEST(ScenarioPlay, TargetedRunsToSingleNodeAndRespectsCap) {
  auto full = make_net(64, 2);
  const auto mf = full.play(Scenario::parse("targeted:neighborofmax"), 2);
  EXPECT_EQ(mf.deletions, 63u);
  EXPECT_TRUE(mf.stayed_connected);

  auto capped = make_net(64, 2);
  const auto mc =
      capped.play(Scenario::parse("targeted:neighborofmaxx7"), 2);
  EXPECT_EQ(mc.deletions, 7u);
}

TEST(ScenarioPlay, UntilLeavesExactlyN) {
  auto net = make_net(64, 3);
  net.play(Scenario::parse("until:10"), 3);
  EXPECT_EQ(net.graph().num_alive(), 10u);
}

TEST(ScenarioPlay, FloorStopsDeletions) {
  auto net = make_net(32, 4);
  const auto m = net.play(Scenario::parse("floor:20;targeted:maxnode"), 4);
  EXPECT_EQ(net.graph().num_alive(), 20u);
  EXPECT_EQ(m.deletions, 12u);
}

TEST(ScenarioPlay, BatchRoundsDeleteKPerRound) {
  auto net = make_net(48, 5);
  const auto m = net.play(Scenario::parse("batch:4x3"), 5);
  EXPECT_EQ(m.deletions, 12u);
  EXPECT_TRUE(m.stayed_connected);
}

TEST(ScenarioPlay, UnboundedBatchLeavesAtMostK) {
  auto net = make_net(33, 6);
  net.play(Scenario::parse("batch:8,random"), 6);
  // 33 -> 25 -> 17 -> 9; a further batch of 8 would leave 1 >= floor,
  // so it runs too.
  EXPECT_EQ(net.graph().num_alive(), 1u);
}

TEST(ScenarioPlay, ChurnFullRatesJoinAndLeaveEveryTick) {
  auto net = make_net(16, 7);
  const auto m = net.play(Scenario::parse("churn:1,1x10"), 7);
  EXPECT_EQ(m.joins, 10u);
  EXPECT_EQ(m.deletions, 10u);
  EXPECT_EQ(net.graph().num_alive(), 16u);
}

TEST(ScenarioPlay, RepeatMultipliesItsBody) {
  auto net = make_net(64, 8);
  const auto m =
      net.play(Scenario::parse("repeat:3{strike:2;churn:1,0x1}"), 8);
  EXPECT_EQ(m.deletions, 6u);
  EXPECT_EQ(m.joins, 3u);
}

TEST(ScenarioPlay, CustomAttackerFactoryDrivesTargetedPhase) {
  // A caller-owned adversary (the LevelAttack pattern) borrowed into
  // the scenario through a factory.
  class FirstAlive final : public attack::AttackStrategy {
   public:
    std::string name() const override { return "first-alive"; }
    NodeId select(const Graph& g, const core::HealingState&) override {
      ++selections;
      return g.alive_nodes().front();
    }
    std::unique_ptr<attack::AttackStrategy> clone() const override {
      return std::make_unique<FirstAlive>(*this);
    }
    int selections = 0;
  };

  FirstAlive atk;
  const auto sc = Scenario().targeted(
      [&atk](std::uint64_t) {
        return std::make_unique<attack::BorrowedAttack>(atk);
      },
      "first-alive", 4);
  EXPECT_EQ(sc.spec(), "targeted:<first-alive>x4");

  auto net = make_net(24, 9);
  const auto m = net.play(sc, 9);
  EXPECT_EQ(m.deletions, 4u);
  EXPECT_EQ(atk.selections, 4);
}

TEST(ScenarioPlay, StopConditionEndsThePlayMidPhase) {
  auto net = make_net(64, 15);
  PlayOptions opts;
  opts.stop_condition = [](const Network& engine) {
    return engine.graph().num_alive() <= 32;
  };
  const auto m =
      net.play(Scenario::parse("targeted:maxnode"), 15, opts);
  EXPECT_EQ(net.graph().num_alive(), 32u);
  EXPECT_EQ(m.deletions, 32u);
}

TEST(ScenarioPlay, SameSeedSameMetrics) {
  const auto sc = Scenario::parse("churn:0.6,0.4x40;batch:3x2;until:5");
  auto a = make_net(48, 10);
  auto b = make_net(48, 10);
  const auto ma = a.play(sc, 77);
  const auto mb = b.play(sc, 77);
  EXPECT_EQ(ma.deletions, mb.deletions);
  EXPECT_EQ(ma.joins, mb.joins);
  EXPECT_EQ(ma.max_delta, mb.max_delta);
  EXPECT_EQ(ma.edges_added, mb.edges_added);
  EXPECT_EQ(ma.max_messages, mb.max_messages);
}

// ---- suite determinism -------------------------------------------------

// ---- named presets and size-relative phases ---------------------------

TEST(ScenarioPresets, ParseAndRoundTripByName) {
  for (const char* name :
       {"paper-churn", "max-degree-attack", "until-half", "until-quarter"}) {
    const auto sc = Scenario::parse(name);
    EXPECT_EQ(sc.spec(), name);
    EXPECT_EQ(Scenario::parse(sc.spec()).spec(), name);
  }
}

TEST(ScenarioPresets, PresetPlaysIdenticallyToItsBody) {
  // "paper-churn" is sugar for its registered body: same seed, same
  // engine state, same metrics.
  auto preset_net = make_net(32, 7);
  const auto preset = preset_net.play(Scenario::parse("paper-churn"), 7);
  auto body_net = make_net(32, 7);
  const auto body = body_net.play(Scenario::parse("churn:0.3,0.1x500"), 7);
  EXPECT_EQ(preset.deletions, body.deletions);
  EXPECT_EQ(preset.joins, body.joins);
  EXPECT_EQ(preset.edges_added, body.edges_added);
  EXPECT_EQ(preset.max_delta, body.max_delta);
  EXPECT_EQ(preset_net.graph().num_alive(), body_net.graph().num_alive());
}

TEST(ScenarioPresets, PresetsTakeNoParameter) {
  EXPECT_THROW(Scenario::parse("paper-churn:3"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("until-half:0.2"), std::invalid_argument);
}

TEST(ScenarioPresets, UnknownPhaseErrorListsPresetSpellings) {
  const std::string msg = what_of("no-such-preset:1");
  EXPECT_NE(msg.find("paper-churn"), std::string::npos);
  EXPECT_NE(msg.find("until-quarter"), std::string::npos);
  EXPECT_NE(msg.find("churn"), std::string::npos);  // primitives too
}

TEST(ScenarioPlay, UntilFracIsSizeRelative) {
  const auto sc = Scenario::parse("untilfrac:0.25,maxnode");
  EXPECT_EQ(sc.spec(), "untilfrac:0.25,maxnode");
  for (const std::size_t n : {32u, 64u}) {
    auto net = make_net(n, 8);
    net.play(sc, 8);
    EXPECT_EQ(net.graph().num_alive(), n / 4) << "n=" << n;
  }
  // Odd sizes round the survivor count up (ceil).
  auto net = make_net(33, 8);
  net.play(Scenario::parse("untilfrac:0.5"), 8);
  EXPECT_EQ(net.graph().num_alive(), 17u);
}

TEST(ScenarioParse, UntilFracValidatesItsFraction) {
  EXPECT_THROW(Scenario::parse("untilfrac:0"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("untilfrac:1.5"), std::invalid_argument);
  EXPECT_THROW(Scenario::parse("untilfrac:"), std::invalid_argument);
  EXPECT_EQ(Scenario::parse("untilfrac:1").spec(), "untilfrac:1,maxnode");
}

SuiteConfig churny_suite() {
  SuiteConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(40, 2, rng);
  };
  cfg.make_healer = healer_factory("dash");
  cfg.scenario = Scenario::parse("churn:0.5,0.3x30;batch:3x2;until:8");
  cfg.instances = 8;
  cfg.base_seed = 0xFEED;
  return cfg;
}

TEST(RunSuite, SequentialAndParallelMetricsAreIdentical) {
  const auto cfg = churny_suite();
  const auto serial = run_suite(cfg);
  dash::util::ThreadPool pool(4);
  const auto parallel = run_suite(cfg, pool);

  ASSERT_EQ(serial.size(), 8u);
  ASSERT_EQ(parallel.size(), 8u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].deletions, parallel[i].deletions) << i;
    EXPECT_EQ(serial[i].joins, parallel[i].joins) << i;
    EXPECT_EQ(serial[i].max_delta, parallel[i].max_delta) << i;
    EXPECT_EQ(serial[i].max_id_changes, parallel[i].max_id_changes) << i;
    EXPECT_EQ(serial[i].max_messages, parallel[i].max_messages) << i;
    EXPECT_EQ(serial[i].max_messages_sent,
              parallel[i].max_messages_sent)
        << i;
    EXPECT_EQ(serial[i].edges_added, parallel[i].edges_added) << i;
    EXPECT_EQ(serial[i].surrogate_heals, parallel[i].surrogate_heals)
        << i;
    EXPECT_EQ(serial[i].max_stretch, parallel[i].max_stretch) << i;
    EXPECT_EQ(serial[i].stayed_connected, parallel[i].stayed_connected)
        << i;
    EXPECT_EQ(serial[i].violation, parallel[i].violation) << i;
  }
}

TEST(RunSuite, SequentialAndParallelSinkBytesAreIdentical) {
  // The acceptance bar: the full streamed output -- every row and
  // every run summary -- is byte-identical whatever the worker count.
  auto run_to_string = [](dash::util::ThreadPool* pool) {
    std::ostringstream out;
    CsvStreamSink csv(out);
    auto cfg = churny_suite();
    cfg.sinks.push_back(&csv);
    cfg.record_rows = true;
    if (pool != nullptr) {
      run_suite(cfg, *pool);
    } else {
      run_suite(cfg);
    }
    csv.flush();
    return out.str();
  };
  const std::string serial = run_to_string(nullptr);
  dash::util::ThreadPool pool(4);
  const std::string parallel = run_to_string(&pool);
  EXPECT_GT(serial.size(), 0u);
  EXPECT_EQ(serial, parallel);
}

TEST(RunSuite, DifferentSeedsDiffer) {
  auto cfg = churny_suite();
  cfg.instances = 4;
  cfg.base_seed = 1;
  const auto a = run_suite(cfg);
  cfg.base_seed = 2;
  const auto b = run_suite(cfg);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= (a[i].edges_added != b[i].edges_added) ||
                (a[i].max_messages != b[i].max_messages);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RunSuite, InspectSeesFinalStatesInOrder) {
  auto cfg = churny_suite();
  cfg.instances = 3;
  std::vector<std::size_t> order;
  cfg.inspect = [&order](std::size_t i, const Network& net,
                         const Metrics& m) {
    order.push_back(i);
    EXPECT_EQ(net.state().max_delta_ever(), m.max_delta);
    EXPECT_EQ(net.rounds(), m.deletions);
  };
  dash::util::ThreadPool pool(3);
  run_suite(cfg, pool);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace dash::api
