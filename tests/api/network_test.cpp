// network_test.cpp -- the api::Network engine: event API (remove /
// remove_batch / join), the run loop, metrics, and the borrowed mode
// the deprecated shims use.
#include "api/network.h"

#include <gtest/gtest.h>

#include <memory>

#include "api/api.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::api {
namespace {

using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

Network make_net(std::size_t n, std::uint64_t seed,
                 const std::string& healer = "dash") {
  Rng rng(seed);
  Graph g = graph::barabasi_albert(n, 2, rng);
  return Network(std::move(g), core::make_strategy(healer), rng);
}

TEST(Network, RunsToSingleNode) {
  auto net = make_net(64, 1);
  auto atk = attack::make_attack("neighborofmax", 1);
  const Metrics m = net.run(*atk);
  EXPECT_EQ(m.deletions, 63u);
  EXPECT_EQ(net.graph().num_alive(), 1u);
  EXPECT_TRUE(m.stayed_connected);
  EXPECT_GT(m.edges_added, 0u);
  EXPECT_GT(m.max_delta, 0u);
}

TEST(Network, RespectsMaxDeletions) {
  auto net = make_net(64, 2);
  auto atk = attack::make_attack("neighborofmax", 2);
  RunOptions opts;
  opts.max_deletions = 10;
  const Metrics m = net.run(*atk, opts);
  EXPECT_EQ(m.deletions, 10u);
  EXPECT_EQ(net.graph().num_alive(), 54u);
}

TEST(Network, StopConditionEndsRun) {
  auto net = make_net(64, 3);
  auto atk = attack::make_attack("maxnode", 3);
  RunOptions opts;
  opts.stop_condition = [](const Network& engine) {
    return engine.graph().num_alive() <= 32;
  };
  const Metrics m = net.run(*atk, opts);
  EXPECT_EQ(net.graph().num_alive(), 32u);
  EXPECT_EQ(m.deletions, 32u);
}

TEST(Network, RunContinuesAcrossCalls) {
  auto net = make_net(64, 4);
  auto atk = attack::make_attack("neighborofmax", 4);
  RunOptions opts;
  opts.max_deletions = 5;  // counted across run() calls
  net.run(*atk, opts);
  opts.max_deletions = 12;
  const Metrics m = net.run(*atk, opts);
  EXPECT_EQ(m.deletions, 12u);
}

TEST(Network, RemoveHealsAndReportsAction) {
  Rng rng(5);
  Network net(graph::star_graph(8), core::make_strategy("dash"), rng);
  const auto action = net.remove(0);  // the hub
  EXPECT_GT(action.new_graph_edges.size(), 0u);
  EXPECT_TRUE(graph::is_connected(net.graph()));
  EXPECT_EQ(net.rounds(), 1u);
}

TEST(Network, SameSeedSameMetrics) {
  auto a = make_net(48, 77);
  auto b = make_net(48, 77);
  auto atk_a = attack::make_attack("random", 9);
  auto atk_b = attack::make_attack("random", 9);
  const Metrics ma = a.run(*atk_a);
  const Metrics mb = b.run(*atk_b);
  EXPECT_EQ(ma.deletions, mb.deletions);
  EXPECT_EQ(ma.max_delta, mb.max_delta);
  EXPECT_EQ(ma.edges_added, mb.edges_added);
  EXPECT_EQ(ma.max_messages, mb.max_messages);
}

TEST(Network, SpecConstructorUsesRegistry) {
  Rng rng(6);
  Graph g = graph::barabasi_albert(32, 2, rng);
  Network net(std::move(g), "sdash:4", 6);
  EXPECT_EQ(net.healer().name(), "SDASH(slack=4)");
  EXPECT_THROW(Network(Graph(4), "bogus", 1), std::invalid_argument);
}

TEST(Network, BorrowedModeMutatesCallerObjects) {
  Rng rng(7);
  Graph g = graph::barabasi_albert(32, 2, rng);
  core::HealingState st(g, rng);
  auto healer = core::make_strategy("dash");
  Network net(g, st, *healer);
  auto atk = attack::make_attack("neighborofmax", 7);
  RunOptions opts;
  opts.max_deletions = 6;
  const Metrics m = net.run(*atk, opts);
  EXPECT_EQ(m.deletions, 6u);
  EXPECT_EQ(g.num_alive(), 26u);           // caller's graph mutated
  EXPECT_EQ(st.max_delta_ever(), m.max_delta);  // caller's state mutated
}

TEST(Network, RemoveBatchHealsSimultaneousDeletions) {
  Rng rng(8);
  Graph g = graph::barabasi_albert(48, 2, rng);
  Network net(std::move(g), core::make_strategy("dash"), rng);
  // Delete three adjacent-ish nodes at once (ids 0..2 are the BA core,
  // so their neighbor-of-neighbor graph stays connected).
  const auto actions = net.remove_batch({0, 1, 2});
  EXPECT_GE(actions.size(), 1u);
  EXPECT_TRUE(graph::is_connected(net.graph()));
  EXPECT_EQ(net.graph().num_alive(), 45u);
  const Metrics m = net.metrics();
  EXPECT_EQ(m.deletions, 3u);
  EXPECT_TRUE(m.stayed_connected);
}

TEST(Network, JoinCountsAndExtendsGraph) {
  Rng rng(9);
  Network net(graph::path_graph(4), core::make_strategy("dash"), rng);
  const NodeId v = net.join({0, 3});
  EXPECT_EQ(v, 4u);
  EXPECT_TRUE(net.graph().has_edge(4, 0));
  EXPECT_EQ(net.metrics().joins, 1u);
  EXPECT_TRUE(net.metrics().stayed_connected);
}

TEST(Network, MetricsSnapshotMatchesState) {
  auto net = make_net(40, 10);
  auto atk = attack::make_attack("maxnode", 10);
  RunOptions opts;
  opts.max_deletions = 15;
  net.run(*atk, opts);
  const Metrics m = net.metrics();
  EXPECT_EQ(m.max_delta, net.state().max_delta_ever());
  EXPECT_EQ(m.max_id_changes, net.state().max_id_changes());
  EXPECT_EQ(m.max_messages, net.state().max_messages());
  EXPECT_EQ(m.max_messages_sent, net.state().max_messages_sent());
  EXPECT_EQ(m.deletions, net.rounds());
}

TEST(Network, InitialSizeFrozenAtConstruction) {
  auto net = make_net(32, 11);
  EXPECT_EQ(net.initial_size(), 32u);
  net.remove(0);
  net.join({net.graph().alive_nodes().front()});
  EXPECT_EQ(net.initial_size(), 32u);
}

TEST(Network, EarlyStoppingAttackEndsRun) {
  // An attacker returning kInvalidNode stops the loop.
  class OneShot final : public attack::AttackStrategy {
   public:
    std::string name() const override { return "OneShot"; }
    NodeId select(const Graph& g, const core::HealingState&) override {
      if (fired_) return graph::kInvalidNode;
      fired_ = true;
      return g.alive_nodes().front();
    }
    std::unique_ptr<attack::AttackStrategy> clone() const override {
      return std::make_unique<OneShot>(*this);
    }

   private:
    bool fired_ = false;
  };
  auto net = make_net(32, 12);
  OneShot atk;
  const Metrics m = net.run(atk);
  EXPECT_EQ(m.deletions, 1u);
}

// ---- incremental connectivity integration ---------------------------------

TEST(Network, OwningEnginesDefaultToTrackerMode) {
  auto net = make_net(32, 13);
  // DASH_VERIFY_CONNECTIVITY=1 upgrades the default to kVerify; both
  // are tracker-backed.
  EXPECT_NE(net.connectivity_mode(), ConnectivityMode::kBfs);
  EXPECT_NE(net.connectivity_tracker(), nullptr);
}

TEST(Network, BorrowedEnginesPinnedToBfs) {
  Rng rng(14);
  Graph g = graph::barabasi_albert(32, 2, rng);
  core::HealingState st(g, rng);
  auto healer = core::make_strategy("dash");
  Network net(g, st, *healer);
  EXPECT_EQ(net.connectivity_mode(), ConnectivityMode::kBfs);
  EXPECT_EQ(net.connectivity_tracker(), nullptr);
  EXPECT_DEATH(net.set_connectivity_mode(ConnectivityMode::kTracker),
               "owning");
  // The BFS fallback still serves component queries.
  EXPECT_EQ(net.component_count(), 1u);
  EXPECT_EQ(net.largest_component(), 32u);
}

TEST(Network, ComponentAccessorsMatchScan) {
  auto net = make_net(64, 15);
  auto atk = attack::make_attack("maxnode", 15);
  RunOptions opts;
  opts.max_deletions = 20;
  net.run(*atk, opts);
  const auto truth = graph::connected_components(net.graph());
  EXPECT_EQ(net.component_count(), truth.count());
  EXPECT_EQ(net.largest_component(), truth.largest());
  const Metrics m = net.metrics();
  EXPECT_EQ(m.components, truth.count());
  EXPECT_EQ(m.largest_component, truth.largest());
}

TEST(Network, HealedRunsNeverRebuildTheTracker) {
  // Every DASH deletion is certified through the healing forest, so the
  // whole schedule stays on the O(alpha) fast path: zero re-scans.
  auto net = make_net(128, 16);
  auto atk = attack::make_attack("neighborofmax", 16);
  const Metrics m = net.run(*atk);
  EXPECT_TRUE(m.stayed_connected);
  ASSERT_NE(net.connectivity_tracker(), nullptr);
  EXPECT_EQ(net.connectivity_tracker()->rebuilds(), 0u);
  EXPECT_EQ(net.connectivity_tracker()->nodes_rescanned(), 0u);
}

TEST(Network, UnattachedJoinSplitsComponentStructure) {
  Rng rng(17);
  Network net(graph::path_graph(4), core::make_strategy("dash"), rng);
  net.join({});
  EXPECT_EQ(net.component_count(), 2u);
  EXPECT_EQ(net.largest_component(), 4u);
  const Metrics m = net.metrics();
  EXPECT_FALSE(m.stayed_connected);
  EXPECT_EQ(m.components, 2u);
}

TEST(Network, RoundEventCacheIsFreshEveryRound) {
  // The connected() verdict is cached per event; the engine constructs
  // one event per round, so no round may start with a cached verdict
  // (Network::finish_round DASH_CHECKs this). Observing the flag at
  // both pipeline stages over many rounds proves no leak.
  class CacheProbe final : public Observer {
   public:
    std::string name() const override { return "cache-probe"; }
    void on_heal(const Network&, const RoundEvent& ev) override {
      // First stage to see the event: nothing may be cached yet.
      EXPECT_FALSE(ev.connectivity_checked());
      EXPECT_TRUE(ev.connected());
      EXPECT_TRUE(ev.connectivity_checked());
    }
    void on_round_end(const Network&, const RoundEvent& ev) override {
      // Same round, later stage: the cached verdict is still visible.
      EXPECT_TRUE(ev.connectivity_checked());
      ++rounds_seen;
    }
    std::size_t rounds_seen = 0;
  };
  auto net = make_net(48, 18);
  CacheProbe probe;
  net.add_observer(&probe);
  auto atk = attack::make_attack("neighborofmax", 18);
  RunOptions opts;
  opts.max_deletions = 30;
  net.run(*atk, opts);
  EXPECT_EQ(probe.rounds_seen, 30u);
}

TEST(Network, DetachedRoundEventDefaultsToConnected) {
  RoundEvent ev;
  EXPECT_FALSE(ev.connectivity_checked());
  EXPECT_TRUE(ev.connected());
  EXPECT_TRUE(ev.connectivity_checked());
}

}  // namespace
}  // namespace dash::api
