// serve_test.cpp -- the concurrent serving engine (Network::serve):
// epoch publication cadence, queries served from pinned snapshots
// while play() mutates on another thread, the one-shot ServeReader
// conveniences, and the AsyncSink half of the observer pipeline
// (byte-identity vs the synchronous path, bounded-capacity stress,
// flush barrier).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "api/async_sink.h"
#include "api/network.h"
#include "api/scenario.h"
#include "api/serve.h"
#include "api/sink.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dash::api {
namespace {

using dash::util::Rng;

graph::Graph make_ba(std::size_t n, std::uint64_t seed = 5) {
  Rng rng(seed);
  return graph::barabasi_albert(n, 2, rng);
}

TEST(Serve, PublishesInitialStateOnAttach) {
  Network net(make_ba(64), "dash", 1);
  ServeHandle& serve = net.serve();
  EXPECT_EQ(serve.epoch(), 1u);  // initial state, before any play()
  ServeReader reader = serve.reader();
  EXPECT_EQ(reader.epoch(), 1u);
  EXPECT_EQ(reader.pin().alive(), 64u);
}

TEST(Serve, ServeIsIdempotentPerNetwork) {
  Network net(make_ba(16), "dash", 1);
  ServeHandle& a = net.serve();
  ServeHandle& b = net.serve();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(net.serve_handle(), &a);
}

TEST(Serve, EpochAdvancesWithMutationEvents) {
  Network net(make_ba(64), "dash", 1);
  MemorySink rows;
  net.add_observer(std::make_unique<SinkObserver>(rows));
  ServeHandle& serve = net.serve();
  EXPECT_EQ(serve.epoch(), 1u);  // attach publish
  Rng rng(2);
  net.play(Scenario::parse("churn:0.3,0.1x50"), rng);
  // Cadence 1: attach + one publish per mutation event (exactly the
  // events SinkObserver saw as rows) + the unconditional finish.
  EXPECT_EQ(serve.epoch(), 1 + rows.rows().size() + 1);
  EXPECT_GT(rows.rows().size(), 0u);
}

TEST(Serve, PublishCadenceThrottlesEpochs) {
  ServeOptions every8;
  every8.publish_every = 8;
  Network coarse(make_ba(64), "dash", 1);
  coarse.serve(every8);
  Network fine(make_ba(64), "dash", 1);
  fine.serve();
  Rng r1(2), r2(2);
  const Scenario s = Scenario::parse("churn:0.3,0.1x64");
  coarse.play(s, r1);
  fine.play(s, r2);
  EXPECT_LT(coarse.serve().epoch(), fine.serve().epoch());
  // Cadence must not change the mutation outcome.
  EXPECT_EQ(coarse.graph().num_alive(), fine.graph().num_alive());
}

TEST(Serve, QueriesDuringPlayOnBackgroundThread) {
  Network net(make_ba(512), "dash", 3);
  ServeHandle& serve = net.serve();
  ServeReader reader = serve.reader();

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reads{0};
  std::atomic<std::size_t> torn{0};
  std::thread t([&, reader = std::move(reader)]() mutable {
    Rng pick(11);
    while (!stop.load(std::memory_order_relaxed)) {
      ServePin pin = reader.pin();
      const auto& alive = pin.snapshot().view().alive_nodes();
      if (alive.size() < 2) continue;
      const graph::NodeId u =
          alive[static_cast<std::size_t>(pick.below(alive.size()))];
      const graph::NodeId v =
          alive[static_cast<std::size_t>(pick.below(alive.size()))];
      if (pin.connected(u, v) != pin.distance(u, v).has_value()) {
        torn.fetch_add(1);
      }
      reads.fetch_add(1);
    }
  });

  Rng rng(4);
  net.play(Scenario::parse("churn:0.3,0.1x300"), rng);
  // The store keeps serving after play() (finish published the final
  // state): wait until the reader has demonstrably made progress
  // before stopping it, so the assertion is robust under CI load even
  // when play() outruns thread startup.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (reads.load() < 10 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GE(reads.load(), 10u);
  // finish() published the final state: a fresh reader sees the
  // network exactly as the mutation side left it.
  ServeReader after = serve.reader();
  EXPECT_EQ(after.pin().alive(), net.graph().num_alive());
}

TEST(Serve, OneShotConveniencesMatchPinnedQueries) {
  Network net(make_ba(64), "dash", 1);
  ServeHandle& serve = net.serve();
  ServeReader reader = serve.reader();
  EXPECT_EQ(reader.largest_component(), 64u);
  EXPECT_EQ(reader.component_count(), 1u);
  EXPECT_TRUE(reader.connected(0, 63));
  EXPECT_TRUE(reader.distance(0, 63).has_value());
}

TEST(Serve, ExplicitPublishBetweenEvents) {
  Network net(make_ba(32), "dash", 1);
  ServeHandle& serve = net.serve();
  const std::uint64_t e = serve.epoch();
  EXPECT_EQ(serve.publish(), e + 1);
  EXPECT_EQ(serve.epoch(), e + 1);
}

TEST(Serve, NestedParallelForOverServeReads) {
  // The serve read path from inside pool tasks -- including a nested
  // parallel_for whose caller-runner participates -- must stay safe:
  // make_reader() is any-thread, pins are per-reader, and nothing on
  // the read path touches pool state.
  Network net(make_ba(256), "dash", 7);
  ServeHandle& serve = net.serve();
  Rng rng(8);
  net.play(Scenario::parse("churn:0.3,0.1x100"), rng);

  util::ThreadPool pool(4);
  std::atomic<std::size_t> torn{0};
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(4, [&](std::size_t inner) {
      ServeReader reader = serve.reader();
      ServePin pin = reader.pin();
      const auto& alive = pin.snapshot().view().alive_nodes();
      if (alive.size() < 2) return;
      Rng pick(100 + outer * 8 + inner);
      for (int q = 0; q < 20; ++q) {
        const graph::NodeId u =
            alive[static_cast<std::size_t>(pick.below(alive.size()))];
        const graph::NodeId v =
            alive[static_cast<std::size_t>(pick.below(alive.size()))];
        if (pin.connected(u, v) != pin.distance(u, v).has_value()) {
          torn.fetch_add(1);
        }
      }
    });
  });
  EXPECT_EQ(torn.load(), 0u);
}

// ---- AsyncSink -------------------------------------------------------------

/// Drive the same scenario into a synchronous CsvStreamSink and an
/// AsyncSink-wrapped one; outputs must be byte-identical.
TEST(AsyncSink, OutputByteIdenticalToSynchronousPath) {
  const Scenario s = Scenario::parse("churn:0.3,0.1x100");

  std::ostringstream sync_out;
  {
    Network net(make_ba(128), "dash", 9);
    CsvStreamSink sink(sync_out);
    net.add_observer(std::make_unique<SinkObserver>(sink));
    Rng rng(6);
    net.play(s, rng);
    sink.flush();
  }

  std::ostringstream async_out;
  {
    Network net(make_ba(128), "dash", 9);
    CsvStreamSink inner(async_out);
    AsyncSink sink(inner, 8);  // tiny ring: force producer blocking
    net.add_observer(std::make_unique<SinkObserver>(sink));
    Rng rng(6);
    net.play(s, rng);
    sink.flush();
  }

  EXPECT_EQ(sync_out.str(), async_out.str());
  EXPECT_FALSE(async_out.str().empty());
}

TEST(AsyncSink, PreservesOrderUnderCapacityPressure) {
  MemorySink memory;
  {
    AsyncSink sink(memory, 2);  // rounds to capacity 2
    RoundRow row;
    for (int i = 0; i < 5000; ++i) {
      row.round = static_cast<std::size_t>(i);
      sink.on_row(row);
    }
    sink.flush();
    EXPECT_EQ(memory.rows().size(), 5000u);
    EXPECT_GE(sink.high_water(), 1u);
    EXPECT_LE(sink.high_water(), sink.capacity());
  }
  for (std::size_t i = 0; i < memory.rows().size(); ++i) {
    EXPECT_EQ(memory.rows()[i].round, i);
  }
}

TEST(AsyncSink, FlushIsABarrier) {
  MemorySink memory;
  AsyncSink sink(memory, 1024);
  RoundRow row;
  for (int i = 0; i < 100; ++i) {
    row.round = static_cast<std::size_t>(i);
    sink.on_row(row);
  }
  sink.flush();
  // After flush() returns every queued event reached the inner sink.
  EXPECT_EQ(memory.rows().size(), 100u);
}

TEST(AsyncSink, DestructorDrainsOutstandingEvents) {
  MemorySink memory;
  {
    AsyncSink sink(memory, 256);
    RoundRow row;
    for (int i = 0; i < 200; ++i) {
      row.round = static_cast<std::size_t>(i);
      sink.on_row(row);
    }
    // No flush: the destructor must deliver everything.
  }
  EXPECT_EQ(memory.rows().size(), 200u);
}

TEST(AsyncSink, NameReflectsInnerSink) {
  MemorySink memory;
  AsyncSink sink(memory, 4);
  EXPECT_EQ(sink.name(), "async:" + memory.name());
}

}  // namespace
}  // namespace dash::api
