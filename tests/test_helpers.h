// test_helpers.h -- shared machinery for schedule-level tests: run an
// attack/heal schedule on the api::Network engine with the full
// invariant battery plugged in, failing loudly on any violation.
#pragma once

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "api/api.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::testing {

struct RunSpec {
  std::string attack = "neighborofmax";
  std::string healer = "dash";
  std::uint64_t seed = 12345;
  bool check_rem = false;   // DASH-only Lemma 4 bound
  bool track_stretch = false;
  std::size_t max_deletions = std::numeric_limits<std::size_t>::max();
};

/// Run a full schedule on `g` with the invariant observer attached;
/// EXPECT no violation and that the network stayed connected.
inline api::Metrics run_checked(graph::Graph g, const RunSpec& spec) {
  dash::util::Rng rng(spec.seed);
  api::Network net(std::move(g), core::make_strategy(spec.healer), rng);

  api::InvariantOptions inv_opts;
  inv_opts.check_rem_bound = spec.check_rem;
  inv_opts.check_delta_bound = (spec.healer == "dash");  // Theorem 1 is DASH's
  net.add_observer(std::make_unique<api::InvariantObserver>(inv_opts));
  if (spec.track_stretch) {
    net.add_observer(std::make_unique<api::StretchObserver>());
  }

  auto attacker = attack::make_attack(spec.attack, spec.seed);
  api::RunOptions opts;
  opts.max_deletions = spec.max_deletions;
  const api::Metrics result = net.run(*attacker, opts);

  EXPECT_TRUE(result.violation.empty()) << result.violation;
  EXPECT_TRUE(result.stayed_connected)
      << spec.healer << " lost connectivity under " << spec.attack;
  return result;
}

}  // namespace dash::testing
