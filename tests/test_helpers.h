// test_helpers.h -- shared machinery for schedule-level tests: run an
// attack/heal loop with the full invariant battery enabled and return
// the result, failing loudly on any violation.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "analysis/experiment.h"
#include "attack/factory.h"
#include "core/factory.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::testing {

struct RunSpec {
  std::string attack = "neighborofmax";
  std::string healer = "dash";
  std::uint64_t seed = 12345;
  bool check_rem = false;   // DASH-only Lemma 4 bound
  bool track_stretch = false;
  std::size_t max_deletions = static_cast<std::size_t>(-1);
};

/// Run a full schedule on `g` with invariants on; EXPECT no violation
/// and that the network stayed connected throughout.
inline analysis::ScheduleResult run_checked(graph::Graph g,
                                            const RunSpec& spec) {
  dash::util::Rng rng(spec.seed);
  core::HealingState state(g, rng);
  auto attacker = attack::make_attack(spec.attack, spec.seed);
  auto healer = core::make_strategy(spec.healer);

  analysis::ScheduleConfig cfg;
  cfg.check_invariants = true;
  cfg.check_rem_bound = spec.check_rem;
  cfg.check_delta_bound = (spec.healer == "dash");  // Theorem 1 is DASH's
  cfg.track_stretch = spec.track_stretch;
  cfg.max_deletions = spec.max_deletions;

  auto result = analysis::run_schedule(g, state, *attacker, *healer, cfg);
  EXPECT_TRUE(result.violation.empty()) << result.violation;
  EXPECT_TRUE(result.stayed_connected)
      << spec.healer << " lost connectivity under " << spec.attack;
  return result;
}

}  // namespace dash::testing
