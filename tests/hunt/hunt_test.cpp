// hunt_test.cpp -- the adversary search engine end to end: registry
// parsing, hard budget accounting, backend-independent determinism
// (sequential vs ThreadPool vs fleet agents), spool resume, emitted
// traces that replay bit-identically and round-trip through a grid
// cell, and the comparison against the paper's hand-derived
// LevelAttack baseline.
#include "hunt/hunt.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/runner.h"
#include "exp/spec.h"
#include "hunt/strategy.h"
#include "replay/play.h"
#include "replay/trace.h"

namespace dash::hunt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch dir under gtest's temp root.
std::string scratch(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "dash_hunt_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A hunt tiny enough to run in milliseconds but rich enough to fill a
/// leaderboard: 10 distinct candidates on a 24-node BA graph against
/// the degree-capped healer.
HuntConfig tiny(const std::string& state_dir = "") {
  HuntConfig cfg;
  cfg.family = "ba";
  cfg.n = 24;
  cfg.healers = {"capped:2"};
  cfg.instances = 1;
  cfg.seed = 5;
  cfg.budget = 10;
  cfg.strategy = "evolve:6";
  cfg.top_k = 2;
  cfg.threads = 1;
  cfg.state_dir = state_dir;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---- registries -------------------------------------------------------

TEST(HuntRegistry, StrategySpecsResolve) {
  EXPECT_EQ(make_search_strategy("random")->name(), "random");
  EXPECT_EQ(make_search_strategy("greedy:4")->name(), "greedy");
  EXPECT_EQ(make_search_strategy("hillclimb")->name(), "greedy");
  EXPECT_EQ(make_search_strategy("evolve:8")->name(), "evolve");
  EXPECT_EQ(make_search_strategy("ga")->name(), "evolve");
  EXPECT_THROW(make_search_strategy("anneal"), std::invalid_argument);
  EXPECT_THROW(make_search_strategy("random:3"), std::invalid_argument);
  EXPECT_THROW(make_search_strategy("evolve:2"), std::invalid_argument);
}

TEST(HuntRegistry, FitnessSpecsResolve) {
  EXPECT_EQ(FitnessSpec::parse("delta").text, "delta");
  EXPECT_FALSE(FitnessSpec::parse("delta").needs_stretch());
  const FitnessSpec combo = FitnessSpec::parse("combo:1,0.5,2");
  EXPECT_DOUBLE_EQ(combo.w_delta, 1.0);
  EXPECT_DOUBLE_EQ(combo.w_stretch, 0.5);
  EXPECT_DOUBLE_EQ(combo.w_disconnect, 2.0);
  EXPECT_TRUE(combo.needs_stretch());
  EXPECT_EQ(combo.text, "combo:1,0.5,2");
  EXPECT_THROW(FitnessSpec::parse("entropy"), std::invalid_argument);
  EXPECT_THROW(FitnessSpec::parse("combo:0,0,0"), std::invalid_argument);
  EXPECT_THROW(FitnessSpec::parse("combo:1,-1,0"), std::invalid_argument);
}

// ---- budget -----------------------------------------------------------

TEST(Hunt, BudgetIsAHardCap) {
  auto cfg = tiny();
  cfg.budget = 7;
  cfg.strategy = "random";
  const HuntResult r = run_hunt(cfg);
  EXPECT_EQ(r.evaluations, 7u);
  ASSERT_FALSE(r.best.empty());
  EXPECT_LE(r.best.size(), cfg.top_k);
  EXPECT_EQ(r.best.front().rank, 1u);
}

// ---- backend determinism ----------------------------------------------

TEST(Hunt, BackendsProduceIdenticalLeaderboards) {
  auto seq = tiny();
  auto pooled = tiny();
  pooled.threads = 4;
  auto fleet = tiny();
  fleet.fleet_agents = 2;

  const HuntResult a = run_hunt(seq);
  const HuntResult b = run_hunt(pooled);
  const HuntResult c = run_hunt(fleet);

  EXPECT_EQ(a.leaderboard_json, b.leaderboard_json);
  EXPECT_EQ(a.leaderboard_json, c.leaderboard_json);
  ASSERT_FALSE(a.best.empty());
  ASSERT_FALSE(c.best.empty());
  EXPECT_EQ(a.best.front().genome.spec(), c.best.front().genome.spec());
  EXPECT_DOUBLE_EQ(a.best.front().fitness, c.best.front().fitness);
}

// ---- spool resume -----------------------------------------------------

TEST(Hunt, SpoolResumeReplaysTheSameTrajectory) {
  const std::string dir = scratch("resume");
  auto cfg = tiny(dir);
  const HuntResult first = run_hunt(cfg);
  ASSERT_FALSE(first.leaderboard_path.empty());
  const std::string leaderboard_bytes = slurp(first.leaderboard_path);
  EXPECT_EQ(leaderboard_bytes, first.leaderboard_json);

  // Resume from the spool: every score is a warm cache hit, and the
  // rewritten artifacts are byte-identical.
  auto again = tiny(dir);
  again.resume = true;
  const HuntResult second = run_hunt(again);
  EXPECT_EQ(second.leaderboard_json, first.leaderboard_json);
  EXPECT_EQ(slurp(second.leaderboard_path), leaderboard_bytes);
  fs::remove_all(dir);
}

TEST(Hunt, SpoolFromDifferentConfigIsRejected) {
  const std::string dir = scratch("stale");
  run_hunt(tiny(dir));
  auto other = tiny(dir);
  other.resume = true;
  other.n = 32;  // different evaluation identity
  EXPECT_THROW(run_hunt(other), std::invalid_argument);
  fs::remove_all(dir);
}

// ---- emitted traces ---------------------------------------------------

TEST(Hunt, EmittedTraceReplaysAndRoundTripsAGridCell) {
  const std::string dir = scratch("trace");
  auto cfg = tiny(dir);
  const HuntResult result = run_hunt(cfg);
  ASSERT_FALSE(result.best.empty());
  const std::string& trace_path = result.best.front().trace_path;
  ASSERT_FALSE(trace_path.empty());

  // The trace replays bit-identically standalone (strict digests).
  const replay::Trace t = replay::load_trace_file(trace_path);
  const replay::ReplayResult r = replay::play_trace(t);
  EXPECT_TRUE(r.ok()) << r.failure();

  // Loaded back as a grid-cell scenario with the hunt's own base seed
  // and instance count, the cell reproduces the scored run's bytes.
  exp::ExperimentSpec spec;
  spec.name = "roundtrip";
  spec.families = {cfg.family};
  spec.sizes = {cfg.n};
  spec.healers = cfg.healers;
  spec.scenarios = {"trace:" + trace_path};
  spec.instances = cfg.instances;
  spec.seed = cfg.seed;
  spec.labels = "spec";
  const std::vector<exp::Cell> cells = spec.enumerate();
  ASSERT_EQ(cells.size(), 1u);
  const exp::CellResult cell = exp::run_cell(spec, cells[0]);

  const auto runs_slice = [](const std::string& group) {
    const auto at = group.find("\"runs\":[");
    const auto end = group.find("],\"summary\"");
    EXPECT_NE(at, std::string::npos);
    EXPECT_NE(end, std::string::npos);
    return group.substr(at, end - at);
  };
  // The leaderboard's first group is the rank-1 winner's.
  EXPECT_EQ(runs_slice(cell.group_json),
            runs_slice(result.leaderboard_json));
  fs::remove_all(dir);
}

// ---- baseline comparison ----------------------------------------------

TEST(Hunt, LevelBaselineMatchesTheAnalyticalConstruction) {
  const LevelBaseline base = level_attack_baseline(64, 2, 5);
  // n=64, m=2: largest complete 4-ary tree is depth 2 (21 nodes).
  EXPECT_EQ(base.depth, 2u);
  EXPECT_EQ(base.nodes, 21u);
  EXPECT_GT(base.fitness, 0.0);
  EXPECT_THROW(level_attack_baseline(4, 2, 5), std::invalid_argument);
}

TEST(Hunt, SearchMatchesLevelAttackBaseline) {
  // The acceptance bar: a modest hunt budget finds a schedule whose
  // degree-blowup fitness is at least the paper's hand-derived
  // LevelAttack construction at the same n.
  const LevelBaseline base = level_attack_baseline(64, 2, 5);
  HuntConfig cfg;
  cfg.family = "ba";
  cfg.n = 64;
  cfg.healers = {"capped:2"};
  cfg.instances = 1;
  cfg.seed = 5;
  cfg.budget = 120;
  cfg.strategy = "evolve:12";
  cfg.threads = 0;  // hardware pool: this is the slow test here
  const HuntResult result = run_hunt(cfg);
  ASSERT_FALSE(result.best.empty());
  EXPECT_GE(result.best.front().fitness, base.fitness)
      << "hunted " << result.best.front().genome.spec();
}

}  // namespace
}  // namespace dash::hunt
