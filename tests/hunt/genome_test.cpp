// genome_test.cpp -- hunt::AttackGenome: the strict candidate grammar
// (parse -> canonical spec fixed points, scenario compatibility,
// rejection of everything outside GenomeLimits) and the shared
// mutation kit (closure under the grammar, seed determinism, and the
// scenario-aware trace operators it lends to replay::fuzz_trace).
#include "hunt/genome.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "api/scenario.h"
#include "exp/spec.h"
#include "hunt/mutation.h"
#include "replay/recorder.h"
#include "replay/trace.h"
#include "util/rng.h"

namespace dash::hunt {
namespace {

// ---- parse / canonicalize --------------------------------------------

TEST(GenomeParse, CanonicalSpecIsAFixedPoint) {
  const std::string spec =
      "strike:maxdeltax12;churn:0.3,0.1x50;batch:8,hubsx3;join:4x15;"
      "ramp:0,0.5,1,0x10;mix:2{strike:rank:2x1},1{join:2x3}x5";
  const AttackGenome g = AttackGenome::parse(spec);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.spec(), spec);
  EXPECT_EQ(AttackGenome::parse(g.spec()).spec(), spec);
}

TEST(GenomeParse, NonDefaultAttachIsPreserved) {
  EXPECT_EQ(AttackGenome::parse("churn:0.5,0.5,3x7").spec(),
            "churn:0.5,0.5,3x7");
  EXPECT_EQ(AttackGenome::parse("churn:0.5,0.5,2x7").spec(),
            "churn:0.5,0.5x7");
  EXPECT_EQ(AttackGenome::parse("ramp:0,0,1,1,4x9").spec(),
            "ramp:0,0,1,1,4x9");
}

TEST(GenomeParse, SpecIsValidScenarioSyntax) {
  // Every genome spec must load through the scenario layer unchanged:
  // that is what makes hunted candidates grid-cell citizens.
  const std::string specs[] = {
      "strike:maxnodex3",
      "batch:4,randomx2;join:2x5",
      "churn:1,1x4;ramp:0,0.25,1,0.75x6",
      "mix:3{strike:adaptivex1},1{churn:0.5,0.5x2}x4",
  };
  for (const std::string& s : specs) {
    const AttackGenome g = AttackGenome::parse(s);
    EXPECT_EQ(api::Scenario::parse(g.spec()).spec(), g.spec()) << s;
  }
}

TEST(GenomeParse, HashIsStableAndDiscriminates) {
  const AttackGenome a = AttackGenome::parse("strike:maxnodex3");
  EXPECT_EQ(a.hash(), AttackGenome::parse("strike:maxnodex3").hash());
  EXPECT_NE(a.hash(), AttackGenome::parse("strike:maxnodex4").hash());
  EXPECT_EQ(a.hash_hex().size(), 16u);
}

TEST(GenomeParse, RejectsOutsideTheStrictGrammar) {
  // The genome grammar is narrower than the scenario grammar: every
  // move needs an explicit x<count>, even where the scenario layer
  // would default it.
  EXPECT_THROW(AttackGenome::parse(""), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("strike:maxnodex3;;join:2x1"),
               std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("shake:3x1"), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("strike:maxnode"),
               std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("join:2"), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("strike:maxnodex0"),
               std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("strike:maxnodex9999"),
               std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("strike:nosuchx3"),
               std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("churn:0.3x5"), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("churn:2,0x5"), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("join:0x5"), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("batch:4x3"), std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("mix:0{join:2x1}x2"),
               std::invalid_argument);
  EXPECT_THROW(AttackGenome::parse("mix:1{mix:1{join:2x1}x2}x2"),
               std::invalid_argument);
}

TEST(GenomeParse, RejectsTooManyMoves) {
  std::string spec = "strike:maxnodex1";
  for (std::size_t i = 0; i < genome_limits().max_moves; ++i) {
    spec += ";strike:maxnodex1";
  }
  EXPECT_THROW(AttackGenome::parse(spec), std::invalid_argument);
}

// ---- mutation kit -----------------------------------------------------

TEST(MutationKit, OperatorsStayInsideTheGrammar) {
  util::Rng rng(42);
  AttackGenome g = random_genome(rng);
  for (int i = 0; i < 200; ++i) {
    mutate_genome(g, rng);
    ASSERT_GE(g.size(), 1u);
    ASSERT_LE(g.size(), genome_limits().max_moves);
    // Every mutant re-parses from its own canonical text.
    ASSERT_EQ(AttackGenome::parse(g.spec()).spec(), g.spec());
  }
}

TEST(MutationKit, MutationIsSeedDeterministic) {
  util::Rng a(7);
  util::Rng b(7);
  AttackGenome ga = random_genome(a);
  AttackGenome gb = random_genome(b);
  EXPECT_EQ(ga.spec(), gb.spec());
  for (int i = 0; i < 50; ++i) {
    mutate_genome(ga, a);
    mutate_genome(gb, b);
    ASSERT_EQ(ga.spec(), gb.spec()) << "diverged at edit " << i;
  }
}

TEST(MutationKit, CrossoverSplicesValidGenomes) {
  util::Rng rng(3);
  const AttackGenome a = random_genome(rng);
  const AttackGenome b = random_genome(rng);
  for (int i = 0; i < 50; ++i) {
    const AttackGenome child = crossover(a, b, rng);
    ASSERT_GE(child.size(), 1u);
    ASSERT_LE(child.size(), genome_limits().max_moves);
    ASSERT_EQ(AttackGenome::parse(child.spec()).spec(), child.spec());
  }
}

// ---- scenario-aware trace operators -----------------------------------

replay::Trace tiny_trace() {
  replay::RecordConfig cfg;
  cfg.make_graph = exp::make_family("ba", 24, 2);
  cfg.scenario = api::Scenario::parse("churn:1,1x6;strike:maxnodex3");
  cfg.seed = 5;
  std::ostringstream os;
  replay::record_scenario(cfg, os);
  std::istringstream in(os.str());
  return replay::load_trace(in);
}

TEST(MutationKit, ReorderTracePhasesIsDeterministicAndStructural) {
  const replay::Trace golden = tiny_trace();
  replay::Trace t1 = golden;
  replay::Trace t2 = golden;
  util::Rng r1(9);
  util::Rng r2(9);
  EXPECT_EQ(reorder_trace_phases(t1, r1), reorder_trace_phases(t2, r2));
  // Same seed, same event stream; reordering never loses events.
  ASSERT_EQ(t1.events.size(), t2.events.size());
  EXPECT_EQ(t1.events.size(), golden.events.size());
  for (std::size_t i = 0; i < t1.events.size(); ++i) {
    EXPECT_EQ(t1.events[i].kind, t2.events[i].kind) << i;
    EXPECT_EQ(t1.events[i].nodes, t2.events[i].nodes) << i;
  }
}

TEST(MutationKit, PerturbTraceChurnChangesDensity) {
  replay::Trace t = tiny_trace();
  const std::size_t before = t.events.size();
  util::Rng rng(11);
  bool changed = false;
  for (int i = 0; i < 20 && !changed; ++i) {
    changed = perturb_trace_churn(t, rng);
  }
  EXPECT_TRUE(changed);
  EXPECT_NE(t.events.size(), before);
}

}  // namespace
}  // namespace dash::hunt
