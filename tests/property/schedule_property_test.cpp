// schedule_property_test.cpp -- cross-product sweeps: every healing
// strategy against every attack strategy on multiple graph families
// must preserve connectivity and locality; plus comparative properties
// the paper reports (DASH beats naive healers on degree increase).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "api/api.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash {
namespace {

using core::HealingState;
using dash::util::Rng;
using graph::Graph;

struct MatrixParam {
  const char* healer;
  const char* attack;
  const char* family;
};

std::string matrix_name(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  std::string h = info.param.healer;
  // ':' is not allowed in test names.
  for (char& c : h) {
    if (c == ':') c = '_';
  }
  return h + "_vs_" + info.param.attack + "_on_" + info.param.family;
}

Graph make_family(const std::string& family, Rng& rng) {
  if (family == "ba") return graph::barabasi_albert(72, 2, rng);
  if (family == "tree") return graph::random_tree(72, rng);
  if (family == "ws") return graph::watts_strogatz(72, 2, 0.2, rng);
  ADD_FAILURE() << "unknown family";
  return Graph(1);
}

class HealAttackMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(HealAttackMatrix, ConnectivityAndLocalityHoldToExhaustion) {
  const auto& p = GetParam();
  Rng rng(0xABCDEF);
  Graph g = make_family(p.family, rng);
  api::Network net(std::move(g), core::make_strategy(p.healer), rng);
  auto attacker = attack::make_attack(p.attack, 2024);

  // Locality + forest + id consistency after every round.
  net.add_observer(std::make_unique<api::InvariantObserver>());
  const auto r = net.run(*attacker);
  EXPECT_TRUE(r.violation.empty()) << r.violation;
  EXPECT_TRUE(r.stayed_connected);
  EXPECT_EQ(r.deletions, 71u);  // ran to a single survivor
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, HealAttackMatrix,
    ::testing::Values(
        MatrixParam{"dash", "neighborofmax", "ba"},
        MatrixParam{"dash", "maxnode", "ba"},
        MatrixParam{"dash", "random", "tree"},
        MatrixParam{"dash", "maxdelta", "ws"},
        MatrixParam{"sdash", "neighborofmax", "ba"},
        MatrixParam{"sdash", "maxnode", "tree"},
        MatrixParam{"sdash", "random", "ws"},
        MatrixParam{"binarytree", "neighborofmax", "ba"},
        MatrixParam{"binarytree", "maxdelta", "tree"},
        MatrixParam{"line", "neighborofmax", "ba"},
        MatrixParam{"line", "maxnode", "ws"},
        MatrixParam{"graph", "neighborofmax", "ba"},
        MatrixParam{"graph", "random", "tree"},
        MatrixParam{"capped:2", "neighborofmax", "ba"},
        MatrixParam{"capped:3", "maxnode", "tree"},
        MatrixParam{"capped:2", "maxdelta", "ws"}),
    matrix_name);

// ---- Comparative properties (Sec. 4.4 shape) -------------------------

double mean_max_delta(const char* healer, std::size_t n,
                      std::size_t instances) {
  api::SuiteConfig cfg;
  cfg.make_graph = [n](Rng& rng) {
    return graph::barabasi_albert(n, 2, rng);
  };
  cfg.make_healer = api::healer_factory(healer);
  cfg.scenario = api::Scenario().targeted("neighborofmax");
  cfg.instances = instances;
  cfg.base_seed = 0x5EED;
  const auto results = api::run_suite(cfg);
  return api::summarize_metric(results, [](const auto& r) {
    return static_cast<double>(r.max_delta);
  }).mean;
}

TEST(Comparative, DashBeatsGraphHealOnDegreeIncrease) {
  const double dash = mean_max_delta("dash", 128, 5);
  const double naive = mean_max_delta("graph", 128, 5);
  EXPECT_LT(dash, naive)
      << "DASH should dominate GraphHeal on max degree increase";
  EXPECT_LT(dash, 2.0 * std::log2(128.0) + 1e-9);
}

TEST(Comparative, DashBeatsLineHeal) {
  const double dash = mean_max_delta("dash", 128, 5);
  const double line = mean_max_delta("line", 128, 5);
  EXPECT_LT(dash, line);
}

TEST(Comparative, DeltaOrderingHelpsBinaryTreeHeal) {
  // DASH = BinaryTreeHeal + delta-aware placement; placement should
  // not hurt (and generally helps).
  const double dash = mean_max_delta("dash", 128, 5);
  const double btree = mean_max_delta("binarytree", 128, 5);
  EXPECT_LE(dash, btree + 1.0);  // allow one unit of noise
}

TEST(Comparative, SdashDegreeComparableToDash) {
  const double dash = mean_max_delta("dash", 128, 5);
  const double sdash = mean_max_delta("sdash", 128, 5);
  EXPECT_LE(sdash, 2.0 * dash + 2.0);
}

// ---- Degree increase grows ~ log n for DASH ---------------------------

TEST(Scaling, DashMaxDeltaBoundedByTwoLogN) {
  // DASH's measured max delta is nearly flat at these sizes (2..4 under
  // NMS) and must never approach the 2 log2 n ceiling; the fitted slope
  // against log2 n stays far below Theorem 1's constant 2.
  std::vector<double> log_n, delta;
  for (std::size_t n : {64u, 128u, 256u, 512u}) {
    log_n.push_back(std::log2(static_cast<double>(n)));
    delta.push_back(mean_max_delta("dash", n, 3));
  }
  const double slope = dash::util::linear_slope(log_n, delta);
  EXPECT_GE(slope, -0.5);  // not shrinking with n
  EXPECT_LE(slope, 2.0);   // Theorem 1's constant
  for (std::size_t i = 0; i < log_n.size(); ++i) {
    EXPECT_LE(delta[i], 2.0 * log_n[i] + 1e-9);
  }
}

}  // namespace
}  // namespace dash
