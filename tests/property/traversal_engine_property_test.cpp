// traversal_engine_property_test.cpp -- the flat-engine differential
// property at the engine level: for EVERY scenario phase type (strike /
// batch / churn / targeted / until / untilfrac / repeat / floor) the
// zero-alloc scratch BFS, the FlatView component labelling, and the
// single-pass stretch_stats (sequential AND ThreadPool-parallel) must
// reproduce the legacy per-call-allocating implementations bit for bit
// -- max stretch exactly (same IEEE divisions), averages to rounding
// (the fold order is documented), everything else structurally equal --
// at every sampled round of a live healing run.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "analysis/stretch.h"
#include "api/api.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/thread_pool.h"

namespace dash::api {
namespace {

using analysis::StretchStats;
using analysis::StretchTracker;
using graph::Components;
using graph::Graph;
using graph::kInvalidComponent;
using graph::kUnreachable;
using graph::NodeId;

// ---- legacy reference implementations (pre-flat-engine, verbatim) ----

std::vector<std::uint32_t> ref_bfs_distances(const Graph& g, NodeId src) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier;
  dist[src] = 0;
  frontier.push_back(src);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    const std::uint32_t next = dist[v] + 1;
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = next;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

Components ref_connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), kInvalidComponent);
  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (!g.alive(root) || out.label[root] != kInvalidComponent) continue;
    const auto comp = static_cast<std::uint32_t>(out.sizes.size());
    out.sizes.push_back(0);
    out.label[root] = comp;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      ++out.sizes[comp];
      for (NodeId u : g.neighbors(v)) {
        if (out.label[u] == kInvalidComponent) {
          out.label[u] = comp;
          frontier.push_back(u);
        }
      }
    }
  }
  return out;
}

/// The historical StretchTracker::max_stretch / average_stretch pair
/// loops (one heap-allocating BFS per source), against the tracker's
/// frozen original distances.
StretchStats ref_stretch(const StretchTracker& tracker, const Graph& g) {
  const auto alive = g.alive_nodes();
  if (alive.size() < 2) return {};
  double worst = 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (NodeId u : alive) {
    const auto dist = ref_bfs_distances(g, u);
    for (NodeId v : alive) {
      if (v <= u) continue;
      if (dist[v] == kUnreachable) {
        constexpr double inf = std::numeric_limits<double>::infinity();
        return {inf, inf};
      }
      const std::uint32_t base = tracker.original_distance(u, v);
      worst = std::max(worst, static_cast<double>(dist[v]) /
                                  static_cast<double>(base));
      sum += static_cast<double>(dist[v]) / static_cast<double>(base);
      ++pairs;
    }
  }
  return {worst, sum / static_cast<double>(pairs)};
}

// ---- the per-round differential observer -----------------------------

/// Rides a live engine run and, every few rounds, replays the round's
/// graph through both engines: flat scratch traversals vs the legacy
/// reference, and the wave-based stretch_stats (sequential + pooled)
/// vs the legacy per-pair implementation.
class EngineDifferentialObserver final : public Observer {
 public:
  explicit EngineDifferentialObserver(dash::util::ThreadPool& pool)
      : pool_(pool) {}

  std::string name() const override { return "engine-diff"; }

  void on_attach(const Network& net) override {
    tracker_.emplace(net.graph());
  }

  void on_join(const Network&, const JoinEvent&) override {
    // Joins grow the id space past the frozen baseline, exactly like
    // StretchObserver's deactivation rule.
    stretch_active_ = false;
  }

  void on_round_end(const Network& net, const RoundEvent& ev) override {
    if (ev.round % 3 != 0) return;
    const Graph& g = net.graph();
    const std::string what = "round " + std::to_string(ev.round);
    ++rounds_checked_;

    // Traversal differential: distances from a spread of sources, and
    // the full component labelling.
    graph::TraversalScratch scratch;
    const auto alive = g.alive_nodes();
    for (std::size_t i = 0; i < alive.size();
         i += 1 + alive.size() / 5) {
      const NodeId src = alive[i];
      const auto want = ref_bfs_distances(g, src);
      graph::bfs_distances(g.flat_view(), src, scratch);
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        ASSERT_EQ(scratch.distance(v), want[v])
            << what << " src=" << src << " v=" << v;
      }
    }
    const Components want_comps = ref_connected_components(g);
    const Components got_comps = graph::connected_components(g);
    ASSERT_EQ(got_comps.label, want_comps.label) << what;
    ASSERT_EQ(got_comps.sizes, want_comps.sizes) << what;
    ASSERT_EQ(graph::is_connected(g), want_comps.count() <= 1) << what;

    if (!stretch_active_) return;
    const StretchStats want = ref_stretch(*tracker_, g);
    const StretchStats seq = tracker_->stretch_stats(g);
    const StretchStats par = tracker_->stretch_stats(g, pool_);
    // Max folds through the identical IEEE divisions: exact equality,
    // including the +inf disconnected case.
    ASSERT_EQ(seq.max, want.max) << what;
    ASSERT_EQ(par.max, want.max) << what;
    // Parallel must be bit-identical to sequential in both figures.
    ASSERT_EQ(par.average, seq.average) << what;
    // The average's fold order changed (per-base integer sums); agree
    // with the legacy pair-ordered fold to rounding.
    if (std::isinf(want.average)) {
      ASSERT_TRUE(std::isinf(seq.average)) << what;
    } else {
      ASSERT_NEAR(seq.average, want.average,
                  1e-9 * (1.0 + std::abs(want.average)))
          << what;
    }
  }

  std::size_t rounds_checked() const { return rounds_checked_; }

 private:
  dash::util::ThreadPool& pool_;
  std::optional<StretchTracker> tracker_;
  bool stretch_active_ = true;
  std::size_t rounds_checked_ = 0;
};

class TraversalEngineProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(TraversalEngineProperty, FlatEngineMatchesLegacyEveryPhaseType) {
  const std::string spec = GetParam();
  dash::util::ThreadPool pool(3);
  for (const char* healer : {"dash", "none"}) {
    // Sequential instances so the observer's assertions run on this
    // thread; the pooled stretch path still fans its waves out.
    std::size_t checked = 0;
    SuiteConfig cfg;
    cfg.instances = 2;
    cfg.base_seed = 0xD1FFu;
    cfg.make_graph = [](dash::util::Rng& rng) {
      return graph::barabasi_albert(40, 2, rng);
    };
    cfg.make_healer = healer_factory(healer);
    cfg.scenario = Scenario::parse(spec);
    cfg.configure = [&pool](Network& net) {
      net.add_observer(
          std::make_unique<EngineDifferentialObserver>(pool));
    };
    cfg.inspect = [&checked](std::size_t, const Network& net,
                             const Metrics&) {
      const auto* diff = dynamic_cast<const EngineDifferentialObserver*>(
          net.find_observer("engine-diff"));
      ASSERT_NE(diff, nullptr);
      checked += diff->rounds_checked();
    };
    const auto results = run_suite(cfg);
    ASSERT_EQ(results.size(), 2u) << spec << " / " << healer;
    EXPECT_GT(checked, 0u) << spec << " / " << healer;
  }
}

TEST_P(TraversalEngineProperty, SuiteMaxStretchIdenticalSeqAndParallel) {
  // The figure-bench path: a StretchObserver per instance, run_suite
  // sequential vs thread-pool fan-out -- Metrics::max_stretch must be
  // the same double either way.
  const std::string spec = GetParam();
  auto run = [&](dash::util::ThreadPool* pool) {
    SuiteConfig cfg;
    cfg.instances = 3;
    cfg.base_seed = 0xFEEDu;
    cfg.make_graph = [](dash::util::Rng& rng) {
      return graph::barabasi_albert(32, 2, rng);
    };
    cfg.make_healer = healer_factory("dash");
    cfg.scenario = Scenario::parse(spec);
    cfg.configure = [](Network& net) {
      net.add_observer(std::make_unique<StretchObserver>(2));
    };
    return pool ? run_suite(cfg, *pool) : run_suite(cfg);
  };
  const auto seq = run(nullptr);
  dash::util::ThreadPool pool(4);
  const auto par = run(&pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].max_stretch, par[i].max_stretch) << spec << " " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPhaseTypes, TraversalEngineProperty,
    ::testing::Values(
        "strike:randomx12",                            // strike
        "batch:4,randomx3",                            // batch
        "churn:0.3,0.5x24",                            // churn (joins)
        "targeted:maxnodex14",                         // targeted
        "until:20,random",                             // until
        "untilfrac:0.6,maxnode",                       // untilfrac
        "repeat:2{strike:randomx4;batch:3,hubs}",      // repeat (nested)
        "floor:24;targeted:maxnode"),                  // floor
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dash::api
