// exhaustive_small_graph_test.cpp -- brute-force verification on ALL
// connected graphs of 4 and 5 nodes: DASH (and SDASH) keep the network
// connected and the healing graph a forest for EVERY deletion order
// (n=4) / the canonical order and several random orders (n=5).
// Exhaustive small cases catch edge conditions that random sweeps miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/dash.h"
#include "core/factory.h"
#include "core/healing_state.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash {
namespace {

using core::DeletionContext;
using core::HealingState;
using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

/// Build the n-node graph whose edge set is the bits of `mask` over
/// the lexicographic pair ordering (0,1),(0,2),...,(n-2,n-1).
Graph graph_from_mask(std::size_t n, std::uint32_t mask) {
  Graph g(n);
  std::size_t bit = 0;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = a + 1; b < n; ++b, ++bit) {
      if (mask & (1u << bit)) g.add_edge(a, b);
    }
  }
  return g;
}

/// Run one full deletion order; EXPECTs connectivity and forest-ness
/// after every heal. Returns max delta ever.
std::uint32_t run_order(const Graph& g0, const std::vector<NodeId>& order,
                        const std::string& healer_name,
                        std::uint64_t seed) {
  Graph g = g0;
  Rng rng(seed);
  HealingState st(g, rng);
  auto healer = core::make_strategy(healer_name);
  for (NodeId v : order) {
    if (!g.alive(v) || g.num_alive() <= 1) break;
    const DeletionContext ctx = st.begin_deletion(g, v);
    g.delete_node(v);
    healer->heal(g, st, ctx);
    EXPECT_TRUE(graph::is_connected(g));
    EXPECT_TRUE(st.healing_graph_is_forest(g));
  }
  return st.max_delta_ever();
}

TEST(ExhaustiveSmall, AllConnected4NodeGraphsAllOrders) {
  constexpr std::size_t n = 4;
  constexpr std::uint32_t kMaxMask = 1u << (n * (n - 1) / 2);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);

  std::size_t graphs_tested = 0;
  for (std::uint32_t mask = 0; mask < kMaxMask; ++mask) {
    const Graph g0 = graph_from_mask(n, mask);
    if (!graph::is_connected(g0)) continue;
    ++graphs_tested;
    auto perm = order;
    do {
      for (const char* healer : {"dash", "sdash"}) {
        const std::uint32_t max_delta =
            run_order(g0, perm, healer, 17 + mask);
        // 2 log2 4 = 4.
        EXPECT_LE(max_delta, 4u) << "mask=" << mask << " healer=" << healer;
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
  }
  // There are 38 connected labeled graphs on 4 nodes.
  EXPECT_EQ(graphs_tested, 38u);
}

TEST(ExhaustiveSmall, AllConnected5NodeGraphsSampledOrders) {
  constexpr std::size_t n = 5;
  constexpr std::uint32_t kMaxMask = 1u << (n * (n - 1) / 2);

  Rng perm_rng(99);
  std::size_t graphs_tested = 0;
  for (std::uint32_t mask = 0; mask < kMaxMask; ++mask) {
    const Graph g0 = graph_from_mask(n, mask);
    if (!graph::is_connected(g0)) continue;
    ++graphs_tested;

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    // Canonical order plus two random permutations per graph.
    run_order(g0, order, "dash", mask);
    for (int r = 0; r < 2; ++r) {
      perm_rng.shuffle(order);
      run_order(g0, order, "dash", mask * 3 + r);
    }
  }
  // There are 728 connected labeled graphs on 5 nodes.
  EXPECT_EQ(graphs_tested, 728u);
}

TEST(ExhaustiveSmall, BaselinesStayConnectedOn4NodeGraphs) {
  constexpr std::size_t n = 4;
  constexpr std::uint32_t kMaxMask = 1u << (n * (n - 1) / 2);
  std::vector<NodeId> order{3, 1, 0, 2};
  for (std::uint32_t mask = 0; mask < kMaxMask; ++mask) {
    const Graph g0 = graph_from_mask(n, mask);
    if (!graph::is_connected(g0)) continue;
    for (const char* healer : {"binarytree", "line", "capped:2"}) {
      Graph g = g0;
      Rng rng(5);
      HealingState st(g, rng);
      auto h = core::make_strategy(healer);
      for (NodeId v : order) {
        if (!g.alive(v) || g.num_alive() <= 1) break;
        const DeletionContext ctx = st.begin_deletion(g, v);
        g.delete_node(v);
        h->heal(g, st, ctx);
        ASSERT_TRUE(graph::is_connected(g))
            << healer << " mask=" << mask;
      }
    }
  }
}

}  // namespace
}  // namespace dash
