// lemma_property_test.cpp -- direct checks of the paper's lemmas as
// executable properties on randomized schedules.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/invariants.h"
#include "attack/factory.h"
#include "core/dash.h"
#include "core/factory.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash {
namespace {

using core::DeletionContext;
using core::HealingState;
using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

/// Step one deletion with explicit access to pre/post state.
struct Stepper {
  Graph g;
  HealingState st;
  std::unique_ptr<core::HealingStrategy> healer;

  Stepper(Graph graph, std::uint64_t seed, const std::string& strategy)
      : g(std::move(graph)),
        st([this, seed] {
          Rng rng(seed);
          return HealingState(g, rng);
        }()),
        healer(core::make_strategy(strategy)) {}

  core::HealAction kill(NodeId v) {
    const DeletionContext ctx = st.begin_deletion(g, v);
    g.delete_node(v);
    return healer->heal(g, st, ctx);
  }
};

// ---- Lemma 1: E' forms a forest (DASH and component-aware healers) --

TEST(Lemma1, ForestMaintainedUnderRandomSchedules) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Stepper s(graph::barabasi_albert(64, 2, rng), seed, "dash");
    Rng pick(seed * 7);
    while (s.g.num_alive() > 1) {
      const auto alive = s.g.alive_nodes();
      s.kill(alive[static_cast<std::size_t>(pick.below(alive.size()))]);
      ASSERT_TRUE(s.st.healing_graph_is_forest(s.g));
    }
  }
}

// ---- Lemma 2: rem(v) non-decreasing across other nodes' deletions ---

TEST(Lemma2, RemNonDecreasingForSurvivors) {
  Rng rng(3);
  Stepper s(graph::barabasi_albert(48, 2, rng), 3, "dash");
  Rng pick(11);
  for (int round = 0; round < 40 && s.g.num_alive() > 2; ++round) {
    // Snapshot rem for a few alive nodes.
    const auto alive = s.g.alive_nodes();
    std::vector<std::pair<NodeId, std::uint64_t>> before;
    for (std::size_t i = 0; i < alive.size(); i += 5) {
      before.emplace_back(alive[i], s.st.rem(s.g, alive[i]));
    }
    const NodeId victim =
        alive[static_cast<std::size_t>(pick.below(alive.size()))];
    s.kill(victim);
    for (auto [v, rem_before] : before) {
      if (!s.g.alive(v)) continue;
      EXPECT_GE(s.st.rem(s.g, v), rem_before) << "node " << v;
    }
  }
}

// ---- Lemma 3: every neighbor-side subtree weighs at least rem(v) ----

TEST(Lemma3, SubtreeWeightsDominateRem) {
  Rng rng(5);
  Stepper s(graph::barabasi_albert(48, 2, rng), 5, "dash");
  Rng pick(13);
  for (int round = 0; round < 30 && s.g.num_alive() > 2; ++round) {
    const auto alive = s.g.alive_nodes();
    s.kill(alive[static_cast<std::size_t>(pick.below(alive.size()))]);
    // W(T(v,q)) >= rem(v): removing the edge towards q leaves v's side
    // with weight >= rem(v). Verify via rem computed on the neighbor:
    // W(T(v,q)) = W(T_q) - W(T(q,v) subtree containing ... ) -- instead
    // check the direct definitional inequality using rem's parts.
    for (NodeId v : s.g.alive_nodes()) {
      const std::uint64_t rem_v = s.st.rem(s.g, v);
      for (NodeId q : s.st.forest_neighbors(v)) {
        // Weight of v's side when edge {v,q} is cut: total tree weight
        // minus q's side. Compute by BFS over forest from v avoiding q.
        std::uint64_t w_v_side = 0;
        std::vector<char> visited(s.g.num_nodes(), 0);
        visited[q] = 1;
        std::vector<NodeId> stack{v};
        visited[v] = 1;
        while (!stack.empty()) {
          const NodeId x = stack.back();
          stack.pop_back();
          w_v_side += s.st.weight(x);
          for (NodeId y : s.st.forest_neighbors(x)) {
            if (!visited[y]) {
              visited[y] = 1;
              stack.push_back(y);
            }
          }
        }
        ASSERT_GE(w_v_side, rem_v) << "v=" << v << " q=" << q;
      }
    }
  }
}

// ---- Lemma 4: rem(v) >= 2^{delta(v)/2} --------------------------------

TEST(Lemma4, PotentialBoundAcrossFamiliesAndAttacks) {
  struct Case {
    const char* attack;
    std::uint64_t seed;
  };
  for (const Case c : {Case{"neighborofmax", 1}, Case{"maxnode", 2},
                       Case{"maxdelta", 3}, Case{"random", 4}}) {
    Rng rng(c.seed);
    Graph g = graph::barabasi_albert(64, 2, rng);
    HealingState st(g, rng);
    auto attacker = attack::make_attack(c.attack, c.seed);
    core::DashStrategy dash;
    while (g.num_alive() > 1) {
      const NodeId v = attacker->select(g, st);
      if (v == graph::kInvalidNode) break;
      const DeletionContext ctx = st.begin_deletion(g, v);
      g.delete_node(v);
      dash.heal(g, st, ctx);
      const auto check = analysis::check_rem_bound(g, st);
      ASSERT_TRUE(check.ok) << c.attack << ": " << check.violation;
    }
  }
}

// ---- Lemma 5: rem(v) <= n (weight conservation) ----------------------

TEST(Lemma5, RemNeverExceedsTotalWeight) {
  Rng rng(7);
  Stepper s(graph::barabasi_albert(56, 2, rng), 7, "dash");
  Rng pick(17);
  const std::uint64_t n = 56;
  while (s.g.num_alive() > 1) {
    const auto alive = s.g.alive_nodes();
    s.kill(alive[static_cast<std::size_t>(pick.below(alive.size()))]);
    for (NodeId v : s.g.alive_nodes()) {
      ASSERT_LE(s.st.rem(s.g, v), n);
    }
    ASSERT_LE(s.st.total_alive_weight(s.g), n);
  }
}

// ---- Lemma 10: tree deletion degree-sum identity ---------------------

TEST(Lemma10, AcyclicHealingGainsDMinus2OnTrees) {
  // On a tree, deleting a degree-d node (d >= 1) and reconnecting its
  // neighbors acyclically adds exactly d-2 to the neighbors' degree sum
  // (for d >= 2; leaves cost 1 with no compensation).
  Rng rng(9);
  Graph g = graph::random_tree(60, rng);
  HealingState st(g, rng);
  core::DashStrategy dash;
  Rng pick(19);
  for (int round = 0; round < 40 && g.num_alive() > 2; ++round) {
    const auto alive = g.alive_nodes();
    const NodeId v =
        alive[static_cast<std::size_t>(pick.below(alive.size()))];
    const std::vector<NodeId> nbrs(g.neighbors(v).begin(),
                                   g.neighbors(v).end());
    const std::size_t d = nbrs.size();
    std::size_t deg_before = 0;
    for (NodeId u : nbrs) deg_before += g.degree(u);

    const DeletionContext ctx = st.begin_deletion(g, v);
    g.delete_node(v);
    dash.heal(g, st, ctx);

    std::size_t deg_after = 0;
    for (NodeId u : nbrs) deg_after += g.degree(u);
    // Starting from a tree and healing acyclically keeps G a tree, so
    // the identity is exact for d >= 1:
    //   sum gains = 2(d-1) - d = d - 2   (d >= 1; for d=1 it is -1).
    EXPECT_EQ(static_cast<long>(deg_after) - static_cast<long>(deg_before),
              static_cast<long>(2 * (d - 1)) - static_cast<long>(d))
        << "degree-" << d << " deletion";
    // Tree-ness preserved.
    ASSERT_EQ(g.num_edges(), g.num_alive() - 1);
    ASSERT_TRUE(graph::is_connected(g));
  }
}

// ---- Lemma 11: deleting a degree>=3 node bumps someone ---------------

TEST(Lemma11, SomeNeighborGainsDegree) {
  Rng rng(11);
  Graph g = graph::random_tree(50, rng);
  HealingState st(g, rng);
  core::DashStrategy dash;
  for (int round = 0; round < 30 && g.num_alive() > 4; ++round) {
    // Find an alive node of degree >= 3.
    NodeId victim = graph::kInvalidNode;
    for (NodeId v : g.alive_nodes()) {
      if (g.degree(v) >= 3) {
        victim = v;
        break;
      }
    }
    if (victim == graph::kInvalidNode) break;
    const std::vector<NodeId> nbrs(g.neighbors(victim).begin(),
                                   g.neighbors(victim).end());
    std::vector<std::int32_t> delta_before;
    for (NodeId u : nbrs) delta_before.push_back(st.delta(u));

    const DeletionContext ctx = st.begin_deletion(g, victim);
    g.delete_node(victim);
    dash.heal(g, st, ctx);

    bool someone_gained = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      someone_gained |= st.delta(nbrs[i]) > delta_before[i];
    }
    EXPECT_TRUE(someone_gained);
  }
}

}  // namespace
}  // namespace dash
