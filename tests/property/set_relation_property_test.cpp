// set_relation_property_test.cpp -- the paper's set identities for the
// reconnection machinery, checked on live schedules:
//   * UN(v,G) and N(v,G') are disjoint (stated in Sec. 2.1);
//   * UN(v,G) u N(v,G') is a subset of N(v,G);
//   * UN members carry pairwise-distinct component ids;
//   * batch-of-one deletions are byte-identical to single deletions.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/batch.h"
#include "core/dash.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash {
namespace {

using core::DeletionContext;
using core::HealingState;
using dash::util::Rng;
using graph::Graph;
using graph::NodeId;

class SetRelations : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SetRelations, UnIdentitiesAlongSchedule) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Graph g = graph::barabasi_albert(72, 2, rng);
  HealingState st(g, rng);
  core::DashStrategy dash;
  Rng pick(seed * 3 + 1);

  while (g.num_alive() > 2) {
    const auto alive = g.alive_nodes();
    const NodeId v =
        alive[static_cast<std::size_t>(pick.below(alive.size()))];

    const DeletionContext ctx = st.begin_deletion(g, v);
    const auto un = st.unique_neighbors(ctx);
    const auto rs = st.reconnection_set(ctx);

    // UN ∩ N(v,G') = ∅.
    for (NodeId u : un) {
      ASSERT_TRUE(std::find(ctx.forest_neighbors.begin(),
                            ctx.forest_neighbors.end(),
                            u) == ctx.forest_neighbors.end());
    }
    // UN ∪ N(v,G') ⊆ N(v,G) and sizes add up (disjoint union).
    ASSERT_EQ(rs.size(), un.size() + ctx.forest_neighbors.size());
    for (NodeId u : rs) {
      ASSERT_TRUE(std::binary_search(ctx.neighbors_g.begin(),
                                     ctx.neighbors_g.end(), u));
    }
    // UN representatives have pairwise distinct component ids, none
    // matching the deleted node's component.
    for (std::size_t i = 0; i < un.size(); ++i) {
      ASSERT_NE(st.component_id(un[i]), ctx.component_id);
      for (std::size_t j = i + 1; j < un.size(); ++j) {
        ASSERT_NE(st.component_id(un[i]), st.component_id(un[j]));
      }
    }
    // The reconnection set comes back sorted by (delta, initial id).
    for (std::size_t i = 1; i < rs.size(); ++i) {
      const bool lt = st.delta(rs[i - 1]) < st.delta(rs[i]);
      const bool eq_tie = st.delta(rs[i - 1]) == st.delta(rs[i]) &&
                          st.initial_id(rs[i - 1]) < st.initial_id(rs[i]);
      ASSERT_TRUE(lt || eq_tie);
    }

    g.delete_node(v);
    dash.heal(g, st, ctx);
    ASSERT_TRUE(graph::is_connected(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetRelations,
                         ::testing::Range<std::uint64_t>(1, 9));

class BatchOfOne : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchOfOne, MatchesSingleDeletionExactly) {
  const std::uint64_t seed = GetParam();
  Rng rng_graph(seed);
  const Graph g0 = graph::barabasi_albert(64, 2, rng_graph);

  Rng rng_a(seed + 100), rng_b(seed + 100);
  Graph g_single = g0;
  Graph g_batch = g0;
  HealingState st_single(g_single, rng_a);
  HealingState st_batch(g_batch, rng_b);
  core::DashStrategy dash;
  Rng pick(seed * 7 + 3);

  while (g_single.num_alive() > 1) {
    const auto alive = g_single.alive_nodes();
    const NodeId v =
        alive[static_cast<std::size_t>(pick.below(alive.size()))];

    const DeletionContext ctx = st_single.begin_deletion(g_single, v);
    g_single.delete_node(v);
    dash.heal(g_single, st_single, ctx);

    core::dash_delete_and_heal_batch(g_batch, st_batch, {v});

    ASSERT_TRUE(g_single.same_topology(g_batch));
    for (NodeId u : g_single.alive_nodes()) {
      ASSERT_EQ(st_single.delta(u), st_batch.delta(u));
      ASSERT_EQ(st_single.component_id(u), st_batch.component_id(u));
      ASSERT_EQ(st_single.weight(u), st_batch.weight(u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchOfOne,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace dash
