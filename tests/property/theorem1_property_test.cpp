// theorem1_property_test.cpp -- parameterized sweeps checking every
// quantitative bullet of Theorem 1 across graph families, sizes, seeds
// and attack strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.h"
#include "attack/factory.h"
#include "core/factory.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash {
namespace {

using core::HealingState;
using dash::util::Rng;
using graph::Graph;

struct Thm1Param {
  const char* family;
  std::size_t n;
  const char* attack;
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<Thm1Param>& info) {
  return std::string(info.param.family) + "_" +
         std::to_string(info.param.n) + "_" + info.param.attack + "_s" +
         std::to_string(info.param.seed);
}

Graph make_family(const char* family, std::size_t n, Rng& rng) {
  const std::string f = family;
  if (f == "ba") return graph::barabasi_albert(n, 2, rng);
  if (f == "tree") return graph::random_tree(n, rng);
  if (f == "gnp") return graph::connected_gnp(n, 6.0 / static_cast<double>(n) + 0.02, rng);
  if (f == "cycle") return graph::cycle_graph(n);
  if (f == "grid") return graph::grid_graph(n / 8, 8);
  ADD_FAILURE() << "unknown family " << family;
  return Graph(1);
}

class Theorem1Sweep : public ::testing::TestWithParam<Thm1Param> {};

TEST_P(Theorem1Sweep, AllBoundsHoldOverFullDeletion) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  Graph g = make_family(p.family, p.n, rng);
  const std::size_t n = g.num_nodes();

  api::Network net(std::move(g), core::make_strategy("dash"), rng);
  auto attacker = attack::make_attack(p.attack, p.seed * 31 + 7);

  api::InvariantOptions inv_opts;
  inv_opts.check_delta_bound = true;
  net.add_observer(std::make_unique<api::InvariantObserver>(inv_opts));
  const auto r = net.run(*attacker);
  const auto& st = net.state();

  // Bullet 1: connectivity through the whole schedule + degree bound.
  EXPECT_TRUE(r.stayed_connected);
  EXPECT_TRUE(r.violation.empty()) << r.violation;
  const double log2n = std::log2(static_cast<double>(n));
  EXPECT_LE(static_cast<double>(r.max_delta), 2.0 * log2n + 1e-9);

  // Bullet 2 (message bound): <= 2 (d + 2 log n) ln n for every node.
  const double lnn = std::log(static_cast<double>(n));
  for (graph::NodeId v = 0; v < n; ++v) {
    const double d = static_cast<double>(st.initial_degree(v));
    const double bound = 2.0 * (d + 2.0 * log2n) * lnn;
    EXPECT_LE(static_cast<double>(st.messages_total(v)), bound + 1e-9)
        << "node " << v << " of initial degree " << d;
  }

  // Bullet 3 (record breaking): id changes per node O(log n) whp --
  // generous constant 3 ln n + 4.
  EXPECT_LE(static_cast<double>(st.max_id_changes()), 3.0 * lnn + 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, Theorem1Sweep,
    ::testing::Values(
        Thm1Param{"ba", 64, "neighborofmax", 1},
        Thm1Param{"ba", 128, "neighborofmax", 2},
        Thm1Param{"ba", 256, "neighborofmax", 3},
        Thm1Param{"ba", 128, "maxnode", 4},
        Thm1Param{"ba", 128, "random", 5},
        Thm1Param{"ba", 128, "maxdelta", 6},
        Thm1Param{"ba", 128, "minnode", 7},
        Thm1Param{"tree", 100, "neighborofmax", 8},
        Thm1Param{"tree", 200, "maxnode", 9},
        Thm1Param{"tree", 150, "maxdelta", 10},
        Thm1Param{"gnp", 96, "neighborofmax", 11},
        Thm1Param{"gnp", 128, "random", 12},
        Thm1Param{"cycle", 64, "maxnode", 13},
        Thm1Param{"cycle", 128, "random", 14},
        Thm1Param{"grid", 64, "neighborofmax", 15},
        Thm1Param{"grid", 128, "maxnode", 16}),
    param_name);

// Seeds sweep: the same configuration across many seeds (the "whp"
// claims should never fail at these sizes).
class Theorem1Seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Seeds, DegreeBoundNeverViolated) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  Graph g = graph::barabasi_albert(96, 2, rng);
  api::Network net(std::move(g), core::make_strategy("dash"), rng);
  const auto r =
      net.play(api::Scenario().targeted("neighborofmax"), seed);
  EXPECT_TRUE(r.stayed_connected);
  EXPECT_LE(static_cast<double>(r.max_delta),
            2.0 * std::log2(96.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ManySeeds, Theorem1Seeds,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace dash
