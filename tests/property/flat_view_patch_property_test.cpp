// Delta-patched FlatView refreshes must be indistinguishable from full
// rebuilds: same alive set, same degrees, same packed neighbor bytes at
// the same offsets, same edge-entry count -- across every scenario
// phase type, under sequential and pooled suites, across touched-log
// compaction (epoch wrap) and slab-block recycling.
#include <algorithm>
#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/network.h"
#include "api/observer.h"
#include "api/suite.h"
#include "graph/flat_view.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dash::graph {
namespace {

/// Compare an incrementally refreshed view against a from-scratch
/// rebuild of the same graph. Live content must match exactly (the
/// mirrors share the slab layout, so matching spans are matching
/// bytes); gap regions behind freed blocks are unobservable.
void expect_patched_equals_full(const FlatView& patched, const Graph& g) {
  FlatView full;
  full.rebuild(g);
  ASSERT_EQ(patched.num_nodes(), full.num_nodes());
  ASSERT_EQ(patched.num_alive(), full.num_alive());
  ASSERT_EQ(patched.num_edge_entries(), full.num_edge_entries());
  ASSERT_EQ(patched.alive_nodes(), full.alive_nodes());
  for (NodeId v = 0; v < full.num_nodes(); ++v) {
    ASSERT_EQ(patched.degree(v), full.degree(v)) << "node " << v;
    const auto a = patched.neighbors(v);
    const auto b = full.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << v;
  }
}

/// Observer that drags a persistent FlatView through every round via
/// refresh() -- the delta path whenever the log allows -- and checks it
/// against a full rebuild each time.
class PatchCheckObserver final : public api::Observer {
 public:
  std::string name() const override { return "patch-check"; }
  void on_attach(const api::Network& net) override {
    view_.refresh(net.graph());
    expect_patched_equals_full(view_, net.graph());
  }
  void on_round_end(const api::Network& net,
                    const api::RoundEvent&) override {
    view_.refresh(net.graph());
    expect_patched_equals_full(view_, net.graph());
  }
  void on_join(const api::Network& net, const api::JoinEvent&) override {
    view_.refresh(net.graph());
    expect_patched_equals_full(view_, net.graph());
  }
  void on_finish(const api::Network&, api::Metrics&) override {
    // The whole point is exercising the cheap path; a suite where every
    // refresh fell back to rebuild() would test nothing.
    EXPECT_GT(view_.patched_refreshes(), 0u);
  }

 private:
  FlatView view_;
};

api::SuiteConfig checked_suite(std::size_t n, const std::string& scenario,
                               std::uint64_t seed) {
  api::SuiteConfig cfg;
  cfg.make_graph = [n](util::Rng& rng) {
    return barabasi_albert(n, 2, rng);
  };
  cfg.make_healer = api::healer_factory("dash");
  cfg.scenario = api::Scenario::parse(scenario);
  cfg.instances = 3;
  cfg.base_seed = seed;
  cfg.configure = [](api::Network& net) {
    net.add_observer(std::make_unique<PatchCheckObserver>());
  };
  return cfg;
}

class FlatViewPatchScenario
    : public ::testing::TestWithParam<const char*> {};

TEST_P(FlatViewPatchScenario, SequentialSuiteMatchesFullRebuilds) {
  (void)api::run_suite(checked_suite(96, GetParam(), 0xF1A7));
}

TEST_P(FlatViewPatchScenario, PooledSuiteMatchesFullRebuilds) {
  util::ThreadPool pool(3);
  (void)api::run_suite(checked_suite(96, GetParam(), 0xF1A7), pool);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhaseTypes, FlatViewPatchScenario,
    ::testing::Values("strike:maxnodex20",          // single deletions
                      "batch:6x5",                  // simultaneous batches
                      "churn:0.3,0.1x60",           // join/leave churn
                      "join:2x12",                  // organic growth
                      "untilfrac:0.5,maxnode"),     // fraction-driven attack
    [](const auto& info) {
      std::string name(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(FlatViewPatch, SurvivesLogCompactionEpochWrap) {
  // A tiny graph caps the retained log window at 256 entries; hammer
  // far past it between refreshes so the view's position falls behind
  // the compacted prefix and refresh() must take the rebuild fallback.
  Graph g(8);
  for (NodeId v = 1; v < 8; ++v) g.add_edge(0, v);
  FlatView view;
  view.refresh(g);
  util::Rng rng(0xEC0);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 300; ++i) {  // > window cap per round
      const NodeId a = static_cast<NodeId>(1 + rng.below(7));
      const NodeId b = static_cast<NodeId>(1 + rng.below(7));
      if (a == b) continue;
      if (g.has_edge(a, b)) {
        g.remove_edge(a, b);
      } else {
        g.add_edge(a, b);
      }
    }
    view.refresh(g);
    expect_patched_equals_full(view, g);
  }
  EXPECT_GT(view.full_rebuilds(), 1u);  // the fallback actually fired
}

TEST(FlatViewPatch, SurvivesSlabBlockRecycling) {
  // Deletions recycle blocks; later growth reuses them at the same
  // offsets for different vertices. Patch refreshes after each step
  // must keep re-mirroring the reused regions correctly.
  Graph g(48);
  util::Rng rng(0x5AB);
  for (NodeId v = 1; v < 48; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.below(v)));
  }
  FlatView view;
  view.refresh(g);
  std::vector<NodeId> alive = g.alive_nodes();
  for (int step = 0; step < 120; ++step) {
    if (step % 3 == 0 && alive.size() > 8) {
      const std::size_t i = static_cast<std::size_t>(rng.below(alive.size()));
      g.delete_node(alive[i]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const NodeId a = alive[static_cast<std::size_t>(rng.below(alive.size()))];
      const NodeId b = alive[static_cast<std::size_t>(rng.below(alive.size()))];
      if (a != b) g.add_edge(a, b);
    }
    view.refresh(g);
    expect_patched_equals_full(view, g);
  }
  EXPECT_GT(g.slab_free_entries(), 0u);
  EXPECT_GT(view.patched_refreshes(), 0u);
}

}  // namespace
}  // namespace dash::graph
