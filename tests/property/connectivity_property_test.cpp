// connectivity_property_test.cpp -- the tracker-vs-BFS differential
// property at the engine level: for EVERY scenario phase type (strike /
// batch / churn / targeted / until / repeat / floor) the engine must
// report identical stayed_connected, component structure, Metrics and
// per-round rows whether the incremental DynamicConnectivity tracker or
// the per-round BFS answers -- under both sequential and parallel
// run_suite execution, and for healers that keep the network connected
// (dash, graph) as well as one that lets it shatter (none).
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <string>
#include <vector>

#include "api/api.h"
#include "graph/generators.h"
#include "util/thread_pool.h"

namespace dash::api {
namespace {

constexpr std::size_t kInstances = 4;
constexpr std::uint64_t kSeed = 0xC0117u;

void expect_metrics_eq(const Metrics& a, const Metrics& b,
                       const std::string& what) {
  EXPECT_EQ(a.deletions, b.deletions) << what;
  EXPECT_EQ(a.joins, b.joins) << what;
  EXPECT_EQ(a.max_delta, b.max_delta) << what;
  EXPECT_EQ(a.max_id_changes, b.max_id_changes) << what;
  EXPECT_EQ(a.max_messages, b.max_messages) << what;
  EXPECT_EQ(a.max_messages_sent, b.max_messages_sent) << what;
  EXPECT_EQ(a.edges_added, b.edges_added) << what;
  EXPECT_EQ(a.surrogate_heals, b.surrogate_heals) << what;
  EXPECT_DOUBLE_EQ(a.max_stretch, b.max_stretch) << what;
  EXPECT_EQ(a.components, b.components) << what;
  EXPECT_EQ(a.largest_component, b.largest_component) << what;
  EXPECT_EQ(a.stayed_connected, b.stayed_connected) << what;
  EXPECT_EQ(a.violation, b.violation) << what;
}

void expect_rows_eq(const std::vector<RoundRow>& a,
                    const std::vector<RoundRow>& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].instance, b[i].instance) << what << " row " << i;
    EXPECT_EQ(a[i].round, b[i].round) << what << " row " << i;
    EXPECT_EQ(a[i].deletions_in_round, b[i].deletions_in_round)
        << what << " row " << i;
    EXPECT_EQ(a[i].event_node, b[i].event_node) << what << " row " << i;
    EXPECT_EQ(a[i].is_join, b[i].is_join) << what << " row " << i;
    EXPECT_EQ(a[i].alive, b[i].alive) << what << " row " << i;
    EXPECT_EQ(a[i].edges, b[i].edges) << what << " row " << i;
    EXPECT_EQ(a[i].edges_added, b[i].edges_added) << what << " row " << i;
    EXPECT_EQ(a[i].max_delta, b[i].max_delta) << what << " row " << i;
    EXPECT_EQ(a[i].largest_component, b[i].largest_component)
        << what << " row " << i;
  }
}

/// Per-instance component extremes gathered through the inspect hook;
/// the ComponentObserver queries the engine EVERY round, so matching
/// extremes mean every per-round answer agreed between the modes.
struct RunResult {
  std::vector<Metrics> metrics;
  std::vector<RoundRow> rows;
  std::vector<std::size_t> max_components;
  std::vector<std::size_t> min_largest;
};

RunResult run_config(const std::string& spec, const std::string& healer,
                     ConnectivityMode mode, bool parallel) {
  RunResult out;
  out.max_components.resize(kInstances);
  out.min_largest.resize(kInstances);
  MemorySink rows;

  SuiteConfig cfg;
  cfg.instances = kInstances;
  cfg.base_seed = kSeed;
  cfg.make_graph = [](dash::util::Rng& rng) {
    return graph::barabasi_albert(48, 2, rng);
  };
  cfg.make_healer = healer_factory(healer);
  cfg.scenario = Scenario::parse(spec);
  cfg.sinks = {&rows};
  cfg.record_rows = true;
  cfg.configure = [mode](Network& net) {
    net.set_connectivity_mode(mode);
    net.add_observer(std::make_unique<ComponentObserver>());
    net.add_observer(std::make_unique<InvariantObserver>());
  };
  cfg.inspect = [&out](std::size_t i, const Network& net, const Metrics&) {
    const auto* comps = dynamic_cast<const ComponentObserver*>(
        net.find_observer("components"));
    ASSERT_NE(comps, nullptr);
    out.max_components[i] = comps->max_components_seen();
    out.min_largest[i] = comps->min_largest_seen();
  };

  if (parallel) {
    dash::util::ThreadPool pool(4);
    out.metrics = run_suite(cfg, pool);
  } else {
    out.metrics = run_suite(cfg);
  }
  out.rows = rows.rows();
  return out;
}

class ConnectivityProperty
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ConnectivityProperty, TrackerMatchesBfsSequentialAndParallel) {
  const std::string spec = GetParam();
  for (const char* healer : {"dash", "graph", "none"}) {
    const std::string what = spec + " / " + healer;
    const RunResult baseline =
        run_config(spec, healer, ConnectivityMode::kBfs, /*parallel=*/false);
    ASSERT_EQ(baseline.metrics.size(), kInstances) << what;

    const RunResult variants[] = {
        run_config(spec, healer, ConnectivityMode::kTracker, false),
        run_config(spec, healer, ConnectivityMode::kTracker, true),
        run_config(spec, healer, ConnectivityMode::kBfs, true),
    };
    const char* names[] = {"tracker/seq", "tracker/par", "bfs/par"};
    for (std::size_t v = 0; v < 3; ++v) {
      const std::string label = what + " vs " + names[v];
      ASSERT_EQ(variants[v].metrics.size(), kInstances) << label;
      for (std::size_t i = 0; i < kInstances; ++i) {
        expect_metrics_eq(baseline.metrics[i], variants[v].metrics[i],
                          label + " instance " + std::to_string(i));
        EXPECT_EQ(baseline.max_components[i], variants[v].max_components[i])
            << label << " instance " << i;
        EXPECT_EQ(baseline.min_largest[i], variants[v].min_largest[i])
            << label << " instance " << i;
      }
      expect_rows_eq(baseline.rows, variants[v].rows, label);
    }
  }
}

TEST_P(ConnectivityProperty, VerifyModeSelfChecksEveryAnswer) {
  // kVerify DASH_CHECKs tracker-vs-BFS agreement inside the engine on
  // every ask; surviving the run IS the assertion.
  const std::string spec = GetParam();
  for (const char* healer : {"dash", "none"}) {
    const RunResult r =
        run_config(spec, healer, ConnectivityMode::kVerify, false);
    ASSERT_EQ(r.metrics.size(), kInstances) << spec << " / " << healer;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPhaseTypes, ConnectivityProperty,
    ::testing::Values(
        "strike:randomx25",                          // strike
        "batch:4,randomx3",                          // batch
        "churn:0.4,0.4x60",                          // churn
        "targeted:maxnodex30",                       // targeted
        "until:10,random",                           // until
        "repeat:3{strike:randomx5;churn:0.3,0.2x10}",  // repeat (nested)
        "floor:16;targeted:maxnode"),                // floor
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ConnectivityPropertyExtras, StopWhenDisconnectedAgreesAcrossModes) {
  // run() + stop_when_disconnected forces a per-round ask; the round at
  // which an unhealed network dies must not depend on the mode.
  auto run_mode = [](ConnectivityMode mode) {
    dash::util::Rng rng(99);
    graph::Graph g = graph::barabasi_albert(64, 2, rng);
    Network net(std::move(g), "none", 7);
    net.set_connectivity_mode(mode);
    auto attacker = attack::make_attack("maxnode", 3);
    RunOptions opts;
    opts.stop_when_disconnected = true;
    return net.run(*attacker, opts);
  };
  const Metrics bfs = run_mode(ConnectivityMode::kBfs);
  const Metrics tracker = run_mode(ConnectivityMode::kTracker);
  const Metrics verify = run_mode(ConnectivityMode::kVerify);
  EXPECT_FALSE(bfs.stayed_connected);
  EXPECT_EQ(bfs.deletions, tracker.deletions);
  EXPECT_EQ(bfs.stayed_connected, tracker.stayed_connected);
  EXPECT_EQ(bfs.components, tracker.components);
  EXPECT_EQ(bfs.largest_component, tracker.largest_component);
  EXPECT_EQ(bfs.deletions, verify.deletions);
}

TEST(ConnectivityPropertyExtras, AmortizedBatterySeesSameViolations) {
  // battery_every must not change WHETHER a healthy run is clean, and
  // the connectivity part still fires every round.
  for (const std::size_t cadence : {std::size_t{1}, std::size_t{7},
                                    std::size_t{0}}) {
    dash::util::Rng rng(5);
    graph::Graph g = graph::barabasi_albert(96, 2, rng);
    Network net(std::move(g), "dash", 11);
    InvariantOptions opts;
    opts.battery_every = cadence;
    net.add_observer(std::make_unique<InvariantObserver>(opts));
    const Metrics m = net.play(Scenario::parse("targeted:neighborofmax"), 3);
    EXPECT_TRUE(m.violation.empty())
        << "cadence " << cadence << ": " << m.violation;
    EXPECT_TRUE(m.stayed_connected);
  }
}

}  // namespace
}  // namespace dash::api
