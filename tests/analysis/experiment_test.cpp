#include "analysis/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/recorder.h"
#include "attack/factory.h"
#include "core/factory.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::analysis {
namespace {

using core::HealingState;
using dash::util::Rng;
using graph::Graph;

ScheduleResult run_simple(const std::string& healer, std::size_t n,
                          std::uint64_t seed, ScheduleConfig cfg = {}) {
  Rng rng(seed);
  Graph g = graph::barabasi_albert(n, 2, rng);
  HealingState st(g, rng);
  auto atk = attack::make_attack("neighborofmax", seed);
  auto heal = core::make_strategy(healer);
  return run_schedule(g, st, *atk, *heal, cfg);
}

TEST(RunSchedule, RunsToSingleNode) {
  const auto r = run_simple("dash", 64, 1);
  EXPECT_EQ(r.deletions, 63u);
  EXPECT_TRUE(r.stayed_connected);
  EXPECT_TRUE(r.violation.empty());
  EXPECT_GT(r.edges_added, 0u);
}

TEST(RunSchedule, RespectsMaxDeletions) {
  ScheduleConfig cfg;
  cfg.max_deletions = 10;
  const auto r = run_simple("dash", 64, 2, cfg);
  EXPECT_EQ(r.deletions, 10u);
}

TEST(RunSchedule, RecorderCapturesEveryRound) {
  Recorder rec;
  ScheduleConfig cfg;
  cfg.recorder = &rec;
  cfg.max_deletions = 15;
  const auto r = run_simple("dash", 64, 3, cfg);
  ASSERT_EQ(rec.rows().size(), r.deletions);
  // Rounds are 1-based and alive counts strictly decrease.
  for (std::size_t i = 0; i < rec.rows().size(); ++i) {
    EXPECT_EQ(rec.rows()[i].round, i + 1);
    EXPECT_EQ(rec.rows()[i].alive, 64 - (i + 1));
  }
}

TEST(RunSchedule, StretchTracked) {
  ScheduleConfig cfg;
  cfg.track_stretch = true;
  cfg.max_deletions = 8;
  const auto r = run_simple("dash", 32, 4, cfg);
  EXPECT_GE(r.max_stretch, 1.0);
}

TEST(RunSchedule, InvariantViolationSurfacesForBadBound) {
  // GraphHeal with the DASH-only delta bound enabled blows past
  // 2 log2 n on a long NMS schedule at this size/seed (measured: max
  // delta 25 vs bound 18); the runner must surface the violation
  // rather than crash.
  ScheduleConfig cfg;
  cfg.check_invariants = true;
  cfg.check_delta_bound = true;
  const auto r = run_simple("graph", 512, 5, cfg);
  EXPECT_FALSE(r.violation.empty());
}

TEST(RunInstances, DeterministicAcrossPoolSizes) {
  InstanceConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(48, 2, rng);
  };
  cfg.make_attack = [](std::uint64_t seed) {
    return attack::make_attack("neighborofmax", seed);
  };
  const auto healer = core::make_strategy("dash");
  cfg.healer = healer.get();
  cfg.instances = 6;
  cfg.base_seed = 99;

  const auto serial = run_instances(cfg, nullptr);
  dash::util::ThreadPool pool(4);
  const auto parallel = run_instances(cfg, &pool);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].max_delta, parallel[i].max_delta);
    EXPECT_EQ(serial[i].deletions, parallel[i].deletions);
    EXPECT_EQ(serial[i].edges_added, parallel[i].edges_added);
    EXPECT_EQ(serial[i].max_messages, parallel[i].max_messages);
  }
}

TEST(RunInstances, DifferentSeedsDiffer) {
  InstanceConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(48, 2, rng);
  };
  cfg.make_attack = [](std::uint64_t seed) {
    return attack::make_attack("random", seed);
  };
  const auto healer = core::make_strategy("dash");
  cfg.healer = healer.get();
  cfg.instances = 4;

  cfg.base_seed = 1;
  const auto a = run_instances(cfg, nullptr);
  cfg.base_seed = 2;
  const auto b = run_instances(cfg, nullptr);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= (a[i].edges_added != b[i].edges_added) ||
                (a[i].max_messages != b[i].max_messages);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SummarizeMetric, AggregatesChosenField) {
  std::vector<ScheduleResult> rs(3);
  rs[0].max_delta = 2;
  rs[1].max_delta = 4;
  rs[2].max_delta = 6;
  const auto s = summarize_metric(
      rs, [](const ScheduleResult& r) {
        return static_cast<double>(r.max_delta);
      });
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Recorder, CsvOutputWellFormed) {
  Recorder rec;
  DeletionRecord r;
  r.round = 1;
  r.deleted_node = 5;
  r.alive = 9;
  r.edges = 12;
  r.max_delta = 2;
  r.largest_component = 9;
  r.stretch = 1.5;
  r.stretch_sampled = true;
  rec.add(r);
  std::ostringstream out;
  rec.write_csv(out);
  EXPECT_NE(out.str().find("round,deleted_node"), std::string::npos);
  EXPECT_NE(out.str().find("1,5,9,12"), std::string::npos);
  EXPECT_NE(out.str().find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace dash::analysis
