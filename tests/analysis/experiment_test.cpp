// experiment_test.cpp -- the deprecated run_schedule/run_instances
// shims must behave exactly like the api::Network engine they forward
// to (they are kept for one release; downstream callers still compile
// against them).
#include "analysis/experiment.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/recorder.h"
#include "api/api.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::analysis {
namespace {

using core::HealingState;
using dash::util::Rng;
using graph::Graph;

ScheduleResult run_simple(const std::string& healer, std::size_t n,
                          std::uint64_t seed, ScheduleConfig cfg = {}) {
  Rng rng(seed);
  Graph g = graph::barabasi_albert(n, 2, rng);
  HealingState st(g, rng);
  auto atk = attack::make_attack("neighborofmax", seed);
  auto heal = core::make_strategy(healer);
  return run_schedule(g, st, *atk, *heal, cfg);
}

TEST(RunSchedule, RunsToSingleNode) {
  const auto r = run_simple("dash", 64, 1);
  EXPECT_EQ(r.deletions, 63u);
  EXPECT_TRUE(r.stayed_connected);
  EXPECT_TRUE(r.violation.empty());
  EXPECT_GT(r.edges_added, 0u);
}

TEST(RunSchedule, RespectsMaxDeletions) {
  ScheduleConfig cfg;
  cfg.max_deletions = 10;
  const auto r = run_simple("dash", 64, 2, cfg);
  EXPECT_EQ(r.deletions, 10u);
}

TEST(RunSchedule, ShimMatchesEngine) {
  // The shim is a thin adapter: byte-identical metrics to driving the
  // owning engine directly from the same seed.
  const auto shim = run_simple("dash", 64, 7);

  Rng rng(7);
  Graph g = graph::barabasi_albert(64, 2, rng);
  api::Network net(std::move(g), core::make_strategy("dash"), rng);
  auto atk = attack::make_attack("neighborofmax", 7);
  const auto engine = net.run(*atk);

  EXPECT_EQ(shim.deletions, engine.deletions);
  EXPECT_EQ(shim.max_delta, engine.max_delta);
  EXPECT_EQ(shim.max_id_changes, engine.max_id_changes);
  EXPECT_EQ(shim.max_messages, engine.max_messages);
  EXPECT_EQ(shim.edges_added, engine.edges_added);
}

TEST(RunSchedule, ShimMutatesCallerState) {
  // Legacy drivers inspect graph/state after the run; the borrowed-mode
  // engine must operate on the caller's objects, not copies.
  Rng rng(9);
  Graph g = graph::barabasi_albert(32, 2, rng);
  HealingState st(g, rng);
  auto atk = attack::make_attack("neighborofmax", 9);
  auto heal = core::make_strategy("dash");
  ScheduleConfig cfg;
  cfg.max_deletions = 5;
  const auto r = run_schedule(g, st, *atk, *heal, cfg);
  EXPECT_EQ(r.deletions, 5u);
  EXPECT_EQ(g.num_alive(), 27u);
  EXPECT_EQ(st.max_delta_ever(), r.max_delta);
}

TEST(RunInstances, DeterministicAcrossPoolSizes) {
  InstanceConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(48, 2, rng);
  };
  cfg.make_attack = [](std::uint64_t seed) {
    return attack::make_attack("neighborofmax", seed);
  };
  const auto healer = core::make_strategy("dash");
  cfg.healer = healer.get();
  cfg.instances = 6;
  cfg.base_seed = 99;

  const auto serial = run_instances(cfg, nullptr);
  dash::util::ThreadPool pool(4);
  const auto parallel = run_instances(cfg, &pool);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].max_delta, parallel[i].max_delta);
    EXPECT_EQ(serial[i].deletions, parallel[i].deletions);
    EXPECT_EQ(serial[i].edges_added, parallel[i].edges_added);
    EXPECT_EQ(serial[i].max_messages, parallel[i].max_messages);
  }
}

TEST(RunInstances, DifferentSeedsDiffer) {
  InstanceConfig cfg;
  cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(48, 2, rng);
  };
  cfg.make_attack = [](std::uint64_t seed) {
    return attack::make_attack("random", seed);
  };
  const auto healer = core::make_strategy("dash");
  cfg.healer = healer.get();
  cfg.instances = 4;

  cfg.base_seed = 1;
  const auto a = run_instances(cfg, nullptr);
  cfg.base_seed = 2;
  const auto b = run_instances(cfg, nullptr);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= (a[i].edges_added != b[i].edges_added) ||
                (a[i].max_messages != b[i].max_messages);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RunInstances, MatchesRunSuite) {
  // The shim forwards to api::run_suite with the same deterministic
  // stream layout: per-instance results must be identical.
  InstanceConfig old_cfg;
  old_cfg.make_graph = [](Rng& rng) {
    return graph::barabasi_albert(40, 2, rng);
  };
  old_cfg.make_attack = [](std::uint64_t seed) {
    return attack::make_attack("neighborofmax", seed);
  };
  const auto healer = core::make_strategy("sdash");
  old_cfg.healer = healer.get();
  old_cfg.instances = 4;
  old_cfg.base_seed = 0xFEED;
  const auto via_shim = run_instances(old_cfg, nullptr);

  api::SuiteConfig suite;
  suite.make_graph = old_cfg.make_graph;
  suite.make_attacker = api::attacker_factory("neighborofmax");
  suite.make_healer = api::healer_factory("sdash");
  suite.instances = 4;
  suite.base_seed = 0xFEED;
  const auto direct = api::run_suite(suite, nullptr);

  ASSERT_EQ(via_shim.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_shim[i].max_delta, direct[i].max_delta);
    EXPECT_EQ(via_shim[i].deletions, direct[i].deletions);
    EXPECT_EQ(via_shim[i].edges_added, direct[i].edges_added);
  }
}

TEST(SummarizeMetric, AggregatesChosenField) {
  std::vector<ScheduleResult> rs(3);
  rs[0].max_delta = 2;
  rs[1].max_delta = 4;
  rs[2].max_delta = 6;
  // Qualified: ADL on api::Metrics would also find api::summarize_metric.
  const auto s = dash::analysis::summarize_metric(
      rs, [](const ScheduleResult& r) {
        return static_cast<double>(r.max_delta);
      });
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(Recorder, CsvOutputWellFormed) {
  Recorder rec;
  DeletionRecord r;
  r.round = 1;
  r.deleted_node = 5;
  r.alive = 9;
  r.edges = 12;
  r.max_delta = 2;
  r.largest_component = 9;
  r.stretch = 1.5;
  r.stretch_sampled = true;
  rec.add(r);
  std::ostringstream out;
  rec.write_csv(out);
  EXPECT_NE(out.str().find("round,deleted_node"), std::string::npos);
  EXPECT_NE(out.str().find("1,5,9,12"), std::string::npos);
  EXPECT_NE(out.str().find("1.5"), std::string::npos);
}

}  // namespace
}  // namespace dash::analysis
