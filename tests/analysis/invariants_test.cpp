#include "analysis/invariants.h"

#include <gtest/gtest.h>

#include "graph/dynamic_connectivity.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::analysis {
namespace {

using core::DeletionContext;
using core::HealAction;
using core::HealingState;
using dash::util::Rng;
using graph::Graph;

TEST(Connectivity, PassAndFail) {
  Graph g = graph::path_graph(4);
  EXPECT_TRUE(check_connectivity(g).ok);
  g.delete_node(1);
  const Check c = check_connectivity(g);
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.violation.find("2 components"), std::string::npos);
}

TEST(Forest, DetectsCycleInHealingGraph) {
  Rng rng(1);
  Graph g(3);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 1);
  st.add_healing_edge(g, 1, 2);
  EXPECT_TRUE(check_forest(g, st).ok);
  st.add_healing_edge(g, 2, 0);
  EXPECT_FALSE(check_forest(g, st).ok);
}

TEST(ComponentIds, MixedIdDetected) {
  Rng rng(2);
  Graph g(3);
  HealingState st(g, rng);
  st.add_healing_edge(g, 0, 1);
  // No propagation: the pair 0-1 still carries two distinct ids.
  EXPECT_FALSE(check_component_ids(g, st).ok);
  st.propagate_min_id(g, {0, 1});
  EXPECT_TRUE(check_component_ids(g, st).ok);
}

TEST(RemBound, HoldsInitially) {
  Rng rng(3);
  const Graph g = graph::path_graph(5);
  const HealingState st(g, rng);
  EXPECT_TRUE(check_rem_bound(g, st).ok);
}

TEST(WeightConservation, TracksTransfers) {
  Rng rng(4);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  EXPECT_TRUE(check_weight_conservation(g, st, 3).ok);
  st.begin_deletion(g, 0);
  g.delete_node(0);
  EXPECT_TRUE(check_weight_conservation(g, st, 3).ok);
  EXPECT_FALSE(check_weight_conservation(g, st, 4).ok);
}

TEST(Locality, FlagsForeignEdges) {
  DeletionContext ctx;
  ctx.deleted = 9;
  ctx.neighbors_g = {2, 5, 7};

  HealAction good;
  good.new_graph_edges = {{2, 5}, {5, 7}};
  EXPECT_TRUE(check_locality(good, ctx).ok);

  HealAction bad;
  bad.new_graph_edges = {{2, 3}};  // 3 was not a neighbor of 9
  const Check c = check_locality(bad, ctx);
  EXPECT_FALSE(c.ok);
  EXPECT_NE(c.violation.find("non-neighbors"), std::string::npos);
}

TEST(DeltaBound, ChecksTwoLogN) {
  Rng rng(5);
  Graph g(16);
  HealingState st(g, rng);
  // 2 log2 16 = 8; push one node's delta to 9 via healing edges.
  for (graph::NodeId u = 1; u <= 9; ++u) st.add_healing_edge(g, 0, u);
  EXPECT_FALSE(check_delta_bound(st, 16).ok);
  EXPECT_TRUE(check_delta_bound(st, 1 << 10).ok);  // bound 20 > 9
}

TEST(CheckStruct, FactoryHelpers) {
  EXPECT_TRUE(Check::pass().ok);
  const Check f = Check::fail("oops");
  EXPECT_FALSE(f.ok);
  EXPECT_EQ(f.violation, "oops");
}

TEST(ComponentTracker, AgreesWithBfsAcrossMutations) {
  Rng rng(21);
  Graph g = graph::barabasi_albert(48, 2, rng);
  graph::DynamicConnectivity dc(g);
  EXPECT_TRUE(check_component_tracker(g, dc).ok);
  const auto survivors = g.delete_node(3);
  dc.node_removed(3, survivors, /*may_split=*/true);
  EXPECT_TRUE(check_component_tracker(g, dc).ok);
}

TEST(ComponentTracker, FlagsDesyncedTracker) {
  Graph g = graph::path_graph(4);
  graph::DynamicConnectivity dc(g);
  // Cut the path WITHOUT telling the tracker: the differential checker
  // must flag the divergence (1 tracked component vs 2 real ones).
  g.remove_edge(1, 2);
  EXPECT_FALSE(check_component_tracker(g, dc).ok);
}

}  // namespace
}  // namespace dash::analysis
