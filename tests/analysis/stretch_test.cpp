#include "analysis/stretch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dash::analysis {
namespace {

using graph::Graph;

TEST(Stretch, IdentityGraphHasStretchOne) {
  const Graph g = graph::cycle_graph(8);
  const StretchTracker tracker(g);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 1.0);
  EXPECT_DOUBLE_EQ(tracker.average_stretch(g), 1.0);
}

TEST(Stretch, OriginalDistancesFrozen) {
  const Graph g = graph::path_graph(4);
  const StretchTracker tracker(g);
  EXPECT_EQ(tracker.original_distance(0, 3), 3u);
  EXPECT_EQ(tracker.original_distance(1, 2), 1u);
}

TEST(Stretch, DetourIncreasesStretch) {
  // Cycle 0-1-2-3-4-5-0; delete node 1 and reconnect 0-2 directly:
  // distances are preserved => stretch 1. Instead reconnect nothing and
  // the pair (0,2) must go the long way: distance 4 vs original 2.
  Graph g = graph::cycle_graph(6);
  const StretchTracker tracker(g);
  g.delete_node(1);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 2.0);  // (0,2): 4/2
}

TEST(Stretch, HealedEdgeRestoresStretch) {
  Graph g = graph::cycle_graph(6);
  const StretchTracker tracker(g);
  g.delete_node(1);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 1.0);
}

TEST(Stretch, DisconnectedIsInfinite) {
  Graph g = graph::path_graph(4);
  const StretchTracker tracker(g);
  g.delete_node(1);
  EXPECT_TRUE(std::isinf(tracker.max_stretch(g)));
  EXPECT_TRUE(std::isinf(tracker.average_stretch(g)));
}

TEST(Stretch, FewAliveNodesIsZero) {
  Graph g = graph::path_graph(3);
  const StretchTracker tracker(g);
  g.delete_node(0);
  g.delete_node(1);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 0.0);
}

TEST(Stretch, AverageBelowMax) {
  Graph g = graph::cycle_graph(8);
  const StretchTracker tracker(g);
  g.delete_node(1);
  g.add_edge(0, 2);  // partial repair elsewhere still shifts distances
  g.delete_node(5);
  g.add_edge(4, 6);
  // One pass serves both figures; no second APSP.
  const StretchStats stats = tracker.stretch_stats(g);
  EXPECT_LE(stats.average, stats.max);
  // Chord edges can shrink distances below the original, so the average
  // may dip under 1; it must stay positive and finite.
  EXPECT_GT(stats.average, 0.0);
  EXPECT_FALSE(std::isinf(stats.average));
}

TEST(Stretch, StatsMatchSingleMetricWrappers) {
  dash::util::Rng rng(17);
  Graph g = graph::barabasi_albert(48, 2, rng);
  const StretchTracker tracker(g);
  const auto survivors = g.delete_node(3);
  for (std::size_t i = 1; i < survivors.size(); ++i) {
    g.add_edge(survivors[i - 1], survivors[i]);
  }
  const StretchStats stats = tracker.stretch_stats(g);
  EXPECT_EQ(stats.max, tracker.max_stretch(g));
  EXPECT_EQ(stats.average, tracker.average_stretch(g));
  EXPECT_GE(stats.max, 1.0);
}

TEST(Stretch, StatsParallelBitIdenticalToSequential) {
  dash::util::Rng rng(23);
  Graph g = graph::barabasi_albert(200, 2, rng);
  const StretchTracker tracker(g);
  for (int i = 0; i < 20; ++i) {
    const auto alive = g.alive_nodes();
    const auto survivors = g.delete_node(
        alive[static_cast<std::size_t>(rng.below(alive.size()))]);
    for (std::size_t j = 1; j < survivors.size(); ++j) {
      g.add_edge(survivors[j - 1], survivors[j]);
    }
  }
  const StretchStats seq = tracker.stretch_stats(g);
  for (std::size_t workers : {2, 3, 8}) {
    dash::util::ThreadPool pool(workers);
    const StretchStats par = tracker.stretch_stats(g, pool);
    EXPECT_EQ(seq.max, par.max) << workers << " workers";
    EXPECT_EQ(seq.average, par.average) << workers << " workers";
  }
}

TEST(Stretch, StatsParallelDisconnectedIsInfinite) {
  Graph g = graph::path_graph(130);  // two waves' worth of sources
  const StretchTracker tracker(g);
  g.delete_node(64);
  dash::util::ThreadPool pool(2);
  const StretchStats par = tracker.stretch_stats(g, pool);
  EXPECT_TRUE(std::isinf(par.max));
  EXPECT_TRUE(std::isinf(par.average));
}

TEST(Stretch, FewAliveNodesStatsZero) {
  Graph g = graph::path_graph(3);
  const StretchTracker tracker(g);
  g.delete_node(0);
  g.delete_node(1);
  dash::util::ThreadPool pool(2);
  const StretchStats seq = tracker.stretch_stats(g);
  const StretchStats par = tracker.stretch_stats(g, pool);
  EXPECT_DOUBLE_EQ(seq.max, 0.0);
  EXPECT_DOUBLE_EQ(seq.average, 0.0);
  EXPECT_DOUBLE_EQ(par.max, 0.0);
  EXPECT_DOUBLE_EQ(par.average, 0.0);
}

TEST(Stretch, RequiresConnectedBaseline) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_DEATH(StretchTracker tracker(g), "connected");
}

}  // namespace
}  // namespace dash::analysis
