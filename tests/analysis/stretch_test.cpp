#include "analysis/stretch.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "util/rng.h"

namespace dash::analysis {
namespace {

using graph::Graph;

TEST(Stretch, IdentityGraphHasStretchOne) {
  const Graph g = graph::cycle_graph(8);
  const StretchTracker tracker(g);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 1.0);
  EXPECT_DOUBLE_EQ(tracker.average_stretch(g), 1.0);
}

TEST(Stretch, OriginalDistancesFrozen) {
  const Graph g = graph::path_graph(4);
  const StretchTracker tracker(g);
  EXPECT_EQ(tracker.original_distance(0, 3), 3u);
  EXPECT_EQ(tracker.original_distance(1, 2), 1u);
}

TEST(Stretch, DetourIncreasesStretch) {
  // Cycle 0-1-2-3-4-5-0; delete node 1 and reconnect 0-2 directly:
  // distances are preserved => stretch 1. Instead reconnect nothing and
  // the pair (0,2) must go the long way: distance 4 vs original 2.
  Graph g = graph::cycle_graph(6);
  const StretchTracker tracker(g);
  g.delete_node(1);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 2.0);  // (0,2): 4/2
}

TEST(Stretch, HealedEdgeRestoresStretch) {
  Graph g = graph::cycle_graph(6);
  const StretchTracker tracker(g);
  g.delete_node(1);
  g.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 1.0);
}

TEST(Stretch, DisconnectedIsInfinite) {
  Graph g = graph::path_graph(4);
  const StretchTracker tracker(g);
  g.delete_node(1);
  EXPECT_TRUE(std::isinf(tracker.max_stretch(g)));
  EXPECT_TRUE(std::isinf(tracker.average_stretch(g)));
}

TEST(Stretch, FewAliveNodesIsZero) {
  Graph g = graph::path_graph(3);
  const StretchTracker tracker(g);
  g.delete_node(0);
  g.delete_node(1);
  EXPECT_DOUBLE_EQ(tracker.max_stretch(g), 0.0);
}

TEST(Stretch, AverageBelowMax) {
  Graph g = graph::cycle_graph(8);
  const StretchTracker tracker(g);
  g.delete_node(1);
  g.add_edge(0, 2);  // partial repair elsewhere still shifts distances
  g.delete_node(5);
  g.add_edge(4, 6);
  const double avg = tracker.average_stretch(g);
  const double mx = tracker.max_stretch(g);
  EXPECT_LE(avg, mx);
  // Chord edges can shrink distances below the original, so the average
  // may dip under 1; it must stay positive and finite.
  EXPECT_GT(avg, 0.0);
  EXPECT_FALSE(std::isinf(avg));
}

TEST(Stretch, RequiresConnectedBaseline) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_DEATH(StretchTracker tracker(g), "connected");
}

}  // namespace
}  // namespace dash::analysis
