// StretchEstimator differential against the exact tracker: the
// guarantee under test is *containment* -- every pair's true stretch
// lies inside the estimator's [lower, upper] interval, and the
// estimate's aggregate bounds bracket the exact values computed from
// the same pairs.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/stretch.h"
#include "analysis/stretch_estimator.h"
#include "api/network.h"
#include "api/observers.h"
#include "api/scenario.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::analysis {
namespace {

using graph::Graph;
using graph::NodeId;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exact stretch of one pair: BFS on the healed graph over the frozen
/// time-0 denominator.
double exact_stretch(const StretchTracker& tracker, const Graph& healed,
                     NodeId u, NodeId v) {
  const std::uint32_t dt = graph::bfs_distance(healed, u, v);
  if (dt == graph::kUnreachable) return kInf;
  return static_cast<double>(dt) /
         static_cast<double>(tracker.original_distance(u, v));
}

/// Heal-churn a BA graph with DASH and check every sampled pair's
/// interval against the exact value, at several points of the run.
void run_containment_check(std::size_t n, std::size_t landmarks,
                           std::uint64_t seed) {
  util::Rng graph_rng(seed);
  Graph original = graph::barabasi_albert(n, 2, graph_rng);
  const StretchTracker tracker(original);
  StretchEstimator estimator(
      original, {.landmarks = landmarks, .pairs = 64, .seed = seed});

  // Play in slices so the check sees several healed states, not just
  // the final one.
  api::Network net(Graph(original), "dash", seed);
  std::vector<PairBound> detail;
  for (int slice = 0; slice < 4; ++slice) {
    util::Rng slice_rng(seed + 10 + static_cast<std::uint64_t>(slice));
    (void)net.play(api::Scenario::parse("strike:maxnodex8"), slice_rng);
    const Graph& healed = net.graph();
    const StretchEstimate est = estimator.estimate(healed, &detail);
    ASSERT_EQ(est.pairs, 64u);

    double exact_max = 0.0;
    std::size_t exact_max_pairs = 0;
    for (const PairBound& b : detail) {
      const double truth = exact_stretch(tracker, healed, b.u, b.v);
      if (b.disconnected) {
        // Disconnection claims are certificates, never guesses.
        EXPECT_TRUE(std::isinf(truth));
        continue;
      }
      if (b.unbounded) continue;
      EXPECT_FALSE(std::isinf(truth));
      EXPECT_LE(b.lower, truth + 1e-12)
          << "pair (" << b.u << "," << b.v << ")";
      EXPECT_GE(b.upper, truth - 1e-12)
          << "pair (" << b.u << "," << b.v << ")";
      // Distance bounds bracket the true distances too.
      const std::uint32_t dt = graph::bfs_distance(healed, b.u, b.v);
      EXPECT_LE(b.healed_lower, dt);
      EXPECT_GE(b.healed_upper, dt);
      const std::uint32_t d0 = tracker.original_distance(b.u, b.v);
      EXPECT_LE(b.original_lower, d0);
      EXPECT_GE(b.original_upper, d0);
      exact_max = std::max(exact_max, truth);
      ++exact_max_pairs;
    }
    if (exact_max_pairs > 0 && est.disconnected == 0) {
      EXPECT_LE(est.max_lower, exact_max + 1e-12);
      EXPECT_GE(est.max_upper, exact_max - 1e-12);
    }
  }
}

TEST(StretchEstimator, ContainmentSmall) {
  run_containment_check(128, 8, 0xE57);
}

TEST(StretchEstimator, ContainmentMediumMoreLandmarks) {
  run_containment_check(512, 24, 0xE58);
}

TEST(StretchEstimator, ContainmentLargeN1024) {
  run_containment_check(1024, 16, 0xE59);
}

TEST(StretchEstimator, PairsInvolvingLandmarksAreExact) {
  // A landmark lies on every shortest path from itself, so pairs with a
  // landmark endpoint get a zero-width healed bound and an exact
  // denominator: lower == upper == the true stretch.
  util::Rng rng(7);
  Graph g = graph::random_tree(64, rng);
  const StretchTracker tracker(g);
  StretchEstimator estimator(g, {.landmarks = 4, .pairs = 8, .seed = 7});
  estimator.sample_wave(g);  // healed == original: stretch 1 everywhere
  for (const NodeId lm : estimator.landmarks()) {
    for (NodeId v = 0; v < 64; v += 9) {
      if (v == lm) continue;
      const PairBound b = estimator.bound_pair(lm, v);
      EXPECT_DOUBLE_EQ(b.lower, 1.0);
      EXPECT_DOUBLE_EQ(b.upper, 1.0);
    }
  }
}

TEST(StretchEstimator, DetectsDisconnection) {
  // Two nodes joined by a bridge; deleting the bridge node splits the
  // graph. Every surviving landmark sits on one side, so any sampled
  // cross pair is certified disconnected.
  Graph g = graph::path_graph(9);
  StretchEstimator estimator(g, {.landmarks = 3, .pairs = 16, .seed = 1});
  g.delete_node(4);
  estimator.sample_wave(g);
  const PairBound b = estimator.bound_pair(0, 8);
  EXPECT_TRUE(b.disconnected);
  EXPECT_TRUE(std::isinf(b.lower));
  EXPECT_TRUE(std::isinf(b.upper));

  const StretchEstimate est = estimator.estimate(g);
  EXPECT_GT(est.disconnected, 0u);
  EXPECT_TRUE(std::isinf(est.max_upper));
}

TEST(StretchEstimator, LandmarkCountClampsToDistinctNodes) {
  Graph g = graph::path_graph(3);
  StretchEstimator estimator(g, {.landmarks = 64, .pairs = 4, .seed = 2});
  EXPECT_EQ(estimator.num_landmarks(), 3u);
}

TEST(StretchEstimatorObserver, EstimateModeSamplesUpperBound) {
  util::Rng rng(21);
  Graph g = graph::barabasi_albert(96, 2, rng);
  api::Network net(std::move(g), "dash", 21);
  auto obs = std::make_unique<api::StretchObserver>(
      api::StretchObserverOptions{.sample_every = 2,
                                  .estimate = true,
                                  .landmarks = 8,
                                  .pairs = 32});
  const api::StretchObserver* raw = obs.get();
  net.add_observer(std::move(obs));
  util::Rng play(22);
  (void)net.play(api::Scenario::parse("strike:maxnodex12"), play);
  EXPECT_TRUE(raw->estimating());
  EXPECT_GT(raw->last_estimate().pairs, 0u);
  EXPECT_EQ(raw->last_sample(), raw->last_estimate().max_upper);
  EXPECT_GE(raw->last_estimate().max_upper,
            raw->last_estimate().max_lower);
  EXPECT_GT(raw->max_stretch(), 0.0);
}

}  // namespace
}  // namespace dash::analysis
