#include "analysis/dot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/dash.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::analysis {
namespace {

using core::HealingState;
using dash::util::Rng;
using graph::Graph;

TEST(Dot, PlainGraphStructure) {
  Graph g = graph::path_graph(3);
  std::ostringstream out;
  write_dot(out, g);
  const std::string s = out.str();
  EXPECT_NE(s.find("graph network {"), std::string::npos);
  EXPECT_NE(s.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(s.find("n1 -- n2"), std::string::npos);
  EXPECT_EQ(s.find("n0 -- n2"), std::string::npos);
  EXPECT_EQ(s.back(), '\n');
}

TEST(Dot, SkipsDeadNodes) {
  Graph g = graph::path_graph(3);
  g.delete_node(1);
  std::ostringstream out;
  write_dot(out, g);
  EXPECT_EQ(out.str().find("n1"), std::string::npos);
  EXPECT_EQ(out.str().find("--"), std::string::npos);
}

TEST(Dot, HealingOverlayMarksForestEdges) {
  Rng rng(1);
  Graph g = graph::star_graph(5);
  HealingState st(g, rng);
  core::DashStrategy dash;
  const core::DeletionContext ctx = st.begin_deletion(g, 0);
  g.delete_node(0);
  dash.heal(g, st, ctx);

  std::ostringstream out;
  write_dot_with_healing(out, g, st);
  const std::string s = out.str();
  // All surviving edges are healing edges here.
  EXPECT_NE(s.find("color=red"), std::string::npos);
  EXPECT_NE(s.find("penwidth=2"), std::string::npos);
  EXPECT_NE(s.find("d="), std::string::npos);  // delta labels
}

TEST(Dot, OrganicEdgesKeepDefaultColor) {
  Rng rng(2);
  Graph g = graph::path_graph(3);
  HealingState st(g, rng);
  std::ostringstream out;
  write_dot_with_healing(out, g, st);
  EXPECT_NE(out.str().find("color=gray40"), std::string::npos);
  EXPECT_EQ(out.str().find("color=red"), std::string::npos);
}

TEST(Dot, CustomOptions) {
  Graph g = graph::path_graph(2);
  DotOptions opt;
  opt.graph_name = "custom";
  std::ostringstream out;
  write_dot(out, g, opt);
  EXPECT_NE(out.str().find("graph custom {"), std::string::npos);
}

}  // namespace
}  // namespace dash::analysis
