#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

namespace dash::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("task 5");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ManyTasksSumCorrectly) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    total.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    // Single worker: strictly sequential, no data race.
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace dash::util
