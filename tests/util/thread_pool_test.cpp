#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dash::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("task 5");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ManyTasksSumCorrectly) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    total.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(total.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, SingleWorkerStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    // Single worker: strictly sequential, no data race.
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, DefaultSizeAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForErrorStillRunsRemainingIndices) {
  // One failing index must not strand the rest of the range: every
  // other index still executes exactly once (experiment suites rely on
  // this -- a poisoned cell fails its own future, the shard completes).
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("cell 17");
                          hits[i].fetch_add(1);
                        }),
      std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), i == 17 ? 0 : 1) << "index " << i;
  }
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, ParallelForRethrowsExactlyOnceForManyFailures) {
  // Several indices throwing must surface as one exception (the first
  // encountered), not terminate() from a second in-flight rethrow.
  ThreadPool pool(4);
  std::atomic<int> failures{0};
  try {
    pool.parallel_for(32, [&](std::size_t i) {
      if (i % 4 == 0) {
        failures.fetch_add(1);
        throw std::runtime_error("index " + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to throw";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(failures.load(), 8);
}

TEST(ThreadPool, PoolUsableAfterParallelForException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   4, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The pool (and its workers) must survive for the next call.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t outer) {
                          pool.parallel_for(4, [&](std::size_t inner) {
                            if (outer == 1 && inner == 2) {
                              throw std::runtime_error("nested");
                            }
                          });
                        }),
      std::runtime_error);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, NestedParallelForLeavesNoQueuedHelpers) {
  // Occupy every worker, then run parallel_for from this thread: the
  // caller-runner drains the whole range while the helpers sit in the
  // queue. On return those helpers must have been erased -- a
  // stretch-sampling suite issues thousands of nested calls, and
  // leftover no-op closures would pile up for the outer run's lifetime.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<int> blocked{0};
  std::vector<std::future<void>> gates;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    gates.push_back(pool.submit([&] {
      blocked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    }));
  }
  while (blocked.load() < static_cast<int>(pool.size())) {
    std::this_thread::yield();
  }
  std::atomic<int> ran{0};
  for (int call = 0; call < 50; ++call) {
    pool.parallel_for(8, [&](std::size_t) { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 50 * 8);
  EXPECT_EQ(pool.queue_depth(), 0u);
  release.store(true);
  for (auto& g : gates) g.get();
}

}  // namespace
}  // namespace dash::util
