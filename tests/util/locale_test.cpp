// locale_test.cpp -- numeric parsing and formatting must be
// locale-independent. Under a comma-decimal locale (de_DE, fr_FR, ...)
// the strto*/printf family reads "0.3" as 0 and prints 0.3 as "0,3",
// which used to corrupt scenario specs, CLI options, and every CSV /
// BENCH document. All call sites now go through std::from_chars /
// std::to_chars; these tests pin that by imbuing a comma-decimal
// locale for the duration of each check.
#include <gtest/gtest.h>

#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "api/scenario.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/registry.h"
#include "util/table.h"

namespace dash {
namespace {

/// Switch the process to a comma-decimal locale; restore on
/// destruction. Minimal containers ship only C/POSIX, so when no
/// candidate is installed this compiles one with localedef into a
/// temp dir and points LOCPATH at it (done once per process). ok() is
/// false only when that fails too -- the test then skips rather than
/// silently passing.
class CommaLocale {
 public:
  CommaLocale() {
    const char* current = std::setlocale(LC_ALL, nullptr);
    saved_ = current ? current : "C";
    if (try_candidates()) return;
    if (provision_locale() && try_candidates()) return;
    std::setlocale(LC_ALL, saved_.c_str());
  }
  ~CommaLocale() { std::setlocale(LC_ALL, saved_.c_str()); }
  bool ok() const { return ok_; }

 private:
  bool try_candidates() {
    const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8",  "fr_FR.UTF-8",
                                "fr_FR.utf8",  "es_ES.UTF-8", "it_IT.UTF-8",
                                "pt_BR.UTF-8", "ru_RU.UTF-8", "de_DE",
                                "fr_FR"};
    for (const char* name : candidates) {
      if (std::setlocale(LC_ALL, name) != nullptr &&
          std::localeconv()->decimal_point[0] == ',') {
        ok_ = true;
        return true;
      }
    }
    return false;
  }

  static bool provision_locale() {
    static const bool provisioned = [] {
      namespace fs = std::filesystem;
      std::error_code ec;
      const fs::path dir =
          fs::temp_directory_path(ec) / "dash_test_locales";
      if (ec) return false;
      fs::create_directories(dir, ec);
      if (ec) return false;
      const std::string cmd = "localedef -i de_DE -f UTF-8 '" +
                              (dir / "de_DE.UTF-8").string() +
                              "' >/dev/null 2>&1";
      // localedef exits nonzero on harmless warnings; trust the
      // LOCPATH probe in try_candidates() instead of the exit code.
      (void)std::system(cmd.c_str());
      return ::setenv("LOCPATH", dir.c_str(), 1) == 0;
    }();
    return provisioned;
  }

  std::string saved_;
  bool ok_ = false;
};

#define REQUIRE_COMMA_LOCALE(guard)                                       \
  if (!(guard).ok()) {                                                    \
    GTEST_SKIP() << "no comma-decimal locale installed on this host";     \
  }                                                                       \
  /* Sanity: printf really is comma-decimal right now. */                 \
  {                                                                       \
    char buf[16];                                                         \
    std::snprintf(buf, sizeof buf, "%.1f", 0.5);                          \
    ASSERT_STREQ(buf, "0,5");                                             \
  }

TEST(Locale, ScenarioRatesParseUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);
  const api::Scenario s = api::Scenario::parse("churn:0.3,0.1x50");
  EXPECT_EQ(s.spec(), "churn:0.3,0.1x50");
  // And comma-decimal spellings stay rejected: "0,3" is two fields in
  // the spec grammar, never a single rate.
  EXPECT_THROW(api::Scenario::parse("churn:0#3,0.1x50"),
               std::invalid_argument);
}

TEST(Locale, CliDoubleOptionParsesUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);
  double rate = 0.0;
  std::int64_t count = 0;
  std::uint64_t seed = 0;
  util::Options opts("locale test");
  opts.add_double("rate", &rate, "a rate");
  opts.add_int("count", &count, "a count");
  opts.add_uint("seed", &seed, "a seed");
  const char* argv[] = {"prog", "--rate", "0.25", "--count", "-3",
                        "--seed", "42"};
  ASSERT_TRUE(opts.parse(7, const_cast<char**>(argv)));
  EXPECT_DOUBLE_EQ(rate, 0.25);
  EXPECT_EQ(count, -3);
  EXPECT_EQ(seed, 42u);
}

TEST(Locale, SpecUintParsesUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);
  EXPECT_EQ(util::parse_spec_uint("capped", "123456"), 123456ul);
  EXPECT_THROW(util::parse_spec_uint("capped", "1.234"),
               std::invalid_argument);
}

TEST(Locale, CsvFieldFormattingUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);
  // to_chars(general, 10) == printf %.10g in the *C* locale, whatever
  // the process locale says.
  EXPECT_EQ(util::CsvWriter::to_field(0.1), "0.1");
  EXPECT_EQ(util::CsvWriter::to_field(0.3), "0.3");
  EXPECT_EQ(util::CsvWriter::to_field(2.5), "2.5");
  EXPECT_EQ(util::CsvWriter::to_field(1.0), "1");
  EXPECT_EQ(util::CsvWriter::to_field(1234567.25), "1234567.25");
  EXPECT_EQ(util::CsvWriter::to_field(1e-9), "1e-09");
}

TEST(Locale, TableCellFormattingUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);
  util::Table t({"v"});
  t.begin_row().cell(0.0625, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("0.06"), std::string::npos);
  EXPECT_EQ(os.str().find(','), std::string::npos);
}

/// Differential check in the default C locale: to_chars-based
/// formatting must be byte-identical to the snprintf("%.10g") it
/// replaced, across magnitudes (the batch outputs' byte-stability
/// contract hangs on this).
TEST(Locale, ToFieldMatchesPrintfInCLocale) {
  const double values[] = {0.0,    -0.0,     1.0,      0.1,     1.0 / 3.0,
                           2.5e-8, 6.25e17,  -123.456, 1e300,   5e-324,
                           0.3,    1048576., 3.14159,  -0.0001, 99999999999.5};
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    EXPECT_EQ(util::CsvWriter::to_field(v), std::string(buf)) << v;
  }
}

}  // namespace
}  // namespace dash
