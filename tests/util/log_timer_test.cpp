#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/log.h"
#include "util/timer.h"

namespace dash::util {
namespace {

TEST(Log, LevelFilteringRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

TEST(Log, MacroCompilesAndRespectsLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // These must be filtered (no output side effects to assert beyond
  // not crashing; the macro's short-circuit is the behavior under test).
  DASH_LOG_DEBUG << "invisible";
  DASH_LOG_INFO << "invisible " << 42;
  set_log_level(before);
}

TEST(Log, LogLineIsThreadSafe) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);  // keep stderr quiet
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        log_line(LogLevel::kDebug, "concurrent line");
      }
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(before);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);  // sanity upper bound for CI jitter
  EXPECT_NEAR(t.millis(), t.seconds() * 1000.0, 50.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.010);
}

}  // namespace
}  // namespace dash::util
