#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.h"
#include "util/table.h"

namespace dash::util {
namespace {

TEST(Csv, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.write(1, 2.5);
  csv.write(std::string("x"), "y");
  EXPECT_EQ(out.str(), "a,b\n1,2.5\nx,y\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WidthMismatchAborts) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_DEATH(csv.write_row({"only-one"}), "CSV row width mismatch");
}

TEST(Csv, DoubleFormattingRoundTrips) {
  EXPECT_EQ(CsvWriter::to_field(0.1), "0.1");
  EXPECT_EQ(CsvWriter::to_field(1e-9), "1e-09");
  EXPECT_EQ(CsvWriter::to_field(123456789.0), "123456789");
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.begin_row().cell("x").cell(std::size_t{1});
  t.begin_row().cell("longer").cell(std::size_t{22});
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  // Header, rule, two rows.
  EXPECT_NE(s.find("name    value"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(Table, DoubleDecimals) {
  Table t({"v"});
  t.begin_row().cell(3.14159, 3);
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("3.142"), std::string::npos);
}

TEST(Table, IncompleteRowAborts) {
  Table t({"a", "b"});
  t.begin_row().cell("only-one");
  EXPECT_DEATH(t.begin_row(), "incomplete");
}

TEST(Table, TooManyCellsAborts) {
  Table t({"a"});
  t.begin_row().cell("one");
  EXPECT_DEATH(t.cell("two"), "too many cells");
}

}  // namespace
}  // namespace dash::util
