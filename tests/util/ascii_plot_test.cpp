#include "util/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dash::util {
namespace {

TEST(AsciiPlot, RendersMarkersAndLegend) {
  std::ostringstream out;
  ascii_plot(out, {"1", "2", "3"},
             {{"rising", {1.0, 2.0, 3.0}}, {"flat", {2.0, 2.0, 2.0}}});
  const std::string s = out.str();
  EXPECT_NE(s.find('A'), std::string::npos);
  EXPECT_NE(s.find('B'), std::string::npos);
  EXPECT_NE(s.find("A = rising"), std::string::npos);
  EXPECT_NE(s.find("B = flat"), std::string::npos);
  EXPECT_NE(s.find('+'), std::string::npos);  // axis corner
}

TEST(AsciiPlot, RisingSeriesTopRightHigherThanBottomLeft) {
  std::ostringstream out;
  PlotOptions opt;
  opt.width = 20;
  opt.height = 8;
  ascii_plot(out, {"a", "b"}, {{"up", {0.0, 10.0}}}, opt);
  const std::string s = out.str();
  // First 'A' in the stream is the topmost occurrence: the right end.
  const auto first_a_line_end = s.find('\n', s.find('A'));
  const std::string first_line = s.substr(0, first_a_line_end);
  EXPECT_NE(first_line.find('A'), std::string::npos);
}

TEST(AsciiPlot, FlatSeriesDoesNotCrash) {
  std::ostringstream out;
  ascii_plot(out, {"x", "y", "z"}, {{"const", {5.0, 5.0, 5.0}}});
  EXPECT_NE(out.str().find("A = const"), std::string::npos);
}

TEST(AsciiPlot, LogScale) {
  std::ostringstream out;
  PlotOptions opt;
  opt.log_y = true;
  ascii_plot(out, {"1", "2", "3"}, {{"exp", {1.0, 10.0, 100.0}}}, opt);
  const std::string s = out.str();
  EXPECT_NE(s.find("100.00"), std::string::npos);
  EXPECT_NE(s.find("1.00"), std::string::npos);
}

TEST(AsciiPlot, LogScaleRejectsNonPositive) {
  std::ostringstream out;
  PlotOptions opt;
  opt.log_y = true;
  EXPECT_DEATH(
      ascii_plot(out, {"1", "2"}, {{"bad", {0.0, 1.0}}}, opt),
      "positive");
}

TEST(AsciiPlot, MismatchedLengthsAbort) {
  std::ostringstream out;
  EXPECT_DEATH(ascii_plot(out, {"1", "2"}, {{"short", {1.0}}}),
               "length");
}

TEST(AsciiPlot, SinglePointSeries) {
  std::ostringstream out;
  ascii_plot(out, {"only"}, {{"dot", {3.0}}});
  EXPECT_NE(out.str().find('A'), std::string::npos);
}

}  // namespace
}  // namespace dash::util
