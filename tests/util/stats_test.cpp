#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dash::util {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, SingleElement) {
  const Summary s = summarize({4.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, HandComputed) {
  // xs = {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population sd 2,
  // sample sd = sqrt(32/7).
  const Summary s = summarize({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Summary, Ci95Halfwidth) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  const double expected = 1.96 * s.stddev / std::sqrt(5.0);
  EXPECT_NEAR(s.ci95_halfwidth(), expected, 1e-12);
  EXPECT_EQ(summarize({1.0}).ci95_halfwidth(), 0.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{3, 1, 2};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Quantile, LinearInterpolation) {
  // numpy.quantile([0, 10], 0.25) == 2.5 (type-7).
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile({0, 10, 20, 30}, 1.0 / 3.0), 10.0);
}

TEST(OnlineStats, MatchesBatch) {
  const std::vector<double> xs{1.5, -2.0, 3.25, 8.0, 0.0, -1.0};
  OnlineStats on;
  for (double x : xs) on.add(x);
  const Summary batch = summarize(xs);
  EXPECT_EQ(on.count(), batch.count);
  EXPECT_NEAR(on.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(on.stddev(), batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(on.min(), batch.min);
  EXPECT_DOUBLE_EQ(on.max(), batch.max);
}

TEST(OnlineStats, VarianceNeedsTwo) {
  OnlineStats on;
  EXPECT_EQ(on.variance(), 0.0);
  on.add(5.0);
  EXPECT_EQ(on.variance(), 0.0);
  on.add(7.0);
  EXPECT_DOUBLE_EQ(on.variance(), 2.0);  // sample variance of {5,7}
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats left, right, all;
  const std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? left : right).add(xs[i]);
    all.add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(LinearSlope, ExactLine) {
  // y = 3x + 1.
  EXPECT_NEAR(linear_slope({0, 1, 2, 3}, {1, 4, 7, 10}), 3.0, 1e-12);
}

TEST(LinearSlope, Degenerate) {
  EXPECT_EQ(linear_slope({1}, {2}), 0.0);
  EXPECT_EQ(linear_slope({2, 2, 2}, {1, 5, 9}), 0.0);  // vertical
}

}  // namespace
}  // namespace dash::util
