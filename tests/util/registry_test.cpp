#include "util/registry.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dash::util {
namespace {

struct Widget {
  virtual ~Widget() = default;
  virtual int value() const = 0;
};

struct Plain : Widget {
  int value() const override { return 1; }
};

struct Sized : Widget {
  explicit Sized(int v) : v_(v) {}
  int value() const override { return v_; }
  int v_;
};

Registry<Widget> make_registry() {
  Registry<Widget> r("widget");
  r.add("plain",
        [](const std::string&) -> std::unique_ptr<Widget> {
          return std::make_unique<Plain>();
        },
        {"simple"});
  r.add("sized",
        [](const std::string& param) -> std::unique_ptr<Widget> {
          return std::make_unique<Sized>(static_cast<int>(
              parse_spec_uint("sized", param)));
        },
        {}, "sized:<v>");
  return r;
}

TEST(SplitSpec, SplitsNameAndParam) {
  EXPECT_EQ(split_spec("capped:2").name, "capped");
  EXPECT_EQ(split_spec("capped:2").param, "2");
  EXPECT_EQ(split_spec("dash").name, "dash");
  EXPECT_EQ(split_spec("dash").param, "");
  EXPECT_EQ(split_spec("SDASH:4").name, "sdash");  // name is lowercased
  EXPECT_EQ(split_spec("a:b:c").param, "b:c");     // first colon splits
}

TEST(ParseSpecUint, AcceptsIntegersRejectsJunk) {
  EXPECT_EQ(parse_spec_uint("x", "42"), 42u);
  EXPECT_THROW(parse_spec_uint("x", ""), std::invalid_argument);
  EXPECT_THROW(parse_spec_uint("x", "2x"), std::invalid_argument);
  EXPECT_THROW(parse_spec_uint("x", "abc"), std::invalid_argument);
  // stoul alone would accept these; the spec parser must not.
  EXPECT_THROW(parse_spec_uint("x", "-1"), std::invalid_argument);
  EXPECT_THROW(parse_spec_uint("x", " 4"), std::invalid_argument);
  EXPECT_THROW(parse_spec_uint("x", "+3"), std::invalid_argument);
  // The optional bound protects narrower call sites from wrapping.
  EXPECT_EQ(parse_spec_uint("x", "100", 100), 100u);
  EXPECT_THROW(parse_spec_uint("x", "101", 100), std::invalid_argument);
}

TEST(Registry, CreatesByNameAliasAndCase) {
  const auto r = make_registry();
  EXPECT_EQ(r.create("plain")->value(), 1);
  EXPECT_EQ(r.create("simple")->value(), 1);
  EXPECT_EQ(r.create("PLAIN")->value(), 1);
  EXPECT_EQ(r.create("sized:7")->value(), 7);
}

TEST(Registry, Contains) {
  const auto r = make_registry();
  EXPECT_TRUE(r.contains("plain"));
  EXPECT_TRUE(r.contains("sized:3"));
  EXPECT_FALSE(r.contains("bogus"));
}

TEST(Registry, UnknownNameErrorListsRegisteredSpellings) {
  const auto r = make_registry();
  try {
    r.create("bogus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown widget"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'bogus'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("plain"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sized:<v>"), std::string::npos) << msg;
    EXPECT_NE(msg.find("simple"), std::string::npos)
        << "aliases belong in the listing: " << msg;
  }
}

TEST(Registry, NamesInRegistrationOrder) {
  const auto r = make_registry();
  const auto names = r.names();
  ASSERT_EQ(names.size(), 2u);  // aliases are not listed separately
  EXPECT_EQ(names[0], "plain");
  EXPECT_EQ(names[1], "sized:<v>");
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto r = make_registry();
  EXPECT_THROW(r.add("plain",
                     [](const std::string&) -> std::unique_ptr<Widget> {
                       return std::make_unique<Plain>();
                     }),
               std::logic_error);
  // Colliding via an alias is rejected too.
  EXPECT_THROW(r.add("fresh",
                     [](const std::string&) -> std::unique_ptr<Widget> {
                       return std::make_unique<Plain>();
                     },
                     {"simple"}),
               std::logic_error);
}

TEST(Registry, FailedRegistrationLeavesRegistryUnchanged) {
  auto r = make_registry();
  const auto names_before = r.names();
  EXPECT_THROW(r.add("plain",
                     [](const std::string&) -> std::unique_ptr<Widget> {
                       return std::make_unique<Plain>();
                     }),
               std::logic_error);
  EXPECT_THROW(r.add("fresh",
                     [](const std::string&) -> std::unique_ptr<Widget> {
                       return std::make_unique<Plain>();
                     },
                     {"plain"}),
               std::logic_error);
  // Neither the display list nor the lookup table took the rejects:
  // "fresh" never became creatable and names() shows no duplicates.
  EXPECT_EQ(r.names(), names_before);
  EXPECT_FALSE(r.contains("fresh"));
}

TEST(Registry, TrailingColonSpecRejected) {
  const auto r = make_registry();
  EXPECT_THROW(r.create("sized:"), std::invalid_argument);
  EXPECT_THROW(r.create("plain:"), std::invalid_argument);
}

TEST(Registry, ExtraArgsForwardToFactory) {
  Registry<Widget, int> r("seeded widget");
  r.add("offset",
        [](const std::string& param, int seed) -> std::unique_ptr<Widget> {
          const int base =
              param.empty()
                  ? 0
                  : static_cast<int>(parse_spec_uint("offset", param));
          return std::make_unique<Sized>(base + seed);
        });
  EXPECT_EQ(r.create("offset", 5)->value(), 5);
  EXPECT_EQ(r.create("offset:10", 5)->value(), 15);
}

TEST(Registrar, RegistersOnConstruction) {
  Registry<Widget> r("widget");
  const Registrar<Widget> reg(
      r, "late", [](const std::string&) -> std::unique_ptr<Widget> {
        return std::make_unique<Plain>();
      });
  EXPECT_TRUE(r.contains("late"));
  EXPECT_EQ(r.create("late")->value(), 1);
}

}  // namespace
}  // namespace dash::util
