#include "util/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace dash::util {
namespace {

/// Helper: build argv from string literals.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(Cli, ParsesAllTypes) {
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  std::string s;
  bool flag = false;

  Options opt("test");
  opt.add_int("int", &i, "an int");
  opt.add_uint("uint", &u, "a uint");
  opt.add_double("double", &d, "a double");
  opt.add_string("string", &s, "a string");
  opt.add_flag("flag", &flag, "a flag");

  Argv args({"prog", "--int", "-5", "--uint=7", "--double", "2.5",
             "--string=hello", "--flag"});
  ASSERT_TRUE(opt.parse(args.argc(), args.argv()));
  EXPECT_EQ(i, -5);
  EXPECT_EQ(u, 7u);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(flag);
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  std::int64_t i = 42;
  Options opt("test");
  opt.add_int("int", &i, "an int");
  Argv args({"prog"});
  ASSERT_TRUE(opt.parse(args.argc(), args.argv()));
  EXPECT_EQ(i, 42);
}

TEST(Cli, RejectsUnknownOption) {
  Options opt("test");
  Argv args({"prog", "--nope", "1"});
  EXPECT_FALSE(opt.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsBadInt) {
  std::int64_t i = 0;
  Options opt("test");
  opt.add_int("int", &i, "an int");
  Argv args({"prog", "--int", "abc"});
  EXPECT_FALSE(opt.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsNegativeUint) {
  std::uint64_t u = 0;
  Options opt("test");
  opt.add_uint("uint", &u, "a uint");
  Argv args({"prog", "--uint", "-3"});
  EXPECT_FALSE(opt.parse(args.argc(), args.argv()));
}

TEST(Cli, RejectsMissingValue) {
  std::int64_t i = 0;
  Options opt("test");
  opt.add_int("int", &i, "an int");
  Argv args({"prog", "--int"});
  EXPECT_FALSE(opt.parse(args.argc(), args.argv()));
}

TEST(Cli, HelpShortCircuits) {
  Options opt("test");
  Argv args({"prog", "--help"});
  EXPECT_FALSE(opt.parse(args.argc(), args.argv()));
  EXPECT_TRUE(opt.help_requested());
}

TEST(Cli, FlagWithExplicitValue) {
  bool flag = true;
  Options opt("test");
  opt.add_flag("flag", &flag, "a flag");
  Argv args({"prog", "--flag=false"});
  ASSERT_TRUE(opt.parse(args.argc(), args.argv()));
  EXPECT_FALSE(flag);
}

TEST(Cli, UsageMentionsOptionsAndDefaults) {
  std::int64_t i = 9;
  Options opt("my tool");
  opt.add_int("count", &i, "how many");
  const std::string u = opt.usage();
  EXPECT_NE(u.find("my tool"), std::string::npos);
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("default: 9"), std::string::npos);
}

TEST(Cli, RejectsPositional) {
  Options opt("test");
  Argv args({"prog", "positional"});
  EXPECT_FALSE(opt.parse(args.argc(), args.argv()));
}

}  // namespace
}  // namespace dash::util
