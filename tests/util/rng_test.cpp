#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace dash::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  // Each bucket expects 10000; allow 5% deviation (many sigma).
  for (auto c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, 500);
  }
}

TEST(Rng, InRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.in_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleCoversPositions) {
  // Element 0 should land in many distinct positions across shuffles.
  Rng rng(23);
  std::set<std::size_t> positions;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> v(10);
    std::iota(v.begin(), v.end(), 0);
    rng.shuffle(v);
    positions.insert(static_cast<std::size_t>(
        std::find(v.begin(), v.end(), 0) - v.begin()));
  }
  EXPECT_EQ(positions.size(), 10u);
}

TEST(Rng, PickReturnsElements) {
  Rng rng(29);
  const std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 5 || x == 6 || x == 7);
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng childA = parent.fork(1);
  Rng childB = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childA.next_u64() == childB.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsDeterministicGivenParentState) {
  Rng p1(37), p2(37);
  Rng c1 = p1.fork(9);
  Rng c2 = p2.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitMix64KnownSequenceDistinct) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  const auto c = splitmix64(s);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace dash::util
