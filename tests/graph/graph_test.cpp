#include "graph/graph.h"

#include <gtest/gtest.h>

namespace dash::graph {
namespace {

TEST(Graph, StartsIsolatedAndAlive) {
  Graph g(5);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_alive(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_TRUE(g.alive(v));
    EXPECT_EQ(g.degree(v), 0u);
  }
}

TEST(Graph, AddEdgeIsSymmetricAndIdempotent) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate, reversed
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, AdjacencyStaysSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(2, 1);
  const auto nbrs = g.neighbors(2);
  EXPECT_EQ(std::vector<NodeId>(nbrs.begin(), nbrs.end()),
            (std::vector<NodeId>{0, 1, 3, 4}));
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, DeleteNodeReturnsNeighborsAndCleansUp) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);

  const auto nbrs = g.delete_node(2);
  EXPECT_EQ(nbrs, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_FALSE(g.alive(2));
  EXPECT_EQ(g.num_alive(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);  // only {0,1} remains
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Graph, DeleteIsolatedNode) {
  Graph g(2);
  const auto nbrs = g.delete_node(0);
  EXPECT_TRUE(nbrs.empty());
  EXPECT_EQ(g.num_alive(), 1u);
}

TEST(Graph, HasEdgeFalseForDeadEndpoint) {
  Graph g(3);
  g.add_edge(0, 1);
  g.delete_node(1);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, AddNodeExtends) {
  Graph g(2);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.alive(v));
  g.add_edge(v, 0);
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, AliveNodesAscending) {
  Graph g(5);
  g.delete_node(1);
  g.delete_node(3);
  EXPECT_EQ(g.alive_nodes(), (std::vector<NodeId>{0, 2, 4}));
}

TEST(Graph, OperationsOnDeadNodeAbort) {
  Graph g(3);
  g.delete_node(1);
  EXPECT_DEATH(g.add_edge(0, 1), "deleted node");
  EXPECT_DEATH(g.delete_node(1), "deleted node");
  EXPECT_DEATH((void)g.neighbors(1), "deleted node");
}

TEST(Graph, SelfLoopAborts) {
  Graph g(2);
  EXPECT_DEATH(g.add_edge(1, 1), "self-loop");
}

TEST(Graph, SameTopology) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_TRUE(a.same_topology(b));
  b.add_edge(1, 2);
  EXPECT_FALSE(a.same_topology(b));
  a.add_edge(1, 2);
  EXPECT_TRUE(a.same_topology(b));
  a.delete_node(2);
  EXPECT_FALSE(a.same_topology(b));
  b.delete_node(2);
  EXPECT_TRUE(a.same_topology(b));
}

TEST(Graph, EdgeCountTracksDeletions) {
  Graph g(10);
  for (NodeId v = 1; v < 10; ++v) g.add_edge(0, v);
  EXPECT_EQ(g.num_edges(), 9u);
  g.delete_node(0);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace dash::graph
