#include "graph/traversal.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_graph(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableAndDeadNodes) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  g.delete_node(1);
  const auto dist2 = bfs_distances(g, 0);
  EXPECT_EQ(dist2[1], kUnreachable);
}

TEST(Bfs, PairDistanceEarlyExit) {
  const Graph g = cycle_graph(10);
  EXPECT_EQ(bfs_distance(g, 0, 5), 5u);
  EXPECT_EQ(bfs_distance(g, 0, 9), 1u);
  EXPECT_EQ(bfs_distance(g, 3, 3), 0u);
}

TEST(Bfs, PairDistanceDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(bfs_distance(g, 0, 2), kUnreachable);
}

TEST(Connectivity, DetectsDisconnect) {
  Graph g = path_graph(5);
  EXPECT_TRUE(is_connected(g));
  g.delete_node(2);
  EXPECT_FALSE(is_connected(g));
}

TEST(Connectivity, TrivialCases) {
  Graph empty(0);
  EXPECT_TRUE(is_connected(empty));
  Graph one(1);
  EXPECT_TRUE(is_connected(one));
  Graph two(2);
  EXPECT_FALSE(is_connected(two));
}

TEST(Components, LabelsAndSizes) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count(), 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comps.largest(), 3u);
  EXPECT_EQ(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[0], comps.label[3]);
  EXPECT_EQ(comps.sizes[comps.label[5]], 1u);
}

TEST(Components, SkipsDeadNodes) {
  Graph g = path_graph(3);
  g.delete_node(1);
  const auto comps = connected_components(g);
  EXPECT_EQ(comps.count(), 2u);
  EXPECT_EQ(comps.label[1], kInvalidComponent);
}

TEST(Eccentricity, StarCenterVsLeaf) {
  const Graph g = star_graph(10);
  EXPECT_EQ(eccentricity(g, 0), 1u);
  EXPECT_EQ(eccentricity(g, 5), 2u);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(path_graph(6)), 5u);
  EXPECT_EQ(diameter(cycle_graph(6)), 3u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
  EXPECT_EQ(diameter(star_graph(7)), 2u);
}

TEST(Diameter, DisconnectedIsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(diameter(g), kUnreachable);
}

TEST(AllPairs, MatchesSingleSource) {
  dash::util::Rng rng(99);
  const Graph g = barabasi_albert(40, 2, rng);
  const auto mat = all_pairs_distances(g);
  for (NodeId v = 0; v < g.num_nodes(); v += 7) {
    const auto dist = bfs_distances(g, v);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_EQ(mat[v * g.num_nodes() + u], dist[u]);
    }
  }
}

TEST(AllPairs, DeadRowsUnreachable) {
  Graph g = path_graph(3);
  g.delete_node(0);
  const auto mat = all_pairs_distances(g);
  for (NodeId u = 0; u < 3; ++u) EXPECT_EQ(mat[0 * 3 + u], kUnreachable);
  EXPECT_EQ(mat[1 * 3 + 2], 1u);
}

}  // namespace
}  // namespace dash::graph
