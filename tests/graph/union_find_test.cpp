#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace dash::graph {
namespace {

TEST(UnionFind, InitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_EQ(uf.set_size(2), 1u);
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.set_size(0), 2u);
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_TRUE(uf.connected(3, 4));
  EXPECT_FALSE(uf.connected(2, 3));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 4));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(4), 5u);
}

TEST(UnionFind, ResetRestores) {
  UnionFind uf(3);
  uf.unite(0, 1);
  uf.reset(2);
  EXPECT_EQ(uf.size(), 2u);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, LargeChainCompresses) {
  constexpr std::size_t kN = 10000;
  UnionFind uf(kN);
  for (NodeId v = 1; v < kN; ++v) uf.unite(v - 1, v);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.connected(0, kN - 1));
  EXPECT_EQ(uf.set_size(0), kN);
}

TEST(UnionFind, FindOutOfRangeAborts) {
  UnionFind uf(2);
  EXPECT_DEATH(uf.find(5), "");
}

}  // namespace
}  // namespace dash::graph
