#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace dash::graph {
namespace {

TEST(UnionFind, InitiallyDisjoint) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_FALSE(uf.connected(0, 1));
  EXPECT_EQ(uf.set_size(2), 1u);
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_EQ(uf.set_size(0), 2u);
  EXPECT_FALSE(uf.unite(1, 0));  // already joined
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_TRUE(uf.connected(3, 4));
  EXPECT_FALSE(uf.connected(2, 3));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 4));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_EQ(uf.set_size(4), 5u);
}

TEST(UnionFind, ResetRestores) {
  UnionFind uf(3);
  uf.unite(0, 1);
  uf.reset(2);
  EXPECT_EQ(uf.size(), 2u);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFind, LargeChainCompresses) {
  constexpr std::size_t kN = 10000;
  UnionFind uf(kN);
  for (NodeId v = 1; v < kN; ++v) uf.unite(v - 1, v);
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.connected(0, kN - 1));
  EXPECT_EQ(uf.set_size(0), kN);
}

TEST(UnionFind, FindOutOfRangeAborts) {
  UnionFind uf(2);
  EXPECT_DEATH(uf.find(5), "");
}

TEST(UnionFind, UniteReportNamesSurvivorAndAbsorbed) {
  UnionFind uf(4);
  uf.unite(0, 1);  // {0,1} size 2
  const auto merged = uf.unite_report(2, 0);
  EXPECT_TRUE(merged.merged);
  EXPECT_EQ(merged.root, uf.find(0));       // larger set's root survives
  EXPECT_NE(merged.root, merged.absorbed);  // absorbed was 2's old root
  const auto again = uf.unite_report(1, 2);
  EXPECT_FALSE(again.merged);
  EXPECT_EQ(again.root, again.absorbed);
  EXPECT_EQ(again.root, uf.find(1));
}

TEST(UnionFind, AddAppendsSingleton) {
  UnionFind uf(2);
  uf.unite(0, 1);
  const NodeId v = uf.add();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(uf.size(), 3u);
  EXPECT_EQ(uf.num_sets(), 2u);
  EXPECT_FALSE(uf.connected(0, v));
  uf.unite(v, 0);
  EXPECT_EQ(uf.set_size(v), 3u);
}

TEST(UnionFind, RerootCarvesOutFreshSet) {
  UnionFind uf(6);
  for (NodeId v = 1; v < 6; ++v) uf.unite(0, v);
  // Split {0..5} into {0,1,2} and {3,4,5}, as the rebuild path does
  // after an uncertified deletion.
  const std::vector<NodeId> left{0, 1, 2};
  const std::vector<NodeId> right{3, 4, 5};
  uf.reroot(left);
  uf.reroot(right);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_TRUE(uf.connected(3, 5));
  EXPECT_FALSE(uf.connected(2, 3));
  EXPECT_EQ(uf.find(1), 0u);
  EXPECT_EQ(uf.find(4), 3u);
}

}  // namespace
}  // namespace dash::graph
