// Slab/pool layout mechanics of graph::Graph: block growth and
// recycling, the touched log, copy/uid semantics, and a randomized
// differential against a naive reference model -- the behavioral
// contract the historical vector-of-vectors layout set.
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

std::vector<NodeId> nbrs_of(const Graph& g, NodeId v) {
  const auto span = g.neighbors(v);
  return {span.begin(), span.end()};
}

TEST(SlabGraph, BlocksDoubleAndStaySorted) {
  Graph g(20);
  // Descending inserts exercise the insertion hole at index 0 through
  // several doublings (cap 2 -> 4 -> 8 -> 16).
  for (NodeId u = 10; u >= 1; --u) g.add_edge(0, u);
  std::vector<NodeId> want;
  for (NodeId u = 1; u <= 10; ++u) want.push_back(u);
  EXPECT_EQ(nbrs_of(g, 0), want);
  EXPECT_EQ(g.degree(0), 10u);
}

TEST(SlabGraph, DeleteRecyclesBlocksAndReusesThem) {
  Graph g(10);
  for (NodeId u = 1; u <= 8; ++u) g.add_edge(0, u);
  const std::size_t grown = g.slab_size();
  EXPECT_EQ(g.slab_free_entries(),
            grown - (8 /*node 0*/ + 8 * 2 /*leaves' cap-2 blocks*/));
  const std::size_t free_before = g.slab_free_entries();
  g.delete_node(0);
  // Node 0's cap-8 block is back on the free lists; the surviving
  // leaves keep their (now empty) cap-2 blocks. Nothing shrank.
  EXPECT_EQ(g.slab_size(), grown);
  EXPECT_EQ(g.slab_free_entries(), free_before + 8);
  // A new hub rebuilt to the same shape must reuse recycled blocks
  // instead of extending the slab.
  for (NodeId u = 2; u <= 8; ++u) g.add_edge(1, u);
  EXPECT_EQ(g.slab_size(), grown);
}

TEST(SlabGraph, ReserveNeighborsSkipsDoublingWithoutTopologyChange) {
  Graph g(5);
  const std::uint64_t gen = g.generation();
  g.reserve_neighbors(0, 8);
  EXPECT_EQ(g.generation(), gen);  // capacity only, no topology change
  const std::size_t grown = g.slab_size();
  for (NodeId u = 1; u <= 4; ++u) g.add_edge(0, u);
  EXPECT_EQ(g.slab_size(), grown + 4 * 2);  // only the leaves allocated
  EXPECT_EQ(nbrs_of(g, 0), (std::vector<NodeId>{1, 2, 3, 4}));
}

TEST(SlabGraph, TouchedLogAdvancesAndCompacts) {
  Graph g(4);
  const std::uint64_t end0 = g.touched_end();
  g.add_edge(0, 1);
  EXPECT_EQ(g.touched_end(), end0 + 2);  // both endpoints logged
  EXPECT_LE(g.touched_end() - g.touched_begin(), g.touched_log().size());
  // Force compaction: the retained window is capped at max(256, 2n).
  for (int i = 0; i < 200; ++i) {
    g.add_edge(2, 3);
    g.remove_edge(2, 3);
  }
  EXPECT_GT(g.touched_begin(), 0u);
  EXPECT_LE(g.touched_log().size(), 256u);
  EXPECT_EQ(g.touched_end() - g.touched_begin(), g.touched_log().size());
}

TEST(SlabGraph, CopiesGetFreshUidsAndIndependentState) {
  Graph a(4);
  a.add_edge(0, 1);
  Graph b(a);
  EXPECT_NE(a.uid(), b.uid());
  EXPECT_TRUE(a.same_topology(b));
  b.add_edge(2, 3);
  EXPECT_FALSE(a.same_topology(b));
  EXPECT_FALSE(a.has_edge(2, 3));

  Graph c(1);
  c = a;
  EXPECT_NE(c.uid(), a.uid());
  EXPECT_TRUE(c.same_topology(a));
}

TEST(SlabGraph, RandomizedDifferentialAgainstSetModel) {
  util::Rng rng(0x51ab);
  Graph g(24);
  std::vector<std::set<NodeId>> model(24);
  std::vector<bool> alive(24, true);
  std::size_t edges = 0;

  for (int step = 0; step < 4000; ++step) {
    const auto op = rng.below(100);
    if (op < 45) {  // add_edge
      const NodeId a = static_cast<NodeId>(rng.below(model.size()));
      const NodeId b = static_cast<NodeId>(rng.below(model.size()));
      if (a == b || !alive[a] || !alive[b]) continue;
      const bool fresh = g.add_edge(a, b);
      EXPECT_EQ(fresh, model[a].insert(b).second);
      model[b].insert(a);
      if (fresh) ++edges;
    } else if (op < 70) {  // remove_edge
      const NodeId a = static_cast<NodeId>(rng.below(model.size()));
      const NodeId b = static_cast<NodeId>(rng.below(model.size()));
      if (a == b || !alive[a] || !alive[b]) continue;
      const bool had = g.remove_edge(a, b);
      EXPECT_EQ(had, model[a].erase(b) > 0);
      model[b].erase(a);
      if (had) --edges;
    } else if (op < 85) {  // delete_node
      const NodeId v = static_cast<NodeId>(rng.below(model.size()));
      if (!alive[v]) continue;
      const auto survivors = g.delete_node(v);
      EXPECT_EQ(survivors,
                std::vector<NodeId>(model[v].begin(), model[v].end()));
      for (const NodeId u : model[v]) model[u].erase(v);
      edges -= model[v].size();
      model[v].clear();
      alive[v] = false;
    } else if (op < 95) {  // add_node
      const NodeId v = g.add_node();
      EXPECT_EQ(v, model.size());
      model.emplace_back();
      alive.push_back(true);
    } else {  // reserve_neighbors
      const NodeId v = static_cast<NodeId>(rng.below(model.size()));
      if (!alive[v]) continue;
      g.reserve_neighbors(v, 1 + rng.below(16));
    }

    if (step % 97 == 0) {  // full cross-check, amortized
      ASSERT_EQ(g.num_edges(), edges);
      for (NodeId v = 0; v < model.size(); ++v) {
        ASSERT_EQ(g.alive(v), static_cast<bool>(alive[v]));
        if (!alive[v]) continue;
        ASSERT_EQ(nbrs_of(g, v),
                  std::vector<NodeId>(model[v].begin(), model[v].end()))
            << "node " << v << " at step " << step;
      }
    }
  }
}

}  // namespace
}  // namespace dash::graph
