#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

TEST(Io, RoundTripPreservesTopology) {
  dash::util::Rng rng(1);
  Graph g = barabasi_albert(50, 2, rng);
  g.delete_node(10);
  g.delete_node(33);

  std::stringstream buf;
  write_edge_list(buf, g);
  const Graph back = read_edge_list(buf);
  EXPECT_TRUE(g.same_topology(back));
}

TEST(Io, EmptyGraph) {
  std::stringstream buf;
  write_edge_list(buf, Graph(0));
  const Graph back = read_edge_list(buf);
  EXPECT_EQ(back.num_nodes(), 0u);
}

TEST(Io, CommentsAreIgnored) {
  std::istringstream in("# hello\n3\n# another\n0 1\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Io, MalformedInputThrows) {
  {
    std::istringstream in("abc\n");
    EXPECT_THROW(read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("3\n0 9\n");  // endpoint out of range
    EXPECT_THROW(read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("3\n1 1\n");  // self loop
    EXPECT_THROW(read_edge_list(in), std::runtime_error);
  }
  {
    std::istringstream in("");  // missing header
    EXPECT_THROW(read_edge_list(in), std::runtime_error);
  }
}

TEST(Metrics, MaxAndArgmaxDegree) {
  const Graph g = star_graph(6);
  EXPECT_EQ(max_degree(g), 5u);
  EXPECT_EQ(argmax_degree(g), 0u);
}

TEST(Metrics, ArgmaxTiesGoToLowestId) {
  const Graph g = path_graph(4);  // degrees 1,2,2,1
  EXPECT_EQ(argmax_degree(g), 1u);
}

TEST(Metrics, EmptyGraphDefaults) {
  Graph g(0);
  EXPECT_EQ(max_degree(g), 0u);
  EXPECT_EQ(argmax_degree(g), kInvalidNode);
  EXPECT_EQ(average_degree(g), 0.0);
}

TEST(Metrics, AverageDegree) {
  const Graph g = cycle_graph(10);
  EXPECT_DOUBLE_EQ(average_degree(g), 2.0);
}

TEST(Metrics, DegreeHistogram) {
  const Graph g = star_graph(5);  // one degree-4 hub, four degree-1 leaves
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
  EXPECT_EQ(hist[0], 0u);
}

TEST(Metrics, HistogramSkipsDead) {
  Graph g = star_graph(5);
  g.delete_node(0);
  const auto hist = degree_histogram(g);
  ASSERT_EQ(hist.size(), 1u);
  EXPECT_EQ(hist[0], 4u);  // all leaves now isolated
}

}  // namespace
}  // namespace dash::graph
