#include "graph/non_index.h"

#include <gtest/gtest.h>

#include "core/dash.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

using dash::util::Rng;

TEST(NonIndex, InitialKnowledgeOnPath) {
  // Path 0-1-2-3: node 0 knows 1 (direct) and 2 (via 1) but not 3.
  const Graph g = path_graph(4);
  const NonIndex non(g);
  EXPECT_TRUE(non.knows(0, 0));
  EXPECT_TRUE(non.knows(0, 1));
  EXPECT_TRUE(non.knows(0, 2));
  EXPECT_FALSE(non.knows(0, 3));
  EXPECT_TRUE(non.knows(1, 3));
  EXPECT_EQ(non.knowledge_size(0), 2u);
  EXPECT_EQ(non.knowledge_size(1), 3u);
}

TEST(NonIndex, StarHubAndLeaves) {
  const Graph g = star_graph(5);
  const NonIndex non(g);
  // Every leaf knows every other leaf through the hub.
  for (NodeId a = 1; a < 5; ++a) {
    for (NodeId b = 1; b < 5; ++b) {
      EXPECT_TRUE(non.knows(a, b));
    }
  }
  EXPECT_EQ(non.knowledge_size(1), 4u);
}

TEST(NonIndex, AddEdgeUpdatesBothSides) {
  Graph g = path_graph(4);
  NonIndex non(g);
  g.add_edge(0, 3);
  non.on_add_edge(g, 0, 3);
  EXPECT_TRUE(non.knows(0, 3));
  EXPECT_TRUE(non.knows(1, 3));  // via 0
  EXPECT_TRUE(non.knows(2, 0));  // via 3 (and via 1)
  EXPECT_TRUE(non.consistent_with(g));
}

TEST(NonIndex, DeleteNodeForgetsPathsThroughIt) {
  Graph g = path_graph(4);
  NonIndex non(g);
  const auto nbrs = g.delete_node(1);
  non.on_delete_node(g, 1, nbrs);
  EXPECT_FALSE(non.knows(0, 2));
  EXPECT_FALSE(non.knows(0, 1));
  EXPECT_TRUE(non.knows(2, 3));
  EXPECT_TRUE(non.consistent_with(g));
}

TEST(NonIndex, RedundantPathsSurviveSingleRemoval) {
  // Diamond: 0-1, 0-2, 1-3, 2-3. Node 0 knows 3 via both 1 and 2;
  // deleting 1 must keep 0's knowledge of 3 through 2.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  NonIndex non(g);
  EXPECT_TRUE(non.knows(0, 3));
  const auto nbrs = g.delete_node(1);
  non.on_delete_node(g, 1, nbrs);
  EXPECT_TRUE(non.knows(0, 3));
  EXPECT_TRUE(non.consistent_with(g));
}

TEST(NonIndex, MaintenanceMessagesAccumulate) {
  Graph g = path_graph(3);
  NonIndex non(g);
  const auto before = non.maintenance_messages();
  g.add_edge(0, 2);
  non.on_add_edge(g, 0, 2);
  EXPECT_GT(non.maintenance_messages(), before);
}

TEST(NonIndex, RandomMutationSequenceStaysConsistent) {
  Rng rng(7);
  Graph g = barabasi_albert(40, 2, rng);
  NonIndex non(g);
  Rng pick(11);
  for (int step = 0; step < 60 && g.num_alive() > 3; ++step) {
    if (pick.chance(0.5)) {
      // Random edge insertion between distinct alive non-adjacent nodes.
      const auto alive = g.alive_nodes();
      const NodeId a =
          alive[static_cast<std::size_t>(pick.below(alive.size()))];
      const NodeId b =
          alive[static_cast<std::size_t>(pick.below(alive.size()))];
      if (a != b && !g.has_edge(a, b)) {
        g.add_edge(a, b);
        non.on_add_edge(g, a, b);
      }
    } else {
      const auto alive = g.alive_nodes();
      const NodeId v =
          alive[static_cast<std::size_t>(pick.below(alive.size()))];
      const auto nbrs = g.delete_node(v);
      non.on_delete_node(g, v, nbrs);
    }
    ASSERT_TRUE(non.consistent_with(g)) << "step " << step;
  }
}

TEST(NonIndex, SufficesForDashReconnection) {
  // The paper's locality claim: every pair in a deletion's
  // reconnection set is mutually known via the deleted node, so the RT
  // can be computed from NoN knowledge alone. Verify along a schedule.
  Rng rng(13);
  Graph g = barabasi_albert(64, 2, rng);
  NonIndex non(g);
  core::HealingState st(g, rng);
  core::DashStrategy dash;
  Rng pick(17);
  while (g.num_alive() > 2) {
    const auto alive = g.alive_nodes();
    const NodeId v =
        alive[static_cast<std::size_t>(pick.below(alive.size()))];

    // Check *before* the deletion: all future RT members know each
    // other (they are all neighbors of v).
    const auto& nbrs_of_v = g.neighbors(v);
    for (NodeId a : nbrs_of_v) {
      for (NodeId b : nbrs_of_v) {
        ASSERT_TRUE(non.knows(a, b))
            << a << " does not know " << b << " around victim " << v;
      }
    }

    const core::DeletionContext ctx = st.begin_deletion(g, v);
    const auto nbrs = g.delete_node(v);
    non.on_delete_node(g, v, nbrs);
    const auto action = dash.heal(g, st, ctx);
    for (auto [a, b] : action.new_graph_edges) {
      non.on_add_edge(g, a, b);
    }
    ASSERT_TRUE(non.consistent_with(g));
  }
}

}  // namespace
}  // namespace dash::graph
