// dynamic_connectivity_test.cpp -- unit tests for the incremental
// connectivity tracker plus a differential harness that replays
// thousands of randomized insert/delete schedules (seeded; shrinking to
// a minimal failing schedule on mismatch) against the BFS ground truth
// in graph/traversal.h after every single operation.
#include "graph/dynamic_connectivity.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

using dash::util::Rng;

/// Full structural comparison against a fresh BFS labelling.
::testing::AssertionResult matches_truth(DynamicConnectivity& dc,
                                         const Graph& g) {
  const Components truth = connected_components(g);
  if (dc.component_count() != truth.count()) {
    return ::testing::AssertionFailure()
           << "component_count " << dc.component_count() << " != BFS "
           << truth.count();
  }
  if (dc.largest_component() != truth.largest()) {
    return ::testing::AssertionFailure()
           << "largest_component " << dc.largest_component() << " != BFS "
           << truth.largest();
  }
  if (dc.connected() != is_connected(g)) {
    return ::testing::AssertionFailure()
           << "connected() " << dc.connected() << " != BFS "
           << is_connected(g);
  }
  std::vector<NodeId> rep(truth.count(), kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    const std::uint32_t label = truth.label[v];
    if (rep[label] == kInvalidNode) {
      rep[label] = v;
      if (dc.component_size(v) != truth.sizes[label]) {
        return ::testing::AssertionFailure()
               << "component_size(" << v << ") " << dc.component_size(v)
               << " != BFS " << truth.sizes[label];
      }
    } else if (!dc.same_component(v, rep[label])) {
      return ::testing::AssertionFailure()
             << "tracker splits BFS-connected " << v << " and "
             << rep[label];
    }
  }
  return ::testing::AssertionSuccess();
}

// ---- unit tests -----------------------------------------------------------

TEST(DynamicConnectivity, SnapshotsInitialStructure) {
  Rng rng(1);
  const Graph g = barabasi_albert(64, 2, rng);
  DynamicConnectivity dc(g);
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.component_count(), 1u);
  EXPECT_EQ(dc.largest_component(), 64u);
  EXPECT_EQ(dc.rebuilds(), 0u);
}

TEST(DynamicConnectivity, SnapshotsDisconnectedGraph) {
  Graph g(5);  // isolated nodes
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  DynamicConnectivity dc(g);
  EXPECT_FALSE(dc.connected());
  EXPECT_EQ(dc.component_count(), 3u);
  EXPECT_EQ(dc.largest_component(), 2u);
  EXPECT_TRUE(dc.same_component(0, 1));
  EXPECT_FALSE(dc.same_component(1, 2));
  EXPECT_EQ(dc.component_size(4), 1u);
}

TEST(DynamicConnectivity, EmptyAndSingletonAreConnected) {
  Graph empty(0);
  DynamicConnectivity dc0(empty);
  EXPECT_TRUE(dc0.connected());
  EXPECT_EQ(dc0.component_count(), 0u);
  EXPECT_EQ(dc0.largest_component(), 0u);

  Graph one(1);
  DynamicConnectivity dc1(one);
  EXPECT_TRUE(dc1.connected());
  EXPECT_EQ(dc1.component_count(), 1u);
}

TEST(DynamicConnectivity, EdgeInsertionMerges) {
  Graph g(4);
  DynamicConnectivity dc(g);
  EXPECT_EQ(dc.component_count(), 4u);
  g.add_edge(0, 1);
  dc.edge_added(0, 1);
  g.add_edge(2, 3);
  dc.edge_added(2, 3);
  EXPECT_EQ(dc.component_count(), 2u);
  g.add_edge(1, 2);
  dc.edge_added(1, 2);
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.largest_component(), 4u);
  EXPECT_EQ(dc.rebuilds(), 0u);  // insert-only: pure union-find
}

TEST(DynamicConnectivity, CertifiedDeletionSkipsRescan) {
  // Triangle: deleting any corner leaves the other two adjacent, so the
  // caller can certify no split -- the O(alpha) fast path.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  DynamicConnectivity dc(g);
  const auto survivors = g.delete_node(0);
  dc.node_removed(0, survivors, /*may_split=*/false);
  EXPECT_FALSE(dc.rescan_pending());
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.component_count(), 1u);
  EXPECT_EQ(dc.largest_component(), 2u);
  EXPECT_EQ(dc.rebuilds(), 0u);
}

TEST(DynamicConnectivity, UncertifiedDeletionRescansAffectedComponent) {
  // Star: deleting the hub shatters the component into leaves.
  Graph g = star_graph(5);
  DynamicConnectivity dc(g);
  const auto survivors = g.delete_node(0);
  dc.node_removed(0, survivors, /*may_split=*/true);
  EXPECT_TRUE(dc.rescan_pending());
  EXPECT_EQ(dc.component_count(), 4u);  // query flushed the re-scan
  EXPECT_FALSE(dc.rescan_pending());
  EXPECT_EQ(dc.largest_component(), 1u);
  EXPECT_EQ(dc.rebuilds(), 1u);
  EXPECT_EQ(dc.nodes_rescanned(), 4u);  // only the affected component
}

TEST(DynamicConnectivity, SingleSurvivorNeverSplits) {
  // Path 0-1-2: deleting the endpoint 0 leaves one survivor; no split
  // is possible and no re-scan may be queued even without certificate.
  Graph g = path_graph(3);
  DynamicConnectivity dc(g);
  const auto survivors = g.delete_node(0);
  ASSERT_EQ(survivors.size(), 1u);
  dc.node_removed(0, survivors, /*may_split=*/true);
  EXPECT_FALSE(dc.rescan_pending());
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.rebuilds(), 0u);
}

TEST(DynamicConnectivity, EdgeRemovalResolvedLazily) {
  Graph g = path_graph(4);
  DynamicConnectivity dc(g);
  g.remove_edge(1, 2);
  dc.edge_removed(1, 2);
  EXPECT_TRUE(dc.rescan_pending());
  EXPECT_FALSE(dc.connected());
  EXPECT_EQ(dc.component_count(), 2u);
  EXPECT_EQ(dc.largest_component(), 2u);

  // Removing a cycle chord must NOT split.
  Graph c = cycle_graph(4);
  DynamicConnectivity dcc(c);
  c.remove_edge(0, 1);
  dcc.edge_removed(0, 1);
  EXPECT_TRUE(dcc.connected());
  EXPECT_EQ(dcc.component_count(), 1u);
}

TEST(DynamicConnectivity, NodeAdditionGrowsIdSpace) {
  Graph g = path_graph(2);
  DynamicConnectivity dc(g);
  const NodeId v = g.add_node();
  dc.node_added(v);
  EXPECT_EQ(dc.component_count(), 2u);
  g.add_edge(v, 0);
  dc.edge_added(v, 0);
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.component_size(v), 3u);
}

TEST(DynamicConnectivity, CertifiedDeletionOfSeedHandsDutyToSurvivor) {
  // Line 0-1-2-3. Cutting {1,2} seeds nodes 1 and 2; then deleting
  // seed 2 with a certificate must hand its duty to survivor 3, so the
  // flush still discovers the {3} piece.
  Graph g = path_graph(4);
  DynamicConnectivity dc(g);
  g.remove_edge(1, 2);
  dc.edge_removed(1, 2);
  const auto survivors = g.delete_node(2);
  ASSERT_EQ(survivors, std::vector<NodeId>{3});
  dc.node_removed(2, survivors, /*may_split=*/false);
  EXPECT_EQ(dc.component_count(), 2u);
  EXPECT_TRUE(dc.same_component(0, 1));
  EXPECT_EQ(dc.component_size(3), 1u);
}

TEST(DynamicConnectivity, BatchRemovalSeedsAllSurvivors) {
  // Path 0-1-2-3-4: batch-deleting {1,3} leaves {0}, {2}, {4}.
  Graph g = path_graph(5);
  DynamicConnectivity dc(g);
  const std::vector<NodeId> batch{1, 3};
  std::vector<NodeId> survivors{0, 2, 4};  // union of batch neighbors
  for (NodeId v : batch) g.delete_node(v);
  dc.batch_removed(batch, survivors, /*may_split=*/true);
  EXPECT_EQ(dc.component_count(), 3u);
  EXPECT_EQ(dc.largest_component(), 1u);
}

TEST(DynamicConnectivity, CertifiedBatchSkipsRescan) {
  // Cycle 0-1-2-3-4-5-0: batch-deleting adjacent {1,2} leaves the path
  // 3-4-5-0, which stays connected -- a certifiable batch round.
  Graph g = path_graph(6);
  g.add_edge(0, 5);
  DynamicConnectivity dc(g);
  dc.edge_added(0, 5);
  const std::vector<NodeId> batch{1, 2};
  for (NodeId v : batch) g.delete_node(v);
  const std::vector<NodeId> survivors{0, 3};
  dc.batch_removed(batch, survivors, /*may_split=*/false);
  EXPECT_FALSE(dc.rescan_pending());
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.rebuilds(), 0u);
  EXPECT_EQ(dc.component_size(0), 4u);
}

TEST(DynamicConnectivity, CertifiedBatchOfSeedsHandsDutyToSurvivor) {
  // Cycle 0-1-2-3-4-0. Cutting {1,2} seeds 1 and 2 (the tracker cannot
  // see the cycle still holds). Batch-deleting {1,2} leaves 0-4-3 with
  // survivors {0,3} mutually connected -- a valid certificate -- but
  // the dead members carried pending seed duty, so a survivor must
  // inherit it and the flush must re-scan the remnant correctly.
  Graph g = path_graph(5);
  g.add_edge(0, 4);
  DynamicConnectivity dc(g);
  dc.edge_added(0, 4);
  g.remove_edge(1, 2);
  dc.edge_removed(1, 2);
  const std::vector<NodeId> batch{1, 2};
  for (NodeId v : batch) g.delete_node(v);
  dc.batch_removed(batch, {0, 3}, /*may_split=*/false);
  EXPECT_TRUE(dc.rescan_pending());
  EXPECT_TRUE(dc.connected());
  EXPECT_EQ(dc.component_count(), 1u);
  EXPECT_EQ(dc.component_size(0), 3u);
}

TEST(DynamicConnectivity, QueriesOnDeadNodesAbort) {
  Graph g = path_graph(3);
  DynamicConnectivity dc(g);
  const auto survivors = g.delete_node(0);
  dc.node_removed(0, survivors, false);
  EXPECT_DEATH(dc.component_size(0), "alive");
  EXPECT_DEATH(dc.same_component(0, 1), "alive");
}

// ---- differential harness -------------------------------------------------

struct Op {
  enum Kind { kAddEdge, kRemoveEdge, kDeleteNode, kAddNode } kind;
  // For kAddEdge/kRemoveEdge: endpoint hints. For kDeleteNode: victim
  // hint. Hints are reduced mod the current node count at replay time,
  // so shrunk schedules stay meaningful.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  /// kDeleteNode: try the certified fast path when the ground truth
  /// confirms the survivors stayed mutually connected (the harness
  /// plays the role of a correct certifier; it never certifies a lie).
  bool certify = false;
};

std::string describe(const std::vector<Op>& ops, std::size_t n0) {
  std::ostringstream out;
  out << "n0=" << n0 << " ops=[";
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::kAddEdge:
        out << " +e(" << op.a << "," << op.b << ")";
        break;
      case Op::kRemoveEdge:
        out << " -e(" << op.a << "," << op.b << ")";
        break;
      case Op::kDeleteNode:
        out << " -v(" << op.a << (op.certify ? ",cert" : "") << ")";
        break;
      case Op::kAddNode:
        out << " +v";
        break;
    }
  }
  out << " ]";
  return out.str();
}

/// All survivors in one truth component => a correct certificate.
bool truth_certifies(const Graph& g, const std::vector<NodeId>& survivors) {
  if (survivors.size() < 2) return true;
  const Components truth = connected_components(g);
  const std::uint32_t label = truth.label[survivors.front()];
  for (NodeId s : survivors) {
    if (truth.label[s] != label) return false;
  }
  return true;
}

/// Replay a schedule from scratch, comparing tracker vs BFS after every
/// operation. Returns the 1-based index of the first mismatching op (0
/// for an initial-state mismatch), or -1 when everything matches.
std::ptrdiff_t replay(std::size_t n0, const std::vector<Op>& ops) {
  Graph g(n0);
  DynamicConnectivity dc(g);
  if (!matches_truth(dc, g)) return 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const std::size_t n = g.num_nodes();
    switch (op.kind) {
      case Op::kAddEdge: {
        const NodeId a = static_cast<NodeId>(op.a % n);
        const NodeId b = static_cast<NodeId>(op.b % n);
        if (a == b || !g.alive(a) || !g.alive(b)) break;
        if (g.add_edge(a, b)) dc.edge_added(a, b);
        break;
      }
      case Op::kRemoveEdge: {
        const NodeId a = static_cast<NodeId>(op.a % n);
        const NodeId b = static_cast<NodeId>(op.b % n);
        if (a == b || !g.alive(a) || !g.alive(b)) break;
        if (g.remove_edge(a, b)) dc.edge_removed(a, b);
        break;
      }
      case Op::kDeleteNode: {
        const NodeId v = static_cast<NodeId>(op.a % n);
        if (!g.alive(v) || g.num_alive() <= 1) break;
        const auto survivors = g.delete_node(v);
        const bool certified = op.certify && truth_certifies(g, survivors);
        dc.node_removed(v, survivors, !certified);
        break;
      }
      case Op::kAddNode: {
        dc.node_added(g.add_node());
        break;
      }
    }
    if (!matches_truth(dc, g)) return static_cast<std::ptrdiff_t>(i) + 1;
  }
  return -1;
}

/// Greedy delta-shrink: drop ops one at a time while the schedule still
/// fails, then report the minimal reproducer.
std::vector<Op> shrink(std::size_t n0, std::vector<Op> ops) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      std::vector<Op> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (replay(n0, candidate) >= 0) {
        ops = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return ops;
}

TEST(DynamicConnectivityDifferential, ThousandRandomSchedules) {
  constexpr std::size_t kSchedules = 1000;
  constexpr std::size_t kOpsPerSchedule = 40;
  for (std::size_t s = 0; s < kSchedules; ++s) {
    Rng rng(0xD1FFu + s);
    const std::size_t n0 = 2 + rng.below(24);
    std::vector<Op> ops;
    ops.reserve(kOpsPerSchedule);
    for (std::size_t i = 0; i < kOpsPerSchedule; ++i) {
      Op op;
      const std::uint64_t roll = rng.below(100);
      if (roll < 35) {
        op.kind = Op::kAddEdge;
      } else if (roll < 55) {
        op.kind = Op::kRemoveEdge;
      } else if (roll < 85) {
        op.kind = Op::kDeleteNode;
      } else {
        op.kind = Op::kAddNode;
      }
      op.a = rng.next_u64();
      op.b = rng.next_u64();
      op.certify = rng.chance(0.5);
      ops.push_back(op);
    }
    const std::ptrdiff_t failed = replay(n0, ops);
    if (failed >= 0) {
      const std::vector<Op> minimal = shrink(n0, ops);
      FAIL() << "schedule " << s << " diverged at op " << failed
             << "; minimal reproducer (" << minimal.size()
             << " ops): " << describe(minimal, n0);
    }
  }
}

TEST(DynamicConnectivityDifferential, HealingLikeScheduleStaysCertified) {
  // Emulates what the engine does on a healing run: delete a node, wire
  // its survivors back into a path (all certifiable), and confirm the
  // tracker never rebuilds -- the whole run is O(alpha) per round.
  Rng rng(77);
  Graph g = barabasi_albert(128, 2, rng);
  DynamicConnectivity dc(g);
  while (g.num_alive() > 2) {
    const auto alive = g.alive_nodes();
    const NodeId v = alive[static_cast<std::size_t>(rng.below(alive.size()))];
    const auto survivors = g.delete_node(v);
    for (std::size_t i = 1; i < survivors.size(); ++i) {
      if (g.add_edge(survivors[i - 1], survivors[i])) {
        dc.edge_added(survivors[i - 1], survivors[i]);
      }
    }
    dc.node_removed(v, survivors, /*may_split=*/false);
    ASSERT_TRUE(dc.connected());
  }
  EXPECT_EQ(dc.rebuilds(), 0u);
  EXPECT_EQ(dc.nodes_rescanned(), 0u);
}

}  // namespace
}  // namespace dash::graph
