// snapshot_store_test.cpp -- epoch publication, pin-based reclamation,
// buffer recycling, and a concurrent publish/read stress with the
// label-vs-BFS torn-read cross-check.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/snapshot_store.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

using dash::util::Rng;

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(SnapshotStore, EpochsAdvancePerPublish) {
  Graph g = path_graph(8);
  SnapshotStore store;
  EXPECT_EQ(store.epoch(), 0u);
  EXPECT_EQ(store.publish(g), 1u);
  EXPECT_EQ(store.publish(g), 2u);
  EXPECT_EQ(store.epoch(), 2u);
}

TEST(SnapshotStore, SnapshotAnswersFromPublishTimeState) {
  Graph g = path_graph(6);
  SnapshotStore store;
  store.publish(g);

  SnapshotStore::Reader reader = store.make_reader();
  TraversalScratch scratch;
  {
    SnapshotStore::Pin pin = reader.pin();
    EXPECT_EQ(pin->epoch(), 1u);
    EXPECT_EQ(pin->num_alive(), 6u);
    EXPECT_TRUE(pin->connected(0, 5));
    EXPECT_EQ(pin->distance(0, 5, scratch), std::uint32_t{5});

    // Mutate after publish: the pinned snapshot must not notice.
    g.delete_node(3);
    EXPECT_TRUE(pin->connected(0, 5));
    EXPECT_TRUE(pin->alive(3));
  }

  // The next publish sees the cut.
  store.publish(g);
  SnapshotStore::Pin fresh = reader.pin();
  EXPECT_EQ(fresh->epoch(), 2u);
  EXPECT_FALSE(fresh->connected(0, 5));
  EXPECT_FALSE(fresh->alive(3));
  EXPECT_FALSE(fresh->distance(0, 5, scratch).has_value());
  EXPECT_EQ(fresh->component_count(), 2u);
  EXPECT_EQ(fresh->largest_component(), 3u);
}

TEST(SnapshotStore, PinBlocksReclamationUntilReleased) {
  Graph g = path_graph(4);
  SnapshotStore store;
  store.publish(g);

  SnapshotStore::Reader reader = store.make_reader();
  {
    SnapshotStore::Pin pin = reader.pin();
    EXPECT_EQ(pin->epoch(), 1u);
    store.publish(g);  // retires epoch 1, but the pin protects it
    EXPECT_EQ(store.retired_pending(), 1u);
    EXPECT_EQ(store.live_snapshots(), 2u);
    EXPECT_EQ(pin->epoch(), 1u);  // still readable
  }
  // Unpinned now; the next publish reclaims it.
  store.publish(g);
  EXPECT_EQ(store.retired_pending(), 0u);
  EXPECT_EQ(store.live_snapshots(), 1u);
}

TEST(SnapshotStore, FreedSnapshotsAreRecycledNotReallocated) {
  Graph g = path_graph(16);
  SnapshotStore store;
  store.publish(g);
  // No pins: every publish retires the predecessor and immediately
  // frees it, so the allocated set stays at one live snapshot (plus
  // the recycled buffer the next publish reuses).
  for (int i = 0; i < 50; ++i) store.publish(g);
  EXPECT_EQ(store.live_snapshots(), 1u);
  EXPECT_EQ(store.retired_pending(), 0u);
}

TEST(SnapshotStore, ReaderSlotsAreRecycled) {
  Graph g = path_graph(4);
  SnapshotStore store;
  store.publish(g);
  { SnapshotStore::Reader r = store.make_reader(); }
  { SnapshotStore::Reader r = store.make_reader(); }
  { SnapshotStore::Reader r = store.make_reader(); }
  EXPECT_EQ(store.reader_slots(), 1u);
  SnapshotStore::Reader a = store.make_reader();
  SnapshotStore::Reader b = store.make_reader();
  EXPECT_EQ(store.reader_slots(), 2u);
}

TEST(SnapshotStore, ConcurrentPublishAndReadStress) {
  // One writer republishing a mutating graph, several readers pinning
  // and cross-checking label connectivity against BFS reachability on
  // every pin. Any disagreement within one pin is a torn read.
  Rng rng(7);
  Graph g = barabasi_albert(256, 2, rng);
  SnapshotStore store;
  store.publish(g);

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    SnapshotStore::Reader reader = store.make_reader();
    threads.emplace_back(
        [&, r, reader = std::move(reader)]() mutable {
          TraversalScratch scratch;
          Rng pick(1000 + static_cast<std::uint64_t>(r));
          while (!stop.load(std::memory_order_relaxed)) {
            SnapshotStore::Pin pin = reader.pin();
            const auto& alive = pin->view().alive_nodes();
            if (alive.size() < 2) continue;
            const NodeId u =
                alive[static_cast<std::size_t>(pick.below(alive.size()))];
            const NodeId v =
                alive[static_cast<std::size_t>(pick.below(alive.size()))];
            const bool conn = pin->connected(u, v);
            const bool reach = pin->distance(u, v, scratch).has_value();
            if (conn != reach) torn.fetch_add(1);
          }
        });
  }

  Rng mut(99);
  for (int i = 0; i < 400; ++i) {
    const NodeId victim = static_cast<NodeId>(mut.below(g.num_nodes()));
    if (g.alive(victim) && g.num_alive() > 8) {
      g.delete_node(victim);
    } else {
      const NodeId fresh = g.add_node();
      const NodeId anchor = static_cast<NodeId>(mut.below(fresh));
      if (g.alive(anchor)) g.add_edge(fresh, anchor);
    }
    store.publish(g);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(store.epoch(), 401u);
  // All pins released: one more publish sweeps the retired list.
  store.publish(g);
  EXPECT_EQ(store.retired_pending(), 0u);
}

TEST(SnapshotStore, RecycledSnapshotsPatchForwardNotRebuild) {
  // With no pins held, publishes ping-pong between two buffers; each
  // recycled buffer carries the CSR of its last epoch and only has to
  // patch two epochs' worth of touched vertices forward.
  Rng rng(11);
  Graph g = barabasi_albert(512, 2, rng);
  SnapshotStore store;
  store.publish(g);  // first publish on a fresh buffer: full rebuild
  EXPECT_EQ(store.full_publishes(), 1u);

  SnapshotStore::Reader reader = store.make_reader();
  TraversalScratch scratch;
  std::vector<NodeId> alive = g.alive_nodes();
  for (int i = 0; i < 40; ++i) {
    const std::size_t at = static_cast<std::size_t>(rng.below(alive.size()));
    g.delete_node(alive[at]);
    alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(at));
    store.publish(g);

    // The published snapshot answers from the patched CSR; cross-check
    // a pair against a BFS on the live graph.
    SnapshotStore::Pin pin = reader.pin();
    EXPECT_EQ(pin->num_alive(), alive.size());
    const NodeId u = alive[static_cast<std::size_t>(rng.below(alive.size()))];
    const NodeId v = alive[static_cast<std::size_t>(rng.below(alive.size()))];
    const auto via_snapshot = pin->distance(u, v, scratch);
    const std::uint32_t direct = bfs_distance(g, u, v);
    if (direct == kUnreachable) {
      EXPECT_FALSE(via_snapshot.has_value());
    } else {
      ASSERT_TRUE(via_snapshot.has_value());
      EXPECT_EQ(*via_snapshot, direct);
    }
  }
  // The second publish warms the second buffer (full); from the third
  // on every publish patches a recycled snapshot forward.
  EXPECT_EQ(store.full_publishes(), 2u);
  EXPECT_EQ(store.patched_publishes(), 39u);
  EXPECT_GT(store.touched_vertices(), 0u);
}

}  // namespace
}  // namespace dash::graph
