#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/metrics.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

using dash::util::Rng;

TEST(BarabasiAlbert, SizeAndConnectivity) {
  Rng rng(1);
  for (std::size_t n : {10u, 50u, 200u}) {
    const Graph g = barabasi_albert(n, 2, rng);
    EXPECT_EQ(g.num_nodes(), n);
    EXPECT_TRUE(is_connected(g));
    // Star seed has m edges; each of the n-m-1 later nodes adds m.
    EXPECT_EQ(g.num_edges(), 2 + (n - 3) * 2);
  }
}

TEST(BarabasiAlbert, AttachedNodesHaveDegreeAtLeastM) {
  // Nodes beyond the seed star each attach with exactly m edges and can
  // only gain more; seed-star leaves may stay at degree 1.
  Rng rng(2);
  const Graph g = barabasi_albert(100, 3, rng);
  for (NodeId v = 4; v < g.num_nodes(); ++v) {
    EXPECT_GE(g.degree(v), 3u);
  }
}

TEST(BarabasiAlbert, ProducesSkewedDegrees) {
  // Preferential attachment should produce a hub well above the mean.
  Rng rng(3);
  const Graph g = barabasi_albert(500, 2, rng);
  EXPECT_GT(max_degree(g), 4 * static_cast<std::size_t>(average_degree(g)));
}

TEST(BarabasiAlbert, DeterministicGivenSeed) {
  Rng a(7), b(7);
  const Graph g1 = barabasi_albert(60, 2, a);
  const Graph g2 = barabasi_albert(60, 2, b);
  EXPECT_TRUE(g1.same_topology(g2));
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Rng rng(4);
  const std::size_t n = 300;
  const double p = 0.05;
  const Graph g = erdos_renyi_gnp(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1)) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4 * std::sqrt(expected));
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  Rng rng(5);
  EXPECT_EQ(erdos_renyi_gnp(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi_gnp(20, 1.0, rng).num_edges(), 190u);
}

TEST(ErdosRenyi, ConnectedVariantIsConnected) {
  Rng rng(6);
  const Graph g = connected_gnp(100, 0.08, rng);
  EXPECT_TRUE(is_connected(g));
}

TEST(RandomTree, IsTree) {
  Rng rng(8);
  for (std::size_t n : {2u, 10u, 100u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.num_edges(), n - 1);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(KaryTree, StructureMetadata) {
  const KaryTree t = complete_kary_tree(3, 2);
  EXPECT_EQ(t.g.num_nodes(), 13u);  // 1 + 3 + 9
  EXPECT_EQ(t.g.num_edges(), 12u);
  EXPECT_TRUE(is_connected(t.g));
  EXPECT_EQ(t.parent[0], kInvalidNode);
  EXPECT_EQ(t.level[0], 0u);
  EXPECT_EQ(t.children[0].size(), 3u);
  for (NodeId c : t.children[0]) {
    EXPECT_EQ(t.parent[c], 0u);
    EXPECT_EQ(t.level[c], 1u);
    EXPECT_EQ(t.children[c].size(), 3u);
  }
  // Deepest level nodes are leaves.
  for (NodeId v = 4; v < 13; ++v) {
    EXPECT_EQ(t.level[v], 2u);
    EXPECT_TRUE(t.children[v].empty());
    EXPECT_EQ(t.g.degree(v), 1u);
  }
}

TEST(KaryTree, DepthZeroIsSingleRoot) {
  const KaryTree t = complete_kary_tree(4, 0);
  EXPECT_EQ(t.g.num_nodes(), 1u);
  EXPECT_EQ(t.g.num_edges(), 0u);
}

TEST(StructuredGraphs, PathCycleStarCompleteGrid) {
  EXPECT_EQ(path_graph(4).num_edges(), 3u);
  EXPECT_EQ(cycle_graph(4).num_edges(), 4u);
  EXPECT_EQ(star_graph(5).num_edges(), 4u);
  EXPECT_EQ(star_graph(5).degree(0), 4u);
  EXPECT_EQ(complete_graph(6).num_edges(), 15u);
  const Graph grid = grid_graph(3, 4);
  EXPECT_EQ(grid.num_nodes(), 12u);
  EXPECT_EQ(grid.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(grid));
}

TEST(WattsStrogatz, PreservesEdgeCountAndConnectivityAtLowBeta) {
  Rng rng(9);
  const Graph g = watts_strogatz(100, 3, 0.1, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);  // rewiring preserves count
  EXPECT_TRUE(is_connected(g));    // k=3 lattice survives 10% rewiring
}

TEST(WattsStrogatz, BetaZeroIsLattice) {
  Rng rng(10);
  const Graph g = watts_strogatz(20, 2, 0.0, rng);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

}  // namespace
}  // namespace dash::graph
