// flat_traversal_test.cpp -- the flat traversal engine: FlatView CSR
// snapshots (generation-keyed lazy rebuild), TraversalScratch reuse,
// and the scratch-taking bfs/connectivity/components/eccentricity
// overloads, differentially checked against a verbatim copy of the
// legacy per-call-allocating implementations.
#include <deque>
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/rng.h"

namespace dash::graph {
namespace {

using dash::util::Rng;

// ---- legacy reference implementations (pre-flat-engine, verbatim) ----

std::vector<std::uint32_t> ref_bfs_distances(const Graph& g, NodeId src) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier;
  dist[src] = 0;
  frontier.push_back(src);
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    const std::uint32_t next = dist[v] + 1;
    for (NodeId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = next;
        frontier.push_back(u);
      }
    }
  }
  return dist;
}

Components ref_connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), kInvalidComponent);
  std::deque<NodeId> frontier;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (!g.alive(root) || out.label[root] != kInvalidComponent) continue;
    const auto comp = static_cast<std::uint32_t>(out.sizes.size());
    out.sizes.push_back(0);
    out.label[root] = comp;
    frontier.push_back(root);
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      ++out.sizes[comp];
      for (NodeId u : g.neighbors(v)) {
        if (out.label[u] == kInvalidComponent) {
          out.label[u] = comp;
          frontier.push_back(u);
        }
      }
    }
  }
  return out;
}

/// Flat BFS distances materialized for comparison with the reference.
std::vector<std::uint32_t> flat_distances(const Graph& g, NodeId src,
                                          TraversalScratch& scratch) {
  bfs_distances(g.flat_view(), src, scratch);
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  for (NodeId v = 0; v < g.num_nodes(); ++v) dist[v] = scratch.distance(v);
  return dist;
}

void expect_engine_matches_reference(const Graph& g,
                                     TraversalScratch& scratch,
                                     const std::string& what) {
  const auto alive = g.alive_nodes();
  for (std::size_t i = 0; i < alive.size(); i += 1 + alive.size() / 7) {
    const NodeId src = alive[i];
    EXPECT_EQ(flat_distances(g, src, scratch), ref_bfs_distances(g, src))
        << what << " src=" << src;
  }
  const Components want = ref_connected_components(g);
  const Components got = connected_components(g);
  EXPECT_EQ(got.label, want.label) << what;
  EXPECT_EQ(got.sizes, want.sizes) << what;
}

// ---- FlatView snapshot semantics -------------------------------------

TEST(FlatView, MirrorsAdjacencyAndAliveSet) {
  Rng rng(5);
  Graph g = barabasi_albert(64, 2, rng);
  g.delete_node(7);
  const FlatView& view = g.flat_view();
  EXPECT_EQ(view.num_nodes(), g.num_nodes());
  EXPECT_EQ(view.num_alive(), g.num_alive());
  EXPECT_EQ(view.alive_nodes(), g.alive_nodes());
  EXPECT_EQ(view.num_edge_entries(), 2 * g.num_edges());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) {
      EXPECT_TRUE(view.neighbors(v).empty());
      continue;
    }
    const auto span = view.neighbors(v);
    ASSERT_EQ(span.size(), g.degree(v));
    for (std::size_t i = 0; i < span.size(); ++i) {
      EXPECT_EQ(span[i], g.neighbors(v)[i]);
    }
  }
}

TEST(FlatView, GenerationTracksRealMutationsOnly) {
  Graph g(4);
  const std::uint64_t g0 = g.generation();
  ASSERT_TRUE(g.add_edge(0, 1));
  EXPECT_GT(g.generation(), g0);
  const std::uint64_t g1 = g.generation();
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate: no topology change
  EXPECT_EQ(g.generation(), g1);
  EXPECT_FALSE(g.remove_edge(2, 3));  // absent: no topology change
  EXPECT_EQ(g.generation(), g1);
  g.add_node();
  EXPECT_GT(g.generation(), g1);
  const std::uint64_t g2 = g.generation();
  g.delete_node(0);
  EXPECT_GT(g.generation(), g2);
}

TEST(FlatView, CachedViewRebuildsLazilyOnMutation) {
  Graph g = path_graph(6);
  const FlatView& v1 = g.flat_view();
  EXPECT_TRUE(v1.matches(g.generation()));
  EXPECT_EQ(&v1, &g.flat_view());  // no mutation: same snapshot object
  EXPECT_EQ(g.flat_view().neighbors(2).size(), 2u);
  g.delete_node(3);
  const FlatView& v2 = g.flat_view();
  EXPECT_TRUE(v2.matches(g.generation()));
  EXPECT_EQ(v2.num_alive(), 5u);
  EXPECT_EQ(v2.neighbors(2).size(), 1u);
  EXPECT_TRUE(v2.neighbors(3).empty());
}

TEST(FlatView, CopiedGraphKeepsIndependentSnapshot) {
  Graph g = cycle_graph(5);
  (void)g.flat_view();
  Graph copy = g;
  copy.delete_node(0);
  EXPECT_EQ(copy.flat_view().num_alive(), 4u);
  EXPECT_EQ(g.flat_view().num_alive(), 5u);
}

// ---- scratch-taking overloads vs the legacy reference ----------------

TEST(FlatTraversal, MatchesReferenceAcrossMutationSchedule) {
  Rng rng(99);
  Graph g = barabasi_albert(80, 2, rng);
  TraversalScratch scratch;
  expect_engine_matches_reference(g, scratch, "initial");
  for (int round = 0; round < 30; ++round) {
    const auto alive = g.alive_nodes();
    if (alive.size() <= 3) break;
    const NodeId victim =
        alive[static_cast<std::size_t>(rng.below(alive.size()))];
    const auto survivors = g.delete_node(victim);
    // Path-heal half the rounds; leave the graph fragmented otherwise.
    if (round % 2 == 0) {
      for (std::size_t i = 1; i < survivors.size(); ++i) {
        g.add_edge(survivors[i - 1], survivors[i]);
      }
    }
    expect_engine_matches_reference(
        g, scratch, "round " + std::to_string(round));
  }
}

TEST(FlatTraversal, ScratchReuseAcrossGraphsOfDifferentSizes) {
  TraversalScratch scratch;
  Rng rng(3);
  // Reuse one scratch over shrinking and growing id spaces; every run
  // must be as if the scratch were fresh.
  for (const std::size_t n : {40u, 8u, 120u, 16u}) {
    Graph g = barabasi_albert(n, 2, rng);
    EXPECT_EQ(flat_distances(g, 0, scratch), ref_bfs_distances(g, 0))
        << "n=" << n;
  }
}

TEST(FlatTraversal, EpochWrapStaysCorrect) {
  const Graph g = cycle_graph(9);
  const auto want = ref_bfs_distances(g, 4);
  TraversalScratch scratch;
  // The visited stamp is 8-bit: drive it through several wraps.
  for (int i = 0; i < 600; ++i) {
    ASSERT_EQ(flat_distances(g, 4, scratch), want) << "traversal " << i;
  }
}

TEST(FlatTraversal, VisitedIsLevelOrdered) {
  Rng rng(12);
  const Graph g = barabasi_albert(60, 2, rng);
  TraversalScratch scratch;
  const std::size_t seen = bfs_distances(g.flat_view(), 5, scratch);
  ASSERT_EQ(seen, scratch.visited().size());
  ASSERT_EQ(scratch.visited().front(), 5u);
  std::uint32_t prev = 0;
  for (const NodeId v : scratch.visited()) {
    EXPECT_GE(scratch.distance(v), prev);
    prev = scratch.distance(v);
  }
}

TEST(FlatTraversal, IsConnectedAndEccentricityAgree) {
  Rng rng(31);
  Graph g = barabasi_albert(50, 2, rng);
  TraversalScratch scratch;
  EXPECT_TRUE(is_connected(g.flat_view(), scratch));
  EXPECT_EQ(eccentricity(g.flat_view(), 0, scratch), eccentricity(g, 0));
  g.delete_node(1);  // BA node 1 can articulate; either way compare
  EXPECT_EQ(is_connected(g.flat_view(), scratch), is_connected(g));
  const auto alive = g.alive_nodes();
  for (std::size_t i = 0; i < alive.size(); i += 9) {
    const auto dist = ref_bfs_distances(g, alive[i]);
    std::uint32_t want = 0;
    for (NodeId v : alive) {
      if (dist[v] != kUnreachable) want = std::max(want, dist[v]);
    }
    EXPECT_EQ(eccentricity(g.flat_view(), alive[i], scratch), want);
  }
}

TEST(FlatTraversal, ComponentsBufferReuse) {
  TraversalScratch scratch;
  Components comps;
  Graph g = path_graph(7);
  connected_components(g.flat_view(), scratch, comps);
  EXPECT_EQ(comps.count(), 1u);
  g.delete_node(3);
  connected_components(g.flat_view(), scratch, comps);
  EXPECT_EQ(comps.count(), 2u);
  EXPECT_EQ(comps.largest(), 3u);
  const Graph empty(0);
  connected_components(empty.flat_view(), scratch, comps);
  EXPECT_EQ(comps.count(), 0u);
}

}  // namespace
}  // namespace dash::graph
