// End-to-end tests of the fleet coordinator/agent pair: a grid served
// to live agents over real sockets must merge to the byte-exact
// document (and rows CSV) a sequential exp::run produces -- through
// handshake rejections, silent agents whose leases expire, duplicate
// results, checkpoint/resume, and an agent SIGKILLed mid-cell.
#include "fleet/coordinator.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/chaos.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "fleet/agent.h"
#include "fleet/channel.h"
#include "fleet/protocol.h"

namespace dash::fleet {
namespace {

exp::ExperimentSpec fleet_spec() {
  return exp::ExperimentSpec::parse_line(
      "name=fleet n=16|24 healer=dash|graph scenario=until-half "
      "instances=2 seed=11");
}

struct Sequential {
  std::string document;
  std::string rows;
};

/// The ground truth: the whole grid run sequentially in-process.
Sequential sequential_run(const exp::ExperimentSpec& spec) {
  exp::RunnerOptions opt;
  opt.threads = 1;
  std::vector<exp::ShardRecord> records;
  std::vector<exp::RowsRecord> rows;
  opt.on_cell = [&](const exp::CellResult& result) {
    records.push_back(exp::to_record(spec, result));
  };
  opt.on_rows = [&](const exp::Cell& cell,
                    const std::vector<api::RoundRow>& cell_rows) {
    for (const api::RoundRow& row : cell_rows) {
      exp::RowsRecord rec;
      ASSERT_TRUE(exp::parse_rows_line(exp::rows_line(cell.index, row), &rec));
      rows.push_back(rec);
    }
  };
  exp::run(spec, opt);
  Sequential out;
  out.document = exp::merged_document(spec, records);
  out.rows = exp::merged_rows(std::move(rows));
  return out;
}

/// Fresh per-test state dir under the gtest temp root.
std::string fresh_state_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "fleet_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

void quiet(const std::string&) {}

/// A worker thread running one real agent; coordinator-vanished errors
/// (expected around checkpoints) are swallowed.
std::thread agent_thread(const exp::ExperimentSpec& spec,
                         const std::string& endpoint,
                         const std::string& name) {
  return std::thread([&spec, endpoint, name] {
    AgentOptions opt;
    opt.connect = endpoint;
    opt.name = name;
    opt.progress = quiet;
    try {
      run_agent(spec, opt);
    } catch (const std::exception&) {
    }
  });
}

TEST(Fleet, ThreeAgentsMergeByteIdenticalToSequentialRun) {
  const auto spec = fleet_spec();
  const Sequential expected = sequential_run(spec);

  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("identity");
  copt.rows = true;
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  const std::string ep = coord.endpoint().spec();

  std::vector<std::thread> agents;
  for (int i = 0; i < 3; ++i) {
    agents.push_back(agent_thread(spec, ep, "worker-" + std::to_string(i)));
  }
  const FleetReport report = coord.run();
  for (std::thread& t : agents) t.join();

  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.cells, spec.enumerate().size());
  EXPECT_EQ(report.done, report.cells);
  EXPECT_EQ(report.reassigned, 0u);
  EXPECT_EQ(report.document, expected.document);
  EXPECT_EQ(report.rows_csv, expected.rows);
  std::size_t committed = 0;
  for (const AgentStats& a : report.agents) committed += a.done;
  EXPECT_EQ(committed, report.cells);

  // The spool doubles as the resume manifest: every cell's record is
  // on disk and merges to the same bytes.
  const auto spooled =
      exp::load_shard_file(Coordinator::records_path(copt.state_dir));
  EXPECT_EQ(exp::merged_document(spec, spooled), expected.document);
}

TEST(Fleet, RejectsForeignVersionAndForeignSpecHash) {
  const auto spec = fleet_spec();
  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("handshake");
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  FleetReport report;
  std::thread server([&] { report = coord.run(); });

  {
    Channel ch = connect_channel(coord.endpoint());
    Message hello = make_hello(spec.hash(), "time-traveller");
    hello.version = kProtocolVersion + 41;
    ASSERT_TRUE(ch.send(hello));
    const auto reply = ch.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kError);
    EXPECT_EQ(reply->code, "version-mismatch");
    EXPECT_FALSE(ch.recv().has_value());  // coordinator hung up
  }
  {
    Channel ch = connect_channel(coord.endpoint());
    ASSERT_TRUE(ch.send(make_hello("00000000deadbeef", "wrong-spec")));
    const auto reply = ch.recv();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MessageType::kError);
    EXPECT_EQ(reply->code, "spec-mismatch");
    EXPECT_FALSE(ch.recv().has_value());
  }
  // run_agent surfaces the rejection as a FrameError naming the code.
  {
    const auto other = exp::ExperimentSpec::parse_line(
        "name=other n=16 healer=dash scenario=until-half instances=1 "
        "seed=1");
    AgentOptions aopt;
    aopt.connect = coord.endpoint().spec();
    aopt.progress = quiet;
    try {
      run_agent(other, aopt);
      FAIL() << "expected FrameError";
    } catch (const FrameError& e) {
      EXPECT_NE(std::string(e.what()).find("spec-mismatch"),
                std::string::npos);
    }
  }

  std::thread worker = agent_thread(spec, coord.endpoint().spec(), "honest");
  server.join();
  worker.join();
  EXPECT_TRUE(report.complete);
}

TEST(Fleet, SilentAgentLeaseExpiresAndCellIsReassigned) {
  const auto spec = fleet_spec();
  const Sequential expected = sequential_run(spec);

  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("lease");
  copt.rows = true;
  copt.lease_ms = 200;  // reap quickly; heartbeats go every 50ms
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  FleetReport report;
  std::thread server([&] { report = coord.run(); });

  // A hostile agent: says hello, claims a cell, then goes silent.
  Channel silent = connect_channel(coord.endpoint());
  ASSERT_TRUE(silent.send(make_hello(spec.hash(), "silent")));
  auto welcome = silent.recv();
  ASSERT_TRUE(welcome.has_value());
  ASSERT_EQ(welcome->type, MessageType::kWelcome);
  EXPECT_EQ(welcome->cells, spec.enumerate().size());
  EXPECT_TRUE(welcome->rows);
  ASSERT_TRUE(silent.send(make_claim()));
  auto grant = silent.recv();
  ASSERT_TRUE(grant.has_value());
  ASSERT_EQ(grant->type, MessageType::kGrant);
  const std::size_t hostage = grant->cell;

  // Only now let a real agent in: the hostage cell must come back to
  // it when the silent lease expires.
  std::thread worker = agent_thread(spec, coord.endpoint().spec(), "real");
  const auto reaped = silent.recv();  // the lease-expired ERROR
  ASSERT_TRUE(reaped.has_value());
  EXPECT_EQ(reaped->type, MessageType::kError);
  EXPECT_NE(reaped->message.find("lease expired"), std::string::npos);

  server.join();
  worker.join();
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.reassigned, 1u);
  EXPECT_EQ(report.document, expected.document);
  EXPECT_EQ(report.rows_csv, expected.rows);
  for (const AgentStats& a : report.agents) {
    if (a.name == "silent") {
      EXPECT_EQ(a.done, 0u);
      EXPECT_GE(a.forfeited, 1u);
    }
    if (a.name == "real") {
      EXPECT_EQ(a.done, report.cells);
    }
  }
  (void)hostage;
}

TEST(Fleet, DuplicateIdenticalResultIsCountedAndIgnored) {
  // 2-cell grid, driven entirely by a raw protocol-level client.
  const auto spec = exp::ExperimentSpec::parse_line(
      "name=dup n=16 healer=dash|graph scenario=until-half instances=1 "
      "seed=5");
  const std::vector<exp::Cell> cells = spec.enumerate();
  ASSERT_EQ(cells.size(), 2u);

  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("dup");
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  FleetReport report;
  std::thread server([&] { report = coord.run(); });

  Channel ch = connect_channel(coord.endpoint());
  ASSERT_TRUE(ch.send(make_hello(spec.hash(), "by-hand")));
  ASSERT_EQ(ch.recv()->type, MessageType::kWelcome);

  ASSERT_TRUE(ch.send(make_claim()));
  const auto grant = ch.recv();
  ASSERT_EQ(grant->type, MessageType::kGrant);
  const std::size_t first = grant->cell;
  const std::string line = exp::shard_line(
      exp::to_record(spec, exp::run_cell(spec, cells[first])));
  ASSERT_TRUE(ch.send(make_result(first, line)));
  // The same bytes again: a late duplicate, counted and ignored (the
  // grid is not yet complete, so this frame is always processed).
  ASSERT_TRUE(ch.send(make_result(first, line)));

  ASSERT_TRUE(ch.send(make_claim()));
  const auto second = ch.recv();
  ASSERT_EQ(second->type, MessageType::kGrant);
  const std::size_t other = second->cell;
  EXPECT_NE(other, first);
  ASSERT_TRUE(ch.send(make_result(
      other,
      exp::shard_line(exp::to_record(spec, exp::run_cell(spec, cells[other]))))));
  // The last commit completes the grid; the coordinator broadcasts
  // SHUTDOWN to every connection without waiting for another CLAIM.
  const auto bye = ch.recv();
  ASSERT_TRUE(bye.has_value());
  EXPECT_EQ(bye->type, MessageType::kShutdown);

  server.join();
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_EQ(report.document, sequential_run(spec).document);
}

TEST(Fleet, StatusIsServedWithoutHelloAndRendersCounts) {
  const auto spec = fleet_spec();
  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("status");
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  FleetReport report;
  std::thread server([&] { report = coord.run(); });

  // No agents yet, so the grid cannot complete under us: the status
  // round trip is race-free.
  {
    Channel ch = connect_channel(coord.endpoint());
    ASSERT_TRUE(ch.send(make_status()));
    const auto reply = ch.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MessageType::kReport);
    EXPECT_NE(reply->text.find("0/4 cells done"), std::string::npos);
  }

  std::thread worker = agent_thread(spec, coord.endpoint().spec(), "w");
  server.join();
  worker.join();
  EXPECT_TRUE(report.complete);

  const std::string rendered = render_status(report);
  EXPECT_NE(rendered.find("4/4 cells done"), std::string::npos);
  EXPECT_NE(rendered.find("w: 4 done"), std::string::npos);
}

TEST(Fleet, CheckpointThenResumeConvergesToSequentialBytes) {
  const auto spec = fleet_spec();
  const Sequential expected = sequential_run(spec);
  const std::string dir = fresh_state_dir("resume");

  {
    CoordinatorOptions copt;
    copt.state_dir = dir;
    copt.rows = true;
    copt.stop_after = 2;  // checkpoint mid-grid
    copt.progress = quiet;
    Coordinator coord(spec, copt);
    FleetReport report;
    std::thread server([&] { report = coord.run(); });
    std::thread worker = agent_thread(spec, coord.endpoint().spec(), "w");
    server.join();
    worker.join();
    EXPECT_FALSE(report.complete);
    EXPECT_GE(report.done, 2u);
    EXPECT_LT(report.done, report.cells);
    EXPECT_TRUE(report.document.empty());
  }
  {
    CoordinatorOptions copt;
    copt.state_dir = dir;
    copt.rows = true;
    copt.resume = true;
    copt.progress = quiet;
    Coordinator coord(spec, copt);
    FleetReport report;
    std::thread server([&] { report = coord.run(); });
    std::thread worker = agent_thread(spec, coord.endpoint().spec(), "w");
    server.join();
    worker.join();
    EXPECT_TRUE(report.complete);
    EXPECT_GE(report.resumed, 2u);
    EXPECT_EQ(report.document, expected.document);
    EXPECT_EQ(report.rows_csv, expected.rows);
  }
}

TEST(Fleet, ResumeRejectsAManifestFromAnotherSpec) {
  const auto spec = fleet_spec();
  const std::string dir = fresh_state_dir("foreign");

  // Seed the state dir with a manifest stamped with a foreign hash.
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(Coordinator::records_path(dir));
    out << exp::shard_line({0, "00000000deadbeef", "{\"a\":1}"}) << "\n";
  }
  CoordinatorOptions copt;
  copt.state_dir = dir;
  copt.resume = true;
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  EXPECT_THROW(coord.run(), std::invalid_argument);
}

TEST(FleetDeathTest, AgentKilledMidCellIsReassignedByteIdentically) {
  const auto spec = fleet_spec();
  const Sequential expected = sequential_run(spec);

  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("chaos");
  copt.rows = true;
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  const std::string ep = coord.endpoint().spec();
  FleetReport report;
  std::thread server([&] { report = coord.run(); });

  // A forked agent with chaos armed: it commits cell 0, then SIGKILLs
  // itself after streaming cell 1's rows but before its RESULT.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    AgentOptions aopt;
    aopt.connect = ep;
    aopt.name = "doomed";
    aopt.chaos = exp::parse_chaos("kill:1");
    aopt.progress = quiet;
    try {
      run_agent(spec, aopt);
    } catch (...) {
    }
    ::_exit(0);  // unreachable: the chaos strike must have fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // A live agent picks up the orphaned cell; the merge must not show a
  // seam -- same bytes as the sequential run, rows included.
  std::thread worker = agent_thread(spec, ep, "survivor");
  server.join();
  worker.join();
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.reassigned, 1u);
  EXPECT_EQ(report.document, expected.document);
  EXPECT_EQ(report.rows_csv, expected.rows);
}

TEST(Fleet, TornResultFrameCountsAsDeathNotCorruptState) {
  const auto spec = fleet_spec();
  const Sequential expected = sequential_run(spec);

  CoordinatorOptions copt;
  copt.state_dir = fresh_state_dir("torn");
  copt.progress = quiet;
  Coordinator coord(spec, copt);
  FleetReport report;
  std::thread server([&] { report = coord.run(); });

  // A raw client that leaves half a RESULT frame behind and hangs up:
  // the mid-frame EOF a torn write produces. The coordinator must
  // treat it exactly like death -- reassign, never commit.
  {
    Channel ch = connect_channel(coord.endpoint());
    ASSERT_TRUE(ch.send(make_hello(spec.hash(), "torn")));
    ASSERT_EQ(ch.recv()->type, MessageType::kWelcome);
    ASSERT_TRUE(ch.send(make_claim()));
    const auto grant = ch.recv();
    ASSERT_EQ(grant->type, MessageType::kGrant);
    const std::string line = exp::shard_line(exp::to_record(
        spec, exp::run_cell(spec, spec.enumerate()[grant->cell])));
    const std::string framed =
        frame_bytes(encode_message(make_result(grant->cell, line)));
    ASSERT_TRUE(ch.send_raw(framed.substr(0, framed.size() / 2)));
  }  // channel closes here, mid-frame

  std::thread worker = agent_thread(spec, coord.endpoint().spec(), "w");
  server.join();
  worker.join();
  EXPECT_TRUE(report.complete);
  EXPECT_GE(report.reassigned, 1u);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(report.document, expected.document);
}

}  // namespace
}  // namespace dash::fleet
