// Tests for the fleet wire protocol: every message type must survive
// an encode/decode round trip byte-exactly, the decoder must reject
// anything the encoder did not write, and the incremental framer must
// reassemble frames from arbitrary byte dribbles while treating
// corrupt length prefixes as protocol errors, never as allocations.
#include "fleet/protocol.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/channel.h"

namespace dash::fleet {
namespace {

/// Round-trip one message and return the decoded copy.
Message round_trip(const Message& m) {
  return decode_message(encode_message(m));
}

TEST(Protocol, HelloRoundTrips) {
  const Message m = make_hello("0123456789abcdef", "agent \"zero\"\n");
  const Message d = round_trip(m);
  EXPECT_EQ(d.type, MessageType::kHello);
  EXPECT_EQ(d.version, kProtocolVersion);
  EXPECT_EQ(d.spec_hash, m.spec_hash);
  EXPECT_EQ(d.agent, m.agent);
}

TEST(Protocol, WelcomeRoundTripsRowsFlag) {
  for (const bool rows : {false, true}) {
    const Message d = round_trip(make_welcome(48, 2500, rows));
    EXPECT_EQ(d.type, MessageType::kWelcome);
    EXPECT_EQ(d.version, kProtocolVersion);
    EXPECT_EQ(d.cells, 48u);
    EXPECT_EQ(d.heartbeat_ms, 2500u);
    EXPECT_EQ(d.rows, rows);
  }
  // The flag is written as 0/1; anything else is corruption.
  EXPECT_THROW(
      decode_message("{\"type\":\"welcome\",\"version\":1,\"cells\":1,"
                     "\"heartbeat_ms\":10,\"rows\":2}"),
      FrameError);
}

TEST(Protocol, BareMessagesRoundTrip) {
  EXPECT_EQ(round_trip(make_claim()).type, MessageType::kClaim);
  EXPECT_EQ(round_trip(make_heartbeat()).type, MessageType::kHeartbeat);
  EXPECT_EQ(round_trip(make_status()).type, MessageType::kStatus);
  EXPECT_EQ(encode_message(make_claim()), "{\"type\":\"claim\"}");
}

TEST(Protocol, GrantResultReportShutdownErrorRoundTrip) {
  EXPECT_EQ(round_trip(make_grant(17)).cell, 17u);

  const std::string record =
      "{\"cell\":3,\"spec_hash\":\"00ff\",\"group\":{\"a\":[1,2]}}";
  const Message r = round_trip(make_result(3, record));
  EXPECT_EQ(r.type, MessageType::kResult);
  EXPECT_EQ(r.cell, 3u);
  EXPECT_EQ(r.record, record);

  EXPECT_EQ(round_trip(make_report("7/8 cells done")).text, "7/8 cells done");
  EXPECT_EQ(round_trip(make_shutdown("grid complete")).text, "grid complete");

  const Message e = round_trip(make_error("spec-mismatch", "hash \"x\""));
  EXPECT_EQ(e.type, MessageType::kError);
  EXPECT_EQ(e.code, "spec-mismatch");
  EXPECT_EQ(e.message, "hash \"x\"");
}

TEST(Protocol, RowsRoundTripsLinesIncludingEmpty) {
  const Message d = round_trip(
      make_rows(5, {"0,0,16,dash,1,2", "line with \"quotes\"\tand\ttabs"}));
  EXPECT_EQ(d.type, MessageType::kRows);
  EXPECT_EQ(d.cell, 5u);
  ASSERT_EQ(d.lines.size(), 2u);
  EXPECT_EQ(d.lines[0], "0,0,16,dash,1,2");
  EXPECT_EQ(d.lines[1], "line with \"quotes\"\tand\ttabs");

  EXPECT_TRUE(round_trip(make_rows(0, {})).lines.empty());
}

TEST(Protocol, EscapeRoundTripsControlBytes) {
  std::string nasty = "plain";
  for (int c = 0; c < 0x20; ++c) nasty += static_cast<char>(c);
  nasty += "\"\\ \xc3\xa9 end";
  std::string back;
  ASSERT_TRUE(unescape_json(escape_json(nasty), &back));
  EXPECT_EQ(back, nasty);

  std::string out;
  EXPECT_FALSE(unescape_json("\\q", &out));     // unknown escape
  EXPECT_FALSE(unescape_json("tail\\", &out));  // dangling backslash
  EXPECT_FALSE(unescape_json("\\u00g0", &out));  // bad hex digit
  EXPECT_FALSE(unescape_json("\\u0100", &out));  // beyond \u00XX
}

TEST(Protocol, DecodeRejectsCorruption) {
  EXPECT_THROW(decode_message(""), FrameError);
  EXPECT_THROW(decode_message("{\"type\":\"gossip\"}"), FrameError);
  // A known type that is a proper prefix of the payload's type string
  // must not match ("grant" vs "grantx").
  EXPECT_THROW(decode_message("{\"type\":\"grantx\",\"cell\":1}"),
               FrameError);
  // Missing / misordered fields.
  EXPECT_THROW(decode_message("{\"type\":\"grant\"}"), FrameError);
  EXPECT_THROW(decode_message("{\"type\":\"grant\",\"cell\":}"), FrameError);
  EXPECT_THROW(
      decode_message("{\"type\":\"hello\",\"spec_hash\":\"a\","
                     "\"version\":1,\"agent\":\"x\"}"),
      FrameError);
  // Trailing garbage after a well-formed message.
  EXPECT_THROW(decode_message("{\"type\":\"claim\"}{"), FrameError);
  EXPECT_THROW(decode_message(encode_message(make_claim()) + " "),
               FrameError);
  // Unterminated string and unterminated rows array.
  EXPECT_THROW(
      decode_message("{\"type\":\"shutdown\",\"text\":\"bye"), FrameError);
  EXPECT_THROW(
      decode_message("{\"type\":\"rows\",\"cell\":1,\"lines\":[\"a\""),
      FrameError);
}

// ---- framing ---------------------------------------------------------------

TEST(Framing, FrameRoundTripsThroughTakeFrame) {
  const std::string payload = encode_message(make_grant(9));
  std::string buf = frame_bytes(payload);
  EXPECT_EQ(buf.size(), payload.size() + 4);
  std::string out;
  ASSERT_TRUE(take_frame(&buf, &out));
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(buf.empty());
}

TEST(Framing, TakeFrameReassemblesByteDribbles) {
  // Two frames delivered one byte at a time -- the short-read shape a
  // slow socket produces -- must yield exactly two payloads.
  const std::string a = encode_message(make_claim());
  const std::string b = encode_message(make_shutdown("done"));
  const std::string wire = frame_bytes(a) + frame_bytes(b);

  std::string buf;
  std::vector<std::string> got;
  for (const char c : wire) {
    buf += c;
    std::string out;
    while (take_frame(&buf, &out)) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
  EXPECT_TRUE(buf.empty());
}

TEST(Framing, TakeFrameRejectsCorruptLengthPrefixes) {
  std::string out;
  // Zero length: no message encodes to zero bytes.
  std::string zero("\x00\x00\x00\x00", 4);
  EXPECT_THROW(take_frame(&zero, &out), FrameError);
  // A length beyond kMaxFrameBytes must throw instead of waiting for
  // (or allocating) gigabytes.
  std::string huge("\xff\xff\xff\xff", 4);
  EXPECT_THROW(take_frame(&huge, &out), FrameError);
  // An incomplete prefix is simply "need more bytes".
  std::string partial("\x00\x00", 2);
  EXPECT_FALSE(take_frame(&partial, &out));
}

// ---- endpoints -------------------------------------------------------------

TEST(Endpoints, ParsesBothSpellings) {
  const Endpoint u = Endpoint::parse("unix:/tmp/fleet.sock");
  EXPECT_EQ(u.kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u.path, "/tmp/fleet.sock");
  EXPECT_EQ(u.spec(), "unix:/tmp/fleet.sock");

  const Endpoint t = Endpoint::parse("tcp:127.0.0.1:4815");
  EXPECT_EQ(t.kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t.host, "127.0.0.1");
  EXPECT_EQ(t.port, 4815);
  EXPECT_EQ(t.spec(), "tcp:127.0.0.1:4815");

  // Host defaults to loopback; port 0 asks for an ephemeral port.
  const Endpoint short_form = Endpoint::parse("tcp:0");
  EXPECT_EQ(short_form.host, "127.0.0.1");
  EXPECT_EQ(short_form.port, 0);
}

TEST(Endpoints, RejectsMalformedSpecs) {
  EXPECT_THROW(Endpoint::parse(""), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("ipc:/x"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:host:notaport"), std::invalid_argument);
  EXPECT_THROW(Endpoint::parse("tcp:host:70000"), std::invalid_argument);
}

}  // namespace
}  // namespace dash::fleet
