// cloexec_test.cpp -- fleet sockets must be close-on-exec. An fd
// inherited by a spawned agent (or any exec'd child) keeps the
// connection "open" in the kernel after the coordinator-side owner
// closes it, so peer death never surfaces as EOF and lease
// reassignment stalls for the lifetime of the child. Every socket is
// created with SOCK_CLOEXEC (and accept4(SOCK_CLOEXEC)); these tests
// pin the flag directly and prove the EOF-on-death behavior survives
// a concurrently spawned child.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "fleet/channel.h"

namespace dash::fleet {
namespace {

bool is_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  return flags >= 0 && (flags & FD_CLOEXEC) != 0;
}

std::string temp_sock_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("dash_cloexec_" + tag + "_" + std::to_string(::getpid()) +
           ".sock"))
      .string();
}

TEST(Cloexec, UnixSocketsCarryTheFlag) {
  const std::string path = temp_sock_path("unix");
  Listener listener(Endpoint::parse("unix:" + path));
  EXPECT_TRUE(is_cloexec(listener.fd()));

  Channel client = connect_channel(listener.endpoint());
  EXPECT_TRUE(is_cloexec(client.fd()));

  Channel accepted = listener.accept();
  EXPECT_TRUE(is_cloexec(accepted.fd()));
}

TEST(Cloexec, TcpSocketsCarryTheFlag) {
  Listener listener(Endpoint::parse("tcp:0"));  // ephemeral port
  EXPECT_TRUE(is_cloexec(listener.fd()));

  Channel client = connect_channel(listener.endpoint());
  EXPECT_TRUE(is_cloexec(client.fd()));

  Channel accepted = listener.accept();
  EXPECT_TRUE(is_cloexec(accepted.fd()));
}

TEST(Cloexec, PeerCloseDeliversEofDespiteSpawnedChild) {
  // The regression this guards: fork+exec a long-lived child while a
  // connection is open. Without CLOEXEC the child inherits both fds
  // and the server would never see EOF after the client closes -- the
  // poll() below would time out. With CLOEXEC the exec drops every
  // copy and EOF arrives immediately.
  const std::string path = temp_sock_path("eof");
  Listener listener(Endpoint::parse("unix:" + path));
  Channel client = connect_channel(listener.endpoint());
  Channel server = listener.accept();

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::execl("/bin/sleep", "sleep", "30", static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }

  client.close();

  pollfd pfd{};
  pfd.fd = server.fd();
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, 5000);
  EXPECT_EQ(ready, 1) << "no EOF within 5s: an fd leaked into the child";
  if (ready == 1) {
    // Orderly EOF: recv() reports the peer as gone.
    EXPECT_FALSE(server.recv().has_value());
  }

  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
}

TEST(Cloexec, AgentDeathForfeitsPromptly) {
  // Same property from the other side: SIGKILL the process holding
  // the client end; the server must observe EOF promptly (this is
  // what turns agent death into immediate lease forfeiture instead of
  // a lease-timeout wait).
  const std::string path = temp_sock_path("death");
  Listener listener(Endpoint::parse("unix:" + path));

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: connect, then hang until killed.
    try {
      Channel mine = connect_channel(listener.endpoint());
      ::pause();
    } catch (...) {
    }
    _exit(0);
  }

  Channel server = listener.accept();
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);

  pollfd pfd{};
  pfd.fd = server.fd();
  pfd.events = POLLIN;
  EXPECT_EQ(::poll(&pfd, 1, 5000), 1);
  EXPECT_FALSE(server.recv().has_value());
}

}  // namespace
}  // namespace dash::fleet
