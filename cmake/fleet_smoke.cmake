# fleet_smoke.cmake -- end-to-end smoke of the dash::fleet service, run
# as a ctest (and by the CI fleet-smoke job). A coordinator serves a
# tiny grid to local agent processes with one agent SIGKILLed mid-cell
# (--chaos kill:<cell> arms agent 0): the serve must still exit 0 and
# its merged BENCH document AND rows CSV must be byte-identical to the
# undisturbed sequential run. A second round checkpoints the
# coordinator mid-grid (--stop-after, exit code 3) and resumes it from
# the spool manifest to the same bytes.
#
#   cmake -DDASH_LAB=<path> -DWORK_DIR=<scratch dir> -P fleet_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DDASH_LAB=<binary> and -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(GRID "name=fleet n=24|32 healer=dash|graph scenario=paper-churn instances=2 seed=11")

function(run_lab)
  execute_process(COMMAND ${DASH_LAB} ${ARGN}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dash_lab ${ARGN} failed (${rc}):\n${err}")
  endif()
endfunction()

function(assert_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

# 1. Undisturbed single-process reference (document + rows).
run_lab(run --grid ${GRID} --threads 1 --quiet
        --json ${WORK_DIR}/seq.json --rows ${WORK_DIR}/seq_rows.csv)

# 2. Fleet run: coordinator + 3 local agents, agent 0 SIGKILLed after
#    streaming cell 1's rows but before its RESULT. The coordinator
#    must reassign the cell and the serve must succeed with the exact
#    sequential bytes -- the dead agent leaves no seam.
run_lab(serve --grid ${GRID} --agents 3 --threads 1 --chaos kill:1
        --state-dir ${WORK_DIR}/chaos_state --quiet
        --json ${WORK_DIR}/fleet.json --rows ${WORK_DIR}/fleet_rows.csv)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/fleet.json
            "fleet-with-killed-agent document vs sequential")
assert_same(${WORK_DIR}/seq_rows.csv ${WORK_DIR}/fleet_rows.csv
            "fleet-with-killed-agent rows vs sequential")

# 3. Checkpoint: stop the coordinator after 3 committed cells. The
#    distinct exit code 3 says "incomplete by design, spool is the
#    checkpoint".
execute_process(COMMAND ${DASH_LAB} serve --grid ${GRID} --agents 2
                --threads 1 --stop-after 3
                --state-dir ${WORK_DIR}/ckpt_state --quiet
                --json ${WORK_DIR}/ckpt.json
                --rows ${WORK_DIR}/ckpt_rows.csv
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "serve --stop-after 3 exited ${rc}, expected checkpoint code 3:\n${err}")
endif()

# 4. Resume from the spool manifest: only the missing cells are
#    recomputed; document and rows must match the sequential run.
run_lab(serve --grid ${GRID} --agents 2 --threads 1 --resume
        --state-dir ${WORK_DIR}/ckpt_state --quiet
        --json ${WORK_DIR}/resumed.json
        --rows ${WORK_DIR}/resumed_rows.csv)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/resumed.json
            "resumed-serve document vs sequential")
assert_same(${WORK_DIR}/seq_rows.csv ${WORK_DIR}/resumed_rows.csv
            "resumed-serve rows vs sequential")

message(STATUS "fleet serve/agent chaos + checkpoint identity OK")
