# replay_chaos_smoke.cmake -- crash-fault injection for the exp
# orchestrator, run as a ctest (and by the CI replay-fuzz-smoke job).
# A worker process is SIGKILLed mid-sweep (DASH_CHAOS=kill:<cell>), the
# orchestrator must fail naming the signal, and a --resume rerun must
# produce a BENCH document AND per-shard rows CSV byte-identical to the
# undisturbed sequential run. A second round does the same with a torn
# half-written record (DASH_CHAOS=torn:<cell>).
#
#   cmake -DDASH_LAB=<path> -DWORK_DIR=<scratch dir> -P replay_chaos_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DDASH_LAB=<binary> and -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(GRID "name=chaos n=24|32 healer=dash|graph scenario=paper-churn instances=2 seed=11")

function(run_lab)
  execute_process(COMMAND ${DASH_LAB} ${ARGN}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dash_lab ${ARGN} failed (${rc}):\n${err}")
  endif()
endfunction()

function(assert_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

# 1. Undisturbed single-process reference (document + rows).
run_lab(run --grid ${GRID} --threads 1 --quiet
        --json ${WORK_DIR}/seq.json --rows ${WORK_DIR}/seq_rows.csv)

# 2. Orchestrated run with a worker SIGKILLed at cell 2: must fail, and
#    the error must name the killed worker's signal.
execute_process(COMMAND ${DASH_LAB} run --grid ${GRID} --workers 2
                --shard-dir ${WORK_DIR}/kill_shards --chaos kill:2 --quiet
                --json ${WORK_DIR}/kill.json --rows ${WORK_DIR}/kill_rows.csv
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "chaos kill:2 run unexpectedly succeeded")
endif()
if(NOT err MATCHES "killed by signal 9")
  message(FATAL_ERROR "orchestrator did not name the fatal signal:\n${err}")
endif()
if(NOT err MATCHES "--resume")
  message(FATAL_ERROR "failure message does not point at --resume:\n${err}")
endif()

# 3. Resume with chaos disarmed: only the missing cells are recomputed;
#    document and rows must be byte-identical to the sequential run.
run_lab(run --grid ${GRID} --workers 2 --shard-dir ${WORK_DIR}/kill_shards
        --resume --quiet
        --json ${WORK_DIR}/kill_resumed.json
        --rows ${WORK_DIR}/kill_resumed_rows.csv)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/kill_resumed.json
            "resumed-after-kill document vs sequential")
assert_same(${WORK_DIR}/seq_rows.csv ${WORK_DIR}/kill_resumed_rows.csv
            "resumed-after-kill rows vs sequential")

# 4. Torn write: the worker flushes half a record line (no newline)
#    before dying. The shard loader's truncated-final-line recovery
#    must eat it on resume and the bytes must still match. (--rows is
#    passed on both runs: resume keeps completed cells' rows from the
#    first run's rows files rather than recomputing them.)
execute_process(COMMAND ${DASH_LAB} run --grid ${GRID} --workers 2
                --shard-dir ${WORK_DIR}/torn_shards --chaos torn:1 --quiet
                --json ${WORK_DIR}/torn.json --rows ${WORK_DIR}/torn_rows.csv
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "chaos torn:1 run unexpectedly succeeded")
endif()
if(NOT err MATCHES "killed by signal 9")
  message(FATAL_ERROR "torn-write worker death not reported:\n${err}")
endif()
run_lab(run --grid ${GRID} --workers 2 --shard-dir ${WORK_DIR}/torn_shards
        --resume --quiet
        --json ${WORK_DIR}/torn_resumed.json
        --rows ${WORK_DIR}/torn_resumed_rows.csv)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/torn_resumed.json
            "resumed-after-torn document vs sequential")
assert_same(${WORK_DIR}/seq_rows.csv ${WORK_DIR}/torn_resumed_rows.csv
            "resumed-after-torn rows vs sequential")

message(STATUS "chaos kill/torn + resume identity OK")
