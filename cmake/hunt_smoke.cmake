# hunt_smoke.cmake -- end-to-end adversary-search check over the
# dash_lab CLI, run as a ctest (and by the CI hunt-smoke job). Asserts
# the hunt subsystem's user-facing contract: a tiny-budget evolutionary
# hunt beats the random baseline at the same budget and seed, the
# winning schedule is emitted as a trace that replays bit-identically
# standalone, and that trace round-trips through a `dash_lab run` grid
# cell reproducing the scored run's bytes.
#
#   cmake -DDASH_LAB=<path> -DWORK_DIR=<scratch dir> -P hunt_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DDASH_LAB=<binary> and -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# One hunt target for everything below; the combo fitness keeps scores
# fractional so strategies separate cleanly.
set(TARGET --family ba --n 48 --healers capped:2 --instances 2
    --fitness combo:1,0.25,2 --budget 60 --seed 5 --threads 1 --quiet)

function(run_lab out_var)
  execute_process(COMMAND ${DASH_LAB} ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dash_lab ${ARGN} failed (${rc}):\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Extracts the first run object of the document's first group: the
# instance-0 metrics the trace round-trip must reproduce byte for byte.
function(first_run out_var json_path)
  file(READ ${json_path} doc)
  string(REGEX MATCH "\"runs\":\\[{[^}]*}" run "${doc}")
  if(NOT run)
    message(FATAL_ERROR "${json_path} has no runs array")
  endif()
  set(${out_var} "${run}" PARENT_SCOPE)
endfunction()

# 1. Evolutionary hunt vs the random baseline, same budget, same seed.
run_lab(evolve_out hunt --name smoke --strategy evolve:8 ${TARGET}
        --state-dir ${WORK_DIR}/evolve)
run_lab(random_out hunt --name smoke --strategy random ${TARGET}
        --state-dir ${WORK_DIR}/random)
string(REGEX MATCH "best fitness=([0-9.]+)" _ "${evolve_out}")
set(evolve_fit ${CMAKE_MATCH_1})
string(REGEX MATCH "best fitness=([0-9.]+)" _ "${random_out}")
set(random_fit ${CMAKE_MATCH_1})
if(NOT evolve_fit GREATER random_fit)
  message(FATAL_ERROR "evolve (${evolve_fit}) did not beat random "
                      "(${random_fit}) at equal budget")
endif()

# 2. The winner's trace replays bit-identically standalone.
string(REGEX MATCH "trace: ([^\n]+best1\\.trace)" _ "${evolve_out}")
set(best_trace ${CMAKE_MATCH_1})
if(NOT best_trace)
  message(FATAL_ERROR "hunt did not report a best1 trace:\n${evolve_out}")
endif()
run_lab(replay_out replay --trace ${best_trace})

# 3. Grid round-trip: loaded back via scenario=trace:<file> with the
#    hunt's base seed, the cell's instance-0 run reproduces the scored
#    run's bytes exactly.
run_lab(grid_out run
        --grid "name=smoke family=ba n=48 healer=capped:2 scenario=trace:${best_trace} instances=1 seed=5 stretch_every=8"
        --threads 1 --quiet --json ${WORK_DIR}/roundtrip.json)
first_run(hunted ${WORK_DIR}/evolve/HUNT_smoke.json)
first_run(replayed ${WORK_DIR}/roundtrip.json)
if(NOT hunted STREQUAL replayed)
  message(FATAL_ERROR "grid-cell trace replay diverged from the scored "
                      "run:\nhunt:   ${hunted}\nreplay: ${replayed}")
endif()

# 4. list-cells --json emits the machine-readable enumeration.
run_lab(cells_out list-cells
        --grid "name=smoke family=ba n=48 healer=capped:2 scenario=paper-churn instances=1 seed=5"
        --json)
if(NOT cells_out MATCHES "\"cells\":\\[{\"index\":0,")
  message(FATAL_ERROR "list-cells --json output malformed:\n${cells_out}")
endif()

message(STATUS "hunt smoke OK (evolve ${evolve_fit} > random ${random_fit})")
