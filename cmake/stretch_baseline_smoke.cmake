# stretch_baseline_smoke.cmake -- the stretch-metric regression guard,
# run as a ctest (`ctest -L bench-smoke`). Re-executes the committed
# fig10-style dash_lab grid and byte-compares the merged BENCH document
# against BENCH_stretch_baseline.json at the repo root. The document
# carries metrics only (no timings), so any diff is a *metric* change:
# the flat traversal engine, the wave-based stretch sampler, and every
# future rewrite of that path must keep these bytes stable.
#
#   cmake -DDASH_LAB=<binary> -DWORK_DIR=<scratch> -DBASELINE=<json>
#         -P stretch_baseline_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR OR NOT BASELINE)
  message(FATAL_ERROR
          "need -DDASH_LAB=<binary> -DWORK_DIR=<dir> -DBASELINE=<json>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# The grid that produced BENCH_stretch_baseline.json: the Fig. 10
# workload (BA graphs, MaxNode attack to half size, stretch sampled
# every 4th deletion) over the paper's five strategies.
set(GRID "name=stretch_baseline n=32|64|128 healer=graph|line|binarytree|dash|sdash scenario=untilfrac:0.5,maxnode stretch_every=4 instances=3 seed=3419")

execute_process(COMMAND ${DASH_LAB} run --grid ${GRID} --threads 1
                        --quiet --json ${WORK_DIR}/stretch_rerun.json
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dash_lab stretch grid failed (${rc}):\n${err}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/stretch_rerun.json ${BASELINE}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "stretch metrics drifted: ${WORK_DIR}/stretch_rerun.json no "
          "longer matches ${BASELINE}. If the change is intentional, "
          "regenerate the baseline with:\n  dash_lab run --grid "
          "\"${GRID}\" --threads 1 --quiet --json BENCH_stretch_baseline.json")
endif()

message(STATUS "stretch baseline bytes OK")
