# million_baseline_smoke.cmake -- the landmark-estimator regression
# guard, run as a ctest (`ctest -L bench-smoke`). Re-executes the
# committed estimate-mode dash_lab grid and byte-compares the merged
# BENCH document against BENCH_million_baseline.json at the repo root.
# The document carries metrics only (no timings); max_stretch is the
# estimator's conservative upper bound, so any diff means the landmark
# selection, the bit-parallel wave, or the pair-bound arithmetic
# changed behavior.
#
#   cmake -DDASH_LAB=<binary> -DWORK_DIR=<scratch> -DBASELINE=<json>
#         -P million_baseline_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR OR NOT BASELINE)
  message(FATAL_ERROR
          "need -DDASH_LAB=<binary> -DWORK_DIR=<dir> -DBASELINE=<json>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# The grid that produced BENCH_million_baseline.json: MaxNode attack to
# 30% size with estimate-mode stretch sampling (16 landmarks, 128
# pairs) over the two DASH variants.
set(GRID "name=million_baseline n=512|1024 healer=dash|sdash scenario=untilfrac:0.3,maxnode stretch_every=8 stretch_estimate=1 stretch_landmarks=16 stretch_pairs=128 instances=2 seed=4242")

execute_process(COMMAND ${DASH_LAB} run --grid ${GRID} --threads 1
                        --quiet --json ${WORK_DIR}/million_rerun.json
                RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dash_lab million grid failed (${rc}):\n${err}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                        ${WORK_DIR}/million_rerun.json ${BASELINE}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "estimator metrics drifted: ${WORK_DIR}/million_rerun.json no "
          "longer matches ${BASELINE}. If the change is intentional, "
          "regenerate the baseline with:\n  dash_lab run --grid "
          "\"${GRID}\" --threads 1 --quiet --json BENCH_million_baseline.json")
endif()

message(STATUS "million baseline bytes OK")
