# replay_smoke.cmake -- end-to-end record/replay/fuzz check over the
# dash_lab CLI, run as a ctest (and by the CI replay-fuzz-smoke job).
# Asserts the replay subsystem's user-facing contract: a recorded run
# replays bit-identically, a broken invariant is reported with a
# non-zero exit, and the fuzzer turns an injected failure mode into a
# shrunken repro trace that reproduces standalone via `dash_lab replay`.
#
#   cmake -DDASH_LAB=<path> -DWORK_DIR=<scratch dir> -P replay_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DDASH_LAB=<binary> and -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_lab)
  execute_process(COMMAND ${DASH_LAB} ${ARGN}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dash_lab ${ARGN} failed (${rc}):\n${err}")
  endif()
endfunction()

# Runs dash_lab expecting a non-zero exit; stores stderr in ${out_var}.
function(run_lab_expect_fail out_var)
  execute_process(COMMAND ${DASH_LAB} ${ARGN}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "dash_lab ${ARGN} unexpectedly succeeded")
  endif()
  set(${out_var} "${err}" PARENT_SCOPE)
endfunction()

# 1. Record a paper-churn run and replay it strictly: digests, event
#    counts, and footer metrics must all verify (exit 0).
run_lab(record --trace ${WORK_DIR}/run.trace
        --family ba --n 64 --ba-edges 2
        --healer dash --scenario paper-churn --seed 7)
run_lab(replay --trace ${WORK_DIR}/run.trace)

# 2. Replaying the same deletion schedule with healing disabled must
#    report an invariant violation and exit non-zero.
run_lab_expect_fail(noheal_err replay --trace ${WORK_DIR}/run.trace
                    --healer none --lenient --invariants)
if(NOT noheal_err MATCHES "invariant violation")
  message(FATAL_ERROR "no-heal replay did not report a violation:\n${noheal_err}")
endif()

# 3. Differential fuzz across the paper's healers: mutated traces must
#    replay cleanly under every strategy (any violation is a real bug).
run_lab(fuzz --trace ${WORK_DIR}/run.trace --mutants 4 --seed 5)

# 4. Fuzz with an injected failure mode (healing off): failures must be
#    found, shrunk, and persisted as repro traces in --repro-dir.
run_lab_expect_fail(fuzz_err fuzz --trace ${WORK_DIR}/run.trace
                    --mutants 5 --seed 3 --healers none
                    --repro-dir ${WORK_DIR}/repro)
file(GLOB repros ${WORK_DIR}/repro/repro_*.trace)
list(LENGTH repros n_repros)
if(n_repros EQUAL 0)
  message(FATAL_ERROR "fuzz reported failures but wrote no repro traces:\n${fuzz_err}")
endif()

# 5. Every persisted repro reproduces standalone: `dash_lab replay`
#    on it (no extra flags beyond the recorded lenient context) fails.
foreach(repro ${repros})
  run_lab_expect_fail(repro_err replay --trace ${repro}
                      --lenient --invariants)
  if(NOT repro_err MATCHES "invariant violation|diverged")
    message(FATAL_ERROR "repro ${repro} did not reproduce:\n${repro_err}")
  endif()
endforeach()

message(STATUS "replay record/replay/fuzz smoke OK (${n_repros} repros reproduced)")
