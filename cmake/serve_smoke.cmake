# serve_smoke.cmake -- end-to-end smoke of the concurrent serving
# engine: serve_churn on a small graph with the full label-vs-BFS
# cross-check (--verify) must report zero torn reads and a
# deterministic mutation stream (its exit code says both), and the
# `dash_lab serve-bench` verb must produce the JSON report.
#
# Expects: SERVE_CHURN, DASH_LAB, WORK_DIR.

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${SERVE_CHURN} --n 512 --readers 2,4
          --scenario churn:0.3,0.1x300 --verify
          --json ${WORK_DIR}/serve_churn.json
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve_churn --verify failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS ${WORK_DIR}/serve_churn.json)
  message(FATAL_ERROR "serve_churn wrote no JSON report")
endif()
file(READ ${WORK_DIR}/serve_churn.json report)
if(NOT report MATCHES "\"torn_reads\": 0")
  message(FATAL_ERROR "serve_churn reported torn reads:\n${report}")
endif()
if(NOT report MATCHES "\"deterministic\": true")
  message(FATAL_ERROR "mutation stream diverged across reader counts:\n${report}")
endif()

execute_process(
  COMMAND ${DASH_LAB} serve-bench --n 256 --readers 4
          --scenario churn:0.3,0.1x200 --distance-every 4
          --rows ${WORK_DIR}/serve_rows.csv
          --json ${WORK_DIR}/serve_bench.json --quiet
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "dash_lab serve-bench failed (rc=${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS ${WORK_DIR}/serve_bench.json)
  message(FATAL_ERROR "dash_lab serve-bench wrote no JSON report")
endif()
# The async row pipeline streamed the last round's rows: header + data.
file(STRINGS ${WORK_DIR}/serve_rows.csv rows_lines)
list(LENGTH rows_lines rows_count)
if(rows_count LESS 2)
  message(FATAL_ERROR "serve-bench rows CSV is empty (${rows_count} lines)")
endif()

message(STATUS "serve smoke passed: zero torn reads, deterministic, "
               "${rows_count} row lines")
