# dash_lab_smoke.cmake -- end-to-end shard/merge identity check, run as
# a ctest (and by the CI smoke job). Drives the dash_lab binary through
# every execution path over one tiny grid and asserts the exp layer's
# core guarantee: the merged document of any partition of the cells is
# byte-identical to the single-process sequential run.
#
#   cmake -DDASH_LAB=<path> -DWORK_DIR=<scratch dir> -P dash_lab_smoke.cmake
if(NOT DASH_LAB OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DDASH_LAB=<binary> and -DWORK_DIR=<dir>")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

set(GRID "name=smoke n=24|32 healer=dash|graph scenario=paper-churn|until-quarter instances=2 seed=11")

function(run_lab)
  execute_process(COMMAND ${DASH_LAB} ${ARGN}
                  RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dash_lab ${ARGN} failed (${rc}):\n${err}")
  endif()
endfunction()

function(assert_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
                  RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

# 1. Single-process sequential reference.
run_lab(run --grid ${GRID} --threads 1 --quiet --json ${WORK_DIR}/seq.json)

# 2. Two single-shard worker invocations (the distributed path, driven
#    by hand) + merge.
run_lab(run --grid ${GRID} --shard 0/2 --threads 1 --quiet
        --out ${WORK_DIR}/s0.jsonl)
run_lab(run --grid ${GRID} --shard 1/2 --threads 1 --quiet
        --out ${WORK_DIR}/s1.jsonl)
run_lab(merge --grid ${GRID}
        --inputs ${WORK_DIR}/s0.jsonl,${WORK_DIR}/s1.jsonl
        --quiet --json ${WORK_DIR}/merged.json)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/merged.json
            "2-shard merge vs sequential")

# 3. The orchestrator: two worker *processes* spawned by dash_lab
#    itself, suites running on thread pools.
run_lab(run --grid ${GRID} --workers 2 --shard-dir ${WORK_DIR}/shards
        --quiet --json ${WORK_DIR}/orchestrated.json)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/orchestrated.json
            "orchestrated 2-process run vs sequential")

# 4. Resume: drop shard 1, rerun orchestrated with --resume; only the
#    missing cells are recomputed and the bytes still match.
file(REMOVE ${WORK_DIR}/shards/shard_1_of_2.jsonl)
run_lab(run --grid ${GRID} --workers 2 --shard-dir ${WORK_DIR}/shards
        --resume --quiet --json ${WORK_DIR}/resumed.json)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/resumed.json
            "resumed orchestrated run vs sequential")

# 5. Resume after an *interrupted write*: chop the final record of
#    shard 0 mid-line (no trailing newline); the truncated cell must be
#    recomputed, the manifest rewritten cleanly, and the bytes still
#    match.
file(READ ${WORK_DIR}/shards/shard_0_of_2.jsonl shard0)
string(LENGTH "${shard0}" shard0_len)
math(EXPR cut "${shard0_len} - 25")
string(SUBSTRING "${shard0}" 0 ${cut} shard0)
file(WRITE ${WORK_DIR}/shards/shard_0_of_2.jsonl "${shard0}")
run_lab(run --grid ${GRID} --workers 2 --shard-dir ${WORK_DIR}/shards
        --resume --quiet --json ${WORK_DIR}/resumed_truncated.json)
assert_same(${WORK_DIR}/seq.json ${WORK_DIR}/resumed_truncated.json
            "resume after truncated shard write vs sequential")

message(STATUS "dash_lab shard/merge identity OK")
