// adversarial_tree.cpp -- walks through the Theorem 2 lower-bound
// construction interactively: a complete (M+2)-ary tree attacked level
// by level (LEVELATTACK) against an M-degree-bounded healer, printing
// the forced degree increase as each level falls. The per-level
// reporting is an Observer on the engine; the attack itself runs as a
// declarative scenario with a custom attacker factory (LEVELATTACK
// needs the tree metadata, so it is not registry-constructible).
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "attack/level_attack.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

/// Emits one table row whenever the last planned node of a tree level
/// falls, tracking the Lemma 13 floor level by level.
class LevelWatch final : public dash::api::Observer {
 public:
  LevelWatch(const dash::graph::KaryTree& tree, std::size_t depth,
             dash::util::Table& table)
      : tree_(tree),
        depth_(depth),
        table_(table),
        current_level_(tree.level.empty()
                           ? 0
                           : static_cast<std::uint32_t>(depth) - 1) {}

  std::string name() const override { return "level-watch"; }

  void on_round_end(const dash::api::Network& net,
                    const dash::api::RoundEvent& ev) override {
    const auto v = ev.victim;
    const bool planned_level_node = tree_.level[v] <= current_level_ &&
                                    !tree_.children[v].empty();
    if (!planned_level_node || tree_.level[v] != current_level_) return;
    // Report when the last internal node of the level falls.
    for (dash::graph::NodeId u = 0; u < net.graph().num_nodes(); ++u) {
      if (tree_.level[u] == current_level_ && net.graph().alive(u) &&
          !tree_.children[u].empty()) {
        return;  // level not done yet
      }
    }
    table_.begin_row()
        .cell(std::to_string(current_level_))
        .cell(std::to_string(net.rounds()))
        .cell(std::to_string(net.graph().num_alive()))
        .cell(std::to_string(net.state().max_delta_ever()))
        .cell(std::to_string(depth_ - current_level_));
    if (current_level_ > 0) --current_level_;
  }

 private:
  const dash::graph::KaryTree& tree_;
  std::size_t depth_;
  dash::util::Table& table_;
  std::uint32_t current_level_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t m = 2, depth = 4, seed = 3;
  dash::util::Options opt(
      "Theorem 2 walkthrough: LEVELATTACK vs an M-degree-bounded healer");
  opt.add_uint("m", &m, "healer's per-round degree budget M (>= 2)");
  opt.add_uint("depth", &depth, "depth of the (M+2)-ary tree");
  opt.add_uint("seed", &seed, "RNG seed (ids only)");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  const auto tree = dash::graph::complete_kary_tree(
      static_cast<std::size_t>(m + 2), static_cast<std::size_t>(depth));
  auto g = tree.g;
  const std::size_t n = g.num_nodes();
  std::cout << "tree: (" << m + 2 << ")-ary, depth " << depth << ", " << n
            << " nodes; healer budget M=" << m << " per round\n"
            << "adversary: delete levels " << depth - 1
            << "..0 bottom-up, pruning excess children first\n\n";

  dash::util::Rng rng(seed);
  dash::api::Network net(
      std::move(g),
      dash::core::make_strategy("capped:" + std::to_string(m)), rng);

  dash::util::Table table({"after_level", "deletions_so_far",
                           "alive", "max_forced_delta", "lemma13_floor"});
  LevelWatch watch(tree, static_cast<std::size_t>(depth), table);
  net.add_observer(&watch);

  // LEVELATTACK stops on its own after the root falls; the scenario
  // borrows the caller-owned attack so its statistics stay readable.
  dash::attack::LevelAttack atk(tree, static_cast<std::uint32_t>(m));
  const auto scenario = dash::api::Scenario().targeted(
      [&atk](std::uint64_t) {
        return std::make_unique<dash::attack::BorrowedAttack>(atk);
      },
      "levelattack");
  net.play(scenario, rng);

  table.print(std::cout);
  std::cout << "\nLemma 13: after level i falls, some surviving original "
               "leaf carries delta >= D-i.\nTheorem 2: after the root "
               "(level 0), some node carries delta >= D = "
            << depth << " ~ log_{" << m + 2 << "}(n) = "
            << std::log(static_cast<double>(n)) /
                   std::log(static_cast<double>(m + 2))
            << ".\nmeasured forced delta: "
            << net.state().max_delta_ever() << "\n";
  return net.state().max_delta_ever() >= depth ? 0 : 1;
}
