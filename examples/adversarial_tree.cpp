// adversarial_tree.cpp -- walks through the Theorem 2 lower-bound
// construction interactively: a complete (M+2)-ary tree attacked level
// by level (LEVELATTACK) against an M-degree-bounded healer, printing
// the forced degree increase as each level falls.
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "attack/level_attack.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  std::uint64_t m = 2, depth = 4, seed = 3;
  dash::util::Options opt(
      "Theorem 2 walkthrough: LEVELATTACK vs an M-degree-bounded healer");
  opt.add_uint("m", &m, "healer's per-round degree budget M (>= 2)");
  opt.add_uint("depth", &depth, "depth of the (M+2)-ary tree");
  opt.add_uint("seed", &seed, "RNG seed (ids only)");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  const auto tree = dash::graph::complete_kary_tree(
      static_cast<std::size_t>(m + 2), static_cast<std::size_t>(depth));
  auto g = tree.g;
  const std::size_t n = g.num_nodes();
  std::cout << "tree: (" << m + 2 << ")-ary, depth " << depth << ", " << n
            << " nodes; healer budget M=" << m << " per round\n"
            << "adversary: delete levels " << depth - 1
            << "..0 bottom-up, pruning excess children first\n\n";

  dash::util::Rng rng(seed);
  dash::api::Network net(
      std::move(g),
      dash::core::make_strategy("capped:" + std::to_string(m)), rng);
  dash::attack::LevelAttack atk(tree, static_cast<std::uint32_t>(m));

  dash::util::Table table({"after_level", "deletions_so_far",
                           "alive", "max_forced_delta", "lemma13_floor"});
  std::uint32_t current_level = tree.level.empty()
                                    ? 0
                                    : static_cast<std::uint32_t>(depth) - 1;
  while (net.graph().num_alive() > 1) {
    const auto v = atk.select(net.graph(), net.state());
    if (v == dash::graph::kInvalidNode) break;
    const bool planned_level_node = tree.level[v] <= current_level &&
                                    tree.children[v].size() > 0;
    net.remove(v);
    // Report when the last node of a level falls.
    if (planned_level_node && tree.level[v] == current_level) {
      bool level_done = true;
      for (dash::graph::NodeId u = 0; u < n; ++u) {
        if (tree.level[u] == current_level && net.graph().alive(u) &&
            !tree.children[u].empty()) {
          level_done = false;
          break;
        }
      }
      if (level_done) {
        table.begin_row()
            .cell(std::to_string(current_level))
            .cell(std::to_string(net.rounds()))
            .cell(std::to_string(net.graph().num_alive()))
            .cell(std::to_string(net.state().max_delta_ever()))
            .cell(std::to_string(depth - current_level));
        if (current_level == 0) break;
        --current_level;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nLemma 13: after level i falls, some surviving original "
               "leaf carries delta >= D-i.\nTheorem 2: after the root "
               "(level 0), some node carries delta >= D = "
            << depth << " ~ log_{" << m + 2 << "}(n) = "
            << std::log(static_cast<double>(n)) /
                   std::log(static_cast<double>(m + 2))
            << ".\nmeasured forced delta: "
            << net.state().max_delta_ever() << "\n";
  return net.state().max_delta_ever() >= depth ? 0 : 1;
}
