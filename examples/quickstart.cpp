// quickstart.cpp -- the smallest complete use of the library:
// build a network, attack it, heal it with DASH, inspect guarantees.
//
//   $ ./quickstart [--n 256] [--healer dash] [--attack neighborofmax]
#include <cmath>
#include <iostream>

#include "analysis/experiment.h"
#include "attack/factory.h"
#include "core/factory.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  std::uint64_t n = 256, seed = 42;
  std::string healer_name = "dash", attack_name = "neighborofmax";
  dash::util::Options opt("dashheal quickstart");
  opt.add_uint("n", &n, "network size");
  opt.add_uint("seed", &seed, "RNG seed");
  opt.add_string("healer", &healer_name,
                 "healing strategy (dash/sdash/graph/binarytree/line)");
  opt.add_string("attack", &attack_name,
                 "attack strategy (maxnode/neighborofmax/random/...)");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  // 1. Build a power-law network (the paper's experimental substrate).
  dash::util::Rng rng(seed);
  auto g = dash::graph::barabasi_albert(static_cast<std::size_t>(n), 2, rng);
  std::cout << "network: " << g.num_alive() << " nodes, " << g.num_edges()
            << " edges\n";

  // 2. Attach healing state (ids, deltas, weights, the healing forest).
  dash::core::HealingState state(g, rng);

  // 3. Pick an adversary and a healer.
  auto attacker = dash::attack::make_attack(attack_name, seed);
  auto healer = dash::core::make_strategy(healer_name);
  std::cout << "attack: " << attacker->name()
            << ", healer: " << healer->name() << "\n";

  // 4. Let the adversary delete every node; heal after each deletion;
  //    verify invariants as we go.
  dash::analysis::ScheduleConfig cfg;
  cfg.check_invariants = true;
  const auto result =
      dash::analysis::run_schedule(g, state, *attacker, *healer, cfg);

  // 5. Report.
  std::cout << "\nafter " << result.deletions << " deletions:\n"
            << "  stayed connected:    "
            << (result.stayed_connected ? "yes" : "NO") << "\n"
            << "  invariants:          "
            << (result.violation.empty() ? "all hold"
                                         : result.violation)
            << "\n"
            << "  max degree increase: " << result.max_delta << " (bound "
            << 2.0 * std::log2(static_cast<double>(n)) << ")\n"
            << "  healing edges added: " << result.edges_added << "\n"
            << "  max id changes:      " << result.max_id_changes << "\n"
            << "  max messages/node:   " << result.max_messages << "\n";
  return result.stayed_connected && result.violation.empty() ? 0 : 1;
}
