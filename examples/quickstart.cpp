// quickstart.cpp -- the smallest complete use of the library:
// build a network, hand it to the api::Network engine, describe the
// workload as a declarative scenario, play it, and inspect the
// guarantees via observers.
//
//   $ ./quickstart [--n 256] [--healer dash] [--attack neighborofmax]
//   $ ./quickstart --scenario 'churn:0.3,0.1x200;batch:4x10'
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  std::uint64_t n = 256, seed = 42;
  std::string healer_name = "dash", attack_name = "neighborofmax";
  std::string scenario_spec;
  dash::util::Options opt("dashheal quickstart");
  opt.add_uint("n", &n, "network size");
  opt.add_uint("seed", &seed, "RNG seed");
  opt.add_string("healer", &healer_name,
                 "healing strategy (dash/sdash/graph/binarytree/line)");
  opt.add_string("attack", &attack_name,
                 "attack strategy (maxnode/neighborofmax/random/...)");
  opt.add_string("scenario", &scenario_spec,
                 "scenario spec (default: targeted:<attack>)");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  // 1. Build a power-law network (the paper's experimental substrate)
  //    and hand it to the engine together with a healer from the
  //    registry. The engine owns graph + healing state + strategy.
  dash::util::Rng rng(seed);
  auto g = dash::graph::barabasi_albert(static_cast<std::size_t>(n), 2, rng);
  std::cout << "network: " << g.num_alive() << " nodes, " << g.num_edges()
            << " edges\n";
  dash::api::Network net(std::move(g), dash::core::make_strategy(healer_name),
                         rng);

  // 2. Plug in measurement: the full invariant battery after each round.
  dash::api::InvariantObserver invariants;
  net.add_observer(&invariants);

  // 3. Describe the workload declaratively. The default spec is the
  //    paper's full schedule -- the chosen adversary deletes until one
  //    node remains -- but any phase list works (try
  //    --scenario 'churn:0.3,0.1x200;batch:4x10').
  dash::api::Scenario scenario;
  try {
    scenario = dash::api::Scenario::parse(
        scenario_spec.empty() ? "targeted:" + attack_name : scenario_spec);
  } catch (const std::invalid_argument& e) {
    std::cerr << "bad scenario: " << e.what() << "\n";
    return 2;
  }
  std::cout << "scenario: " << scenario.spec()
            << ", healer: " << net.healer().name() << "\n";

  // 4. Play it; the engine heals after every deletion and all
  //    randomness comes from the seed stream.
  const dash::api::Metrics result = net.play(scenario, rng);

  // 5. Report.
  std::cout << "\nafter " << result.deletions << " deletions and "
            << result.joins << " joins:\n"
            << "  stayed connected:    "
            << (result.stayed_connected ? "yes" : "NO") << "\n"
            << "  invariants:          "
            << (result.violation.empty() ? "all hold"
                                         : result.violation)
            << "\n"
            << "  max degree increase: " << result.max_delta << " (bound "
            << 2.0 * std::log2(static_cast<double>(n)) << ")\n"
            << "  healing edges added: " << result.edges_added << "\n"
            << "  max id changes:      " << result.max_id_changes << "\n"
            << "  max messages/node:   " << result.max_messages << "\n";
  return result.stayed_connected && result.violation.empty() ? 0 : 1;
}
