// p2p_overlay.cpp -- a Skype-like peer-to-peer overlay under churn and
// attack (the paper's motivating scenario: the 2007 Skype outage).
//
// Scenario: a power-law overlay of peers where "supernodes" (hubs) are
// protected but their neighbors get taken down (the NeighborOfMax
// adversary), interleaved with organic departures and new peers
// joining. The whole workload is one declarative scenario spec --
// five churn events per iteration: two targeted sabotages, one random
// departure, one more sabotage, one join -- and we compare no healing
// vs DASH healing on it.
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using dash::graph::Graph;

struct ChurnOutcome {
  std::size_t deletions = 0;
  std::size_t joins = 0;
  std::size_t first_disconnect_round = 0;  ///< 0 = never disconnected
  std::size_t final_largest_component = 0;
  std::size_t final_alive = 0;
  std::uint32_t max_delta = 0;
};

/// Custom pipeline stage: remember the first round the overlay
/// disconnected (0 = never). Reading ev.connected() triggers the lazy
/// per-round connectivity scan -- scenario-specific measurement plugs
/// into the engine instead of being wired into an event loop.
class DisconnectWatch final : public dash::api::Observer {
 public:
  std::string name() const override { return "disconnect-watch"; }
  void on_round_end(const dash::api::Network&,
                    const dash::api::RoundEvent& ev) override {
    if (first_disconnect_ == 0 && !ev.connected()) {
      first_disconnect_ = ev.round;
    }
  }
  std::size_t first_disconnect() const { return first_disconnect_; }

 private:
  std::size_t first_disconnect_ = 0;
};

ChurnOutcome run_overlay(std::size_t n, bool heal,
                         const dash::api::Scenario& scenario,
                         std::uint64_t seed) {
  dash::util::Rng rng(seed);
  Graph g = dash::graph::barabasi_albert(n, 3, rng);
  dash::api::Network net(std::move(g),
                         dash::core::make_strategy(heal ? "dash" : "none"),
                         rng);
  DisconnectWatch watch;
  net.add_observer(&watch);

  const dash::api::Metrics m = net.play(scenario, rng);

  ChurnOutcome out;
  out.deletions = m.deletions;
  out.joins = m.joins;
  out.first_disconnect_round = watch.first_disconnect();
  out.final_alive = net.graph().num_alive();
  out.final_largest_component =
      dash::graph::connected_components(net.graph()).largest();
  out.max_delta = m.max_delta;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 500, seed = 2007, rounds = 400;
  dash::util::Options opt(
      "P2P overlay under supernode-neighbor attack + churn");
  opt.add_uint("n", &n, "number of peers");
  opt.add_uint("rounds", &rounds,
               "churn events to simulate (run in 5-event iterations, "
               "rounded down, minimum one iteration)");
  opt.add_uint("seed", &seed, "RNG seed");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  // Five events per iteration: sabotage x2, organic departure,
  // sabotage, then a new peer bootstrapping off two random live peers.
  const std::uint64_t iterations = std::max<std::uint64_t>(1, rounds / 5);
  const auto scenario = dash::api::Scenario::parse(
      "floor:2;repeat:" + std::to_string(iterations) +
      "{strike:neighborofmaxx2;strike:randomx1;strike:neighborofmaxx1;"
      "churn:1,0x1}");

  std::cout << "P2P overlay: " << n << " peers, scenario "
            << scenario.spec() << "\n\n";

  dash::util::Table table({"healing", "deletions", "joins",
                           "first_disconnect", "final_alive",
                           "largest_component", "max_degree_increase"});
  for (const bool heal : {false, true}) {
    const auto o =
        run_overlay(static_cast<std::size_t>(n), heal, scenario, seed);
    table.begin_row()
        .cell(heal ? "DASH" : "none")
        .cell(std::to_string(o.deletions))
        .cell(std::to_string(o.joins))
        .cell(o.first_disconnect_round == 0
                  ? "never"
                  : std::to_string(o.first_disconnect_round))
        .cell(std::to_string(o.final_alive))
        .cell(std::to_string(o.final_largest_component))
        .cell(std::to_string(o.max_delta));
  }
  table.print(std::cout);
  std::cout << "\nWithout healing the overlay shatters almost "
               "immediately; with DASH every surviving peer remains "
               "reachable and no peer's degree grows beyond "
               "2 log2(n).\n";
  return 0;
}
