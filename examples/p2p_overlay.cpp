// p2p_overlay.cpp -- a Skype-like peer-to-peer overlay under churn and
// attack (the paper's motivating scenario: the 2007 Skype outage).
//
// Scenario: a power-law overlay of peers where "supernodes" (hubs) are
// protected but their neighbors get taken down (the NeighborOfMax
// adversary), interleaved with random peer churn. We compare no healing
// vs DASH healing, reporting connectivity of the overlay, the largest
// component, and the burden placed on surviving peers.
#include <algorithm>
#include <iostream>

#include "api/api.h"
#include "attack/basic.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using dash::graph::Graph;
using dash::graph::NodeId;

struct ChurnOutcome {
  std::size_t rounds = 0;
  std::size_t joins = 0;
  std::size_t first_disconnect_round = 0;  ///< 0 = never disconnected
  std::size_t final_largest_component = 0;
  std::size_t final_alive = 0;
  std::uint32_t max_delta = 0;
};

/// Custom pipeline stage: remember the first round the overlay
/// disconnected (0 = never). Shows how scenario-specific measurement
/// plugs into the engine instead of being wired into the event loop.
class DisconnectWatch final : public dash::api::Observer {
 public:
  std::string name() const override { return "disconnect-watch"; }
  void on_round_end(const dash::api::Network&,
                    const dash::api::RoundEvent& ev) override {
    if (first_disconnect_ == 0 && !ev.connected) {
      first_disconnect_ = ev.round;
    }
  }
  std::size_t first_disconnect() const { return first_disconnect_; }

 private:
  std::size_t first_disconnect_ = 0;
};

/// Realistic overlay churn: targeted deletions of supernode neighbors,
/// organic random departures, and new peers joining (attaching to two
/// random live peers), for `rounds` events total. Deletions and joins
/// are interleaved through the engine's event API.
ChurnOutcome run_overlay(std::size_t n, bool heal, std::size_t rounds,
                         std::uint64_t seed) {
  dash::util::Rng rng(seed);
  Graph g = dash::graph::barabasi_albert(n, 3, rng);
  dash::api::Network net(std::move(g),
                         dash::core::make_strategy(heal ? "dash" : "none"),
                         rng);
  DisconnectWatch watch;
  net.add_observer(&watch);

  dash::attack::NeighborOfMaxAttack targeted(seed);
  dash::attack::RandomAttack departures(seed + 1);
  dash::util::Rng join_rng(seed + 2);

  for (std::size_t round = 0;
       round < rounds && net.graph().num_alive() > 1; ++round) {
    if (round % 5 == 4) {
      // A new peer joins, bootstrapping off two random live peers.
      auto alive = net.graph().alive_nodes();
      join_rng.shuffle(alive);
      std::vector<NodeId> targets(
          alive.begin(),
          alive.begin() + std::min<std::size_t>(2, alive.size()));
      net.join(targets);
      continue;
    }
    // Otherwise a peer disappears: 2/3 targeted sabotage, 1/3 organic.
    dash::attack::AttackStrategy& atk =
        (round % 3 == 2)
            ? static_cast<dash::attack::AttackStrategy&>(departures)
            : static_cast<dash::attack::AttackStrategy&>(targeted);
    const NodeId victim = atk.select(net.graph(), net.state());
    if (victim == dash::graph::kInvalidNode) break;
    net.remove(victim);
  }

  const dash::api::Metrics m = net.finish();
  ChurnOutcome out;
  out.rounds = m.deletions;
  out.joins = m.joins;
  out.first_disconnect_round = watch.first_disconnect();
  out.final_alive = net.graph().num_alive();
  out.final_largest_component =
      dash::graph::connected_components(net.graph()).largest();
  out.max_delta = m.max_delta;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 500, seed = 2007, rounds = 400;
  dash::util::Options opt(
      "P2P overlay under supernode-neighbor attack + churn");
  opt.add_uint("n", &n, "number of peers");
  opt.add_uint("rounds", &rounds, "deletions to simulate");
  opt.add_uint("seed", &seed, "RNG seed");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::cout << "P2P overlay: " << n << " peers, " << rounds
            << " churn events (deletions 2/3 targeted at supernode "
               "neighbors, 1/3 organic; every 5th event a new peer "
               "joins)\n\n";

  dash::util::Table table({"healing", "deletions", "joins",
                           "first_disconnect", "final_alive",
                           "largest_component", "max_degree_increase"});
  for (const bool heal : {false, true}) {
    const auto o = run_overlay(static_cast<std::size_t>(n), heal,
                               static_cast<std::size_t>(rounds), seed);
    table.begin_row()
        .cell(heal ? "DASH" : "none")
        .cell(std::to_string(o.rounds))
        .cell(std::to_string(o.joins))
        .cell(o.first_disconnect_round == 0
                  ? "never"
                  : std::to_string(o.first_disconnect_round))
        .cell(std::to_string(o.final_alive))
        .cell(std::to_string(o.final_largest_component))
        .cell(std::to_string(o.max_delta));
  }
  table.print(std::cout);
  std::cout << "\nWithout healing the overlay shatters almost "
               "immediately; with DASH every surviving peer remains "
               "reachable and no peer's degree grows beyond "
               "2 log2(n).\n";
  return 0;
}
