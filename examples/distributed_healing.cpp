// distributed_healing.cpp -- runs DASH as a distributed protocol on the
// round-based message-passing simulator and prints the per-deletion
// latency and message profile, demonstrating the Theorem 1 latency
// claims node-by-node rather than with a global engine.
#include <cmath>
#include <iostream>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/traversal.h"
#include "sim/distributed_dash.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  std::uint64_t n = 256, seed = 5, report_every = 32;
  dash::util::Options opt(
      "Distributed DASH on the synchronous round simulator");
  opt.add_uint("n", &n, "network size");
  opt.add_uint("seed", &seed, "RNG seed");
  opt.add_uint("report-every", &report_every,
               "print a progress row every k deletions");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  dash::util::Rng rng(seed);
  auto g0 = dash::graph::barabasi_albert(static_cast<std::size_t>(n), 2,
                                         rng);
  dash::sim::DistributedDashSim sim(std::move(g0), rng);

  std::cout << "distributed DASH: " << n << " nodes, max-degree attack, "
            << "synchronous rounds\n"
            << "  round 1 of each deletion: neighbors detect + locally "
               "compute the same RT (O(1) reconnection)\n"
            << "  rounds 2..: min-id flooding over the merged G'-tree\n\n";

  dash::util::Table table({"deletions", "alive", "last_prop_rounds",
                           "mean_prop_rounds", "total_messages",
                           "max_delta"});
  bool disconnected = false;
  dash::sim::run_max_degree_attack(
      sim, static_cast<std::size_t>(-1), [&](std::size_t deletions) {
        if (deletions % report_every == 0 ||
            sim.network().num_alive() <= 1) {
          table.begin_row()
              .cell(std::to_string(deletions))
              .cell(std::to_string(sim.network().num_alive()))
              .cell(std::to_string(sim.metrics().propagation_rounds.back()))
              .cell(sim.metrics().mean_propagation_rounds(), 2)
              .cell(std::to_string(sim.metrics().total_messages))
              .cell(std::to_string(sim.max_delta()));
        }
        // Fail fast: returning false aborts the schedule.
        disconnected = !dash::graph::is_connected(sim.network());
        return !disconnected;
      });
  if (disconnected) {
    std::cerr << "FATAL: network disconnected!\n";
    return 1;
  }
  table.print(std::cout);

  const double log2n = std::log2(static_cast<double>(n));
  std::cout << "\nsummary:\n"
            << "  reconnection latency:        1 round per deletion "
               "(constant, as proven)\n"
            << "  mean id-propagation latency: "
            << sim.metrics().mean_propagation_rounds() << " rounds (log2 n = "
            << log2n << ")\n"
            << "  max propagation latency:     "
            << sim.metrics().max_propagation_rounds() << " rounds\n"
            << "  max degree increase:         " << sim.max_delta()
            << " (bound " << 2.0 * log2n << ")\n"
            << "  max messages at one node:    "
            << sim.metrics().max_messages_per_node() << "\n";
  return 0;
}
