// infrastructure_network.cpp -- a hub-and-spoke infrastructure network
// (an airline-style route map: a few regional hubs, many spokes, a
// connected hub backbone) losing airports to closures.
//
// Shows the stretch/degree trade-off of Section 4.6: GraphHeal keeps
// routes short but overloads airports; DASH caps airport load but
// lengthens routes; SDASH balances both. Stretch here reads as "how
// many extra hops a passenger flies after re-routing".
#include <algorithm>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using dash::graph::Graph;
using dash::graph::NodeId;

/// Hub-and-spoke: `hubs` fully meshed regional hubs, each serving
/// `spokes` leaf airports.
Graph make_route_map(std::size_t hubs, std::size_t spokes) {
  Graph g(hubs + hubs * spokes);
  for (NodeId a = 0; a < hubs; ++a) {
    for (NodeId b = a + 1; b < hubs; ++b) g.add_edge(a, b);
  }
  NodeId next = static_cast<NodeId>(hubs);
  for (NodeId h = 0; h < hubs; ++h) {
    for (std::size_t s = 0; s < spokes; ++s) g.add_edge(h, next++);
  }
  return g;
}

struct Outcome {
  double max_stretch = 1.0;
  std::uint32_t max_delta = 0;
  bool connected = true;
};

Outcome run(const std::string& healer_name, std::size_t hubs,
            std::size_t spokes, std::size_t closures,
            std::uint64_t seed) {
  dash::api::Network net(make_route_map(hubs, spokes), healer_name, seed);
  auto& stretch = static_cast<dash::api::StretchObserver&>(
      net.add_observer(std::make_unique<dash::api::StretchObserver>()));

  // Close the `closures` busiest airports, never going below 2: the
  // whole workload as one declarative scenario.
  const auto scenario =
      dash::api::Scenario().floor(2).targeted("maxnode", closures);
  const dash::api::Metrics m = net.play(scenario, seed);

  Outcome out;
  out.connected = m.stayed_connected;
  out.max_stretch = std::max(1.0, stretch.max_stretch());
  out.max_delta = m.max_delta;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t hubs = 8, spokes = 24, closures = 12, seed = 11;
  dash::util::Options opt(
      "Airline route map: hub closures, re-routing policies compared");
  opt.add_uint("hubs", &hubs, "number of meshed hub airports");
  opt.add_uint("spokes", &spokes, "spoke airports per hub");
  opt.add_uint("closures", &closures, "airport closures to simulate");
  opt.add_uint("seed", &seed, "RNG seed");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  const std::size_t n = hubs + hubs * spokes;
  std::cout << "route map: " << hubs << " hubs x " << spokes
            << " spokes = " << n << " airports; closing " << closures
            << " busiest airports\n\n";

  dash::util::Table table({"re-routing", "stayed_connected", "max_stretch",
                           "max_extra_routes_per_airport"});
  for (const char* healer : {"graph", "line", "binarytree", "dash",
                             "sdash"}) {
    const auto o = run(healer, static_cast<std::size_t>(hubs),
                       static_cast<std::size_t>(spokes),
                       static_cast<std::size_t>(closures), seed);
    table.begin_row()
        .cell(healer)
        .cell(o.connected ? "yes" : "NO")
        .cell(o.max_stretch, 2)
        .cell(std::to_string(o.max_delta));
  }
  table.print(std::cout);
  std::cout << "\nreading: max_stretch = worst hop inflation for any "
               "surviving city pair;\nmax_extra_routes = new routes the "
               "busiest airport had to absorb.\nSDASH keeps both small; "
               "GraphHeal minimizes stretch by overloading airports;\n"
               "DASH caps load but can lengthen routes.\n";
  return 0;
}
