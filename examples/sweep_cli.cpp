// sweep_cli.cpp -- general experiment driver: pick any graph family,
// scenario, healer set and metric from the command line, sweep sizes,
// and emit the series as a table, optional CSV, and optional
// BENCH_*.json summary. This is the "run your own figure" entry point
// for downstream users.
//
// Healers, attacks and scenario phases are resolved through the
// registries, so anything registered on core::healer_registry() /
// attack::attack_registry() / api::scenario_phase_registry() (including
// parameterized specs like "capped:2" or "sdash:4") works here; --help
// lists the registered spellings.
//
//   $ ./sweep_cli --family ba --attack maxnode --metric stretch
//       --healers dash,sdash,graph --max-n 128
//   $ ./sweep_cli --scenario 'churn:0.4,0.4x300;batch:8' --metric max_delta
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>

#include "api/api.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using dash::api::Metrics;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double extract(const Metrics& r, const std::string& metric) {
  if (metric == "max_delta") return static_cast<double>(r.max_delta);
  if (metric == "id_changes") return static_cast<double>(r.max_id_changes);
  if (metric == "messages") return static_cast<double>(r.max_messages);
  if (metric == "messages_sent")
    return static_cast<double>(r.max_messages_sent);
  if (metric == "edges_added") return static_cast<double>(r.edges_added);
  if (metric == "stretch") return r.max_stretch;
  if (metric == "surrogates")
    return static_cast<double>(r.surrogate_heals);
  if (metric == "joins") return static_cast<double>(r.joins);
  if (metric == "deletions") return static_cast<double>(r.deletions);
  throw std::invalid_argument(
      "unknown metric: " + metric +
      " (max_delta/id_changes/messages/messages_sent/edges_added/"
      "stretch/surrogates/joins/deletions)");
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += "/";
    out += n;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string family = "ba", attack = "neighborofmax";
  std::string healers = "graph,line,binarytree,dash,sdash";
  std::string metric = "max_delta", csv_path, json_path, scenario_spec;
  std::uint64_t instances = 10, seed = 0xDA5B, min_n = 64, max_n = 512;
  std::uint64_t ba_edges = 2, deletions = 0, threads = 0;
  bool print_grid = false;

  dash::util::Options opt("dashheal sweep driver");
  opt.add_string("family", &family,
                 "graph family (" + joined(dash::exp::family_names()) + ")");
  opt.add_string("attack", &attack,
                 "attack (" + joined(dash::attack::attack_names()) + ")");
  opt.add_string("healers", &healers,
                 "comma-separated healing strategies (" +
                     joined(dash::core::strategy_names()) + ")");
  opt.add_string("scenario", &scenario_spec,
                 "scenario spec, phases: " +
                     joined(dash::api::scenario_phase_registry().names()) +
                     " (default: targeted:<attack>)");
  opt.add_string("metric", &metric,
                 "metric (max_delta/id_changes/messages/messages_sent/"
                 "edges_added/stretch/surrogates/joins/deletions)");
  opt.add_uint("instances", &instances, "instances per data point");
  opt.add_uint("seed", &seed, "base RNG seed");
  opt.add_uint("min-n", &min_n, "smallest size");
  opt.add_uint("max-n", &max_n, "largest size (doubling sweep)");
  opt.add_uint("ba-edges", &ba_edges, "BA attachment edges");
  opt.add_uint("deletions", &deletions,
               "deletions per run (0 = until one node remains; ignored "
               "with --scenario)");
  opt.add_string("csv", &csv_path, "optional CSV output path");
  opt.add_string("json", &json_path,
                 "optional BENCH_*.json summary output path");
  opt.add_uint("threads", &threads, "worker threads");
  opt.add_flag("print-grid", &print_grid,
               "print the sweep's canonical one-line ExperimentSpec "
               "(hand it to dash_lab) and exit");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  try {
    extract(Metrics{}, metric);  // fail fast on an unknown metric name

    // The workload: an explicit scenario wins; otherwise the classic
    // targeted schedule (with the stretch metric's delete-half default,
    // size-relative via untilfrac).
    std::string scenario = scenario_spec;
    if (scenario.empty()) {
      if (metric == "stretch" && deletions == 0) {
        scenario = "untilfrac:0.5," + attack;
      } else if (deletions > 0) {
        scenario = "targeted:" + attack + "," + std::to_string(deletions);
      } else {
        scenario = "targeted:" + attack;
      }
    }

    // The whole sweep is one ExperimentSpec grid; the same spec drives
    // dash_lab's sharded / multi-process runs.
    dash::exp::ExperimentSpec spec;
    spec.name = "sweep";
    spec.families = {family};
    spec.sizes.clear();
    for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
      spec.sizes.push_back(static_cast<std::size_t>(n));
    }
    spec.healers = split_csv(healers);
    spec.scenarios = {dash::api::Scenario::parse(scenario).spec()};
    spec.instances = static_cast<std::size_t>(instances);
    spec.seed = seed;
    spec.ba_edges = static_cast<std::size_t>(ba_edges);
    spec.stretch_every = metric == "stretch" ? 4 : 0;
    spec.labels = "spec";  // groups carry the raw healer spellings
    if (print_grid) {
      std::cout << spec.canonical() << "\n";
      return 0;
    }

    std::vector<std::string> header{"n"};
    header.insert(header.end(), spec.healers.begin(), spec.healers.end());
    dash::util::Table table(header);

    std::ostringstream csv_buf;
    dash::util::CsvWriter csv(csv_buf, {"n", "healer", "metric", "mean",
                                        "stddev", "min", "max"});

    std::vector<dash::exp::ShardRecord> records;
    std::size_t current_n = 0;
    dash::exp::RunnerOptions ropt;
    ropt.threads = static_cast<std::size_t>(threads);
    ropt.on_cell = [&](const dash::exp::CellResult& result) {
      if (result.cell.n != current_n) {
        current_n = result.cell.n;
        table.begin_row().cell(std::to_string(current_n));
        std::fprintf(stderr, "  n=%zu\n", current_n);
      }
      const auto summary = dash::api::summarize_metric(
          result.runs,
          [&metric](const Metrics& r) { return extract(r, metric); });
      table.cell(summary.mean, 2);
      csv.write(result.cell.n, result.cell.healer, metric, summary.mean,
                summary.stddev, summary.min, summary.max);
      if (!json_path.empty()) {
        records.push_back(dash::exp::to_record(spec, result));
      }
    };
    dash::exp::run(spec, ropt);

    std::cout << "\n== sweep: family=" << family << " scenario="
              << spec.scenarios[0] << " metric=" << metric
              << " instances=" << instances << " ==\n\n";
    table.print(std::cout);
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      out << csv_buf.str();
      std::cout << "\nCSV written to " << csv_path << "\n";
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      out << dash::exp::merged_document(spec, records);
      std::cout << "\nJSON summary written to " << json_path << "\n";
    }
    std::fprintf(stderr, "grid: %s\n", spec.canonical().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
