// sweep_cli.cpp -- general experiment driver: pick any graph family,
// scenario, healer set and metric from the command line, sweep sizes,
// and emit the series as a table, optional CSV, and optional
// BENCH_*.json summary. This is the "run your own figure" entry point
// for downstream users.
//
// Healers, attacks and scenario phases are resolved through the
// registries, so anything registered on core::healer_registry() /
// attack::attack_registry() / api::scenario_phase_registry() (including
// parameterized specs like "capped:2" or "sdash:4") works here; --help
// lists the registered spellings.
//
//   $ ./sweep_cli --family ba --attack maxnode --metric stretch
//       --healers dash,sdash,graph --max-n 128
//   $ ./sweep_cli --scenario 'churn:0.4,0.4x300;batch:8' --metric max_delta
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>

#include "api/api.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using dash::api::Metrics;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::function<dash::graph::Graph(dash::util::Rng&)> make_family(
    const std::string& family, std::size_t n, std::size_t ba_m) {
  using dash::graph::Graph;
  if (family == "ba") {
    return [n, ba_m](dash::util::Rng& rng) {
      return dash::graph::barabasi_albert(n, ba_m, rng);
    };
  }
  if (family == "tree") {
    return [n](dash::util::Rng& rng) {
      return dash::graph::random_tree(n, rng);
    };
  }
  if (family == "gnp") {
    return [n](dash::util::Rng& rng) {
      return dash::graph::connected_gnp(
          n, 6.0 / static_cast<double>(n) + 0.02, rng);
    };
  }
  if (family == "ws") {
    return [n](dash::util::Rng& rng) {
      return dash::graph::watts_strogatz(n, 2, 0.2, rng);
    };
  }
  if (family == "cycle") {
    return [n](dash::util::Rng&) { return dash::graph::cycle_graph(n); };
  }
  throw std::invalid_argument("unknown family: " + family +
                              " (ba/tree/gnp/ws/cycle)");
}

double extract(const Metrics& r, const std::string& metric) {
  if (metric == "max_delta") return static_cast<double>(r.max_delta);
  if (metric == "id_changes") return static_cast<double>(r.max_id_changes);
  if (metric == "messages") return static_cast<double>(r.max_messages);
  if (metric == "messages_sent")
    return static_cast<double>(r.max_messages_sent);
  if (metric == "edges_added") return static_cast<double>(r.edges_added);
  if (metric == "stretch") return r.max_stretch;
  if (metric == "surrogates")
    return static_cast<double>(r.surrogate_heals);
  if (metric == "joins") return static_cast<double>(r.joins);
  if (metric == "deletions") return static_cast<double>(r.deletions);
  throw std::invalid_argument(
      "unknown metric: " + metric +
      " (max_delta/id_changes/messages/messages_sent/edges_added/"
      "stretch/surrogates/joins/deletions)");
}

std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& n : names) {
    if (!out.empty()) out += "/";
    out += n;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string family = "ba", attack = "neighborofmax";
  std::string healers = "graph,line,binarytree,dash,sdash";
  std::string metric = "max_delta", csv_path, json_path, scenario_spec;
  std::uint64_t instances = 10, seed = 0xDA5B, min_n = 64, max_n = 512;
  std::uint64_t ba_edges = 2, deletions = 0, threads = 0;

  dash::util::Options opt("dashheal sweep driver");
  opt.add_string("family", &family, "graph family (ba/tree/gnp/ws/cycle)");
  opt.add_string("attack", &attack,
                 "attack (" + joined(dash::attack::attack_names()) + ")");
  opt.add_string("healers", &healers,
                 "comma-separated healing strategies (" +
                     joined(dash::core::strategy_names()) + ")");
  opt.add_string("scenario", &scenario_spec,
                 "scenario spec, phases: " +
                     joined(dash::api::scenario_phase_registry().names()) +
                     " (default: targeted:<attack>)");
  opt.add_string("metric", &metric,
                 "metric (max_delta/id_changes/messages/messages_sent/"
                 "edges_added/stretch/surrogates/joins/deletions)");
  opt.add_uint("instances", &instances, "instances per data point");
  opt.add_uint("seed", &seed, "base RNG seed");
  opt.add_uint("min-n", &min_n, "smallest size");
  opt.add_uint("max-n", &max_n, "largest size (doubling sweep)");
  opt.add_uint("ba-edges", &ba_edges, "BA attachment edges");
  opt.add_uint("deletions", &deletions,
               "deletions per run (0 = until one node remains; ignored "
               "with --scenario)");
  opt.add_string("csv", &csv_path, "optional CSV output path");
  opt.add_string("json", &json_path,
                 "optional BENCH_*.json summary output path");
  opt.add_uint("threads", &threads, "worker threads");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  try {
    const auto healer_names = split_csv(healers);
    dash::util::ThreadPool pool(static_cast<std::size_t>(threads));

    // The workload: an explicit scenario wins; otherwise the classic
    // targeted schedule (with the stretch metric's n/2 default depth).
    dash::api::Scenario custom_scenario;
    if (!scenario_spec.empty()) {
      custom_scenario = dash::api::Scenario::parse(scenario_spec);
    }

    std::vector<std::string> header{"n"};
    header.insert(header.end(), healer_names.begin(), healer_names.end());
    dash::util::Table table(header);

    std::ostringstream csv_buf;
    dash::util::CsvWriter csv(csv_buf, {"n", "healer", "metric", "mean",
                                        "stddev", "min", "max"});

    std::ofstream json_file;
    std::optional<dash::api::JsonSummarySink> json;
    if (!json_path.empty()) {
      json_file.open(json_path);
      json.emplace(json_file);
    }

    for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
      table.begin_row().cell(std::to_string(n));

      dash::api::Scenario scenario;
      if (!scenario_spec.empty()) {
        scenario = custom_scenario;
      } else {
        std::size_t cap = static_cast<std::size_t>(deletions);
        if (metric == "stretch" && cap == 0) {
          cap = static_cast<std::size_t>(n) / 2;
        }
        scenario = dash::api::Scenario().targeted(attack, cap);
      }

      for (const auto& healer_name : healer_names) {
        dash::api::SuiteConfig cfg;
        cfg.make_graph = make_family(
            family, static_cast<std::size_t>(n),
            static_cast<std::size_t>(ba_edges));
        cfg.make_healer = dash::api::healer_factory(healer_name);
        cfg.scenario = scenario;
        cfg.instances = static_cast<std::size_t>(instances);
        cfg.base_seed = seed ^ (n * 0x9E3779B97F4A7C15ULL);
        if (metric == "stretch") {
          cfg.configure = [](dash::api::Network& net) {
            net.add_observer(
                std::make_unique<dash::api::StretchObserver>(4));
          };
        }
        if (json) {
          json->begin_group({{"n", std::to_string(n)},
                             {"strategy", healer_name},
                             {"scenario", scenario.spec()}});
          cfg.sinks.push_back(&*json);
        }
        const auto results = dash::api::run_suite(cfg, &pool);
        const auto summary = dash::api::summarize_metric(
            results,
            [&metric](const Metrics& r) { return extract(r, metric); });
        table.cell(summary.mean, 2);
        csv.write(n, healer_name, metric, summary.mean, summary.stddev,
                  summary.min, summary.max);
      }
      std::fprintf(stderr, "  done n=%llu\n",
                   static_cast<unsigned long long>(n));
    }

    std::cout << "\n== sweep: family=" << family << " scenario="
              << (scenario_spec.empty() ? "targeted:" + attack
                                        : scenario_spec)
              << " metric=" << metric << " instances=" << instances
              << " ==\n\n";
    table.print(std::cout);
    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      out << csv_buf.str();
      std::cout << "\nCSV written to " << csv_path << "\n";
    }
    if (json) {
      json->flush();
      std::cout << "\nJSON summary written to " << json_path << "\n";
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
