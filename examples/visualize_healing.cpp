// visualize_healing.cpp -- writes GraphViz DOT frames of a small
// network as the adversary chews through it and DASH heals, with
// healing edges highlighted in red and per-node delta labels.
//
//   $ ./visualize_healing --out-dir /tmp/frames --n 24 --deletions 6
//   $ dot -Tsvg /tmp/frames/step_03.dot -o step3.svg
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/dot.h"
#include "attack/basic.h"
#include "core/dash.h"
#include "core/healing_state.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/cli.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  std::uint64_t n = 24, deletions = 6, seed = 4;
  std::string out_dir = ".";
  dash::util::Options opt("Write DOT frames of a DASH healing run");
  opt.add_uint("n", &n, "network size");
  opt.add_uint("deletions", &deletions, "frames to produce");
  opt.add_uint("seed", &seed, "RNG seed");
  opt.add_string("out-dir", &out_dir, "directory for .dot files");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::filesystem::create_directories(out_dir);

  dash::util::Rng rng(seed);
  auto g = dash::graph::barabasi_albert(static_cast<std::size_t>(n), 2,
                                        rng);
  dash::core::HealingState st(g, rng);
  dash::core::DashStrategy healer;
  dash::attack::MaxNodeAttack atk;

  auto dump = [&](std::size_t step) {
    const auto path = std::filesystem::path(out_dir) /
                      ("step_" + std::string(step < 10 ? "0" : "") +
                       std::to_string(step) + ".dot");
    std::ofstream out(path);
    dash::analysis::DotOptions dopt;
    dopt.graph_name = "step" + std::to_string(step);
    dash::analysis::write_dot_with_healing(out, g, st, dopt);
    std::cout << "wrote " << path.string() << "\n";
  };

  dump(0);
  for (std::size_t step = 1; step <= deletions && g.num_alive() > 2;
       ++step) {
    const auto victim = atk.select(g, st);
    std::cout << "deleting node " << victim << " (degree "
              << g.degree(victim) << ")\n";
    const auto ctx = st.begin_deletion(g, victim);
    g.delete_node(victim);
    healer.heal(g, st, ctx);
    if (!dash::graph::is_connected(g)) {
      std::cerr << "FATAL: disconnected\n";
      return 1;
    }
    dump(step);
  }
  std::cout << "\nrender with: dot -Tsvg " << out_dir
            << "/step_00.dot -o step0.svg\n";
  return 0;
}
