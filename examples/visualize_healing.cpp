// visualize_healing.cpp -- writes GraphViz DOT frames of a small
// network as the adversary chews through it and DASH heals, with
// healing edges highlighted in red and per-node delta labels. Frame
// dumping is an Observer: it sees every round without touching the
// engine loop.
//
//   $ ./visualize_healing --out-dir /tmp/frames --n 24 --deletions 6
//   $ dot -Tsvg /tmp/frames/step_03.dot -o step3.svg
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/dot.h"
#include "api/api.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"

namespace {

/// Dumps one DOT frame per engine round (plus frame 0 on attach).
class DotFrameObserver final : public dash::api::Observer {
 public:
  explicit DotFrameObserver(std::filesystem::path out_dir)
      : out_dir_(std::move(out_dir)) {}

  std::string name() const override { return "dot-frames"; }

  void on_attach(const dash::api::Network& net) override { dump(net, 0); }

  void on_round_begin(const dash::api::Network&,
                      std::size_t round) override {
    std::cout << "frame " << round << ": deleting next victim\n";
  }

  void on_round_end(const dash::api::Network& net,
                    const dash::api::RoundEvent& ev) override {
    if (!ev.connected()) {
      std::cerr << "FATAL: disconnected at round " << ev.round << "\n";
      std::exit(1);
    }
    dump(net, ev.round);
  }

 private:
  void dump(const dash::api::Network& net, std::size_t step) {
    const auto path = out_dir_ / ("step_" +
                                  std::string(step < 10 ? "0" : "") +
                                  std::to_string(step) + ".dot");
    std::ofstream out(path);
    dash::analysis::DotOptions dopt;
    dopt.graph_name = "step" + std::to_string(step);
    dash::analysis::write_dot_with_healing(out, net.graph(), net.state(),
                                           dopt);
    std::cout << "wrote " << path.string() << "\n";
  }

  std::filesystem::path out_dir_;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 24, deletions = 6, seed = 4;
  std::string out_dir = ".";
  dash::util::Options opt("Write DOT frames of a DASH healing run");
  opt.add_uint("n", &n, "network size");
  opt.add_uint("deletions", &deletions, "frames to produce");
  opt.add_uint("seed", &seed, "RNG seed");
  opt.add_string("out-dir", &out_dir, "directory for .dot files");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::filesystem::create_directories(out_dir);

  dash::util::Rng rng(seed);
  auto g = dash::graph::barabasi_albert(static_cast<std::size_t>(n), 2,
                                        rng);
  dash::api::Network net(std::move(g), dash::core::make_strategy("dash"),
                         rng);
  DotFrameObserver frames{std::filesystem::path(out_dir)};
  net.add_observer(&frames);

  // One frame per deletion: a strike scenario against the busiest
  // nodes, never going below 2 alive. --deletions 0 still emits the
  // initial frame (dumped on attach); a zero-count strike phase is not
  // a valid spec.
  if (deletions > 0) {
    const auto scenario = dash::api::Scenario::parse(
        "floor:2;strike:maxnodex" + std::to_string(deletions));
    net.play(scenario, rng);
  }

  std::cout << "\nrender with: dot -Tsvg " << out_dir
            << "/step_00.dot -o step0.svg\n";
  return 0;
}
