// fig9a_id_changes.cpp -- reproduces Figure 9(a): "ID changes for
// nodes": the maximum number of times any node's component id is
// rewritten, per healing strategy, as graph size grows.
//
// Expected shape: below ~log n for every strategy (record-breaking
// argument, Lemma 8), mildly increasing with n.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;
  const int rc = dash::bench::run_strategy_sweep_figure(
      argc, argv,
      "Figure 9(a): max ID changes per node vs graph size",
      "max_id_changes",
      [](const Metrics& r) {
        return static_cast<double>(r.max_id_changes);
      });
  if (rc == 0) {
    std::cout << "\nreference: 2*ln(n) record-breaking bound:\n";
    for (std::size_t n = 64; n <= 1024; n *= 2) {
      std::cout << "  n=" << n << "  2ln(n)=" << 2.0 * std::log(double(n))
                << "\n";
    }
  }
  return rc;
}
