// ablation_surrogate_slack.cpp -- extension experiment probing the
// paper's open problem ("can we provably ensure shortest paths do not
// increase by too much?"): loosen SDASH's surrogate trigger by a slack
// term and chart the resulting stretch/degree trade-off.
//
//   slack 0  = the paper's Algorithm 3;
//   slack s  = surrogate when delta(w) + |S| - 1 <= delta(m) + s.
//
// Expectation: stretch falls monotonically with slack (more stars =
// more deleted-node stand-ins = shorter detours) while the max degree
// increase rises by at most ~s above DASH's level.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;

  dash::bench::FigureOptions fo;
  fo.min_n = 32;
  fo.max_n = 256;
  fo.attack = "maxnode";
  fo.instances = 5;
  if (!fo.parse(argc, argv,
                "Extension ablation: SDASH surrogate slack vs "
                "stretch/degree trade-off")) {
    return fo.help ? 0 : 2;
  }

  dash::util::ThreadPool pool(static_cast<std::size_t>(fo.threads));
  const std::vector<std::string> keys{"dash", "sdash", "sdash:2",
                                      "sdash:4", "sdash:8"};
  std::vector<std::string> names;
  for (const auto& k : keys) {
    names.push_back(dash::core::make_strategy(k)->name());
  }

  // Stretch tracking is an observer now; each instance gets its own.
  const auto track_stretch = [](dash::api::Network& net) {
    net.add_observer(std::make_unique<dash::api::StretchObserver>(4));
  };

  dash::bench::JsonOutput json(fo.json_path);
  std::vector<dash::bench::SeriesPoint> stretch_points, delta_points;
  for (std::size_t n : fo.sizes()) {
    const auto scenario =
        dash::api::Scenario().targeted(fo.attack, n / 2);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      // One suite per cell; both metrics summarize the same runs.
      const auto results = dash::bench::run_cell_results(
          fo, n, keys[i], scenario, pool, track_stretch, json.get(),
          names[i]);

      dash::bench::SeriesPoint sp;
      sp.n = n;
      sp.strategy = names[i];
      sp.summary = dash::api::summarize_metric(
          results, [](const Metrics& r) { return r.max_stretch; });
      stretch_points.push_back(sp);

      dash::bench::SeriesPoint dp;
      dp.n = n;
      dp.strategy = names[i];
      dp.summary = dash::api::summarize_metric(
          results, [](const Metrics& r) {
            return static_cast<double>(r.max_delta);
          });
      delta_points.push_back(dp);
    }
    std::fprintf(stderr, "  done n=%zu\n", n);
  }

  dash::bench::print_figure(
      "Extension: surrogate slack vs max stretch (MaxNode attack)", fo,
      names, stretch_points, "max_stretch");
  dash::bench::print_figure(
      "Extension: surrogate slack vs max degree increase", fo, names,
      delta_points, "max_degree_increase");
  std::cout << "\nreading: increasing slack buys stretch reduction for a "
               "bounded degree cost;\nslack=0 is the paper's SDASH.\n";
  return 0;
}
