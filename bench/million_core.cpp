// million_core.cpp -- the million-node core benchmark: measures the
// three layers this engine stacks to keep massive self-healing
// overlays interactive, with before/after pairs interleaved in the
// same process so the medians share cache state and allocator history.
//
//   1. publish: a delta-patched snapshot publish (the serving path)
//      vs. a from-scratch FlatView rebuild of the same graph -- the
//      cost every publish used to pay.
//   2. stretch: one landmark estimator sample (k bit-parallel BFS
//      waves + pair bounds) vs. the exact all-pairs tracker sample.
//      The exact side is O(n^2) memory and O(n*m) time, so it only
//      runs when n <= --exact-limit; above that the bench prints the
//      extrapolated infeasibility instead (at n=10^6 the APSP matrix
//      alone is ~4 TB).
//   3. end-to-end: a churned, healed, served network with estimate-
//      mode stretch sampling riding along -- the acceptance run: at
//      --n 1000000 this completes in minutes on one vCPU.
//
// Run `million_core --n 1000000` for the headline numbers; defaults
// keep a laptop run under a minute.
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stretch.h"
#include "analysis/stretch_estimator.h"
#include "api/api.h"
#include "api/serve.h"
#include "graph/flat_view.h"
#include "graph/generators.h"
#include "graph/snapshot_store.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace {

using dash::graph::FlatView;
using dash::graph::Graph;
using dash::graph::NodeId;
using dash::util::Rng;
using dash::util::Timer;

double median_of(std::vector<double> xs) {
  return dash::util::quantile(std::move(xs), 0.5);
}

/// A small healing-shaped edit: delete one node and chain its former
/// neighbors back together, plus a couple of edge toggles. Touches
/// O(degree) vertices -- the footprint one heal round leaves in the
/// touched log.
void churn_step(Graph& g, std::vector<NodeId>& alive, Rng& rng) {
  if (alive.size() > 16) {
    const std::size_t at = static_cast<std::size_t>(rng.below(alive.size()));
    const NodeId victim = alive[at];
    const auto orphans = g.delete_node(victim);
    alive[at] = alive.back();
    alive.pop_back();
    for (std::size_t i = 1; i < orphans.size(); ++i) {
      g.add_edge(orphans[i - 1], orphans[i]);
    }
  }
  for (int t = 0; t < 2; ++t) {
    const NodeId a = alive[static_cast<std::size_t>(rng.below(alive.size()))];
    const NodeId b = alive[static_cast<std::size_t>(rng.below(alive.size()))];
    if (a == b) continue;
    if (g.has_edge(a, b)) {
      g.remove_edge(a, b);
    } else {
      g.add_edge(a, b);
    }
  }
}

void bench_publish(std::size_t n, std::size_t rounds, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = dash::graph::barabasi_albert(n, 2, rng);
  std::vector<NodeId> alive = g.alive_nodes();

  dash::graph::SnapshotStore store;
  store.publish(g);  // full rebuild into buffer A
  store.publish(g);  // full rebuild into buffer B; patched from here on

  // The CSR-maintenance pair: a persistent view dragged forward by the
  // touched log vs a from-scratch rebuild, interleaved on the same
  // graph state each round. store.publish additionally relabels
  // components (paid identically by both publish flavors), so its
  // median is reported as context, not as the comparison.
  FlatView persistent;
  persistent.refresh(g);
  FlatView scratch;
  std::vector<double> full_ms, patched_ms, publish_ms;
  full_ms.reserve(rounds);
  patched_ms.reserve(rounds);
  publish_ms.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    churn_step(g, alive, rng);
    Timer t_full;
    scratch.rebuild(g);
    full_ms.push_back(t_full.millis());
    Timer t_patch;
    persistent.refresh(g);
    patched_ms.push_back(t_patch.millis());
    Timer t_pub;
    store.publish(g);
    publish_ms.push_back(t_pub.millis());
  }

  const double full_med = median_of(full_ms);
  const double patched_med = median_of(patched_ms);
  dash::util::Table table({"csr path", "median_ms", "speedup"});
  table.begin_row()
      .cell("full rebuild (before)")
      .cell(full_med, 4)
      .cell("1.0x");
  table.begin_row()
      .cell("delta patched (after)")
      .cell(patched_med, 4)
      .cell(patched_med > 0
                ? std::to_string(full_med / patched_med).substr(0, 6) + "x"
                : "inf");
  table.print(std::cout);
  std::cout << "view: " << persistent.patched_refreshes() << " patched / "
            << persistent.full_rebuilds() << " full refreshes; "
            << "publish median (patch + component labelling): "
            << median_of(publish_ms) << " ms\n"
            << "store split: " << store.full_publishes() << " full / "
            << store.patched_publishes() << " patched publishes, "
            << store.touched_vertices() << " vertices re-mirrored\n";
}

void bench_stretch(std::size_t n, std::size_t landmarks, std::size_t pairs,
                   std::size_t samples, std::size_t exact_limit,
                   std::uint64_t seed) {
  Rng rng(seed);
  Graph g = dash::graph::barabasi_albert(n, 2, rng);

  Timer t_build;
  dash::analysis::StretchEstimator estimator(
      g, {.landmarks = landmarks, .pairs = pairs, .seed = seed});
  const double build_ms = t_build.millis();

  // Only build the exact tracker when the APSP matrix fits; above the
  // limit the "before" column is reported as infeasible.
  const bool exact_ok = n <= exact_limit;
  std::unique_ptr<dash::analysis::StretchTracker> tracker;
  if (exact_ok) {
    tracker = std::make_unique<dash::analysis::StretchTracker>(g);
  }

  std::vector<NodeId> alive = g.alive_nodes();
  std::vector<double> est_ms, exact_ms;
  for (std::size_t s = 0; s < samples; ++s) {
    for (int i = 0; i < 8; ++i) churn_step(g, alive, rng);
    if (exact_ok) {
      Timer t_exact;
      (void)tracker->max_stretch(g);
      exact_ms.push_back(t_exact.millis());
    }
    Timer t_est;
    (void)estimator.estimate(g);
    est_ms.push_back(t_est.millis());
  }

  dash::util::Table table({"sampler", "median_ms", "notes"});
  if (exact_ok) {
    table.begin_row()
        .cell("exact all-pairs (before)")
        .cell(median_of(exact_ms), 3)
        .cell("n^2 pairs, 64-source waves");
  } else {
    const double gib =
        static_cast<double>(n) * static_cast<double>(n) * 4.0 / (1u << 30);
    table.begin_row()
        .cell("exact all-pairs (before)")
        .cell("infeasible")
        .cell("APSP matrix ~" + std::to_string(gib).substr(0, 8) + " GiB");
  }
  table.begin_row()
      .cell("landmark estimate (after)")
      .cell(median_of(est_ms), 3)
      .cell(std::to_string(landmarks) + " landmarks, " +
            std::to_string(pairs) + " pairs");
  table.print(std::cout);
  std::cout << "estimator build (landmark selection): " << build_ms
            << " ms\n";
}

void bench_end_to_end(std::size_t n, std::size_t rounds,
                      std::size_t stretch_every, std::size_t landmarks,
                      std::size_t pairs, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = dash::graph::barabasi_albert(n, 2, rng);

  Timer t_all;
  dash::api::Network net(std::move(g), "dash", seed);
  dash::api::ServeOptions sopts;
  sopts.publish_every = 1;
  dash::api::ServeHandle& serve = net.serve(sopts);

  dash::api::StretchObserverOptions stretch_opts;
  stretch_opts.sample_every = stretch_every;
  stretch_opts.estimate = true;
  stretch_opts.landmarks = landmarks;
  stretch_opts.pairs = pairs;
  auto observer = std::make_unique<dash::api::StretchObserver>(stretch_opts);
  const dash::api::StretchObserver* stretch = observer.get();
  net.add_observer(std::move(observer));

  // Deletion churn: joins would (correctly) deactivate stretch
  // sampling, since joined nodes have no time-0 distance rows.
  const auto scenario = dash::api::Scenario::parse(
      "strike:randomx" + std::to_string(rounds));
  Rng play_rng(seed + 1);
  const auto metrics = net.play(scenario, play_rng);
  const double secs = t_all.seconds();

  std::cout << "end-to-end: n=" << n << " rounds=" << rounds << " in "
            << secs << " s (" << (secs / static_cast<double>(rounds) * 1e3)
            << " ms/round)\n"
            << "  publishes: " << serve.store().full_publishes() << " full / "
            << serve.store().patched_publishes() << " patched ("
            << serve.store().touched_vertices() << " vertices re-mirrored)\n"
            << "  stretch upper bound (last sample): "
            << stretch->last_sample()
            << ", connected=" << (metrics.stayed_connected ? "yes" : "NO")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 50000, seed = 97;
  std::uint64_t publish_rounds = 200, stretch_samples = 5;
  std::uint64_t landmarks = 16, pairs = 256;
  std::uint64_t exact_limit = 8192;
  std::uint64_t churn_rounds = 500, stretch_every = 64;
  dash::util::Options opt(
      "Million-node core: slab graph, patched publishes, landmark stretch");
  opt.add_uint("n", &n, "graph size (use 1000000 for the headline run)");
  opt.add_uint("seed", &seed, "RNG seed");
  opt.add_uint("publish-rounds", &publish_rounds,
               "interleaved full/patched publish pairs");
  opt.add_uint("stretch-samples", &stretch_samples,
               "stretch samples per sampler");
  opt.add_uint("landmarks", &landmarks, "estimator landmarks (<= 64)");
  opt.add_uint("pairs", &pairs, "estimator sampled pairs");
  opt.add_uint("exact-limit", &exact_limit,
               "largest n that still runs the exact O(n^2) sampler");
  opt.add_uint("churn-rounds", &churn_rounds, "end-to-end churn rounds");
  opt.add_uint("stretch-every", &stretch_every,
               "end-to-end stretch sampling cadence");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::cout << "\n== million_core: BA(" << n << ", 2), seed " << seed
            << " ==\n\n-- publish path: full rebuild vs delta patch --\n";
  bench_publish(n, publish_rounds, seed);

  std::cout << "\n-- stretch sample: exact vs landmark bounds --\n";
  bench_stretch(n, landmarks, pairs, stretch_samples, exact_limit, seed);

  std::cout << "\n-- end-to-end churn + serve + estimate-mode sampling --\n";
  bench_end_to_end(n, churn_rounds, stretch_every, landmarks, pairs, seed);
  return 0;
}
