// figure_common.h -- shared machinery for the figure-reproduction
// benches: size sweeps over Barabasi-Albert graphs, multi-instance
// averaging (Sec. 4.1 methodology), and paper-style table output.
#pragma once

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/api.h"
#include "exp/runner.h"
#include "exp/spec.h"
#include "graph/generators.h"
#include "util/ascii_plot.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dash::bench {

struct FigureOptions {
  std::uint64_t instances = 10;  ///< paper uses 30; CI default is lighter
  std::uint64_t seed = 0x0DA5Bu;
  std::uint64_t min_n = 64;
  std::uint64_t max_n = 1024;
  std::uint64_t ba_edges = 2;  ///< BA attachment edges per node
  std::string attack = "neighborofmax";
  std::string csv_path;   ///< optional CSV dump
  std::string json_path;  ///< optional BENCH_*.json summary dump
  std::uint64_t threads = 0;
  bool help = false;  ///< set when --help was given

  /// Parse common flags; returns false if the program should exit
  /// (check `help` to distinguish --help from a parse error).
  bool parse(int argc, char** argv, const std::string& description) {
    dash::util::Options opt(description);
    opt.add_uint("instances", &instances,
                 "random graph instances per data point (paper: 30)");
    opt.add_uint("seed", &seed, "base RNG seed");
    opt.add_uint("min-n", &min_n, "smallest graph size");
    opt.add_uint("max-n", &max_n, "largest graph size (doubling sweep)");
    opt.add_uint("ba-edges", &ba_edges, "BA attachment edges per node");
    opt.add_string("attack", &attack, "attack strategy");
    opt.add_string("csv", &csv_path, "optional path for CSV output");
    opt.add_string("json", &json_path,
                   "optional path for a BENCH_*.json metric summary");
    opt.add_uint("threads", &threads,
                 "worker threads (0 = hardware concurrency)");
    const bool ok = opt.parse(argc, argv);
    help = opt.help_requested();
    return ok;
  }

  std::vector<std::size_t> sizes() const {
    std::vector<std::size_t> out;
    for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
      out.push_back(static_cast<std::size_t>(n));
    }
    return out;
  }
};

/// One figure data point: per-strategy summary of a metric at size n.
using MetricFn = std::function<double(const api::Metrics&)>;

struct SeriesPoint {
  std::size_t n = 0;
  std::string strategy;
  dash::util::Summary summary;
};

/// Run the Sec. 4.1 methodology for one (n, strategy) cell on the
/// engine -- every instance plays `scenario` -- and return the
/// per-instance metrics. `configure` registers per-instance observers
/// (stretch tracking and the like); pass nullptr when none are needed.
/// When `json` is given, the cell's metrics land in a freshly begun
/// labelled group.
inline std::vector<api::Metrics> run_cell_results(
    const FigureOptions& fo, std::size_t n, const std::string& healer_spec,
    const api::Scenario& scenario, dash::util::ThreadPool& pool,
    const std::function<void(api::Network&)>& configure = nullptr,
    api::JsonSummarySink* json = nullptr,
    const std::string& strategy_label = "") {
  api::SuiteConfig cfg;
  const std::size_t ba_m = static_cast<std::size_t>(fo.ba_edges);
  cfg.make_graph = [n, ba_m](dash::util::Rng& rng) {
    return graph::barabasi_albert(n, ba_m, rng);
  };
  cfg.make_healer = api::healer_factory(healer_spec);
  cfg.scenario = scenario;
  cfg.configure = configure;
  cfg.instances = static_cast<std::size_t>(fo.instances);
  cfg.base_seed = fo.seed ^ (n * 0x9E3779B97F4A7C15ULL);
  if (json != nullptr) {
    json->begin_group({{"n", std::to_string(n)},
                       {"strategy", strategy_label.empty() ? healer_spec
                                                           : strategy_label},
                       {"scenario", scenario.spec()}});
    cfg.sinks.push_back(json);
  }
  return api::run_suite(cfg, pool);
}

/// run_cell_results + one-metric summary, the common figure cell.
inline dash::util::Summary run_cell(
    const FigureOptions& fo, std::size_t n, const std::string& healer_spec,
    const api::Scenario& scenario, const MetricFn& metric,
    dash::util::ThreadPool& pool,
    const std::function<void(api::Network&)>& configure = nullptr,
    api::JsonSummarySink* json = nullptr,
    const std::string& strategy_label = "") {
  return api::summarize_metric(
      run_cell_results(fo, n, healer_spec, scenario, pool, configure, json,
                       strategy_label),
      metric);
}

/// Print one figure: rows = sizes, one column per strategy (mean of the
/// metric, the same series the paper plots), plus an optional CSV dump
/// with mean/stddev/min/max per cell.
inline void print_figure(
    const std::string& title, const FigureOptions& fo,
    const std::vector<std::string>& strategy_names,
    const std::vector<SeriesPoint>& points,
    const std::string& metric_name) {
  std::cout << "\n== " << title << " ==\n";
  std::cout << "attack=" << fo.attack << " instances=" << fo.instances
            << " ba_edges=" << fo.ba_edges << " metric=" << metric_name
            << "\n\n";

  std::vector<std::string> header{"n"};
  header.insert(header.end(), strategy_names.begin(), strategy_names.end());
  dash::util::Table table(header);
  for (std::size_t n : fo.sizes()) {
    table.begin_row();
    table.cell(std::to_string(n));
    for (const auto& strat : strategy_names) {
      for (const auto& p : points) {
        if (p.n == n && p.strategy == strat) {
          table.cell(p.summary.mean, 2);
          break;
        }
      }
    }
  }
  table.print(std::cout);

  // Draw the figure itself, one marker per strategy.
  std::vector<std::string> x_labels;
  for (std::size_t n : fo.sizes()) x_labels.push_back(std::to_string(n));
  std::vector<dash::util::Series> plot_series;
  for (const auto& strat : strategy_names) {
    dash::util::Series s;
    s.label = strat;
    for (std::size_t n : fo.sizes()) {
      for (const auto& p : points) {
        if (p.n == n && p.strategy == strat) {
          s.y.push_back(p.summary.mean);
          break;
        }
      }
    }
    if (s.y.size() == x_labels.size()) plot_series.push_back(std::move(s));
  }
  if (!plot_series.empty() && x_labels.size() >= 2) {
    std::cout << '\n';
    dash::util::ascii_plot(std::cout, x_labels, plot_series);
  }

  if (!fo.csv_path.empty()) {
    std::ofstream out(fo.csv_path);
    dash::util::CsvWriter csv(
        out, {"n", "strategy", "metric", "mean", "stddev", "min", "max",
              "median", "instances"});
    for (const auto& p : points) {
      csv.write(p.n, p.strategy, metric_name, p.summary.mean,
                p.summary.stddev, p.summary.min, p.summary.max,
                p.summary.median, p.summary.count);
    }
    std::cout << "\nCSV written to " << fo.csv_path << "\n";
  }
}

/// Open the optional BENCH_*.json sink for a figure run; the document
/// is written once, when the last suite has fed its group.
struct JsonOutput {
  std::ofstream stream;
  std::optional<api::JsonSummarySink> sink;

  explicit JsonOutput(const std::string& path) {
    if (path.empty()) return;
    stream.open(path);
    sink.emplace(stream);
  }
  ~JsonOutput() {
    if (sink) sink->flush();
  }
  api::JsonSummarySink* get() { return sink ? &*sink : nullptr; }
};

/// The figure benches are grid runs: one ExperimentSpec over the
/// common flags (sizes x healers x one scenario), executed by the exp
/// runner. The derived cell seeds and group labels reproduce the
/// historical per-cell layout, so `--json` documents are unchanged --
/// and `dash_lab run --grid "$(canonical spec)"` recomputes any figure,
/// sharded across processes if desired.
inline exp::ExperimentSpec grid_spec(const FigureOptions& fo,
                                     std::string name,
                                     std::vector<std::string> healers,
                                     std::string scenario,
                                     std::size_t stretch_every = 0) {
  exp::ExperimentSpec spec;
  spec.name = std::move(name);
  spec.sizes = fo.sizes();
  spec.healers = std::move(healers);
  spec.scenarios = {std::move(scenario)};
  spec.instances = static_cast<std::size_t>(fo.instances);
  spec.seed = fo.seed;
  spec.ba_edges = static_cast<std::size_t>(fo.ba_edges);
  spec.stretch_every = stretch_every;
  return spec;
}

/// Execute a figure grid and render the table / plot / CSV / JSON
/// outputs from its cells.
inline int run_grid_figure(const std::string& title,
                           const FigureOptions& fo,
                           const exp::ExperimentSpec& spec,
                           const std::string& metric_name,
                           const MetricFn& metric) {
  try {
    std::vector<std::string> names;
    std::vector<SeriesPoint> points;
    std::vector<exp::ShardRecord> records;
    const std::size_t total = spec.enumerate().size();

    exp::RunnerOptions ropt;
    ropt.threads = static_cast<std::size_t>(fo.threads);
    ropt.on_cell = [&](const exp::CellResult& result) {
      SeriesPoint p;
      p.n = result.cell.n;
      p.strategy = result.cell.strategy_label;
      p.summary = api::summarize_metric(result.runs, metric);
      points.push_back(std::move(p));
      if (std::find(names.begin(), names.end(),
                    result.cell.strategy_label) == names.end()) {
        names.push_back(result.cell.strategy_label);
      }
      if (!fo.json_path.empty()) {
        records.push_back(exp::to_record(spec, result));
      }
      std::fprintf(stderr, "  [%zu/%zu] done n=%zu strategy=%s\n",
                   result.cell.index + 1, total, result.cell.n,
                   result.cell.strategy_label.c_str());
    };
    exp::run(spec, ropt);

    print_figure(title, fo, names, points, metric_name);
    if (!fo.json_path.empty()) {
      std::ofstream out(fo.json_path);
      out << exp::merged_document(spec, records);
      std::cout << "JSON summary written to " << fo.json_path << "\n";
    }
    std::fprintf(stderr, "grid: %s\n", spec.canonical().c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}

/// Full driver shared by Fig. 8 / 9(a) / 9(b): sweep sizes x the paper's
/// five strategies, each cell one declarative scenario suite, and
/// report `metric`.
inline int run_strategy_sweep_figure(int argc, char** argv,
                                     const std::string& title,
                                     const std::string& metric_name,
                                     const MetricFn& metric,
                                     FigureOptions fo = {}) {
  if (!fo.parse(argc, argv, title)) return fo.help ? 0 : 2;

  // The paper's schedule: the adversary deletes until the graph is
  // gone, no observers.
  const auto spec = grid_spec(fo, metric_name,
                              core::paper_strategy_specs(),
                              "targeted:" + fo.attack);
  return run_grid_figure(title, fo, spec, metric_name, metric);
}

}  // namespace dash::bench
