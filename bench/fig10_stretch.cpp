// fig10_stretch.cpp -- reproduces Figure 10: "Stretch for various
// algorithms".
//
// Workload (Sec. 4.6.3): the MaxNode attack (the most effective against
// stretch), Barabasi-Albert graphs, stretch = max over alive pairs of
// dist_healed / dist_original. Stretch is O(n*m) per sample, so this
// bench uses smaller sizes than Fig. 8 and deletes half the nodes,
// sampling every few rounds (configurable).
//
// Expected shape: the naive high-degree healers (GraphHeal) keep stretch
// near 1 (they add many shortcut edges); DASH alone drifts higher;
// SDASH stays close to the naive healers while also keeping degrees low.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;

  dash::bench::FigureOptions fo;
  fo.min_n = 32;
  fo.max_n = 256;
  fo.attack = "maxnode";
  fo.instances = 5;
  std::uint64_t sample_every = 4;
  {
    // Extend the common flags with the sampling interval.
    dash::util::Options opt(
        "Figure 10: stretch vs graph size (MaxNode attack)");
    opt.add_uint("instances", &fo.instances, "instances per point");
    opt.add_uint("seed", &fo.seed, "base RNG seed");
    opt.add_uint("min-n", &fo.min_n, "smallest graph size");
    opt.add_uint("max-n", &fo.max_n, "largest graph size");
    opt.add_uint("ba-edges", &fo.ba_edges, "BA attachment edges");
    opt.add_string("attack", &fo.attack, "attack strategy");
    opt.add_string("csv", &fo.csv_path, "optional CSV output path");
    opt.add_string("json", &fo.json_path, "optional JSON summary path");
    opt.add_uint("threads", &fo.threads, "worker threads");
    opt.add_uint("sample-every", &sample_every,
                 "sample stretch every k-th deletion");
    if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;
  }

  // One grid over sizes x the paper's five strategies: delete half the
  // nodes (degree stays sane at that depth -- untilfrac keeps the spec
  // size-relative, so every n shares one scenario string), with
  // per-instance stretch sampling via the observer pipeline.
  const auto spec = dash::bench::grid_spec(
      fo, "max_stretch", dash::core::paper_strategy_specs(),
      "untilfrac:0.5," + fo.attack,
      static_cast<std::size_t>(sample_every));
  const int rc = dash::bench::run_grid_figure(
      "Figure 10: max stretch vs graph size (max over sampled rounds)",
      fo, spec, "max_stretch",
      [](const Metrics& r) { return r.max_stretch; });
  if (rc != 0) return rc;

  std::cout << "\nreference: log2(n):\n";
  for (std::size_t n : fo.sizes()) {
    std::cout << "  n=" << n << "  log2(n)=" << std::log2(double(n)) << "\n";
  }
  return 0;
}
