// fig8_degree_increase.cpp -- reproduces Figure 8: "Maximum Degree
// increase: DASH vs other algorithms".
//
// Workload (Sec. 4.1/4.4): Barabasi-Albert graphs, NeighborOfMax attack
// (the strategy that consistently produced the highest degree increase),
// delete until the graph is gone, average the max degree increase over
// random instances, sweep graph size.
//
// Expected shape: GraphHeal and LineHeal grow steeply (superlogarithmic),
// BinaryTreeHeal in between, DASH and SDASH below 2 log2 n.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;
  const int rc = dash::bench::run_strategy_sweep_figure(
      argc, argv,
      "Figure 8: maximum degree increase vs graph size",
      "max_degree_increase",
      [](const Metrics& r) {
        return static_cast<double>(r.max_delta);
      });
  if (rc == 0) {
    std::cout << "\nreference: 2*log2(n) bound for DASH:\n";
    for (std::size_t n = 64; n <= 1024; n *= 2) {
      std::cout << "  n=" << n << "  2log2(n)=" << 2.0 * std::log2(double(n))
                << "\n";
    }
  }
  return rc;
}
