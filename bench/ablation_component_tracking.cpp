// ablation_component_tracking.cpp -- reproduces the Section 3.1
// argument: a healer that ignores connected-component information pays
// d-2 extra degrees per deletion and concentrates O(n) degree increase,
// while the component-aware healers stay polylogarithmic.
//
// GraphHeal is exactly "DASH minus component tracking minus delta
// ordering"; BinaryTreeHeal is "DASH minus delta ordering". Comparing
// the three isolates what component tracking buys.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;

  dash::bench::FigureOptions fo;
  fo.instances = 8;
  fo.max_n = 512;
  if (!fo.parse(argc, argv,
                "Ablation: component tracking (Sec 3.1) -- GraphHeal vs "
                "BinaryTreeHeal vs DASH")) {
    return fo.help ? 0 : 2;
  }

  dash::util::ThreadPool pool(static_cast<std::size_t>(fo.threads));
  const std::vector<std::string> names{"GraphHeal", "BinaryTreeHeal",
                                       "DASH"};
  const std::vector<std::string> keys{"graph", "binarytree", "dash"};

  // One suite per cell; both metrics summarize the same runs.
  const auto scenario = dash::api::Scenario().targeted(fo.attack);
  dash::bench::JsonOutput json(fo.json_path);
  std::vector<dash::bench::SeriesPoint> points;
  std::vector<dash::bench::SeriesPoint> edge_points;
  for (std::size_t n : fo.sizes()) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto results = dash::bench::run_cell_results(
          fo, n, keys[i], scenario, pool, nullptr, json.get(), names[i]);

      dash::bench::SeriesPoint p;
      p.n = n;
      p.strategy = names[i];
      p.summary = dash::api::summarize_metric(
          results, [](const Metrics& r) {
            return static_cast<double>(r.max_delta);
          });
      points.push_back(p);

      dash::bench::SeriesPoint e;
      e.n = n;
      e.strategy = names[i];
      e.summary = dash::api::summarize_metric(
          results, [](const Metrics& r) {
            return static_cast<double>(r.edges_added);
          });
      edge_points.push_back(e);
    }
    std::fprintf(stderr, "  done n=%zu\n", n);
  }

  dash::bench::print_figure(
      "Ablation (Sec 3.1): max degree increase without/with component "
      "tracking",
      fo, names, points, "max_degree_increase");
  dash::bench::print_figure(
      "Ablation (Sec 3.1): total healing edges added over the schedule",
      fo, names, edge_points, "edges_added");
  std::cout << "\nexpected: GraphHeal adds ~d-2 degrees per deletion "
               "(grows with n);\ncomponent-aware healers add the minimum "
               "needed and stay ~2log2(n).\n";
  return 0;
}
