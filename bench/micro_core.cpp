// micro_core.cpp -- google-benchmark microbenchmarks of the data
// structures on the healing hot path: graph mutation, BFS, union-find,
// generators, one DASH heal step, full schedules per size, and the
// incremental-connectivity tracker vs the per-round BFS scan.
#include <benchmark/benchmark.h>

#include <optional>
#include <utility>
#include <vector>

#include "analysis/stretch.h"
#include "api/api.h"
#include "graph/dynamic_connectivity.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "graph/union_find.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using dash::core::DeletionContext;
using dash::core::HealingState;
using dash::graph::Graph;
using dash::graph::NodeId;
using dash::util::Rng;

void BM_GraphAddRemoveEdge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g(n);
  Rng rng(1);
  for (auto _ : state) {
    const auto a = static_cast<NodeId>(rng.below(n));
    auto b = static_cast<NodeId>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    if (g.add_edge(a, b)) {
      g.remove_edge(a, b);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphAddRemoveEdge)->Arg(1024)->Arg(16384);

void BM_BfsDistances(benchmark::State& state) {
  // The traversal hot path as the stretch/invariant consumers drive it:
  // the graph's cached CSR snapshot plus a reusable scratch -- no
  // allocation per call.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Graph g = dash::graph::barabasi_albert(n, 2, rng);
  const dash::graph::FlatView& view = g.flat_view();
  dash::graph::TraversalScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dash::graph::bfs_distances(view, 0, scratch));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BfsDistances)->Arg(1024)->Arg(8192);

void BM_BfsDistancesLegacy(benchmark::State& state) {
  // The historical signature: same engine underneath, plus the
  // per-call materialization of the full distance vector.
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Graph g = dash::graph::barabasi_albert(n, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dash::graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BfsDistancesLegacy)->Arg(1024)->Arg(8192);

void BM_StretchSample(benchmark::State& state) {
  // One full stretch sample (max+average in a single APSP pass) on a
  // static BA graph with 10% of the nodes deleted and path-healed:
  // the per-sample cost Fig. 10 pays every sampled round. range(1) is
  // the worker count (0 = sequential path).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto workers = static_cast<std::size_t>(state.range(1));
  Rng rng(11);
  Graph g = dash::graph::barabasi_albert(n, 2, rng);
  const dash::analysis::StretchTracker tracker(g);
  for (std::size_t i = 0; i < n / 10; ++i) {
    const auto alive = g.alive_nodes();
    const auto survivors = g.delete_node(
        alive[static_cast<std::size_t>(rng.below(alive.size()))]);
    for (std::size_t j = 1; j < survivors.size(); ++j) {
      g.add_edge(survivors[j - 1], survivors[j]);
    }
  }
  std::optional<dash::util::ThreadPool> pool;
  if (workers > 0) pool.emplace(workers);
  double sample = 0.0;
  for (auto _ : state) {
    const auto stats =
        pool ? tracker.stretch_stats(g, *pool) : tracker.stretch_stats(g);
    sample = stats.max;
    benchmark::DoNotOptimize(sample);
  }
  state.SetItemsProcessed(state.iterations() * g.num_alive());
  state.SetLabel(workers == 0 ? "seq" : std::to_string(workers) + "w");
}
BENCHMARK(BM_StretchSample)
    ->Args({1024, 0})
    ->Args({1024, 4})
    ->Args({4096, 0})
    ->Args({4096, 4})
    ->Unit(benchmark::kMicrosecond);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    dash::graph::UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i) {
      uf.unite(static_cast<NodeId>(rng.below(n)),
               static_cast<NodeId>(rng.below(n)));
    }
    benchmark::DoNotOptimize(uf.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFind)->Arg(4096);

void BM_BarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dash::graph::barabasi_albert(n, 2, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BarabasiAlbert)->Arg(1024)->Arg(8192);

void BM_DashHealStep(benchmark::State& state) {
  // Cost of one deletion+heal on a star (the worst reconnection-set
  // size for a single heal).
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = dash::graph::star_graph(k + 1);
    Rng rng(5);
    HealingState st(g, rng);
    auto healer = dash::core::make_strategy("dash");
    state.ResumeTiming();
    const DeletionContext ctx = st.begin_deletion(g, 0);
    g.delete_node(0);
    healer->heal(g, st, ctx);
    benchmark::DoNotOptimize(st.max_delta_ever());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_DashHealStep)->Arg(64)->Arg(512);

void BM_FullSchedule(benchmark::State& state) {
  // Full engine loop via a declarative scenario: attack selection and
  // heal, with no observers attached -- connectivity checks are lazy,
  // so none run until the final finish() scan.
  const auto n = static_cast<std::size_t>(state.range(0));
  const char* names[] = {"dash", "sdash", "graph"};
  const char* healer_name = names[state.range(1)];
  const auto scenario =
      dash::api::Scenario().targeted("neighborofmax");
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(6);
    Graph g = dash::graph::barabasi_albert(n, 2, rng);
    dash::api::Network net(std::move(g),
                           dash::core::make_strategy(healer_name), rng);
    state.ResumeTiming();
    const auto metrics = net.play(scenario, 7);
    benchmark::DoNotOptimize(metrics.max_delta);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(healer_name);
}
BENCHMARK(BM_FullSchedule)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({1024, 0});

void BM_ObserverPipelineOverhead(benchmark::State& state) {
  // Same schedule with a row-recording sink attached: what a pipeline
  // stage costs per deletion (dominated by the largest-component scan).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scenario =
      dash::api::Scenario().targeted("neighborofmax");
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(6);
    Graph g = dash::graph::barabasi_albert(n, 2, rng);
    dash::api::Network net(std::move(g), dash::core::make_strategy("dash"),
                           rng);
    dash::api::MemorySink rows;
    net.add_observer(std::make_unique<dash::api::SinkObserver>(rows));
    state.ResumeTiming();
    const auto metrics = net.play(scenario, 7);
    benchmark::DoNotOptimize(metrics.deletions);
    benchmark::DoNotOptimize(rows.rows().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ObserverPipelineOverhead)->Arg(256);

void BM_ConnectivityPerRound(benchmark::State& state) {
  // End-to-end comparison: a 10k-node churn scenario with an
  // InvariantObserver asking connectivity EVERY round (battery
  // amortized out of the measurement), answered by the incremental
  // DynamicConnectivity tracker (mode 0) vs the per-round BFS scan
  // (mode 1). The whole engine loop is timed -- graph mutation, heal,
  // id propagation, churn bookkeeping -- and the tracker still wins
  // >= 5x because the per-round scans dominate everything else. The
  // Metrics are identical between the modes (the property suite pins
  // that down).
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool use_tracker = state.range(1) == 0;
  const auto scenario = dash::api::Scenario().churn(0.3, 0.7, 2000);
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(8);
    Graph g = dash::graph::barabasi_albert(n, 2, rng);
    dash::api::Network net(std::move(g), dash::core::make_strategy("dash"),
                           rng);
    net.set_connectivity_mode(use_tracker
                                  ? dash::api::ConnectivityMode::kTracker
                                  : dash::api::ConnectivityMode::kBfs);
    dash::api::InvariantOptions inv_opts;
    inv_opts.battery_every = 0;  // isolate the connectivity cost
    net.add_observer(
        std::make_unique<dash::api::InvariantObserver>(inv_opts));
    state.ResumeTiming();
    const auto metrics = net.play(scenario, 9);
    benchmark::DoNotOptimize(metrics.stayed_connected);
    benchmark::DoNotOptimize(metrics.largest_component);
  }
  state.SetItemsProcessed(state.iterations() * 2000);
  state.SetLabel(use_tracker ? "tracker" : "bfs");
}
BENCHMARK(BM_ConnectivityPerRound)
    ->Args({10000, 0})
    ->Args({10000, 1})
    ->Unit(benchmark::kMillisecond);

/// One recorded churn event for BM_ConnectivityCheckReplay: a join
/// (new node wired to two peers) or a deletion plus the path of heal
/// edges that certifiably reconnects its survivors.
struct ReplayOp {
  bool is_join = false;
  NodeId victim = 0;
  std::vector<NodeId> join_targets;
  std::vector<std::pair<NodeId, NodeId>> heal_edges;
};

struct ReplayTrace {
  Graph base;
  std::vector<ReplayOp> ops;
};

const ReplayTrace& replay_trace() {
  // Built once: a 10k-node BA graph and 2000 churn events (30% join /
  // 70% leave, survivors path-healed so every deletion is certified),
  // with victims and heal edges recorded so both bench variants replay
  // the *identical* mutation stream.
  static const ReplayTrace* trace = [] {
    auto* t = new ReplayTrace{Graph(0), {}};
    Rng rng(10);
    t->base = dash::graph::barabasi_albert(10000, 2, rng);
    Graph g = t->base;
    t->ops.reserve(2000);
    for (std::size_t e = 0; e < 2000; ++e) {
      ReplayOp op;
      if (rng.chance(0.3)) {
        op.is_join = true;
        const auto alive = g.alive_nodes();
        op.join_targets = {
            alive[static_cast<std::size_t>(rng.below(alive.size()))],
            alive[static_cast<std::size_t>(rng.below(alive.size()))]};
        const NodeId v = g.add_node();
        for (NodeId target : op.join_targets) {
          if (target != v) g.add_edge(v, target);
        }
      } else {
        const auto alive = g.alive_nodes();
        op.victim =
            alive[static_cast<std::size_t>(rng.below(alive.size()))];
        const auto survivors = g.delete_node(op.victim);
        for (std::size_t i = 1; i < survivors.size(); ++i) {
          if (g.add_edge(survivors[i - 1], survivors[i])) {
            op.heal_edges.emplace_back(survivors[i - 1], survivors[i]);
          }
        }
      }
      t->ops.push_back(std::move(op));
    }
    return t;
  }();
  return *trace;
}

void BM_ConnectivityCheckReplay(benchmark::State& state) {
  // The isolated subsystem cost: replay the recorded 10k churn mutation
  // stream and answer "connected?" after every event via the tracker
  // (mode 0) or a fresh BFS (mode 1). Graph mutation cost is common to
  // both variants; everything else is pure connectivity-check.
  const bool use_tracker = state.range(0) == 0;
  const ReplayTrace& trace = replay_trace();
  std::size_t checks = 0;
  for (auto _ : state) {
    Graph g = trace.base;
    std::optional<dash::graph::DynamicConnectivity> dc;
    if (use_tracker) dc.emplace(g);
    bool ok = true;
    for (const ReplayOp& op : trace.ops) {
      if (op.is_join) {
        const NodeId v = g.add_node();
        if (use_tracker) dc->node_added(v);
        for (NodeId target : op.join_targets) {
          if (target != v && g.add_edge(v, target)) {
            if (use_tracker) dc->edge_added(v, target);
          }
        }
      } else {
        const auto survivors = g.delete_node(op.victim);
        for (const auto& [a, b] : op.heal_edges) {
          g.add_edge(a, b);
          if (use_tracker) dc->edge_added(a, b);
        }
        if (use_tracker) {
          dc->node_removed(op.victim, survivors, /*may_split=*/false);
        }
      }
      ok &= use_tracker ? dc->connected() : dash::graph::is_connected(g);
      ++checks;
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checks));
  state.SetLabel(use_tracker ? "tracker" : "bfs");
}
BENCHMARK(BM_ConnectivityCheckReplay)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MinIdPropagation(benchmark::State& state) {
  // Propagation cost over a long healing chain.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Graph g(n);
    Rng rng(7);
    HealingState st(g, rng);
    std::vector<NodeId> chain;
    for (NodeId v = 1; v < n; ++v) st.add_healing_edge(g, v - 1, v);
    for (NodeId v = 0; v < n; ++v) chain.push_back(v);
    state.ResumeTiming();
    benchmark::DoNotOptimize(st.propagate_min_id(g, chain));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MinIdPropagation)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
