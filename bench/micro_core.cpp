// micro_core.cpp -- google-benchmark microbenchmarks of the data
// structures on the healing hot path: graph mutation, BFS, union-find,
// generators, one DASH heal step, and full schedules per size.
#include <benchmark/benchmark.h>

#include "api/api.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "graph/union_find.h"
#include "util/rng.h"

namespace {

using dash::core::DeletionContext;
using dash::core::HealingState;
using dash::graph::Graph;
using dash::graph::NodeId;
using dash::util::Rng;

void BM_GraphAddRemoveEdge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Graph g(n);
  Rng rng(1);
  for (auto _ : state) {
    const auto a = static_cast<NodeId>(rng.below(n));
    auto b = static_cast<NodeId>(rng.below(n));
    if (a == b) b = (b + 1) % n;
    if (g.add_edge(a, b)) {
      g.remove_edge(a, b);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphAddRemoveEdge)->Arg(1024)->Arg(16384);

void BM_BfsDistances(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const Graph g = dash::graph::barabasi_albert(n, 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dash::graph::bfs_distances(g, 0));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BfsDistances)->Arg(1024)->Arg(8192);

void BM_UnionFind(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    dash::graph::UnionFind uf(n);
    for (std::size_t i = 0; i < n; ++i) {
      uf.unite(static_cast<NodeId>(rng.below(n)),
               static_cast<NodeId>(rng.below(n)));
    }
    benchmark::DoNotOptimize(uf.num_sets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFind)->Arg(4096);

void BM_BarabasiAlbert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dash::graph::barabasi_albert(n, 2, rng));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BarabasiAlbert)->Arg(1024)->Arg(8192);

void BM_DashHealStep(benchmark::State& state) {
  // Cost of one deletion+heal on a star (the worst reconnection-set
  // size for a single heal).
  const auto k = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = dash::graph::star_graph(k + 1);
    Rng rng(5);
    HealingState st(g, rng);
    auto healer = dash::core::make_strategy("dash");
    state.ResumeTiming();
    const DeletionContext ctx = st.begin_deletion(g, 0);
    g.delete_node(0);
    healer->heal(g, st, ctx);
    benchmark::DoNotOptimize(st.max_delta_ever());
  }
  state.SetItemsProcessed(state.iterations() * k);
}
BENCHMARK(BM_DashHealStep)->Arg(64)->Arg(512);

void BM_FullSchedule(benchmark::State& state) {
  // Full engine loop via a declarative scenario: attack selection and
  // heal, with no observers attached -- connectivity checks are lazy,
  // so none run until the final finish() scan.
  const auto n = static_cast<std::size_t>(state.range(0));
  const char* names[] = {"dash", "sdash", "graph"};
  const char* healer_name = names[state.range(1)];
  const auto scenario =
      dash::api::Scenario().targeted("neighborofmax");
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(6);
    Graph g = dash::graph::barabasi_albert(n, 2, rng);
    dash::api::Network net(std::move(g),
                           dash::core::make_strategy(healer_name), rng);
    state.ResumeTiming();
    const auto metrics = net.play(scenario, 7);
    benchmark::DoNotOptimize(metrics.max_delta);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(healer_name);
}
BENCHMARK(BM_FullSchedule)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({1024, 0});

void BM_ObserverPipelineOverhead(benchmark::State& state) {
  // Same schedule with a row-recording sink attached: what a pipeline
  // stage costs per deletion (dominated by the largest-component scan).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scenario =
      dash::api::Scenario().targeted("neighborofmax");
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(6);
    Graph g = dash::graph::barabasi_albert(n, 2, rng);
    dash::api::Network net(std::move(g), dash::core::make_strategy("dash"),
                           rng);
    dash::api::MemorySink rows;
    net.add_observer(std::make_unique<dash::api::SinkObserver>(rows));
    state.ResumeTiming();
    const auto metrics = net.play(scenario, 7);
    benchmark::DoNotOptimize(metrics.deletions);
    benchmark::DoNotOptimize(rows.rows().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ObserverPipelineOverhead)->Arg(256);

void BM_MinIdPropagation(benchmark::State& state) {
  // Propagation cost over a long healing chain.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Graph g(n);
    Rng rng(7);
    HealingState st(g, rng);
    std::vector<NodeId> chain;
    for (NodeId v = 1; v < n; ++v) st.add_healing_edge(g, v - 1, v);
    for (NodeId v = 0; v < n; ++v) chain.push_back(v);
    state.ResumeTiming();
    benchmark::DoNotOptimize(st.propagate_min_id(g, chain));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MinIdPropagation)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
