// ablation_leaf_placement.cpp -- design ablation: DASH's delta-ordered
// placement (most-burdened nodes become RT leaves) vs the same healer
// with id-ordered (delta-oblivious) placement, i.e. BinaryTreeHeal.
//
// This isolates the single design choice that turns the naive
// component-aware healer into DASH and shows it is what buys the
// 2 log2 n guarantee in practice.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;

  dash::bench::FigureOptions fo;
  fo.instances = 8;
  if (!fo.parse(argc, argv,
                "Ablation: delta-ordered leaf placement (DASH) vs "
                "id-ordered placement (BinaryTreeHeal)")) {
    return fo.help ? 0 : 2;
  }

  dash::util::ThreadPool pool(static_cast<std::size_t>(fo.threads));
  const std::vector<std::string> names{"delta-ordered(DASH)",
                                       "id-ordered(BinaryTreeHeal)"};
  const std::vector<std::string> keys{"dash", "binarytree"};

  const auto scenario = dash::api::Scenario().targeted(fo.attack);
  dash::bench::JsonOutput json(fo.json_path);
  std::vector<dash::bench::SeriesPoint> points;
  for (std::size_t n : fo.sizes()) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      dash::bench::SeriesPoint p;
      p.n = n;
      p.strategy = names[i];
      p.summary = dash::bench::run_cell(
          fo, n, keys[i], scenario,
          [](const Metrics& r) {
            return static_cast<double>(r.max_delta);
          },
          pool, nullptr, json.get(), names[i]);
      points.push_back(p);
    }
    std::fprintf(stderr, "  done n=%zu\n", n);
  }

  dash::bench::print_figure(
      "Ablation: RT placement policy vs max degree increase", fo, names,
      points, "max_degree_increase");
  std::cout << "\nexpected: both are O(polylog); delta-ordering keeps "
               "DASH at/below 2log2(n) while id-ordering drifts above "
               "it as n grows.\n";
  return 0;
}
