// thm1_bounds.cpp -- checks every quantitative bullet of Theorem 1
// empirically and reports measured-vs-bound ratios:
//
//   * delta(v) <= 2 log2 n  (max degree increase)
//   * messages per node <= 2 (d + 2 log2 n) ln n
//   * id changes per node <= 2 ln n (record breaking)
//   * reconnection latency O(1) and amortized id-propagation latency
//     O(log n) -- measured on the distributed simulator.
//
// The sequential engine runs are one scenario suite per size, with the
// per-node ratios read off each instance's final healing state through
// the suite's inspect hook; the latency claims run on the distributed
// simulator's standard max-degree schedule.
#include <cmath>
#include <iostream>

#include "figure_common.h"
#include "graph/metrics.h"
#include "sim/distributed_dash.h"

namespace {

using dash::graph::Graph;
using dash::graph::NodeId;

/// Worst measured/bound ratio for the per-node message bound.
double worst_message_ratio(const dash::core::HealingState& st,
                           std::size_t n) {
  const double log2n = std::log2(static_cast<double>(n));
  const double lnn = std::log(static_cast<double>(n));
  double worst = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const double d = static_cast<double>(st.initial_degree(v));
    const double bound = 2.0 * (d + 2.0 * log2n) * lnn;
    if (bound > 0.0) {
      worst = std::max(
          worst, static_cast<double>(st.messages_total(v)) / bound);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  dash::bench::FigureOptions fo;
  fo.instances = 5;
  if (!fo.parse(argc, argv,
                "Theorem 1 bound check: measured vs proven bounds")) {
    return fo.help ? 0 : 2;
  }

  std::cout << "\n== Theorem 1: measured / bound ratios (DASH, " << fo.attack
            << " attack, " << fo.instances << " instances) ==\n\n";
  dash::util::Table table({"n", "max_delta", "2log2n", "delta_ratio",
                           "msg_ratio", "idchg_ratio", "reconnect_rounds",
                           "mean_prop_rounds", "log2n"});

  dash::util::ThreadPool pool(static_cast<std::size_t>(fo.threads));
  const auto scenario = dash::api::Scenario().targeted(fo.attack);

  for (std::size_t n : fo.sizes()) {
    const double log2n = std::log2(static_cast<double>(n));
    const double lnn = std::log(static_cast<double>(n));

    // Engine bounds: one suite, ratios read via the inspect hook.
    double worst_delta = 0, worst_msg = 0, worst_idchg = 0;
    dash::api::SuiteConfig cfg;
    const auto ba_m = static_cast<std::size_t>(fo.ba_edges);
    cfg.make_graph = [n, ba_m](dash::util::Rng& rng) {
      return dash::graph::barabasi_albert(n, ba_m, rng);
    };
    cfg.make_healer = dash::api::healer_factory("dash");
    cfg.scenario = scenario;
    cfg.instances = static_cast<std::size_t>(fo.instances);
    cfg.base_seed = fo.seed ^ (n * 0x9E3779B97F4A7C15ULL);
    cfg.inspect = [&](std::size_t, const dash::api::Network& net,
                      const dash::api::Metrics& r) {
      const auto& st = net.state();
      worst_delta = std::max(
          worst_delta, static_cast<double>(r.max_delta) / (2.0 * log2n));
      worst_msg = std::max(worst_msg, worst_message_ratio(st, n));
      worst_idchg =
          std::max(worst_idchg,
                   static_cast<double>(st.max_id_changes()) / (2.0 * lnn));
    };
    dash::api::run_suite(cfg, pool);

    // Distributed latency measurements on fresh instances drawn from
    // the same per-instance seed layout.
    double max_reconnect = 0, mean_prop = 0;
    for (std::size_t inst = 0; inst < fo.instances; ++inst) {
      dash::util::Rng seeder(fo.seed ^ (n * 0x9E3779B97F4A7C15ULL));
      dash::util::Rng rng = seeder.fork(inst + 1);
      Graph g = dash::graph::barabasi_albert(n, ba_m, rng);
      dash::sim::DistributedDashSim sim(std::move(g), rng);
      dash::sim::run_max_degree_attack(sim);
      for (auto rr : sim.metrics().reconnect_rounds) {
        max_reconnect = std::max(max_reconnect, static_cast<double>(rr));
      }
      mean_prop = std::max(mean_prop,
                           sim.metrics().mean_propagation_rounds());
    }

    table.begin_row()
        .cell(std::to_string(n))
        .cell(worst_delta * 2.0 * log2n, 1)
        .cell(2.0 * log2n, 1)
        .cell(worst_delta, 3)
        .cell(worst_msg, 3)
        .cell(worst_idchg, 3)
        .cell(max_reconnect, 0)
        .cell(mean_prop, 2)
        .cell(log2n, 2);
    std::fprintf(stderr, "  done n=%zu\n", n);
  }
  table.print(std::cout);
  std::cout << "\ndelta_ratio is a deterministic bound and must stay "
               "<= 1.0.\nmsg_ratio and idchg_ratio are with-high-"
               "probability bounds: expect ~<= 1.0, with small "
               "excursions (<10%) possible at small n.\nreconnect_rounds "
               "is the O(1) claim; mean_prop_rounds vs log2n is the "
               "amortized O(log n) claim.\n";
  return 0;
}
