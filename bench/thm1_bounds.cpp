// thm1_bounds.cpp -- checks every quantitative bullet of Theorem 1
// empirically and reports measured-vs-bound ratios:
//
//   * delta(v) <= 2 log2 n  (max degree increase)
//   * messages per node <= 2 (d + 2 log2 n) ln n
//   * id changes per node <= 2 ln n (record breaking)
//   * reconnection latency O(1) and amortized id-propagation latency
//     O(log n) -- measured on the distributed simulator.
#include <cmath>
#include <iostream>

#include "figure_common.h"
#include "graph/metrics.h"
#include "sim/distributed_dash.h"

namespace {

using dash::graph::Graph;
using dash::graph::NodeId;

/// Worst measured/bound ratio for the per-node message bound.
double worst_message_ratio(const Graph& original,
                           const dash::core::HealingState& st,
                           std::size_t n) {
  const double log2n = std::log2(static_cast<double>(n));
  const double lnn = std::log(static_cast<double>(n));
  double worst = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const double d = static_cast<double>(st.initial_degree(v));
    const double bound = 2.0 * (d + 2.0 * log2n) * lnn;
    if (bound > 0.0) {
      worst = std::max(
          worst, static_cast<double>(st.messages_total(v)) / bound);
    }
  }
  (void)original;
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  dash::bench::FigureOptions fo;
  fo.instances = 5;
  if (!fo.parse(argc, argv,
                "Theorem 1 bound check: measured vs proven bounds")) {
    return fo.help ? 0 : 2;
  }

  std::cout << "\n== Theorem 1: measured / bound ratios (DASH, " << fo.attack
            << " attack, " << fo.instances << " instances) ==\n\n";
  dash::util::Table table({"n", "max_delta", "2log2n", "delta_ratio",
                           "msg_ratio", "idchg_ratio", "reconnect_rounds",
                           "mean_prop_rounds", "log2n"});

  for (std::size_t n : fo.sizes()) {
    double worst_delta = 0, worst_msg = 0, worst_idchg = 0;
    double max_reconnect = 0, mean_prop = 0;
    for (std::size_t inst = 0; inst < fo.instances; ++inst) {
      dash::util::Rng seeder(fo.seed ^ (n * 0x9E3779B97F4A7C15ULL));
      dash::util::Rng rng = seeder.fork(inst + 1);
      Graph g = dash::graph::barabasi_albert(
          n, static_cast<std::size_t>(fo.ba_edges), rng);
      const Graph original = g;
      dash::api::Network net(std::move(g), dash::core::make_strategy("dash"),
                             rng);
      auto attacker =
          dash::attack::make_attack(fo.attack, rng.next_u64());
      const auto r = net.run(*attacker);
      const auto& st = net.state();

      const double log2n = std::log2(static_cast<double>(n));
      const double lnn = std::log(static_cast<double>(n));
      worst_delta = std::max(
          worst_delta, static_cast<double>(r.max_delta) / (2.0 * log2n));
      worst_msg = std::max(worst_msg, worst_message_ratio(original, st, n));
      worst_idchg =
          std::max(worst_idchg,
                   static_cast<double>(st.max_id_changes()) / (2.0 * lnn));

      // Distributed latency measurements on a fresh instance.
      dash::util::Rng rng2 = seeder.fork(inst + 1);
      Graph g2 = dash::graph::barabasi_albert(
          n, static_cast<std::size_t>(fo.ba_edges), rng2);
      dash::sim::DistributedDashSim sim(std::move(g2), rng2);
      while (sim.network().num_alive() > 1) {
        const NodeId hub = dash::graph::argmax_degree(sim.network());
        sim.delete_and_heal(hub);
      }
      for (auto rr : sim.metrics().reconnect_rounds) {
        max_reconnect = std::max(max_reconnect, static_cast<double>(rr));
      }
      mean_prop = std::max(mean_prop,
                           sim.metrics().mean_propagation_rounds());
    }
    const double log2n = std::log2(static_cast<double>(n));
    table.begin_row()
        .cell(std::to_string(n))
        .cell(worst_delta * 2.0 * log2n, 1)
        .cell(2.0 * log2n, 1)
        .cell(worst_delta, 3)
        .cell(worst_msg, 3)
        .cell(worst_idchg, 3)
        .cell(max_reconnect, 0)
        .cell(mean_prop, 2)
        .cell(log2n, 2);
    std::fprintf(stderr, "  done n=%zu\n", n);
  }
  table.print(std::cout);
  std::cout << "\ndelta_ratio is a deterministic bound and must stay "
               "<= 1.0.\nmsg_ratio and idchg_ratio are with-high-"
               "probability bounds: expect ~<= 1.0, with small "
               "excursions (<10%) possible at small n.\nreconnect_rounds "
               "is the O(1) claim; mean_prop_rounds vs log2n is the "
               "amortized O(log n) claim.\n";
  return 0;
}
