// sim_distributed.cpp -- distributed-protocol scaling study on the
// round-based simulator: reconnection latency (Theorem 1: O(1)),
// per-deletion id-propagation latency (amortized O(log n)), and total
// message volume, as graph size grows.
#include <cmath>
#include <iostream>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "sim/distributed_dash.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  std::uint64_t min_n = 64, max_n = 1024, instances = 5, seed = 99;
  std::string attack = "maxnode";
  dash::util::Options opt(
      "Distributed DASH on the round simulator: latency & messages");
  opt.add_uint("min-n", &min_n, "smallest graph size");
  opt.add_uint("max-n", &max_n, "largest graph size (doubling)");
  opt.add_uint("instances", &instances, "instances per size");
  opt.add_uint("seed", &seed, "base seed");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::cout << "\n== Distributed DASH scaling (round-based simulator, "
               "max-degree attack) ==\n\n";
  dash::util::Table table({"n", "reconnect_rounds_max", "prop_rounds_mean",
                           "prop_rounds_max", "log2n", "total_msgs",
                           "max_msgs_per_node", "max_id_changes",
                           "max_delta", "2log2n"});

  for (std::uint64_t n = min_n; n <= max_n; n *= 2) {
    double reconnect_max = 0, prop_mean = 0, prop_max = 0;
    double total_msgs = 0, max_msgs = 0, max_idchg = 0, max_delta = 0;
    for (std::uint64_t inst = 0; inst < instances; ++inst) {
      dash::util::Rng seeder(seed ^ (n * 0x9E3779B97F4A7C15ULL));
      dash::util::Rng rng = seeder.fork(inst + 1);
      auto g = dash::graph::barabasi_albert(
          static_cast<std::size_t>(n), 2, rng);
      dash::sim::DistributedDashSim sim(std::move(g), rng);
      dash::sim::run_max_degree_attack(sim);
      const auto& m = sim.metrics();
      for (auto r : m.reconnect_rounds) {
        reconnect_max = std::max(reconnect_max, double(r));
      }
      prop_mean = std::max(prop_mean, m.mean_propagation_rounds());
      prop_max = std::max(prop_max, double(m.max_propagation_rounds()));
      total_msgs += double(m.total_messages) / double(instances);
      max_msgs = std::max(max_msgs, double(m.max_messages_per_node()));
      max_idchg = std::max(max_idchg, double(m.max_id_changes()));
      max_delta = std::max(max_delta, double(sim.max_delta()));
    }
    const double log2n = std::log2(static_cast<double>(n));
    table.begin_row()
        .cell(std::to_string(n))
        .cell(reconnect_max, 0)
        .cell(prop_mean, 2)
        .cell(prop_max, 0)
        .cell(log2n, 2)
        .cell(total_msgs, 0)
        .cell(max_msgs, 0)
        .cell(max_idchg, 0)
        .cell(max_delta, 0)
        .cell(2 * log2n, 1);
    std::fprintf(stderr, "  done n=%llu\n",
                 static_cast<unsigned long long>(n));
  }
  table.print(std::cout);
  std::cout << "\nexpected: reconnect_rounds_max == 1 (O(1) claim); "
               "prop_rounds_mean grows ~log n;\nmax_delta <= 2log2n.\n";
  return 0;
}
