// serve_churn.cpp -- read throughput and tail latency of the concurrent
// serving engine under live churn+heal: one mutation thread plays a
// churn scenario while N reader threads answer connected/distance/
// largest_component queries from pinned epoch snapshots
// (api/serve.h). Reports reads/s and p50/p99/p999 per reader count,
// cross-checks label-based connectivity against BFS reachability on
// every pinned snapshot it probes (a disagreement is a torn read), and
// verifies the mutation stream stayed byte-identical across reader
// counts. Exit code 1 on any torn read or determinism violation.
//
//   serve_churn --n 10000 --readers 1,2,4,8 --scenario churn:0.3,0.1x2000
//   serve_churn --n 1024 --readers 4 --verify          # cross-check all
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "api/serve_bench.h"
#include "util/cli.h"
#include "util/registry.h"

namespace {

std::vector<std::size_t> parse_reader_counts(const std::string& spec) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const auto comma = spec.find(',', start);
    const std::string item = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    out.push_back(static_cast<std::size_t>(
        dash::util::parse_spec_uint("readers", item, 1024)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  dash::api::ServeBenchConfig cfg;
  std::uint64_t n = cfg.n;
  std::uint64_t seed = cfg.seed;
  std::uint64_t publish_every = cfg.publish_every;
  std::uint64_t distance_every = cfg.distance_every;
  std::string readers = "1,2,4,8";
  std::string json_path;

  dash::util::Options opts(
      "Concurrent serving bench: read throughput + latency under churn");
  opts.add_uint("n", &n, "initial Barabasi-Albert network size");
  opts.add_string("healer", &cfg.healer, "healing strategy spec");
  opts.add_string("scenario", &cfg.scenario, "mutation scenario spec");
  opts.add_uint("seed", &seed, "base seed");
  opts.add_string("readers", &readers,
                  "comma-separated reader thread counts to sweep");
  opts.add_uint("publish-every", &publish_every,
                "publish a snapshot every k-th mutation event");
  opts.add_uint("distance-every", &distance_every,
                "every k-th read runs the BFS cross-check (0 = never)");
  opts.add_flag("verify", &cfg.verify,
                "cross-check label vs BFS connectivity on every read");
  opts.add_string("rows", &cfg.rows_path,
                  "stream per-round rows (async pipeline) to this CSV");
  opts.add_string("json", &json_path, "write the report as JSON here");
  if (!opts.parse(argc, argv)) return opts.help_requested() ? 0 : 2;

  cfg.n = static_cast<std::size_t>(n);
  cfg.seed = seed;
  cfg.publish_every = static_cast<std::size_t>(publish_every);
  cfg.distance_every = static_cast<std::size_t>(distance_every);
  try {
    cfg.reader_counts = parse_reader_counts(readers);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  dash::api::ServeBenchReport report;
  try {
    report = dash::api::run_serve_bench(cfg);
  } catch (const std::exception& e) {
    std::cerr << "serve_churn: " << e.what() << "\n";
    return 2;
  }

  render_serve_table(report, std::cout);
  if (!json_path.empty()) {
    std::ofstream os(json_path);
    if (!os) {
      std::cerr << "serve_churn: cannot write " << json_path << "\n";
      return 2;
    }
    render_serve_json(cfg, report, os);
  }
  return report.ok() ? 0 : 1;
}
