// thm2_lower_bound.cpp -- reproduces the Theorem 2 lower bound
// construction: LEVELATTACK on complete (M+2)-ary trees forces any
// M-degree-bounded locality-aware healer to give some node a degree
// increase of at least D = log_{M+2}(n) (one unit per level, Lemma 13).
//
// We run the attack against the best-effort DegreeCapped healer for
// M in {2,3} and against DASH (whose per-round increase is not capped
// but whose total obeys the 2 log2 n upper bound), and report the forced
// max degree increase per tree depth.
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "attack/level_attack.h"
#include "graph/generators.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

using dash::graph::Graph;
using dash::graph::NodeId;

struct Outcome {
  std::size_t n = 0;
  std::uint32_t max_delta = 0;
  std::size_t deletions = 0;
  std::size_t prunes = 0;
};

Outcome run(std::size_t m, std::size_t depth, const std::string& healer,
            std::uint64_t seed) {
  const auto tree = dash::graph::complete_kary_tree(m + 2, depth);
  Graph g = tree.g;
  dash::util::Rng rng(seed);
  dash::api::Network net(std::move(g), dash::core::make_strategy(healer),
                         rng);

  // LEVELATTACK is not registry-constructible (it needs the tree
  // metadata), so the scenario borrows the caller-owned instance
  // through a custom attacker factory.
  dash::attack::LevelAttack atk(tree, static_cast<std::uint32_t>(m));
  const auto scenario = dash::api::Scenario().targeted(
      [&atk](std::uint64_t) {
        return std::make_unique<dash::attack::BorrowedAttack>(atk);
      },
      "levelattack");

  Outcome out;
  out.n = net.graph().num_nodes();
  const auto metrics = net.play(scenario, rng);
  DASH_CHECK(metrics.stayed_connected);
  out.deletions = metrics.deletions;
  out.max_delta = metrics.max_delta;
  out.prunes = atk.prune_deletions();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t max_depth = 6;
  std::uint64_t seed = 7;
  dash::util::Options opt(
      "Theorem 2: LEVELATTACK forces Omega(log n) degree increase");
  opt.add_uint("max-depth", &max_depth, "largest tree depth to attack");
  opt.add_uint("seed", &seed, "RNG seed (ids only; attack is adaptive)");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::cout << "\n== Theorem 2: forced degree increase under LEVELATTACK "
               "==\n\n";
  dash::util::Table table({"healer", "M", "depth(D)", "n", "forced_delta",
                           "depth_bound(D)", "2log2n_cap", "deletions",
                           "prune_deletions"});
  for (std::uint32_t m : {2u, 3u}) {
    for (std::size_t depth = 2; depth <= max_depth; ++depth) {
      // Tree size grows as (m+2)^depth; keep runs tractable.
      if (m == 3 && depth > 5) continue;
      const std::string spec = "capped:" + std::to_string(m);
      const Outcome o = run(m, depth, spec, seed);
      table.begin_row()
          .cell(dash::core::make_strategy(spec)->name())
          .cell(std::to_string(m))
          .cell(std::to_string(depth))
          .cell(std::to_string(o.n))
          .cell(std::to_string(o.max_delta))
          .cell(std::to_string(depth))
          .cell(2.0 * std::log2(static_cast<double>(o.n)), 1)
          .cell(std::to_string(o.deletions))
          .cell(std::to_string(o.prunes));
    }
  }
  // DASH as a reference subject: the attack still lands Theta(log n)
  // but can never exceed DASH's upper bound.
  for (std::size_t depth = 2; depth <= max_depth; ++depth) {
    const Outcome o = run(2, depth, "dash", seed);
    table.begin_row()
        .cell("DASH")
        .cell("-")
        .cell(std::to_string(depth))
        .cell(std::to_string(o.n))
        .cell(std::to_string(o.max_delta))
        .cell(std::to_string(depth))
        .cell(2.0 * std::log2(static_cast<double>(o.n)), 1)
        .cell(std::to_string(o.deletions))
        .cell(std::to_string(o.prunes));
  }
  table.print(std::cout);
  std::cout << "\nexpected: forced_delta >= depth for the capped healers "
               "(Lemma 13),\nand forced_delta <= 2log2n_cap always for "
               "DASH (Theorem 1).\n";
  return 0;
}
