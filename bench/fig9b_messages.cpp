// fig9b_messages.cpp -- reproduces Figure 9(b): "Number of messages
// exchanged for Component(ID) information maintenance": the maximum
// number of messages (sent + received) any node handles, per strategy.
//
// A node that changes id broadcasts to all its current neighbors, so a
// node's sent-message total is (id changes) x (degree at each change):
// strategies with higher degree increase pay proportionally more. The
// paper's Fig. 9(b) counts messages *sent* ("the maximum number of
// messages a node sent out"), which is what this bench reports; the
// combined sent+received Lemma 8 bound is exercised by thm1_bounds.
#include <cmath>
#include <iostream>

#include "figure_common.h"

int main(int argc, char** argv) {
  using dash::api::Metrics;
  return dash::bench::run_strategy_sweep_figure(
      argc, argv,
      "Figure 9(b): max messages sent per node vs graph size",
      "max_messages_sent",
      [](const Metrics& r) {
        return static_cast<double>(r.max_messages_sent);
      });
}
