// batch_deletion.cpp -- exercises the paper's footnote-1 claim: DASH
// handles simultaneous deletion of any number of nodes (as long as the
// NoN graph stays connected). We sweep the batch size k and report the
// resulting max degree increase and connectivity, including adversarial
// batches (the k highest-degree nodes at once -- a coordinated strike
// on the hubs). Each run is the one-phase scenario "batch:<k>,<mode>":
// batch strikes until fewer than k+1 nodes survive.
#include <cmath>
#include <iostream>

#include "api/api.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using dash::graph::Graph;

struct Outcome {
  bool connected = true;
  std::uint32_t max_delta = 0;
  std::size_t rounds = 0;
};

/// Watches every batch round's (lazy) connectivity answer so a mid-run
/// shatter is caught even if later rounds shrink the graph back to a
/// trivially connected remnant.
class ConnectivityProbe final : public dash::api::Observer {
 public:
  std::string name() const override { return "connectivity-probe"; }
  void on_round_end(const dash::api::Network&,
                    const dash::api::RoundEvent& ev) override {
    ++rounds;
    if (ok && !ev.connected()) ok = false;
  }

  std::size_t rounds = 0;
  bool ok = true;
};

Outcome run(std::size_t n, std::size_t k, const std::string& mode,
            std::uint64_t seed) {
  dash::util::Rng rng(seed);
  Graph g = dash::graph::barabasi_albert(n, 2, rng);
  dash::api::Network net(std::move(g), dash::core::make_strategy("dash"),
                         rng);
  ConnectivityProbe probe;
  net.add_observer(&probe);

  const auto scenario = dash::api::Scenario::parse(
      "batch:" + std::to_string(k) + "," + mode);
  // Stop at the first disconnection so a shattering (k, mode) cell
  // reports rounds-until-shatter, not post-shatter behavior.
  dash::api::PlayOptions opts;
  opts.stop_condition = [&probe](const dash::api::Network&) {
    return !probe.ok;
  };
  const auto metrics = net.play(scenario, rng, opts);

  Outcome out;
  out.connected = probe.ok && metrics.stayed_connected;
  out.rounds = probe.rounds;
  out.max_delta = metrics.max_delta;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t n = 512, seed = 21;
  dash::util::Options opt(
      "Footnote 1: simultaneous k-node deletion with cluster-wise DASH");
  opt.add_uint("n", &n, "graph size");
  opt.add_uint("seed", &seed, "RNG seed");
  if (!opt.parse(argc, argv)) return opt.help_requested() ? 0 : 2;

  std::cout << "\n== Batch deletion: coordinated k-node strikes on a BA("
            << n << ", 2) graph ==\n\n";
  dash::util::Table table({"mode", "batch_k", "rounds", "stayed_connected",
                           "max_delta", "2log2n"});
  const double bound = 2.0 * std::log2(static_cast<double>(n));
  for (const char* mode : {"random", "hubs"}) {
    for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const Outcome o = run(static_cast<std::size_t>(n), k, mode, seed);
      table.begin_row()
          .cell(mode)
          .cell(std::to_string(k))
          .cell(std::to_string(o.rounds))
          .cell(o.connected ? "yes" : "NO")
          .cell(std::to_string(o.max_delta))
          .cell(bound, 1);
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: connectivity holds for every k (the healing "
               "reconnects each deleted\ncluster's survivors), and max "
               "delta stays in the 2log2(n) regime.\n";
  return 0;
}
