// strategy.h -- adversary interface.
//
// The paper's adversary is omniscient: it sees the full topology and the
// healer's internal state, and deletes one node per round. select() gets
// both and returns the victim, or kInvalidNode to stop attacking early
// (LEVELATTACK stops after the root).
#pragma once

#include <memory>
#include <string>

#include "core/healing_state.h"
#include "graph/graph.h"

namespace dash::attack {

using core::HealingState;
using graph::Graph;
using graph::NodeId;

class AttackStrategy {
 public:
  virtual ~AttackStrategy() = default;
  virtual std::string name() const = 0;

  /// Pick the next node to delete. `g` has at least one alive node.
  /// Returning kInvalidNode ends the attack.
  virtual NodeId select(const Graph& g, const HealingState& state) = 0;

  virtual std::unique_ptr<AttackStrategy> clone() const = 0;
};

/// Non-owning adapter: lets an externally owned, stateful adversary
/// (e.g. a LevelAttack whose statistics the caller reads afterwards)
/// serve where a unique_ptr is required -- scenario attacker factories
/// in particular. The inner attack must outlive every borrow.
class BorrowedAttack final : public AttackStrategy {
 public:
  explicit BorrowedAttack(AttackStrategy& inner) : inner_(inner) {}

  std::string name() const override { return inner_.name(); }
  NodeId select(const Graph& g, const HealingState& state) override {
    return inner_.select(g, state);
  }
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<BorrowedAttack>(inner_);
  }

 private:
  AttackStrategy& inner_;
};

}  // namespace dash::attack
