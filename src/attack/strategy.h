// strategy.h -- adversary interface.
//
// The paper's adversary is omniscient: it sees the full topology and the
// healer's internal state, and deletes one node per round. select() gets
// both and returns the victim, or kInvalidNode to stop attacking early
// (LEVELATTACK stops after the root).
#pragma once

#include <memory>
#include <string>

#include "core/healing_state.h"
#include "graph/graph.h"

namespace dash::attack {

using core::HealingState;
using graph::Graph;
using graph::NodeId;

class AttackStrategy {
 public:
  virtual ~AttackStrategy() = default;
  virtual std::string name() const = 0;

  /// Pick the next node to delete. `g` has at least one alive node.
  /// Returning kInvalidNode ends the attack.
  virtual NodeId select(const Graph& g, const HealingState& state) = 0;

  virtual std::unique_ptr<AttackStrategy> clone() const = 0;
};

}  // namespace dash::attack
