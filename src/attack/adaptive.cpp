#include "attack/adaptive.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/metrics.h"
#include "util/check.h"

namespace dash::attack {

RankAttack::RankAttack(std::size_t rank) : rank_(rank) {
  DASH_CHECK_MSG(rank_ > 0, "rank attack needs k >= 1");
}

std::string RankAttack::name() const {
  return "Rank(" + std::to_string(rank_) + ")";
}

NodeId RankAttack::select(const Graph& g, const HealingState&) {
  auto alive = g.alive_nodes();
  if (alive.empty()) return graph::kInvalidNode;
  const std::size_t idx = std::min(rank_ - 1, alive.size() - 1);
  // (degree desc, id asc) is a total order, so nth_element lands the
  // same node regardless of the input permutation.
  std::nth_element(alive.begin(),
                   alive.begin() + static_cast<std::ptrdiff_t>(idx),
                   alive.end(), [&g](NodeId a, NodeId b) {
                     if (g.degree(a) != g.degree(b)) {
                       return g.degree(a) > g.degree(b);
                     }
                     return a < b;
                   });
  return alive[idx];
}

AdaptiveAttack::AdaptiveAttack(std::int32_t threshold)
    : threshold_(threshold) {}

std::string AdaptiveAttack::name() const {
  return "Adaptive(" + std::to_string(threshold_) + ")";
}

NodeId AdaptiveAttack::select(const Graph& g, const HealingState& state) {
  NodeId burdened = graph::kInvalidNode;
  std::int32_t best = std::numeric_limits<std::int32_t>::min();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (burdened == graph::kInvalidNode || state.delta(v) > best) {
      burdened = v;
      best = state.delta(v);
    }
  }
  if (burdened == graph::kInvalidNode) return graph::kInvalidNode;
  if (best >= threshold_) {
    NodeId target = graph::kInvalidNode;
    std::size_t target_deg = 0;
    for (NodeId u : state.forest_neighbors(burdened)) {
      if (u >= g.num_nodes() || !g.alive(u)) continue;
      if (target == graph::kInvalidNode || g.degree(u) > target_deg ||
          (g.degree(u) == target_deg && u < target)) {
        target = u;
        target_deg = g.degree(u);
      }
    }
    if (target != graph::kInvalidNode) return target;
    return burdened;  // burdened but healing-isolated: take it out
  }
  return graph::argmax_degree(g);
}

}  // namespace dash::attack
