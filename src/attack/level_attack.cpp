#include "attack/level_attack.h"

#include <algorithm>
#include <deque>

#include "util/check.h"

namespace dash::attack {

LevelAttack::LevelAttack(const graph::KaryTree& tree, std::uint32_t m)
    : parent_(tree.parent), m_(m) {
  DASH_CHECK_MSG(tree.arity == m + 2,
                 "LEVELATTACK needs an (M+2)-ary tree");
  // Plan: all nodes of level depth-1 first, then depth-2, ..., then the
  // root (level 0). The leaf level is never deleted directly -- leaves
  // die through Prune or survive carrying the degree increase.
  for (std::size_t lvl = tree.depth; lvl-- > 0;) {
    for (NodeId v = 0; v < tree.g.num_nodes(); ++v) {
      if (tree.level[v] == lvl) plan_.push_back(v);
    }
  }
}

std::string LevelAttack::name() const {
  return "LevelAttack(M=" + std::to_string(m_) + ")";
}

std::vector<NodeId> LevelAttack::current_children(const Graph& g,
                                                  NodeId v) const {
  std::vector<NodeId> kids;
  for (NodeId u : g.neighbors(v)) {
    if (u != parent_[v]) kids.push_back(u);
  }
  return kids;
}

NodeId LevelAttack::deepest_in_subtree(const Graph& g, NodeId child,
                                       NodeId v) const {
  // BFS from `child`, never crossing back through v; the last settled
  // node at the largest depth is a leaf of the (tree-shaped) subtree.
  std::vector<char> visited(g.num_nodes(), 0);
  visited[v] = 1;
  visited[child] = 1;
  std::deque<std::pair<NodeId, std::uint32_t>> frontier{{child, 0}};
  NodeId deepest = child;
  std::uint32_t best_depth = 0;
  while (!frontier.empty()) {
    auto [x, d] = frontier.front();
    frontier.pop_front();
    if (d > best_depth || (d == best_depth && x < deepest)) {
      // Prefer strictly deeper nodes; among equals the lowest id, so the
      // prune order is deterministic.
      if (d > best_depth || x < deepest) {
        deepest = x;
        best_depth = d;
      }
    }
    for (NodeId u : g.neighbors(x)) {
      if (!visited[u]) {
        visited[u] = 1;
        frontier.emplace_back(u, d + 1);
      }
    }
  }
  return deepest;
}

NodeId LevelAttack::select(const Graph& g, const HealingState& state) {
  while (plan_idx_ < plan_.size()) {
    const NodeId v = plan_[plan_idx_];
    if (!g.alive(v)) {  // already consumed by an earlier Prune
      ++plan_idx_;
      continue;
    }
    const auto kids = current_children(g, v);
    if (kids.size() > m_ + 2) {
      // Algorithm 2 step 5: prune the subtree of the least-burdened
      // excess child, one leaf at a time.
      NodeId child = kids.front();
      for (NodeId c : kids) {
        if (state.delta(c) < state.delta(child) ||
            (state.delta(c) == state.delta(child) &&
             state.initial_id(c) < state.initial_id(child))) {
          child = c;
        }
      }
      ++prune_deletions_;
      return deepest_in_subtree(g, child, v);
    }
    // Algorithm 2 step 6: delete v itself.
    ++plan_idx_;
    return v;
  }
  return graph::kInvalidNode;  // root deleted; attack complete
}

}  // namespace dash::attack
