#include "attack/factory.h"

#include "attack/adaptive.h"
#include "attack/basic.h"

namespace dash::attack {

namespace {

/// Factory for deterministic attacks (the seed is accepted, unused).
template <typename A>
std::unique_ptr<AttackStrategy> unseeded(const std::string& param,
                                         std::uint64_t /*seed*/) {
  if (!param.empty()) {
    throw std::invalid_argument("attack does not take a parameter: '" +
                                param + "'");
  }
  return std::make_unique<A>();
}

/// Factory for attacks that draw randomness from the seed.
template <typename A>
std::unique_ptr<AttackStrategy> seeded(const std::string& param,
                                       std::uint64_t seed) {
  if (!param.empty()) {
    throw std::invalid_argument("attack does not take a parameter: '" +
                                param + "'");
  }
  return std::make_unique<A>(seed);
}

void register_builtins(util::Registry<AttackStrategy, std::uint64_t>& r) {
  r.add("maxnode", unseeded<MaxNodeAttack>, {"max"});
  r.add("neighborofmax", seeded<NeighborOfMaxAttack>, {"nms"});
  r.add("random", seeded<RandomAttack>);
  r.add("minnode", unseeded<MinNodeAttack>, {"min"});
  r.add("maxdelta", unseeded<MaxDeltaAttack>);
  r.add(
      "rank",
      [](const std::string& param,
         std::uint64_t /*seed*/) -> std::unique_ptr<AttackStrategy> {
        std::size_t k = 1;  // rank == rank:1 == highest degree
        if (!param.empty()) {
          k = static_cast<std::size_t>(
              util::parse_spec_uint("rank", param, 1u << 20));
          if (k == 0) {
            throw std::invalid_argument("rank attack needs k >= 1");
          }
        }
        return std::make_unique<RankAttack>(k);
      },
      {}, "rank");
  r.add(
      "adaptive",
      [](const std::string& param,
         std::uint64_t /*seed*/) -> std::unique_ptr<AttackStrategy> {
        std::int32_t threshold = 2;
        if (!param.empty()) {
          threshold = static_cast<std::int32_t>(
              util::parse_spec_uint("adaptive", param, 1u << 20));
        }
        return std::make_unique<AdaptiveAttack>(threshold);
      },
      {}, "adaptive");
}

}  // namespace

util::Registry<AttackStrategy, std::uint64_t>& attack_registry() {
  // Lazy built-in registration for the same reason as healer_registry():
  // static registrars in a static library can be dropped by the linker.
  static util::Registry<AttackStrategy, std::uint64_t>* registry = [] {
    auto* r =
        new util::Registry<AttackStrategy, std::uint64_t>("attack strategy");
    register_builtins(*r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<AttackStrategy> make_attack(const std::string& name,
                                            std::uint64_t seed) {
  return attack_registry().create(name, seed);
}

std::vector<std::string> attack_names() { return attack_registry().names(); }

}  // namespace dash::attack
