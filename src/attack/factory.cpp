#include "attack/factory.h"

#include <algorithm>
#include <stdexcept>

#include "attack/basic.h"

namespace dash::attack {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

std::unique_ptr<AttackStrategy> make_attack(const std::string& name,
                                            std::uint64_t seed) {
  const std::string key = lower(name);
  if (key == "maxnode" || key == "max")
    return std::make_unique<MaxNodeAttack>();
  if (key == "neighborofmax" || key == "nms")
    return std::make_unique<NeighborOfMaxAttack>(seed);
  if (key == "random") return std::make_unique<RandomAttack>(seed);
  if (key == "minnode" || key == "min")
    return std::make_unique<MinNodeAttack>();
  if (key == "maxdelta") return std::make_unique<MaxDeltaAttack>();
  throw std::invalid_argument("unknown attack strategy: " + name);
}

std::vector<std::string> attack_names() {
  return {"maxnode", "neighborofmax", "random", "minnode", "maxdelta"};
}

}  // namespace dash::attack
