#include "attack/basic.h"

#include "graph/metrics.h"
#include "util/check.h"

namespace dash::attack {

NodeId MaxNodeAttack::select(const Graph& g, const HealingState&) {
  return graph::argmax_degree(g);
}

NodeId NeighborOfMaxAttack::select(const Graph& g, const HealingState&) {
  const NodeId hub = graph::argmax_degree(g);
  if (hub == graph::kInvalidNode) return graph::kInvalidNode;
  const auto& nbrs = g.neighbors(hub);
  if (nbrs.empty()) return hub;  // isolated hub: take it down directly
  return nbrs[static_cast<std::size_t>(rng_.below(nbrs.size()))];
}

NodeId RandomAttack::select(const Graph& g, const HealingState&) {
  const auto alive = g.alive_nodes();
  if (alive.empty()) return graph::kInvalidNode;
  return alive[static_cast<std::size_t>(rng_.below(alive.size()))];
}

NodeId MinNodeAttack::select(const Graph& g, const HealingState&) {
  NodeId best = graph::kInvalidNode;
  std::size_t best_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (best == graph::kInvalidNode || g.degree(v) < best_deg) {
      best = v;
      best_deg = g.degree(v);
    }
  }
  return best;
}

NodeId MaxDeltaAttack::select(const Graph& g, const HealingState& state) {
  NodeId best = graph::kInvalidNode;
  std::int32_t best_delta = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (best == graph::kInvalidNode || state.delta(v) > best_delta) {
      best = v;
      best_delta = state.delta(v);
    }
  }
  return best;
}

}  // namespace dash::attack
