// adaptive.h -- parameterized and observer-conditioned adversaries.
// These widen the hunt search alphabet (hunt/genome.h) beyond the
// Section 4.2 basics: "rank:<k>" targets arbitrary positions of the
// degree order, "adaptive[:<t>]" conditions its choice on the healer's
// own bookkeeping (the HealingState observer a real overlay adversary
// could approximate by probing).
#pragma once

#include <cstdint>

#include "attack/strategy.h"

namespace dash::attack {

/// "rank:<k>": delete the k-th highest-degree alive node (1-based, so
/// rank:1 is MaxNode). Ties broken by lowest id; when fewer than k
/// nodes are alive, the lowest-degree one is taken. Deterministic.
class RankAttack final : public AttackStrategy {
 public:
  explicit RankAttack(std::size_t rank);
  std::string name() const override;
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<RankAttack>(*this);
  }

 private:
  std::size_t rank_;
};

/// "adaptive[:<t>]": observer-conditioned strikes. While the most
/// burdened alive node (max delta, lowest id ties) carries
/// delta < t, behave like MaxNode. Once some node's delta reaches the
/// threshold, strike the heaviest alive healing-forest neighbor of
/// that node instead -- tearing down the reconnection structure the
/// healer built around its weakest point, which forces a re-heal in
/// the very place delta is already concentrated. Deterministic;
/// default threshold 2.
class AdaptiveAttack final : public AttackStrategy {
 public:
  explicit AdaptiveAttack(std::int32_t threshold = 2);
  std::string name() const override;
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<AdaptiveAttack>(*this);
  }

 private:
  std::int32_t threshold_;
};

}  // namespace dash::attack
