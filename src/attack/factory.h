// factory.h -- construct attack strategies by name (CLI-facing).
// LEVELATTACK is excluded: it needs the k-ary tree metadata and is
// constructed explicitly by the lower-bound bench.
//
// All lookups go through one util::Registry instance (the same
// mechanism that serves healing strategies); make_attack is a thin
// forwarder kept for source compatibility. The registry's extra
// argument is the RNG seed randomized attacks consume.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/strategy.h"
#include "util/registry.h"

namespace dash::attack {

/// The single registry serving every attack-strategy lookup. Built-in
/// entries: "maxnode" (alias "max"), "neighborofmax" (alias "nms"),
/// "random", "minnode" (alias "min"), "maxdelta", "rank:<k>" (k-th
/// highest-degree node), "adaptive[:<t>]" (observer-conditioned; see
/// attack/adaptive.h). Case-insensitive.
util::Registry<AttackStrategy, std::uint64_t>& attack_registry();

/// Forwards to attack_registry().create(). Throws std::invalid_argument
/// for unknown names, listing every registered spelling.
std::unique_ptr<AttackStrategy> make_attack(const std::string& name,
                                            std::uint64_t seed);

std::vector<std::string> attack_names();

}  // namespace dash::attack
