// factory.h -- construct attack strategies by name (CLI-facing).
// LEVELATTACK is excluded: it needs the k-ary tree metadata and is
// constructed explicitly by the lower-bound bench.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attack/strategy.h"

namespace dash::attack {

/// Names: "maxnode", "neighborofmax" (alias "nms"), "random", "minnode",
/// "maxdelta". Case-insensitive. Throws std::invalid_argument otherwise.
std::unique_ptr<AttackStrategy> make_attack(const std::string& name,
                                            std::uint64_t seed);

std::vector<std::string> attack_names();

}  // namespace dash::attack
