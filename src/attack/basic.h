// basic.h -- the paper's Section 4.2 attack strategies plus controls.
#pragma once

#include "attack/strategy.h"
#include "util/rng.h"

namespace dash::attack {

/// "MaxNode": always delete the current maximum-degree node (lowest id
/// wins ties). The most effective strategy against stretch (Sec. 4.6.3).
class MaxNodeAttack final : public AttackStrategy {
 public:
  std::string name() const override { return "MaxNode"; }
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<MaxNodeAttack>(*this);
  }
};

/// "NeighborOfMaxStrategy (NMS)": delete a uniformly random neighbor of
/// the current maximum-degree node; if the max node is isolated, delete
/// it. Consistently produces the highest degree increase (Sec. 4.4).
class NeighborOfMaxAttack final : public AttackStrategy {
 public:
  explicit NeighborOfMaxAttack(std::uint64_t seed = 1)
      : rng_(seed ^ 0x4e4d53ULL) {}
  std::string name() const override { return "NeighborOfMax"; }
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<NeighborOfMaxAttack>(*this);
  }

 private:
  dash::util::Rng rng_;
};

/// Uniformly random alive node; models failures rather than attack.
class RandomAttack final : public AttackStrategy {
 public:
  explicit RandomAttack(std::uint64_t seed = 1) : rng_(seed ^ 0x524eULL) {}
  std::string name() const override { return "Random"; }
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<RandomAttack>(*this);
  }

 private:
  dash::util::Rng rng_;
};

/// Always delete the current minimum-degree node (lowest id ties).
/// Degenerate control: tends to chew leaves first.
class MinNodeAttack final : public AttackStrategy {
 public:
  std::string name() const override { return "MinNode"; }
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<MinNodeAttack>(*this);
  }
};

/// Delete the alive node with the highest delta (the healer's most
/// burdened node) -- an adaptive adversary aimed directly at the metric
/// DASH protects. Ties broken by lowest id.
class MaxDeltaAttack final : public AttackStrategy {
 public:
  std::string name() const override { return "MaxDelta"; }
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<MaxDeltaAttack>(*this);
  }
};

}  // namespace dash::attack
