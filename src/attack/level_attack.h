// level_attack.h -- Algorithm 2 of the paper: the LEVELATTACK adversary
// used to prove the Omega(log n) lower bound (Theorem 2).
//
// Operates on a complete (M+2)-ary tree against an M-degree-bounded
// locality-aware healer. Levels are deleted bottom-up (starting one
// level above the leaves). Before deleting a node v, if v has more than
// M+2 children in the *current healed* tree, the excess children with
// the least degree increase are removed with the Prune operation --
// repeated deletion of the deepest leaf of the child's subtree, which
// never lets the healer add edges (a degree-1 deletion has a singleton
// reconnection set).
//
// Lemma 13: after v's deletion at level i, some original leaf carries
// degree increase >= D - i; after the root, >= D = Theta(log n).
//
// Precondition: the healed graph stays a tree. Starting from a tree,
// every component-aware forest-maintaining healer in this library
// preserves tree-ness (each heal adds exactly components-1 edges); the
// bench asserts this each round.
#pragma once

#include "attack/strategy.h"
#include "graph/generators.h"

namespace dash::attack {

class LevelAttack final : public AttackStrategy {
 public:
  /// `tree` must be the (m+2)-ary complete tree the experiment starts
  /// from; `m` is the healer's per-round degree budget.
  LevelAttack(const graph::KaryTree& tree, std::uint32_t m);

  std::string name() const override;
  NodeId select(const Graph& g, const HealingState& state) override;
  std::unique_ptr<AttackStrategy> clone() const override {
    return std::make_unique<LevelAttack>(*this);
  }

  /// Number of deletions so far that were Prune leaf-deletions rather
  /// than planned level deletions.
  std::size_t prune_deletions() const { return prune_deletions_; }

 private:
  /// Alive neighbors of v other than its original parent: v's children
  /// in the current healed tree.
  std::vector<NodeId> current_children(const Graph& g, NodeId v) const;

  /// Deepest node of the subtree hanging off `child` when the edge to
  /// `v` is cut (ties: lowest id). In a tree this is always a leaf.
  NodeId deepest_in_subtree(const Graph& g, NodeId child, NodeId v) const;

  std::vector<NodeId> parent_;
  std::vector<NodeId> plan_;  ///< levels D-1, D-2, ..., 0, id order within
  std::size_t plan_idx_ = 0;
  std::uint32_t m_;
  std::size_t prune_deletions_ = 0;
};

}  // namespace dash::attack
