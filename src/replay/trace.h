// trace.h -- the deterministic record/replay trace format.
//
// A trace captures one api::Network run as a versioned, line-oriented
// JSONL document that replays bit-identically through the engine:
//
//   line 1   header: format version, healer spec, scenario spec, seed,
//            and the complete time-0 snapshot (graph edge list +
//            HealingState checkpoint, both via the existing serializers)
//   line 2+  one event per line -- remove / remove_batch / join with the
//            concrete node ids the run produced, plus phase-boundary
//            markers; every applied event carries a row digest of the
//            post-event network shape so replay divergence is pinned to
//            the exact event
//   last     footer: event count, cumulative digest, and the engine's
//            final metric snapshot
//
// The writer flushes every line, so a crashed run leaves a usable
// trace; the loader tolerates a truncated *final* line (the footer or a
// half-written event) and reports the trace as incomplete instead of
// failing. Interior corruption and version mismatches are named errors.
//
// Because events store concrete node ids -- never RNG draws -- a trace
// replays against *any* registered healer: deletions stay valid (only
// explicit events kill nodes) and join ids are allocated in recorded
// order. That is what makes golden-trace differential fuzzing
// (replay/fuzz.h) sound.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/healing_state.h"
#include "graph/graph.h"

namespace dash::replay {

/// Format version stamped into every header; bumped on any
/// incompatible change to the line grammar.
inline constexpr int kTraceVersion = 1;

/// Malformed trace input (interior corruption, bad header, ...).
class TraceError : public std::runtime_error {
 public:
  explicit TraceError(const std::string& what) : std::runtime_error(what) {}
};

/// The named rejection for traces written by a different format
/// version -- callers can distinguish "re-record this" from "corrupt".
class VersionMismatchError : public TraceError {
 public:
  VersionMismatchError(int got, int want);
  int recorded_version() const { return recorded_; }

 private:
  int recorded_ = 0;
};

enum class EventKind {
  kRemove,  ///< one deletion; nodes = {victim}
  kBatch,   ///< simultaneous batch deletion; nodes = the batch
  kJoin,    ///< organic arrival; nodes = attach list, joined = new id
  kPhase,   ///< scenario phase boundary (informational marker)
};

struct TraceEvent {
  EventKind kind = EventKind::kRemove;
  std::vector<graph::NodeId> nodes;
  /// The id the join allocated (kJoin only; strict replay verifies it).
  graph::NodeId joined = graph::kInvalidNode;
  /// Canonical phase spec (kPhase only).
  std::string phase;
  /// Digest of the post-event network shape (0 for phase markers).
  std::uint64_t row_hash = 0;
};

/// The engine-maintained metric fields (api::Metrics minus observer
/// contributions), captured in the footer and compared on replay.
struct TraceMetrics {
  std::size_t deletions = 0;
  std::size_t joins = 0;
  std::uint32_t max_delta = 0;
  std::uint32_t max_id_changes = 0;
  std::uint64_t max_messages = 0;
  std::uint64_t max_messages_sent = 0;
  std::size_t edges_added = 0;
  std::size_t surrogate_heals = 0;
  std::size_t components = 0;
  std::size_t largest_component = 0;
  bool stayed_connected = true;

  bool operator==(const TraceMetrics&) const = default;
  /// "deletions=3 joins=1 ..." -- for divergence messages.
  std::string describe() const;
};

struct TraceFooter {
  std::size_t events = 0;        ///< applied events (phase markers excluded)
  std::uint64_t row_hash = 0;    ///< cumulative digest over all events
  TraceMetrics metrics;
};

struct Trace {
  int version = kTraceVersion;
  std::string healer;    ///< registry spec the run healed with
  std::string scenario;  ///< canonical scenario spec (informational)
  std::uint64_t seed = 0;  ///< the run's seed (informational)
  std::string graph_text;  ///< graph::write_edge_list snapshot at time 0
  std::string state_text;  ///< core::HealingState::save snapshot at time 0
  std::vector<TraceEvent> events;
  /// Absent when the recording was interrupted (no footer line).
  std::optional<TraceFooter> footer;

  /// A trace with a footer was recorded to completion.
  bool complete() const { return footer.has_value(); }
  /// Applied (non-phase) events.
  std::size_t applied_events() const;

  /// Reconstruct the time-0 graph / healing state from the snapshots.
  graph::Graph build_graph() const;
  core::HealingState build_state() const;
};

// ---- row digests -----------------------------------------------------------

/// FNV-1a over a little-endian u64 stream; digests start here.
inline constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;

/// Fold one value into a digest.
std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v);

/// 16 lowercase hex chars, zero-padded.
std::string digest_hex(std::uint64_t h);

// ---- serialization ---------------------------------------------------------

std::string header_line(const Trace& t);
std::string event_line(const TraceEvent& e);
std::string footer_line(const TraceFooter& f);

/// Streaming trace emission: header at construction, one line per
/// event, footer from finish(). Every line is flushed so an aborted
/// run still leaves a loadable (incomplete) trace.
class TraceWriter {
 public:
  /// Writes the header immediately; `header.events`/`footer` ignored.
  TraceWriter(std::ostream& out, const Trace& header);

  void event(const TraceEvent& e);
  void finish(const TraceFooter& f);

  std::size_t events_written() const { return events_; }
  bool finished() const { return finished_; }

 private:
  std::ostream& out_;
  std::size_t events_ = 0;
  bool finished_ = false;
};

/// Parse a trace. Throws VersionMismatchError for a foreign version,
/// TraceError for corrupt interior lines or a bad header. A malformed
/// or truncated *final* line is dropped and the trace loads without a
/// footer (complete() == false) -- the crash-tolerance contract.
Trace load_trace(std::istream& in);
Trace load_trace_file(const std::string& path);

/// Write a whole trace (header, events, footer when present). Used for
/// mutants and shrunken repros; the footer of a mutated trace is
/// dropped by the mutator, never rewritten here.
void write_trace(std::ostream& out, const Trace& t);
void write_trace_file(const std::string& path, const Trace& t);

}  // namespace dash::replay
