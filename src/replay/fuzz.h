// fuzz.h -- golden-trace differential fuzzing across healers.
//
// A recorded trace is a concrete, known-good event sequence. The
// fuzzer perturbs it -- dropping, duplicating, reordering, retargeting
// and re-batching events -- and replays every mutant leniently against
// every healer under test with the full invariant battery attached.
// Healers are deterministic functions of (state, deletion context), so
// any violation a mutant provokes is a real bug in that healer (or the
// engine), not fuzz noise; the failing mutant is then shrunk to a
// minimal repro trace and persisted for `dash_lab replay`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "replay/trace.h"
#include "util/rng.h"

namespace dash::replay {

/// One random structural perturbation (1-3 point mutations): drop an
/// event or a span, duplicate an event, swap neighbors, retarget a
/// removal, merge adjacent removals into a batch, split a batch,
/// truncate the tail, drop a phase marker -- plus the scenario-aware
/// edits from the shared hunt/fuzz mutation kit (hunt/mutation.h):
/// reordering whole phase segments and perturbing the churn density
/// inside one segment. The mutant keeps the header/snapshot, loses the
/// footer, and zeroes the (now stale) row digests; replay it leniently.
Trace mutate_trace(const Trace& t, dash::util::Rng& rng);

struct FuzzOptions {
  std::size_t mutants = 20;
  std::uint64_t seed = 1;
  /// Healer specs to drive every mutant through; empty selects the
  /// paper's strategy set (core::paper_strategy_specs()).
  std::vector<std::string> healers;
  /// Shrink failing mutants and persist repro traces.
  bool shrink = true;
  /// Repro directory override (see replay::repro_dir()).
  std::string repro_dir;
};

struct FuzzFailure {
  std::size_t mutant = 0;     ///< mutant index (0-based)
  std::string healer;         ///< the healer that violated
  std::string violation;      ///< first invariant violation
  std::size_t original_events = 0;
  std::size_t shrunk_events = 0;
  std::string repro_path;     ///< written repro trace (when shrinking)
};

struct FuzzReport {
  std::size_t mutants = 0;
  std::size_t replays = 0;   ///< mutant x healer replays executed
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Mutate `golden` opt.mutants times and replay each mutant against
/// each healer (lenient, invariants on). Deterministic in opt.seed.
FuzzReport fuzz_trace(const Trace& golden, const FuzzOptions& opt = {});

}  // namespace dash::replay
