// play.h -- re-execute a recorded trace through api::Network.
//
// play_trace() rebuilds the engine from the trace's time-0 snapshot
// (graph + HealingState, so no RNG is consumed) and applies the
// recorded events in order. In strict mode (the default for complete
// traces) every applied event's digest is compared against the
// recording and the footer's engine metrics are verified -- a recorded
// run replays bit-identically or the result names the first diverging
// event.
//
// Lenient mode makes *mutated* traces executable: events invalidated
// by an earlier mutation (removing an already-dead node, attaching to
// a dead peer) are skipped or filtered instead of aborting, which is
// what lets the differential fuzzer (replay/fuzz.h) drive the same
// mutant through every registered healer.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "api/metrics.h"
#include "api/network.h"
#include "replay/trace.h"

namespace dash::replay {

struct ReplayOptions {
  /// Replay against this healer spec instead of the recorded one
  /// (traces carry concrete node ids, never RNG draws, so any
  /// registered healer accepts the same event sequence). Digest and
  /// footer verification are disabled automatically -- a different
  /// healer legitimately heals differently.
  std::string healer_override;
  /// Skip/filter events the current graph state cannot apply instead
  /// of failing the replay. Implies no digest verification.
  bool lenient = false;
  /// Register an api::InvariantObserver and report its first violation
  /// in the result.
  bool check_invariants = false;
  /// Compare per-event digests and the footer metrics (strict replay).
  /// Ignored -- forced off -- under lenient or healer_override.
  bool verify = true;
  /// Extra observers for the replay engine (a SinkObserver to
  /// re-materialize the run's rows, a StretchObserver, ...), registered
  /// after the invariant observer.
  std::function<void(api::Network&)> configure;
};

struct ReplayResult {
  /// The finished engine snapshot (observer contributions included).
  api::Metrics metrics;
  /// Engine-only fields in footer form, comparable to Trace::footer.
  TraceMetrics engine;
  /// Index (into Trace::events) of the first event whose digest did
  /// not match the recording; -1 when none diverged (or verification
  /// was off). Replay stops at the divergence.
  std::ptrdiff_t diverged_at = -1;
  std::size_t applied = 0;  ///< events executed
  std::size_t skipped = 0;  ///< events dropped/filtered (lenient mode)
  /// First invariant violation (check_invariants), empty otherwise.
  std::string violation;
  /// False when the trace footer's engine metrics differ from the
  /// replay's (verified only for complete traces in strict mode).
  bool metrics_match = true;

  bool ok() const {
    return diverged_at < 0 && metrics_match && violation.empty();
  }
  /// Human-readable failure reason; empty when ok().
  std::string failure() const;
};

/// Replay the trace. Throws TraceError for snapshots that do not
/// reconstruct, strict-mode events the graph state cannot apply, and
/// join-id drift; std::invalid_argument for unknown healer specs.
ReplayResult play_trace(const Trace& t, const ReplayOptions& opt = {});

}  // namespace dash::replay
