// recorder.h -- capture a live api::Network run as a replayable trace.
//
// RecorderSink is an Observer: register it on any engine (before
// driving events) and every remove / remove_batch / join / scenario
// phase streams to a TraceWriter as it happens, each applied event
// stamped with a digest of the post-event network shape. The header
// (graph + healing-state snapshot) is written at registration time, the
// footer when the engine finishes -- a run that crashes mid-way leaves
// a loadable, incomplete trace.
//
// record_scenario() is the one-call form: generate the graph, build the
// engine, record, play -- the exact construction api::run_suite uses,
// so a suite instance's run can be re-recorded bit-identically by
// reproducing its RNG stream.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>

#include "api/network.h"
#include "api/observer.h"
#include "api/scenario.h"
#include "replay/trace.h"
#include "util/rng.h"

namespace dash::replay {

/// Digest of the post-event network shape: the event's identity plus
/// the engine metric snapshot (deletions, joins, cumulative healing
/// edges, max delta, component structure) and the graph's alive/edge
/// counts. Shared by the recorder and the replayer -- equality per
/// event is the bit-identity certificate, divergence pins the first
/// differing event.
std::uint64_t event_digest(const TraceEvent& e, const api::Network& net);

class RecorderSink final : public api::Observer {
 public:
  /// `healer_spec` / `scenario_spec` / `seed` are recorded verbatim in
  /// the header (the healer spec doubles as the replay default). The
  /// graph/state snapshot is taken when the engine attaches this
  /// observer, so register it before the first event.
  RecorderSink(std::ostream& out, std::string healer_spec,
               std::string scenario_spec, std::uint64_t seed);

  std::string name() const override { return "recorder"; }

  void on_attach(const api::Network& net) override;
  void on_round_end(const api::Network& net,
                    const api::RoundEvent& ev) override;
  void on_join(const api::Network& net, const api::JoinEvent& ev) override;
  void on_phase(const api::Network& net, const std::string& spec) override;
  void on_finish(const api::Network& net, api::Metrics& out) override;

  /// Applied events recorded so far (phase markers excluded).
  std::size_t events() const { return applied_; }
  bool finished() const { return finished_; }

 private:
  void record(TraceEvent e, const api::Network& net);

  std::ostream& out_;
  Trace header_;
  std::optional<TraceWriter> writer_;
  std::uint64_t chain_ = kDigestSeed;
  std::size_t applied_ = 0;
  bool finished_ = false;
};

/// One recordable run: the graph source, the healer, the workload.
struct RecordConfig {
  /// Draw the starting network from the run's RNG stream (exactly as
  /// api::SuiteConfig::make_graph does).
  std::function<graph::Graph(dash::util::Rng&)> make_graph;
  std::string healer = "dash";
  api::Scenario scenario;
  std::uint64_t seed = 1;
  /// Extra per-run observers (a StretchObserver, an InvariantObserver,
  /// a SinkObserver...), registered after the recorder.
  std::function<void(api::Network&)> configure;
  /// Attach the invariant battery (api::InvariantObserver) to the
  /// recorded run. When the play reports a violation, the just-recorded
  /// trace is shrunk to a minimal failing sub-trace (shrink.h, lenient
  /// replay-with-invariants oracle) and dropped via write_repro --
  /// under `repro` when set, else $DASH_REPRO_DIR, else ./dash_repro.
  bool invariants = false;
  std::string repro;
  /// When non-null, receives the automatic repro's path (cleared when
  /// the run was violation-free).
  std::string* repro_path = nullptr;
};

/// Execute cfg.scenario with recording: graph generation, healing-state
/// ids, and every scenario coin flip come from `rng` in the engine's
/// canonical order. Returns the play's finished Metrics.
api::Metrics record_scenario(const RecordConfig& cfg, dash::util::Rng& rng,
                             std::ostream& out);

/// Seed-owning convenience: a fresh stream from cfg.seed (the
/// single-run equivalent of one suite instance).
api::Metrics record_scenario(const RecordConfig& cfg, std::ostream& out);

}  // namespace dash::replay
