// shrink.h -- greedy event-list minimization for failing traces.
//
// Given a trace whose replay fails (an invariant violation, a crash
// condition, any caller-defined predicate), shrink_trace() searches for
// a minimal failing sub-trace by deleting event chunks ddmin-style:
// halves first, then quarters, down to single events, keeping every
// deletion that still fails. This generalizes the ad-hoc operation
// shrinking the dynamic-connectivity differential test grew for its
// repros into a reusable harness primitive.
//
// write_repro() persists a failing trace where humans (and CI artifact
// uploads) will find it: an explicit directory, else $DASH_REPRO_DIR,
// else ./dash_repro -- with a sibling .reason.txt naming the failure.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "replay/trace.h"

namespace dash::replay {

/// True when the candidate trace still reproduces the failure under
/// investigation. Must be deterministic.
using TraceOracle = std::function<bool(const Trace&)>;

struct ShrinkStats {
  std::size_t original_events = 0;
  std::size_t shrunk_events = 0;
  std::size_t oracle_calls = 0;
};

/// Minimize t.events while still_fails() holds; the input trace must
/// itself fail (checked -- throws TraceError otherwise). The result
/// carries no footer (its recorded metrics no longer apply).
Trace shrink_trace(const Trace& t, const TraceOracle& still_fails,
                   ShrinkStats* stats = nullptr);

/// Resolve the repro directory: `dir` if non-empty, else the
/// DASH_REPRO_DIR environment variable, else "dash_repro".
std::string repro_dir(const std::string& dir = {});

/// Write `t` into the repro directory (created if missing) under a
/// deterministic name derived from its content, plus `<name>.reason.txt`
/// holding `reason`. Returns the trace path.
std::string write_repro(const Trace& t, const std::string& reason,
                        const std::string& dir = {});

}  // namespace dash::replay
