#include "replay/play.h"

#include <algorithm>
#include <utility>

#include "api/observers.h"
#include "core/factory.h"
#include "replay/recorder.h"

namespace dash::replay {

namespace {

TraceMetrics engine_metrics(const api::Metrics& m) {
  TraceMetrics out;
  out.deletions = m.deletions;
  out.joins = m.joins;
  out.max_delta = m.max_delta;
  out.max_id_changes = m.max_id_changes;
  out.max_messages = m.max_messages;
  out.max_messages_sent = m.max_messages_sent;
  out.edges_added = m.edges_added;
  out.surrogate_heals = m.surrogate_heals;
  out.components = m.components;
  out.largest_component = m.largest_component;
  out.stayed_connected = m.stayed_connected;
  return out;
}

/// Alive members of `nodes`, deduplicated, original order kept.
std::vector<graph::NodeId> alive_subset(const graph::Graph& g,
                                        const std::vector<graph::NodeId>& nodes) {
  std::vector<graph::NodeId> out;
  out.reserve(nodes.size());
  for (graph::NodeId v : nodes) {
    if (v < g.num_nodes() && g.alive(v) &&
        std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

std::string ReplayResult::failure() const {
  if (diverged_at >= 0) {
    return "replay diverged at event " + std::to_string(diverged_at);
  }
  if (!violation.empty()) return "invariant violation: " + violation;
  if (!metrics_match) {
    return "replayed engine metrics differ from the recorded footer: " +
           engine.describe();
  }
  return {};
}

ReplayResult play_trace(const Trace& t, const ReplayOptions& opt) {
  graph::Graph g = t.build_graph();
  core::HealingState state = t.build_state();
  const std::string& healer =
      opt.healer_override.empty() ? t.healer : opt.healer_override;
  api::Network net(std::move(g), core::make_strategy(healer),
                   std::move(state));

  api::InvariantObserver invariants;
  if (opt.check_invariants) net.add_observer(&invariants);
  if (opt.configure) opt.configure(net);

  // A different healer heals differently, and lenient filtering changes
  // the applied events: recorded digests only certify the strict,
  // same-healer replay.
  const bool verify =
      opt.verify && !opt.lenient && opt.healer_override.empty();

  ReplayResult result;
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    const TraceEvent& e = t.events[i];
    switch (e.kind) {
      case EventKind::kPhase:
        net.notify_phase(e.phase);
        continue;
      case EventKind::kRemove: {
        const graph::NodeId v = e.nodes.empty() ? graph::kInvalidNode
                                                : e.nodes.front();
        if (v >= net.graph().num_nodes() || !net.graph().alive(v)) {
          if (!opt.lenient) {
            throw TraceError("event " + std::to_string(i) +
                             " removes dead node " + std::to_string(v));
          }
          ++result.skipped;
          continue;
        }
        net.remove(v);
        break;
      }
      case EventKind::kBatch: {
        const auto batch = alive_subset(net.graph(), e.nodes);
        if (!opt.lenient && batch.size() != e.nodes.size()) {
          throw TraceError("event " + std::to_string(i) +
                           " batch contains dead nodes");
        }
        if (batch.empty()) {
          ++result.skipped;
          continue;
        }
        net.remove_batch(batch);
        break;
      }
      case EventKind::kJoin: {
        const auto attach = alive_subset(net.graph(), e.nodes);
        if (!opt.lenient && attach.size() != e.nodes.size()) {
          throw TraceError("event " + std::to_string(i) +
                           " join attaches to dead nodes");
        }
        if (opt.lenient && attach.empty()) {
          // Nobody left to attach to (mutated trace): a zero-edge join
          // would disconnect any healer. Skip it, as TracePhase does.
          ++result.skipped;
          continue;
        }
        const graph::NodeId joined = net.join(attach);
        if (!opt.lenient && joined != e.joined) {
          throw TraceError("event " + std::to_string(i) +
                           " join allocated id " + std::to_string(joined) +
                           ", trace recorded " + std::to_string(e.joined));
        }
        break;
      }
    }
    ++result.applied;
    if (verify && event_digest(e, net) != e.row_hash) {
      result.diverged_at = static_cast<std::ptrdiff_t>(i);
      break;
    }
  }

  result.metrics = net.finish();
  result.engine = engine_metrics(net.metrics());
  result.violation = result.metrics.violation;
  if (verify && result.diverged_at < 0 && t.footer.has_value()) {
    result.metrics_match = result.engine == t.footer->metrics;
  }
  return result;
}

}  // namespace dash::replay
