#include "replay/trace_phase.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/network.h"

namespace dash::replay {

namespace {

/// Alive members of `nodes` on the live graph, deduplicated, original
/// order kept -- the same filter play_trace applies in lenient mode.
std::vector<graph::NodeId> alive_subset(
    const graph::Graph& g, const std::vector<graph::NodeId>& nodes) {
  std::vector<graph::NodeId> out;
  out.reserve(nodes.size());
  for (graph::NodeId v : nodes) {
    if (v < g.num_nodes() && g.alive(v) &&
        std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
    }
  }
  return out;
}

}  // namespace

TracePhase::TracePhase(std::string path) : path_(std::move(path)) {
  if (path_.empty()) {
    throw std::invalid_argument(
        "bad trace phase: 'trace:' needs a file path (trace:<file>)");
  }
  try {
    trace_ = std::make_shared<const Trace>(load_trace_file(path_));
  } catch (const TraceError& e) {
    throw std::invalid_argument("bad trace phase 'trace:" + path_ +
                                "': " + e.what());
  }
}

void TracePhase::execute(api::PlayContext& ctx) const {
  for (const TraceEvent& e : trace_->events) {
    if (ctx.stopped()) return;
    switch (e.kind) {
      case EventKind::kPhase:
        ctx.net.notify_phase(e.phase);
        break;
      case EventKind::kRemove: {
        if (ctx.net.graph().num_alive() <= ctx.floor) return;
        const graph::NodeId v =
            e.nodes.empty() ? graph::kInvalidNode : e.nodes.front();
        if (v >= ctx.net.graph().num_nodes() || !ctx.net.graph().alive(v)) {
          break;  // recorded victim does not exist here: skip
        }
        ctx.net.remove(v);
        break;
      }
      case EventKind::kBatch: {
        const auto batch = alive_subset(ctx.net.graph(), e.nodes);
        // The whole batch must fit above the deletion floor -- the
        // same rule the batch phase applies.
        if (batch.empty() ||
            ctx.net.graph().num_alive() < batch.size() + ctx.floor) {
          break;
        }
        ctx.net.remove_batch(batch);
        break;
      }
      case EventKind::kJoin: {
        const auto attach = alive_subset(ctx.net.graph(), e.nodes);
        if (attach.empty()) break;  // nobody left to attach to: skip
        ctx.net.join(attach);
        break;
      }
    }
  }
}

std::unique_ptr<api::ScenarioPhase> TracePhase::clone() const {
  auto copy = std::make_unique<TracePhase>(*this);
  return copy;
}

namespace detail {

void register_trace_phase(util::Registry<api::ScenarioPhase>* r) {
  r->add(
      "trace",
      [](const std::string& param) -> std::unique_ptr<api::ScenarioPhase> {
        return std::make_unique<TracePhase>(param);
      },
      {}, "trace:<file>");
}

}  // namespace detail

}  // namespace dash::replay
