#include "replay/recorder.h"

#include <sstream>
#include <streambuf>
#include <utility>

#include "api/observers.h"
#include "core/factory.h"
#include "graph/io.h"
#include "replay/play.h"
#include "replay/shrink.h"
#include "util/check.h"

namespace dash::replay {

namespace {

/// Duplicates every byte to two sinks -- the caller's trace stream and
/// the in-memory copy the auto-repro path shrinks from.
class TeeBuf final : public std::streambuf {
 public:
  TeeBuf(std::streambuf* a, std::streambuf* b) : a_(a), b_(b) {}

 protected:
  int overflow(int c) override {
    if (c == traits_type::eof()) return c;
    const char ch = traits_type::to_char_type(c);
    if (a_->sputc(ch) == traits_type::eof()) return traits_type::eof();
    if (b_->sputc(ch) == traits_type::eof()) return traits_type::eof();
    return c;
  }

  int sync() override {
    const int ra = a_->pubsync();
    const int rb = b_->pubsync();
    return ra == 0 && rb == 0 ? 0 : -1;
  }

 private:
  std::streambuf* a_;
  std::streambuf* b_;
};

/// Shrink the recorded failing trace and drop a repro next to where
/// fuzzing drops its own; the oracle is the lenient
/// replay-with-invariants the repro replays under
/// (`dash_lab replay --trace <repro> --lenient --invariants`).
std::string drop_invariant_repro(const std::string& trace_text,
                                 const std::string& violation,
                                 const std::string& dir) {
  Trace recorded;
  {
    std::istringstream in(trace_text);
    recorded = load_trace(in);
  }
  const TraceOracle oracle = [](const Trace& candidate) {
    ReplayOptions o;
    o.lenient = true;
    o.check_invariants = true;
    o.verify = false;
    try {
      return !play_trace(candidate, o).violation.empty();
    } catch (const TraceError&) {
      return false;
    }
  };
  Trace to_write;
  try {
    to_write = shrink_trace(recorded, oracle);
  } catch (const TraceError&) {
    // The live violation did not reproduce under lenient replay (an
    // observer the replay does not re-register, say): keep the full
    // recording -- a non-minimal repro beats none.
    to_write = std::move(recorded);
  }
  return write_repro(to_write, "invariant violation: " + violation, dir);
}

}  // namespace

std::uint64_t event_digest(const TraceEvent& e, const api::Network& net) {
  std::uint64_t h = kDigestSeed;
  h = digest_mix(h, static_cast<std::uint64_t>(e.kind));
  h = digest_mix(h, e.nodes.size());
  for (graph::NodeId v : e.nodes) h = digest_mix(h, v);
  if (e.kind == EventKind::kJoin) h = digest_mix(h, e.joined);
  // The engine metric snapshot covers the cumulative protocol state;
  // components/largest pin the connectivity structure itself (answered
  // by the incremental tracker in O(alpha) for owning engines).
  const api::Metrics m = net.metrics();
  h = digest_mix(h, m.deletions);
  h = digest_mix(h, m.joins);
  h = digest_mix(h, m.edges_added);
  h = digest_mix(h, m.max_delta);
  h = digest_mix(h, m.max_id_changes);
  h = digest_mix(h, m.max_messages);
  h = digest_mix(h, m.components);
  h = digest_mix(h, m.largest_component);
  h = digest_mix(h, net.graph().num_alive());
  h = digest_mix(h, net.graph().num_edges());
  return h;
}

RecorderSink::RecorderSink(std::ostream& out, std::string healer_spec,
                           std::string scenario_spec, std::uint64_t seed)
    : out_(out) {
  header_.healer = std::move(healer_spec);
  header_.scenario = std::move(scenario_spec);
  header_.seed = seed;
}

void RecorderSink::on_attach(const api::Network& net) {
  DASH_CHECK_MSG(!writer_.has_value(),
                 "RecorderSink registered on two engines");
  std::ostringstream graph_text;
  graph::write_edge_list(graph_text, net.graph());
  header_.graph_text = graph_text.str();
  std::ostringstream state_text;
  net.state().save(state_text);
  header_.state_text = state_text.str();
  writer_.emplace(out_, header_);
}

void RecorderSink::record(TraceEvent e, const api::Network& net) {
  DASH_CHECK_MSG(writer_.has_value(), "RecorderSink not attached");
  if (e.kind != EventKind::kPhase) {
    e.row_hash = event_digest(e, net);
    chain_ = digest_mix(chain_, e.row_hash);
    ++applied_;
  }
  writer_->event(e);
}

void RecorderSink::on_round_end(const api::Network& net,
                                const api::RoundEvent& ev) {
  TraceEvent e;
  if (ev.batch != nullptr) {
    e.kind = EventKind::kBatch;
    e.nodes = *ev.batch;
  } else {
    e.kind = EventKind::kRemove;
    e.nodes = {ev.victim};
  }
  record(std::move(e), net);
}

void RecorderSink::on_join(const api::Network& net,
                           const api::JoinEvent& ev) {
  TraceEvent e;
  e.kind = EventKind::kJoin;
  e.joined = ev.joined;
  e.nodes = ev.attached_to;
  record(std::move(e), net);
}

void RecorderSink::on_phase(const api::Network& net,
                            const std::string& spec) {
  TraceEvent e;
  e.kind = EventKind::kPhase;
  e.phase = spec;
  record(std::move(e), net);
}

void RecorderSink::on_finish(const api::Network& net, api::Metrics&) {
  if (finished_) return;  // finish() may legitimately run again
  finished_ = true;
  const api::Metrics m = net.metrics();
  TraceFooter f;
  f.events = applied_;
  f.row_hash = chain_;
  f.metrics.deletions = m.deletions;
  f.metrics.joins = m.joins;
  f.metrics.max_delta = m.max_delta;
  f.metrics.max_id_changes = m.max_id_changes;
  f.metrics.max_messages = m.max_messages;
  f.metrics.max_messages_sent = m.max_messages_sent;
  f.metrics.edges_added = m.edges_added;
  f.metrics.surrogate_heals = m.surrogate_heals;
  f.metrics.components = m.components;
  f.metrics.largest_component = m.largest_component;
  f.metrics.stayed_connected = m.stayed_connected;
  writer_->finish(f);
}

api::Metrics record_scenario(const RecordConfig& cfg, dash::util::Rng& rng,
                             std::ostream& out) {
  DASH_CHECK_MSG(static_cast<bool>(cfg.make_graph),
                 "record_scenario needs make_graph");
  DASH_CHECK_MSG(!cfg.scenario.empty(), "record_scenario needs a scenario");
  if (cfg.repro_path != nullptr) cfg.repro_path->clear();

  // With the battery on, tee the trace into memory as well: a
  // violation shrinks the copy into a repro without re-running.
  std::ostringstream copy;
  TeeBuf tee(out.rdbuf(), copy.rdbuf());
  std::ostream tee_stream(&tee);
  std::ostream& trace_out = cfg.invariants ? tee_stream : out;

  graph::Graph g = cfg.make_graph(rng);
  api::Network net(std::move(g), core::make_strategy(cfg.healer), rng);
  RecorderSink recorder(trace_out, cfg.healer, cfg.scenario.spec(),
                        cfg.seed);
  net.add_observer(&recorder);
  api::InvariantObserver battery;
  if (cfg.invariants) net.add_observer(&battery);
  if (cfg.configure) cfg.configure(net);
  const api::Metrics m = net.play(cfg.scenario, rng);
  if (cfg.invariants && !m.violation.empty()) {
    const std::string path =
        drop_invariant_repro(copy.str(), m.violation, cfg.repro);
    if (cfg.repro_path != nullptr) *cfg.repro_path = path;
  }
  return m;
}

api::Metrics record_scenario(const RecordConfig& cfg, std::ostream& out) {
  dash::util::Rng rng(cfg.seed);
  return record_scenario(cfg, rng, out);
}

}  // namespace dash::replay
