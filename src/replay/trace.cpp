#include "replay/trace.h"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "graph/io.h"

namespace dash::replay {

namespace {

// One-line JSON with the same minimal escape set the sink layer uses;
// the unescaper below is its strict inverse.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Scan an expected literal; advances *pos past it on success.
bool expect(const std::string& s, std::size_t* pos, const char* lit) {
  const std::size_t len = std::char_traits<char>::length(lit);
  if (s.compare(*pos, len, lit) != 0) return false;
  *pos += len;
  return true;
}

bool scan_u64(const std::string& s, std::size_t* pos, std::uint64_t* out) {
  const std::size_t start = *pos;
  std::uint64_t value = 0;
  while (*pos < s.size() && s[*pos] >= '0' && s[*pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(s[*pos] - '0');
    ++*pos;
  }
  if (*pos == start) return false;
  *out = value;
  return true;
}

bool scan_size(const std::string& s, std::size_t* pos, std::size_t* out) {
  std::uint64_t v = 0;
  if (!scan_u64(s, pos, &v)) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

/// A quoted, escaped string ("..."), unescaped into *out.
bool scan_quoted(const std::string& s, std::size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < s.size()) {
    const char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= s.size()) return false;
      const char esc = s[*pos + 1];
      *pos += 2;
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (*pos + 4 > s.size()) return false;
          int value = 0;
          for (int i = 0; i < 4; ++i) {
            const int digit = hex_value(s[*pos + i]);
            if (digit < 0) return false;
            value = value * 16 + digit;
          }
          if (value > 0xff) return false;  // the writer only escapes bytes
          *pos += 4;
          *out += static_cast<char>(value);
          break;
        }
        default:
          return false;
      }
      continue;
    }
    *out += c;
    ++*pos;
  }
  return false;  // unterminated
}

/// The 16-hex-char digest form.
bool scan_hex16(const std::string& s, std::size_t* pos, std::uint64_t* out) {
  if (*pos + 16 > s.size()) return false;
  std::uint64_t value = 0;
  for (int i = 0; i < 16; ++i) {
    const int digit = hex_value(s[*pos + i]);
    if (digit < 0) return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *pos += 16;
  *out = value;
  return true;
}

/// "[1,2,3]" (or "[]").
bool scan_node_list(const std::string& s, std::size_t* pos,
                    std::vector<graph::NodeId>* out) {
  if (!expect(s, pos, "[")) return false;
  out->clear();
  if (expect(s, pos, "]")) return true;
  while (true) {
    std::uint64_t v = 0;
    if (!scan_u64(s, pos, &v)) return false;
    out->push_back(static_cast<graph::NodeId>(v));
    if (expect(s, pos, "]")) return true;
    if (!expect(s, pos, ",")) return false;
  }
}

std::string node_list(const std::vector<graph::NodeId>& nodes) {
  std::string out = "[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(nodes[i]);
  }
  out += ']';
  return out;
}

bool parse_event(const std::string& line, TraceEvent* out) {
  std::size_t pos = 0;
  TraceEvent e;
  if (!expect(line, &pos, "{\"e\":\"")) return false;
  if (expect(line, &pos, "phase\",\"s\":")) {
    e.kind = EventKind::kPhase;
    if (!scan_quoted(line, &pos, &e.phase)) return false;
    if (!expect(line, &pos, "}")) return false;
  } else if (expect(line, &pos, "rm\",\"n\":") ||
             expect(line, &pos, "rmb\",\"n\":")) {
    // The branch taken tells the kind apart: "rm\"..." failed iff the
    // event name continued with 'b'.
    e.kind = line.compare(6, 4, "rmb\"") == 0 ? EventKind::kBatch
                                              : EventKind::kRemove;
    if (!scan_node_list(line, &pos, &e.nodes)) return false;
    if (!expect(line, &pos, ",\"h\":\"")) return false;
    if (!scan_hex16(line, &pos, &e.row_hash)) return false;
    if (!expect(line, &pos, "\"}")) return false;
    if (e.nodes.empty()) return false;
    if (e.kind == EventKind::kRemove && e.nodes.size() != 1) return false;
  } else if (expect(line, &pos, "join\",\"id\":")) {
    e.kind = EventKind::kJoin;
    std::uint64_t id = 0;
    if (!scan_u64(line, &pos, &id)) return false;
    e.joined = static_cast<graph::NodeId>(id);
    if (!expect(line, &pos, ",\"n\":")) return false;
    if (!scan_node_list(line, &pos, &e.nodes)) return false;
    if (!expect(line, &pos, ",\"h\":\"")) return false;
    if (!scan_hex16(line, &pos, &e.row_hash)) return false;
    if (!expect(line, &pos, "\"}")) return false;
  } else {
    return false;
  }
  if (pos != line.size()) return false;
  *out = std::move(e);
  return true;
}

bool parse_footer(const std::string& line, TraceFooter* out) {
  std::size_t pos = 0;
  TraceFooter f;
  if (!expect(line, &pos, "{\"e\":\"end\",\"events\":")) return false;
  if (!scan_size(line, &pos, &f.events)) return false;
  if (!expect(line, &pos, ",\"h\":\"")) return false;
  if (!scan_hex16(line, &pos, &f.row_hash)) return false;
  if (!expect(line, &pos, "\",\"m\":{\"deletions\":")) return false;
  if (!scan_size(line, &pos, &f.metrics.deletions)) return false;
  if (!expect(line, &pos, ",\"joins\":")) return false;
  if (!scan_size(line, &pos, &f.metrics.joins)) return false;
  std::uint64_t v = 0;
  if (!expect(line, &pos, ",\"max_delta\":")) return false;
  if (!scan_u64(line, &pos, &v)) return false;
  f.metrics.max_delta = static_cast<std::uint32_t>(v);
  if (!expect(line, &pos, ",\"max_id_changes\":")) return false;
  if (!scan_u64(line, &pos, &v)) return false;
  f.metrics.max_id_changes = static_cast<std::uint32_t>(v);
  if (!expect(line, &pos, ",\"max_messages\":")) return false;
  if (!scan_u64(line, &pos, &f.metrics.max_messages)) return false;
  if (!expect(line, &pos, ",\"max_messages_sent\":")) return false;
  if (!scan_u64(line, &pos, &f.metrics.max_messages_sent)) return false;
  if (!expect(line, &pos, ",\"edges_added\":")) return false;
  if (!scan_size(line, &pos, &f.metrics.edges_added)) return false;
  if (!expect(line, &pos, ",\"surrogate_heals\":")) return false;
  if (!scan_size(line, &pos, &f.metrics.surrogate_heals)) return false;
  if (!expect(line, &pos, ",\"components\":")) return false;
  if (!scan_size(line, &pos, &f.metrics.components)) return false;
  if (!expect(line, &pos, ",\"largest_component\":")) return false;
  if (!scan_size(line, &pos, &f.metrics.largest_component)) return false;
  if (!expect(line, &pos, ",\"stayed_connected\":")) return false;
  if (expect(line, &pos, "true")) {
    f.metrics.stayed_connected = true;
  } else if (expect(line, &pos, "false")) {
    f.metrics.stayed_connected = false;
  } else {
    return false;
  }
  if (!expect(line, &pos, "}}")) return false;
  if (pos != line.size()) return false;
  *out = f;
  return true;
}

/// Header parse. Throws: the header is never covered by the
/// truncated-final-line tolerance (without it there is no trace).
void parse_header(const std::string& line, Trace* out) {
  std::size_t pos = 0;
  if (!expect(line, &pos, "{\"trace\":\"dash-replay\",\"v\":")) {
    throw TraceError("not a dash-replay trace (bad header magic)");
  }
  std::uint64_t version = 0;
  if (!scan_u64(line, &pos, &version)) {
    throw TraceError("corrupt trace header: missing version");
  }
  if (version != static_cast<std::uint64_t>(kTraceVersion)) {
    throw VersionMismatchError(static_cast<int>(version), kTraceVersion);
  }
  out->version = static_cast<int>(version);
  if (!expect(line, &pos, ",\"healer\":") ||
      !scan_quoted(line, &pos, &out->healer) ||
      !expect(line, &pos, ",\"scenario\":") ||
      !scan_quoted(line, &pos, &out->scenario) ||
      !expect(line, &pos, ",\"seed\":") ||
      !scan_u64(line, &pos, &out->seed) ||
      !expect(line, &pos, ",\"graph\":") ||
      !scan_quoted(line, &pos, &out->graph_text) ||
      !expect(line, &pos, ",\"state\":") ||
      !scan_quoted(line, &pos, &out->state_text) ||
      !expect(line, &pos, "}") || pos != line.size()) {
    throw TraceError("corrupt trace header");
  }
}

}  // namespace

VersionMismatchError::VersionMismatchError(int got, int want)
    : TraceError("trace format version " + std::to_string(got) +
                 " does not match this build's version " +
                 std::to_string(want) + " -- re-record the trace"),
      recorded_(got) {}

std::size_t Trace::applied_events() const {
  std::size_t n = 0;
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::kPhase) ++n;
  }
  return n;
}

graph::Graph Trace::build_graph() const {
  std::istringstream in(graph_text);
  try {
    return graph::read_edge_list(in);
  } catch (const std::exception& e) {
    throw TraceError(std::string("corrupt graph snapshot: ") + e.what());
  }
}

core::HealingState Trace::build_state() const {
  std::istringstream in(state_text);
  try {
    return core::HealingState::load(in);
  } catch (const std::exception& e) {
    throw TraceError(std::string("corrupt healing-state snapshot: ") +
                     e.what());
  }
}

std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the value's 8 little-endian bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string digest_hex(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf, 16);
}

std::string TraceMetrics::describe() const {
  std::string out;
  const auto field = [&out](const char* name, std::uint64_t v) {
    if (!out.empty()) out += ' ';
    out += name;
    out += '=';
    out += std::to_string(v);
  };
  field("deletions", deletions);
  field("joins", joins);
  field("max_delta", max_delta);
  field("max_id_changes", max_id_changes);
  field("max_messages", max_messages);
  field("max_messages_sent", max_messages_sent);
  field("edges_added", edges_added);
  field("surrogate_heals", surrogate_heals);
  field("components", components);
  field("largest_component", largest_component);
  field("stayed_connected", stayed_connected ? 1 : 0);
  return out;
}

std::string header_line(const Trace& t) {
  std::string out = "{\"trace\":\"dash-replay\",\"v\":";
  out += std::to_string(t.version);
  out += ",\"healer\":\"";
  out += json_escape(t.healer);
  out += "\",\"scenario\":\"";
  out += json_escape(t.scenario);
  out += "\",\"seed\":";
  out += std::to_string(t.seed);
  out += ",\"graph\":\"";
  out += json_escape(t.graph_text);
  out += "\",\"state\":\"";
  out += json_escape(t.state_text);
  out += "\"}";
  return out;
}

std::string event_line(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::kPhase:
      return "{\"e\":\"phase\",\"s\":\"" + json_escape(e.phase) + "\"}";
    case EventKind::kRemove:
    case EventKind::kBatch: {
      std::string out = e.kind == EventKind::kRemove ? "{\"e\":\"rm\",\"n\":"
                                                     : "{\"e\":\"rmb\",\"n\":";
      out += node_list(e.nodes);
      out += ",\"h\":\"";
      out += digest_hex(e.row_hash);
      out += "\"}";
      return out;
    }
    case EventKind::kJoin: {
      std::string out = "{\"e\":\"join\",\"id\":";
      out += std::to_string(e.joined);
      out += ",\"n\":";
      out += node_list(e.nodes);
      out += ",\"h\":\"";
      out += digest_hex(e.row_hash);
      out += "\"}";
      return out;
    }
  }
  throw TraceError("unreachable event kind");
}

std::string footer_line(const TraceFooter& f) {
  const TraceMetrics& m = f.metrics;
  std::string out = "{\"e\":\"end\",\"events\":";
  out += std::to_string(f.events);
  out += ",\"h\":\"";
  out += digest_hex(f.row_hash);
  out += "\",\"m\":{\"deletions\":";
  out += std::to_string(m.deletions);
  out += ",\"joins\":";
  out += std::to_string(m.joins);
  out += ",\"max_delta\":";
  out += std::to_string(m.max_delta);
  out += ",\"max_id_changes\":";
  out += std::to_string(m.max_id_changes);
  out += ",\"max_messages\":";
  out += std::to_string(m.max_messages);
  out += ",\"max_messages_sent\":";
  out += std::to_string(m.max_messages_sent);
  out += ",\"edges_added\":";
  out += std::to_string(m.edges_added);
  out += ",\"surrogate_heals\":";
  out += std::to_string(m.surrogate_heals);
  out += ",\"components\":";
  out += std::to_string(m.components);
  out += ",\"largest_component\":";
  out += std::to_string(m.largest_component);
  out += ",\"stayed_connected\":";
  out += m.stayed_connected ? "true" : "false";
  out += "}}";
  return out;
}

TraceWriter::TraceWriter(std::ostream& out, const Trace& header)
    : out_(out) {
  out_ << header_line(header) << '\n' << std::flush;
}

void TraceWriter::event(const TraceEvent& e) {
  out_ << event_line(e) << '\n' << std::flush;
  ++events_;
}

void TraceWriter::finish(const TraceFooter& f) {
  out_ << footer_line(f) << '\n' << std::flush;
  finished_ = true;
}

Trace load_trace(std::istream& in) {
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  if (lines.empty()) throw TraceError("empty trace");

  Trace t;
  parse_header(lines.front(), &t);

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    TraceEvent e;
    if (parse_event(lines[i], &e)) {
      t.events.push_back(std::move(e));
      continue;
    }
    TraceFooter f;
    if (parse_footer(lines[i], &f)) {
      if (!last) {
        throw TraceError("corrupt trace: events after the footer (line " +
                         std::to_string(i + 1) + ")");
      }
      if (f.events != t.applied_events()) {
        throw TraceError(
            "corrupt trace: footer claims " + std::to_string(f.events) +
            " events, trace carries " +
            std::to_string(t.applied_events()));
      }
      t.footer = f;
      continue;
    }
    if (last) continue;  // truncated final line: drop it, load incomplete
    throw TraceError("corrupt trace: bad line " + std::to_string(i + 1));
  }
  return t;
}

Trace load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open trace file '" + path + "'");
  return load_trace(in);
}

void write_trace(std::ostream& out, const Trace& t) {
  out << header_line(t) << '\n';
  for (const TraceEvent& e : t.events) out << event_line(e) << '\n';
  if (t.footer.has_value()) out << footer_line(*t.footer) << '\n';
  out.flush();
}

void write_trace_file(const std::string& path, const Trace& t) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw TraceError("cannot open trace file '" + path + "'");
  write_trace(out, t);
}

}  // namespace dash::replay
