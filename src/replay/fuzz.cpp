#include "replay/fuzz.h"

#include <algorithm>
#include <utility>

#include "core/factory.h"
#include "hunt/mutation.h"
#include "replay/play.h"
#include "replay/shrink.h"

namespace dash::replay {

namespace {

/// Node-id space of the trace's snapshot, from the edge-list header
/// ("<num_nodes>\n...") without rebuilding the graph.
std::size_t snapshot_num_nodes(const Trace& t) {
  // The snapshot may lead with '#' comment lines (the edge-list format
  // header); the node count is the first line that starts with a digit.
  std::size_t pos = 0;
  while (pos < t.graph_text.size()) {
    const char c = t.graph_text[pos];
    if (c >= '0' && c <= '9') break;
    const std::size_t eol = t.graph_text.find('\n', pos);
    if (eol == std::string::npos) return 0;
    pos = eol + 1;
  }
  std::size_t n = 0;
  for (; pos < t.graph_text.size(); ++pos) {
    const char c = t.graph_text[pos];
    if (c < '0' || c > '9') break;
    n = n * 10 + static_cast<std::size_t>(c - '0');
  }
  return n;
}

/// Index of a random event of `kind`, or npos when none exists.
std::size_t find_kind(const std::vector<TraceEvent>& events,
                      EventKind kind, dash::util::Rng& rng) {
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == kind) matches.push_back(i);
  }
  if (matches.empty()) return static_cast<std::size_t>(-1);
  return matches[static_cast<std::size_t>(rng.below(matches.size()))];
}

void apply_one_mutation(Trace& t, dash::util::Rng& rng) {
  auto& events = t.events;
  if (events.empty()) return;
  const std::size_t n = events.size();
  switch (rng.below(10)) {
    case 0: {  // drop one event
      events.erase(events.begin() +
                   static_cast<std::ptrdiff_t>(rng.below(n)));
      break;
    }
    case 1: {  // drop a short span
      const std::size_t begin = static_cast<std::size_t>(rng.below(n));
      const std::size_t len = 1 + static_cast<std::size_t>(rng.below(
                                      std::min<std::uint64_t>(8, n - begin)));
      events.erase(events.begin() + static_cast<std::ptrdiff_t>(begin),
                   events.begin() + static_cast<std::ptrdiff_t>(begin + len));
      break;
    }
    case 2: {  // duplicate an event in place
      const std::size_t i = static_cast<std::size_t>(rng.below(n));
      events.insert(events.begin() + static_cast<std::ptrdiff_t>(i),
                    events[i]);
      break;
    }
    case 3: {  // swap adjacent events
      if (n < 2) break;
      const std::size_t i = static_cast<std::size_t>(rng.below(n - 1));
      std::swap(events[i], events[i + 1]);
      break;
    }
    case 4: {  // retarget a removal at a random node id
      const std::size_t i = find_kind(events, EventKind::kRemove, rng);
      const std::size_t space = snapshot_num_nodes(t);
      if (i == static_cast<std::size_t>(-1) || space == 0) break;
      events[i].nodes.front() =
          static_cast<graph::NodeId>(rng.below(space));
      break;
    }
    case 5: {  // merge two adjacent removals into a simultaneous batch
      std::vector<std::size_t> pairs;
      for (std::size_t i = 0; i + 1 < events.size(); ++i) {
        if (events[i].kind == EventKind::kRemove &&
            events[i + 1].kind == EventKind::kRemove &&
            events[i].nodes.front() != events[i + 1].nodes.front()) {
          pairs.push_back(i);
        }
      }
      if (pairs.empty()) break;
      const std::size_t i =
          pairs[static_cast<std::size_t>(rng.below(pairs.size()))];
      events[i].kind = EventKind::kBatch;
      events[i].nodes.push_back(events[i + 1].nodes.front());
      events.erase(events.begin() + static_cast<std::ptrdiff_t>(i + 1));
      break;
    }
    case 6: {  // split a batch into sequential removals
      const std::size_t i = find_kind(events, EventKind::kBatch, rng);
      if (i == static_cast<std::size_t>(-1)) break;
      std::vector<TraceEvent> singles;
      for (graph::NodeId v : events[i].nodes) {
        TraceEvent e;
        e.kind = EventKind::kRemove;
        e.nodes = {v};
        singles.push_back(std::move(e));
      }
      events.erase(events.begin() + static_cast<std::ptrdiff_t>(i));
      events.insert(events.begin() + static_cast<std::ptrdiff_t>(i),
                    singles.begin(), singles.end());
      break;
    }
    case 7: {  // truncate the tail (the crash-at-any-point shape)
      events.resize(static_cast<std::size_t>(rng.below(n)) + 1);
      break;
    }
    // Scenario-aware mutations from the shared hunt/fuzz kit: they
    // edit whole phase segments (the kPhase markers the recorder
    // stamps) instead of single events. No-ops on traces without
    // enough phase structure.
    case 8: {  // reorder two phase segments
      dash::hunt::reorder_trace_phases(t, rng);
      break;
    }
    case 9: {  // churn-rate perturbation inside one segment
      dash::hunt::perturb_trace_churn(t, rng);
      break;
    }
  }
}

}  // namespace

Trace mutate_trace(const Trace& t, dash::util::Rng& rng) {
  Trace mutant = t;
  mutant.footer.reset();
  const std::size_t mutations = 1 + static_cast<std::size_t>(rng.below(3));
  for (std::size_t i = 0; i < mutations; ++i) {
    apply_one_mutation(mutant, rng);
  }
  for (TraceEvent& e : mutant.events) e.row_hash = 0;  // stale after edits
  return mutant;
}

FuzzReport fuzz_trace(const Trace& golden, const FuzzOptions& opt) {
  const std::vector<std::string> healers =
      opt.healers.empty() ? core::paper_strategy_specs() : opt.healers;
  dash::util::Rng rng(opt.seed);
  FuzzReport report;
  for (std::size_t m = 0; m < opt.mutants; ++m) {
    const Trace mutant = mutate_trace(golden, rng);
    ++report.mutants;
    for (const std::string& healer : healers) {
      ReplayOptions ro;
      ro.healer_override = healer;
      ro.lenient = true;
      ro.check_invariants = true;
      const ReplayResult r = play_trace(mutant, ro);
      ++report.replays;
      if (r.violation.empty()) continue;

      FuzzFailure f;
      f.mutant = m;
      f.healer = healer;
      f.violation = r.violation;
      f.original_events = mutant.events.size();
      f.shrunk_events = mutant.events.size();
      if (opt.shrink) {
        const TraceOracle oracle = [&healer](const Trace& candidate) {
          ReplayOptions o;
          o.healer_override = healer;
          o.lenient = true;
          o.check_invariants = true;
          return !play_trace(candidate, o).violation.empty();
        };
        Trace shrunk = shrink_trace(mutant, oracle);
        // Stamp the failing healer so the repro replays standalone
        // (`dash_lab replay --trace <repro> --lenient --invariants`).
        shrunk.healer = healer;
        f.shrunk_events = shrunk.events.size();
        f.repro_path = write_repro(
            shrunk, "healer " + healer + ": " + r.violation, opt.repro_dir);
      }
      report.failures.push_back(std::move(f));
    }
  }
  return report;
}

}  // namespace dash::replay
