// trace_phase.h -- recorded traces as first-class scenario phases.
//
// `trace:<file>` in a scenario spec loads a replay trace (trace.h) at
// parse time and replays its event stream against whatever network the
// scenario is driving -- which is rarely the network the trace was
// recorded on. Application is therefore *lenient*, exactly like
// `play_trace` with lenient on: dead or out-of-range node ids are
// filtered per event, empty events are skipped, and nothing is
// digest-verified. The phase honours the play context like any other
// phase: it stops at the deletion floor and when the play-level stop
// condition fires. Phase markers inside the trace are forwarded as
// nested phase notifications.
//
// This is what lets a shrunken fuzz repro or a captured workload ride
// an experiment grid: `--scenario "trace:repro.jsonl"` sweeps the
// recorded event pattern across every (family, n, healer) cell.
#pragma once

#include <memory>
#include <string>

#include "api/scenario.h"
#include "replay/trace.h"

namespace dash::replay {

class TracePhase final : public api::ScenarioPhase {
 public:
  /// Loads and validates the trace. Throws std::invalid_argument
  /// (wrapping the TraceError text) when the file is missing, corrupt,
  /// or a foreign format version -- at parse time, so a bad path fails
  /// spec validation instead of a worker mid-grid.
  explicit TracePhase(std::string path);

  std::string spec() const override { return "trace:" + path_; }
  void execute(api::PlayContext& ctx) const override;
  std::unique_ptr<api::ScenarioPhase> clone() const override;

  const Trace& trace() const { return *trace_; }

 private:
  std::string path_;
  /// Shared: clones of the phase (Scenario copies, grid fan-out)
  /// reference one immutable loaded trace instead of re-reading it.
  std::shared_ptr<const Trace> trace_;
};

namespace detail {
/// Registers the "trace" spelling in the scenario phase registry;
/// called by the registry builder itself (api/scenario.cpp) so the
/// spelling exists wherever the registry does, static-lib linking
/// notwithstanding.
void register_trace_phase(util::Registry<api::ScenarioPhase>* r);
}  // namespace detail

}  // namespace dash::replay
