#include "replay/shrink.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <utility>

namespace dash::replay {

Trace shrink_trace(const Trace& t, const TraceOracle& still_fails,
                   ShrinkStats* stats) {
  ShrinkStats local;
  local.original_events = t.events.size();

  Trace current = t;
  current.footer.reset();  // recorded totals no longer describe a subset
  if (!still_fails(current)) {
    throw TraceError("shrink_trace: the input trace does not fail");
  }
  ++local.oracle_calls;

  // ddmin-style greedy deletion: try dropping chunks of half the
  // events, halving the chunk on a pass without progress, down to
  // single events. Every kept deletion restarts the pass at the same
  // granularity (smaller traces shrink further).
  std::size_t chunk = std::max<std::size_t>(1, current.events.size() / 2);
  while (true) {
    bool progressed = false;
    for (std::size_t begin = 0; begin < current.events.size();) {
      const std::size_t end =
          std::min(begin + chunk, current.events.size());
      Trace candidate = current;
      candidate.events.erase(candidate.events.begin() + begin,
                             candidate.events.begin() + end);
      ++local.oracle_calls;
      if (still_fails(candidate)) {
        current = std::move(candidate);
        progressed = true;
        // The window now holds the events that followed the chunk;
        // retry the same position.
      } else {
        begin = end;
      }
    }
    if (!progressed) {
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(1, chunk / 2);
    }
  }

  local.shrunk_events = current.events.size();
  if (stats != nullptr) *stats = local;
  return current;
}

std::string repro_dir(const std::string& dir) {
  if (!dir.empty()) return dir;
  const char* env = std::getenv("DASH_REPRO_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "dash_repro";
}

std::string write_repro(const Trace& t, const std::string& reason,
                        const std::string& dir) {
  const std::string target = repro_dir(dir);
  std::filesystem::create_directories(target);
  // Deterministic content-derived name: the same failure lands on the
  // same file across runs instead of piling up.
  std::uint64_t h = kDigestSeed;
  for (char c : t.healer) h = digest_mix(h, static_cast<unsigned char>(c));
  h = digest_mix(h, t.seed);
  h = digest_mix(h, t.events.size());
  for (const TraceEvent& e : t.events) {
    h = digest_mix(h, static_cast<std::uint64_t>(e.kind));
    for (graph::NodeId v : e.nodes) h = digest_mix(h, v);
  }
  const std::string path =
      target + "/repro_" + t.healer + "_" + digest_hex(h) + ".trace";
  write_trace_file(path, t);
  std::ofstream why(path + ".reason.txt", std::ios::trunc);
  if (why) why << reason << "\n";
  return path;
}

}  // namespace dash::replay
