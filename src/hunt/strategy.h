// strategy.h -- search strategies over the attack-genome space.
//
// A strategy drives an Evaluator until its budget is spent, drawing
// every coin from one caller-owned Rng: same seed, same budget, same
// evaluator identity => the same sequence of candidates, hence the same
// leaderboard, byte for byte, no matter how the evaluator schedules the
// replays (sequential, ThreadPool, fleet).
//
// Strategies live behind the same util::Registry machinery as healers,
// attacks and scenario phases: "random", "greedy[:<neighbors>]",
// "evolve[:<population>]".
#pragma once

#include <memory>
#include <string>

#include "hunt/evaluator.h"
#include "util/registry.h"
#include "util/rng.h"

namespace dash::hunt {

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  virtual std::string name() const = 0;
  /// Search until eval.exhausted(). Deterministic in rng's stream.
  virtual void run(Evaluator& eval, util::Rng& rng) = 0;
};

/// "random" -- fresh random genomes, the baseline every hunt must beat.
/// "greedy[:<neighbors>]" -- hill-climb over the single-edit
///   neighborhood (mutate_genome), default 8 neighbors per step, random
///   restart when no neighbor improves.
/// "evolve[:<population>]" -- evolutionary loop: elitism of 2,
///   tournament-2 selection, one-point crossover at move boundaries,
///   mutation on every child; default population 16.
util::Registry<SearchStrategy>& strategy_registry();

/// strategy_registry().create(spec) -- throws std::invalid_argument for
/// unknown names and out-of-range parameters.
std::unique_ptr<SearchStrategy> make_search_strategy(
    const std::string& spec);

}  // namespace dash::hunt
