// mutation.h -- the shared hunt/fuzz mutation kit.
//
// Two layers, one file, because they express the same idea at two
// granularities:
//
//   * Genome operators -- random_move / random_genome / mutate_genome /
//     crossover -- edit hunt::AttackGenome values. Every operator keeps
//     the result inside the strict genome grammar (GenomeLimits
//     clamps), so a mutant always re-parses from its own spec. The
//     greedy and evolutionary search strategies are built on these.
//
//   * Scenario-aware trace operators -- reorder_trace_phases /
//     perturb_trace_churn -- edit recorded replay::Trace event streams
//     *structurally*, using the phase-boundary markers the recorder
//     stamps: whole phase segments are reordered, and churn density
//     inside one segment is thinned or thickened. replay::fuzz_trace
//     draws these alongside its event-level edits, which is what makes
//     the fuzzer scenario-aware.
//
// All operators draw every coin from the caller's Rng: one seed, one
// deterministic edit sequence.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hunt/genome.h"
#include "replay/trace.h"
#include "util/rng.h"

namespace dash::hunt {

/// Attack specs hunted strike moves draw from (a concrete sample of
/// the registry: degree ranks, randomized, delta-guided, and the
/// observer-conditioned adaptive family).
const std::vector<std::string>& strike_alphabet();

/// One random move with parameters from small bounded grids.
/// `allow_mix` gates kMix (mix arms are themselves random moves, so
/// recursion stops at depth one).
Move random_move(util::Rng& rng, bool allow_mix = true);

/// 1..max_moves random moves.
AttackGenome random_genome(util::Rng& rng, std::size_t max_moves = 6);

/// One edit: replace / insert / delete / swap-adjacent / duplicate a
/// move, or perturb one move's parameters in place.
void mutate_genome(AttackGenome& genome, util::Rng& rng);

/// One-point crossover at move boundaries: a prefix of `a` spliced to
/// a suffix of `b`, clamped to GenomeLimits::max_moves.
AttackGenome crossover(const AttackGenome& a, const AttackGenome& b,
                       util::Rng& rng);

// ---- scenario-aware trace mutations (shared with replay::fuzz_trace) ----

/// Swap two whole phase segments (delimited by the trace's kPhase
/// markers). Returns false -- trace untouched -- when the trace has
/// fewer than two segments.
bool reorder_trace_phases(replay::Trace& trace, util::Rng& rng);

/// Perturb the churn rate inside one random phase segment: thin (drop)
/// or thicken (duplicate) roughly a quarter of its join/remove events.
/// Returns false when nothing changed.
bool perturb_trace_churn(replay::Trace& trace, util::Rng& rng);

}  // namespace dash::hunt
