// genome.h -- the hunt candidate representation: an attack schedule as
// a typed move sequence.
//
// An AttackGenome is the unit the search strategies (hunt/strategy.h)
// breed and score. Each move is one of the scenario alphabet's attack
// shapes -- a targeted strike (by rank, degree, or observer-conditioned
// predicate via the attack registry), a batch strike, a churn burst, a
// join burst, a churn ramp, or a weighted mix of single moves -- and
// the genome's canonical text form *is* a scenario spec:
//
//   hunt::AttackGenome g = hunt::AttackGenome::parse(
//       "strike:maxdeltax12;churn:0.3,0.1x50;batch:8,hubsx3");
//   g.spec();          // the same string (canonical fixed point)
//   g.to_scenario();   // an api::Scenario ready for Network::play
//
// Moves parse through a util::Registry keyed by the move name, so
// genomes serialize, hash, and round-trip exactly like scenario specs,
// and an unknown move's error lists the registered alphabet. The
// genome grammar is strictly narrower than the scenario grammar: every
// move must carry an explicit count, parameter ranges are clamped by
// GenomeLimits (evaluation cost stays bounded no matter what the
// mutator breeds), and open-ended phases (targeted, until, repeat,
// trace) are not part of the alphabet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/scenario.h"
#include "util/registry.h"

namespace dash::hunt {

/// Hard caps the strict parser and the mutation kit both honour; they
/// bound the cost of evaluating any genome the search can express.
struct GenomeLimits {
  std::size_t max_moves = 12;    ///< moves per genome
  std::size_t max_count = 2000;  ///< events/deletions/draws per move
  std::size_t max_batch = 64;    ///< batch size
  std::size_t max_attach = 8;    ///< join attachments
  std::uint64_t max_weight = 9;  ///< mix arm weight
};

const GenomeLimits& genome_limits();

/// One typed move. Which fields are live depends on `kind`; spec()
/// renders the canonical phase text (identical to the corresponding
/// api::Scenario phase's canonical form, so a genome spec is already
/// scenario-canonical).
struct Move {
  enum class Kind { kStrike, kBatch, kChurn, kJoin, kRamp, kMix };

  Kind kind = Kind::kStrike;
  /// kStrike: attack registry spec ("maxnode", "rank:3", "adaptive").
  std::string attack = "maxnode";
  /// Repetitions: strike deletions, batch rounds, churn/ramp events,
  /// join arrivals, mix draws. Always >= 1.
  std::size_t count = 1;
  // kBatch:
  std::size_t batch_size = 4;
  std::string batch_mode = "hubs";  ///< "hubs" or "random"
  // kChurn rates; kRamp start rates.
  double join_rate = 0.0;
  double leave_rate = 0.0;
  // kRamp end rates.
  double join_rate_end = 0.0;
  double leave_rate_end = 0.0;
  /// kChurn / kJoin / kRamp: peers each arrival wires to.
  std::size_t attach = 2;
  /// kMix: (weight, canonical single-move spec) arms; arms are
  /// non-mix moves, so nesting stops at depth one.
  std::vector<std::pair<std::uint64_t, std::string>> mix_arms;

  std::string spec() const;
  bool operator==(const Move&) const = default;
};

/// The registry serving move-name lookups for AttackGenome::parse:
/// strike, batch, churn, join, ramp, mix (strict forms; every entry
/// requires an explicit count). Downstream code may register more.
util::Registry<Move>& move_registry();

/// Parse one move token through move_registry(); throws
/// std::invalid_argument with the full alphabet on unknown names.
Move parse_move(const std::string& spec);

class AttackGenome {
 public:
  AttackGenome() = default;
  explicit AttackGenome(std::vector<Move> moves)
      : moves_(std::move(moves)) {}

  /// Strict parse of a ';'-joined move list. Throws
  /// std::invalid_argument for empty specs, unknown moves, missing
  /// counts, out-of-range parameters, or more than
  /// genome_limits().max_moves moves.
  static AttackGenome parse(const std::string& spec);

  /// Canonical text form; parse(spec()) round-trips, and the string is
  /// a valid canonical api::Scenario spec.
  std::string spec() const;

  /// FNV-1a over spec(): the candidate's identity in caches, spools,
  /// and leaderboards.
  std::uint64_t hash() const;
  std::string hash_hex() const;

  /// The executable form (Scenario::parse of spec()).
  api::Scenario to_scenario() const;

  std::vector<Move>& moves() { return moves_; }
  const std::vector<Move>& moves() const { return moves_; }
  bool empty() const { return moves_.empty(); }
  std::size_t size() const { return moves_.size(); }
  bool operator==(const AttackGenome&) const = default;

 private:
  std::vector<Move> moves_;
};

}  // namespace dash::hunt
