#include "hunt/strategy.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "hunt/mutation.h"

namespace dash::hunt {

namespace {

// Budget is charged per *distinct* genome, so a strategy that keeps
// proposing already-seen specs makes no progress. Every loop below
// tracks consecutive zero-charge iterations and bails after a generous
// cap -- in practice unreachable (the genome space is astronomically
// large), but it turns a pathological stall into a clean return.
constexpr std::size_t kStallCap = 1000;

class RandomSearch final : public SearchStrategy {
 public:
  std::string name() const override { return "random"; }

  void run(Evaluator& eval, util::Rng& rng) override {
    std::size_t stall = 0;
    while (!eval.exhausted() && stall < kStallCap) {
      const std::size_t before = eval.evaluations();
      eval.evaluate_one(random_genome(rng));
      stall = eval.evaluations() == before ? stall + 1 : 0;
    }
  }
};

class GreedySearch final : public SearchStrategy {
 public:
  explicit GreedySearch(std::size_t neighbors) : neighbors_(neighbors) {}

  std::string name() const override { return "greedy"; }

  void run(Evaluator& eval, util::Rng& rng) override {
    std::size_t stall = 0;
    while (!eval.exhausted() && stall < kStallCap) {
      const std::size_t start_evals = eval.evaluations();
      AttackGenome current = random_genome(rng);
      double best = eval.evaluate_one(current);
      bool improving = true;
      while (improving && !eval.exhausted()) {
        improving = false;
        std::vector<AttackGenome> hood;
        hood.reserve(neighbors_);
        for (std::size_t i = 0; i < neighbors_; ++i) {
          AttackGenome candidate = current;
          mutate_genome(candidate, rng);
          hood.push_back(std::move(candidate));
        }
        const std::vector<double> fits = eval.evaluate(hood);
        for (std::size_t i = 0; i < hood.size(); ++i) {
          if (fits[i] > best) {
            best = fits[i];
            current = hood[i];
            improving = true;
          }
        }
      }
      stall = eval.evaluations() == start_evals ? stall + 1 : 0;
    }
  }

 private:
  std::size_t neighbors_;
};

class EvolveSearch final : public SearchStrategy {
 public:
  explicit EvolveSearch(std::size_t population) : population_(population) {}

  std::string name() const override { return "evolve"; }

  void run(Evaluator& eval, util::Rng& rng) override {
    std::vector<AttackGenome> pop;
    pop.reserve(population_);
    for (std::size_t i = 0; i < population_; ++i) {
      pop.push_back(random_genome(rng));
    }
    std::vector<double> fit = eval.evaluate(pop);
    std::size_t stall = 0;
    while (!eval.exhausted() && stall < kStallCap) {
      const std::size_t before = eval.evaluations();
      // (fitness desc, index asc) ranking for elitism.
      std::vector<std::size_t> order(population_);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::stable_sort(order.begin(), order.end(),
                       [&fit](std::size_t a, std::size_t b) {
                         return fit[a] > fit[b];
                       });
      std::vector<AttackGenome> next;
      next.reserve(population_);
      next.push_back(pop[order[0]]);
      next.push_back(pop[order[1]]);
      const auto tournament = [&]() -> const AttackGenome& {
        const auto a = static_cast<std::size_t>(rng.below(population_));
        const auto b = static_cast<std::size_t>(rng.below(population_));
        return fit[a] >= fit[b] ? pop[a] : pop[b];
      };
      while (next.size() < population_) {
        AttackGenome child = rng.chance(0.5)
                                 ? crossover(tournament(), tournament(), rng)
                                 : tournament();
        mutate_genome(child, rng);
        next.push_back(std::move(child));
      }
      pop = std::move(next);
      fit = eval.evaluate(pop);
      stall = eval.evaluations() == before ? stall + 1 : 0;
    }
  }

 private:
  std::size_t population_;
};

}  // namespace

util::Registry<SearchStrategy>& strategy_registry() {
  static util::Registry<SearchStrategy>* registry = [] {
    auto* r = new util::Registry<SearchStrategy>("hunt strategy");
    r->add(
        "random",
        [](const std::string& param) -> std::unique_ptr<SearchStrategy> {
          if (!param.empty()) {
            throw std::invalid_argument(
                "hunt strategy 'random' takes no parameter (got '" + param +
                "')");
          }
          return std::make_unique<RandomSearch>();
        },
        {}, "random");
    r->add(
        "greedy",
        [](const std::string& param) -> std::unique_ptr<SearchStrategy> {
          std::size_t neighbors = 8;
          if (!param.empty()) {
            neighbors = util::parse_spec_uint("greedy", param, 64);
            if (neighbors == 0) {
              throw std::invalid_argument(
                  "hunt strategy greedy wants >= 1 neighbor");
            }
          }
          return std::make_unique<GreedySearch>(neighbors);
        },
        {"hillclimb"}, "greedy[:<neighbors>]");
    r->add(
        "evolve",
        [](const std::string& param) -> std::unique_ptr<SearchStrategy> {
          std::size_t population = 16;
          if (!param.empty()) {
            population = util::parse_spec_uint("evolve", param, 256);
            if (population < 4) {
              throw std::invalid_argument(
                  "hunt strategy evolve wants a population >= 4");
            }
          }
          return std::make_unique<EvolveSearch>(population);
        },
        {"ga", "evolutionary"}, "evolve[:<population>]");
    return r;
  }();
  return *registry;
}

std::unique_ptr<SearchStrategy> make_search_strategy(
    const std::string& spec) {
  return strategy_registry().create(spec);
}

}  // namespace dash::hunt
