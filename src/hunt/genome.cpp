#include "hunt/genome.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <stdexcept>

#include "attack/factory.h"
#include "util/csv.h"

namespace dash::hunt {

namespace {

bool all_digits(const std::string& s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

struct CountSplit {
  std::string head;
  std::size_t count = 0;
  bool has_count = false;
};

/// Split a move's parameter at its trailing `x<digits>` count, exactly
/// like the scenario grammar does ("0.3,0.1x500" -> {"0.3,0.1", 500}).
CountSplit split_count(const std::string& move, const std::string& args) {
  CountSplit out;
  out.head = args;
  const auto pos = args.find_last_of('x');
  if (pos == std::string::npos) return out;
  const std::string suffix = args.substr(pos + 1);
  if (!all_digits(suffix)) return out;
  out.count =
      static_cast<std::size_t>(util::parse_spec_uint(move, suffix));
  out.head = args.substr(0, pos);
  out.has_count = true;
  return out;
}

/// The genome grammar is strict where the scenario grammar is lax:
/// every move carries an explicit bounded count.
std::size_t require_count(const std::string& move, const CountSplit& cs,
                          const std::string& param) {
  const auto max = genome_limits().max_count;
  if (!cs.has_count || cs.count == 0 || cs.count > max) {
    throw std::invalid_argument(
        "hunt move '" + move + ":" + param +
        "' needs an explicit count x<1.." + std::to_string(max) + ">");
  }
  return cs.count;
}

std::size_t parse_ranged(const std::string& move, const std::string& what,
                         const std::string& s, std::size_t min,
                         std::size_t max) {
  const auto v = util::parse_spec_uint(move, s, max);
  if (v < min) {
    throw std::invalid_argument("hunt move '" + move + "' needs " + what +
                                " >= " + std::to_string(min) + ", got '" +
                                s + "'");
  }
  return static_cast<std::size_t>(v);
}

/// Strict locale-independent double in [0, 1] (same contract as the
/// scenario grammar's rate parser).
double parse_rate01(const std::string& move, const std::string& s) {
  double v = 0.0;
  const auto [end, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size() || s.empty() ||
      v < 0.0 || v > 1.0) {
    throw std::invalid_argument("bad rate in hunt move '" + move + "': '" +
                                s + "' (expected a number in [0, 1])");
  }
  return v;
}

std::string rate_str(double v) { return util::CsvWriter::to_field(v); }

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Top-level commas only (braces nest): the mix arm separator.
std::vector<std::string> split_arms(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  out.push_back(current);
  return out;
}

Move parse_strike_move(const std::string& param) {
  const CountSplit cs = split_count("strike", param);
  Move m;
  m.kind = Move::Kind::kStrike;
  m.count = require_count("strike", cs, param);
  if (cs.head.empty()) {
    throw std::invalid_argument(
        "hunt strike move needs an attack: 'strike:" + param +
        "' (expected strike:<attack>xN)");
  }
  attack::make_attack(cs.head, 1);  // validates; lists the registry
  m.attack = cs.head;
  return m;
}

Move parse_batch_move(const std::string& param) {
  const CountSplit cs = split_count("batch", param);
  Move m;
  m.kind = Move::Kind::kBatch;
  m.count = require_count("batch", cs, param);
  const auto parts = split_commas(cs.head);
  if (parts.size() != 2) {
    throw std::invalid_argument("bad hunt batch move: 'batch:" + param +
                                "' (expected batch:<k>,<hubs|random>xN)");
  }
  m.batch_size = parse_ranged("batch", "a batch size", parts[0], 1,
                              genome_limits().max_batch);
  if (parts[1] != "hubs" && parts[1] != "random") {
    throw std::invalid_argument("unknown hunt batch mode '" + parts[1] +
                                "' (expected hubs or random)");
  }
  m.batch_mode = parts[1];
  return m;
}

Move parse_churn_move(const std::string& param) {
  const CountSplit cs = split_count("churn", param);
  Move m;
  m.kind = Move::Kind::kChurn;
  m.count = require_count("churn", cs, param);
  const auto parts = split_commas(cs.head);
  if (parts.size() < 2 || parts.size() > 3) {
    throw std::invalid_argument(
        "bad hunt churn move: 'churn:" + param +
        "' (expected churn:<jr>,<lr>[,<attach>]xN)");
  }
  m.join_rate = parse_rate01("churn", parts[0]);
  m.leave_rate = parse_rate01("churn", parts[1]);
  if (parts.size() == 3) {
    m.attach = parse_ranged("churn", "an attach count", parts[2], 1,
                            genome_limits().max_attach);
  }
  return m;
}

Move parse_join_move(const std::string& param) {
  const CountSplit cs = split_count("join", param);
  Move m;
  m.kind = Move::Kind::kJoin;
  m.count = require_count("join", cs, param);
  if (cs.head.empty()) {
    throw std::invalid_argument("bad hunt join move: 'join:" + param +
                                "' (expected join:<attach>xN)");
  }
  m.attach = parse_ranged("join", "an attach count", cs.head, 1,
                          genome_limits().max_attach);
  return m;
}

Move parse_ramp_move(const std::string& param) {
  const CountSplit cs = split_count("ramp", param);
  Move m;
  m.kind = Move::Kind::kRamp;
  m.count = require_count("ramp", cs, param);
  const auto parts = split_commas(cs.head);
  if (parts.size() < 4 || parts.size() > 5) {
    throw std::invalid_argument(
        "bad hunt ramp move: 'ramp:" + param +
        "' (expected ramp:<jr0>,<lr0>,<jr1>,<lr1>[,<attach>]xN)");
  }
  m.join_rate = parse_rate01("ramp", parts[0]);
  m.leave_rate = parse_rate01("ramp", parts[1]);
  m.join_rate_end = parse_rate01("ramp", parts[2]);
  m.leave_rate_end = parse_rate01("ramp", parts[3]);
  if (parts.size() == 5) {
    m.attach = parse_ranged("ramp", "an attach count", parts[4], 1,
                            genome_limits().max_attach);
  }
  return m;
}

Move parse_mix_move(const std::string& param) {
  const CountSplit cs = split_count("mix", param);
  Move m;
  m.kind = Move::Kind::kMix;
  m.count = require_count("mix", cs, param);
  const auto arms = split_arms(cs.head);
  if (arms.empty() || arms.size() > 4) {
    throw std::invalid_argument(
        "bad hunt mix move: 'mix:" + param +
        "' (expected 1..4 arms <w>{<move>})");
  }
  for (const std::string& arm : arms) {
    const auto brace = arm.find('{');
    if (arm.empty() || brace == std::string::npos || brace == 0 ||
        arm.back() != '}' || !all_digits(arm.substr(0, brace))) {
      throw std::invalid_argument("bad hunt mix arm '" + arm +
                                  "' (expected <weight>{<move>})");
    }
    const auto weight = util::parse_spec_uint("mix", arm.substr(0, brace),
                                              genome_limits().max_weight);
    if (weight == 0) {
      throw std::invalid_argument("zero weight in hunt mix move 'mix:" +
                                  param + "'");
    }
    const Move inner =
        parse_move(arm.substr(brace + 1, arm.size() - brace - 2));
    if (inner.kind == Move::Kind::kMix) {
      throw std::invalid_argument(
          "hunt mix arms must be single non-mix moves: 'mix:" + param +
          "'");
    }
    m.mix_arms.emplace_back(weight, inner.spec());
  }
  return m;
}

/// ';'-split honouring braces, with whitespace-trimmed tokens.
std::vector<std::string> split_moves(const std::string& spec) {
  std::vector<std::string> tokens;
  std::string current;
  int depth = 0;
  for (char c : spec) {
    if (c == '{') ++depth;
    if (c == '}' && depth > 0) --depth;
    if (c == ';' && depth == 0) {
      tokens.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  tokens.push_back(current);
  for (std::string& t : tokens) {
    const auto begin = t.find_first_not_of(" \t\n\r");
    if (begin == std::string::npos) {
      t.clear();
      continue;
    }
    const auto end = t.find_last_not_of(" \t\n\r");
    t = t.substr(begin, end - begin + 1);
  }
  return tokens;
}

}  // namespace

const GenomeLimits& genome_limits() {
  static const GenomeLimits limits;
  return limits;
}

std::string Move::spec() const {
  switch (kind) {
    case Kind::kStrike:
      return "strike:" + attack + "x" + std::to_string(count);
    case Kind::kBatch:
      return "batch:" + std::to_string(batch_size) + "," + batch_mode +
             "x" + std::to_string(count);
    case Kind::kChurn: {
      std::string out = "churn:" + rate_str(join_rate) + "," +
                        rate_str(leave_rate);
      if (attach != 2) out += "," + std::to_string(attach);
      return out + "x" + std::to_string(count);
    }
    case Kind::kJoin:
      return "join:" + std::to_string(attach) + "x" +
             std::to_string(count);
    case Kind::kRamp: {
      std::string out = "ramp:" + rate_str(join_rate) + "," +
                        rate_str(leave_rate) + "," +
                        rate_str(join_rate_end) + "," +
                        rate_str(leave_rate_end);
      if (attach != 2) out += "," + std::to_string(attach);
      return out + "x" + std::to_string(count);
    }
    case Kind::kMix: {
      std::string out = "mix:";
      for (std::size_t i = 0; i < mix_arms.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(mix_arms[i].first);
        out += '{';
        out += mix_arms[i].second;
        out += '}';
      }
      return out + "x" + std::to_string(count);
    }
  }
  return "";
}

util::Registry<Move>& move_registry() {
  // Lazy built-in registration (static-library linker-drop caveat; see
  // util/registry.h).
  static util::Registry<Move>* registry = [] {
    auto* r = new util::Registry<Move>("hunt move");
    r->add(
        "strike",
        [](const std::string& p) {
          return std::make_unique<Move>(parse_strike_move(p));
        },
        {}, "strike:<attack>xN");
    r->add(
        "batch",
        [](const std::string& p) {
          return std::make_unique<Move>(parse_batch_move(p));
        },
        {}, "batch:<k>,<hubs|random>xN");
    r->add(
        "churn",
        [](const std::string& p) {
          return std::make_unique<Move>(parse_churn_move(p));
        },
        {}, "churn:<jr>,<lr>[,<attach>]xN");
    r->add(
        "join",
        [](const std::string& p) {
          return std::make_unique<Move>(parse_join_move(p));
        },
        {}, "join:<attach>xN");
    r->add(
        "ramp",
        [](const std::string& p) {
          return std::make_unique<Move>(parse_ramp_move(p));
        },
        {}, "ramp:<jr0>,<lr0>,<jr1>,<lr1>[,<attach>]xN");
    r->add(
        "mix",
        [](const std::string& p) {
          return std::make_unique<Move>(parse_mix_move(p));
        },
        {}, "mix:<w>{<move>},<w>{<move>}xN");
    return r;
  }();
  return *registry;
}

Move parse_move(const std::string& spec) {
  return *move_registry().create(spec);
}

AttackGenome AttackGenome::parse(const std::string& spec) {
  std::vector<Move> moves;
  for (const std::string& token : split_moves(spec)) {
    if (token.empty()) {
      throw std::invalid_argument("empty move in hunt genome spec: '" +
                                  spec + "'");
    }
    moves.push_back(parse_move(token));
  }
  if (moves.size() > genome_limits().max_moves) {
    throw std::invalid_argument(
        "hunt genome has " + std::to_string(moves.size()) +
        " moves (limit " + std::to_string(genome_limits().max_moves) +
        "): '" + spec + "'");
  }
  return AttackGenome(std::move(moves));
}

std::string AttackGenome::spec() const {
  std::string out;
  for (const Move& m : moves_) {
    if (!out.empty()) out += ';';
    out += m.spec();
  }
  return out;
}

std::uint64_t AttackGenome::hash() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : spec()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string AttackGenome::hash_hex() const {
  static const char* hex = "0123456789abcdef";
  std::uint64_t h = hash();
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xF];
    h >>= 4;
  }
  return out;
}

api::Scenario AttackGenome::to_scenario() const {
  return api::Scenario::parse(spec());
}

}  // namespace dash::hunt
