#include "hunt/mutation.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace dash::hunt {

namespace {

/// Rates live on a 1/20 grid: mutations step them by 0.05, keeping
/// specs short and the neighborhood finite.
double random_rate(util::Rng& rng) {
  return static_cast<double>(rng.below(21)) / 20.0;
}

double step_rate(double rate, util::Rng& rng) {
  const double stepped =
      rate + (rng.below(2) == 0 ? 0.05 : -0.05);
  const double clamped = std::clamp(stepped, 0.0, 1.0);
  return std::round(clamped * 20.0) / 20.0;  // stay on the grid
}

std::size_t jitter_count(std::size_t count, std::size_t max,
                         util::Rng& rng) {
  const std::size_t delta =
      1 + static_cast<std::size_t>(
              rng.below(std::max<std::uint64_t>(1, count / 4)));
  if (rng.below(2) == 0) return std::min(max, count + delta);
  return count > delta ? count - delta : 1;
}

std::size_t jitter_attach(std::size_t attach, util::Rng& rng) {
  const std::size_t stepped =
      rng.below(2) == 0 ? attach + 1 : (attach > 1 ? attach - 1 : 1);
  return std::clamp<std::size_t>(stepped, 1, genome_limits().max_attach);
}

const std::string& pick_attack(util::Rng& rng) {
  const auto& alphabet = strike_alphabet();
  return alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))];
}

void perturb_move(Move& m, util::Rng& rng);

void perturb_mix_arm(Move& m, util::Rng& rng) {
  if (m.mix_arms.empty()) return;
  auto& arm =
      m.mix_arms[static_cast<std::size_t>(rng.below(m.mix_arms.size()))];
  if (rng.below(2) == 0) {
    // weight step
    const std::uint64_t stepped =
        rng.below(2) == 0 ? arm.first + 1
                          : (arm.first > 1 ? arm.first - 1 : 1);
    arm.first = std::min(stepped, genome_limits().max_weight);
    return;
  }
  Move inner = parse_move(arm.second);  // arms are canonical by parse
  perturb_move(inner, rng);
  arm.second = inner.spec();
}

void perturb_move(Move& m, util::Rng& rng) {
  const auto& limits = genome_limits();
  switch (m.kind) {
    case Move::Kind::kStrike:
      if (rng.below(2) == 0) {
        m.attack = pick_attack(rng);
      } else {
        m.count = jitter_count(m.count, limits.max_count, rng);
      }
      break;
    case Move::Kind::kBatch:
      switch (rng.below(3)) {
        case 0:
          m.batch_size = std::clamp<std::size_t>(
              rng.below(2) == 0 ? m.batch_size + 1
                                : (m.batch_size > 1 ? m.batch_size - 1
                                                    : 1),
              1, limits.max_batch);
          break;
        case 1:
          m.batch_mode = m.batch_mode == "hubs" ? "random" : "hubs";
          break;
        default:
          m.count = jitter_count(m.count, limits.max_count, rng);
      }
      break;
    case Move::Kind::kChurn:
      switch (rng.below(3)) {
        case 0:
          if (rng.below(2) == 0) {
            m.join_rate = step_rate(m.join_rate, rng);
          } else {
            m.leave_rate = step_rate(m.leave_rate, rng);
          }
          break;
        case 1:
          m.attach = jitter_attach(m.attach, rng);
          break;
        default:
          m.count = jitter_count(m.count, limits.max_count, rng);
      }
      break;
    case Move::Kind::kJoin:
      if (rng.below(2) == 0) {
        m.attach = jitter_attach(m.attach, rng);
      } else {
        m.count = jitter_count(m.count, limits.max_count, rng);
      }
      break;
    case Move::Kind::kRamp:
      switch (rng.below(3)) {
        case 0:
          switch (rng.below(4)) {
            case 0: m.join_rate = step_rate(m.join_rate, rng); break;
            case 1: m.leave_rate = step_rate(m.leave_rate, rng); break;
            case 2:
              m.join_rate_end = step_rate(m.join_rate_end, rng);
              break;
            default:
              m.leave_rate_end = step_rate(m.leave_rate_end, rng);
          }
          break;
        case 1:
          m.attach = jitter_attach(m.attach, rng);
          break;
        default:
          m.count = jitter_count(m.count, limits.max_count, rng);
      }
      break;
    case Move::Kind::kMix:
      if (rng.below(3) == 0) {
        m.count = jitter_count(m.count, limits.max_count, rng);
      } else {
        perturb_mix_arm(m, rng);
      }
      break;
  }
}

// ---- trace segment helpers ----------------------------------------------

struct Segment {
  std::size_t begin = 0;
  std::size_t end = 0;  ///< exclusive
};

/// Segments delimited by kPhase markers; a marker opens the segment it
/// leads (events before the first marker form a headless segment).
std::vector<Segment> phase_segments(
    const std::vector<replay::TraceEvent>& events) {
  std::vector<Segment> segs;
  std::size_t start = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == replay::EventKind::kPhase && i != start) {
      segs.push_back({start, i});
      start = i;
    }
  }
  if (start < events.size()) segs.push_back({start, events.size()});
  return segs;
}

void append_range(std::vector<replay::TraceEvent>& out,
                  const std::vector<replay::TraceEvent>& events,
                  std::size_t begin, std::size_t end) {
  out.insert(out.end(),
             events.begin() + static_cast<std::ptrdiff_t>(begin),
             events.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace

const std::vector<std::string>& strike_alphabet() {
  static const std::vector<std::string> alphabet = {
      "maxnode",  "neighborofmax", "random",     "minnode",
      "maxdelta", "rank:2",        "rank:3",     "rank:4",
      "adaptive", "adaptive:1",    "adaptive:3",
  };
  return alphabet;
}

Move random_move(util::Rng& rng, bool allow_mix) {
  Move m;
  m.kind = static_cast<Move::Kind>(rng.below(allow_mix ? 6 : 5));
  switch (m.kind) {
    case Move::Kind::kStrike:
      m.attack = pick_attack(rng);
      m.count = 1 + static_cast<std::size_t>(rng.below(40));
      break;
    case Move::Kind::kBatch:
      m.batch_size = 2 + static_cast<std::size_t>(rng.below(7));
      m.batch_mode = rng.below(2) == 0 ? "hubs" : "random";
      m.count = 1 + static_cast<std::size_t>(rng.below(6));
      break;
    case Move::Kind::kChurn:
      m.join_rate = random_rate(rng);
      m.leave_rate = random_rate(rng);
      m.attach = 1 + static_cast<std::size_t>(rng.below(3));
      m.count = 5 + static_cast<std::size_t>(rng.below(96));
      break;
    case Move::Kind::kJoin:
      m.attach = 1 + static_cast<std::size_t>(rng.below(4));
      m.count = 1 + static_cast<std::size_t>(rng.below(24));
      break;
    case Move::Kind::kRamp:
      m.join_rate = random_rate(rng);
      m.leave_rate = random_rate(rng);
      m.join_rate_end = random_rate(rng);
      m.leave_rate_end = random_rate(rng);
      m.attach = 1 + static_cast<std::size_t>(rng.below(3));
      m.count = 5 + static_cast<std::size_t>(rng.below(96));
      break;
    case Move::Kind::kMix: {
      const std::size_t arms = 2;
      for (std::size_t i = 0; i < arms; ++i) {
        const Move inner = random_move(rng, /*allow_mix=*/false);
        m.mix_arms.emplace_back(1 + rng.below(3), inner.spec());
      }
      m.count = 2 + static_cast<std::size_t>(rng.below(14));
      break;
    }
  }
  return m;
}

AttackGenome random_genome(util::Rng& rng, std::size_t max_moves) {
  const std::size_t cap =
      std::min(std::max<std::size_t>(1, max_moves),
               genome_limits().max_moves);
  const std::size_t n = 1 + static_cast<std::size_t>(rng.below(cap));
  std::vector<Move> moves;
  moves.reserve(n);
  for (std::size_t i = 0; i < n; ++i) moves.push_back(random_move(rng));
  return AttackGenome(std::move(moves));
}

void mutate_genome(AttackGenome& genome, util::Rng& rng) {
  auto& moves = genome.moves();
  if (moves.empty()) {
    moves.push_back(random_move(rng));
    return;
  }
  const auto op = rng.below(6);
  const std::size_t i = static_cast<std::size_t>(rng.below(moves.size()));
  switch (op) {
    case 0:  // replace
      moves[i] = random_move(rng);
      break;
    case 1:  // insert (replace when full)
      if (moves.size() < genome_limits().max_moves) {
        moves.insert(moves.begin() + static_cast<std::ptrdiff_t>(i),
                     random_move(rng));
      } else {
        moves[i] = random_move(rng);
      }
      break;
    case 2:  // delete (replace when it is the last move)
      if (moves.size() > 1) {
        moves.erase(moves.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        moves[i] = random_move(rng);
      }
      break;
    case 3:  // swap with a neighbor
      if (moves.size() > 1) {
        const std::size_t j = i + 1 == moves.size() ? i - 1 : i + 1;
        std::swap(moves[i], moves[j]);
      }
      break;
    case 4:  // duplicate
      if (moves.size() < genome_limits().max_moves) {
        moves.insert(moves.begin() + static_cast<std::ptrdiff_t>(i),
                     moves[i]);
      }
      break;
    default:  // parameter perturbation
      perturb_move(moves[i], rng);
  }
}

AttackGenome crossover(const AttackGenome& a, const AttackGenome& b,
                       util::Rng& rng) {
  const std::size_t cut_a =
      static_cast<std::size_t>(rng.below(a.size() + 1));
  const std::size_t cut_b =
      static_cast<std::size_t>(rng.below(b.size() + 1));
  std::vector<Move> child(
      a.moves().begin(),
      a.moves().begin() + static_cast<std::ptrdiff_t>(cut_a));
  child.insert(child.end(),
               b.moves().begin() + static_cast<std::ptrdiff_t>(cut_b),
               b.moves().end());
  if (child.empty()) child.push_back(random_move(rng));
  if (child.size() > genome_limits().max_moves) {
    child.resize(genome_limits().max_moves);
  }
  return AttackGenome(std::move(child));
}

bool reorder_trace_phases(replay::Trace& trace, util::Rng& rng) {
  const auto segs = phase_segments(trace.events);
  if (segs.size() < 2) return false;
  std::size_t i = static_cast<std::size_t>(rng.below(segs.size()));
  std::size_t j = static_cast<std::size_t>(rng.below(segs.size() - 1));
  if (j >= i) ++j;
  if (i > j) std::swap(i, j);
  std::vector<replay::TraceEvent> out;
  out.reserve(trace.events.size());
  append_range(out, trace.events, 0, segs[i].begin);
  append_range(out, trace.events, segs[j].begin, segs[j].end);
  append_range(out, trace.events, segs[i].end, segs[j].begin);
  append_range(out, trace.events, segs[i].begin, segs[i].end);
  append_range(out, trace.events, segs[j].end, trace.events.size());
  trace.events = std::move(out);
  return true;
}

bool perturb_trace_churn(replay::Trace& trace, util::Rng& rng) {
  const auto segs = phase_segments(trace.events);
  if (segs.empty()) return false;
  const Segment seg =
      segs[static_cast<std::size_t>(rng.below(segs.size()))];
  const bool thin = rng.below(2) == 0;
  std::vector<replay::TraceEvent> out;
  out.reserve(trace.events.size() + (seg.end - seg.begin));
  append_range(out, trace.events, 0, seg.begin);
  bool changed = false;
  for (std::size_t i = seg.begin; i < seg.end; ++i) {
    const replay::TraceEvent& e = trace.events[i];
    const bool churn_event = e.kind == replay::EventKind::kJoin ||
                             e.kind == replay::EventKind::kRemove;
    if (churn_event && rng.below(4) == 0) {
      changed = true;
      if (thin) continue;  // drop: the leave/join rate falls
      out.push_back(e);    // duplicate: it rises
      out.push_back(e);
      continue;
    }
    out.push_back(e);
  }
  append_range(out, trace.events, seg.end, trace.events.size());
  if (!changed) return false;
  trace.events = std::move(out);
  return true;
}

}  // namespace dash::hunt
