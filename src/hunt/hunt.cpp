#include "hunt/hunt.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "attack/level_attack.h"
#include "core/factory.h"
#include "exp/spec.h"
#include "graph/generators.h"
#include "hunt/mutation.h"
#include "hunt/strategy.h"
#include "replay/recorder.h"
#include "util/csv.h"

namespace dash::hunt {

namespace {

/// The top-k groups reassembled into one BENCH document, each group's
/// label object led by "rank" and "fitness" -- plain string surgery on
/// bytes the sink already rendered, so everything else stays identical.
std::string leaderboard_document(const std::vector<Evaluated>& top) {
  static const std::string kLabels = "{\"labels\":{";
  std::string out = "{\"groups\":[";
  bool first = true;
  for (std::size_t i = 0; i < top.size(); ++i) {
    for (const std::string& group : top[i].groups) {
      if (group.compare(0, kLabels.size(), kLabels) != 0) {
        throw std::logic_error("hunt leaderboard: group without labels");
      }
      std::string stamped = "\"rank\":\"" + std::to_string(i + 1) +
                            "\",\"fitness\":\"" +
                            util::CsvWriter::to_field(top[i].fitness) + "\"";
      if (group[kLabels.size()] != '}') stamped += ',';
      if (!first) out += ',';
      first = false;
      out += kLabels + stamped + group.substr(kLabels.size());
    }
  }
  out += "]}\n";
  return out;
}

/// Re-record one winner as a replayable trace by reproducing the RNG
/// stream of its evaluation cell's *first* instance: run_suite forks
/// instance i's stream as seeder(base_seed).fork(i + 1), and
/// record_scenario mirrors the suite's construction order exactly, so
/// the trace's events -- and its strict replay digests -- match the
/// run the leaderboard scored.
std::string emit_trace(const Evaluator& eval, const Evaluated& entry,
                       std::size_t rank, const std::string& dir) {
  const HuntConfig& cfg = eval.config();
  const std::vector<exp::Cell> cells = eval.cells_for(entry.genome);
  const exp::Cell& cell = cells.front();  // first healer's cell

  replay::RecordConfig rc;
  rc.make_graph = exp::make_family(cell.family, cell.n, cfg.ba_edges);
  rc.healer = cell.healer;
  rc.scenario = entry.genome.to_scenario();
  rc.seed = cell.seed;

  std::filesystem::create_directories(dir);
  const std::string path = dir + "/HUNT_" + cfg.name + "_best" +
                           std::to_string(rank) + ".trace";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::invalid_argument("cannot write hunt trace " + path);
  }
  util::Rng seeder(cell.seed);
  util::Rng rng = seeder.fork(1);
  replay::record_scenario(rc, rng, out);
  return path;
}

}  // namespace

HuntResult run_hunt(const HuntConfig& cfg) {
  Evaluator eval(cfg);
  util::Rng rng(cfg.seed ^ 0x48554e54ULL);  // hunt stream != suite stream
  make_search_strategy(cfg.strategy)->run(eval, rng);
  // A strategy may return with budget left only on a pathological
  // stall; top it up with random probes so "budget" means budget.
  std::size_t stall = 0;
  while (!eval.exhausted() && stall < 1000) {
    const std::size_t before = eval.evaluations();
    eval.evaluate_one(random_genome(rng));
    stall = eval.evaluations() == before ? stall + 1 : 0;
  }

  HuntResult result;
  result.evaluations = eval.evaluations();
  const std::vector<Evaluated> top = eval.leaderboard(cfg.top_k);
  result.leaderboard_json = leaderboard_document(top);

  if (!cfg.state_dir.empty()) {
    std::filesystem::create_directories(cfg.state_dir);
    result.leaderboard_path =
        cfg.state_dir + "/HUNT_" + cfg.name + ".json";
    std::ofstream out(result.leaderboard_path,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::invalid_argument("cannot write hunt leaderboard " +
                                  result.leaderboard_path);
    }
    out << result.leaderboard_json;
  }

  const std::string trace_dir =
      cfg.trace_dir.empty() ? cfg.state_dir : cfg.trace_dir;
  for (std::size_t i = 0; i < top.size(); ++i) {
    HuntBest best;
    best.rank = i + 1;
    best.genome = top[i].genome;
    best.fitness = top[i].fitness;
    if (!trace_dir.empty()) {
      best.trace_path = emit_trace(eval, top[i], i + 1, trace_dir);
    }
    result.best.push_back(std::move(best));
  }
  return result;
}

LevelBaseline level_attack_baseline(std::size_t n, std::uint32_t m,
                                    std::uint64_t seed) {
  const std::size_t arity = m + 2;
  // Largest complete (m+2)-ary tree with at most n nodes.
  std::size_t depth = 0;
  std::size_t count = 1;
  std::size_t level = 1;
  while (true) {
    level *= arity;
    if (count + level > n) break;
    count += level;
    ++depth;
  }
  if (depth == 0) {
    throw std::invalid_argument(
        "level_attack_baseline: n=" + std::to_string(n) +
        " cannot hold a depth-1 " + std::to_string(arity) + "-ary tree");
  }

  const graph::KaryTree tree = graph::complete_kary_tree(arity, depth);
  util::Rng rng(seed);
  graph::Graph g = tree.g;
  api::Network net(std::move(g),
                   core::make_strategy("capped:" + std::to_string(m)), rng);
  attack::LevelAttack attack(tree, m);
  while (net.graph().num_alive() > 1) {
    const graph::NodeId victim = attack.select(net.graph(), net.state());
    if (victim == graph::kInvalidNode) break;
    net.remove(victim);
  }
  const api::Metrics metrics = net.finish();

  LevelBaseline out;
  out.nodes = count;
  out.depth = depth;
  out.m = m;
  out.fitness = static_cast<double>(metrics.max_delta);
  return out;
}

}  // namespace dash::hunt
