// evaluator.h -- the hunt's fitness harness and budget ledger.
//
// A candidate AttackGenome is scored by actually playing it: the
// evaluator expands each genome into one exp::ExperimentSpec cell per
// healer (family x n fixed by the HuntConfig) and runs the grid through
// the very machinery the lab uses everywhere else -- exp::run with its
// shared suite ThreadPool, or, with fleet_agents > 0, a dash::fleet
// coordinator feeding in-process agents. Both backends emit the same
// BENCH group bytes for a cell, so fitness -- parsed from those bytes --
// and therefore the whole search trajectory is identical regardless of
// how the evaluations were scheduled.
//
// Budget semantics: every *distinct* genome spec requested charges the
// budget once, at first request, and is stamped with its request order.
// Re-requests (elites re-scored each generation, greedy revisiting a
// neighbor) are free cache hits. Once the budget is spent, further new
// specs score kUnscored and are not recorded -- the leaderboard is
// exactly the first `budget` distinct candidates the strategy asked
// about, which is what makes "500 evaluations" a hard, comparable cap.
//
// The spool (<state_dir>/spool.tsv) persists every computed score with
// its group bytes, stamped with a hash of the evaluation identity
// (family, n, healers, instances, seed, ...). --resume reloads it as a
// warm cache: the strategy replays the same trajectory, skipping the
// replays it already paid for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/spec.h"
#include "hunt/genome.h"

namespace dash::hunt {

/// What "worst case" means: a weighted sum of per-run metrics, averaged
/// over every run (instance x healer) of the candidate.
///
///   delta * w_delta + stretch * w_stretch
///     + (disconnected ? 1 + 1/(1 + deletions) : 0) * w_disconnect
///
/// The disconnect term rewards *early* disconnection: any disconnect
/// scores at least 1, and fewer deletions-to-disconnect scores higher.
struct FitnessSpec {
  double w_delta = 1.0;
  double w_stretch = 0.0;
  double w_disconnect = 0.0;
  std::string text = "delta";  ///< canonical spelling

  /// "delta" | "stretch" | "disconnect" | "combo:<wd>,<ws>,<wc>".
  /// Throws std::invalid_argument on unknown names, malformed or
  /// negative weights, and all-zero combos.
  static FitnessSpec parse(const std::string& spec);

  bool needs_stretch() const { return w_stretch > 0.0; }
};

/// Everything one hunt needs: the target (family x n x healers), the
/// search (strategy, budget, seed), the scoring (fitness), and the
/// plumbing (threads / fleet, spool dir, trace dir).
struct HuntConfig {
  std::string name = "hunt";

  // -- target ---------------------------------------------------------
  std::string family = "ba";
  std::size_t n = 64;
  std::size_t ba_edges = 2;
  std::vector<std::string> healers = {"dash"};
  std::size_t instances = 2;  ///< paired seeds per exp convention
  std::uint64_t seed = 0xDA5B;
  /// Stretch sampling cadence; 0 = auto (8 when the fitness needs
  /// stretch, off otherwise).
  std::size_t stretch_every = 0;

  // -- search ---------------------------------------------------------
  std::string fitness = "delta";
  std::string strategy = "evolve";
  std::size_t budget = 200;  ///< distinct genomes evaluated, hard cap
  std::size_t top_k = 3;

  // -- plumbing -------------------------------------------------------
  /// Suite pool width (0 = hardware, 1 = sequential). Ignored when
  /// fleet_agents > 0.
  std::size_t threads = 1;
  /// > 0: score generations through a dash::fleet coordinator with this
  /// many in-process agents (one suite thread each).
  std::size_t fleet_agents = 0;
  /// Spool/resume dir; empty disables the spool (and --resume).
  std::string state_dir;
  bool resume = false;
  /// Where run_hunt drops the best-k traces; empty = state_dir; both
  /// empty = no traces.
  std::string trace_dir;
  /// Progress sink (one line per evaluation batch); null = silent.
  std::function<void(const std::string&)> progress;
};

/// One scored candidate as the leaderboard sees it.
struct Evaluated {
  std::size_t order = 0;  ///< first-request index (budget position)
  AttackGenome genome;
  double fitness = 0.0;
  /// One BENCH group per healer cell, in healer order -- the exact
  /// bytes a sequential exp::run of that cell emits.
  std::vector<std::string> groups;
};

class Evaluator {
 public:
  /// Sentinel for over-budget / unscorable candidates.
  static constexpr double kUnscored =
      -std::numeric_limits<double>::infinity();

  /// Validates the config eagerly (family, healers, fitness, budget)
  /// and loads the spool when resuming. Throws std::invalid_argument.
  explicit Evaluator(HuntConfig cfg);

  /// Score a batch. Fresh specs are replayed together as one experiment
  /// grid (that is where the parallelism lives); cached and repeated
  /// specs cost nothing. Returns one fitness per input, kUnscored for
  /// candidates that arrived after the budget ran out.
  std::vector<double> evaluate(const std::vector<AttackGenome>& pop);
  double evaluate_one(const AttackGenome& genome);

  std::size_t evaluations() const { return used_; }
  std::size_t budget() const { return cfg_.budget; }
  bool exhausted() const { return used_ >= cfg_.budget; }

  /// Budgeted candidates ordered by (fitness desc, request order asc),
  /// truncated to k.
  std::vector<Evaluated> leaderboard(std::size_t k) const;

  /// The grid cells a genome is scored on, in healer order -- their
  /// seeds are what trace re-recording reproduces.
  std::vector<exp::Cell> cells_for(const AttackGenome& genome) const;

  const FitnessSpec& fitness() const { return fitness_; }
  const HuntConfig& config() const { return cfg_; }
  std::size_t stretch_every() const { return stretch_every_; }

  /// Hash over every field that changes what a score *means* (family,
  /// n, ba_edges, healers, instances, seed, stretch cadence, fitness).
  /// Stamps the spool header so a resume cannot mix incompatible runs.
  std::string config_hash() const;

 private:
  struct Score {
    double fitness = 0.0;
    std::vector<std::string> groups;
  };

  exp::ExperimentSpec base_spec(std::vector<std::string> scenarios) const;
  void compute(const std::vector<std::string>& specs);
  std::vector<std::string> run_grid(const exp::ExperimentSpec& spec);
  std::vector<std::string> run_fleet_grid(const exp::ExperimentSpec& spec);
  double score_groups(const std::vector<std::string>& groups) const;
  void load_spool();
  void append_spool(const std::string& spec, const Score& score);

  HuntConfig cfg_;
  FitnessSpec fitness_;
  std::size_t stretch_every_ = 0;
  std::map<std::string, Score> computed_;     ///< spec -> score (cache)
  std::map<std::string, Evaluated> requested_;  ///< spec -> ledger entry
  std::size_t used_ = 0;
  std::size_t fleet_batch_ = 0;
  std::ofstream spool_;
};

}  // namespace dash::hunt
