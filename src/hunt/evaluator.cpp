#include "hunt/evaluator.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "exp/runner.h"
#include "fleet/agent.h"
#include "fleet/coordinator.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/registry.h"

namespace dash::hunt {

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (true) {
    const std::size_t comma = s.find(',', begin);
    out.push_back(s.substr(begin, comma - begin));
    if (comma == std::string::npos) return out;
    begin = comma + 1;
  }
}

double parse_weight(const std::string& text) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size() || v < 0.0) {
    throw std::invalid_argument("bad fitness weight '" + text +
                                "' (want a number >= 0)");
  }
  return v;
}

// ---- BENCH group byte mining ------------------------------------------
//
// Fitness is parsed straight from the group's JSON bytes rather than
// from in-memory Metrics, because the fleet backend only hands back
// bytes -- and identical bytes in every backend is exactly the property
// that makes sequential / threaded / fleet hunts byte-identical.

/// Top-level JSON objects of `body` (a comma-separated object list),
/// string- and escape-aware.
std::vector<std::string> split_objects(const std::string& body) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_string = false;
  bool escape = false;
  std::size_t begin = std::string::npos;
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (escape) {
        escape = false;
      } else if (c == '\\') {
        escape = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) begin = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0 && begin != std::string::npos) {
        out.push_back(body.substr(begin, i - begin + 1));
        begin = std::string::npos;
      }
    }
  }
  return out;
}

/// The `"runs":[...]` array body of one group.
std::string runs_body(const std::string& group) {
  static const std::string kKey = "\"runs\":[";
  const std::size_t at = group.find(kKey);
  if (at == std::string::npos) {
    throw std::logic_error("BENCH group without runs array");
  }
  const std::size_t begin = at + kKey.size();
  // Matching ']' of the runs array: run objects hold no nested arrays,
  // but violation strings could hold anything -- scan string-aware.
  int depth = 1;
  bool in_string = false;
  bool escape = false;
  for (std::size_t i = begin; i < group.size(); ++i) {
    const char c = group[i];
    if (in_string) {
      if (escape) {
        escape = false;
      } else if (c == '\\') {
        escape = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '[') ++depth;
    else if (c == ']' && --depth == 0) return group.substr(begin, i - begin);
  }
  throw std::logic_error("BENCH group with unterminated runs array");
}

double run_number(const std::string& run, const std::string& field) {
  const std::string key = "\"" + field + "\":";
  const std::size_t at = run.find(key);
  if (at == std::string::npos) {
    throw std::logic_error("BENCH run without field " + field);
  }
  const char* begin = run.data() + at + key.size();
  const char* end = run.data() + run.size();
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr == begin) {
    throw std::logic_error("unparsable BENCH run field " + field);
  }
  return v;
}

bool run_stayed_connected(const std::string& run) {
  const std::size_t at = run.find("\"stayed_connected\":");
  if (at == std::string::npos) {
    throw std::logic_error("BENCH run without stayed_connected");
  }
  return run.compare(at + 19, 4, "true") == 0;
}

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

std::string spool_path(const std::string& state_dir) {
  return state_dir + "/spool.tsv";
}

constexpr char kGroupSep = '\x1f';  // never appears in JSON output

}  // namespace

FitnessSpec FitnessSpec::parse(const std::string& spec) {
  const util::SpecParts parts = util::split_spec(spec);
  const std::string& name = parts.name;
  const std::string& param = parts.param;
  FitnessSpec out;
  if (name == "delta" && param.empty()) {
    out = {1.0, 0.0, 0.0, "delta"};
  } else if (name == "stretch" && param.empty()) {
    out = {0.0, 1.0, 0.0, "stretch"};
  } else if (name == "disconnect" && param.empty()) {
    out = {0.0, 0.0, 1.0, "disconnect"};
  } else if (name == "combo") {
    const std::vector<std::string> parts = split_commas(param);
    if (parts.size() != 3) {
      throw std::invalid_argument(
          "fitness combo wants 3 weights: combo:<wd>,<ws>,<wc>");
    }
    out.w_delta = parse_weight(parts[0]);
    out.w_stretch = parse_weight(parts[1]);
    out.w_disconnect = parse_weight(parts[2]);
    if (out.w_delta == 0.0 && out.w_stretch == 0.0 &&
        out.w_disconnect == 0.0) {
      throw std::invalid_argument("fitness combo with all-zero weights");
    }
    out.text = "combo:" + util::CsvWriter::to_field(out.w_delta) + "," +
               util::CsvWriter::to_field(out.w_stretch) + "," +
               util::CsvWriter::to_field(out.w_disconnect);
  } else {
    throw std::invalid_argument(
        "unknown fitness '" + spec +
        "'; want delta, stretch, disconnect or combo:<wd>,<ws>,<wc>");
  }
  return out;
}

Evaluator::Evaluator(HuntConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.budget == 0) {
    throw std::invalid_argument("hunt budget must be >= 1");
  }
  if (cfg_.healers.empty()) {
    throw std::invalid_argument("hunt needs at least one healer");
  }
  fitness_ = FitnessSpec::parse(cfg_.fitness);
  stretch_every_ = cfg_.stretch_every;
  if (stretch_every_ == 0 && fitness_.needs_stretch()) stretch_every_ = 8;
  // Validate the target grid eagerly -- family, sizes, healer specs --
  // with a throwaway scenario, so a typo fails before any search runs.
  base_spec({"strike:maxnodex1"}).validate();
  if (!cfg_.state_dir.empty()) {
    std::filesystem::create_directories(cfg_.state_dir);
    if (cfg_.resume) load_spool();
    const std::string path = spool_path(cfg_.state_dir);
    if (!cfg_.resume || !std::filesystem::exists(path)) {
      // Fresh spool: stamp the header.
      spool_.open(path, std::ios::trunc);
      spool_ << "dash-hunt-spool v1 " << config_hash() << "\n";
    } else {
      // Resumed: the loader already rewrote the file with only the
      // complete lines; append after them.
      spool_.open(path, std::ios::app);
    }
    spool_.flush();
    if (!spool_) {
      throw std::invalid_argument("cannot write hunt spool " + path);
    }
  }
}

exp::ExperimentSpec Evaluator::base_spec(
    std::vector<std::string> scenarios) const {
  exp::ExperimentSpec spec;
  spec.name = cfg_.name;
  spec.families = {cfg_.family};
  spec.sizes = {cfg_.n};
  spec.healers = cfg_.healers;
  spec.scenarios = std::move(scenarios);
  spec.instances = cfg_.instances;
  spec.seed = cfg_.seed;
  spec.ba_edges = cfg_.ba_edges;
  spec.stretch_every = stretch_every_;
  spec.labels = "spec";
  return spec;
}

std::vector<exp::Cell> Evaluator::cells_for(
    const AttackGenome& genome) const {
  return base_spec({genome.spec()}).enumerate();
}

std::string Evaluator::config_hash() const {
  std::string identity = "family=" + cfg_.family +
                         " n=" + std::to_string(cfg_.n) +
                         " ba_edges=" + std::to_string(cfg_.ba_edges) +
                         " instances=" + std::to_string(cfg_.instances) +
                         " seed=" + std::to_string(cfg_.seed) +
                         " stretch=" + std::to_string(stretch_every_) +
                         " fitness=" + fitness_.text + " healers=";
  for (const std::string& h : cfg_.healers) identity += h + ";";
  return hex64(fnv1a(identity));
}

double Evaluator::evaluate_one(const AttackGenome& genome) {
  return evaluate({genome}).front();
}

std::vector<double> Evaluator::evaluate(
    const std::vector<AttackGenome>& pop) {
  // Pass 1: admit new specs to the ledger while budget remains; collect
  // the ones that still need replays, deduped, in request order.
  std::vector<std::string> fresh;
  for (const AttackGenome& g : pop) {
    const std::string spec = g.spec();
    if (requested_.count(spec) != 0) continue;
    if (used_ >= cfg_.budget) continue;  // arrived too late: unscored
    Evaluated entry;
    entry.order = used_++;
    entry.genome = g;
    requested_.emplace(spec, std::move(entry));
    if (computed_.count(spec) == 0) fresh.push_back(spec);
  }
  if (!fresh.empty()) compute(fresh);

  // Pass 2: read every score out of the cache.
  std::vector<double> out;
  out.reserve(pop.size());
  for (const AttackGenome& g : pop) {
    const auto it = requested_.find(g.spec());
    if (it == requested_.end()) {
      out.push_back(kUnscored);
      continue;
    }
    Evaluated& entry = it->second;
    if (entry.groups.empty()) {
      const Score& score = computed_.at(g.spec());
      entry.fitness = score.fitness;
      entry.groups = score.groups;
    }
    out.push_back(entry.fitness);
  }
  return out;
}

void Evaluator::compute(const std::vector<std::string>& specs) {
  const exp::ExperimentSpec spec = base_spec(specs);
  // Cell enumeration is healer-major (family x n are singletons):
  // group index = healer * |specs| + spec.
  const std::vector<std::string> groups = cfg_.fleet_agents > 0
                                              ? run_fleet_grid(spec)
                                              : run_grid(spec);
  DASH_CHECK_MSG(groups.size() == cfg_.healers.size() * specs.size(),
                 "hunt grid returned a wrong-shaped group list");
  double batch_best = kUnscored;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    Score score;
    for (std::size_t h = 0; h < cfg_.healers.size(); ++h) {
      score.groups.push_back(groups[h * specs.size() + s]);
    }
    score.fitness = score_groups(score.groups);
    batch_best = std::max(batch_best, score.fitness);
    append_spool(specs[s], score);
    computed_[specs[s]] = std::move(score);
  }
  if (cfg_.progress) {
    cfg_.progress("evaluated " + std::to_string(specs.size()) +
                  " candidates (" + std::to_string(used_) + "/" +
                  std::to_string(cfg_.budget) + "), batch best " +
                  util::CsvWriter::to_field(batch_best));
  }
}

std::vector<std::string> Evaluator::run_grid(
    const exp::ExperimentSpec& spec) {
  exp::RunnerOptions opt;
  opt.threads = cfg_.threads;
  const std::vector<exp::CellResult> results = exp::run(spec, opt);
  std::vector<std::string> groups;
  groups.reserve(results.size());
  for (const exp::CellResult& r : results) groups.push_back(r.group_json);
  return groups;
}

std::vector<std::string> Evaluator::run_fleet_grid(
    const exp::ExperimentSpec& spec) {
  namespace fs = std::filesystem;
  // Each batch gets a throwaway fleet spool (the hunt spool is the
  // durable one); batches are sequential so the counter suffices.
  const std::string base =
      cfg_.state_dir.empty()
          ? (fs::temp_directory_path() / "dash_hunt_fleet").string()
          : cfg_.state_dir + "/fleet";
  const std::string dir = base + "_batch" + std::to_string(fleet_batch_++);
  fs::remove_all(dir);
  fleet::CoordinatorOptions copt;
  copt.state_dir = dir;
  copt.progress = [](const std::string&) {};
  fleet::Coordinator coord(spec, copt);
  const std::string endpoint = coord.endpoint().spec();
  std::vector<std::thread> agents;
  agents.reserve(cfg_.fleet_agents);
  for (std::size_t i = 0; i < cfg_.fleet_agents; ++i) {
    agents.emplace_back([&spec, endpoint, i]() {
      fleet::AgentOptions aopt;
      aopt.connect = endpoint;
      aopt.name = "hunt-agent-" + std::to_string(i);
      aopt.threads = 1;
      aopt.progress = [](const std::string&) {};
      try {
        fleet::run_agent(spec, aopt);
      } catch (...) {
        // A dying agent only slows the batch down; the coordinator
        // reassigns its lease and the grid still completes.
      }
    });
  }
  fleet::FleetReport report;
  try {
    report = coord.run();
  } catch (...) {
    for (std::thread& t : agents) t.join();
    throw;
  }
  for (std::thread& t : agents) t.join();
  std::error_code ec;
  fs::remove_all(dir, ec);
  if (!report.complete) {
    throw std::runtime_error("hunt fleet batch did not complete");
  }
  // Peel the merged document -- byte-identical to a sequential run --
  // back into its per-cell groups.
  static const std::string kPrefix = "{\"groups\":[";
  static const std::string kSuffix = "]}\n";
  DASH_CHECK_MSG(report.document.size() >= kPrefix.size() + kSuffix.size() &&
                     report.document.compare(0, kPrefix.size(), kPrefix) == 0,
                 "malformed fleet BENCH document");
  const std::string body = report.document.substr(
      kPrefix.size(),
      report.document.size() - kPrefix.size() - kSuffix.size());
  return split_objects(body);
}

double Evaluator::score_groups(
    const std::vector<std::string>& groups) const {
  double sum = 0.0;
  std::size_t runs = 0;
  for (const std::string& group : groups) {
    for (const std::string& run : split_objects(runs_body(group))) {
      double v = 0.0;
      if (fitness_.w_delta > 0.0) {
        v += fitness_.w_delta * run_number(run, "max_delta");
      }
      if (fitness_.w_stretch > 0.0) {
        v += fitness_.w_stretch * run_number(run, "max_stretch");
      }
      if (fitness_.w_disconnect > 0.0 && !run_stayed_connected(run)) {
        v += fitness_.w_disconnect *
             (1.0 + 1.0 / (1.0 + run_number(run, "deletions")));
      }
      sum += v;
      ++runs;
    }
  }
  return runs == 0 ? kUnscored : sum / static_cast<double>(runs);
}

std::vector<Evaluated> Evaluator::leaderboard(std::size_t k) const {
  std::vector<Evaluated> all;
  for (const auto& [spec, entry] : requested_) {
    if (!entry.groups.empty()) all.push_back(entry);
  }
  std::sort(all.begin(), all.end(),
            [](const Evaluated& a, const Evaluated& b) {
              if (a.fitness != b.fitness) return a.fitness > b.fitness;
              return a.order < b.order;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

void Evaluator::load_spool() {
  const std::string path = spool_path(cfg_.state_dir);
  std::ifstream in(path);
  if (!in) return;  // nothing to resume from: a fresh spool is fine
  std::string line;
  if (!std::getline(in, line)) return;
  const std::string header = "dash-hunt-spool v1 " + config_hash();
  if (line != header) {
    throw std::invalid_argument(
        "hunt spool " + path +
        " was written by a different hunt config; refusing to resume");
  }
  while (std::getline(in, line)) {
    // Resume contract (like shard files): a malformed *final* line --
    // an interrupted write -- is dropped silently.
    const std::size_t tab1 = line.find('\t');
    const std::size_t tab2 =
        tab1 == std::string::npos ? tab1 : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) continue;
    const std::string spec = line.substr(0, tab1);
    const std::string bits = line.substr(tab1 + 1, tab2 - tab1 - 1);
    if (bits.size() != 16) continue;
    std::uint64_t raw = 0;
    const auto [ptr, ec] =
        std::from_chars(bits.data(), bits.data() + bits.size(), raw, 16);
    if (ec != std::errc() || ptr != bits.data() + bits.size()) continue;
    Score score;
    score.fitness = std::bit_cast<double>(raw);
    std::size_t begin = tab2 + 1;
    while (begin <= line.size()) {
      const std::size_t sep = line.find(kGroupSep, begin);
      score.groups.push_back(line.substr(begin, sep - begin));
      if (sep == std::string::npos) break;
      begin = sep + 1;
    }
    if (score.groups.size() != cfg_.healers.size()) continue;
    computed_[spec] = std::move(score);
  }
  in.close();
  // Rewrite with only the lines that survived, so appends never land
  // after a torn tail.
  std::ofstream out(path, std::ios::trunc);
  out << header << "\n";
  for (const auto& [spec, score] : computed_) {
    out << spec << '\t' << hex64(std::bit_cast<std::uint64_t>(score.fitness))
        << '\t';
    for (std::size_t i = 0; i < score.groups.size(); ++i) {
      if (i) out << kGroupSep;
      out << score.groups[i];
    }
    out << "\n";
  }
}

void Evaluator::append_spool(const std::string& spec, const Score& score) {
  if (!spool_.is_open()) return;
  spool_ << spec << '\t'
         << hex64(std::bit_cast<std::uint64_t>(score.fitness)) << '\t';
  for (std::size_t i = 0; i < score.groups.size(); ++i) {
    if (i) spool_ << kGroupSep;
    spool_ << score.groups[i];
  }
  spool_ << "\n";
  spool_.flush();
}

}  // namespace dash::hunt
