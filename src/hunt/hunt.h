// hunt.h -- the adversary search engine's one-call driver.
//
// run_hunt() wires the pieces together: an Evaluator (fitness harness
// + budget ledger, evaluator.h), a SearchStrategy (strategy.h), and
// artifact emission. It returns -- and writes -- two things:
//
//   * A leaderboard document in BENCH format (HUNT_*.json): the top-k
//     candidates' groups, each stamped with "rank" and "fitness"
//     labels, so every plotting / comparison tool that reads BENCH
//     output reads hunt output unchanged.
//
//   * The best-k schedules as replayable traces: each winner is
//     re-recorded through replay::RecorderSink by reproducing the
//     exact RNG stream of its evaluation cell's instance 0, so the
//     emitted trace replays bit-identically standalone (`dash_lab
//     replay`) *and* reproduces the scored run when loaded back into a
//     grid cell via `scenario=trace:<file>` with the same seed.
//
// level_attack_baseline() plays the paper's hand-derived Algorithm-2
// adversary (attack::LevelAttack) so a hunt's fitness can be compared
// against the analytical lower-bound construction at the same n.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hunt/evaluator.h"

namespace dash::hunt {

/// One leaderboard entry as surfaced to callers.
struct HuntBest {
  std::size_t rank = 0;  ///< 1-based
  AttackGenome genome;
  double fitness = 0.0;
  std::string trace_path;  ///< empty when trace emission was off
};

struct HuntResult {
  std::vector<HuntBest> best;      ///< top-k, best first
  std::size_t evaluations = 0;     ///< distinct genomes scored
  std::string leaderboard_json;    ///< BENCH document with rank/fitness
  std::string leaderboard_path;    ///< written file; empty when not persisted
};

/// Search cfg.budget distinct genomes with cfg.strategy, then emit the
/// leaderboard (written to <state_dir>/HUNT_<name>.json when state_dir
/// is set) and the best-k traces (into trace_dir, falling back to
/// state_dir; skipped when both are empty). Deterministic in cfg: the
/// same config produces byte-identical artifacts whether evaluations
/// ran sequentially, on a ThreadPool, or across fleet agents.
HuntResult run_hunt(const HuntConfig& cfg);

/// The analytical adversary's score, for baseline comparison.
struct LevelBaseline {
  std::size_t nodes = 0;   ///< tree size actually used (<= requested n)
  std::size_t depth = 0;
  std::uint32_t m = 0;
  double fitness = 0.0;    ///< max_delta the LevelAttack run achieved
};

/// Play attack::LevelAttack against the m-degree-bounded healer on the
/// largest complete (m+2)-ary tree with at most n nodes. Throws
/// std::invalid_argument when n cannot hold a depth-1 tree (n < m+3).
LevelBaseline level_attack_baseline(std::size_t n, std::uint32_t m,
                                    std::uint64_t seed);

}  // namespace dash::hunt
