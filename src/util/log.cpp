#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace dash::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, const std::string& message) {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[%10.3f] %s %s\n",
               static_cast<double>(now) / 1000.0, level_name(level),
               message.c_str());
}

}  // namespace dash::util
