// table.h -- aligned plain-text tables, used by the figure-reproduction
// benches to print the same series the paper plots.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dash::util {

/// Accumulates rows of string cells and prints them column-aligned.
/// Numeric helpers format with a fixed number of decimals so series are
/// easy to eyeball against the paper's charts.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& begin_row();
  Table& cell(const std::string& value);
  Table& cell(const char* value) { return cell(std::string(value)); }
  Table& cell(double value, int decimals = 2);
  Table& cell(std::size_t value) { return cell(std::to_string(value)); }
  Table& cell(int value) { return cell(std::to_string(value)); }
  Table& cell(long value) { return cell(std::to_string(value)); }
  Table& cell(unsigned value) { return cell(std::to_string(value)); }

  std::size_t num_rows() const { return rows_.size(); }

  /// Render with a separator rule under the header.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dash::util
