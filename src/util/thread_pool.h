// thread_pool.h -- fixed-size worker pool used to run independent
// experiment instances in parallel (each instance owns a forked RNG
// stream, so results are identical regardless of worker count).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dash::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the returned future rethrows any task exception.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dash::util
