// thread_pool.h -- fixed-size worker pool used to run independent
// experiment instances in parallel (each instance owns a forked RNG
// stream, so results are identical regardless of worker count).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace dash::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency() (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Tasks currently waiting in the queue (not yet claimed by a
  /// worker). Test/diagnostic hook.
  std::size_t queue_depth() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

  /// Enqueue a task; the returned future rethrows any task exception.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.push_back({[task] { (*task)(); }, 0});
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, count) across the pool and wait for all.
  /// Exceptions from tasks are rethrown (the first one encountered).
  /// The calling thread participates in the work, so the call is safe
  /// (and makes progress) even from inside a pool task -- nested
  /// parallel_for cannot deadlock on occupied workers.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  /// Queued work unit. `tag` groups the helper runners of one
  /// parallel_for call (0 = plain submit) so the call can erase its
  /// still-pending helpers once every index is done -- a nested
  /// parallel_for whose caller-runner drained the whole range would
  /// otherwise leave its helpers parked in the queue (as no-op
  /// closures pinning the copied fn) until the outer tasks finish.
  struct Task {
    std::function<void()> fn;
    std::uint64_t tag;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t next_tag_ = 0;  ///< guarded by mu_
  bool stop_ = false;
};

}  // namespace dash::util
