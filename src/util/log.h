// log.h -- minimal leveled logging to stderr. Benches use INFO for
// progress lines; tests run at WARN to keep ctest output clean.
#pragma once

#include <sstream>
#include <string>

namespace dash::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Thread-safe write of one formatted log line (timestamped).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace dash::util

#define DASH_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::dash::util::log_level())) \
    ;                                                        \
  else                                                       \
    ::dash::util::detail::LogStream(level)

#define DASH_LOG_INFO DASH_LOG(::dash::util::LogLevel::kInfo)
#define DASH_LOG_WARN DASH_LOG(::dash::util::LogLevel::kWarn)
#define DASH_LOG_DEBUG DASH_LOG(::dash::util::LogLevel::kDebug)
