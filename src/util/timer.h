// timer.h -- wall-clock helpers for coarse experiment timing.
#pragma once

#include <chrono>

namespace dash::util {

/// Simple stopwatch; starts running on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace dash::util
