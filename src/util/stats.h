// stats.h -- summary statistics for experiment series.
//
// Everything the figure-reproduction harness reports flows through
// Summary (batch) or OnlineStats (streaming, Welford). Both are exact in
// the sense of using numerically stable accumulation.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dash::util {

/// Batch summary of a sample: order statistics plus moments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;

  /// Half-width of the normal-approximation 95% confidence interval of
  /// the mean (1.96 * stddev / sqrt(n)); 0 when count < 2.
  double ci95_halfwidth() const;

  std::string to_string() const;
};

/// Compute the batch summary of `xs`. Empty input yields a zero Summary.
Summary summarize(const std::vector<double>& xs);

/// Linear-interpolation quantile (type-7, the numpy default). q in [0,1].
double quantile(std::vector<double> xs, double q);

/// Streaming mean/variance via Welford's algorithm; O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance; 0 when n < 2
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  void merge(const OnlineStats& other);  ///< parallel-combine two streams

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Least-squares slope of y against x; used to sanity-check growth rates
/// (e.g. "max degree increase grows ~ c*log n" => slope of y vs log2(n)).
double linear_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dash::util
