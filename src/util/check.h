// check.h -- lightweight runtime-check macros used across the library.
//
// DASH_CHECK is always on (it guards logic errors that would silently
// corrupt an experiment); DASH_DCHECK compiles out in NDEBUG builds and is
// used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dash::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "DASH_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " -- " : "", msg);
  std::abort();
}

}  // namespace dash::util

#define DASH_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::dash::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DASH_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::dash::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define DASH_DCHECK(expr) ((void)0)
#else
#define DASH_DCHECK(expr) DASH_CHECK(expr)
#endif
