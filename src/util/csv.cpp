#include "util/csv.h"

#include <charconv>

#include "util/check.h"

namespace dash::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  DASH_CHECK(columns_ > 0);
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_field(double v) {
  // std::to_chars, not snprintf: %g consults LC_NUMERIC, so a host
  // locale with a comma decimal point would corrupt every CSV and
  // BENCH document. to_chars(general, 10) is specified as printf
  // "%.10g" in the C locale -- byte-identical output, always.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v,
                                       std::chars_format::general, 10);
  DASH_CHECK(ec == std::errc{});
  return std::string(buf, end);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  DASH_CHECK_MSG(fields.size() == columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace dash::util
