// csv.h -- minimal RFC-4180-style CSV emission for experiment results.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dash::util {

/// Writes rows to an ostream, quoting fields only when required.
/// Column count is fixed by the header; writing a row of a different
/// width is a checked error (it would silently misalign downstream
/// plotting scripts otherwise).
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: format arithmetic values with full precision.
  template <typename... Ts>
  void write(const Ts&... vals) {
    write_row({to_field(vals)...});
  }

  std::size_t rows_written() const { return rows_; }

  static std::string escape(const std::string& field);
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(const char* s) { return s; }
  static std::string to_field(double v);
  static std::string to_field(std::size_t v) { return std::to_string(v); }
  static std::string to_field(int v) { return std::to_string(v); }
  static std::string to_field(long v) { return std::to_string(v); }
  static std::string to_field(unsigned v) { return std::to_string(v); }
  static std::string to_field(unsigned long long v) {
    return std::to_string(v);
  }

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace dash::util
