// cli.h -- tiny declarative command-line option parser for the bench and
// example binaries. Supports `--name value`, `--name=value`, and boolean
// flags; prints a generated usage text on --help or parse error.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dash::util {

class Options {
 public:
  explicit Options(std::string program_description);

  /// Register options; `target` must outlive parse().
  void add_flag(const std::string& name, bool* target,
                const std::string& help);
  void add_int(const std::string& name, std::int64_t* target,
               const std::string& help);
  void add_uint(const std::string& name, std::uint64_t* target,
                const std::string& help);
  void add_double(const std::string& name, double* target,
                  const std::string& help);
  void add_string(const std::string& name, std::string* target,
                  const std::string& help);

  /// Parse argv. Returns false (after printing usage) if --help was given
  /// or an unknown/malformed option was seen; callers should exit(0)/(2).
  bool parse(int argc, char** argv);

  std::string usage() const;
  bool help_requested() const { return help_requested_; }

 private:
  struct Opt {
    std::string name;
    std::string help;
    std::string kind;
    std::function<bool(const std::string&)> assign;
    bool is_flag = false;
    std::string default_repr;
  };

  const Opt* find(const std::string& name) const;

  std::string description_;
  std::string program_name_ = "prog";
  std::vector<Opt> opts_;
  bool help_requested_ = false;
};

}  // namespace dash::util
