// ascii_plot.h -- terminal line charts for the figure-reproduction
// benches: the same series the paper plots, drawn as ASCII so "the
// figure" is visible directly in the bench output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dash::util {

struct Series {
  std::string label;
  std::vector<double> y;  ///< one value per x position
};

struct PlotOptions {
  std::size_t width = 64;   ///< plot area columns (x positions spread)
  std::size_t height = 16;  ///< plot area rows
  bool log_y = false;       ///< log-scale the y axis (values must be > 0)
};

/// Render all series on shared axes. `x_labels` has one entry per x
/// position (every series must have x_labels.size() points). Each
/// series is drawn with its own marker character (1st = 'A', ...), with
/// a legend underneath.
void ascii_plot(std::ostream& out, const std::vector<std::string>& x_labels,
                const std::vector<Series>& series,
                const PlotOptions& options = {});

}  // namespace dash::util
