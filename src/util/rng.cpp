#include "util/rng.h"

// Header-only; this translation unit exists so the target has a stable
// archive member and so future out-of-line additions have a home.
