// registry.h -- one uniform name->factory registry for every pluggable
// strategy family (healers, attackers, ...).
//
// A registry entry is looked up by a *spec string*: either a bare name
// ("dash") or a name with a parameter after a colon ("capped:2",
// "sdash:4"). Lookup is case-insensitive; entries may declare aliases
// ("btree" for "binarytree"). Unknown names throw std::invalid_argument
// whose message lists every registered spelling, so CLI users see what
// is available instead of a bare "unknown name".
//
// Extra construction inputs that are not part of the spec (e.g. the RNG
// seed an attack strategy needs) are the Args... pack, forwarded from
// create() to the entry's factory.
#pragma once

#include <algorithm>
#include <cctype>
#include <charconv>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace dash::util {

/// Split "name:param" at the first ':' into {name, param}; has_param
/// distinguishes a bare "name" from a trailing-colon "name:" (the
/// latter is a malformed spec, rejected by Registry::create). The name
/// half is lowercased.
struct SpecParts {
  std::string name;
  std::string param;
  bool has_param = false;
};

inline SpecParts split_spec(const std::string& spec) {
  SpecParts out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (colon != std::string::npos) {
    out.param = spec.substr(colon + 1);
    out.has_param = true;
  }
  std::transform(out.name.begin(), out.name.end(), out.name.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

/// Parse the parameter half of a spec as an unsigned integer no larger
/// than `max_value`, with an actionable error naming the entry
/// ("capped") and the bad input. std::from_chars with a digits-only
/// precheck: locale-independent (stoul honoured LC_NUMERIC grouping),
/// and it rejects "-1" (which stoul silently wraps to a huge value)
/// and leading whitespace; the bound keeps narrower call sites (uint32
/// strategy parameters) from silently wrapping at their static_cast.
inline unsigned long parse_spec_uint(
    const std::string& name, const std::string& param,
    unsigned long max_value = std::numeric_limits<unsigned long>::max()) {
  const bool digits_only =
      !param.empty() &&
      std::all_of(param.begin(), param.end(),
                  [](unsigned char c) { return std::isdigit(c); });
  unsigned long value = 0;
  const auto [end, ec] =
      std::from_chars(param.data(), param.data() + param.size(), value);
  if (!digits_only || ec != std::errc{} ||
      end != param.data() + param.size() || value > max_value) {
    throw std::invalid_argument("bad parameter for '" + name + "': '" +
                                param + "' (expected an unsigned integer" +
                                (max_value <
                                         std::numeric_limits<
                                             unsigned long>::max()
                                     ? " <= " + std::to_string(max_value)
                                     : "") +
                                ")");
  }
  return value;
}

template <typename T, typename... Args>
class Registry {
 public:
  /// Factory receives the spec's parameter half ("" when absent) plus
  /// the registry's extra construction inputs.
  using Factory =
      std::function<std::unique_ptr<T>(const std::string& param, Args...)>;

  /// `kind` names the family in error messages ("healing strategy").
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Register a factory under `name` (plus optional aliases). `display`
  /// is the spelling shown in names()/--help lists; defaults to `name`,
  /// parameterized entries should pass e.g. "capped:<M>". Registering a
  /// name twice throws std::logic_error (two subsystems fighting over a
  /// name is a programming error worth failing loudly on) and leaves
  /// the registry unchanged.
  void add(const std::string& name, Factory factory,
           std::vector<std::string> aliases = {},
           std::string display = "") {
    // Validate every spelling before mutating anything, so a rejected
    // registration cannot leave a half-registered entry behind.
    std::vector<std::string> keys;
    keys.push_back(split_spec(name).name);
    for (const auto& alias : aliases) keys.push_back(split_spec(alias).name);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const bool dup_in_call =
          std::find(keys.begin(), keys.begin() + i, keys[i]) !=
          keys.begin() + i;
      if (dup_in_call || entries_.count(keys[i]) != 0) {
        throw std::logic_error("duplicate " + kind_ + " registration: '" +
                               keys[i] + "'");
      }
    }
    for (const auto& key : keys) entries_.emplace(key, factory);
    displays_.push_back(display.empty() ? name : std::move(display));
    aliases_.insert(aliases_.end(), aliases.begin(), aliases.end());
  }

  bool contains(const std::string& spec) const {
    return entries_.count(split_spec(spec).name) != 0;
  }

  /// Construct from a spec string; throws std::invalid_argument for an
  /// unknown name (listing every registered spelling) or a malformed
  /// spec like "name:" whose parameter is empty.
  std::unique_ptr<T> create(const std::string& spec, Args... args) const {
    const SpecParts parts = split_spec(spec);
    const auto it = entries_.find(parts.name);
    if (it == entries_.end()) {
      throw std::invalid_argument("unknown " + kind_ + ": '" + spec +
                                  "' (registered: " + joined_names() + ")");
    }
    if (parts.has_param && parts.param.empty()) {
      throw std::invalid_argument("empty parameter in " + kind_ +
                                  " spec: '" + spec + "'");
    }
    return it->second(parts.param, std::forward<Args>(args)...);
  }

  /// Display spellings in registration order (for --help texts).
  std::vector<std::string> names() const { return displays_; }

 private:
  std::string joined_names() const {
    std::string out;
    for (const auto& d : displays_) {
      if (!out.empty()) out += ", ";
      out += d;
    }
    if (!aliases_.empty()) {
      out += "; aliases: ";
      for (std::size_t i = 0; i < aliases_.size(); ++i) {
        if (i > 0) out += ", ";
        out += aliases_[i];
      }
    }
    return out;
  }

  std::string kind_;
  std::map<std::string, Factory> entries_;
  std::vector<std::string> displays_;
  std::vector<std::string> aliases_;
};

/// Registers an entry at static-initialization time:
///   static Registrar<HealingStrategy> reg(my_registry(), "mine", ...);
/// Prefer lazy registration inside the registry accessor for entries
/// that live in a static library (the linker may drop unreferenced
/// registrar objects); this helper is for application-level plugins.
template <typename T, typename... Args>
class Registrar {
 public:
  Registrar(Registry<T, Args...>& registry, const std::string& name,
            typename Registry<T, Args...>::Factory factory,
            std::vector<std::string> aliases = {},
            std::string display = "") {
    registry.add(name, std::move(factory), std::move(aliases),
                 std::move(display));
  }
};

}  // namespace dash::util
