#include "util/cli.h"

#include <charconv>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace dash::util {

namespace {

// All three parse with std::from_chars: locale-independent (the strto*
// family honours LC_NUMERIC, so "--rate 0.3" would fail under a
// comma-decimal locale), no errno, and whole-string strictness falls
// out of the end-pointer check.

bool parse_i64(const std::string& s, std::int64_t* out) {
  std::int64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size() || s.empty()) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t* out) {
  std::uint64_t v = 0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size() || s.empty()) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_f64(const std::string& s, double* out) {
  double v = 0.0;
  const auto [end, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size() || s.empty()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

Options::Options(std::string program_description)
    : description_(std::move(program_description)) {}

const Options::Opt* Options::find(const std::string& name) const {
  for (const auto& o : opts_)
    if (o.name == name) return &o;
  return nullptr;
}

void Options::add_flag(const std::string& name, bool* target,
                       const std::string& help) {
  DASH_CHECK(find(name) == nullptr);
  opts_.push_back({name, help, "flag",
                   [target](const std::string& v) {
                     if (v == "" || v == "true" || v == "1") {
                       *target = true;
                     } else if (v == "false" || v == "0") {
                       *target = false;
                     } else {
                       return false;
                     }
                     return true;
                   },
                   true, *target ? "true" : "false"});
}

void Options::add_int(const std::string& name, std::int64_t* target,
                      const std::string& help) {
  DASH_CHECK(find(name) == nullptr);
  opts_.push_back({name, help, "int",
                   [target](const std::string& v) {
                     return parse_i64(v, target);
                   },
                   false, std::to_string(*target)});
}

void Options::add_uint(const std::string& name, std::uint64_t* target,
                       const std::string& help) {
  DASH_CHECK(find(name) == nullptr);
  opts_.push_back({name, help, "uint",
                   [target](const std::string& v) {
                     return parse_u64(v, target);
                   },
                   false, std::to_string(*target)});
}

void Options::add_double(const std::string& name, double* target,
                         const std::string& help) {
  DASH_CHECK(find(name) == nullptr);
  opts_.push_back({name, help, "float",
                   [target](const std::string& v) {
                     return parse_f64(v, target);
                   },
                   false, std::to_string(*target)});
}

void Options::add_string(const std::string& name, std::string* target,
                         const std::string& help) {
  DASH_CHECK(find(name) == nullptr);
  opts_.push_back({name, help, "string",
                   [target](const std::string& v) {
                     *target = v;
                     return true;
                   },
                   false, *target});
}

std::string Options::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nUsage: " << program_name_ << " [options]\n";
  for (const auto& o : opts_) {
    os << "  --" << o.name;
    if (!o.is_flag) os << " <" << o.kind << ">";
    os << "\n      " << o.help << " (default: " << o.default_repr << ")\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

bool Options::parse(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const Opt* opt = find(arg);
    if (opt == nullptr) {
      std::fprintf(stderr, "unknown option '--%s'\n%s", arg.c_str(),
                   usage().c_str());
      return false;
    }
    if (!opt->is_flag && !has_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option '--%s' requires a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
      has_value = true;
    }
    if (!opt->assign(value)) {
      std::fprintf(stderr, "bad value '%s' for option '--%s' (%s)\n",
                   value.c_str(), arg.c_str(), opt->kind.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace dash::util
