#include "util/table.h"

#include <algorithm>
#include <charconv>

#include "util/check.h"

namespace dash::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DASH_CHECK(!header_.empty());
}

Table& Table::begin_row() {
  DASH_CHECK_MSG(rows_.empty() || rows_.back().size() == header_.size(),
                 "previous table row is incomplete");
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  DASH_CHECK_MSG(!rows_.empty(), "cell() before begin_row()");
  DASH_CHECK_MSG(rows_.back().size() < header_.size(), "too many cells");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(double value, int decimals) {
  // to_chars(fixed, decimals) == printf "%.*f" in the C locale; the
  // locale-sensitive snprintf would print "0,06" under comma-decimal
  // locales.
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                       std::chars_format::fixed, decimals);
  DASH_CHECK(ec == std::errc{});
  return cell(std::string(buf, end));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
        out << ' ';
    }
    out << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace dash::util
