#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace dash::util {

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  DASH_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;

  OnlineStats on;
  for (double x : xs) on.add(x);
  s.mean = on.mean();
  s.stddev = on.stddev();
  s.min = on.min();
  s.max = on.max();
  s.median = quantile(xs, 0.5);
  s.q25 = quantile(xs, 0.25);
  s.q75 = quantile(xs, 0.75);
  return s;
}

double Summary::ci95_halfwidth() const {
  if (count < 2) return 0.0;
  return 1.96 * stddev / std::sqrt(static_cast<double>(count));
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev
     << " min=" << min << " med=" << median << " max=" << max;
  return os.str();
}

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  DASH_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace dash::util
