#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "util/check.h"

namespace dash::util {

void ascii_plot(std::ostream& out, const std::vector<std::string>& x_labels,
                const std::vector<Series>& series,
                const PlotOptions& options) {
  DASH_CHECK(!x_labels.empty());
  DASH_CHECK(!series.empty());
  for (const auto& s : series) {
    DASH_CHECK_MSG(s.y.size() == x_labels.size(),
                   "series length must match x labels");
  }
  const std::size_t width = std::max<std::size_t>(options.width, 8);
  const std::size_t height = std::max<std::size_t>(options.height, 4);

  auto transform = [&options](double v) {
    if (!options.log_y) return v;
    DASH_CHECK_MSG(v > 0.0, "log-scale plot needs positive values");
    return std::log10(v);
  };

  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (double v : s.y) {
      lo = std::min(lo, transform(v));
      hi = std::max(hi, transform(v));
    }
  }
  if (hi <= lo) hi = lo + 1.0;  // flat data: give it a band

  // Grid of characters, row 0 = top.
  std::vector<std::string> grid(height, std::string(width, ' '));
  const std::size_t points = x_labels.size();
  auto col_of = [&](std::size_t i) {
    return points == 1 ? 0
                       : i * (width - 1) / (points - 1);
  };
  auto row_of = [&](double v) {
    const double t = (transform(v) - lo) / (hi - lo);
    const auto r = static_cast<std::size_t>(
        std::lround(t * static_cast<double>(height - 1)));
    return height - 1 - std::min(r, height - 1);
  };

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = static_cast<char>('A' + (si % 26));
    const auto& y = series[si].y;
    // Connect consecutive points with interpolated marks, then stamp
    // the data points on top so overlaps resolve to the later series.
    for (std::size_t i = 0; i + 1 < points; ++i) {
      const std::size_t c0 = col_of(i), c1 = col_of(i + 1);
      for (std::size_t c = c0; c <= c1; ++c) {
        const double frac =
            c1 == c0 ? 0.0
                     : static_cast<double>(c - c0) /
                           static_cast<double>(c1 - c0);
        const double v = y[i] + (y[i + 1] - y[i]) * frac;
        auto& cell = grid[row_of(v)][c];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < points; ++i) {
      grid[row_of(y[i])][col_of(i)] = mark;
    }
  }

  // Render with a y-axis scale.
  char buf[32];
  for (std::size_t r = 0; r < height; ++r) {
    const double frac =
        static_cast<double>(height - 1 - r) / static_cast<double>(height - 1);
    double v = lo + frac * (hi - lo);
    if (options.log_y) v = std::pow(10.0, v);
    std::snprintf(buf, sizeof buf, "%9.2f |", v);
    out << buf << grid[r] << '\n';
  }
  out << std::string(10, ' ') << '+' << std::string(width, '-') << '\n';
  // X labels: first, middle, last.
  out << std::string(11, ' ');
  const std::string& first = x_labels.front();
  const std::string& last = x_labels.back();
  out << first;
  if (points > 2) {
    const std::string& mid = x_labels[points / 2];
    const std::size_t mid_col = col_of(points / 2);
    if (mid_col > first.size() + 1) {
      out << std::string(mid_col - first.size(), ' ') << mid;
    }
  }
  const std::size_t used =
      first.size() +
      (points > 2 ? x_labels[points / 2].size() +
                        (col_of(points / 2) > first.size() + 1
                             ? col_of(points / 2) - first.size()
                             : 0)
                  : 0);
  if (width > used + last.size()) {
    out << std::string(width - used - last.size(), ' ') << last;
  }
  out << '\n';

  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << static_cast<char>('A' + (si % 26)) << " = "
        << series[si].label << '\n';
  }
}

}  // namespace dash::util
