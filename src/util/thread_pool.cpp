#include "util/thread_pool.h"

#include <algorithm>

namespace dash::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front().fn);
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  // Indices are claimed from a shared atomic by "runner" loops: up to
  // size() runners are queued for the workers and the CALLER runs one
  // inline. Caller participation makes the call reentrancy-safe --
  // invoked from inside a pool task (a worker), the caller-runner
  // alone drains every index, so no cyclic wait on occupied workers
  // can deadlock (the old one-task-per-index + future::get formulation
  // did exactly that).
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t count;
    std::function<void(std::size_t)> fn;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<State>();
  state->count = count;
  state->fn = fn;

  const auto runner = [state] {
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= state->count) return;
      try {
        state->fn(i);
      } catch (...) {
        std::lock_guard lock(state->mu);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1) + 1 == state->count) {
        std::lock_guard lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(workers_.size(), count);
  std::uint64_t tag;
  {
    std::lock_guard lock(mu_);
    tag = ++next_tag_;
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back({runner, tag});
  }
  cv_.notify_all();

  runner();  // the caller claims indices too
  {
    std::unique_lock lock(state->mu);
    state->cv.wait(lock, [&] { return state->done.load() == count; });
  }
  {
    // Every index is done: erase this call's still-queued helpers so a
    // nested invocation (workers occupied, caller-runner drained the
    // whole range) doesn't pile dead closures into the queue for the
    // lifetime of the outer run.
    std::lock_guard lock(mu_);
    std::erase_if(queue_, [tag](const Task& t) { return t.tag == tag; });
  }
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace dash::util
