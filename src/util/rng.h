// rng.h -- deterministic, fast pseudo-random number generation.
//
// Experiments must be exactly reproducible from a single 64-bit seed, so we
// avoid std::mt19937 (whose distributions are implementation-defined) and
// implement xoshiro256** seeded via splitmix64, plus bias-free bounded
// integers (Lemire's method) and the distributions the library needs.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace dash::util {

/// splitmix64: used to expand one 64-bit seed into generator state.
/// Passes BigCrush as a 64-bit mixer; recommended by the xoshiro authors.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Small state, excellent quality,
/// and -- unlike std::mt19937 -- identical streams on every platform.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initialize the stream from a single 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Bitmask rejection sampling; exactly uniform, no 128-bit arithmetic.
  std::uint64_t below(std::uint64_t bound) {
    DASH_CHECK(bound > 0);
    if (bound == 1) return 0;
    // Smallest all-ones mask covering bound-1.
    std::uint64_t mask = bound - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    for (;;) {
      const std::uint64_t candidate = next_u64() & mask;
      if (candidate < bound) return candidate;
    }
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t in_range(std::int64_t lo, std::int64_t hi) {
    DASH_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle of an entire vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    DASH_CHECK(!v.empty());
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Fork an independent child stream; children with distinct tags are
  /// statistically independent of the parent and of each other. Used to
  /// give each experiment instance its own stream.
  Rng fork(std::uint64_t tag) {
    std::uint64_t mix = next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL);
    return Rng(splitmix64(mix));
  }

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace dash::util
