// distributed_dash.h -- DASH as a distributed protocol over a
// synchronous round-based message-passing network.
//
// The sequential engine (core/) applies Algorithm 1 atomically; this
// module executes it the way the paper argues it runs in a real
// overlay, and measures the latency/message claims of Theorem 1:
//
//   * round t:   the adversary deletes v;
//   * round t+1: every surviving neighbor of v detects the failure.
//     Using neighbor-of-neighbor (NoN) state -- each node knows, for
//     every neighbor w, w's component id, delta, initial id and whether
//     w was a G'-neighbor of v -- all members of the reconnection set
//     compute the *same* reconstruction tree locally and attach their
//     incident edges. Reconnection latency is therefore O(1) rounds
//     (Lemma 7), and we assert it.
//   * rounds t+2...: min-id flooding. A node whose component id
//     decreased in the previous round sends its new id to all its
//     G-neighbors (these are the messages Lemma 8 counts); only
//     G'-neighbors adopt a smaller id (component identity must not leak
//     across G'-component boundaries). Flooding quiesces when no id
//     changed; the number of rounds is the propagation latency that
//     Lemma 9 bounds by O(log n) amortized.
//
// The engine's per-node state is exactly what a node can maintain
// locally under the paper's NoN assumption; no global state is read
// during healing decisions.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dash::sim {

using graph::Graph;
using graph::NodeId;

struct SimMetrics {
  /// Flooding rounds needed after each deletion (index = deletion).
  std::vector<std::uint32_t> propagation_rounds;
  /// Reconnection latency per deletion; always 1 round by construction.
  std::vector<std::uint32_t> reconnect_rounds;
  std::uint64_t total_messages = 0;
  std::vector<std::uint64_t> messages_per_node;  ///< sent + received
  std::vector<std::uint32_t> id_changes_per_node;

  std::uint64_t max_messages_per_node() const;
  std::uint32_t max_id_changes() const;
  double mean_propagation_rounds() const;
  std::uint32_t max_propagation_rounds() const;
};

/// Which local reconnection rule the node agents apply. Both are pure
/// functions of NoN state, so either runs at O(1) reconnection latency.
enum class SimHealPolicy {
  kDash,   ///< Algorithm 1: delta-ordered complete binary tree
  kSdash,  ///< Algorithm 3: surrogate star when the budget allows
};

class DistributedDashSim {
 public:
  /// Takes ownership of the time-0 network. `rng` drives the initial
  /// id permutation; using the same seed stream as a sequential
  /// core::HealingState yields bit-identical ids (the equivalence tests
  /// rely on this).
  ///
  /// `max_message_delay` models asynchrony: each flooded id-update is
  /// delivered after a uniform delay in [1, max_message_delay] rounds.
  /// 1 (default) is the paper's synchronous model. Because min-id
  /// gossip is monotone (receivers only ever adopt smaller ids), the
  /// fixed point is delay-independent -- only the latency grows; the
  /// tests assert both facts.
  DistributedDashSim(Graph g, dash::util::Rng& rng,
                     std::uint32_t max_message_delay = 1,
                     SimHealPolicy policy = SimHealPolicy::kDash);

  /// Delete v and run the distributed heal to quiescence.
  /// Returns the number of simulated rounds consumed (detection +
  /// reconnection + flooding).
  std::uint32_t delete_and_heal(NodeId v);

  const Graph& network() const { return g_; }
  Graph& mutable_network() { return g_; }
  const SimMetrics& metrics() const { return metrics_; }

  std::uint64_t component_id(NodeId v) const { return comp_id_[v]; }
  std::uint64_t initial_id(NodeId v) const { return initial_id_[v]; }
  /// Net degree change vs the initial degree (same convention as
  /// core::HealingState::delta).
  std::int32_t delta(NodeId v) const { return delta_[v]; }
  /// Max over time and nodes of delta; never negative.
  std::uint32_t max_delta() const {
    return static_cast<std::uint32_t>(max_delta_ever_);
  }
  const std::vector<NodeId>& forest_neighbors(NodeId v) const {
    return forest_adj_[v];
  }

 private:
  /// The deterministic local computation every reconnection-set member
  /// performs from NoN state: UN(v,G) u N(v,G') sorted by (delta,
  /// initial id).
  std::vector<NodeId> compute_reconnection_set(
      const std::vector<NodeId>& neighbors_g,
      const std::vector<NodeId>& forest_neighbors,
      std::uint64_t deleted_component_id) const;

  /// Synchronous min-id flooding from the freshly merged tree; returns
  /// rounds until quiescence and accounts messages.
  std::uint32_t flood_min_id(const std::vector<NodeId>& seeds);

  Graph g_;
  std::vector<std::uint64_t> initial_id_;
  std::vector<std::uint64_t> comp_id_;
  std::vector<std::int32_t> delta_;
  std::vector<std::vector<NodeId>> forest_adj_;
  std::int32_t max_delta_ever_ = 0;
  std::uint32_t max_message_delay_ = 1;
  SimHealPolicy policy_ = SimHealPolicy::kDash;
  dash::util::Rng delay_rng_{0};
  SimMetrics metrics_;
};

/// The standard distributed schedule every sim bench runs: delete the
/// current max-degree node (the MaxNode adversary) and heal, until one
/// node remains or `max_deletions` is hit. `on_deletion(deletions)`
/// fires after each deletion for progress reporting and may return
/// false to stop the schedule early (fail-fast on a detected anomaly);
/// pass nullptr when not needed. Returns the number of deletions
/// performed. The sequential engine's equivalent workload is the
/// scenario "targeted:maxnode".
std::size_t run_max_degree_attack(
    DistributedDashSim& sim,
    std::size_t max_deletions = static_cast<std::size_t>(-1),
    const std::function<bool(std::size_t)>& on_deletion = nullptr);

}  // namespace dash::sim
