#include "sim/distributed_dash.h"

#include <algorithm>
#include <numeric>

#include "core/reconstruction_tree.h"
#include "graph/metrics.h"
#include "util/check.h"

namespace dash::sim {

std::uint64_t SimMetrics::max_messages_per_node() const {
  std::uint64_t best = 0;
  for (auto m : messages_per_node) best = std::max(best, m);
  return best;
}

std::uint32_t SimMetrics::max_id_changes() const {
  std::uint32_t best = 0;
  for (auto c : id_changes_per_node) best = std::max(best, c);
  return best;
}

double SimMetrics::mean_propagation_rounds() const {
  if (propagation_rounds.empty()) return 0.0;
  const auto total = std::accumulate(propagation_rounds.begin(),
                                     propagation_rounds.end(), 0ULL);
  return static_cast<double>(total) /
         static_cast<double>(propagation_rounds.size());
}

std::uint32_t SimMetrics::max_propagation_rounds() const {
  std::uint32_t best = 0;
  for (auto r : propagation_rounds) best = std::max(best, r);
  return best;
}

DistributedDashSim::DistributedDashSim(Graph g, dash::util::Rng& rng,
                                       std::uint32_t max_message_delay,
                                       SimHealPolicy policy)
    : g_(std::move(g)),
      max_message_delay_(max_message_delay),
      policy_(policy) {
  DASH_CHECK(max_message_delay_ >= 1);
  const std::size_t n = g_.num_nodes();
  // Same id-assignment scheme (and RNG call pattern) as
  // core::HealingState, so seeded runs are comparable; the delay
  // stream is forked afterwards so ids stay aligned.
  initial_id_.resize(n);
  std::iota(initial_id_.begin(), initial_id_.end(), 0ULL);
  rng.shuffle(initial_id_);
  delay_rng_ = rng.fork(0x6465);
  comp_id_ = initial_id_;
  delta_.assign(n, 0);
  forest_adj_.assign(n, {});
  metrics_.messages_per_node.assign(n, 0);
  metrics_.id_changes_per_node.assign(n, 0);
}

std::vector<NodeId> DistributedDashSim::compute_reconnection_set(
    const std::vector<NodeId>& neighbors_g,
    const std::vector<NodeId>& forest_neighbors,
    std::uint64_t deleted_component_id) const {
  // UN(v,G): one representative (lowest initial id) per component id,
  // skipping v's own component (reachable through forest neighbors).
  std::vector<NodeId> reps;
  for (NodeId u : neighbors_g) {
    if (comp_id_[u] == deleted_component_id) continue;
    bool placed = false;
    for (NodeId& r : reps) {
      if (comp_id_[r] == comp_id_[u]) {
        if (initial_id_[u] < initial_id_[r]) r = u;
        placed = true;
        break;
      }
    }
    if (!placed) reps.push_back(u);
  }
  reps.insert(reps.end(), forest_neighbors.begin(), forest_neighbors.end());
  std::sort(reps.begin(), reps.end(), [this](NodeId a, NodeId b) {
    if (delta_[a] != delta_[b]) return delta_[a] < delta_[b];
    return initial_id_[a] < initial_id_[b];
  });
  return reps;
}

std::uint32_t DistributedDashSim::delete_and_heal(NodeId v) {
  DASH_CHECK(g_.alive(v));

  // -- round 1: neighbors detect the deletion (NoN state in hand) ------
  const std::vector<NodeId> forest_neighbors = forest_adj_[v];
  const std::uint64_t v_component = comp_id_[v];
  for (NodeId u : forest_adj_[v]) {
    auto& adj = forest_adj_[u];
    adj.erase(std::remove(adj.begin(), adj.end(), v), adj.end());
  }
  forest_adj_[v].clear();
  const std::vector<NodeId> neighbors_g = g_.delete_node(v);
  // Net-delta convention: each surviving neighbor lost its edge to v.
  for (NodeId u : neighbors_g) --delta_[u];

  // -- round 1 (same round): deterministic local reconnection ----------
  // Every member of the reconnection set evaluates the same pure
  // function of NoN state, so one evaluation stands for all of them.
  const auto rt =
      compute_reconnection_set(neighbors_g, forest_neighbors, v_component);
  // Algorithm 3's surrogate rule (SDASH policy only): star on the
  // lowest-delta member when it can absorb the set without exceeding
  // the set's current max delta.
  bool star = false;
  if (policy_ == SimHealPolicy::kSdash && rt.size() >= 2) {
    const std::int64_t w_delta = delta_[rt.front()];
    const std::int64_t max_delta = delta_[rt.back()];
    star = w_delta + static_cast<std::int64_t>(rt.size() - 1) <= max_delta;
  }
  const auto edges = star ? core::star_edges(rt.size(), 0)
                          : core::complete_binary_tree_edges(rt.size());
  for (auto [pi, ci] : edges) {
    const NodeId a = rt[pi];
    const NodeId b = rt[ci];
    if (g_.add_edge(a, b)) {
      ++delta_[a];
      ++delta_[b];
      max_delta_ever_ = std::max({max_delta_ever_, delta_[a], delta_[b]});
    }
    auto& adj = forest_adj_[a];
    if (std::find(adj.begin(), adj.end(), b) == adj.end()) {
      forest_adj_[a].push_back(b);
      forest_adj_[b].push_back(a);
    }
  }
  metrics_.reconnect_rounds.push_back(1);

  // -- rounds 2..: min-id flooding over the merged tree ----------------
  const std::uint32_t flood_rounds = flood_min_id(rt);
  metrics_.propagation_rounds.push_back(flood_rounds);
  return 1 + flood_rounds;
}

std::uint32_t DistributedDashSim::flood_min_id(
    const std::vector<NodeId>& seeds) {
  if (seeds.empty()) return 0;
  // Nodes whose id just changed (or who just joined the merged tree)
  // broadcast their current id. Receivers adopt over G'-edges only;
  // message counting covers all G-neighbors (Lemma 8's model: id
  // updates ride the NoN maintenance channel). Delivery is delayed by
  // a uniform 1..max_message_delay_ rounds; adoption is monotone
  // (smaller id wins), so stale in-flight messages are harmless.
  struct PendingMsg {
    std::uint32_t deliver_round;
    NodeId to;
    std::uint64_t id;
    bool adoptable;  // true iff sent over a G'-edge
  };
  // Bucket queue indexed by round keeps processing deterministic.
  std::vector<std::vector<PendingMsg>> buckets(2);
  std::uint32_t now = 0;

  auto announce = [&](NodeId x) {
    metrics_.messages_per_node[x] += g_.degree(x);
    metrics_.total_messages += g_.degree(x);
    const auto& forest = forest_adj_[x];
    for (NodeId w : g_.neighbors(x)) {
      metrics_.messages_per_node[w] += 1;
      const std::uint32_t delay =
          max_message_delay_ == 1
              ? 1
              : 1 + static_cast<std::uint32_t>(
                        delay_rng_.below(max_message_delay_));
      const std::uint32_t at = now + delay;
      if (at >= buckets.size()) buckets.resize(at + 1);
      const bool adoptable =
          std::find(forest.begin(), forest.end(), w) != forest.end();
      buckets[at].push_back({at, w, comp_id_[x], adoptable});
    }
  };

  for (NodeId s : seeds) announce(s);

  std::uint32_t last_active_round = 0;
  for (now = 1; now < buckets.size(); ++now) {
    // Move the bucket out: adoptions enqueue into later rounds.
    std::vector<PendingMsg> batch = std::move(buckets[now]);
    buckets[now].clear();
    if (batch.empty()) continue;
    last_active_round = now;
    for (const PendingMsg& m : batch) {
      if (!m.adoptable || !g_.alive(m.to)) continue;
      if (m.id < comp_id_[m.to]) {
        comp_id_[m.to] = m.id;
        ++metrics_.id_changes_per_node[m.to];
        announce(m.to);
      }
    }
  }
  return last_active_round;
}

std::size_t run_max_degree_attack(
    DistributedDashSim& sim, std::size_t max_deletions,
    const std::function<bool(std::size_t)>& on_deletion) {
  std::size_t deletions = 0;
  while (sim.network().num_alive() > 1 && deletions < max_deletions) {
    sim.delete_and_heal(graph::argmax_degree(sim.network()));
    ++deletions;
    if (on_deletion && !on_deletion(deletions)) break;
  }
  return deletions;
}

}  // namespace dash::sim
