// serve_bench.h -- the mixed read/write workload harness behind
// bench/serve_churn and `dash_lab serve-bench`: one mutation thread
// plays a churn+heal scenario through api::Network::serve() while N
// reader threads hammer the pinned-snapshot read path, reporting read
// throughput and p50/p99/p999 latency per reader count.
//
// Every read takes a fresh pin; most are O(1) connected() lookups,
// every `distance_every`-th runs a BFS distance on the same pin and --
// because distance() answers from the CSR arrays while connected()
// answers from the labels -- cross-checks the two (`verify` upgrades
// the cross-check to every read). Any disagreement within one pin is a
// torn read: the snapshot the reader held was not immutable. A clean
// run reports zero.
//
// The mutation side's Metrics are serialized per round and compared
// across reader counts: readers must not perturb the deterministic
// run (the batch byte-identity guarantee, now under concurrency).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/metrics.h"

namespace dash::api {

struct ServeBenchConfig {
  std::size_t n = 10000;            ///< initial Barabasi-Albert nodes
  std::size_t attach = 2;           ///< BA edges per node
  std::string healer = "dash";
  std::string scenario = "churn:0.3,0.1x2000";
  std::uint64_t seed = 1;
  std::vector<std::size_t> reader_counts = {1, 2, 4, 8};
  std::size_t publish_every = 1;    ///< snapshot cadence (events)
  std::size_t distance_every = 16;  ///< every k-th read BFSes + cross-checks
  bool verify = false;              ///< cross-check *every* read
  /// Stream per-round rows through AsyncSink(CsvStreamSink) to this
  /// path during the last round (empty = no row streaming).
  std::string rows_path;
};

struct ServeBenchRound {
  std::size_t readers = 0;
  double secs = 0.0;                ///< mutation (play) wall time
  std::uint64_t final_epoch = 0;    ///< snapshots published
  std::size_t reads = 0;            ///< total reads across readers
  std::size_t distance_reads = 0;   ///< reads that ran the BFS side
  std::size_t torn_reads = 0;       ///< label/BFS disagreements in a pin
  double reads_per_sec = 0.0;
  double p50_us = 0.0;              ///< per-read latency quantiles
  double p99_us = 0.0;
  double p999_us = 0.0;
  /// Publish-path split (graph::SnapshotStore telemetry): publishes
  /// that paid a full CSR rebuild vs delta-patched a recycled
  /// snapshot, and the vertices re-mirrored by the patched ones.
  std::size_t full_publishes = 0;
  std::size_t patched_publishes = 0;
  std::size_t touched_vertices = 0;
  Metrics metrics;                  ///< the mutation side's result
  std::string metrics_json;         ///< canonical serialization of ^
};

struct ServeBenchReport {
  std::vector<ServeBenchRound> rounds;
  /// True when every round produced byte-identical metrics_json --
  /// readers did not perturb the deterministic mutation stream.
  bool deterministic = true;
  std::size_t total_torn() const;
  bool ok() const { return deterministic && total_torn() == 0; }
};

/// Run the full grid of reader counts. Throws on bad config (unknown
/// healer, malformed scenario).
ServeBenchReport run_serve_bench(const ServeBenchConfig& cfg);

/// Human table (one row per reader count) / machine JSON document.
void render_serve_table(const ServeBenchReport& report, std::ostream& out);
void render_serve_json(const ServeBenchConfig& cfg,
                       const ServeBenchReport& report, std::ostream& out);

}  // namespace dash::api
