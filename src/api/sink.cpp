#include "api/sink.h"

#include <cstdio>
#include <functional>

#include "api/network.h"
#include "api/observers.h"
#include "util/stats.h"

namespace dash::api {

const std::vector<std::string>& round_row_header() {
  static const std::vector<std::string> header{
      "instance",      "round",       "deletions_in_round",
      "event_node",    "kind",        "alive",
      "edges",         "edges_added", "max_delta",
      "largest_component", "stretch", "stretch_sampled"};
  return header;
}

std::vector<std::string> round_row_fields(const RoundRow& row) {
  using dash::util::CsvWriter;
  return {CsvWriter::to_field(row.instance),
          CsvWriter::to_field(row.round),
          CsvWriter::to_field(row.deletions_in_round),
          CsvWriter::to_field(static_cast<std::size_t>(row.event_node)),
          row.is_join ? "join" : "delete",
          CsvWriter::to_field(row.alive),
          CsvWriter::to_field(row.edges),
          CsvWriter::to_field(row.edges_added),
          CsvWriter::to_field(static_cast<std::size_t>(row.max_delta)),
          CsvWriter::to_field(row.largest_component),
          CsvWriter::to_field(row.stretch),
          CsvWriter::to_field(row.stretch_sampled ? 1 : 0)};
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) { return util::CsvWriter::to_field(v); }

/// The numeric Metrics fields a summary aggregates, name -> extractor.
const std::vector<
    std::pair<std::string, std::function<double(const Metrics&)>>>&
summary_fields() {
  using Field =
      std::pair<std::string, std::function<double(const Metrics&)>>;
  static const std::vector<Field> fields{
      {"deletions",
       [](const Metrics& m) { return static_cast<double>(m.deletions); }},
      {"joins",
       [](const Metrics& m) { return static_cast<double>(m.joins); }},
      {"max_delta",
       [](const Metrics& m) { return static_cast<double>(m.max_delta); }},
      {"max_id_changes",
       [](const Metrics& m) {
         return static_cast<double>(m.max_id_changes);
       }},
      {"max_messages",
       [](const Metrics& m) {
         return static_cast<double>(m.max_messages);
       }},
      {"max_messages_sent",
       [](const Metrics& m) {
         return static_cast<double>(m.max_messages_sent);
       }},
      {"edges_added",
       [](const Metrics& m) { return static_cast<double>(m.edges_added); }},
      {"surrogate_heals",
       [](const Metrics& m) {
         return static_cast<double>(m.surrogate_heals);
       }},
      {"max_stretch", [](const Metrics& m) { return m.max_stretch; }},
      {"components",
       [](const Metrics& m) { return static_cast<double>(m.components); }},
      {"largest_component",
       [](const Metrics& m) {
         return static_cast<double>(m.largest_component);
       }},
  };
  return fields;
}

}  // namespace

// ---- CsvStreamSink ----------------------------------------------------

CsvStreamSink::CsvStreamSink(std::ostream& out)
    : out_(out), writer_(out, round_row_header()) {}

void CsvStreamSink::on_row(const RoundRow& row) {
  writer_.write_row(round_row_fields(row));
}

void CsvStreamSink::flush() { out_.flush(); }

// ---- JsonSummarySink --------------------------------------------------

void JsonSummarySink::begin_group(
    std::vector<std::pair<std::string, std::string>> labels) {
  groups_.push_back(Group{std::move(labels), {}});
}

void JsonSummarySink::on_run(std::size_t /*instance*/, const Metrics& m) {
  if (groups_.empty()) groups_.push_back(Group{});
  groups_.back().runs.push_back(m);
}

void JsonSummarySink::flush() {
  if (flushed_) return;  // one document per sink
  flushed_ = true;
  out_ << "{\"groups\":[";
  for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
    const Group& g = groups_[gi];
    if (gi) out_ << ',';
    out_ << "{\"labels\":{";
    for (std::size_t li = 0; li < g.labels.size(); ++li) {
      if (li) out_ << ',';
      out_ << '"' << json_escape(g.labels[li].first) << "\":\""
           << json_escape(g.labels[li].second) << '"';
    }
    out_ << "},\"instances\":" << g.runs.size() << ",\"runs\":[";
    for (std::size_t ri = 0; ri < g.runs.size(); ++ri) {
      const Metrics& m = g.runs[ri];
      if (ri) out_ << ',';
      out_ << '{';
      for (std::size_t fi = 0; fi < summary_fields().size(); ++fi) {
        const auto& [name, get] = summary_fields()[fi];
        if (fi) out_ << ',';
        out_ << '"' << name << "\":" << json_number(get(m));
      }
      out_ << ",\"stayed_connected\":"
           << (m.stayed_connected ? "true" : "false");
      out_ << ",\"violation\":\"" << json_escape(m.violation) << "\"}";
    }
    out_ << "],\"summary\":{";
    for (std::size_t fi = 0; fi < summary_fields().size(); ++fi) {
      const auto& [name, get] = summary_fields()[fi];
      std::vector<double> xs;
      xs.reserve(g.runs.size());
      for (const Metrics& m : g.runs) xs.push_back(get(m));
      const util::Summary s = util::summarize(xs);
      if (fi) out_ << ',';
      out_ << '"' << name << "\":{\"mean\":" << json_number(s.mean)
           << ",\"stddev\":" << json_number(s.stddev)
           << ",\"min\":" << json_number(s.min)
           << ",\"max\":" << json_number(s.max)
           << ",\"median\":" << json_number(s.median) << '}';
    }
    out_ << "}}";
  }
  out_ << "]}\n";
  out_.flush();
}

// ---- SinkObserver -------------------------------------------------------

void SinkObserver::on_round_end(const Network& net, const RoundEvent& ev) {
  // Batch rounds produce one row covering deletions_in_round nodes:
  // `round` jumps by the batch size and `event_node` names the first
  // batch member.
  RoundRow row;
  row.instance = instance_;
  row.seq = seq_++;
  row.round = ev.round;
  row.deletions_in_round = ev.deletions_in_round;
  row.event_node = ev.victim == graph::kInvalidNode ? 0 : ev.victim;
  row.alive = net.graph().num_alive();
  row.edges = net.graph().num_edges();
  row.edges_added = ev.edges_added;
  row.max_delta = net.state().max_delta_ever();
  // Engine-answered: the incremental tracker for owning engines, one
  // scan per row otherwise -- identical values either way.
  row.largest_component = net.largest_component();
  if (stretch_ != nullptr && stretch_->sampled_last_round()) {
    row.stretch = stretch_->last_sample();
    row.stretch_sampled = true;
  }
  sink_.on_row(row);
}

void SinkObserver::on_join(const Network& net, const JoinEvent& ev) {
  RoundRow row;
  row.instance = instance_;
  row.seq = seq_++;
  row.round = net.rounds();
  row.deletions_in_round = 0;
  row.event_node = ev.joined;
  row.is_join = true;
  row.alive = net.graph().num_alive();
  row.edges = net.graph().num_edges();
  row.max_delta = net.state().max_delta_ever();
  row.largest_component = net.largest_component();
  sink_.on_row(row);
}

void SinkObserver::on_finish(const Network& /*net*/, Metrics& out) {
  sink_.on_run(instance_, out);
}

}  // namespace dash::api
