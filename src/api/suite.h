// suite.h -- multi-instance experiment driver over api::Network: the
// Sec. 4.1 methodology (N independent random instances, each with its
// own deterministic RNG stream, summarized afterwards), driven by a
// declarative Scenario (api/scenario.h).
//
// Instances fan out across a util::ThreadPool; every instance derives
// its stream from (base_seed, index), and sink output is emitted after
// the parallel barrier in instance order, so sequential and parallel
// suites produce byte-identical metrics *and* byte-identical sink
// bytes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/network.h"
#include "api/scenario.h"
#include "api/sink.h"
#include "core/factory.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dash::api {

struct SuiteConfig {
  /// Draw the instance's starting network from its RNG stream.
  std::function<graph::Graph(dash::util::Rng&)> make_graph;
  /// Build the instance's healer.
  std::function<std::unique_ptr<core::HealingStrategy>()> make_healer;
  /// The per-instance workload, played against the instance's stream.
  Scenario scenario;
  /// Register per-instance observers on the fresh engine (optional);
  /// runs before the suite's own SinkObserver, so producers registered
  /// here are visible to it.
  std::function<void(Network&)> configure;
  /// Output sinks. Rows and run snapshots are delivered in instance
  /// order after all instances finished -- identical bytes for
  /// sequential and parallel execution. The caller owns flushing (a
  /// sink may collect across several suites, e.g. one JSON group per
  /// sweep cell).
  std::vector<MetricSink*> sinks;
  /// Capture per-round rows for the sinks. The per-row
  /// largest-component figure comes from the engine's incremental
  /// connectivity tracker (O(alpha) amortized); summary-only sinks
  /// should still leave this off.
  bool record_rows = false;
  /// Opt-in bounded-memory row delivery for million-event runs: with
  /// record_rows set, rows stream to the sinks *while instances run*
  /// (serialized by a lock) instead of buffering per instance until the
  /// barrier. Rows carry their instance id and per-instance seq, and a
  /// stable sort by (RoundRow::instance, RoundRow::seq) reproduces the
  /// buffered deterministic order exactly; the arrival interleaving
  /// itself depends on thread scheduling. Run snapshots (on_run) are
  /// still delivered post-barrier in instance order.
  bool interleaved_rows = false;
  /// Post-run inspection hook, called sequentially in instance order
  /// after every instance completed; the engine (graph + healing
  /// state) is kept alive until then. For measurements that need more
  /// than the Metrics snapshot.
  std::function<void(std::size_t, const Network&, const Metrics&)> inspect;
  std::size_t instances = 30;
  std::uint64_t base_seed = 0xDA5Bu;
};

/// Registry-spec convenience for SuiteConfig wiring.
inline std::function<std::unique_ptr<core::HealingStrategy>()>
healer_factory(const std::string& spec) {
  return [spec] { return core::make_strategy(spec); };
}

/// Run `instances` independent plays of cfg.scenario sequentially and
/// return per-instance metrics, ordered by instance index.
std::vector<Metrics> run_suite(const SuiteConfig& cfg);

/// Same, fanned out across a caller-owned pool (borrowed for the call
/// only -- share one pool across as many suites as you like; the suite
/// never stores it). Results and sink bytes are identical to the
/// sequential overload regardless of worker count (except the row
/// *arrival order* under interleaved_rows, as documented above).
std::vector<Metrics> run_suite(const SuiteConfig& cfg,
                               dash::util::ThreadPool& pool);

/// Aggregate one metric across instances.
dash::util::Summary summarize_metric(
    const std::vector<Metrics>& results,
    const std::function<double(const Metrics&)>& metric);

}  // namespace dash::api
