// suite.h -- multi-instance experiment driver over api::Network: the
// Sec. 4.1 methodology (N independent random instances, each with its
// own deterministic RNG stream, averaged afterwards) for the new
// engine. Replaces the deprecated analysis::run_instances.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/network.h"
#include "attack/factory.h"
#include "core/factory.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dash::api {

struct SuiteConfig {
  /// Draw the instance's starting network from its RNG stream.
  std::function<graph::Graph(dash::util::Rng&)> make_graph;
  /// Build the instance's adversary from its derived seed.
  std::function<std::unique_ptr<attack::AttackStrategy>(std::uint64_t)>
      make_attacker;
  /// Build the instance's healer.
  std::function<std::unique_ptr<core::HealingStrategy>()> make_healer;
  /// Register per-instance observers on the fresh engine (optional).
  std::function<void(Network&)> configure;
  std::size_t instances = 30;
  std::uint64_t base_seed = 0xDA5Bu;
  RunOptions run;
};

/// Registry-spec conveniences for SuiteConfig wiring.
inline std::function<std::unique_ptr<core::HealingStrategy>()>
healer_factory(const std::string& spec) {
  return [spec] { return core::make_strategy(spec); };
}

inline std::function<std::unique_ptr<attack::AttackStrategy>(std::uint64_t)>
attacker_factory(const std::string& spec) {
  return [spec](std::uint64_t seed) { return attack::make_attack(spec, seed); };
}

/// Run `instances` independent schedules (in parallel when `pool` is
/// given) and return per-instance metrics, ordered by instance index.
/// Results do not depend on the worker count.
std::vector<Metrics> run_suite(const SuiteConfig& cfg,
                               dash::util::ThreadPool* pool = nullptr);

/// Aggregate one metric across instances.
dash::util::Summary summarize_metric(
    const std::vector<Metrics>& results,
    const std::function<double(const Metrics&)>& metric);

}  // namespace dash::api
