#include "api/observers.h"

#include <algorithm>

#include "graph/traversal.h"

namespace dash::api {

using analysis::Check;

// ---- InvariantObserver ----------------------------------------------

void InvariantObserver::on_attach(const Network& net) {
  initial_size_ = net.initial_size();
}

void InvariantObserver::run_battery(const Network& net,
                                    const RoundEvent* ev) {
  if (!violation_.empty()) return;  // keep the first violation
  const auto& g = net.graph();
  const auto& state = net.state();

  Check c = Check::pass();
  if (ev != nullptr && ev->ctx != nullptr && ev->action != nullptr) {
    c = analysis::check_locality(*ev->action, *ev->ctx);
  }
  if (c.ok && net.healer().maintains_forest()) {
    c = analysis::check_forest(g, state);
  }
  if (c.ok) c = analysis::check_component_ids(g, state);
  if (c.ok) c = analysis::check_healing_subgraph(g, state);
  if (c.ok) c = analysis::check_delta_consistency(g, state);
  if (c.ok && opts_.check_rem_bound) c = analysis::check_rem_bound(g, state);
  if (c.ok && opts_.check_delta_bound) {
    c = analysis::check_delta_bound(state, initial_size_);
  }
  if (!c.ok) violation_ = c.violation;
}

void InvariantObserver::on_round_end(const Network& net,
                                     const RoundEvent& ev) {
  // The connectivity guarantee is checked every round -- asking the
  // event is O(alpha) on tracker-mode engines, and the engine folds
  // the answer into Metrics::stayed_connected.
  if (violation_.empty() && !ev.connected()) {
    violation_ = "network disconnected after round " +
                 std::to_string(ev.round);
  }
  if (opts_.battery_every != 0 && ev.round % opts_.battery_every == 0) {
    run_battery(net, &ev);
  }
}

void InvariantObserver::on_join(const Network& net, const JoinEvent&) {
  // Joins have no round counter to gate on: at the default cadence they
  // keep their per-event battery; any amortized cadence skips them
  // (the every-k-rounds batteries and the on_finish sweep cover it).
  if (opts_.battery_every == 1) run_battery(net, nullptr);
}

void InvariantObserver::on_finish(const Network& net, Metrics& out) {
  // A cadence that skipped rounds still gets one end-state sweep.
  if (opts_.battery_every != 1) run_battery(net, nullptr);
  if (out.violation.empty()) out.violation = violation_;
}

// ---- ComponentObserver ----------------------------------------------

void ComponentObserver::sample(const Network& net) {
  const auto [count, largest] = net.component_snapshot();
  count_ = count;
  largest_ = largest;
  max_components_ = std::max(max_components_, count_);
  min_largest_ = std::min(min_largest_, largest_);
}

void ComponentObserver::on_attach(const Network& net) { sample(net); }

void ComponentObserver::on_round_end(const Network& net,
                                     const RoundEvent&) {
  sample(net);
}

void ComponentObserver::on_join(const Network& net, const JoinEvent&) {
  sample(net);
}

// ---- StretchObserver ------------------------------------------------

void StretchObserver::on_attach(const Network& net) {
  if (opts_.estimate) {
    estimator_.emplace(net.graph(),
                       analysis::StretchEstimatorOptions{
                           .landmarks = opts_.landmarks,
                           .pairs = opts_.pairs,
                           .seed = opts_.seed});
  } else {
    tracker_.emplace(net.graph());
  }
}

void StretchObserver::on_join(const Network&, const JoinEvent&) {
  // The time-0 distance matrix has no rows for joined nodes; any
  // further sample would be over a mismatched id space.
  active_ = false;
}

void StretchObserver::on_round_end(const Network& net,
                                   const RoundEvent& ev) {
  sampled_last_round_ = false;
  if (!active_) return;
  const bool due = ev.round % sample_every_ == 0 ||
                   net.graph().num_alive() <= 2;
  // Check `due` first: only sampled rounds pay for the (lazy)
  // connectivity scan, and stretch is undefined on a disconnected
  // network anyway.
  if (!due || !ev.connected()) return;
  if (opts_.estimate) {
    last_estimate_ = estimator_->estimate(net.graph());
    // Report the conservative (upper) side of the interval; the true
    // max/average stretch of the sampled pairs is contained in it.
    last_sample_ = last_estimate_.max_upper;
    last_average_ = last_estimate_.avg_upper;
  } else {
    const analysis::StretchStats stats =
        pool_ != nullptr ? tracker_->stretch_stats(net.graph(), *pool_)
                         : tracker_->stretch_stats(net.graph());
    last_sample_ = stats.max;
    last_average_ = stats.average;
  }
  max_stretch_ = std::max(max_stretch_, last_sample_);
  sampled_last_round_ = true;
}

void StretchObserver::on_finish(const Network&, Metrics& out) {
  out.max_stretch = std::max(out.max_stretch, max_stretch_);
}

}  // namespace dash::api
