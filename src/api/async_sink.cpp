#include "api/async_sink.h"

#include <utility>

namespace dash::api {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// Wakeup correctness: the waiter flags (consumer_waiting_,
// producer_waiting_) are stored seq_cst *before* the waiter evaluates
// its predicate, and the signaller publishes its cursor seq_cst
// *before* loading the flag. In the seq_cst total order one of the two
// must see the other: either the signaller sees the flag (and takes
// the mutex to notify -- which serializes with the waiter's
// predicate-evaluation-under-lock), or the waiter's predicate sees the
// fresh cursor and never sleeps. Either way no wakeup is lost, and the
// steady-state fast path costs no mutex at all.

AsyncSink::AsyncSink(MetricSink& inner, std::size_t capacity)
    : inner_(inner), ring_(round_up_pow2(capacity)), mask_(ring_.size() - 1) {
  drain_ = std::thread([this] { drain_loop(); });
}

AsyncSink::~AsyncSink() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_seq_cst);
  }
  not_empty_.notify_all();
  drain_.join();
}

void AsyncSink::on_row(const RoundRow& row) {
  Event ev;
  ev.kind = Event::Kind::kRow;
  ev.row = row;
  push(std::move(ev));
}

void AsyncSink::on_run(std::size_t instance, const Metrics& m) {
  Event ev;
  ev.kind = Event::Kind::kRun;
  ev.instance = instance;
  ev.metrics = m;
  push(std::move(ev));
}

void AsyncSink::push(Event ev) {
  const std::size_t t = tail_.load(std::memory_order_relaxed);
  if (t - head_.load(std::memory_order_acquire) == ring_.size()) {
    std::unique_lock<std::mutex> lock(mu_);
    producer_waiting_.store(true, std::memory_order_seq_cst);
    not_full_.wait(lock, [&] {
      return t - head_.load(std::memory_order_acquire) < ring_.size();
    });
    producer_waiting_.store(false, std::memory_order_relaxed);
  }
  ring_[t & mask_] = std::move(ev);
  tail_.store(t + 1, std::memory_order_seq_cst);
  const std::size_t depth = t + 1 - head_.load(std::memory_order_relaxed);
  if (depth > high_water_.load(std::memory_order_relaxed)) {
    high_water_.store(depth, std::memory_order_relaxed);
  }
  if (consumer_waiting_.load(std::memory_order_seq_cst)) {
    std::lock_guard<std::mutex> lock(mu_);
    not_empty_.notify_one();
  }
}

void AsyncSink::drain_loop() {
  for (;;) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mu_);
      consumer_waiting_.store(true, std::memory_order_seq_cst);
      not_empty_.wait(lock, [&] {
        return h != tail_.load(std::memory_order_seq_cst) ||
               stop_.load(std::memory_order_acquire);
      });
      consumer_waiting_.store(false, std::memory_order_relaxed);
      if (stop_.load(std::memory_order_acquire) &&
          h == tail_.load(std::memory_order_acquire)) {
        return;
      }
      continue;
    }
    Event ev = std::move(ring_[h & mask_]);
    // Deliver outside any lock: sink I/O must never serialize against
    // the producer's push path.
    if (ev.kind == Event::Kind::kRow) {
      inner_.on_row(ev.row);
    } else {
      inner_.on_run(ev.instance, ev.metrics);
    }
    head_.store(h + 1, std::memory_order_seq_cst);
    if (producer_waiting_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lock(mu_);
      not_full_.notify_one();
    }
    if (h + 1 == tail_.load(std::memory_order_acquire)) {
      // Queue just went empty: wake any flush() barrier.
      std::lock_guard<std::mutex> lock(mu_);
      drained_.notify_all();
    }
  }
}

void AsyncSink::flush() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [&] { return empty_relaxed(); });
  }
  // The drain thread is idle (nothing left to pop, and deliveries
  // complete before head_ advances), so forwarding here cannot race.
  inner_.flush();
}

}  // namespace dash::api
