// network.h -- the self-healing network engine: one object that owns
// the graph, the healing state, and the healing strategy, exposes the
// paper's protocol as events (remove / remove_batch / join / run /
// play), and feeds a pluggable Observer pipeline.
//
// Every workload in this repository -- figure benches, the sweep CLI,
// the examples, the schedule-level tests -- drives this engine, almost
// always through a declarative Scenario (api/scenario.h):
//
//   api::Network net(graph::barabasi_albert(256, 2, rng), "dash", rng);
//   api::InvariantObserver inv;
//   net.add_observer(&inv);
//   const api::Metrics m =
//       net.play(api::Scenario::parse("targeted:neighborofmax"), 7);
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/metrics.h"
#include "api/observer.h"
#include "attack/strategy.h"
#include "core/healing_state.h"
#include "core/strategy.h"
#include "graph/dynamic_connectivity.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace dash::api {

class Scenario;
struct PlayOptions;
class ServeHandle;
struct ServeOptions;

/// How the engine answers connectivity and component queries
/// (RoundEvent::connected(), component_count(), largest_component(),
/// the Metrics component fields, and the finish() check).
enum class ConnectivityMode {
  /// Incremental graph::DynamicConnectivity tracker (the default for
  /// owning engines): O(alpha) per certified round, one re-scan of the
  /// affected component per uncertified round.
  kTracker,
  /// Full BFS scan per ask -- the pre-tracker cost model. Forced for
  /// borrowed engines (external code may mutate the graph behind the
  /// engine's back) and kept as the differential-testing reference.
  kBfs,
  /// Tracker answers with every answer cross-checked against the BFS
  /// scan (DASH_CHECK on divergence). The debug verify flag; also
  /// switched on by setting DASH_VERIFY_CONNECTIVITY=1 in the
  /// environment.
  kVerify,
};

struct RunOptions {
  /// Maximum deletions for this run() call (counted across calls; by
  /// default run until <= 1 alive node or the attack stops on its own).
  std::size_t max_deletions = std::numeric_limits<std::size_t>::max();
  /// Stop the run loop once the network disconnects (meaningful for
  /// NoHeal only; healers never disconnect).
  bool stop_when_disconnected = false;
  /// Extra stop condition, evaluated before each round.
  std::function<bool(const Network&)> stop_condition;
};

class Network {
 public:
  /// Owning constructor: takes the initial network, the healing
  /// strategy, and the RNG stream used to draw the healing state's
  /// initial ids (the caller's stream, so graph generation and id
  /// assignment share one seed exactly as the experiments require).
  Network(graph::Graph g, std::unique_ptr<core::HealingStrategy> healer,
          dash::util::Rng& rng);

  /// Owning constructor from a healer spec string ("dash", "capped:2",
  /// ... -- anything in core::healer_registry()) and a bare seed.
  Network(graph::Graph g, const std::string& healer_spec,
          std::uint64_t seed);

  /// Owning constructor resuming from a checkpointed healing state
  /// (core::HealingState::save / graph::write_edge_list): no RNG is
  /// consumed -- the state carries its id assignment -- so re-executing
  /// a recorded event sequence reproduces the original run exactly.
  /// The replay subsystem (replay/play.h) is built on this.
  Network(graph::Graph g, std::unique_ptr<core::HealingStrategy> healer,
          core::HealingState state);

  /// Borrowed constructor: operate on externally owned graph/state/
  /// healer, for callers that need to inspect or keep mutating those
  /// objects after the run. New code should prefer the owning
  /// constructors.
  Network(graph::Graph& g, core::HealingState& state,
          core::HealingStrategy& healer);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();  // out-of-line: ServeHandle is incomplete here

  // ---- observer pipeline --------------------------------------------

  /// Register a non-owned observer (must outlive the engine's use).
  /// Observers are notified in registration order.
  void add_observer(Observer* obs);

  /// Register an engine-owned observer; returns a reference for later
  /// inspection.
  Observer& add_observer(std::unique_ptr<Observer> obs);

  /// First registered observer whose name() matches, or nullptr. Lets
  /// downstream stages (a SinkObserver wired up by run_suite) find
  /// producers (a StretchObserver from SuiteConfig::configure).
  Observer* find_observer(const std::string& name) const;

  // ---- events -------------------------------------------------------

  /// Delete one alive node and heal. Returns the heal record.
  core::HealAction remove(graph::NodeId v);

  /// Delete a set of nodes *simultaneously* (paper footnote 1) and heal
  /// cluster-wise with the DASH batch protocol -- the only batch
  /// healing the paper defines, applied regardless of the configured
  /// single-deletion healer. Counts as one round. Returns one heal
  /// record per deleted cluster.
  std::vector<core::HealAction> remove_batch(
      const std::vector<graph::NodeId>& batch);

  /// Organic arrival: admit a brand-new node wired to `attach_to`
  /// (all alive). Join edges shift baselines, not deltas. Returns the
  /// new node's id.
  graph::NodeId join(const std::vector<graph::NodeId>& attach_to);

  /// Drive the attacker until it stops, the network is exhausted, or a
  /// stop condition fires; then finish() and return the snapshot.
  Metrics run(attack::AttackStrategy& attacker, const RunOptions& opts = {});

  /// Execute a declarative scenario (api/scenario.h): every phase in
  /// order, drawing all randomness (attack seeds, churn coin flips,
  /// batch victim shuffles) from `rng`; then finish() and return the
  /// snapshot. One seed -> one byte-identical run. `opts` carries
  /// play-level knobs (stop_condition).
  Metrics play(const Scenario& scenario, dash::util::Rng& rng,
               const PlayOptions& opts);
  Metrics play(const Scenario& scenario, dash::util::Rng& rng);

  /// Convenience overloads seeding a fresh stream.
  Metrics play(const Scenario& scenario, std::uint64_t seed,
               const PlayOptions& opts);
  Metrics play(const Scenario& scenario, std::uint64_t seed);

  /// Snapshot metrics and give every observer its on_finish() chance to
  /// contribute (violation, stretch, ...). Idempotent; run() calls it.
  Metrics finish();

  // ---- concurrent serving -------------------------------------------

  /// Start (or fetch) the concurrent read path: an engine-owned
  /// ServeHandle whose internal observer publishes an immutable
  /// snapshot after every mutation event (cadence in ServeOptions), so
  /// reader threads answer connected/distance/largest_component
  /// queries lock-free from a pinned epoch while play()/run() mutate
  /// the graph. Call before starting the scenario; options are fixed
  /// by the first call. See api/serve.h.
  ServeHandle& serve();
  ServeHandle& serve(const ServeOptions& opts);

  /// The serving engine, or nullptr when serve() was never called.
  ServeHandle* serve_handle() { return serve_.get(); }

  /// Broadcast a scenario phase boundary (Observer::on_phase) to the
  /// pipeline. play() calls this before each phase executes; trace
  /// replay (replay/play.h) re-broadcasts the recorded markers so a
  /// replayed run drives its observers identically to the original.
  void notify_phase(const std::string& spec);

  // ---- introspection ------------------------------------------------

  const graph::Graph& graph() const { return *g_; }
  const core::HealingState& state() const { return *state_; }
  const core::HealingStrategy& healer() const { return *healer_; }
  /// Alive-node count when the engine was constructed (the `n` of the
  /// paper's bounds).
  std::size_t initial_size() const { return initial_size_; }
  /// Deletions so far (== the last RoundEvent's round).
  std::size_t rounds() const { return engine_.deletions; }
  /// False once any *performed* post-heal connectivity check failed
  /// (checks are lazy; see RoundEvent::connected()).
  bool stayed_connected() const { return engine_.stayed_connected; }

  // ---- connectivity / component structure ----------------------------

  /// Switch how connectivity/component queries are answered. Tracker
  /// modes (kTracker, kVerify) require an owning engine: borrowed
  /// graphs can be mutated externally, which would silently desync the
  /// incremental tracker, so borrowed engines are pinned to kBfs.
  void set_connectivity_mode(ConnectivityMode mode);
  ConnectivityMode connectivity_mode() const { return conn_mode_; }

  /// Number of components among alive nodes (0 when none are alive).
  /// O(alpha) amortized in tracker mode, one BFS labelling in kBfs.
  std::size_t component_count() const;
  /// Size of the largest component (0 when no nodes are alive).
  std::size_t largest_component() const;
  /// (component count, largest size) in one ask -- in kBfs mode a
  /// single labelling serves both, so per-round samplers should prefer
  /// this over two separate calls.
  std::pair<std::size_t, std::size_t> component_snapshot() const;

  /// The engine's tracker, for instrumentation (rebuild counters);
  /// null for borrowed engines.
  const graph::DynamicConnectivity* connectivity_tracker() const {
    return tracker_ ? &*tracker_ : nullptr;
  }

  /// Engine-maintained metrics refreshed from the healing state, with
  /// no observer contributions (use finish() for those).
  Metrics metrics() const;

 private:
  void attach(Observer* obs);
  void notify_round_begin(std::size_t round);
  void finish_round(RoundEvent& ev);
  void init_tracker();
  /// The healing-forest certificate for one deletion: every survivor
  /// carries the same post-heal component id, i.e. one G'-tree
  /// reconnects them all without the deleted node.
  bool survivors_reconnected(const std::vector<graph::NodeId>& survivors)
      const;
  /// Current connectivity via the active mode (tracker / scan / both).
  bool current_connected() const;

  std::optional<graph::Graph> owned_g_;
  std::optional<core::HealingState> owned_state_;
  std::unique_ptr<core::HealingStrategy> owned_healer_;
  std::vector<std::unique_ptr<Observer>> owned_observers_;

  graph::Graph* g_ = nullptr;
  core::HealingState* state_ = nullptr;
  core::HealingStrategy* healer_ = nullptr;
  std::vector<Observer*> observers_;

  Metrics engine_;  ///< incrementally maintained fields only
  std::size_t initial_size_ = 0;
  bool last_connected_ = true;
  /// When set (run() with stop_when_disconnected), every round pays for
  /// the connectivity check even if no observer asks.
  bool force_connectivity_checks_ = false;
  /// Incremental component tracker, kept in sync with every engine
  /// mutation for owning engines regardless of mode (so modes can be
  /// switched mid-run); absent for borrowed engines. Mutable: queries
  /// flush its lazy re-scan without changing observable state.
  mutable std::optional<graph::DynamicConnectivity> tracker_;
  ConnectivityMode conn_mode_ = ConnectivityMode::kBfs;
  /// The concurrent read path (api/serve.h); null until serve().
  std::unique_ptr<ServeHandle> serve_;
};

}  // namespace dash::api
