#include "api/suite.h"

#include <mutex>
#include <utility>

#include "api/observers.h"
#include "util/check.h"

namespace dash::api {

namespace {

/// Interleaved-mode fanout: serializes concurrent on_row calls from
/// the worker threads onto the caller's (not necessarily thread-safe)
/// sinks. Rows pass through as produced -- bounded memory, arrival
/// order up to the scheduler; (instance, seq) restores determinism.
class LockedFanoutSink final : public MetricSink {
 public:
  explicit LockedFanoutSink(const std::vector<MetricSink*>& sinks)
      : sinks_(sinks) {}

  std::string name() const override { return "locked-fanout"; }

  void on_row(const RoundRow& row) override {
    std::lock_guard lock(mu_);
    for (MetricSink* sink : sinks_) sink->on_row(row);
  }

 private:
  std::mutex mu_;
  const std::vector<MetricSink*>& sinks_;
};

std::vector<Metrics> run_suite_impl(const SuiteConfig& cfg,
                                    dash::util::ThreadPool* pool) {
  DASH_CHECK_MSG(cfg.make_graph && cfg.make_healer,
                 "run_suite needs make_graph and make_healer");
  DASH_CHECK_MSG(!cfg.scenario.empty(), "run_suite needs a scenario");
  for (MetricSink* sink : cfg.sinks) {
    DASH_CHECK_MSG(sink != nullptr, "null sink in SuiteConfig");
  }

  std::vector<Metrics> results(cfg.instances);
  const bool want_rows = cfg.record_rows && !cfg.sinks.empty();
  const bool interleave = want_rows && cfg.interleaved_rows;
  // Buffered mode: per-instance row buffers -- workers write privately,
  // the emission loop below replays them in index order. Interleaved
  // mode: rows stream through one locked fanout as they are produced.
  std::vector<MemorySink> buffers(
      want_rows && !interleave ? cfg.instances : 0);
  LockedFanoutSink fanout(cfg.sinks);
  const bool keep_engines = static_cast<bool>(cfg.inspect);
  std::vector<std::unique_ptr<Network>> engines(
      keep_engines ? cfg.instances : 0);

  auto run_one = [&](std::size_t i) {
    // Each instance owns an independent deterministic stream derived
    // from (base_seed, i): graph generation, healing-state ids, and
    // every coin the scenario flips come from it in a fixed order, so
    // results do not depend on thread scheduling.
    dash::util::Rng seeder(cfg.base_seed);
    dash::util::Rng rng = seeder.fork(i + 1);
    graph::Graph g = cfg.make_graph(rng);
    auto net =
        std::make_unique<Network>(std::move(g), cfg.make_healer(), rng);
    if (cfg.configure) cfg.configure(*net);
    if (want_rows) {
      // configure() ran first, so a StretchObserver it registered is a
      // visible producer: wire its samples into the rows.
      const auto* stretch = dynamic_cast<const StretchObserver*>(
          net->find_observer("stretch"));
      MetricSink& target =
          interleave ? static_cast<MetricSink&>(fanout) : buffers[i];
      net->add_observer(
          std::make_unique<SinkObserver>(target, stretch, i));
    }
    results[i] = net->play(cfg.scenario, rng);
    if (keep_engines) engines[i] = std::move(net);
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(cfg.instances, run_one);
  } else {
    for (std::size_t i = 0; i < cfg.instances; ++i) run_one(i);
  }

  // Deterministic output: instance order, rows (buffered mode) before
  // the run summary. Sinks are NOT flushed here -- a sink may span
  // several suites (one JSON group per sweep cell); whoever owns the
  // sink flushes it when all production is done.
  for (std::size_t i = 0; i < cfg.instances; ++i) {
    for (MetricSink* sink : cfg.sinks) {
      if (want_rows && !interleave) {
        for (const RoundRow& row : buffers[i].rows()) sink->on_row(row);
      }
      sink->on_run(i, results[i]);
    }
  }

  if (keep_engines) {
    for (std::size_t i = 0; i < cfg.instances; ++i) {
      cfg.inspect(i, *engines[i], results[i]);
    }
  }
  return results;
}

}  // namespace

std::vector<Metrics> run_suite(const SuiteConfig& cfg) {
  return run_suite_impl(cfg, nullptr);
}

std::vector<Metrics> run_suite(const SuiteConfig& cfg,
                               dash::util::ThreadPool& pool) {
  return run_suite_impl(cfg, &pool);
}

dash::util::Summary summarize_metric(
    const std::vector<Metrics>& results,
    const std::function<double(const Metrics&)>& metric) {
  std::vector<double> xs;
  xs.reserve(results.size());
  for (const auto& r : results) xs.push_back(metric(r));
  return dash::util::summarize(xs);
}

}  // namespace dash::api
