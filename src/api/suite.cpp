#include "api/suite.h"

#include "util/check.h"

namespace dash::api {

std::vector<Metrics> run_suite(const SuiteConfig& cfg,
                               dash::util::ThreadPool* pool) {
  DASH_CHECK(cfg.make_graph && cfg.make_attacker && cfg.make_healer);
  std::vector<Metrics> results(cfg.instances);

  auto run_one = [&cfg, &results](std::size_t i) {
    // Each instance owns an independent deterministic stream derived
    // from (base_seed, i): results do not depend on thread scheduling.
    // The stream consumption order (graph, then state ids, then attack
    // seed) matches the original run_instances driver bit-for-bit.
    dash::util::Rng seeder(cfg.base_seed);
    dash::util::Rng rng = seeder.fork(i + 1);
    graph::Graph g = cfg.make_graph(rng);
    Network net(std::move(g), cfg.make_healer(), rng);
    auto attacker = cfg.make_attacker(rng.next_u64());
    if (cfg.configure) cfg.configure(net);
    results[i] = net.run(*attacker, cfg.run);
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(cfg.instances, run_one);
  } else {
    for (std::size_t i = 0; i < cfg.instances; ++i) run_one(i);
  }
  return results;
}

dash::util::Summary summarize_metric(
    const std::vector<Metrics>& results,
    const std::function<double(const Metrics&)>& metric) {
  std::vector<double> xs;
  xs.reserve(results.size());
  for (const auto& r : results) xs.push_back(metric(r));
  return dash::util::summarize(xs);
}

}  // namespace dash::api
