#include "api/suite.h"

#include <utility>

#include "api/observers.h"
#include "util/check.h"

namespace dash::api {

std::vector<Metrics> run_suite(const SuiteConfig& cfg,
                               dash::util::ThreadPool* pool) {
  DASH_CHECK_MSG(cfg.make_graph && cfg.make_healer,
                 "run_suite needs make_graph and make_healer");
  DASH_CHECK_MSG(!cfg.scenario.empty(), "run_suite needs a scenario");

  std::vector<Metrics> results(cfg.instances);
  // Per-instance row buffers: workers write privately, the emission
  // loop below replays them in index order.
  const bool want_rows = cfg.record_rows && !cfg.sinks.empty();
  std::vector<MemorySink> buffers(want_rows ? cfg.instances : 0);
  const bool keep_engines = static_cast<bool>(cfg.inspect);
  std::vector<std::unique_ptr<Network>> engines(
      keep_engines ? cfg.instances : 0);

  auto run_one = [&](std::size_t i) {
    // Each instance owns an independent deterministic stream derived
    // from (base_seed, i): graph generation, healing-state ids, and
    // every coin the scenario flips come from it in a fixed order, so
    // results do not depend on thread scheduling.
    dash::util::Rng seeder(cfg.base_seed);
    dash::util::Rng rng = seeder.fork(i + 1);
    graph::Graph g = cfg.make_graph(rng);
    auto net =
        std::make_unique<Network>(std::move(g), cfg.make_healer(), rng);
    if (cfg.configure) cfg.configure(*net);
    if (want_rows) {
      // configure() ran first, so a StretchObserver it registered is a
      // visible producer: wire its samples into the rows.
      const auto* stretch = dynamic_cast<const StretchObserver*>(
          net->find_observer("stretch"));
      net->add_observer(
          std::make_unique<SinkObserver>(buffers[i], stretch, i));
    }
    results[i] = net->play(cfg.scenario, rng);
    if (keep_engines) engines[i] = std::move(net);
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(cfg.instances, run_one);
  } else {
    for (std::size_t i = 0; i < cfg.instances; ++i) run_one(i);
  }

  // Deterministic output: instance order, rows before the run summary.
  // Sinks are NOT flushed here -- a sink may span several suites (one
  // JSON group per sweep cell); whoever owns the sink flushes it when
  // all production is done.
  for (std::size_t i = 0; i < cfg.instances; ++i) {
    for (MetricSink* sink : cfg.sinks) {
      DASH_CHECK_MSG(sink != nullptr, "null sink in SuiteConfig");
      if (want_rows) {
        for (const RoundRow& row : buffers[i].rows()) sink->on_row(row);
      }
      sink->on_run(i, results[i]);
    }
  }

  if (keep_engines) {
    for (std::size_t i = 0; i < cfg.instances; ++i) {
      cfg.inspect(i, *engines[i], results[i]);
    }
  }
  return results;
}

dash::util::Summary summarize_metric(
    const std::vector<Metrics>& results,
    const std::function<double(const Metrics&)>& metric) {
  std::vector<double> xs;
  xs.reserve(results.size());
  for (const auto& r : results) xs.push_back(metric(r));
  return dash::util::summarize(xs);
}

}  // namespace dash::api
