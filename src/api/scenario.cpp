#include "api/scenario.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "api/network.h"
#include "attack/factory.h"
#include "util/check.h"
#include "util/csv.h"

// Defined in replay/trace_phase.cpp; see the registry builder below.
namespace dash::replay::detail {
void register_trace_phase(dash::util::Registry<dash::api::ScenarioPhase>* r);
}  // namespace dash::replay::detail

namespace dash::api {

namespace {

using graph::NodeId;

// ---- small parsing helpers ---------------------------------------------

bool all_digits(const std::string& s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c); });
}

/// Split a phase's parameter at its trailing `x<digits>` count:
/// "0.3,0.1x500" -> {"0.3,0.1", 500}. A trailing x with a non-numeric
/// suffix (as in "neighborofmax") is left in the head. Explicit zero
/// counts are malformed -- a phase that does nothing is a spec typo.
struct CountSplit {
  std::string head;
  std::size_t count = 0;
  bool has_count = false;
};

CountSplit split_count(const std::string& phase, const std::string& args) {
  CountSplit out;
  out.head = args;
  const auto pos = args.find_last_of('x');
  if (pos == std::string::npos) return out;
  const std::string suffix = args.substr(pos + 1);
  if (!all_digits(suffix)) return out;
  out.count = static_cast<std::size_t>(
      util::parse_spec_uint(phase, suffix));
  if (out.count == 0) {
    throw std::invalid_argument("zero count in scenario phase '" + phase +
                                ":" + args + "'");
  }
  out.head = args.substr(0, pos);
  out.has_count = true;
  return out;
}

/// Strict double in [0, 1] for churn rates. std::from_chars, not
/// std::stod: rate specs must parse the same under every process
/// locale (stod honours LC_NUMERIC, so "0.3" fails and "0,3" parses
/// under a comma-decimal locale).
double parse_rate(const std::string& phase, const std::string& s) {
  double v = 0.0;
  const auto [end, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || end != s.data() + s.size() || s.empty() ||
      v < 0.0 || v > 1.0) {
    throw std::invalid_argument("bad rate in scenario phase '" + phase +
                                "': '" + s +
                                "' (expected a number in [0, 1])");
  }
  return v;
}

/// Minimal decimal form for rates ("0.3", "1"), round-trip safe.
std::string rate_to_string(double v) {
  return util::CsvWriter::to_field(v);
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

/// Split at top-level commas only (braces nest): the mix arm
/// separator, where each arm carries a nested phase list.
std::vector<std::string> split_commas_toplevel(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  int depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}' && depth > 0) --depth;
    if (c == ',' && depth == 0) {
      out.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  out.push_back(current);
  return out;
}

/// Alive nodes sorted by (degree desc, id asc): the batch "hubs" order.
std::vector<NodeId> hubs_first(const graph::Graph& g) {
  auto alive = g.alive_nodes();
  std::sort(alive.begin(), alive.end(), [&g](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  return alive;
}

/// Uniform k-subset of the alive nodes via partial Fisher-Yates: k RNG
/// draws, not a full shuffle -- churn phases run for millions of
/// events. NOTE: the draw count is part of the deterministic stream
/// layout; changing it changes every seeded result.
std::vector<NodeId> pick_distinct_alive(const graph::Graph& g,
                                        dash::util::Rng& rng,
                                        std::size_t k) {
  auto alive = g.alive_nodes();
  const std::size_t take = std::min(k, alive.size());
  for (std::size_t i = 0; i < take; ++i) {
    const auto j =
        i + static_cast<std::size_t>(rng.below(alive.size() - i));
    std::swap(alive[i], alive[j]);
  }
  alive.resize(take);
  return alive;
}

/// Attack specs are resolved through attack::attack_registry() when a
/// phase executes; reject unknown names already at scenario build/parse
/// time so the error surfaces where the spec was written.
void validate_attack_spec(const std::string& phase,
                          const std::string& spec) {
  if (!attack::attack_registry().contains(spec)) {
    std::string names;
    for (const auto& n : attack::attack_names()) {
      if (!names.empty()) names += ", ";
      names += n;
    }
    throw std::invalid_argument("unknown attack '" + spec +
                                "' in scenario phase '" + phase +
                                "' (registered: " + names + ")");
  }
}

// ---- phases --------------------------------------------------------------

class StrikePhase final : public ScenarioPhase {
 public:
  StrikePhase(std::string attack, std::size_t count)
      : attack_(std::move(attack)), count_(count) {
    DASH_CHECK_MSG(count_ > 0, "strike needs a positive count");
    validate_attack_spec("strike", attack_);
  }

  std::string spec() const override {
    return "strike:" + attack_ + "x" + std::to_string(count_);
  }

  void execute(PlayContext& ctx) const override {
    auto atk = attack::make_attack(attack_, ctx.rng.next_u64());
    for (std::size_t i = 0; i < count_; ++i) {
      if (ctx.net.graph().num_alive() <= ctx.floor || ctx.stopped()) break;
      const NodeId v = atk->select(ctx.net.graph(), ctx.net.state());
      if (v == graph::kInvalidNode) break;
      ctx.net.remove(v);
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<StrikePhase>(*this);
  }

 private:
  std::string attack_;
  std::size_t count_;
};

class BatchStrikePhase final : public ScenarioPhase {
 public:
  BatchStrikePhase(std::size_t batch_size, std::string mode,
                   std::size_t rounds)
      : batch_size_(batch_size), mode_(std::move(mode)), rounds_(rounds) {
    DASH_CHECK_MSG(batch_size_ > 0, "batch needs a positive size");
    DASH_CHECK_MSG(mode_ == "hubs" || mode_ == "random",
                   "batch mode must be hubs or random");
  }

  std::string spec() const override {
    std::string out("batch:");
    out += std::to_string(batch_size_);
    out += ',';
    out += mode_;
    if (rounds_ > 0) {
      out += 'x';
      out += std::to_string(rounds_);
    }
    return out;
  }

  void execute(PlayContext& ctx) const override {
    std::size_t done = 0;
    while (rounds_ == 0 || done < rounds_) {
      const auto& g = ctx.net.graph();
      // The whole batch must fit above the deletion floor (floor >= 1
      // also guarantees a survivor).
      if (g.num_alive() < batch_size_ + ctx.floor || ctx.stopped()) break;
      std::vector<NodeId> batch;
      if (mode_ == "hubs") {
        const auto ordered = hubs_first(g);
        batch.assign(ordered.begin(), ordered.begin() + batch_size_);
      } else {
        batch = pick_distinct_alive(g, ctx.rng, batch_size_);
      }
      ctx.net.remove_batch(batch);
      ++done;
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<BatchStrikePhase>(*this);
  }

 private:
  std::size_t batch_size_;
  std::string mode_;
  std::size_t rounds_;
};

class ChurnPhase final : public ScenarioPhase {
 public:
  ChurnPhase(double join_rate, double leave_rate, std::size_t events,
             std::size_t attach)
      : join_rate_(join_rate),
        leave_rate_(leave_rate),
        events_(events),
        attach_(attach) {
    DASH_CHECK_MSG(events_ > 0, "churn needs a positive event count");
    DASH_CHECK_MSG(attach_ > 0, "churn joins need >= 1 attachment");
  }

  std::string spec() const override {
    std::string out("churn:");
    out += rate_to_string(join_rate_);
    out += ',';
    out += rate_to_string(leave_rate_);
    if (attach_ != 2) {
      out += ',';
      out += std::to_string(attach_);
    }
    out += 'x';
    out += std::to_string(events_);
    return out;
  }

  void execute(PlayContext& ctx) const override {
    for (std::size_t e = 0; e < events_; ++e) {
      if (ctx.stopped()) break;
      // Both coins are flipped every tick (joins and leaves are
      // independent processes), keeping the stream layout fixed.
      const bool do_join = ctx.rng.chance(join_rate_);
      const bool do_leave = ctx.rng.chance(leave_rate_);
      if (do_join) {
        ctx.net.join(
            pick_distinct_alive(ctx.net.graph(), ctx.rng, attach_));
      }
      if (do_leave && ctx.net.graph().num_alive() > ctx.floor) {
        const auto alive = ctx.net.graph().alive_nodes();
        ctx.net.remove(
            alive[static_cast<std::size_t>(ctx.rng.below(alive.size()))]);
      }
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<ChurnPhase>(*this);
  }

 private:
  double join_rate_;
  double leave_rate_;
  std::size_t events_;
  std::size_t attach_;
};

class JoinPhase final : public ScenarioPhase {
 public:
  JoinPhase(std::size_t attach, std::size_t count)
      : attach_(attach), count_(count) {
    DASH_CHECK_MSG(attach_ > 0, "join needs >= 1 attachment");
    DASH_CHECK_MSG(count_ > 0, "join needs a positive count");
  }

  std::string spec() const override {
    return "join:" + std::to_string(attach_) + "x" +
           std::to_string(count_);
  }

  void execute(PlayContext& ctx) const override {
    for (std::size_t i = 0; i < count_; ++i) {
      if (ctx.stopped()) break;
      ctx.net.join(
          pick_distinct_alive(ctx.net.graph(), ctx.rng, attach_));
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<JoinPhase>(*this);
  }

 private:
  std::size_t attach_;
  std::size_t count_;
};

class RampPhase final : public ScenarioPhase {
 public:
  RampPhase(double join_start, double leave_start, double join_end,
            double leave_end, std::size_t events, std::size_t attach)
      : join_start_(join_start),
        leave_start_(leave_start),
        join_end_(join_end),
        leave_end_(leave_end),
        events_(events),
        attach_(attach) {
    DASH_CHECK_MSG(events_ > 0, "ramp needs a positive event count");
    DASH_CHECK_MSG(attach_ > 0, "ramp joins need >= 1 attachment");
  }

  std::string spec() const override {
    std::string out("ramp:");
    out += rate_to_string(join_start_);
    out += ',';
    out += rate_to_string(leave_start_);
    out += ',';
    out += rate_to_string(join_end_);
    out += ',';
    out += rate_to_string(leave_end_);
    if (attach_ != 2) {
      out += ',';
      out += std::to_string(attach_);
    }
    out += 'x';
    out += std::to_string(events_);
    return out;
  }

  void execute(PlayContext& ctx) const override {
    for (std::size_t e = 0; e < events_; ++e) {
      if (ctx.stopped()) break;
      // Linear interpolation of both rates across the phase; the last
      // tick hits the end rates exactly. Same both-coins-every-tick
      // stream layout as ChurnPhase, so a ramp with equal start/end
      // rates consumes the identical RNG stream a churn phase would.
      const double t =
          events_ == 1 ? 0.0
                       : static_cast<double>(e) /
                             static_cast<double>(events_ - 1);
      const bool do_join =
          ctx.rng.chance(join_start_ + (join_end_ - join_start_) * t);
      const bool do_leave =
          ctx.rng.chance(leave_start_ + (leave_end_ - leave_start_) * t);
      if (do_join) {
        ctx.net.join(
            pick_distinct_alive(ctx.net.graph(), ctx.rng, attach_));
      }
      if (do_leave && ctx.net.graph().num_alive() > ctx.floor) {
        const auto alive = ctx.net.graph().alive_nodes();
        ctx.net.remove(
            alive[static_cast<std::size_t>(ctx.rng.below(alive.size()))]);
      }
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<RampPhase>(*this);
  }

 private:
  double join_start_;
  double leave_start_;
  double join_end_;
  double leave_end_;
  std::size_t events_;
  std::size_t attach_;
};

/// One weighted alternative of a mix phase.
struct MixArm {
  std::uint64_t weight = 1;
  Scenario body;
};

class MixPhase final : public ScenarioPhase {
 public:
  MixPhase(std::vector<MixArm> arms, std::size_t draws)
      : arms_(std::move(arms)), draws_(draws) {
    DASH_CHECK_MSG(!arms_.empty(), "mix needs at least one arm");
    DASH_CHECK_MSG(draws_ > 0, "mix needs a positive draw count");
    for (const MixArm& arm : arms_) {
      DASH_CHECK_MSG(arm.weight > 0, "mix weights must be >= 1");
      DASH_CHECK_MSG(!arm.body.empty(), "mix arm needs at least one phase");
      total_ += arm.weight;
    }
  }

  std::string spec() const override {
    std::string out("mix:");
    for (std::size_t i = 0; i < arms_.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(arms_[i].weight);
      out += '{';
      out += arms_[i].body.spec();
      out += '}';
    }
    out += 'x';
    out += std::to_string(draws_);
    return out;
  }

  void execute(PlayContext& ctx) const override {
    for (std::size_t d = 0; d < draws_; ++d) {
      if (ctx.stopped()) break;
      // One weighted draw per iteration, then the chosen arm's whole
      // phase list runs once.
      std::uint64_t r = ctx.rng.below(total_);
      for (const MixArm& arm : arms_) {
        if (r < arm.weight) {
          for (const auto& phase : arm.body.phases()) {
            if (ctx.stopped()) return;
            phase->execute(ctx);
          }
          break;
        }
        r -= arm.weight;
      }
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<MixPhase>(*this);
  }

 private:
  std::vector<MixArm> arms_;
  std::size_t draws_;
  std::uint64_t total_ = 0;
};

class TargetedPhase final : public ScenarioPhase {
 public:
  TargetedPhase(std::string attack, std::size_t max_deletions)
      : attack_(std::move(attack)), max_deletions_(max_deletions) {
    validate_attack_spec("targeted", attack_);
  }

  TargetedPhase(AttackerFactory factory, std::string label,
                std::size_t max_deletions)
      : attack_("<" + label + ">"),
        factory_(std::move(factory)),
        max_deletions_(max_deletions) {}

  std::string spec() const override {
    std::string out("targeted:");
    out += attack_;
    if (max_deletions_ > 0) {
      out += 'x';
      out += std::to_string(max_deletions_);
    }
    return out;
  }

  void execute(PlayContext& ctx) const override {
    auto atk = factory_ ? factory_(ctx.rng.next_u64())
                        : attack::make_attack(attack_, ctx.rng.next_u64());
    std::size_t deleted = 0;
    while (max_deletions_ == 0 || deleted < max_deletions_) {
      if (ctx.net.graph().num_alive() <= ctx.floor || ctx.stopped()) break;
      const NodeId v = atk->select(ctx.net.graph(), ctx.net.state());
      if (v == graph::kInvalidNode) break;
      ctx.net.remove(v);
      ++deleted;
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<TargetedPhase>(*this);
  }

 private:
  std::string attack_;
  AttackerFactory factory_;
  std::size_t max_deletions_ = 0;
};

class UntilNLeftPhase final : public ScenarioPhase {
 public:
  UntilNLeftPhase(std::size_t n, std::string attack)
      : n_(n), attack_(std::move(attack)) {
    DASH_CHECK_MSG(n_ > 0, "until needs n >= 1");
    validate_attack_spec("until", attack_);
  }

  std::string spec() const override {
    return "until:" + std::to_string(n_) + "," + attack_;
  }

  void execute(PlayContext& ctx) const override {
    auto atk = attack::make_attack(attack_, ctx.rng.next_u64());
    while (ctx.net.graph().num_alive() > std::max(n_, ctx.floor)) {
      if (ctx.stopped()) break;
      const NodeId v = atk->select(ctx.net.graph(), ctx.net.state());
      if (v == graph::kInvalidNode) break;
      ctx.net.remove(v);
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<UntilNLeftPhase>(*this);
  }

 private:
  std::size_t n_;
  std::string attack_;
};

class UntilFracPhase final : public ScenarioPhase {
 public:
  UntilFracPhase(double frac, std::string attack)
      : frac_(frac), attack_(std::move(attack)) {
    DASH_CHECK_MSG(frac_ > 0.0 && frac_ <= 1.0,
                   "untilfrac needs a fraction in (0, 1]");
    validate_attack_spec("untilfrac", attack_);
  }

  std::string spec() const override {
    return "untilfrac:" + rate_to_string(frac_) + "," + attack_;
  }

  void execute(PlayContext& ctx) const override {
    // Size-relative target: delete until at most ceil(initial * frac)
    // nodes survive. The initial size comes from the engine, so the
    // same phase value serves every n of a sweep grid ("delete half"
    // without baking n/2 into the spec).
    const double raw =
        std::ceil(static_cast<double>(ctx.net.initial_size()) * frac_);
    const auto target =
        std::max<std::size_t>(1, static_cast<std::size_t>(raw));
    auto atk = attack::make_attack(attack_, ctx.rng.next_u64());
    while (ctx.net.graph().num_alive() > std::max(target, ctx.floor)) {
      if (ctx.stopped()) break;
      const NodeId v = atk->select(ctx.net.graph(), ctx.net.state());
      if (v == graph::kInvalidNode) break;
      ctx.net.remove(v);
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<UntilFracPhase>(*this);
  }

 private:
  double frac_;
  std::string attack_;
};

/// A registered name standing for a whole phase list; spec() round-trips
/// through the preset's name, so grids and CLIs stay readable.
class PresetPhase final : public ScenarioPhase {
 public:
  PresetPhase(std::string name, Scenario body)
      : name_(std::move(name)), body_(std::move(body)) {}

  std::string spec() const override { return name_; }

  void execute(PlayContext& ctx) const override {
    for (const auto& phase : body_.phases()) {
      if (ctx.stopped()) return;
      phase->execute(ctx);
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<PresetPhase>(*this);
  }

 private:
  std::string name_;
  Scenario body_;
};

class RepeatPhase final : public ScenarioPhase {
 public:
  RepeatPhase(std::size_t times, Scenario body)
      : times_(times), body_(std::move(body)) {
    DASH_CHECK_MSG(times_ > 0, "repeat needs a positive multiplier");
  }

  std::string spec() const override {
    return "repeat:" + std::to_string(times_) + "{" + body_.spec() + "}";
  }

  void execute(PlayContext& ctx) const override {
    for (std::size_t t = 0; t < times_; ++t) {
      for (const auto& phase : body_.phases()) {
        if (ctx.stopped()) return;
        phase->execute(ctx);
      }
    }
  }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<RepeatPhase>(*this);
  }

 private:
  std::size_t times_;
  Scenario body_;
};

class FloorPhase final : public ScenarioPhase {
 public:
  explicit FloorPhase(std::size_t min_alive) : min_alive_(min_alive) {
    DASH_CHECK_MSG(min_alive_ > 0, "floor needs min_alive >= 1");
  }

  std::string spec() const override {
    return "floor:" + std::to_string(min_alive_);
  }

  void execute(PlayContext& ctx) const override { ctx.floor = min_alive_; }

  std::unique_ptr<ScenarioPhase> clone() const override {
    return std::make_unique<FloorPhase>(*this);
  }

 private:
  std::size_t min_alive_;
};

// ---- phase parsers (registry factories) ----------------------------------

std::unique_ptr<ScenarioPhase> parse_strike(const std::string& param) {
  const CountSplit cs = split_count("strike", param);
  if (cs.head.empty()) {
    return std::make_unique<StrikePhase>("maxnode",
                                         cs.has_count ? cs.count : 1);
  }
  if (!cs.has_count && all_digits(cs.head)) {
    // "strike:40" == "strike x40".
    const auto count = util::parse_spec_uint("strike", cs.head);
    if (count == 0) {
      throw std::invalid_argument("zero count in scenario phase 'strike:" +
                                  param + "'");
    }
    return std::make_unique<StrikePhase>(
        "maxnode", static_cast<std::size_t>(count));
  }
  return std::make_unique<StrikePhase>(cs.head,
                                       cs.has_count ? cs.count : 1);
}

std::unique_ptr<ScenarioPhase> parse_batch(const std::string& param) {
  const CountSplit cs = split_count("batch", param);
  const auto parts = split_commas(cs.head);
  if (parts.empty() || parts.size() > 2 || parts[0].empty()) {
    throw std::invalid_argument(
        "bad batch phase: 'batch:" + param +
        "' (expected batch:<k>[,hubs|random][xN])");
  }
  const auto k = util::parse_spec_uint("batch", parts[0]);
  if (k == 0) {
    throw std::invalid_argument("zero batch size in 'batch:" + param + "'");
  }
  std::string mode = parts.size() == 2 ? parts[1] : "hubs";
  if (mode != "hubs" && mode != "random") {
    throw std::invalid_argument("unknown batch mode '" + mode +
                                "' (expected hubs or random)");
  }
  return std::make_unique<BatchStrikePhase>(
      static_cast<std::size_t>(k), std::move(mode),
      cs.has_count ? cs.count : 0);
}

std::unique_ptr<ScenarioPhase> parse_churn(const std::string& param) {
  const CountSplit cs = split_count("churn", param);
  if (!cs.has_count) {
    throw std::invalid_argument(
        "churn phase needs an event count: 'churn:" + param +
        "' (expected churn:<join_rate>,<leave_rate>[,<attach>]xN)");
  }
  const auto parts = split_commas(cs.head);
  if (parts.size() < 2 || parts.size() > 3) {
    throw std::invalid_argument(
        "bad churn phase: 'churn:" + param +
        "' (expected churn:<join_rate>,<leave_rate>[,<attach>]xN)");
  }
  const double jr = parse_rate("churn", parts[0]);
  const double lr = parse_rate("churn", parts[1]);
  std::size_t attach = 2;
  if (parts.size() == 3) {
    attach = static_cast<std::size_t>(
        util::parse_spec_uint("churn", parts[2]));
    if (attach == 0) {
      throw std::invalid_argument("churn attach count must be >= 1 in '" +
                                  param + "'");
    }
  }
  return std::make_unique<ChurnPhase>(jr, lr, cs.count, attach);
}

std::unique_ptr<ScenarioPhase> parse_join(const std::string& param) {
  const CountSplit cs = split_count("join", param);
  std::size_t attach = 2;
  if (!cs.head.empty()) {
    attach = static_cast<std::size_t>(
        util::parse_spec_uint("join", cs.head));
    if (attach == 0) {
      throw std::invalid_argument("join attach count must be >= 1 in '" +
                                  param + "'");
    }
  }
  return std::make_unique<JoinPhase>(attach, cs.has_count ? cs.count : 1);
}

std::unique_ptr<ScenarioPhase> parse_ramp(const std::string& param) {
  const CountSplit cs = split_count("ramp", param);
  if (!cs.has_count) {
    throw std::invalid_argument(
        "ramp phase needs an event count: 'ramp:" + param +
        "' (expected ramp:<jr0>,<lr0>,<jr1>,<lr1>[,<attach>]xN)");
  }
  const auto parts = split_commas(cs.head);
  if (parts.size() < 4 || parts.size() > 5) {
    throw std::invalid_argument(
        "bad ramp phase: 'ramp:" + param +
        "' (expected ramp:<jr0>,<lr0>,<jr1>,<lr1>[,<attach>]xN)");
  }
  const double jr0 = parse_rate("ramp", parts[0]);
  const double lr0 = parse_rate("ramp", parts[1]);
  const double jr1 = parse_rate("ramp", parts[2]);
  const double lr1 = parse_rate("ramp", parts[3]);
  std::size_t attach = 2;
  if (parts.size() == 5) {
    attach = static_cast<std::size_t>(
        util::parse_spec_uint("ramp", parts[4]));
    if (attach == 0) {
      throw std::invalid_argument("ramp attach count must be >= 1 in '" +
                                  param + "'");
    }
  }
  return std::make_unique<RampPhase>(jr0, lr0, jr1, lr1, cs.count, attach);
}

std::unique_ptr<ScenarioPhase> parse_mix(const std::string& param) {
  const CountSplit cs = split_count("mix", param);
  if (!cs.has_count) {
    throw std::invalid_argument(
        "mix phase needs a draw count: 'mix:" + param +
        "' (expected mix:<w1>{<phases>},<w2>{<phases>}[,...]xN)");
  }
  std::vector<MixArm> arms;
  for (const std::string& item : split_commas_toplevel(cs.head)) {
    const auto brace = item.find('{');
    if (item.empty() || brace == std::string::npos || brace == 0 ||
        item.back() != '}' || !all_digits(item.substr(0, brace))) {
      throw std::invalid_argument("bad mix arm '" + item + "' in 'mix:" +
                                  param +
                                  "' (expected <weight>{<phases>})");
    }
    MixArm arm;
    arm.weight = util::parse_spec_uint("mix", item.substr(0, brace));
    if (arm.weight == 0) {
      throw std::invalid_argument("zero weight in 'mix:" + param + "'");
    }
    arm.body =
        Scenario::parse(item.substr(brace + 1, item.size() - brace - 2));
    arms.push_back(std::move(arm));
  }
  return std::make_unique<MixPhase>(std::move(arms), cs.count);
}

std::unique_ptr<ScenarioPhase> parse_targeted(const std::string& param) {
  const CountSplit cs = split_count("targeted", param);
  const std::string attack = cs.head.empty() ? "maxnode" : cs.head;
  return std::make_unique<TargetedPhase>(attack,
                                         cs.has_count ? cs.count : 0);
}

std::unique_ptr<ScenarioPhase> parse_until(const std::string& param) {
  const auto parts = split_commas(param);
  if (parts.empty() || parts.size() > 2 || !all_digits(parts[0])) {
    throw std::invalid_argument("bad until phase: 'until:" + param +
                                "' (expected until:<n>[,<attack>])");
  }
  const auto n = util::parse_spec_uint("until", parts[0]);
  if (n == 0) {
    throw std::invalid_argument("until needs n >= 1 in 'until:" + param +
                                "'");
  }
  return std::make_unique<UntilNLeftPhase>(
      static_cast<std::size_t>(n),
      parts.size() == 2 && !parts[1].empty() ? parts[1] : "maxnode");
}

std::unique_ptr<ScenarioPhase> parse_untilfrac(const std::string& param) {
  const auto parts = split_commas(param);
  if (parts.empty() || parts.size() > 2 || parts[0].empty()) {
    throw std::invalid_argument(
        "bad untilfrac phase: 'untilfrac:" + param +
        "' (expected untilfrac:<frac>[,<attack>])");
  }
  const double frac = parse_rate("untilfrac", parts[0]);
  if (frac <= 0.0 || frac > 1.0) {
    throw std::invalid_argument(
        "untilfrac needs a fraction in (0, 1] in 'untilfrac:" + param +
        "'");
  }
  return std::make_unique<UntilFracPhase>(
      frac, parts.size() == 2 && !parts[1].empty() ? parts[1] : "maxnode");
}

std::unique_ptr<ScenarioPhase> parse_repeat(const std::string& param) {
  const auto brace = param.find('{');
  if (brace == std::string::npos || param.empty() ||
      param.back() != '}' || !all_digits(param.substr(0, brace))) {
    throw std::invalid_argument("bad repeat phase: 'repeat:" + param +
                                "' (expected repeat:<k>{<phases>})");
  }
  const auto times = util::parse_spec_uint("repeat", param.substr(0, brace));
  if (times == 0) {
    throw std::invalid_argument("zero count in 'repeat:" + param + "'");
  }
  const std::string inner =
      param.substr(brace + 1, param.size() - brace - 2);
  return std::make_unique<RepeatPhase>(static_cast<std::size_t>(times),
                                       Scenario::parse(inner));
}

std::unique_ptr<ScenarioPhase> parse_floor(const std::string& param) {
  if (!all_digits(param)) {
    throw std::invalid_argument("bad floor phase: 'floor:" + param +
                                "' (expected floor:<min_alive>)");
  }
  const auto n = util::parse_spec_uint("floor", param);
  if (n == 0) {
    throw std::invalid_argument("floor needs min_alive >= 1 in 'floor:" +
                                param + "'");
  }
  return std::make_unique<FloorPhase>(static_cast<std::size_t>(n));
}

/// Split a spec into phase tokens at top-level ';' (braces nest).
std::vector<std::string> split_phases(const std::string& spec) {
  std::vector<std::string> tokens;
  std::string current;
  int depth = 0;
  for (char c : spec) {
    if (c == '{') ++depth;
    if (c == '}') {
      --depth;
      if (depth < 0) {
        throw std::invalid_argument("unbalanced '}' in scenario spec: '" +
                                    spec + "'");
      }
    }
    if (c == ';' && depth == 0) {
      tokens.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (depth != 0) {
    throw std::invalid_argument("unbalanced '{' in scenario spec: '" +
                                spec + "'");
  }
  tokens.push_back(current);
  return tokens;
}

std::string trimmed(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\n\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\n\r");
  return s.substr(begin, end - begin + 1);
}

/// Register a named preset: a fixed phase list a spec can pull in by
/// name. Presets live in the same registry as the primitive phases, so
/// an unknown preset error lists every registered spelling.
void add_preset(util::Registry<ScenarioPhase>* r, const std::string& name,
                const std::string& body_spec) {
  r->add(name,
         [name, body_spec](const std::string& param)
             -> std::unique_ptr<ScenarioPhase> {
           if (!param.empty()) {
             throw std::invalid_argument("scenario preset '" + name +
                                         "' takes no parameter (got '" +
                                         param + "')");
           }
           return std::make_unique<PresetPhase>(name,
                                                Scenario::parse(body_spec));
         },
         {}, name);
}

}  // namespace

// ---- registry -------------------------------------------------------------

util::Registry<ScenarioPhase>& scenario_phase_registry() {
  static util::Registry<ScenarioPhase>* registry = [] {
    auto* r = new util::Registry<ScenarioPhase>("scenario phase");
    r->add(
        "strike",
        [](const std::string& param) { return parse_strike(param); },
        {"delete"}, "strike[:<attack>][xN]");
    r->add(
        "batch",
        [](const std::string& param) { return parse_batch(param); },
        {"batch_strike", "batchstrike"}, "batch:<k>[,hubs|random][xN]");
    r->add(
        "churn",
        [](const std::string& param) { return parse_churn(param); }, {},
        "churn:<join_rate>,<leave_rate>[,<attach>]xN");
    r->add(
        "targeted",
        [](const std::string& param) { return parse_targeted(param); },
        {"targeted_attack", "run"}, "targeted[:<attack>][xN]");
    r->add(
        "until",
        [](const std::string& param) { return parse_until(param); },
        {"until_n_left", "untilnleft"}, "until:<n>[,<attack>]");
    r->add(
        "repeat",
        [](const std::string& param) { return parse_repeat(param); }, {},
        "repeat:<k>{...}");
    r->add(
        "floor",
        [](const std::string& param) { return parse_floor(param); }, {},
        "floor:<min_alive>");
    r->add(
        "untilfrac",
        [](const std::string& param) { return parse_untilfrac(param); },
        {"until_frac"}, "untilfrac:<frac>[,<attack>]");
    r->add(
        "join",
        [](const std::string& param) { return parse_join(param); }, {},
        "join[:<attach>][xN]");
    r->add(
        "ramp",
        [](const std::string& param) { return parse_ramp(param); }, {},
        "ramp:<jr0>,<lr0>,<jr1>,<lr1>[,<attach>]xN");
    r->add(
        "mix",
        [](const std::string& param) { return parse_mix(param); }, {},
        "mix:<w>{...},<w>{...}xN");
    // Named presets (keep these registered after the primitives they
    // expand to): the spellings grids and dash_lab reference directly.
    add_preset(r, "paper-churn", "churn:0.3,0.1x500");
    add_preset(r, "max-degree-attack", "targeted:maxnode");
    add_preset(r, "until-half", "untilfrac:0.5,maxnode");
    add_preset(r, "until-quarter", "untilfrac:0.25,maxnode");
    // "trace:<file>" lives in the replay layer, which api headers
    // cannot include; both sides link into one library, so the phase
    // registers itself through this hook (replay/trace_phase.cpp).
    dash::replay::detail::register_trace_phase(r);
    return r;
  }();
  return *registry;
}

// ---- Scenario ---------------------------------------------------------------

Scenario& Scenario::operator=(const Scenario& other) {
  if (this == &other) return *this;
  phases_.clear();
  phases_.reserve(other.phases_.size());
  for (const auto& p : other.phases_) phases_.push_back(p->clone());
  return *this;
}

Scenario Scenario::parse(const std::string& spec) {
  Scenario out;
  for (const std::string& raw : split_phases(spec)) {
    const std::string token = trimmed(raw);
    if (token.empty()) {
      throw std::invalid_argument("empty phase in scenario spec: '" + spec +
                                  "'");
    }
    out.add(scenario_phase_registry().create(token));
  }
  return out;
}

Scenario& Scenario::strike(std::size_t count, const std::string& attack) {
  return add(std::make_unique<StrikePhase>(attack, count));
}

Scenario& Scenario::batch_strike(std::size_t batch_size, std::size_t rounds,
                                 const std::string& mode) {
  return add(std::make_unique<BatchStrikePhase>(batch_size, mode, rounds));
}

Scenario& Scenario::churn(double join_rate, double leave_rate,
                          std::size_t events, std::size_t attach) {
  return add(
      std::make_unique<ChurnPhase>(join_rate, leave_rate, events, attach));
}

Scenario& Scenario::targeted(const std::string& attack,
                             std::size_t max_deletions) {
  return add(std::make_unique<TargetedPhase>(attack, max_deletions));
}

Scenario& Scenario::targeted(AttackerFactory factory,
                             const std::string& label,
                             std::size_t max_deletions) {
  DASH_CHECK_MSG(factory != nullptr, "null attacker factory");
  return add(std::make_unique<TargetedPhase>(std::move(factory), label,
                                             max_deletions));
}

Scenario& Scenario::until_n_left(std::size_t n, const std::string& attack) {
  return add(std::make_unique<UntilNLeftPhase>(n, attack));
}

Scenario& Scenario::until_fraction(double frac, const std::string& attack) {
  return add(std::make_unique<UntilFracPhase>(frac, attack));
}

Scenario& Scenario::repeat(std::size_t times, Scenario body) {
  return add(std::make_unique<RepeatPhase>(times, std::move(body)));
}

Scenario& Scenario::floor(std::size_t min_alive) {
  return add(std::make_unique<FloorPhase>(min_alive));
}

Scenario& Scenario::add(std::unique_ptr<ScenarioPhase> phase) {
  DASH_CHECK_MSG(phase != nullptr, "null scenario phase");
  phases_.push_back(std::move(phase));
  return *this;
}

std::string Scenario::spec() const {
  std::string out;
  for (const auto& p : phases_) {
    if (!out.empty()) out += ";";
    out += p->spec();
  }
  return out;
}

// ---- Network::play ---------------------------------------------------------

Metrics Network::play(const Scenario& scenario, dash::util::Rng& rng,
                      const PlayOptions& opts) {
  PlayContext ctx{*this, rng, 1, &opts};
  for (const auto& phase : scenario.phases()) {
    if (ctx.stopped()) break;
    notify_phase(phase->spec());
    phase->execute(ctx);
  }
  return finish();
}

Metrics Network::play(const Scenario& scenario, dash::util::Rng& rng) {
  return play(scenario, rng, PlayOptions{});
}

Metrics Network::play(const Scenario& scenario, std::uint64_t seed,
                      const PlayOptions& opts) {
  dash::util::Rng rng(seed);
  return play(scenario, rng, opts);
}

Metrics Network::play(const Scenario& scenario, std::uint64_t seed) {
  return play(scenario, seed, PlayOptions{});
}

}  // namespace dash::api
