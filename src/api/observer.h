// observer.h -- the pluggable measurement/validation pipeline of the
// api::Network engine.
//
// The engine owns the protocol loop (delete -> heal -> propagate);
// measurement is a list of observers registered on the engine,
// notified in registration order -- register producers before
// consumers (e.g. a StretchObserver before the SinkObserver that logs
// its samples into the output rows).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "api/metrics.h"
#include "core/healing_state.h"
#include "core/strategy.h"

namespace dash::graph {
class DynamicConnectivity;
}

namespace dash::api {

class Network;

/// One engine round: a deletion (or simultaneous batch of deletions)
/// followed by a heal. For single deletions `ctx`/`action` point at the
/// deletion context and the strategy's heal record; for batch rounds
/// they are null (the paper's footnote-1 batch protocol has per-cluster
/// contexts, summarized in the engine metrics instead).
struct RoundEvent {
  std::size_t round = 0;  ///< 1-based, == Metrics::deletions after the round
  std::size_t deletions_in_round = 1;
  /// Single-deletion victim; first batch member for batch rounds.
  graph::NodeId victim = graph::kInvalidNode;
  const core::DeletionContext* ctx = nullptr;  ///< null for batch rounds
  const core::HealAction* action = nullptr;    ///< null for batch rounds
  /// The full victim set of a batch round (null for single-deletion
  /// rounds); points at the engine caller's vector, valid for the
  /// round's pipeline only -- copy to retain (replay::RecorderSink
  /// needs the whole batch, not just the representative victim).
  const std::vector<graph::NodeId>* batch = nullptr;
  /// Healing edges inserted into G this round (summed over the batch's
  /// clusters for batch rounds).
  std::size_t edges_added = 0;

  /// Post-heal connectivity of the network. Computed lazily on the
  /// first call and cached for the rest of the round's pipeline. For
  /// engines in tracker mode the answer comes from the incremental
  /// graph::DynamicConnectivity (O(alpha) on certified rounds); in BFS
  /// mode -- and for events detached from an engine -- it is the full
  /// O(n+m) scan. Rounds where nothing asks pay nothing either way.
  /// The engine folds any computed value into Metrics::stayed_connected
  /// after the observers ran.
  bool connected() const;
  /// True once some pipeline stage paid for the connectivity check.
  bool connectivity_checked() const { return connected_.has_value(); }

 private:
  friend class Network;
  const graph::Graph* graph_ = nullptr;
  /// Null for detached events and engines in BFS mode.
  graph::DynamicConnectivity* tracker_ = nullptr;
  /// kVerify engines cross-check every tracker answer against the scan.
  bool verify_ = false;
  /// Round-scoped cache. The engine constructs a fresh event per round
  /// and asserts this is unset when the round's pipeline starts, so a
  /// stale verdict can never leak across rounds.
  mutable std::optional<bool> connected_;
};

/// One organic arrival (Network::join). Holds the attach list by value
/// so observers may copy or store the event beyond the callback.
struct JoinEvent {
  graph::NodeId joined = graph::kInvalidNode;
  std::vector<graph::NodeId> attached_to;
};

class Observer {
 public:
  virtual ~Observer() = default;

  virtual std::string name() const = 0;

  /// Called once when registered on an engine; snapshot baselines here
  /// (initial size, original distances, ...).
  virtual void on_attach(const Network& /*net*/) {}

  /// Called before the round's deletion mutates the network. `round`
  /// is the id the matching RoundEvent will carry: the cumulative
  /// deletion count once this round completes (for a batch round that
  /// is current deletions + batch size).
  virtual void on_round_begin(const Network& /*net*/,
                              std::size_t /*round*/) {}

  /// Called after the heal and the engine's round accounting (the
  /// event's metrics are post-round), immediately before on_round_end.
  /// Only fires for single-deletion rounds, where ev.ctx/ev.action
  /// describe the one heal; batch rounds go straight to on_round_end.
  virtual void on_heal(const Network& /*net*/, const RoundEvent& /*ev*/) {}

  /// Called after the engine finished the round's accounting (always,
  /// for both single and batch rounds).
  virtual void on_round_end(const Network& /*net*/,
                            const RoundEvent& /*ev*/) {}

  /// Called after an organic arrival was wired in.
  virtual void on_join(const Network& /*net*/, const JoinEvent& /*ev*/) {}

  /// Called by Network::play when a scenario phase is about to execute,
  /// with the phase's canonical spec. Purely informational (phases are
  /// an orchestration construct, not a protocol event); the replay
  /// recorder uses it to mark phase boundaries in its traces.
  virtual void on_phase(const Network& /*net*/, const std::string& /*spec*/) {
  }

  /// Called by Network::finish()/run(); contribute observer-owned
  /// metrics (violation, stretch, ...) to the outgoing snapshot.
  virtual void on_finish(const Network& /*net*/, Metrics& /*out*/) {}
};

}  // namespace dash::api
