// sink.h -- composable metric output for the engine layer.
//
// A MetricSink consumes two event kinds:
//
//   on_row(row)      one RoundRow per engine round (or join), the
//                    per-event time series the old analysis::Recorder
//                    captured;
//   on_run(i, m)     one Metrics snapshot when instance i finishes.
//
// Sinks compose: the same run can stream rows to a CSV file while a
// JSON summary collects the per-instance snapshots. Three built-ins:
//
//   MemorySink      rows + run snapshots in vectors (tests, plots)
//   CsvStreamSink   rows straight to an ostream -- constant memory, the
//                   right sink for churn-heavy long runs
//   JsonSummarySink per-run snapshots + aggregate statistics as a JSON
//                   document (the BENCH_*.json format)
//
// SinkObserver is the pipeline stage that feeds a sink from a live
// engine. In api::run_suite, sinks are instead fed after the parallel
// barrier in instance order, so sink output is byte-identical no
// matter how many worker threads ran the suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "api/metrics.h"
#include "api/observer.h"
#include "util/csv.h"

namespace dash::api {

class Network;
class StretchObserver;

/// One time-series record: a deletion round (single or batch) or an
/// organic join, with the post-event shape of the network.
struct RoundRow {
  std::size_t instance = 0;  ///< suite instance index; 0 for single runs
  /// Per-instance emission index (0, 1, 2, ... in the order the
  /// instance produced its rows). (instance, seq) is a total order:
  /// sorting rows from an interleaved-mode suite by it reproduces the
  /// deterministic buffered ordering exactly.
  std::size_t seq = 0;
  std::size_t round = 0;     ///< cumulative deletions after the event
  std::size_t deletions_in_round = 1;  ///< 0 for join rows
  /// Deleted node (first batch member for batch rounds); the joined
  /// node's id for join rows.
  std::uint32_t event_node = 0;
  bool is_join = false;
  std::size_t alive = 0;
  std::size_t edges = 0;
  std::size_t edges_added = 0;
  std::uint32_t max_delta = 0;
  std::size_t largest_component = 0;
  double stretch = 0.0;  ///< 0 when not sampled this round
  bool stretch_sampled = false;
};

/// The CsvStreamSink column set, exposed so other row emitters (the
/// exp layer's per-shard rows files) stay bit-for-bit in sync with the
/// in-process CSV stream.
const std::vector<std::string>& round_row_header();

/// One row's fields, formatted exactly as CsvStreamSink writes them
/// (same field order as round_row_header(), same float formatting).
std::vector<std::string> round_row_fields(const RoundRow& row);

class MetricSink {
 public:
  virtual ~MetricSink() = default;

  virtual std::string name() const = 0;

  /// One per-event record. Default: ignore (summary-only sinks).
  virtual void on_row(const RoundRow& /*row*/) {}

  /// One finished run's metric snapshot. Default: ignore (row-only
  /// sinks).
  virtual void on_run(std::size_t /*instance*/, const Metrics& /*m*/) {}

  /// All producers are done; emit/flush any buffered output.
  virtual void flush() {}
};

/// Keeps everything in memory -- the in-process replacement for the
/// removed analysis::Recorder.
class MemorySink final : public MetricSink {
 public:
  std::string name() const override { return "memory"; }
  void on_row(const RoundRow& row) override { rows_.push_back(row); }
  void on_run(std::size_t instance, const Metrics& m) override {
    runs_.emplace_back(instance, m);
  }

  const std::vector<RoundRow>& rows() const { return rows_; }
  const std::vector<std::pair<std::size_t, Metrics>>& runs() const {
    return runs_;
  }
  bool empty() const { return rows_.empty() && runs_.empty(); }
  void clear() {
    rows_.clear();
    runs_.clear();
  }

 private:
  std::vector<RoundRow> rows_;
  std::vector<std::pair<std::size_t, Metrics>> runs_;
};

/// Streams rows to an ostream as CSV (header first) without retaining
/// them: memory stays constant over million-event churn scenarios.
class CsvStreamSink final : public MetricSink {
 public:
  explicit CsvStreamSink(std::ostream& out);

  std::string name() const override { return "csv"; }
  void on_row(const RoundRow& row) override;
  void flush() override;

  std::size_t rows_written() const { return writer_.rows_written(); }

 private:
  std::ostream& out_;
  dash::util::CsvWriter writer_;
};

/// Collects per-run snapshots into labelled groups and, on flush(),
/// writes one JSON document: every run's metrics plus mean/stddev/min/
/// max aggregates per metric -- the BENCH_*.json summary format.
class JsonSummarySink final : public MetricSink {
 public:
  explicit JsonSummarySink(std::ostream& out) : out_(out) {}

  /// Start a new labelled group ("n" = "256", "strategy" = "DASH", ...);
  /// subsequent on_run() calls land in it. Without any begin_group()
  /// the sink keeps one unlabelled group.
  void begin_group(std::vector<std::pair<std::string, std::string>> labels);

  std::string name() const override { return "json"; }
  void on_run(std::size_t instance, const Metrics& m) override;
  void flush() override;

 private:
  struct Group {
    std::vector<std::pair<std::string, std::string>> labels;
    std::vector<Metrics> runs;
  };

  std::ostream& out_;
  std::vector<Group> groups_;
  bool flushed_ = false;
};

/// Pipeline stage feeding a sink from a live engine: one row per round
/// (and per join), one on_run() when the engine finishes. Register a
/// StretchObserver *before* this stage and pass it here to log its
/// samples into the rows.
class SinkObserver final : public Observer {
 public:
  explicit SinkObserver(MetricSink& sink,
                        const StretchObserver* stretch = nullptr,
                        std::size_t instance = 0)
      : sink_(sink), stretch_(stretch), instance_(instance) {}

  std::string name() const override { return "sink"; }
  void on_round_end(const Network& net, const RoundEvent& ev) override;
  void on_join(const Network& net, const JoinEvent& ev) override;
  void on_finish(const Network& net, Metrics& out) override;

 private:
  MetricSink& sink_;
  const StretchObserver* stretch_;
  std::size_t instance_;
  std::size_t seq_ = 0;  ///< next RoundRow::seq for this instance
};

}  // namespace dash::api
