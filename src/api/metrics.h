// metrics.h -- the metric snapshot a Network engine reports.
//
// Engine-maintained fields (deletions, edges_added, ...) are updated as
// events happen; observer-contributed fields (violation, max_stretch)
// are filled in by whichever observers are registered when the engine
// finishes a run. The struct is the same shape the paper's experiments
// report, so one snapshot serves every figure.
//
// Every field is a pure function of the seed and the workload -- no
// wall-clock numbers live here -- so sequential and parallel suite
// runs over the same seeds produce byte-identical snapshots.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dash::api {

struct Metrics {
  std::size_t deletions = 0;  ///< adversarial/organic removals so far
  std::size_t joins = 0;      ///< organic arrivals so far
  /// Paper's headline metric: max over nodes and over time of delta(v).
  std::uint32_t max_delta = 0;
  std::uint32_t max_id_changes = 0;
  std::uint64_t max_messages = 0;       ///< sent + received (Lemma 8)
  std::uint64_t max_messages_sent = 0;  ///< sent only (Fig. 9(b)'s metric)
  std::size_t edges_added = 0;          ///< healing edges inserted into G
  std::size_t surrogate_heals = 0;      ///< SDASH star-rule activations
  double max_stretch = 0.0;  ///< max over sampled rounds (StretchObserver)
  /// Component structure at snapshot time, answered by the engine's
  /// incremental connectivity tracker (or a BFS scan in kBfs mode --
  /// the values are identical by construction). 0 when no node is
  /// alive.
  std::size_t components = 0;
  std::size_t largest_component = 0;
  /// True while no connectivity check ever failed. Per-round checks are
  /// lazy (RoundEvent::connected()): a round is only inspected when an
  /// observer or RunOptions::stop_when_disconnected asks, plus one
  /// final check in Network::finish().
  bool stayed_connected = true;
  /// First invariant violation encountered (empty if none / unchecked;
  /// filled by InvariantObserver).
  std::string violation;
};

}  // namespace dash::api
