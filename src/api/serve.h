// serve.h -- the concurrent read path of api::Network: queries answered
// *while* churn and healing mutate the graph.
//
// Network::serve() attaches an engine-owned publisher observer that
// pushes an immutable graph::Snapshot (CSR view + component labels)
// into a graph::SnapshotStore after every round/join (configurable
// cadence). Reader threads each hold a ServeReader and answer
//
//   connected(u, v)        O(1) from the pinned labels
//   distance(u, v)         one BFS on the pinned CSR arrays
//   largest_component()    O(1) from the pinned labels
//
// entirely from a pinned epoch -- no lock is taken on the read path,
// and the mutation thread never waits for readers (epoch-based
// reclamation keeps retired snapshots alive exactly as long as some
// reader pins them; see graph/snapshot_store.h).
//
//   api::Network net(graph::barabasi_albert(10000, 2, rng), "dash", 1);
//   api::ServeHandle& serve = net.serve();
//   std::thread reader([r = serve.reader()]() mutable {
//     while (!done) {
//       api::ServePin pin = r.pin();            // one consistent epoch
//       if (pin.connected(u, v)) { ... }
//       auto d = pin.distance(u, v);            // same epoch as above
//     }
//   });
//   net.play(api::Scenario::parse("churn:0.3,0.1x2000"), rng);  // serves live
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "api/observer.h"
#include "graph/snapshot_store.h"
#include "graph/traversal.h"

namespace dash::api {

class Network;

struct ServeOptions {
  /// Publish a fresh snapshot every k-th mutation event (round or
  /// join); 1 = after every event. The final state is always published
  /// by Network::finish() regardless of cadence.
  std::size_t publish_every = 1;
};

/// A pinned epoch: every query through one ServePin sees the same
/// frozen graph, so multi-query invariants (connected implies finite
/// distance, component sizes sum to alive count) hold exactly. Keep
/// pins short-lived -- a pinned epoch holds its snapshot's memory.
class ServePin {
 public:
  ServePin(ServePin&&) noexcept = default;
  ServePin& operator=(ServePin&&) noexcept = default;

  std::uint64_t epoch() const { return pin_->epoch(); }
  std::size_t alive() const { return pin_->num_alive(); }
  std::size_t component_count() const { return pin_->component_count(); }
  std::size_t largest_component() const { return pin_->largest_component(); }
  bool connected(graph::NodeId u, graph::NodeId v) const {
    return pin_->connected(u, v);
  }
  /// BFS hop distance on the pinned snapshot; nullopt when dead or
  /// disconnected. Independent of the labels connected() reads, so
  /// `connected(u,v) == distance(u,v).has_value()` is a per-query
  /// torn-read cross-check (the serve bench's --verify mode).
  std::optional<std::uint32_t> distance(graph::NodeId u, graph::NodeId v) {
    return pin_->distance(u, v, *scratch_);
  }
  const graph::Snapshot& snapshot() const { return *pin_; }

 private:
  friend class ServeReader;
  ServePin(graph::SnapshotStore::Pin pin, graph::TraversalScratch* scratch)
      : pin_(std::move(pin)), scratch_(scratch) {}

  graph::SnapshotStore::Pin pin_;
  graph::TraversalScratch* scratch_;
};

/// One reader thread's handle: a reclamation slot plus a private BFS
/// scratch. Movable (hand it to the thread that will use it); use from
/// one thread at a time. Must not outlive the ServeHandle.
class ServeReader {
 public:
  ServeReader(ServeReader&&) noexcept = default;
  ServeReader& operator=(ServeReader&&) noexcept = default;

  /// Pin the latest published epoch for a batch of consistent queries.
  ServePin pin() { return ServePin(reader_.pin(), &scratch_); }

  // One-shot conveniences (pin + query + unpin).
  bool connected(graph::NodeId u, graph::NodeId v) {
    return pin().connected(u, v);
  }
  std::optional<std::uint32_t> distance(graph::NodeId u, graph::NodeId v) {
    return pin().distance(u, v);
  }
  std::size_t largest_component() { return pin().largest_component(); }
  std::size_t component_count() { return pin().component_count(); }
  std::uint64_t epoch() { return pin().epoch(); }

 private:
  friend class ServeHandle;
  explicit ServeReader(graph::SnapshotStore::Reader reader)
      : reader_(std::move(reader)) {}

  graph::SnapshotStore::Reader reader_;
  graph::TraversalScratch scratch_;
};

/// The serving engine attached to one Network. Owned by the Network
/// (Network::serve() returns a reference); readers may be created from
/// any thread. publish() runs on the mutation thread only -- normally
/// the internal observer calls it, but replay/batch drivers may force
/// an extra publish between events.
class ServeHandle {
 public:
  ServeHandle(const ServeHandle&) = delete;
  ServeHandle& operator=(const ServeHandle&) = delete;

  /// Latest published epoch (0 never happens: serve() publishes the
  /// initial state on attach).
  std::uint64_t epoch() const { return store_.epoch(); }

  /// Register a reader slot (any thread; brief lock).
  ServeReader reader() { return ServeReader(store_.make_reader()); }

  /// Publish the network's current state now. Mutation thread only.
  std::uint64_t publish();

  const ServeOptions& options() const { return opts_; }
  const graph::SnapshotStore& store() const { return store_; }

 private:
  friend class Network;

  /// The pipeline stage that publishes after mutation events. A plain
  /// member (not engine-owned) so handle and observer share lifetime.
  class Publisher final : public Observer {
   public:
    explicit Publisher(ServeHandle& handle) : handle_(handle) {}
    std::string name() const override { return "serve"; }
    void on_attach(const Network& net) override;
    void on_round_end(const Network& net, const RoundEvent& ev) override;
    void on_join(const Network& net, const JoinEvent& ev) override;
    void on_finish(const Network& net, Metrics& out) override;

   private:
    ServeHandle& handle_;
  };

  ServeHandle(Network& net, const ServeOptions& opts);
  void maybe_publish();

  Network& net_;
  ServeOptions opts_;
  graph::SnapshotStore store_;
  Publisher publisher_;
  std::size_t events_since_publish_ = 0;
};

}  // namespace dash::api
