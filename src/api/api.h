// api.h -- umbrella header for the engine layer: Network + observers +
// declarative scenarios + metric sinks + the multi-instance suite
// driver + both strategy registries.
#pragma once

#include "api/metrics.h"     // IWYU pragma: export
#include "api/network.h"     // IWYU pragma: export
#include "api/observer.h"    // IWYU pragma: export
#include "api/observers.h"   // IWYU pragma: export
#include "api/scenario.h"    // IWYU pragma: export
#include "api/sink.h"        // IWYU pragma: export
#include "api/suite.h"       // IWYU pragma: export
#include "attack/factory.h"  // IWYU pragma: export
#include "core/factory.h"    // IWYU pragma: export
