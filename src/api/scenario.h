// scenario.h -- declarative experiment workloads for the engine.
//
// A Scenario is a value describing *what happens to the network*: an
// ordered list of phases, each a compact event pattern the engine can
// execute, instead of a hand-rolled driver loop. Scenarios come from
// a builder API or from a one-line text spec:
//
//   api::Scenario sc = api::Scenario()
//                          .churn(0.3, 0.1, 500)
//                          .batch_strike(8, 50);
//   // ... is the same workload as ...
//   api::Scenario sc = api::Scenario::parse("churn:0.3,0.1x500;batch:8x50");
//
//   api::Network net(std::move(g), "dash", seed);
//   const api::Metrics m = net.play(sc, seed);
//
// Grammar (phases separated by ';', each `name[:args][xCOUNT]`; the
// count is the trailing `x<digits>` of the args):
//
//   strike[:<attack>][xN]        N single deletions picked by <attack>
//                                (default maxnode, N default 1);
//                                strike:N is shorthand for strike xN
//   batch:<k>[,hubs|random][xN]  N simultaneous k-node strikes (the
//                                footnote-1 batch protocol); without
//                                xN, repeat while > k nodes survive
//   churn:<jr>,<lr>[,<a>]xN      N churn ticks; each joins a new node
//                                (wired to <a>=2 random peers) with
//                                probability jr and deletes a random
//                                node with probability lr
//   targeted[:<attack>][xN]      run <attack> until it stops (or xN
//                                deletions) -- the classic full
//                                schedule is `targeted:<attack>`
//   until:<n>[,<attack>]         delete via <attack> until <= n alive
//   untilfrac:<f>[,<attack>]     delete via <attack> until at most
//                                ceil(initial_size * f) nodes survive --
//                                size-relative, so one spec serves every
//                                n of a sweep grid
//   join[:<a>][xN]               N organic arrivals, each wired to
//                                <a>=2 random alive peers (growth
//                                without the leave coin of churn)
//   ramp:<j0>,<l0>,<j1>,<l1>[,<a>]xN
//                                N churn ticks whose join/leave rates
//                                ramp linearly from (j0,l0) to (j1,l1)
//                                -- time-varying churn in one phase
//   mix:<w1>{...},<w2>{...}xN    weighted scenario mixture: N draws,
//                                each picking one nested phase list
//                                with probability w_i / sum(w) and
//                                running it once
//   repeat:<k>{...}              repeat a nested phase list k times
//   floor:<n>                    never delete below n alive nodes
//   trace:<file>                 replay a recorded trace's event
//                                stream (replay/trace_phase.h),
//                                leniently -- dead/out-of-range ids
//                                are filtered per event, so one trace
//                                drives any network size
//
// Named presets (whole phase lists registered under one spelling, e.g.
// "paper-churn", "max-degree-attack", "until-half", "until-quarter")
// parse like any other phase; an unknown name's error lists every
// registered spelling, presets included.
//
// Phase names are served by a util::Registry, so the error for an
// unknown phase lists every registered spelling, and downstream code
// can register its own phases. All randomness a phase consumes is
// drawn from the RNG stream handed to Network::play -- one seed, one
// byte-identical run, which is what makes parallel suites
// (api/suite.h) deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/strategy.h"
#include "util/registry.h"
#include "util/rng.h"

namespace dash::api {

class Network;

/// Knobs for one Network::play() call.
struct PlayOptions {
  /// Checked before every phase event; a true return ends the play
  /// (after which finish() still runs). Use for conditions the phase
  /// grammar cannot express, e.g. "stop at the first disconnection"
  /// together with an observer reading RoundEvent::connected().
  std::function<bool(const Network&)> stop_condition;
};

/// Mutable per-play state threaded through phase execution.
struct PlayContext {
  Network& net;
  dash::util::Rng& rng;
  /// Deletions never take the network to or below this many alive
  /// nodes (set by the `floor` phase; 1 keeps the last survivor).
  std::size_t floor = 1;
  const PlayOptions* options = nullptr;

  /// True once the play-level stop condition fired; phases must bail
  /// out of their event loops when it does.
  bool stopped() const {
    return options != nullptr && options->stop_condition &&
           options->stop_condition(net);
  }
};

/// One phase of a scenario. Implementations are value-like: clone()
/// must produce an independent deep copy, and execute() must draw all
/// randomness from ctx.rng.
class ScenarioPhase {
 public:
  virtual ~ScenarioPhase() = default;

  /// Canonical text form (parseable back through Scenario::parse,
  /// except for phases built from custom attacker factories).
  virtual std::string spec() const = 0;

  virtual void execute(PlayContext& ctx) const = 0;

  virtual std::unique_ptr<ScenarioPhase> clone() const = 0;
};

/// Builds a per-instance adversary from a derived seed; lets scenarios
/// carry attacks that are not registry-constructible (LevelAttack
/// needs its tree metadata, for example).
using AttackerFactory =
    std::function<std::unique_ptr<attack::AttackStrategy>(std::uint64_t)>;

class Scenario {
 public:
  Scenario() = default;
  Scenario(const Scenario& other) { *this = other; }
  Scenario& operator=(const Scenario& other);
  Scenario(Scenario&&) noexcept = default;
  Scenario& operator=(Scenario&&) noexcept = default;

  /// Parse a text spec (grammar above). Throws std::invalid_argument
  /// for empty phases, zero counts, malformed parameters, and unknown
  /// phase names (the error lists every registered spelling).
  static Scenario parse(const std::string& spec);

  // ---- builder (each returns *this for chaining) --------------------

  /// `count` single deletions picked by `attack`.
  Scenario& strike(std::size_t count, const std::string& attack = "maxnode");
  /// Simultaneous `batch_size`-node strikes: `rounds` of them, or --
  /// with rounds == 0 -- for as long as more than batch_size nodes
  /// survive. Mode "hubs" hits the highest-degree nodes, "random"
  /// uniform ones.
  Scenario& batch_strike(std::size_t batch_size, std::size_t rounds = 0,
                         const std::string& mode = "hubs");
  /// `events` churn ticks: each joins a newcomer (attached to `attach`
  /// random alive peers) with probability join_rate, and deletes a
  /// uniform random node with probability leave_rate.
  Scenario& churn(double join_rate, double leave_rate, std::size_t events,
                  std::size_t attach = 2);
  /// Run a registry attack until it stops or the network is exhausted;
  /// max_deletions == 0 means unlimited.
  Scenario& targeted(const std::string& attack,
                     std::size_t max_deletions = 0);
  /// Same, with a custom adversary (labelled for spec() output only).
  Scenario& targeted(AttackerFactory factory, const std::string& label,
                     std::size_t max_deletions = 0);
  /// Delete via `attack` until at most n nodes remain.
  Scenario& until_n_left(std::size_t n, const std::string& attack = "maxnode");
  /// Delete via `attack` until at most ceil(initial_size * frac) nodes
  /// remain; frac in (0, 1].
  Scenario& until_fraction(double frac,
                           const std::string& attack = "maxnode");
  /// Repeat a nested scenario `times` times.
  Scenario& repeat(std::size_t times, Scenario body);
  /// Deletions never reduce the network to <= min_alive nodes from
  /// this point on.
  Scenario& floor(std::size_t min_alive);

  /// Append an externally built phase.
  Scenario& add(std::unique_ptr<ScenarioPhase> phase);

  // ---- introspection -------------------------------------------------

  /// Canonical spec string: `parse(s).spec()` is a fixed point.
  std::string spec() const;
  bool empty() const { return phases_.empty(); }
  std::size_t size() const { return phases_.size(); }
  const std::vector<std::unique_ptr<ScenarioPhase>>& phases() const {
    return phases_;
  }

 private:
  std::vector<std::unique_ptr<ScenarioPhase>> phases_;
};

/// The registry serving phase-name lookups for Scenario::parse.
/// Built-ins: strike (alias delete), batch (aliases batch_strike,
/// batchstrike), churn, targeted (aliases targeted_attack, run), until
/// (aliases until_n_left, untilnleft), untilfrac (alias until_frac),
/// join, ramp, mix, repeat, floor, plus the named presets paper-churn,
/// max-degree-attack, until-half, until-quarter. Case-insensitive;
/// downstream code may register more.
util::Registry<ScenarioPhase>& scenario_phase_registry();

}  // namespace dash::api
