#include "api/serve_bench.h"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/async_sink.h"
#include "api/network.h"
#include "api/scenario.h"
#include "api/serve.h"
#include "graph/generators.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace dash::api {

namespace {

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Per-reader tallies. Latencies land in a bounded overwrite ring so a
/// multi-million-read round keeps constant memory; quantiles come from
/// the most recent kLatWindow samples per reader (plenty for p999).
struct ReaderTally {
  static constexpr std::size_t kLatWindow = 1 << 18;
  std::vector<double> lat_us;
  std::size_t lat_next = 0;
  std::size_t reads = 0;
  std::size_t distance_reads = 0;
  std::size_t torn = 0;

  void record(double us) {
    if (lat_us.size() < kLatWindow) {
      lat_us.push_back(us);
    } else {
      lat_us[lat_next] = us;
    }
    lat_next = (lat_next + 1) % kLatWindow;
  }
};

/// One run's Metrics as the canonical BENCH JSON document -- the same
/// serialization the batch path emits, so "identical across reader
/// counts" means byte-identical in the format users diff.
std::string metrics_to_json(const Metrics& m) {
  std::ostringstream os;
  JsonSummarySink sink(os);
  sink.on_run(0, m);
  sink.flush();
  return os.str();
}

ServeBenchRound run_one(const ServeBenchConfig& cfg, std::size_t readers,
                        bool stream_rows_to_file) {
  util::Rng graph_rng(cfg.seed);
  graph::Graph g = graph::barabasi_albert(cfg.n, cfg.attach, graph_rng);
  Network net(std::move(g), cfg.healer, cfg.seed);

  ServeOptions sopts;
  sopts.publish_every = cfg.publish_every;
  ServeHandle& serve = net.serve(sopts);

  // The async observer pipeline rides along whenever row streaming is
  // configured -- registered on *every* round (identical observer set
  // keeps the mutation stream comparable), writing to the real file
  // only when asked.
  std::ofstream rows_file;
  std::ostringstream rows_void;
  std::unique_ptr<CsvStreamSink> csv;
  std::unique_ptr<AsyncSink> async;
  if (!cfg.rows_path.empty()) {
    std::ostream* dst = &rows_void;
    if (stream_rows_to_file) {
      rows_file.open(cfg.rows_path, std::ios::trunc);
      if (!rows_file) {
        throw std::runtime_error("cannot write rows to " + cfg.rows_path);
      }
      dst = &rows_file;
    }
    csv = std::make_unique<CsvStreamSink>(*dst);
    async = std::make_unique<AsyncSink>(*csv, 4096);
    net.add_observer(std::make_unique<SinkObserver>(*async));
  }

  const Scenario scenario = Scenario::parse(cfg.scenario);

  std::vector<ReaderTally> tallies(readers);
  std::vector<std::thread> threads;
  threads.reserve(readers);
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};

  for (std::size_t r = 0; r < readers; ++r) {
    ServeReader reader = serve.reader();
    threads.emplace_back([&, r, reader = std::move(reader)]() mutable {
      ReaderTally& tally = tallies[r];
      util::Rng rng(cfg.seed * 0x9e3779b9ULL + r + 1);
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const auto t0 = Clock::now();
        ServePin pin = reader.pin();
        const auto& alive = pin.snapshot().view().alive_nodes();
        if (alive.size() < 2) {
          ++tally.reads;
          std::this_thread::yield();
          continue;
        }
        const graph::NodeId u =
            alive[static_cast<std::size_t>(rng.below(alive.size()))];
        const graph::NodeId v =
            alive[static_cast<std::size_t>(rng.below(alive.size()))];
        const bool cross_check =
            cfg.verify ||
            (cfg.distance_every != 0 &&
             tally.reads % cfg.distance_every == cfg.distance_every - 1);
        if (cross_check) {
          const bool conn = pin.connected(u, v);
          const bool reachable = pin.distance(u, v).has_value();
          if (conn != reachable) ++tally.torn;
          ++tally.distance_reads;
        } else if ((tally.reads & 63) == 63) {
          // An occasional component-structure read in the mix.
          (void)pin.largest_component();
        } else {
          (void)pin.connected(u, v);
        }
        tally.record(micros_between(t0, Clock::now()));
        ++tally.reads;
      }
    });
  }

  util::Rng play_rng(cfg.seed + 1);
  const auto t0 = Clock::now();
  start.store(true, std::memory_order_release);
  Metrics m;
  try {
    m = net.play(scenario, play_rng);
  } catch (...) {
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();
    throw;
  }
  const auto t1 = Clock::now();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  if (async) async->flush();

  ServeBenchRound round;
  round.readers = readers;
  round.secs = micros_between(t0, t1) / 1e6;
  round.final_epoch = serve.epoch();
  round.full_publishes = serve.store().full_publishes();
  round.patched_publishes = serve.store().patched_publishes();
  round.touched_vertices = serve.store().touched_vertices();
  round.metrics = m;
  round.metrics_json = metrics_to_json(m);

  std::vector<double> lat;
  for (const ReaderTally& tally : tallies) {
    round.reads += tally.reads;
    round.distance_reads += tally.distance_reads;
    round.torn_reads += tally.torn;
    lat.insert(lat.end(), tally.lat_us.begin(), tally.lat_us.end());
  }
  round.reads_per_sec = round.secs > 0 ? round.reads / round.secs : 0.0;
  if (!lat.empty()) {
    round.p50_us = util::quantile(lat, 0.5);
    round.p99_us = util::quantile(lat, 0.99);
    round.p999_us = util::quantile(std::move(lat), 0.999);
  }
  return round;
}

}  // namespace

std::size_t ServeBenchReport::total_torn() const {
  std::size_t total = 0;
  for (const ServeBenchRound& r : rounds) total += r.torn_reads;
  return total;
}

ServeBenchReport run_serve_bench(const ServeBenchConfig& cfg) {
  ServeBenchReport report;
  for (std::size_t i = 0; i < cfg.reader_counts.size(); ++i) {
    const bool last = i + 1 == cfg.reader_counts.size();
    report.rounds.push_back(run_one(cfg, cfg.reader_counts[i], last));
    if (report.rounds.back().metrics_json !=
        report.rounds.front().metrics_json) {
      report.deterministic = false;
    }
  }
  return report;
}

void render_serve_table(const ServeBenchReport& report, std::ostream& out) {
  util::Table table({"readers", "reads", "reads/s", "p50_us", "p99_us",
                     "p999_us", "epochs", "full_pub", "patched_pub",
                     "patched_verts", "bfs_reads", "torn", "secs"});
  for (const ServeBenchRound& r : report.rounds) {
    table.begin_row()
        .cell(std::to_string(r.readers))
        .cell(std::to_string(r.reads))
        .cell(r.reads_per_sec, 0)
        .cell(r.p50_us, 2)
        .cell(r.p99_us, 2)
        .cell(r.p999_us, 2)
        .cell(std::to_string(r.final_epoch))
        .cell(std::to_string(r.full_publishes))
        .cell(std::to_string(r.patched_publishes))
        .cell(std::to_string(r.touched_vertices))
        .cell(std::to_string(r.distance_reads))
        .cell(std::to_string(r.torn_reads))
        .cell(r.secs, 3);
  }
  table.print(out);
  out << (report.total_torn() == 0 ? "torn reads: 0"
                                   : "TORN READS DETECTED")
      << "; mutation stream "
      << (report.deterministic ? "deterministic across reader counts"
                               : "DIVERGED across reader counts")
      << "\n";
}

void render_serve_json(const ServeBenchConfig& cfg,
                       const ServeBenchReport& report, std::ostream& out) {
  const auto field = [](double v) { return util::CsvWriter::to_field(v); };
  out << "{\n  \"bench\": \"serve_churn\",\n";
  out << "  \"n\": " << cfg.n << ",\n";
  out << "  \"healer\": \"" << cfg.healer << "\",\n";
  out << "  \"scenario\": \"" << cfg.scenario << "\",\n";
  out << "  \"seed\": " << cfg.seed << ",\n";
  out << "  \"publish_every\": " << cfg.publish_every << ",\n";
  out << "  \"verify\": " << (cfg.verify ? "true" : "false") << ",\n";
  out << "  \"deterministic\": " << (report.deterministic ? "true" : "false")
      << ",\n";
  out << "  \"torn_reads\": " << report.total_torn() << ",\n";
  out << "  \"rounds\": [\n";
  for (std::size_t i = 0; i < report.rounds.size(); ++i) {
    const ServeBenchRound& r = report.rounds[i];
    out << "    {\"readers\": " << r.readers << ", \"reads\": " << r.reads
        << ", \"reads_per_sec\": " << field(r.reads_per_sec)
        << ", \"p50_us\": " << field(r.p50_us)
        << ", \"p99_us\": " << field(r.p99_us)
        << ", \"p999_us\": " << field(r.p999_us)
        << ", \"epochs\": " << r.final_epoch
        << ", \"full_publishes\": " << r.full_publishes
        << ", \"patched_publishes\": " << r.patched_publishes
        << ", \"touched_vertices\": " << r.touched_vertices
        << ", \"distance_reads\": " << r.distance_reads
        << ", \"torn_reads\": " << r.torn_reads
        << ", \"secs\": " << field(r.secs) << "}"
        << (i + 1 < report.rounds.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace dash::api
