#include "api/network.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "api/serve.h"
#include "core/batch.h"
#include "core/factory.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace dash::api {

using core::HealAction;
using core::HealingState;
using graph::Graph;
using graph::NodeId;

namespace {

/// DASH_VERIFY_CONNECTIVITY=1 flips every owning engine into kVerify:
/// each tracker answer is cross-checked against the BFS scan.
bool env_verify_connectivity() {
  static const bool on = [] {
    const char* v = std::getenv("DASH_VERIFY_CONNECTIVITY");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return on;
}

}  // namespace

bool RoundEvent::connected() const {
  if (!connected_.has_value()) {
    if (tracker_ != nullptr) {
      const bool fast = tracker_->connected();
      if (verify_) {
        DASH_CHECK_MSG(fast == graph::is_connected(*graph_),
                       "DynamicConnectivity disagrees with the BFS scan");
      }
      connected_ = fast;
    } else {
      // Events detached from an engine (unit-test fixtures) default to
      // connected; engine-emitted events carry their graph.
      connected_ = graph_ == nullptr || graph::is_connected(*graph_);
    }
  }
  return *connected_;
}

Network::Network(Graph g, std::unique_ptr<core::HealingStrategy> healer,
                 dash::util::Rng& rng)
    : owned_g_(std::move(g)),
      owned_healer_(std::move(healer)),
      g_(&*owned_g_),
      healer_(owned_healer_.get()) {
  DASH_CHECK_MSG(healer_ != nullptr, "Network needs a healing strategy");
  owned_state_.emplace(*g_, rng);
  state_ = &*owned_state_;
  initial_size_ = g_->num_alive();
  init_tracker();
}

Network::Network(Graph g, const std::string& healer_spec,
                 std::uint64_t seed)
    : owned_g_(std::move(g)),
      owned_healer_(core::make_strategy(healer_spec)),
      g_(&*owned_g_),
      healer_(owned_healer_.get()) {
  dash::util::Rng rng(seed);
  owned_state_.emplace(*g_, rng);
  state_ = &*owned_state_;
  initial_size_ = g_->num_alive();
  init_tracker();
}

Network::Network(Graph g, std::unique_ptr<core::HealingStrategy> healer,
                 HealingState state)
    : owned_g_(std::move(g)),
      owned_state_(std::move(state)),
      owned_healer_(std::move(healer)),
      g_(&*owned_g_),
      state_(&*owned_state_),
      healer_(owned_healer_.get()) {
  DASH_CHECK_MSG(healer_ != nullptr, "Network needs a healing strategy");
  DASH_CHECK_MSG(state_->num_nodes() == g_->num_nodes(),
                 "checkpointed healing state does not match the graph");
  initial_size_ = g_->num_alive();
  init_tracker();
}

Network::Network(Graph& g, HealingState& state,
                 core::HealingStrategy& healer)
    : g_(&g), state_(&state), healer_(&healer) {
  initial_size_ = g_->num_alive();
  // Borrowed graphs may be mutated externally between events, which
  // would desync an incremental tracker: stay on the BFS path.
}

Network::~Network() = default;

ServeHandle& Network::serve() { return serve(ServeOptions{}); }

ServeHandle& Network::serve(const ServeOptions& opts) {
  if (!serve_) {
    serve_.reset(new ServeHandle(*this, opts));
    add_observer(&serve_->publisher_);
  }
  return *serve_;
}

void Network::init_tracker() {
  tracker_.emplace(*g_);
  conn_mode_ = env_verify_connectivity() ? ConnectivityMode::kVerify
                                         : ConnectivityMode::kTracker;
}

void Network::set_connectivity_mode(ConnectivityMode mode) {
  DASH_CHECK_MSG(mode == ConnectivityMode::kBfs || tracker_.has_value(),
                 "tracker modes need an owning engine");
  // The env debug flag outranks programmatic tracker requests, so a
  // DASH_VERIFY_CONNECTIVITY=1 run cross-checks even suites that
  // configure their own modes (answers are identical either way; only
  // an explicit kBfs stays plain -- it is the reference side of the
  // differential).
  if (mode == ConnectivityMode::kTracker && env_verify_connectivity()) {
    mode = ConnectivityMode::kVerify;
  }
  conn_mode_ = mode;
}

void Network::attach(Observer* obs) {
  DASH_CHECK_MSG(obs != nullptr, "null observer");
  observers_.push_back(obs);
  obs->on_attach(*this);
}

void Network::add_observer(Observer* obs) { attach(obs); }

Observer& Network::add_observer(std::unique_ptr<Observer> obs) {
  Observer& ref = *obs;
  owned_observers_.push_back(std::move(obs));
  attach(&ref);
  return ref;
}

Observer* Network::find_observer(const std::string& name) const {
  for (Observer* obs : observers_) {
    if (obs->name() == name) return obs;
  }
  return nullptr;
}

void Network::notify_round_begin(std::size_t round) {
  for (Observer* obs : observers_) obs->on_round_begin(*this, round);
}

void Network::notify_phase(const std::string& spec) {
  for (Observer* obs : observers_) obs->on_phase(*this, spec);
}

void Network::finish_round(RoundEvent& ev) {
  // Events are engine-constructed for exactly one round; a verdict
  // cached this early would be another round's answer leaking through.
  DASH_CHECK_MSG(!ev.connectivity_checked(),
                 "stale RoundEvent::connected cache leaked across rounds");
  ev.graph_ = g_;
  ev.tracker_ =
      conn_mode_ != ConnectivityMode::kBfs ? &*tracker_ : nullptr;
  ev.verify_ = conn_mode_ == ConnectivityMode::kVerify;
  if (force_connectivity_checks_) (void)ev.connected();
  if (ev.ctx != nullptr) {
    for (Observer* obs : observers_) obs->on_heal(*this, ev);
  }
  for (Observer* obs : observers_) obs->on_round_end(*this, ev);
  // Connectivity is pay-per-ask: fold the scan into stayed_connected
  // only if this round's pipeline actually performed one.
  if (ev.connectivity_checked()) {
    last_connected_ = ev.connected();
    if (!last_connected_) engine_.stayed_connected = false;
  }
}

HealAction Network::remove(NodeId v) {
  DASH_CHECK_MSG(g_->alive(v), "removing a dead node");
  notify_round_begin(engine_.deletions + 1);

  const core::DeletionContext ctx = state_->begin_deletion(*g_, v);
  const auto removed_neighbors = g_->delete_node(v);
  DASH_CHECK(removed_neighbors == ctx.neighbors_g);

  const HealAction action = healer_->heal(*g_, *state_, ctx);

  if (tracker_.has_value()) {
    for (const auto& [a, b] : action.new_graph_edges) {
      tracker_->edge_added(a, b);
    }
    tracker_->node_removed(v, ctx.neighbors_g,
                           !survivors_reconnected(ctx.neighbors_g));
  }

  ++engine_.deletions;
  engine_.edges_added += action.new_graph_edges.size();
  if (action.used_surrogate) ++engine_.surrogate_heals;

  RoundEvent ev;
  ev.round = engine_.deletions;
  ev.victim = v;
  ev.ctx = &ctx;
  ev.action = &action;
  ev.edges_added = action.new_graph_edges.size();
  finish_round(ev);
  return action;
}

std::vector<HealAction> Network::remove_batch(
    const std::vector<NodeId>& batch) {
  DASH_CHECK_MSG(!batch.empty(), "empty deletion batch");
  // Round ids are cumulative deletion counts; begin and end of one
  // round must agree, so the batch's id is known up front.
  notify_round_begin(engine_.deletions + batch.size());

  const core::BatchDeletionContext ctx =
      core::begin_batch_deletion(*state_, *g_, batch);
  core::delete_batch(*g_, batch);

  const auto actions = core::dash_heal_batch(*g_, *state_, ctx);

  if (tracker_.has_value()) {
    for (const auto& action : actions) {
      for (const auto& [a, b] : action.new_graph_edges) {
        tracker_->edge_added(a, b);
      }
    }
    // Seeds for the lazy re-scan: every remnant of the touched
    // components holds a surviving neighbor of some cluster.
    std::vector<NodeId> survivors;
    for (const auto& cluster : ctx.clusters) {
      survivors.insert(survivors.end(), cluster.survivor_neighbors.begin(),
                       cluster.survivor_neighbors.end());
    }
    std::sort(survivors.begin(), survivors.end());
    survivors.erase(std::unique(survivors.begin(), survivors.end()),
                    survivors.end());
    // Batch rounds get the same per-cluster certificate single
    // deletions do: when every survivor still shares one healing-forest
    // component, the round cannot have split and the tracker skips the
    // lazy re-scan entirely.
    tracker_->batch_removed(batch, survivors,
                            !survivors_reconnected(survivors));
  }

  engine_.deletions += batch.size();
  std::size_t round_edges = 0;
  for (const auto& action : actions) {
    round_edges += action.new_graph_edges.size();
    if (action.used_surrogate) ++engine_.surrogate_heals;
  }
  engine_.edges_added += round_edges;

  RoundEvent ev;
  ev.round = engine_.deletions;
  ev.deletions_in_round = batch.size();
  ev.victim = batch.front();
  ev.batch = &batch;
  ev.edges_added = round_edges;
  finish_round(ev);
  return actions;
}

NodeId Network::join(const std::vector<NodeId>& attach_to) {
  const NodeId joined = state_->join_node(*g_, attach_to);
  if (tracker_.has_value()) {
    tracker_->node_added(joined);
    for (NodeId t : attach_to) tracker_->edge_added(joined, t);
  }
  ++engine_.joins;
  if (attach_to.empty() && g_->num_alive() > 1) {
    // An unattached newcomer is its own component.
    last_connected_ = false;
    engine_.stayed_connected = false;
  }
  const JoinEvent ev{joined, attach_to};
  for (Observer* obs : observers_) obs->on_join(*this, ev);
  return joined;
}

Metrics Network::run(attack::AttackStrategy& attacker,
                     const RunOptions& opts) {
  // Stopping on disconnection needs the answer every round, so force
  // the otherwise-lazy per-round connectivity scan for this run.
  const bool saved_force = force_connectivity_checks_;
  force_connectivity_checks_ |= opts.stop_when_disconnected;
  while (g_->num_alive() > 1 && engine_.deletions < opts.max_deletions) {
    if (opts.stop_condition && opts.stop_condition(*this)) break;
    const NodeId victim = attacker.select(*g_, *state_);
    if (victim == graph::kInvalidNode) break;  // attack finished early
    DASH_CHECK_MSG(g_->alive(victim), "attacker chose a dead node");
    remove(victim);
    if (!last_connected_ && opts.stop_when_disconnected) break;
  }
  force_connectivity_checks_ = saved_force;
  return finish();
}

bool Network::survivors_reconnected(
    const std::vector<NodeId>& survivors) const {
  if (survivors.size() < 2) return true;
  // One shared post-heal component id places every survivor in one
  // healing-forest component, whose edges all exist in G among alive
  // nodes (E' subset of E) -- so the survivors are mutually reachable
  // without the deleted node. This trusts exactly the id invariants
  // the InvariantObserver battery verifies (check_component_ids,
  // check_healing_subgraph); kVerify cross-checks the conclusion
  // against the scan.
  const std::uint64_t id = state_->component_id(survivors.front());
  for (std::size_t i = 1; i < survivors.size(); ++i) {
    if (state_->component_id(survivors[i]) != id) return false;
  }
  return true;
}

bool Network::current_connected() const {
  if (conn_mode_ == ConnectivityMode::kBfs) {
    return graph::is_connected(*g_);
  }
  const bool fast = tracker_->connected();
  if (conn_mode_ == ConnectivityMode::kVerify) {
    DASH_CHECK_MSG(fast == graph::is_connected(*g_),
                   "DynamicConnectivity disagrees with the BFS scan");
  }
  return fast;
}

std::pair<std::size_t, std::size_t> Network::component_snapshot() const {
  if (conn_mode_ == ConnectivityMode::kBfs) {
    const graph::Components comps = graph::connected_components(*g_);
    return {comps.count(), comps.largest()};
  }
  const std::pair<std::size_t, std::size_t> fast{
      tracker_->component_count(), tracker_->largest_component()};
  if (conn_mode_ == ConnectivityMode::kVerify) {
    const graph::Components comps = graph::connected_components(*g_);
    DASH_CHECK_MSG(fast.first == comps.count() &&
                       fast.second == comps.largest(),
                   "DynamicConnectivity component structure disagrees "
                   "with the BFS labelling");
  }
  return fast;
}

std::size_t Network::component_count() const {
  return component_snapshot().first;
}

std::size_t Network::largest_component() const {
  return component_snapshot().second;
}

Metrics Network::metrics() const {
  Metrics m = engine_;
  m.max_delta = state_->max_delta_ever();
  m.max_id_changes = state_->max_id_changes();
  m.max_messages = state_->max_messages();
  m.max_messages_sent = state_->max_messages_sent();
  const auto [components, largest] = component_snapshot();
  m.components = components;
  m.largest_component = largest;
  return m;
}

Metrics Network::finish() {
  // Rounds nobody inspected skipped their connectivity check; settle
  // the account with one final check of the *current* network. Note
  // this is a present-state check only: a run whose rounds all went
  // unobserved can have disconnected mid-way and been ground down to a
  // trivially connected remnant without stayed_connected noticing --
  // callers who care about transient disconnection (NoHeal studies)
  // must ask per round, via stop_when_disconnected or an observer that
  // reads RoundEvent::connected().
  if (engine_.stayed_connected && g_->num_alive() > 1 &&
      !current_connected()) {
    engine_.stayed_connected = false;
    last_connected_ = false;
  }
  Metrics m = metrics();
  for (Observer* obs : observers_) obs->on_finish(*this, m);
  return m;
}

}  // namespace dash::api
