#include "api/network.h"

#include <utility>

#include "core/batch.h"
#include "core/factory.h"
#include "graph/traversal.h"
#include "util/check.h"

namespace dash::api {

using core::HealAction;
using core::HealingState;
using graph::Graph;
using graph::NodeId;

bool RoundEvent::connected() const {
  if (!connected_.has_value()) {
    // Events detached from an engine (unit-test fixtures) default to
    // connected; engine-emitted events carry their graph.
    connected_ = graph_ == nullptr || graph::is_connected(*graph_);
  }
  return *connected_;
}

Network::Network(Graph g, std::unique_ptr<core::HealingStrategy> healer,
                 dash::util::Rng& rng)
    : owned_g_(std::move(g)),
      owned_healer_(std::move(healer)),
      g_(&*owned_g_),
      healer_(owned_healer_.get()) {
  DASH_CHECK_MSG(healer_ != nullptr, "Network needs a healing strategy");
  owned_state_.emplace(*g_, rng);
  state_ = &*owned_state_;
  initial_size_ = g_->num_alive();
}

Network::Network(Graph g, const std::string& healer_spec,
                 std::uint64_t seed)
    : owned_g_(std::move(g)),
      owned_healer_(core::make_strategy(healer_spec)),
      g_(&*owned_g_),
      healer_(owned_healer_.get()) {
  dash::util::Rng rng(seed);
  owned_state_.emplace(*g_, rng);
  state_ = &*owned_state_;
  initial_size_ = g_->num_alive();
}

Network::Network(Graph& g, HealingState& state,
                 core::HealingStrategy& healer)
    : g_(&g), state_(&state), healer_(&healer) {
  initial_size_ = g_->num_alive();
}

void Network::attach(Observer* obs) {
  DASH_CHECK_MSG(obs != nullptr, "null observer");
  observers_.push_back(obs);
  obs->on_attach(*this);
}

void Network::add_observer(Observer* obs) { attach(obs); }

Observer& Network::add_observer(std::unique_ptr<Observer> obs) {
  Observer& ref = *obs;
  owned_observers_.push_back(std::move(obs));
  attach(&ref);
  return ref;
}

Observer* Network::find_observer(const std::string& name) const {
  for (Observer* obs : observers_) {
    if (obs->name() == name) return obs;
  }
  return nullptr;
}

void Network::notify_round_begin(std::size_t round) {
  for (Observer* obs : observers_) obs->on_round_begin(*this, round);
}

void Network::finish_round(RoundEvent& ev) {
  ev.graph_ = g_;
  if (force_connectivity_checks_) (void)ev.connected();
  if (ev.ctx != nullptr) {
    for (Observer* obs : observers_) obs->on_heal(*this, ev);
  }
  for (Observer* obs : observers_) obs->on_round_end(*this, ev);
  // Connectivity is pay-per-ask: fold the scan into stayed_connected
  // only if this round's pipeline actually performed one.
  if (ev.connectivity_checked()) {
    last_connected_ = ev.connected();
    if (!last_connected_) engine_.stayed_connected = false;
  }
}

HealAction Network::remove(NodeId v) {
  DASH_CHECK_MSG(g_->alive(v), "removing a dead node");
  notify_round_begin(engine_.deletions + 1);

  const core::DeletionContext ctx = state_->begin_deletion(*g_, v);
  const auto removed_neighbors = g_->delete_node(v);
  DASH_CHECK(removed_neighbors == ctx.neighbors_g);

  const HealAction action = healer_->heal(*g_, *state_, ctx);

  ++engine_.deletions;
  engine_.edges_added += action.new_graph_edges.size();
  if (action.used_surrogate) ++engine_.surrogate_heals;

  RoundEvent ev;
  ev.round = engine_.deletions;
  ev.victim = v;
  ev.ctx = &ctx;
  ev.action = &action;
  ev.edges_added = action.new_graph_edges.size();
  finish_round(ev);
  return action;
}

std::vector<HealAction> Network::remove_batch(
    const std::vector<NodeId>& batch) {
  DASH_CHECK_MSG(!batch.empty(), "empty deletion batch");
  // Round ids are cumulative deletion counts; begin and end of one
  // round must agree, so the batch's id is known up front.
  notify_round_begin(engine_.deletions + batch.size());

  const core::BatchDeletionContext ctx =
      core::begin_batch_deletion(*state_, *g_, batch);
  core::delete_batch(*g_, batch);

  const auto actions = core::dash_heal_batch(*g_, *state_, ctx);

  engine_.deletions += batch.size();
  std::size_t round_edges = 0;
  for (const auto& action : actions) {
    round_edges += action.new_graph_edges.size();
    if (action.used_surrogate) ++engine_.surrogate_heals;
  }
  engine_.edges_added += round_edges;

  RoundEvent ev;
  ev.round = engine_.deletions;
  ev.deletions_in_round = batch.size();
  ev.victim = batch.front();
  ev.edges_added = round_edges;
  finish_round(ev);
  return actions;
}

NodeId Network::join(const std::vector<NodeId>& attach_to) {
  const NodeId joined = state_->join_node(*g_, attach_to);
  ++engine_.joins;
  if (attach_to.empty() && g_->num_alive() > 1) {
    // An unattached newcomer is its own component.
    last_connected_ = false;
    engine_.stayed_connected = false;
  }
  const JoinEvent ev{joined, attach_to};
  for (Observer* obs : observers_) obs->on_join(*this, ev);
  return joined;
}

Metrics Network::run(attack::AttackStrategy& attacker,
                     const RunOptions& opts) {
  // Stopping on disconnection needs the answer every round, so force
  // the otherwise-lazy per-round connectivity scan for this run.
  const bool saved_force = force_connectivity_checks_;
  force_connectivity_checks_ |= opts.stop_when_disconnected;
  while (g_->num_alive() > 1 && engine_.deletions < opts.max_deletions) {
    if (opts.stop_condition && opts.stop_condition(*this)) break;
    const NodeId victim = attacker.select(*g_, *state_);
    if (victim == graph::kInvalidNode) break;  // attack finished early
    DASH_CHECK_MSG(g_->alive(victim), "attacker chose a dead node");
    remove(victim);
    if (!last_connected_ && opts.stop_when_disconnected) break;
  }
  force_connectivity_checks_ = saved_force;
  return finish();
}

Metrics Network::metrics() const {
  Metrics m = engine_;
  m.max_delta = state_->max_delta_ever();
  m.max_id_changes = state_->max_id_changes();
  m.max_messages = state_->max_messages();
  m.max_messages_sent = state_->max_messages_sent();
  return m;
}

Metrics Network::finish() {
  // Rounds nobody inspected skipped their connectivity scan; settle
  // the account with one final check of the *current* network. Note
  // this is a present-state check only: a run whose rounds all went
  // unobserved can have disconnected mid-way and been ground down to a
  // trivially connected remnant without stayed_connected noticing --
  // callers who care about transient disconnection (NoHeal studies)
  // must ask per round, via stop_when_disconnected or an observer that
  // reads RoundEvent::connected().
  if (engine_.stayed_connected && g_->num_alive() > 1 &&
      !graph::is_connected(*g_)) {
    engine_.stayed_connected = false;
    last_connected_ = false;
  }
  Metrics m = metrics();
  for (Observer* obs : observers_) obs->on_finish(*this, m);
  return m;
}

}  // namespace dash::api
