// async_sink.h -- the async half of the observer pipeline: a MetricSink
// decorator that moves sink I/O (CSV writes, JSON accumulation) off the
// mutation thread onto a dedicated drain thread, connected by a bounded
// single-producer/single-consumer ring.
//
// Semantics:
//   * Order-preserving and lossless: the inner sink sees exactly the
//     event sequence the producer emitted, so wrapping any sink in
//     AsyncSink leaves its output byte-identical to the synchronous
//     path -- the batch byte-identity guarantees survive.
//   * The producer blocks only when the ring is full (size it for the
//     burstiness of the workload; default 1024 events). Steady-state
//     pushes are two atomic ops plus a wakeup check -- the mutation
//     thread never waits for the sink's I/O.
//   * flush() is a barrier: it waits for the drain thread to deliver
//     everything, then forwards flush() to the inner sink on the
//     calling thread (the drain thread is provably idle at that point).
//   * Single producer: on_row/on_run/flush must come from one thread at
//     a time -- exactly the engine/suite emission contract MetricSink
//     already has.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/sink.h"

namespace dash::api {

class AsyncSink final : public MetricSink {
 public:
  /// Wrap `inner` (not owned; must outlive this sink). `capacity` is
  /// rounded up to a power of two.
  explicit AsyncSink(MetricSink& inner, std::size_t capacity = 1024);
  ~AsyncSink() override;  // drains outstanding events, then joins

  std::string name() const override { return "async:" + inner_.name(); }
  void on_row(const RoundRow& row) override;
  void on_run(std::size_t instance, const Metrics& m) override;
  void flush() override;

  /// Deepest the ring ever got (diagnostics: a high-water mark at
  /// capacity means the producer blocked).
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return ring_.size(); }

 private:
  struct Event {
    enum class Kind { kRow, kRun } kind = Kind::kRow;
    RoundRow row;
    std::size_t instance = 0;
    Metrics metrics;
  };

  void push(Event ev);
  void drain_loop();
  bool empty_relaxed() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  MetricSink& inner_;
  std::vector<Event> ring_;
  std::size_t mask_;

  /// SPSC cursors: head_ is consumer-owned, tail_ producer-owned; each
  /// side reads the other's cursor to detect empty/full.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};

  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> high_water_{0};
  /// True while the consumer is parked in its cv wait; lets the
  /// producer skip the mutex+notify on the steady-state fast path.
  std::atomic<bool> consumer_waiting_{false};
  std::atomic<bool> producer_waiting_{false};

  std::mutex mu_;
  std::condition_variable not_empty_;   ///< consumer waits
  std::condition_variable not_full_;    ///< producer waits (ring full)
  std::condition_variable drained_;     ///< flush() waits
  std::thread drain_;
};

}  // namespace dash::api
