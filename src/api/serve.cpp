#include "api/serve.h"

#include "api/network.h"

namespace dash::api {

ServeHandle::ServeHandle(Network& net, const ServeOptions& opts)
    : net_(net), opts_(opts), publisher_(*this) {
  if (opts_.publish_every == 0) opts_.publish_every = 1;
}

std::uint64_t ServeHandle::publish() {
  events_since_publish_ = 0;
  return store_.publish(net_.graph());
}

void ServeHandle::maybe_publish() {
  if (++events_since_publish_ >= opts_.publish_every) publish();
}

void ServeHandle::Publisher::on_attach(const Network& /*net*/) {
  // Publish the pre-scenario state immediately so readers can pin
  // before the first mutation lands.
  handle_.publish();
}

void ServeHandle::Publisher::on_round_end(const Network& /*net*/,
                                          const RoundEvent& /*ev*/) {
  handle_.maybe_publish();
}

void ServeHandle::Publisher::on_join(const Network& /*net*/,
                                     const JoinEvent& /*ev*/) {
  handle_.maybe_publish();
}

void ServeHandle::Publisher::on_finish(const Network& /*net*/,
                                       Metrics& /*out*/) {
  // The final state is always visible to readers, whatever the cadence.
  handle_.publish();
}

}  // namespace dash::api
