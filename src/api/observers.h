// observers.h -- the built-in measurement observers:
//
//   InvariantObserver -- the full per-round invariant battery
//                        (+ optional DASH-only rem / delta bounds),
//                        amortizable via InvariantOptions::battery_every
//   ComponentObserver -- per-round component count / largest component
//                        via the engine's incremental tracker
//   StretchObserver   -- Fig. 10 stretch sampling against the time-0
//                        network
//
// Per-round *output* (time series, CSV streams, JSON summaries) is the
// sink layer's job: see api/sink.h for MetricSink and the SinkObserver
// pipeline stage that feeds it. Register producers before consumers: a
// SinkObserver that should log stretch samples must come after its
// StretchObserver.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>

#include "analysis/invariants.h"
#include "analysis/stretch.h"
#include "analysis/stretch_estimator.h"
#include "api/network.h"
#include "api/observer.h"

namespace dash::util {
class ThreadPool;
}

namespace dash::api {

struct InvariantOptions {
  /// Lemma-4 rem bound is DASH-specific; opt-in.
  bool check_rem_bound = false;
  /// Theorem-1 delta <= 2 log2 n bound; proven for DASH only, opt-in.
  bool check_delta_bound = false;
  /// Cadence of the full O(n+m) battery: 1 (default) runs it every
  /// round and every join; k > 1 amortizes it over every k-th round
  /// (joins skipped); 0 disables the periodic battery entirely. The
  /// per-round *connectivity* ask is unaffected -- it always happens
  /// and is O(alpha) on engines in tracker mode. Whenever the cadence
  /// skips events (anything but 1), a final battery sweep still runs
  /// in on_finish, so end-state violations are never missed; only
  /// per-event locality records of skipped events go unchecked.
  std::size_t battery_every = 1;
};

/// Evaluates the invariant battery after every round (and every join);
/// remembers the first violation and contributes it to Metrics.
/// Slow (integration tests switch it on, figure benches do not).
class InvariantObserver final : public Observer {
 public:
  explicit InvariantObserver(InvariantOptions opts = {}) : opts_(opts) {}

  std::string name() const override { return "invariants"; }
  void on_attach(const Network& net) override;
  void on_round_end(const Network& net, const RoundEvent& ev) override;
  void on_join(const Network& net, const JoinEvent& ev) override;
  void on_finish(const Network& net, Metrics& out) override;

  bool ok() const { return violation_.empty(); }
  /// First violation encountered (empty if none).
  const std::string& violation() const { return violation_; }

 private:
  void run_battery(const Network& net, const RoundEvent* ev);

  InvariantOptions opts_;
  std::size_t initial_size_ = 0;
  std::string violation_;
};

/// Samples the component structure (count + largest component) after
/// every round and join through the engine's component queries --
/// incremental-tracker-backed for owning engines, one BFS labelling
/// per ask in kBfs mode, identical values either way. Tracks the
/// extremes over the run: peak fragmentation and the smallest
/// largest-component seen (both including the initial state).
class ComponentObserver final : public Observer {
 public:
  std::string name() const override { return "components"; }
  void on_attach(const Network& net) override;
  void on_round_end(const Network& net, const RoundEvent& ev) override;
  void on_join(const Network& net, const JoinEvent& ev) override;

  /// Component count / largest size after the last observed event.
  std::size_t count() const { return count_; }
  std::size_t largest() const { return largest_; }
  /// Max component count ever observed (1 while the network heals).
  std::size_t max_components_seen() const { return max_components_; }
  /// Min largest-component size ever observed.
  std::size_t min_largest_seen() const { return min_largest_; }

 private:
  void sample(const Network& net);

  std::size_t count_ = 0;
  std::size_t largest_ = 0;
  std::size_t max_components_ = 0;
  std::size_t min_largest_ = std::numeric_limits<std::size_t>::max();
};

struct StretchObserverOptions {
  /// Sample every k-th deletion round (0 is clamped to 1).
  std::size_t sample_every = 1;
  /// Landmark estimation instead of the exact tracker: O(landmarks*n)
  /// memory in place of O(n^2), one 64-source wave per sample in place
  /// of APSP -- the only mode that scales to million-node networks.
  /// Samples then report the *upper* bound of the estimator's stretch
  /// interval (the conservative side; the true value is contained).
  bool estimate = false;
  std::size_t landmarks = 16;  ///< estimate mode: landmark count (<= 64)
  std::size_t pairs = 256;     ///< estimate mode: pairs per sample
  std::uint64_t seed = 0x5eed; ///< estimate mode: pair-sampling seed
};

/// Samples the Section 4.6.1 stretch metric against the time-0 network
/// every `sample_every`-th deletion (stretch costs O(n*m) per sample).
/// `sample_every == 0` is clamped to 1. Needs O(n^2) baseline memory
/// in exact mode; estimate mode (StretchObserverOptions::estimate)
/// swaps the tracker for analysis::StretchEstimator's landmark bounds.
/// Each exact sample is one single-pass analysis::StretchTracker::
/// stretch_stats() -- max and average together, never APSP twice.
///
/// Stretch is only defined relative to the frozen time-0 distances, so
/// sampling stops permanently once a join grows the node-id space (the
/// newcomers have no original distance); max_stretch() then reports
/// the pre-join maximum.
class StretchObserver final : public Observer {
 public:
  /// `pool`, when given, fans every sample's BFS waves across its
  /// workers (bit-identical values; see StretchTracker). Sharing the
  /// suite's own pool is safe -- parallel_for has the caller help, so
  /// a sample fired from a pool worker cannot deadlock -- but extra
  /// wall-clock wins only materialize when workers are otherwise idle;
  /// fully loaded suites should leave this null. Estimate-mode samples
  /// are single-threaded (one wave) and ignore the pool.
  explicit StretchObserver(StretchObserverOptions opts,
                           dash::util::ThreadPool* pool = nullptr)
      : opts_(opts),
        sample_every_(opts.sample_every == 0 ? 1 : opts.sample_every),
        pool_(pool) {}

  explicit StretchObserver(std::size_t sample_every = 1,
                           dash::util::ThreadPool* pool = nullptr)
      : StretchObserver(
            StretchObserverOptions{.sample_every = sample_every}, pool) {}

  std::string name() const override { return "stretch"; }
  void on_attach(const Network& net) override;
  void on_round_end(const Network& net, const RoundEvent& ev) override;
  void on_join(const Network& net, const JoinEvent& ev) override;
  void on_finish(const Network& net, Metrics& out) override;

  double max_stretch() const { return max_stretch_; }
  /// Last sampled value (0 before the first sample).
  double last_sample() const { return last_sample_; }
  /// Average stretch of the last sample (0 before the first sample);
  /// rides along with the max in the same APSP pass.
  double last_average() const { return last_average_; }
  bool sampled_last_round() const { return sampled_last_round_; }
  /// False once a join froze sampling.
  bool active() const { return active_; }
  /// True when samples are landmark estimates, not exact values.
  bool estimating() const { return opts_.estimate; }
  /// Full interval of the last estimate-mode sample (all-zero before
  /// the first sample or in exact mode).
  const analysis::StretchEstimate& last_estimate() const {
    return last_estimate_;
  }

 private:
  StretchObserverOptions opts_;
  std::size_t sample_every_;
  dash::util::ThreadPool* pool_;
  std::optional<analysis::StretchTracker> tracker_;
  std::optional<analysis::StretchEstimator> estimator_;
  analysis::StretchEstimate last_estimate_;
  double max_stretch_ = 0.0;
  double last_sample_ = 0.0;
  double last_average_ = 0.0;
  bool sampled_last_round_ = false;
  bool active_ = true;
};

}  // namespace dash::api
