// stretch_estimator.h -- sublinear landmark bounds on the Section
// 4.6.1 stretch metric, for graphs far past the exact tracker's O(n^2)
// baseline (a million-node network would need terabytes of APSP rows).
//
// The estimator fixes k <= 64 landmarks on the *time-0* network by
// farthest-point selection and keeps one exact BFS distance row per
// landmark (O(k*n) memory). Each sample then runs a single 64-source
// bit-parallel BFS wave from the surviving landmarks over the healed
// graph's CSR snapshot -- O((n + m) * diameter) word ops, the same
// engine the exact tracker's waves use -- and bounds every queried
// pair (u, v) by the triangle inequality:
//
//   healed:    max_L |dT(L,u) - dT(L,v)|  <=  dT(u,v)  <=  min_L dT(L,u) + dT(L,v)
//   original:  max_L |d0(L,u) - d0(L,v)|  <=  d0(u,v)  <=  min_L d0(L,u) + d0(L,v)
//
// so the true stretch dT(u,v) / d0(u,v) is *contained* in
// [healed_lower / original_upper, healed_upper / original_lower].
// Containment is the guarantee the differential tests pin down; the
// interval's width depends on how well the landmarks cover the graph
// (exact whenever some landmark lies on a shortest path of both
// numerator and denominator, e.g. always for pairs involving a
// landmark).
//
// Disconnection is detected for free: a landmark whose wave reaches
// exactly one endpoint of an alive pair proves the pair disconnected
// (infinite stretch, matching the exact tracker's convention). A pair
// no surviving landmark reaches at all is reported `unbounded` and
// excluded from the aggregates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace dash::analysis {

struct StretchEstimatorOptions {
  /// Landmark count, clamped to [1, min(64, alive nodes)]. More
  /// landmarks tighten both bounds at O(n) memory and wave cost each.
  std::size_t landmarks = 16;
  /// Alive pairs sampled per estimate() call.
  std::size_t pairs = 256;
  /// Seed of the pair-sampling stream (deterministic across runs; the
  /// stream advances estimate() to estimate()).
  std::uint64_t seed = 0x5eed;
};

/// Stretch interval for one pair, plus the distance bounds it came from.
struct PairBound {
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
  std::uint32_t healed_lower = 0;    ///< lower bound on dT(u,v)
  std::uint32_t healed_upper = 0;    ///< upper bound on dT(u,v)
  std::uint32_t original_lower = 0;  ///< lower bound on d0(u,v)
  std::uint32_t original_upper = 0;  ///< upper bound on d0(u,v)
  double lower = 0.0;  ///< stretch interval: true stretch in [lower, upper]
  double upper = 0.0;
  bool disconnected = false;  ///< certainly disconnected at sample time
  bool unbounded = false;     ///< no surviving landmark covers the pair
};

/// Aggregates over one estimate() call's sampled pairs. The true
/// sampled maximum lies in [max_lower, max_upper]; sampled averages
/// likewise. Any disconnected pair forces both maxima to +inf (the
/// exact tracker's convention for disconnected networks).
struct StretchEstimate {
  double max_lower = 0.0;
  double max_upper = 0.0;
  double avg_lower = 0.0;
  double avg_upper = 0.0;
  std::size_t pairs = 0;         ///< pairs sampled
  std::size_t bounded = 0;       ///< pairs with a finite interval
  std::size_t disconnected = 0;  ///< provably disconnected pairs
  std::size_t unbounded = 0;     ///< pairs no landmark covers
};

class StretchEstimator {
 public:
  /// Freezes landmark rows of `original` (must be connected, like the
  /// exact tracker's baseline). O(k * (n + m)) time, O(k * n) memory.
  explicit StretchEstimator(const graph::Graph& original,
                            StretchEstimatorOptions opts = {});

  /// One sample: a landmark wave over `healed` (same node-id space as
  /// the original) plus `opts.pairs` random alive pairs. `detail`,
  /// when given, receives the per-pair bounds.
  StretchEstimate estimate(const graph::Graph& healed,
                           std::vector<PairBound>* detail = nullptr);

  /// Re-run the landmark wave against `healed`'s current state without
  /// sampling pairs; bound_pair() then answers against this wave.
  void sample_wave(const graph::Graph& healed);

  /// Bounds for one alive pair (u != v) against the last sample_wave().
  PairBound bound_pair(graph::NodeId u, graph::NodeId v) const;

  std::size_t num_landmarks() const { return landmarks_.size(); }
  const std::vector<graph::NodeId>& landmarks() const { return landmarks_; }

 private:
  std::size_t n_ = 0;
  StretchEstimatorOptions opts_;
  util::Rng rng_;
  std::vector<graph::NodeId> landmarks_;
  std::vector<std::uint32_t> d0_;  ///< [landmark][node] time-0 rows
  std::vector<std::uint32_t> dt_;  ///< [landmark][node] last wave rows
  /// Wave workspace (persisted; warm samples allocate nothing).
  std::vector<std::uint64_t> reached_;
  std::vector<std::uint64_t> frontier_;
  std::vector<std::uint64_t> next_;
};

}  // namespace dash::analysis
