// stretch.h -- the Section 4.6.1 stretch metric.
//
// stretch(u,v) = dist_healed(u,v) / dist_original(u,v); network stretch
// is the maximum over alive pairs. Distances in the *original* network
// are frozen at construction (deleted nodes still count as hops there,
// exactly as in the paper, where the denominator is the time-0 network).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dash::graph {
class Graph;
}

namespace dash::analysis {

class StretchTracker {
 public:
  /// Snapshots all-pairs distances of `original` (must be connected).
  /// O(n^2) memory -- intended for graphs up to a few thousand nodes.
  explicit StretchTracker(const graph::Graph& original);

  /// Maximum stretch over all alive pairs of `healed` (same node-id
  /// space as the original). Returns 0 if fewer than 2 alive nodes and
  /// +inf if some alive pair is disconnected.
  double max_stretch(const graph::Graph& healed) const;

  /// Average stretch over alive pairs (same conventions).
  double average_stretch(const graph::Graph& healed) const;

  std::uint32_t original_distance(graph::NodeId u, graph::NodeId v) const {
    return original_[u * n_ + v];
  }

 private:
  std::size_t n_;
  std::vector<std::uint32_t> original_;  ///< row-major APSP matrix
};

}  // namespace dash::analysis
