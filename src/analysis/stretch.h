// stretch.h -- the Section 4.6.1 stretch metric.
//
// stretch(u,v) = dist_healed(u,v) / dist_original(u,v); network stretch
// is the maximum over alive pairs. Distances in the *original* network
// are frozen at construction (deleted nodes still count as hops there,
// exactly as in the paper, where the denominator is the time-0 network).
//
// Sampling runs on the flat traversal engine (graph/flat_view.h): one
// CSR snapshot shared by the whole sample, sources advanced 64 at a
// time as bit-parallel BFS waves over reusable per-worker workspaces,
// and a single pass that yields max and average together -- callers
// that report both no longer pay APSP twice. The ThreadPool overload
// partitions the waves across workers and reduces in source order, so
// its results are bit-identical to the sequential pass regardless of
// worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/traversal.h"

namespace dash::util {
class ThreadPool;
}

namespace dash::analysis {

/// One stretch sample: the max and the average over alive pairs,
/// computed in a single APSP pass. Both are +inf when some alive pair
/// is disconnected, 0 when fewer than 2 nodes are alive.
struct StretchStats {
  double max = 0.0;
  double average = 0.0;
};

class StretchTracker {
 public:
  /// Snapshots all-pairs distances of `original` (must be connected).
  /// O(n^2) memory -- intended for graphs up to a few thousand nodes.
  explicit StretchTracker(const graph::Graph& original);

  /// Max and average stretch over all alive pairs of `healed` (same
  /// node-id space as the original), computed in 64-source bit-parallel
  /// BFS waves. The reduction folds per-source partials in ascending
  /// source order.
  StretchStats stretch_stats(const graph::Graph& healed) const;

  /// Same sample with the waves partitioned across `pool`'s workers
  /// (contiguous wave blocks, one workspace per block). The reduction
  /// is deterministic -- per-source partials folded in source order --
  /// so the result is bit-identical to the sequential overload.
  StretchStats stretch_stats(const graph::Graph& healed,
                             dash::util::ThreadPool& pool) const;

  /// Maximum stretch over all alive pairs of `healed`. Returns 0 if
  /// fewer than 2 alive nodes and +inf if some alive pair is
  /// disconnected. Thin wrapper over stretch_stats().
  double max_stretch(const graph::Graph& healed) const;

  /// Average stretch over alive pairs (same conventions).
  double average_stretch(const graph::Graph& healed) const;

  std::uint32_t original_distance(graph::NodeId u, graph::NodeId v) const {
    return original_[u * n_ + v];
  }

 private:
  /// Per-source partial: max ratio and sum of ratios over pairs (u, v)
  /// with v > u; `disconnected` set when some alive v is unreachable
  /// from u.
  struct SourcePartial {
    double max = 0.0;
    double sum = 0.0;
    bool disconnected = false;
  };

  /// Per-worker state for one 64-source wave of the bit-parallel APSP
  /// (see stretch.cpp): per-node reach/frontier masks plus per-source
  /// accumulators indexed by the pair's original distance (bounded by
  /// the time-0 diameter). The hot loops do pure word ops and integer
  /// adds; the ~diameter divisions happen once per source. max folds
  /// as max_b(max_d[b] / b) -- every division is the identical IEEE op
  /// the per-pair formulation performs, so the max is bit-identical to
  /// it; the sum folds as sum_b(sum_d[b] / b) in ascending b
  /// (documented rounding, deterministic).
  struct SampleWorkspace {
    std::vector<std::uint64_t> reached;    ///< per node: source bits seen
    std::vector<std::uint64_t> frontier;   ///< bits that arrived last round
    std::vector<std::uint64_t> next;       ///< bits arriving this round
    /// Per node: bits of this wave's sources with id < node -- pairs
    /// are credited to their smaller-id endpoint exactly once.
    std::vector<std::uint64_t> prefix_mask;
    std::vector<std::uint64_t> sum_d;  ///< [source][base] distance sums
    std::vector<std::uint32_t> max_d;  ///< [source][base] distance maxes
  };

  /// Run one wave: sources alive[idx0 .. idx0+count), count <= 64,
  /// writing out[0..count) partials.
  void wave_partials(const graph::FlatView& view,
                     const std::vector<graph::NodeId>& alive,
                     std::size_t idx0, std::size_t count,
                     SampleWorkspace& ws, SourcePartial* out) const;
  StretchStats reduce(const std::vector<SourcePartial>& partials,
                      std::size_t alive_count) const;

  std::size_t n_;
  std::vector<std::uint32_t> original_;  ///< row-major APSP matrix
  std::uint32_t diameter0_ = 0;          ///< max finite original distance
  /// Reusable per-worker workspaces: [0] serves the sequential path,
  /// the rest the pool workers (one per block). Mutable workspace only
  /// -- samples are const reads of the tracker; concurrent samples on
  /// one tracker need external synchronization.
  mutable std::vector<SampleWorkspace> ws_;
};

}  // namespace dash::analysis
