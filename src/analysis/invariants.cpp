#include "analysis/invariants.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "graph/dynamic_connectivity.h"
#include "graph/traversal.h"

namespace dash::analysis {

Check check_connectivity(const Graph& g) {
  if (graph::is_connected(g)) return Check::pass();
  const auto comps = graph::connected_components(g);
  return Check::fail("graph disconnected: " +
                     std::to_string(comps.count()) + " components over " +
                     std::to_string(g.num_alive()) + " alive nodes");
}

Check check_forest(const Graph& g, const HealingState& state) {
  if (state.healing_graph_is_forest(g)) return Check::pass();
  return Check::fail("healing graph G' contains a cycle");
}

Check check_component_ids(const Graph& g, const HealingState& state) {
  std::vector<char> visited(g.num_nodes(), 0);
  std::unordered_set<std::uint64_t> seen_ids;
  for (NodeId root = 0; root < g.num_nodes(); ++root) {
    if (!g.alive(root) || visited[root]) continue;
    const auto comp = state.healing_component(g, root);
    const std::uint64_t id = state.component_id(root);
    for (NodeId v : comp) {
      visited[v] = 1;
      if (state.component_id(v) != id) {
        return Check::fail("component of node " + std::to_string(root) +
                           " has mixed ids");
      }
    }
    if (!seen_ids.insert(id).second) {
      return Check::fail("component id " + std::to_string(id) +
                         " appears in two distinct G'-components");
    }
  }
  return Check::pass();
}

Check check_rem_bound(const Graph& g, const HealingState& state) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    const auto rem = static_cast<double>(state.rem(g, v));
    const double bound = std::exp2(static_cast<double>(state.delta(v)) / 2.0);
    if (rem + 1e-9 < bound) {
      return Check::fail("rem(" + std::to_string(v) + ")=" +
                         std::to_string(rem) + " < 2^(delta/2)=" +
                         std::to_string(bound) + " with delta=" +
                         std::to_string(state.delta(v)));
    }
  }
  return Check::pass();
}

Check check_weight_conservation(const Graph& g, const HealingState& state,
                                std::uint64_t expected_total) {
  const std::uint64_t total = state.total_alive_weight(g);
  if (total == expected_total) return Check::pass();
  return Check::fail("alive weight " + std::to_string(total) +
                     " != expected " + std::to_string(expected_total));
}

Check check_locality(const HealAction& action, const DeletionContext& ctx) {
  const auto& nbrs = ctx.neighbors_g;  // sorted by Graph invariant
  auto is_neighbor = [&nbrs](NodeId u) {
    return std::binary_search(nbrs.begin(), nbrs.end(), u);
  };
  for (auto [a, b] : action.new_graph_edges) {
    if (!is_neighbor(a) || !is_neighbor(b)) {
      return Check::fail("healing edge {" + std::to_string(a) + "," +
                         std::to_string(b) +
                         "} joins non-neighbors of the deleted node");
    }
  }
  return Check::pass();
}

Check check_healing_subgraph(const Graph& g, const HealingState& state) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    for (NodeId u : state.forest_neighbors(v)) {
      if (!g.alive(u) || !g.has_edge(v, u)) {
        return Check::fail("healing edge {" + std::to_string(v) + "," +
                           std::to_string(u) + "} is not in the network");
      }
    }
  }
  return Check::pass();
}

Check check_delta_consistency(const Graph& g, const HealingState& state) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    if (state.delta(v) != state.raw_degree_increase(g, v)) {
      return Check::fail(
          "delta(" + std::to_string(v) + ")=" +
          std::to_string(state.delta(v)) + " != deg_now - deg_init = " +
          std::to_string(state.raw_degree_increase(g, v)));
    }
  }
  return Check::pass();
}

Check check_delta_bound(const HealingState& state, std::size_t n) {
  const double bound = 2.0 * std::log2(static_cast<double>(n));
  const auto max_delta = static_cast<double>(state.max_delta_ever());
  if (max_delta <= bound + 1e-9) return Check::pass();
  return Check::fail("max delta " + std::to_string(max_delta) +
                     " exceeds 2 log2 n = " + std::to_string(bound));
}

Check check_component_tracker(const Graph& g,
                              graph::DynamicConnectivity& tracker) {
  const graph::Components truth = graph::connected_components(g);
  if (tracker.component_count() != truth.count()) {
    return Check::fail("tracker counts " +
                       std::to_string(tracker.component_count()) +
                       " components, BFS counts " +
                       std::to_string(truth.count()));
  }
  if (tracker.largest_component() != truth.largest()) {
    return Check::fail("tracker largest component " +
                       std::to_string(tracker.largest_component()) +
                       " != BFS largest " + std::to_string(truth.largest()));
  }
  // Each BFS class must sit inside one tracker class with the right
  // size; with equal class counts that makes the partitions identical.
  std::vector<NodeId> rep(truth.count(), graph::kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    const std::uint32_t label = truth.label[v];
    if (rep[label] == graph::kInvalidNode) {
      rep[label] = v;
      if (tracker.component_size(v) != truth.sizes[label]) {
        return Check::fail("tracker sizes component of node " +
                           std::to_string(v) + " as " +
                           std::to_string(tracker.component_size(v)) +
                           ", BFS as " + std::to_string(truth.sizes[label]));
      }
    } else if (!tracker.same_component(v, rep[label])) {
      return Check::fail("tracker splits BFS-connected nodes " +
                         std::to_string(v) + " and " +
                         std::to_string(rep[label]));
    }
  }
  return Check::pass();
}

}  // namespace dash::analysis
