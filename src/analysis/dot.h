// dot.h -- GraphViz DOT export for networks and healing forests, so
// repair topologies can be inspected visually (examples write .dot
// files; render with `dot -Tsvg`).
#pragma once

#include <ostream>
#include <string>

#include "core/healing_state.h"
#include "graph/graph.h"

namespace dash::analysis {

struct DotOptions {
  std::string graph_name = "network";
  bool show_node_ids = true;
  /// Color used for healing edges (E') in the overlay variant.
  std::string healing_edge_color = "red";
  std::string organic_edge_color = "gray40";
};

/// Write the alive subgraph as an undirected DOT graph.
void write_dot(std::ostream& out, const graph::Graph& g,
               const DotOptions& options = {});

/// Write the alive subgraph with healing edges (E') highlighted and
/// each node labeled "<id>\nd=<delta>".
void write_dot_with_healing(std::ostream& out, const graph::Graph& g,
                            const core::HealingState& state,
                            const DotOptions& options = {});

}  // namespace dash::analysis
