#include "analysis/dot.h"

#include <algorithm>

namespace dash::analysis {

using graph::Graph;
using graph::NodeId;

void write_dot(std::ostream& out, const Graph& g,
               const DotOptions& options) {
  out << "graph " << options.graph_name << " {\n";
  out << "  node [shape=circle fontsize=10];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    out << "  n" << v;
    if (options.show_node_ids) out << " [label=\"" << v << "\"]";
    out << ";\n";
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    for (NodeId u : g.neighbors(v)) {
      if (v < u) out << "  n" << v << " -- n" << u << ";\n";
    }
  }
  out << "}\n";
}

void write_dot_with_healing(std::ostream& out, const Graph& g,
                            const core::HealingState& state,
                            const DotOptions& options) {
  out << "graph " << options.graph_name << " {\n";
  out << "  node [shape=circle fontsize=10];\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    out << "  n" << v << " [label=\"" << v << "\\nd=" << state.delta(v)
        << "\"];\n";
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (!g.alive(v)) continue;
    const auto& forest = state.forest_neighbors(v);
    for (NodeId u : g.neighbors(v)) {
      if (v >= u) continue;
      const bool healing =
          std::find(forest.begin(), forest.end(), u) != forest.end();
      out << "  n" << v << " -- n" << u << " [color="
          << (healing ? options.healing_edge_color
                      : options.organic_edge_color);
      if (healing) out << " penwidth=2";
      out << "];\n";
    }
  }
  out << "}\n";
}

}  // namespace dash::analysis
