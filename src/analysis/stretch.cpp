#include "analysis/stretch.h"

#include <limits>

#include "graph/traversal.h"
#include "util/check.h"

namespace dash::analysis {

using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

StretchTracker::StretchTracker(const Graph& original)
    : n_(original.num_nodes()),
      original_(graph::all_pairs_distances(original)) {
  DASH_CHECK_MSG(graph::is_connected(original),
                 "stretch baseline must be connected");
}

double StretchTracker::max_stretch(const Graph& healed) const {
  DASH_CHECK(healed.num_nodes() == n_);
  const auto alive = healed.alive_nodes();
  if (alive.size() < 2) return 0.0;
  double worst = 0.0;
  for (NodeId u : alive) {
    const auto dist = graph::bfs_distances(healed, u);
    for (NodeId v : alive) {
      if (v <= u) continue;
      if (dist[v] == kUnreachable) {
        return std::numeric_limits<double>::infinity();
      }
      const std::uint32_t base = original_[u * n_ + v];
      DASH_CHECK(base != 0 && base != kUnreachable);
      worst = std::max(worst, static_cast<double>(dist[v]) /
                                  static_cast<double>(base));
    }
  }
  return worst;
}

double StretchTracker::average_stretch(const Graph& healed) const {
  DASH_CHECK(healed.num_nodes() == n_);
  const auto alive = healed.alive_nodes();
  if (alive.size() < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (NodeId u : alive) {
    const auto dist = graph::bfs_distances(healed, u);
    for (NodeId v : alive) {
      if (v <= u) continue;
      if (dist[v] == kUnreachable) {
        return std::numeric_limits<double>::infinity();
      }
      sum += static_cast<double>(dist[v]) /
             static_cast<double>(original_[u * n_ + v]);
      ++pairs;
    }
  }
  return pairs ? sum / static_cast<double>(pairs) : 0.0;
}

}  // namespace dash::analysis
