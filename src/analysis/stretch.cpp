#include "analysis/stretch.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <limits>

#include "util/check.h"
#include "util/thread_pool.h"

namespace dash::analysis {

using graph::FlatView;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kWave = 64;  ///< sources per bit-parallel wave
}  // namespace

StretchTracker::StretchTracker(const Graph& original)
    : n_(original.num_nodes()),
      original_(graph::all_pairs_distances(original)),
      ws_(1) {
  DASH_CHECK_MSG(graph::is_connected(original),
                 "stretch baseline must be connected");
  for (const std::uint32_t d : original_) {
    if (d != kUnreachable && d > diameter0_) diameter0_ = d;
  }
}

// One wave advances 64 BFS sources simultaneously: every node carries a
// 64-bit mask of the wave's sources that reached it, and one pass over
// the CSR per level ORs the frontier masks across each node's
// neighbors -- the whole wave costs O((n + m) * diameter) word ops
// instead of 64 separate traversals. A pair's contribution is recorded
// the round its bit first arrives: the healed distance is the round
// number, the original distance comes from the (symmetric) time-0 APSP
// row of the *target*, read at ascending source offsets.
void StretchTracker::wave_partials(const FlatView& view,
                                   const std::vector<NodeId>& alive,
                                   std::size_t idx0, std::size_t count,
                                   SampleWorkspace& ws,
                                   SourcePartial* out) const {
  const std::size_t stride = diameter0_ + 1;
  ws.reached.assign(n_, 0);
  ws.frontier.assign(n_, 0);
  ws.next.resize(n_);         // alive entries overwritten every round
  ws.prefix_mask.resize(n_);  // alive entries overwritten below
  ws.sum_d.assign(count * stride, 0);
  ws.max_d.assign(count * stride, 0);

  // Pairs are unordered: credit each to its smaller-id endpoint, i.e.
  // target v only accumulates sources with id < v. Sources are an
  // ascending slice of the ascending alive list, so the eligible bits
  // of every target form a prefix, computed in one merge-like sweep.
  {
    std::size_t k = 0;
    for (const NodeId v : alive) {
      while (k < count && alive[idx0 + k] < v) ++k;
      ws.prefix_mask[v] =
          k >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId s = alive[idx0 + i];
    ws.reached[s] = ws.frontier[s] = std::uint64_t{1} << i;
  }

  auto* reached = ws.reached.data();
  auto* prefix = ws.prefix_mask.data();
  std::uint32_t depth = 0;
  bool active = true;
  while (active) {
    active = false;
    ++depth;
    const auto* frontier = ws.frontier.data();
    auto* next = ws.next.data();
    for (const NodeId v : alive) {
      std::uint64_t gather = 0;
      for (const NodeId u : view.neighbors(v)) gather |= frontier[u];
      const std::uint64_t fresh = gather & ~reached[v];
      next[v] = fresh;
      if (fresh == 0) continue;
      active = true;
      reached[v] |= fresh;
      std::uint64_t bits = fresh & prefix[v];
      if (bits == 0) continue;
      const std::uint32_t* base_row =
          original_.data() + std::size_t{v} * n_;
      do {
        const auto i = static_cast<unsigned>(std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint32_t base = base_row[alive[idx0 + i]];
        DASH_CHECK(base != 0 && base <= diameter0_);
        ws.sum_d[i * stride + base] += depth;
        std::uint32_t& m = ws.max_d[i * stride + base];
        if (depth > m) m = depth;
      } while (bits != 0);
    }
    std::swap(ws.frontier, ws.next);
  }

  // A source is disconnected iff its bit failed to reach some alive
  // node; fold the per-base books of the complete ones.
  std::uint64_t all = count >= 64 ? ~std::uint64_t{0}
                                  : (std::uint64_t{1} << count) - 1;
  for (const NodeId v : alive) all &= reached[v];
  for (std::size_t i = 0; i < count; ++i) {
    SourcePartial p;
    if (((all >> i) & 1) == 0) {
      p.disconnected = true;
    } else {
      const auto* sum_d = ws.sum_d.data() + i * stride;
      const auto* max_d = ws.max_d.data() + i * stride;
      for (std::uint32_t base = 1; base <= diameter0_; ++base) {
        if (max_d[base] != 0) {
          p.max = std::max(p.max, static_cast<double>(max_d[base]) /
                                      static_cast<double>(base));
          p.sum += static_cast<double>(sum_d[base]) /
                   static_cast<double>(base);
        }
      }
    }
    out[i] = p;
  }
}

StretchStats StretchTracker::reduce(
    const std::vector<SourcePartial>& partials,
    std::size_t alive_count) const {
  StretchStats out;
  double total = 0.0;
  for (const SourcePartial& p : partials) {
    if (p.disconnected) return {kInf, kInf};
    out.max = std::max(out.max, p.max);
    total += p.sum;
  }
  const double pairs =
      static_cast<double>(alive_count) *
      static_cast<double>(alive_count - 1) / 2.0;
  out.average = total / pairs;
  return out;
}

StretchStats StretchTracker::stretch_stats(const Graph& healed) const {
  DASH_CHECK(healed.num_nodes() == n_);
  const FlatView& view = healed.flat_view();
  const auto& alive = view.alive_nodes();
  if (alive.size() < 2) return {};
  StretchStats out;
  double total = 0.0;
  SourcePartial wave[kWave];
  for (std::size_t idx0 = 0; idx0 < alive.size(); idx0 += kWave) {
    const std::size_t count = std::min(kWave, alive.size() - idx0);
    wave_partials(view, alive, idx0, count, ws_[0], wave);
    for (std::size_t i = 0; i < count; ++i) {
      if (wave[i].disconnected) return {kInf, kInf};
      // Same fold as reduce(): max then sum, ascending source order.
      out.max = std::max(out.max, wave[i].max);
      total += wave[i].sum;
    }
  }
  const double pairs = static_cast<double>(alive.size()) *
                       static_cast<double>(alive.size() - 1) / 2.0;
  out.average = total / pairs;
  return out;
}

StretchStats StretchTracker::stretch_stats(
    const Graph& healed, dash::util::ThreadPool& pool) const {
  DASH_CHECK(healed.num_nodes() == n_);
  const FlatView& view = healed.flat_view();  // ensure before fan-out
  const auto& alive = view.alive_nodes();
  if (alive.size() < 2) return {};
  const std::size_t waves = (alive.size() + kWave - 1) / kWave;
  const std::size_t blocks = std::min(pool.size(), waves);
  if (blocks <= 1) return stretch_stats(healed);

  // One workspace per block, persisted across samples ([0] stays the
  // sequential path's). Workers own disjoint partial slots, so the
  // only shared write is the bail-out flag.
  if (ws_.size() < blocks + 1) ws_.resize(blocks + 1);
  std::vector<SourcePartial> partials(alive.size());
  std::atomic<bool> disconnected{false};
  pool.parallel_for(blocks, [&](std::size_t b) {
    const std::size_t begin = b * waves / blocks;
    const std::size_t end = (b + 1) * waves / blocks;
    for (std::size_t w = begin; w < end; ++w) {
      if (disconnected.load(std::memory_order_relaxed)) return;
      const std::size_t idx0 = w * kWave;
      const std::size_t count = std::min(kWave, alive.size() - idx0);
      wave_partials(view, alive, idx0, count, ws_[b + 1],
                    partials.data() + idx0);
      for (std::size_t i = 0; i < count; ++i) {
        if (partials[idx0 + i].disconnected) {
          disconnected.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  });
  if (disconnected.load()) return {kInf, kInf};
  return reduce(partials, alive.size());
}

double StretchTracker::max_stretch(const Graph& healed) const {
  return stretch_stats(healed).max;
}

double StretchTracker::average_stretch(const Graph& healed) const {
  return stretch_stats(healed).average;
}

}  // namespace dash::analysis
