// invariants.h -- runtime checkers for every provable property the
// paper states. Tests and (optionally) experiment runs evaluate these
// after each deletion+heal round.
#pragma once

#include <string>

#include "core/healing_state.h"
#include "core/strategy.h"

namespace dash::graph {
class DynamicConnectivity;
}

namespace dash::analysis {

using core::DeletionContext;
using core::Graph;
using core::HealAction;
using core::HealingState;
using graph::NodeId;

/// Result of one invariant check; `violation` is empty iff `ok`.
struct Check {
  bool ok = true;
  std::string violation;

  static Check pass() { return {}; }
  static Check fail(std::string why) { return {false, std::move(why)}; }
};

/// The healed network keeps all alive nodes in one component.
Check check_connectivity(const Graph& g);

/// Lemma 1: the healing graph G' = (V, E') is a forest.
Check check_forest(const Graph& g, const HealingState& state);

/// Component ids are uniform inside each G'-component and distinct
/// across G'-components (what makes UN(v,G) well defined).
Check check_component_ids(const Graph& g, const HealingState& state);

/// Lemma 4: rem(v) >= 2^{delta(v)/2} for every alive v.
/// Only valid for DASH (the potential argument is DASH-specific).
Check check_rem_bound(const Graph& g, const HealingState& state);

/// Lemma 5 / weight conservation: sum of alive weights stays n as long
/// as every deletion had a surviving neighbor to inherit the weight.
Check check_weight_conservation(const Graph& g, const HealingState& state,
                                std::uint64_t expected_total);

/// Locality-awareness: every edge the heal added joins two former
/// neighbors of the deleted node.
Check check_locality(const HealAction& action, const DeletionContext& ctx);

/// Theorem 1: delta(v) <= 2 log2 n for all v (n = initial node count).
Check check_delta_bound(const HealingState& state, std::size_t n);

/// E' is a subgraph of E: every healing edge still exists in the
/// network (deletions detach both sides consistently).
Check check_healing_subgraph(const Graph& g, const HealingState& state);

/// Bookkeeping identity: delta(v) == degree_now(v) - initial_degree(v)
/// for every alive node.
Check check_delta_consistency(const Graph& g, const HealingState& state);

/// Differential check for the incremental connectivity subsystem: the
/// tracker's component structure (count, largest size, and the full
/// alive-node partition) matches a fresh BFS labelling of `g`. Non-const
/// tracker: queries flush its lazy re-scan.
Check check_component_tracker(const Graph& g,
                              graph::DynamicConnectivity& tracker);

}  // namespace dash::analysis
