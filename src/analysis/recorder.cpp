#include "analysis/recorder.h"

#include "util/csv.h"

namespace dash::analysis {

void Recorder::write_csv(std::ostream& out) const {
  dash::util::CsvWriter csv(out, {"round", "deleted_node", "alive", "edges",
                                  "edges_added", "max_delta",
                                  "largest_component", "stretch"});
  for (const auto& r : rows_) {
    csv.write(r.round, static_cast<unsigned>(r.deleted_node), r.alive,
              r.edges, r.edges_added, static_cast<unsigned>(r.max_delta),
              r.largest_component,
              r.stretch_sampled ? r.stretch : 0.0);
  }
}

}  // namespace dash::analysis
