#include "analysis/stretch_estimator.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "graph/traversal.h"
#include "util/check.h"

namespace dash::analysis {

using graph::FlatView;
using graph::Graph;
using graph::kUnreachable;
using graph::NodeId;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

StretchEstimator::StretchEstimator(const Graph& original,
                                   StretchEstimatorOptions opts)
    : n_(original.num_nodes()), opts_(opts), rng_(opts.seed) {
  DASH_CHECK_MSG(graph::is_connected(original),
                 "stretch baseline must be connected");
  const FlatView& view = original.flat_view();
  const auto& alive = view.alive_nodes();
  DASH_CHECK_MSG(!alive.empty(), "empty baseline");
  const std::size_t k = std::min<std::size_t>(
      {std::max<std::size_t>(opts.landmarks, 1), 64, alive.size()});

  // Farthest-point selection: start from the lowest alive id, then
  // repeatedly add the node farthest from every chosen landmark. Each
  // step's BFS row is exactly the landmark row we need to keep, so
  // selection costs nothing beyond the O(k * (n + m)) row builds.
  graph::TraversalScratch scratch;
  std::vector<std::uint32_t> nearest(n_, kUnreachable);
  d0_.resize(k * n_, kUnreachable);
  NodeId next_landmark = alive.front();
  for (std::size_t i = 0; i < k; ++i) {
    landmarks_.push_back(next_landmark);
    graph::bfs_distances(view, next_landmark, scratch);
    std::uint32_t* row = d0_.data() + i * n_;
    std::uint32_t best = 0;
    for (const NodeId v : alive) {
      const std::uint32_t d = scratch.distance(v);
      row[v] = d;
      if (d < nearest[v]) nearest[v] = d;
      if (nearest[v] > best) {
        best = nearest[v];
        next_landmark = v;
      }
    }
    if (best == 0) {  // every alive node is already a landmark
      d0_.resize((i + 1) * n_);
      break;
    }
  }
}

// One 64-source wave from the surviving landmarks, recording the round
// each landmark's bit first reaches each node -- the same bit-parallel
// level advance the exact tracker's wave_partials uses, minus the
// per-pair accounting.
void StretchEstimator::sample_wave(const Graph& healed) {
  DASH_CHECK_MSG(healed.num_nodes() == n_,
                 "estimator and healed graph id spaces differ");
  const FlatView& view = healed.flat_view();
  const auto& alive = view.alive_nodes();
  const std::size_t k = landmarks_.size();

  dt_.assign(k * n_, kUnreachable);
  reached_.assign(n_, 0);
  frontier_.assign(n_, 0);
  next_.resize(n_);
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId s = landmarks_[i];
    if (!std::binary_search(alive.begin(), alive.end(), s)) continue;
    reached_[s] = frontier_[s] = std::uint64_t{1} << i;
    dt_[i * n_ + s] = 0;
  }

  auto* reached = reached_.data();
  std::uint32_t depth = 0;
  bool active = true;
  while (active) {
    active = false;
    ++depth;
    const auto* frontier = frontier_.data();
    auto* next = next_.data();
    for (const NodeId v : alive) {
      std::uint64_t gather = 0;
      for (const NodeId u : view.neighbors(v)) gather |= frontier[u];
      std::uint64_t fresh = gather & ~reached[v];
      next[v] = fresh;
      if (fresh == 0) continue;
      active = true;
      reached[v] |= fresh;
      do {
        const auto i = static_cast<unsigned>(std::countr_zero(fresh));
        fresh &= fresh - 1;
        dt_[i * n_ + v] = depth;
      } while (fresh != 0);
    }
    std::swap(frontier_, next_);
  }
}

PairBound StretchEstimator::bound_pair(NodeId u, NodeId v) const {
  DASH_CHECK_MSG(u != v, "stretch is defined over distinct pairs");
  PairBound b;
  b.u = u;
  b.v = v;

  std::uint32_t o_lb = 1;  // distinct alive nodes are >= 1 hop apart
  std::uint32_t o_ub = kUnreachable;
  std::uint32_t h_lb = 1;
  std::uint32_t h_ub = kUnreachable;
  bool covered = false;
  bool one_sided = false;
  const std::size_t k = landmarks_.size();
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t du0 = d0_[i * n_ + u];
    const std::uint32_t dv0 = d0_[i * n_ + v];
    // Time-0 rows are complete (connected baseline).
    o_ub = std::min(o_ub, du0 + dv0);
    o_lb = std::max(o_lb, du0 > dv0 ? du0 - dv0 : dv0 - du0);

    const std::uint32_t dut = dt_[i * n_ + u];
    const std::uint32_t dvt = dt_[i * n_ + v];
    const bool ru = dut != kUnreachable;
    const bool rv = dvt != kUnreachable;
    if (ru && rv) {
      covered = true;
      h_ub = std::min(h_ub, dut + dvt);
      h_lb = std::max(h_lb, dut > dvt ? dut - dvt : dvt - dut);
    } else if (ru != rv) {
      // The landmark's component contains exactly one endpoint, so the
      // pair is disconnected -- a certificate, not an estimate.
      one_sided = true;
    }
  }
  b.original_lower = o_lb;
  b.original_upper = o_ub;
  if (one_sided) {
    b.disconnected = true;
    b.lower = b.upper = kInf;
    return b;
  }
  if (!covered) {
    b.unbounded = true;
    return b;
  }
  b.healed_lower = h_lb;
  b.healed_upper = h_ub;
  b.lower = static_cast<double>(h_lb) / static_cast<double>(o_ub);
  b.upper = static_cast<double>(h_ub) / static_cast<double>(o_lb);
  return b;
}

StretchEstimate StretchEstimator::estimate(const Graph& healed,
                                           std::vector<PairBound>* detail) {
  if (detail != nullptr) detail->clear();
  StretchEstimate out;
  const auto& alive = healed.flat_view().alive_nodes();
  if (alive.size() < 2) return out;
  sample_wave(healed);

  double sum_lower = 0.0;
  double sum_upper = 0.0;
  for (std::size_t p = 0; p < opts_.pairs; ++p) {
    const std::size_t ui =
        static_cast<std::size_t>(rng_.below(alive.size()));
    std::size_t vi = static_cast<std::size_t>(rng_.below(alive.size() - 1));
    if (vi >= ui) ++vi;
    const PairBound b = bound_pair(alive[ui], alive[vi]);
    if (detail != nullptr) detail->push_back(b);
    ++out.pairs;
    if (b.disconnected) {
      ++out.disconnected;
    } else if (b.unbounded) {
      ++out.unbounded;
    } else {
      ++out.bounded;
      out.max_lower = std::max(out.max_lower, b.lower);
      out.max_upper = std::max(out.max_upper, b.upper);
      sum_lower += b.lower;
      sum_upper += b.upper;
    }
  }
  if (out.bounded > 0) {
    out.avg_lower = sum_lower / static_cast<double>(out.bounded);
    out.avg_upper = sum_upper / static_cast<double>(out.bounded);
  }
  if (out.disconnected > 0) out.max_lower = out.max_upper = kInf;
  return out;
}

}  // namespace dash::analysis
