// recorder.h -- optional per-deletion time series for examples and
// plots: what the network looked like after every deletion+heal round.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

namespace dash::analysis {

struct DeletionRecord {
  std::size_t round = 0;          ///< 1-based deletion index
  std::uint32_t deleted_node = 0;
  std::size_t alive = 0;
  std::size_t edges = 0;
  std::size_t edges_added = 0;    ///< new graph edges this heal
  std::uint32_t max_delta = 0;    ///< max delta ever, after this round
  std::size_t largest_component = 0;
  double stretch = 0.0;           ///< 0 when not sampled this round
  bool stretch_sampled = false;
};

class Recorder {
 public:
  void add(const DeletionRecord& r) { rows_.push_back(r); }
  const std::vector<DeletionRecord>& rows() const { return rows_; }
  bool empty() const { return rows_.empty(); }

  /// Dump as CSV (with header) for plotting.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<DeletionRecord> rows_;
};

}  // namespace dash::analysis
