#include "analysis/experiment.h"

#include "api/network.h"
#include "util/check.h"

namespace dash::analysis {

namespace {

dash::api::RunOptions to_run_options(const ScheduleConfig& cfg) {
  dash::api::RunOptions opts;
  opts.max_deletions = cfg.max_deletions;
  opts.stop_when_disconnected = cfg.stop_when_disconnected;
  return opts;
}

}  // namespace

ScheduleResult run_schedule(graph::Graph& g, core::HealingState& state,
                            attack::AttackStrategy& attacker,
                            core::HealingStrategy& healer,
                            const ScheduleConfig& cfg) {
  // Borrowed-mode engine: the caller keeps ownership (and can inspect
  // the mutated graph/state afterwards, as legacy drivers do).
  dash::api::Network net(g, state, healer);
  return net.run(attacker, to_run_options(cfg));
}

std::vector<ScheduleResult> run_instances(const InstanceConfig& cfg,
                                          dash::util::ThreadPool* pool) {
  DASH_CHECK(cfg.make_graph && cfg.make_attack && cfg.healer != nullptr);
  dash::api::SuiteConfig suite;
  suite.make_graph = cfg.make_graph;
  suite.make_attacker = cfg.make_attack;
  const core::HealingStrategy* proto = cfg.healer;
  suite.make_healer = [proto] { return proto->clone(); };
  suite.instances = cfg.instances;
  suite.base_seed = cfg.base_seed;
  suite.run = to_run_options(cfg.schedule);
  return dash::api::run_suite(suite, pool);
}

dash::util::Summary summarize_metric(
    const std::vector<ScheduleResult>& results,
    const std::function<double(const ScheduleResult&)>& metric) {
  return dash::api::summarize_metric(results, metric);
}

}  // namespace dash::analysis
