#include "analysis/experiment.h"

#include <memory>

#include "graph/traversal.h"
#include "util/check.h"
#include "util/timer.h"

namespace dash::analysis {

using core::HealingState;
using graph::Graph;
using graph::NodeId;

ScheduleResult run_schedule(Graph& g, HealingState& state,
                            attack::AttackStrategy& attacker,
                            core::HealingStrategy& healer,
                            const ScheduleConfig& cfg) {
  ScheduleResult result;
  const std::size_t n0 = g.num_alive();

  std::optional<StretchTracker> stretch;
  if (cfg.track_stretch) stretch.emplace(g);

  dash::util::Timer heal_timer;
  double heal_seconds = 0.0;

  while (g.num_alive() > 1 && result.deletions < cfg.max_deletions) {
    const NodeId victim = attacker.select(g, state);
    if (victim == graph::kInvalidNode) break;  // attack finished early
    DASH_CHECK_MSG(g.alive(victim), "attacker chose a dead node");

    const core::DeletionContext ctx = state.begin_deletion(g, victim);
    const auto removed_neighbors = g.delete_node(victim);
    DASH_CHECK(removed_neighbors == ctx.neighbors_g);

    heal_timer.reset();
    const core::HealAction action = healer.heal(g, state, ctx);
    heal_seconds += heal_timer.seconds();

    ++result.deletions;
    result.edges_added += action.new_graph_edges.size();
    if (action.used_surrogate) ++result.surrogate_heals;

    const bool connected_now = graph::is_connected(g);
    if (!connected_now) result.stayed_connected = false;

    if (cfg.check_invariants && result.violation.empty()) {
      Check c = check_locality(action, ctx);
      if (c.ok && healer.maintains_forest()) c = check_forest(g, state);
      if (c.ok) c = check_component_ids(g, state);
      if (c.ok) c = check_healing_subgraph(g, state);
      if (c.ok) c = check_delta_consistency(g, state);
      if (c.ok && cfg.check_rem_bound) c = check_rem_bound(g, state);
      if (c.ok && cfg.check_delta_bound) c = check_delta_bound(state, n0);
      if (!c.ok) result.violation = c.violation;
    }

    const bool sample_stretch =
        stretch && (result.deletions % cfg.stretch_sample_every == 0 ||
                    g.num_alive() <= 2);
    double stretch_now = 0.0;
    if (sample_stretch && connected_now) {
      stretch_now = stretch->max_stretch(g);
      result.max_stretch = std::max(result.max_stretch, stretch_now);
    }

    if (cfg.recorder != nullptr) {
      DeletionRecord rec;
      rec.round = result.deletions;
      rec.deleted_node = victim;
      rec.alive = g.num_alive();
      rec.edges = g.num_edges();
      rec.edges_added = action.new_graph_edges.size();
      rec.max_delta = state.max_delta_ever();
      rec.largest_component = graph::connected_components(g).largest();
      rec.stretch = stretch_now;
      rec.stretch_sampled = sample_stretch && connected_now;
      cfg.recorder->add(rec);
    }

    if (!connected_now && cfg.stop_when_disconnected) break;
  }

  result.max_delta = state.max_delta_ever();
  result.max_id_changes = state.max_id_changes();
  result.max_messages = state.max_messages();
  result.max_messages_sent = state.max_messages_sent();
  result.heal_seconds = heal_seconds;
  return result;
}

std::vector<ScheduleResult> run_instances(const InstanceConfig& cfg,
                                          dash::util::ThreadPool* pool) {
  DASH_CHECK(cfg.make_graph && cfg.make_attack && cfg.healer != nullptr);
  std::vector<ScheduleResult> results(cfg.instances);

  auto run_one = [&cfg, &results](std::size_t i) {
    // Each instance owns an independent deterministic stream derived
    // from (base_seed, i): results do not depend on thread scheduling.
    dash::util::Rng seeder(cfg.base_seed);
    dash::util::Rng rng = seeder.fork(i + 1);
    Graph g = cfg.make_graph(rng);
    HealingState state(g, rng);
    auto attacker = cfg.make_attack(rng.next_u64());
    auto healer = cfg.healer->clone();
    results[i] = run_schedule(g, state, *attacker, *healer, cfg.schedule);
  };

  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for(cfg.instances, run_one);
  } else {
    for (std::size_t i = 0; i < cfg.instances; ++i) run_one(i);
  }
  return results;
}

dash::util::Summary summarize_metric(
    const std::vector<ScheduleResult>& results,
    const std::function<double(const ScheduleResult&)>& metric) {
  std::vector<double> xs;
  xs.reserve(results.size());
  for (const auto& r : results) xs.push_back(metric(r));
  return dash::util::summarize(xs);
}

}  // namespace dash::analysis
