// experiment.h -- DEPRECATED compatibility shims over the api::Network
// engine.
//
// The deletion/heal driver and the multi-instance sweep machinery that
// used to live here are now the engine layer: api::Network owns the
// delete -> heal -> propagate loop and feeds pluggable observers
// (api/observers.h replaces the old check_invariants / track_stretch /
// recorder configuration fields), and api::run_suite runs the Sec. 4.1
// multi-instance methodology.
//
// Migration:
//   run_schedule(g, st, atk, healer, cfg)  ->  Network::run()
//   cfg.check_invariants / *_bound         ->  InvariantObserver
//   cfg.track_stretch / stretch_sample_every -> StretchObserver
//   cfg.recorder                           ->  RecorderObserver
//   run_instances(InstanceConfig, pool)    ->  api::run_suite()
//
// These shims forward to the engine and will be removed next PR.
#pragma once

#include <functional>
#include <limits>
#include <memory>

#include "api/metrics.h"
#include "api/suite.h"
#include "attack/strategy.h"
#include "core/strategy.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dash::analysis {

/// DEPRECATED: use api::RunOptions (and observers for measurement).
struct ScheduleConfig {
  /// Maximum deletions; by default run until <= 1 alive node or the
  /// attack stops on its own.
  std::size_t max_deletions = std::numeric_limits<std::size_t>::max();
  /// Stop healing-relevant accounting once the graph disconnects
  /// (meaningful for NoHeal only; healers never disconnect).
  bool stop_when_disconnected = false;
};

/// The schedule-level result is the engine's metric snapshot.
using ScheduleResult = dash::api::Metrics;

/// DEPRECATED: wrap the graph/state/healer in an api::Network and call
/// run(). Kept for one release for drivers that only used the run
/// loop; note that the measurement fields the old ScheduleConfig
/// carried are intentionally gone (see the migration table above), so
/// callers that set them must move to observers now.
ScheduleResult run_schedule(graph::Graph& g, core::HealingState& state,
                            attack::AttackStrategy& attacker,
                            core::HealingStrategy& healer,
                            const ScheduleConfig& cfg);

/// Factories so each instance of a sweep draws a fresh graph/attack from
/// its own deterministic RNG stream.
using GraphFactory = std::function<graph::Graph(dash::util::Rng&)>;
using AttackFactory =
    std::function<std::unique_ptr<attack::AttackStrategy>(std::uint64_t)>;

/// DEPRECATED: use api::SuiteConfig.
struct InstanceConfig {
  GraphFactory make_graph;
  AttackFactory make_attack;
  const core::HealingStrategy* healer = nullptr;  ///< prototype, cloned
  std::size_t instances = 30;
  std::uint64_t base_seed = 0xDA5Bu;
  ScheduleConfig schedule;
};

/// DEPRECATED: forwards to api::run_suite.
std::vector<ScheduleResult> run_instances(const InstanceConfig& cfg,
                                          dash::util::ThreadPool* pool);

/// Aggregate a metric across instances (forwards to api::summarize_metric).
dash::util::Summary summarize_metric(
    const std::vector<ScheduleResult>& results,
    const std::function<double(const ScheduleResult&)>& metric);

}  // namespace dash::analysis
