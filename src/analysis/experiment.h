// experiment.h -- the deletion/heal driver and the multi-instance sweep
// machinery behind every figure reproduction (Sec. 4.1 methodology:
// delete -> heal -> measure, repeated until the graph is gone, averaged
// over 30 random graph instances).
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "analysis/invariants.h"
#include "analysis/recorder.h"
#include "analysis/stretch.h"
#include "attack/strategy.h"
#include "core/strategy.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace dash::analysis {

struct ScheduleConfig {
  /// Maximum deletions; by default run until <= 1 alive node or the
  /// attack stops on its own.
  std::size_t max_deletions = static_cast<std::size_t>(-1);
  /// Evaluate the full invariant battery after every round (slow;
  /// integration tests switch it on).
  bool check_invariants = false;
  /// Lemma-4 rem bound is DASH-specific; only checked when this is set
  /// in addition to check_invariants.
  bool check_rem_bound = false;
  /// Theorem-1 delta <= 2 log2 n bound; proven for DASH only, so it is
  /// opt-in like the rem bound.
  bool check_delta_bound = false;
  /// Track the Fig. 10 stretch metric (needs O(n^2) baseline memory).
  bool track_stretch = false;
  /// Sample stretch every k-th deletion (it costs O(n*m)).
  std::size_t stretch_sample_every = 1;
  /// Stop healing-relevant accounting once the graph disconnects
  /// (meaningful for NoHeal only; healers never disconnect).
  bool stop_when_disconnected = false;
  /// Optional per-round time series sink.
  Recorder* recorder = nullptr;
};

struct ScheduleResult {
  std::size_t deletions = 0;
  /// Paper's headline metric: max over nodes and over time of delta(v).
  std::uint32_t max_delta = 0;
  std::uint32_t max_id_changes = 0;
  std::uint64_t max_messages = 0;       ///< sent + received (Lemma 8)
  std::uint64_t max_messages_sent = 0;  ///< sent only (Fig. 9(b)'s metric)
  std::size_t edges_added = 0;
  std::size_t surrogate_heals = 0;
  double max_stretch = 0.0;  ///< max over sampled rounds
  bool stayed_connected = true;
  /// First invariant violation encountered (empty if none / unchecked).
  std::string violation;
  double heal_seconds = 0.0;  ///< time spent inside heal() calls
};

/// Run one attack/heal schedule to completion on `g`.
ScheduleResult run_schedule(graph::Graph& g, core::HealingState& state,
                            attack::AttackStrategy& attacker,
                            core::HealingStrategy& healer,
                            const ScheduleConfig& cfg);

/// Factories so each instance of a sweep draws a fresh graph/attack from
/// its own deterministic RNG stream.
using GraphFactory = std::function<graph::Graph(dash::util::Rng&)>;
using AttackFactory =
    std::function<std::unique_ptr<attack::AttackStrategy>(std::uint64_t)>;

struct InstanceConfig {
  GraphFactory make_graph;
  AttackFactory make_attack;
  const core::HealingStrategy* healer = nullptr;  ///< prototype, cloned
  std::size_t instances = 30;
  std::uint64_t base_seed = 0xDA5Bu;
  ScheduleConfig schedule;
};

/// Run `instances` independent schedules (in parallel when `pool` is
/// given) and return per-instance results, ordered by instance index.
std::vector<ScheduleResult> run_instances(const InstanceConfig& cfg,
                                          dash::util::ThreadPool* pool);

/// Aggregate a metric across instances.
dash::util::Summary summarize_metric(
    const std::vector<ScheduleResult>& results,
    const std::function<double(const ScheduleResult&)>& metric);

}  // namespace dash::analysis
